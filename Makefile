GO ?= go

.PHONY: check vet build test race bench

## check: the full gate — vet, build, and the race-enabled test suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
