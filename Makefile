GO ?= go
FUZZTIME ?= 30s
# Parallel-bench worker budget: default to the machine's cores so the
# published BENCH_parallel.json is measured on real parallelism. The
# bench target passes -require-cores, so asking for more workers than
# GOMAXPROCS fails instead of publishing scheduler noise.
BENCH_WORKERS ?= $(shell nproc 2>/dev/null || echo 8)
BENCH_ITERS ?= 3
BENCH_SCALE ?= 0.05
# Profiling-overhead gate: fail when running EQ1-EQ12 with per-operator
# profiling on is more than this percent slower than with it off.
# Overhead runs take best-of-OVERHEAD_ITERS to damp scheduler jitter at
# smoke scale.
BENCH_MAX_OVERHEAD ?= 5
OVERHEAD_ITERS ?= 5

.PHONY: check vet lint lint-json build test race crash-recovery repl-fault bench bench-algos bench-algos-smoke bench-micro bench-smoke fuzz-smoke

## check: the full gate — vet, build, the pgrdfvet analyzers, the
## race-enabled test suite, the crash-recovery differential, and the
## replication fault-injection differential.
check: vet build lint race crash-recovery repl-fault

vet:
	$(GO) vet ./...

## lint: run the repo-specific static analyzers (see DESIGN.md,
## "Static analysis gate" and §14). Exit code 1 means findings.
lint:
	$(GO) run ./cmd/pgrdfvet ./...

## lint-json: same gate, but write a machine-readable findings report
## to pgrdfvet.json (uploaded as a CI artifact). Exit code matches lint.
lint-json:
	$(GO) run ./cmd/pgrdfvet -json ./... > pgrdfvet.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## crash-recovery: the durability gate — the fault-injected WAL suite
## (crash at every log byte in both checkpoint formats, torn-write
## corpus, incremental-chain races) plus the binary-snapshot codec
## differential (binary vs text across index configs, corruption at
## every byte), all under the race detector. Part of `make check`; see
## DESIGN.md §12 and §16.
crash-recovery:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'TestBinarySnapshot|TestSnapshotAtomic|TestRestoreHuge|TestSnapshotAdversarial' ./internal/store

## repl-fault: the replication gate — a follower tailing through a
## proxy that drops, delays and truncates mid-frame, plus a leader
## kill/restart, must converge to a byte-identical store. Part of
## `make check`; see DESIGN.md §13.
repl-fault:
	$(GO) test -race -count=1 ./internal/repl

## bench: Go micro-benchmarks plus the serial-vs-parallel comparison of
## the paper's scan-heavy queries and bulk load, written to
## BENCH_parallel.json. Tune with BENCH_WORKERS / BENCH_ITERS /
## BENCH_SCALE.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/benchpaper -parallelbench -require-cores -workers $(BENCH_WORKERS) -iters $(BENCH_ITERS) -scale $(BENCH_SCALE) -out BENCH_parallel.json
	$(MAKE) bench-overhead

## bench-overhead: run EQ1-EQ12 on both schemes with profiling off and
## on, write the differential to BENCH_profile_overhead.json, and fail
## when the aggregate overhead exceeds BENCH_MAX_OVERHEAD percent.
bench-overhead:
	$(GO) run ./cmd/benchpaper -profileoverhead -maxoverhead $(BENCH_MAX_OVERHEAD) -iters $(OVERHEAD_ITERS) -scale $(BENCH_SCALE) -out BENCH_profile_overhead.json

## bench-algos: the graph-analytics comparison — CSR projection plus
## PageRank / WCC / triangle counting, serial vs parallel, on all three
## schemes — written to BENCH_algos.json. -require-cores refuses to
## publish speedup numbers measured with fewer cores than workers; the
## embedded fingerprints prove serial/parallel and cross-scheme results
## were identical.
bench-algos:
	$(GO) run ./cmd/benchpaper -algobench -require-cores -workers $(BENCH_WORKERS) -iters $(BENCH_ITERS) -scale $(BENCH_SCALE) -out BENCH_algos.json

## bench-algos-smoke: one-iteration algo bench at reduced scale (the CI
## gate). No -require-cores: CI hosts publish whatever parallelism they
## have, recorded in the report's gomaxprocs field.
bench-algos-smoke:
	$(GO) run ./cmd/benchpaper -algobench -workers $(BENCH_WORKERS) -iters 1 -scale 0.02 -out BENCH_algos.json

## bench-micro: row-vs-batch executor kernel microbenchmarks (scan,
## hash probe, nested loop, filter) plus the store-level batched scan
## benchmarks. Compare the row/ and batch/ sub-benchmark pairs.
bench-micro:
	$(GO) test -bench 'Kernel' -run '^$$' -benchtime 20x ./internal/sparql/
	$(GO) test -bench 'BenchmarkScan' -run '^$$' ./internal/store/

## bench-smoke: one-iteration bench at reduced scale (the CI gate).
## The overhead differential keeps best-of-$(OVERHEAD_ITERS) even here:
## best-of-1 at smoke scale is all scheduler jitter.
bench-smoke:
	$(MAKE) bench BENCH_ITERS=1 BENCH_SCALE=0.02

## fuzz-smoke: run each parser fuzz target for FUZZTIME (default 30s).
## Regression seeds always run as part of plain `make test` too.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/ntriples
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/turtle
	$(GO) test -run='^$$' -fuzz=FuzzParseAndExec -fuzztime=$(FUZZTIME) ./internal/sparql
