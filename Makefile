GO ?= go
FUZZTIME ?= 30s

.PHONY: check vet lint build test race bench fuzz-smoke

## check: the full gate — vet, build, the pgrdfvet analyzers, and the
## race-enabled test suite.
check: vet build lint race

vet:
	$(GO) vet ./...

## lint: run the repo-specific static analyzers (see DESIGN.md,
## "Static analysis gate"). Exit code 1 means findings.
lint:
	$(GO) run ./cmd/pgrdfvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

## fuzz-smoke: run each parser fuzz target for FUZZTIME (default 30s).
## Regression seeds always run as part of plain `make test` too.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/ntriples
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/turtle
	$(GO) test -run='^$$' -fuzz=FuzzParseAndExec -fuzztime=$(FUZZTIME) ./internal/sparql
