GO ?= go
FUZZTIME ?= 30s
BENCH_WORKERS ?= 8
BENCH_ITERS ?= 3
BENCH_SCALE ?= 0.05

.PHONY: check vet lint build test race bench bench-smoke fuzz-smoke

## check: the full gate — vet, build, the pgrdfvet analyzers, and the
## race-enabled test suite.
check: vet build lint race

vet:
	$(GO) vet ./...

## lint: run the repo-specific static analyzers (see DESIGN.md,
## "Static analysis gate"). Exit code 1 means findings.
lint:
	$(GO) run ./cmd/pgrdfvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: Go micro-benchmarks plus the serial-vs-parallel comparison of
## the paper's scan-heavy queries and bulk load, written to
## BENCH_parallel.json. Tune with BENCH_WORKERS / BENCH_ITERS /
## BENCH_SCALE.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/benchpaper -parallelbench -workers $(BENCH_WORKERS) -iters $(BENCH_ITERS) -scale $(BENCH_SCALE) -out BENCH_parallel.json

## bench-smoke: one-iteration bench at reduced scale (the CI gate).
bench-smoke:
	$(MAKE) bench BENCH_ITERS=1 BENCH_SCALE=0.02

## fuzz-smoke: run each parser fuzz target for FUZZTIME (default 30s).
## Regression seeds always run as part of plain `make test` too.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/ntriples
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/turtle
	$(GO) test -run='^$$' -fuzz=FuzzParseAndExec -fuzztime=$(FUZZTIME) ./internal/sparql
