// Package repro is a from-scratch Go reproduction of "A Tale of Two
// Graphs: Property Graphs as RDF in Oracle" (Das, Srinivasan, Perry,
// Chong, Banerjee — EDBT 2014).
//
// The paper shows that RDF stores can serve as property-graph backends:
// it proposes three PG-as-RDF transformation schemes — reification (RF),
// named graphs (NG) and subproperties (SP) — and evaluates them on a
// Twitter social-network dataset inside Oracle Database 12c.
//
// This repository rebuilds the entire stack in Go:
//
//   - internal/rdf        — RDF 1.1 terms, triples, quads, XSD values
//   - internal/ntriples   — N-Triples / N-Quads parsing + serialization
//   - internal/store      — an Oracle-style ID-based quad store with
//     semantic-network indexes, models-as-partitions and virtual models
//   - internal/sparql     — a SPARQL 1.1 subset engine (BGPs, GRAPH,
//     FILTER, property paths, aggregates, sub-selects, updates) with
//     adaptive index nested-loop / hash join execution
//   - internal/pg         — the property graph model + relational form
//   - internal/pgrdf      — the paper's contribution: RF/NG/SP schemes,
//     cardinality formulas, partitioned loading, query formulation
//   - internal/inference  — RDFS/OWL-subset forward chaining (§5.2)
//   - internal/twitter    — synthetic ego-network dataset generator
//   - internal/bench      — harness regenerating every table and figure
//
// See README.md for a tour, DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-vs-measured results. The root-level
// bench_test.go exposes one testing.B benchmark per table/figure.
package repro
