// Command pgrdfvet is the repository's static-analysis gate: a
// multichecker running the internal/analysis suite (ctxflow,
// errsentinel, guardtick, idsafe, iterclose, walerr) over the
// packages named on the command line.
//
// Usage:
//
//	go run ./cmd/pgrdfvet ./...
//	go run ./cmd/pgrdfvet -only idsafe,iterclose ./internal/sparql
//
// It prints one line per finding (file:line:col: [analyzer] message)
// and exits 1 if anything is found, 2 on operational errors. Findings
// can be suppressed line-by-line with a justified directive:
//
//	//pgrdfvet:ignore <analyzer> -- <why this is safe>
//
// The directive covers its own line and the line below; a directive
// without a justification is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pgrdfvet [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pgrdfvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(cwd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
