// Command pgrdfvet is the repository's static-analysis gate: a
// multichecker running the internal/analysis suite (atomiconly,
// ctxflow, errsentinel, goroutinelife, guardedby, guardtick, idsafe,
// iterclose, walerr) over the packages named on the command line.
//
// Usage:
//
//	go run ./cmd/pgrdfvet ./...
//	go run ./cmd/pgrdfvet -enable idsafe,iterclose ./internal/sparql
//	go run ./cmd/pgrdfvet -disable guardedby ./internal/wal
//	go run ./cmd/pgrdfvet -json ./... > pgrdfvet.json
//
// It prints one line per finding (file:line:col: [analyzer] message)
// and exits 1 if anything is found, 2 on operational errors. With
// -json it instead emits a machine-readable report on stdout (the
// summary line still goes to stderr, and the exit codes are the same).
// Findings can be suppressed line-by-line with a justified directive:
//
//	//pgrdfvet:ignore <analyzer> -- <why this is safe>
//
// The directive covers its own line and the line below; a directive
// without a justification, naming an unknown analyzer, or no longer
// masking any finding is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// jsonReport is the -json output shape, consumed by the CI artifact
// upload.
type jsonReport struct {
	Analyzers []string      `json:"analyzers"`
	Packages  int           `json:"packages"`
	Findings  []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	enable := flag.String("enable", "", "comma-separated subset of analyzers to run (default: all)")
	only := flag.String("only", "", "alias for -enable (kept for compatibility)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pgrdfvet [-enable a,b] [-disable c] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	resolve := func(csv, flagName string) []*analysis.Analyzer {
		var out []*analysis.Analyzer
		for _, name := range strings.Split(csv, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pgrdfvet: -%s: unknown analyzer %q\n", flagName, strings.TrimSpace(name))
				os.Exit(2)
			}
			out = append(out, a)
		}
		return out
	}
	if *enable != "" && *only != "" {
		fmt.Fprintf(os.Stderr, "pgrdfvet: -enable and -only are aliases; use one\n")
		os.Exit(2)
	}
	if *only != "" {
		enable = only
	}
	if *enable != "" {
		analyzers = resolve(*enable, "enable")
	}
	if *disable != "" {
		skip := make(map[string]bool)
		for _, a := range resolve(*disable, "disable") {
			skip[a.Name] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "pgrdfvet: no analyzers left after -enable/-disable\n")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(cwd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		report := jsonReport{Packages: len(pkgs), Findings: []jsonFinding{}}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "pgrdfvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pgrdfvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
