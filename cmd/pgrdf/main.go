// Command pgrdf is the CLI for the PG-as-RDF library. Subcommands:
//
//	convert  — transform relational property-graph data (edges.tsv +
//	           objkvs.tsv) into N-Quads under a scheme (RF, NG or SP)
//	query    — load converted or raw N-Quads data and run a SPARQL
//	           query against it
//	explain  — like query, but print the index access plan instead
//	stats    — load data and print dataset + storage statistics
//	algo     — project the graph into a CSR and run a parallel graph
//	           algorithm: pagerank, wcc or triangles
//	snapshot — write a restorable store snapshot without a server
//	checkpoint — ask a running server (serve -data-dir) to checkpoint
//
// Examples:
//
//	pgrdf convert -scheme NG -edges edges.tsv -kvs objkvs.tsv -o data.nq
//	pgrdf query -data data.nq -q 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'
//	pgrdf explain -data data.nq -q "$(cat q.rq)"
//	pgrdf stats -data data.nq
//	pgrdf algo pagerank -data data.nq -k 5
//	pgrdf algo wcc -data data.nq -scheme NG
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"net/http"

	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/ntriples"
	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
	"repro/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = runConvert(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:], false)
	case "explain":
		err = runQuery(os.Args[2:], true)
	case "stats":
		err = runStats(os.Args[2:])
	case "traverse":
		err = runTraverse(os.Args[2:])
	case "algo":
		err = runAlgo(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "snapshot":
		err = runSnapshot(os.Args[2:])
	case "checkpoint":
		err = runCheckpoint(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgrdf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pgrdf <convert|query|explain|stats|traverse|algo|serve|snapshot|checkpoint> [flags]
run "pgrdf <subcommand> -h" for flags`)
	os.Exit(2)
}

func parseScheme(s string) (pgrdf.Scheme, error) {
	switch strings.ToUpper(s) {
	case "RF":
		return pgrdf.RF, nil
	case "NG":
		return pgrdf.NG, nil
	case "SP":
		return pgrdf.SP, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want RF, NG or SP)", s)
	}
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	scheme := fs.String("scheme", "NG", "PG-as-RDF scheme: RF, NG or SP")
	edges := fs.String("edges", "edges.tsv", "Edges table (TSV)")
	kvs := fs.String("kvs", "objkvs.tsv", "ObjKVs table (TSV)")
	out := fs.String("o", "-", "output N-Quads file (- = stdout)")
	prefix := fs.String("vertex-prefix", "v", "vertex IRI prefix (the paper's Twitter data uses n)")
	fs.Parse(args)

	s, err := parseScheme(*scheme)
	if err != nil {
		return err
	}
	g, err := loadRelational(*edges, *kvs)
	if err != nil {
		return err
	}
	vocab := pgrdf.DefaultVocabulary()
	vocab.VertexPrefix = *prefix
	conv := &pgrdf.Converter{Scheme: s, Vocab: vocab, Opts: pgrdf.DefaultOptions()}
	ds := conv.Convert(g)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	all := ds.All()
	if strings.HasSuffix(*out, ".ttl") || strings.HasSuffix(*out, ".turtle") {
		// Turtle cannot express named graphs: only RF and SP datasets
		// (all default-graph) can be written this way.
		triples := make([]rdf.Triple, 0, len(all))
		for _, q := range all {
			if !q.InDefaultGraph() {
				return fmt.Errorf("the %s scheme emits named-graph quads; use N-Quads output instead of Turtle", s)
			}
			triples = append(triples, q.Triple())
		}
		prefixes := rdf.PrefixMap{"pg": vocab.VertexNS, "rel": vocab.RelNS, "key": vocab.KeyNS,
			"rdf": rdf.RDFNS, "rdfs": rdf.RDFSNS, "xsd": rdf.XSDNS}
		if err := turtle.Write(w, triples, prefixes); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "converted %d vertices, %d edges -> %d triples (%s, Turtle)\n",
			g.NumVertices(), g.NumEdges(), len(triples), s)
		return nil
	}
	nw := ntriples.NewWriter(w)
	if err := nw.WriteAll(all); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %d vertices, %d edges -> %d quads (%s)\n",
		g.NumVertices(), g.NumEdges(), nw.Count(), s)
	return nil
}

func loadRelational(edgesPath, kvsPath string) (*pg.Graph, error) {
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	edges, err := pg.ReadEdges(ef)
	if err != nil {
		return nil, err
	}
	kf, err := os.Open(kvsPath)
	if err != nil {
		return nil, err
	}
	defer kf.Close()
	kvRows, err := pg.ReadObjKVs(kf)
	if err != nil {
		return nil, err
	}
	return pg.FromRelational(&pg.Relational{Edges: edges, ObjKVs: kvRows})
}

// loadStore loads an RDF file (N-Quads/N-Triples by default, Turtle for
// .ttl files) into a fresh store under the model name "data".
func loadStore(dataPath, indexes string) (*store.Store, error) {
	specs := store.DefaultIndexes
	if indexes != "" {
		specs = strings.Split(indexes, ",")
	}
	st, err := store.NewWithIndexes(specs)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var quads []rdf.Quad
	if strings.HasSuffix(dataPath, ".ttl") || strings.HasSuffix(dataPath, ".turtle") {
		triples, err := turtle.Parse(f)
		if err != nil {
			return nil, err
		}
		for _, t := range triples {
			quads = append(quads, rdf.TripleQuad(t))
		}
	} else {
		quads, err = ntriples.NewReader(f).ReadAll()
		if err != nil {
			return nil, err
		}
	}
	if _, err := st.Load("data", quads); err != nil {
		return nil, err
	}
	return st, nil
}

func runQuery(args []string, explain bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "", "N-Quads data file")
	queryText := fs.String("q", "", "SPARQL query text (@file to read from a file)")
	indexes := fs.String("indexes", "PCSGM,PSCGM,SPCGM,GSPCM", "comma-separated semantic network indexes")
	limit := fs.Int("print", 100, "max rows to print")
	analyze := fs.Bool("analyze", false, "execute the query and annotate the plan with per-operator actuals (explain only)")
	fs.Parse(args)
	if *data == "" || *queryText == "" {
		return fmt.Errorf("query requires -data and -q")
	}
	q := *queryText
	if strings.HasPrefix(q, "@") {
		b, err := os.ReadFile(q[1:])
		if err != nil {
			return err
		}
		q = string(b)
	}
	st, err := loadStore(*data, *indexes)
	if err != nil {
		return err
	}
	eng := sparql.NewEngine(st)
	if explain {
		var plan string
		if *analyze {
			plan, err = eng.ExplainAnalyzeContext(ctx, "data", q)
		} else {
			plan, err = eng.Explain("data", q)
		}
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	res, err := eng.QueryContext(ctx, "data", q)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Vars, "\t"))
	for i, row := range res.Rows {
		if i >= *limit {
			fmt.Printf("... (%d more rows)\n", res.Len()-*limit)
			break
		}
		parts := make([]string, len(row))
		for j, t := range row {
			if t.IsZero() {
				parts[j] = "UNBOUND"
			} else {
				parts[j] = t.String()
			}
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d rows\n", res.Len())
	return nil
}

// runTraverse exposes the Gremlin-style procedural traversal (§6 of the
// paper) from the command line: bounded-length path enumeration and
// shortest paths, which SPARQL 1.1 property paths cannot express (§5.1).
func runTraverse(args []string) error {
	fs := flag.NewFlagSet("traverse", flag.ExitOnError)
	data := fs.String("data", "", "N-Quads data file (a converted PG-as-RDF dataset)")
	indexes := fs.String("indexes", "PCSGM,PSCGM,SPCGM,GSPCM", "semantic network indexes")
	from := fs.String("from", "", "start vertex IRI")
	to := fs.String("to", "", "destination vertex IRI (shortest-path mode)")
	label := fs.String("label", "follows", "edge label to follow (empty = any)")
	minLen := fs.Int("min", 1, "minimum path length")
	maxLen := fs.Int("max", 3, "maximum path length")
	limit := fs.Int("print", 50, "max paths to print")
	prefix := fs.String("vertex-prefix", "v", "vertex IRI prefix used at conversion time")
	fs.Parse(args)
	if *data == "" || *from == "" {
		return fmt.Errorf("traverse requires -data and -from")
	}
	st, err := loadStore(*data, *indexes)
	if err != nil {
		return err
	}
	vocab := pgrdf.DefaultVocabulary()
	vocab.VertexPrefix = *prefix
	tr, err := pgrdf.NewTraverser(st, vocab, "")
	if err != nil {
		return err
	}
	start := rdf.NewIRI(*from)
	if *to != "" {
		path, ok := tr.ShortestPath(start, rdf.NewIRI(*to), *label)
		if !ok {
			fmt.Println("unreachable")
			return nil
		}
		fmt.Printf("%s (length %d)\n", path, path.Len())
		return nil
	}
	n := 0
	err = tr.Walk(start, *label, *minLen, *maxLen, func(p pgrdf.Path) bool {
		fmt.Println(p)
		n++
		return n < *limit
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d path(s) printed (limit %d)\n", n, *limit)
	return nil
}

// runAlgo projects a loaded dataset into a CSR (decoding edges under
// any of the three PG-as-RDF schemes) and runs one of the parallel
// graph algorithms from internal/graph. Results are identical at every
// -parallelism and under every scheme of the same property graph.
func runAlgo(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("algo requires an algorithm: pgrdf algo <pagerank|wcc|triangles> [flags]")
	}
	name := args[0]
	fs := flag.NewFlagSet("algo", flag.ExitOnError)
	data := fs.String("data", "", "N-Quads data file (a converted PG-as-RDF dataset)")
	indexes := fs.String("indexes", "PCSGM,PSCGM,SPCGM,GSPCM", "comma-separated semantic network indexes")
	model := fs.String("model", "data", "model to project (loadStore loads files as \"data\")")
	schemeName := fs.String("scheme", "auto", "projection scheme: RF, NG, SP or auto (sniff the dataset)")
	label := fs.String("label", "", "edge-label filter (empty = all relationship edges)")
	weightKey := fs.String("weight-key", "", "edge property read as weight (with pagerank -weighted)")
	k := fs.Int("k", 10, "rows to print (top scores / largest components)")
	par := fs.Int("parallelism", 0, "worker count (0 = GOMAXPROCS; results are identical at any value)")
	damping := fs.Float64("damping", 0.85, "pagerank damping factor")
	maxIter := fs.Int("max-iter", 50, "pagerank iteration cap")
	tolerance := fs.Float64("tolerance", 1e-6, "pagerank convergence tolerance (negative = run all iterations)")
	weighted := fs.Bool("weighted", false, "weighted pagerank (requires -weight-key)")
	fs.Parse(args[1:])
	if *data == "" {
		return fmt.Errorf("algo requires -data")
	}

	st, err := loadStore(*data, *indexes)
	if err != nil {
		return err
	}
	var scheme pgrdf.Scheme
	if strings.EqualFold(strings.TrimSpace(*schemeName), "auto") {
		if scheme, err = graph.DetectScheme(st, *model, pgrdf.Vocabulary{}); err != nil {
			return err
		}
	} else if scheme, err = parseScheme(*schemeName); err != nil {
		return err
	}

	start := time.Now()
	cs, err := graph.Project(ctx, st, graph.ProjectOptions{
		Model:     *model,
		Scheme:    scheme,
		Label:     *label,
		WeightKey: *weightKey,
		Reverse:   true,
	}, graph.Budget{})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "projected model %q (%s): %d vertices, %d edges in %.1f ms\n",
		*model, scheme, cs.NumVertices(), cs.NumEdges(), float64(time.Since(start).Microseconds())/1000)

	runner := graph.Runner{Parallelism: *par}
	start = time.Now()
	switch name {
	case "pagerank":
		res, err := runner.PageRank(ctx, cs, graph.PageRankOptions{
			Damping:       *damping,
			MaxIterations: *maxIter,
			Tolerance:     *tolerance,
			Weighted:      *weighted,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pagerank: %d iteration(s), converged=%v, %.1f ms\n",
			res.Iterations, res.Converged, float64(time.Since(start).Microseconds())/1000)
		fmt.Println("rank\tscore\tvertex")
		for i, r := range graph.TopScores(cs, res.Scores, *k) {
			fmt.Printf("%d\t%.6f\t%s\n", i+1, r.Score, r.Term)
		}
	case "wcc":
		res, err := runner.WCC(ctx, cs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wcc: %d iteration(s), %.1f ms\n",
			res.Iterations, float64(time.Since(start).Microseconds())/1000)
		fmt.Printf("components\t%d\n", res.Components)
		fmt.Println("size\trepresentative")
		for _, c := range graph.TopComponents(cs, res, *k) {
			fmt.Printf("%d\t%s\n", c.Size, c.Term)
		}
	case "triangles":
		res, err := runner.Triangles(ctx, cs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "triangles: %.1f ms\n", float64(time.Since(start).Microseconds())/1000)
		fmt.Printf("triangles\t%d\n", res.Count)
	default:
		return fmt.Errorf("unknown algorithm %q (want pagerank, wcc or triangles)", name)
	}
	return nil
}

// openStore builds a store from -restore (a snapshot, binary or text —
// auto-detected), -data (an RDF file) or neither (empty with the given
// indexes), in that precedence — the shared serve/snapshot start-up
// path.
func openStore(data, restore, indexes string) (*store.Store, error) {
	switch {
	case restore != "":
		f, err := os.Open(restore)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return store.RestoreAny(f)
	case data != "":
		return loadStore(data, indexes)
	default:
		return store.NewWithIndexes(strings.Split(indexes, ","))
	}
}

// runSnapshot writes a restorable store snapshot offline — the
// operator's checkpoint path when no server is running. The input is
// an RDF data file (-data), an existing snapshot (-restore), or a
// durability directory (-data-dir, recovered checkpoint + WAL tail).
func runSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	data := fs.String("data", "", "N-Quads data file to load")
	restore := fs.String("restore", "", "existing snapshot to load")
	dataDir := fs.String("data-dir", "", "durability directory to recover (checkpoint + WAL tail)")
	indexes := fs.String("indexes", "PCSGM,PSCGM,SPCGM,GSPCM", "comma-separated semantic network indexes (ignored with -restore/-data-dir)")
	out := fs.String("o", "-", "output snapshot file (- = stdout)")
	format := fs.String("format", "text", "snapshot format: text (N-Quads interchange) or binary (checkpoint codec, fast restore)")
	fs.Parse(args)
	if *format != "text" && *format != "binary" {
		return fmt.Errorf("unknown snapshot format %q; want text or binary", *format)
	}

	var st *store.Store
	var err error
	if *dataDir != "" {
		var l *wal.Log
		st, l, err = wal.Open(*dataDir, wal.Options{Sync: wal.SyncOff})
		if err != nil {
			return err
		}
		defer l.Close()
	} else {
		if *data == "" && *restore == "" {
			return fmt.Errorf("snapshot requires -data, -restore or -data-dir")
		}
		st, err = openStore(*data, *restore, *indexes)
		if err != nil {
			return err
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	if *format == "binary" {
		bw := bufio.NewWriterSize(w, 1<<20)
		if err := st.SnapshotBinary(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	} else if err := st.Snapshot(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s snapshot of %d quads across %d model(s) written\n", *format, st.Len(), len(st.Models()))
	return nil
}

// runCheckpoint asks a running pgrdf serve -data-dir instance to
// checkpoint now (POST /checkpoint): snapshot the store and truncate
// the write-ahead log. With -incremental the server folds the log into
// a small delta file instead of rewriting the full snapshot.
func runCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	addr := fs.String("addr", "localhost:3030", "address of the running pgrdf serve instance")
	timeout := fs.Duration("timeout", 10*time.Minute, "how long to wait for the checkpoint to complete")
	incremental := fs.Bool("incremental", false, "fold the log into a delta file instead of a full snapshot")
	fs.Parse(args)

	target := "http://" + *addr + "/checkpoint"
	if *incremental {
		target += "?mode=incremental"
	}
	cl := &http.Client{Timeout: *timeout}
	resp, err := cl.Post(target, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("checkpoint failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	return nil
}

// runServe starts a SPARQL 1.1 Protocol endpoint over a loaded dataset,
// with query guardrails (deadline, budget, admission control) and a
// graceful drain on SIGINT/SIGTERM: new requests are shed with 503
// while in-flight queries finish.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "", "N-Quads data file to load (optional: start empty)")
	restore := fs.String("restore", "", "store snapshot to restore (preserves models, virtual models and indexes)")
	indexes := fs.String("indexes", "PCSGM,PSCGM,SPCGM,GSPCM", "semantic network indexes")
	addr := fs.String("addr", "localhost:3030", "listen address")
	readOnly := fs.Bool("readonly", false, "disable the /update endpoint")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query wall-clock deadline (negative = unlimited)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max queries executing at once (0 = 2x GOMAXPROCS, negative = unlimited)")
	maxQueue := fs.Int("max-queue", 32, "max requests waiting for a free slot before shedding with 503")
	maxRows := fs.Int("max-rows", 0, "per-query result-row budget (0 = default, negative = unlimited)")
	maxBindings := fs.Int("max-bindings", 0, "per-query intermediate-binding budget (0 = default, negative = unlimited)")
	parallelism := fs.Int("parallelism", 0, "per-query worker budget for intra-query parallelism (0 = GOMAXPROCS, 1 or negative = serial)")
	drainWait := fs.Duration("drain", 15*time.Second, "max time to wait for in-flight queries on shutdown")
	slowLog := fs.String("slowlog", "", "slow-query log file (\"-\" = stderr, empty = disabled)")
	slowThreshold := fs.Duration("slow-threshold", time.Second, "wall time at or over which a query is slow-logged (0 = log every query)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	dataDir := fs.String("data-dir", "", "durability directory: recover on start, journal every update, checkpoint on demand (empty = in-memory only)")
	fsync := fs.String("fsync", "always", "WAL fsync policy: always, interval or off")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "fsync period under -fsync interval")
	checkpointEvery := fs.Duration("checkpoint-every", 0, "background incremental checkpoint period (0 = only POST /checkpoint)")
	follow := fs.String("follow", "", "replicate from a leader URL (e.g. http://leader:3030); the endpoint serves read-only queries")
	maxStaleness := fs.Duration("max-staleness", 0, "with -follow: fail reads with 503 once the leader has been unreachable this long (0 = serve stale reads forever)")
	degradedAfter := fs.Duration("degraded-after", 15*time.Second, "with -follow: leader-contact age at which /stats reports degraded")
	fs.Parse(args)

	if *follow != "" && (*dataDir != "" || *data != "" || *restore != "") {
		return fmt.Errorf("-follow replicates the leader's data and cannot be combined with -data, -restore or -data-dir")
	}

	var st *store.Store
	var l *wal.Log
	var err error
	if *follow != "" {
		// The follower starts empty; the replication loop swaps in the
		// leader's data once the bootstrap snapshot has been restored.
		st = store.New()
	} else if *dataDir != "" {
		policy, perr := wal.ParseSyncPolicy(*fsync)
		if perr != nil {
			return perr
		}
		st, l, err = wal.Open(*dataDir, wal.Options{
			Sync:      policy,
			SyncEvery: *fsyncInterval,
			Indexes:   strings.Split(*indexes, ","),
		})
		if err != nil {
			return err
		}
		defer l.Close()
		ws := l.Stats()
		fmt.Fprintf(os.Stderr, "pgrdf: recovered %d quads from %s (replayed %d WAL records, dropped %d torn bytes)\n",
			st.Len(), *dataDir, ws.ReplayedRecords, ws.TornBytesDropped)
		// Seed an empty data dir from -data / -restore, then checkpoint
		// immediately so the seed itself is durable.
		if st.Len() == 0 && (*data != "" || *restore != "") {
			st, err = openStore(*data, *restore, *indexes)
			if err != nil {
				return err
			}
			if err := l.Checkpoint(st); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "pgrdf: seeded %s with %d quads\n", *dataDir, st.Len())
		}
	} else {
		st, err = openStore(*data, *restore, *indexes)
		if err != nil {
			return err
		}
	}
	cfg := httpapi.DefaultConfig()
	cfg.QueryTimeout = *timeout
	cfg.UpdateTimeout = *timeout
	cfg.MaxConcurrent = *maxConcurrent
	cfg.MaxQueue = *maxQueue
	cfg.MaxRows = *maxRows
	cfg.MaxBindings = *maxBindings
	cfg.Parallelism = *parallelism
	cfg.EnablePprof = *enablePprof
	if *slowLog != "" {
		if *slowLog == "-" {
			cfg.SlowQueryLog = os.Stderr
		} else {
			f, ferr := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			cfg.SlowQueryLog = f
		}
		if *slowThreshold <= 0 {
			cfg.SlowQueryThreshold = -1 // log every query
		} else {
			cfg.SlowQueryThreshold = *slowThreshold
		}
	}
	if *parallelism < 0 {
		st.SetParallelism(1) // serial bulk loads too
	} else {
		st.SetParallelism(*parallelism)
	}
	h := httpapi.NewServerWithConfig(st, cfg)
	h.ReadOnly = *readOnly
	if l != nil {
		h.AttachWAL(l)
		l.StartCheckpointer(st, *checkpointEvery)
	}

	srv := &http.Server{Addr: *addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *follow != "" {
		f := repl.New(repl.Options{
			Leader:        *follow,
			MaxStaleness:  *maxStaleness,
			DegradedAfter: *degradedAfter,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "pgrdf: "+format+"\n", args...)
			},
		})
		h.AttachFollower(f)
		go f.Run(ctx) //nolint — returns only ctx.Err, reported via the signal path
		fmt.Fprintf(os.Stderr, "pgrdf: bootstrapping from %s (retrying until the leader answers)...\n", *follow)
		if _, err := f.WaitReady(ctx); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pgrdf: following %s; serving read-only queries\n", *follow)
	}
	fmt.Fprintf(os.Stderr, "SPARQL endpoint on http://%s/sparql (updates: http://%s/update, stats: http://%s/stats, metrics: http://%s/metrics)\n",
		*addr, *addr, *addr, *addr)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "pgrdf: draining in-flight queries...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Shed queued and future requests first, then close listeners and
	// wait for the in-flight ones.
	if err := h.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "pgrdf: drain timed out; forcing shutdown")
	}
	if l != nil {
		// All updates have drained; make their tail of the log durable
		// before the process exits (the deferred Close re-syncs, but by
		// then errors could only be logged, not returned).
		if err := l.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "pgrdf: final WAL sync failed:", err)
		}
	}
	return srv.Shutdown(dctx)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	data := fs.String("data", "", "N-Quads data file")
	indexes := fs.String("indexes", "PCSGM,PSCGM,SPCGM,GSPCM", "comma-separated semantic network indexes")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("stats requires -data")
	}
	st, err := loadStore(*data, *indexes)
	if err != nil {
		return err
	}
	ds, err := st.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("Quads        %d\nSubjects     %d\nPredicates   %d\nObjects      %d\nNamed Graphs %d\n",
		ds.Quads, ds.Subjects, ds.Predicates, ds.Objects, ds.NamedGraphs)
	rep := st.Storage()
	fmt.Println("\nEstimated storage:")
	for _, o := range rep.Objects {
		fmt.Printf("  %-16s %8.2f MB\n", o.Name, float64(o.Bytes)/(1<<20))
	}
	fmt.Printf("  %-16s %8.2f MB\n", "Total", rep.TotalMB())
	return nil
}
