// Command datagen generates the synthetic Twitter ego-network dataset
// (the substitute for the paper's SNAP egonets-Twitter data) in the
// relational format of Figure 3: an Edges TSV and an ObjKVs TSV.
//
// Usage:
//
//	datagen -scale 0.1 -out ./data
//
// writes data/edges.tsv and data/objkvs.tsv at 1/10 of the paper's
// scale, and prints the Table 6 characteristics.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/twitter"
)

func main() {
	scale := flag.Float64("scale", 0.1, "scale factor relative to the paper's dataset (973 egos)")
	seed := flag.Int64("seed", 0, "override the generator seed (0 = default)")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	cfg := twitter.PaperConfig().Scale(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	fmt.Fprintf(os.Stderr, "generating %d egos (scale %.3f)...\n", cfg.Egos, *scale)
	g := twitter.Generate(cfg)
	st := g.ComputeStats()
	fmt.Printf("Nodes    %d\nEdges    %d\nNode KVs %d\nEdge KVs %d\n",
		st.Vertices, st.Edges, st.NodeKVs, st.EdgeKVs)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	r := g.ToRelational()
	edgesPath := filepath.Join(*out, "edges.tsv")
	kvsPath := filepath.Join(*out, "objkvs.tsv")
	ef, err := os.Create(edgesPath)
	if err != nil {
		fatal(err)
	}
	defer ef.Close()
	if err := r.WriteEdges(ef); err != nil {
		fatal(err)
	}
	kf, err := os.Create(kvsPath)
	if err != nil {
		fatal(err)
	}
	defer kf.Close()
	if err := r.WriteObjKVs(kf); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", edgesPath, kvsPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
