// Command benchpaper regenerates the paper's evaluation: every table
// (1, 2, 5–9) and figure (4–9), printed side by side with the paper's
// reported numbers.
//
// Usage:
//
//	benchpaper -scale 0.1            # all experiments at 1/10 scale
//	benchpaper -table 9              # just Table 9
//	benchpaper -fig 8 -scale 0.05    # just Figure 8, smaller
//
// Absolute numbers differ from the paper (different machine, synthetic
// data, an in-memory Go store instead of Oracle 12c); the shapes — who
// wins, by roughly what factor — are the reproduction target. See
// EXPERIMENTS.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/twitter"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale relative to the paper (973 egos)")
	table := flag.String("table", "", "run a single table (1,2,5,6,7,8,9)")
	fig := flag.String("fig", "", "run a single figure (4,5,6,7,8,9)")
	seed := flag.Int64("seed", 0, "override generator seed")
	parallelBench := flag.Bool("parallelbench", false, "run the serial-vs-parallel comparison (morsel-driven executor + bulk load) instead of the paper tables")
	algoBench := flag.Bool("algobench", false, "run the graph-algorithm comparison (CSR projection + PageRank/WCC/triangles, serial vs parallel, all three schemes) instead of the paper tables")
	workers := flag.Int("workers", 8, "worker budget for -parallelbench and -algobench")
	requireCores := flag.Bool("require-cores", false, "fail -parallelbench/-algobench when GOMAXPROCS < workers instead of just warning (guards published speedup numbers)")
	iters := flag.Int("iters", 3, "timed iterations per query for -parallelbench and -profileoverhead (1 = smoke)")
	out := flag.String("out", "", "write the -parallelbench/-profileoverhead JSON report to this file (default stdout)")
	profileOverhead := flag.Bool("profileoverhead", false, "measure EQ1-EQ12 with vs without per-operator profiling and report the aggregate overhead")
	maxOverhead := flag.Float64("maxoverhead", 0, "fail when -profileoverhead exceeds this percentage (0 = report only)")
	explainAnalyze := flag.Bool("explainanalyze", false, "print EXPLAIN ANALYZE for every paper query on both schemes")
	recoveryBench := flag.Bool("recoverybench", false, "measure checkpoint write/restore and log-tail replay on a ~1M-quad durability directory (BENCH_recovery.json)")
	recoveryQuads := flag.Int("recoveryquads", 1_000_000, "checkpoint size target in quads for -recoverybench")
	recoveryTail := flag.Int("recoverytail", 10_000, "log-tail records to replay for -recoverybench")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The recovery bench builds its own durability directory; the
	// NG + SP query stores below would be dead weight.
	if *recoveryBench {
		start := time.Now()
		rep, err := bench.RecoveryBench(ctx, *recoveryQuads, *recoveryTail)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recovery bench done in %s: %d quads, binary checkpoint write %.0fms restore %.0fms (text restore %.0fms, %.1fx), %d-record tail replay %.0fms, incremental fold %.0fms (%d B delta)\n",
			time.Since(start).Round(time.Millisecond), rep.Quads,
			rep.CheckpointWriteMS, rep.CheckpointRestoreMS, rep.TextRestoreMS, rep.RestoreSpeedup,
			rep.TailRecords, rep.ReplayMS, rep.IncrCheckpointMS, rep.DeltaBytes)
		return
	}

	cfg := twitter.PaperConfig().Scale(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	fmt.Fprintf(os.Stderr, "generating dataset (%d egos) and loading NG + SP stores...\n", cfg.Egos)
	start := time.Now()
	env, err := bench.Setup(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchpaper:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "setup done in %s (graph: %d nodes, %d edges; tag analogue %q on %d nodes)\n\n",
		time.Since(start).Round(time.Millisecond), env.GraphStats.Vertices, env.GraphStats.Edges, env.Tag, env.TagNodeCount)

	switch {
	case *explainAnalyze:
		txt, err := bench.ExplainAnalyzeAll(ctx, env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		fmt.Print(txt)
	case *profileOverhead:
		rep, err := bench.ProfileOverhead(ctx, env, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "profiling overhead: %.2f%% (plain %.1fms, profiled %.1fms, best of %d)\n",
			rep.OverheadPct, rep.PlainMS, rep.ProfiledMS, rep.Iters)
		if *maxOverhead > 0 && rep.OverheadPct > *maxOverhead {
			fmt.Fprintf(os.Stderr, "benchpaper: profiling overhead %.2f%% exceeds the %.1f%% gate\n",
				rep.OverheadPct, *maxOverhead)
			os.Exit(1)
		}
	case *algoBench:
		if *workers < 2 {
			*workers = 2 // AlgoBench's own minimum
		}
		if procs := runtime.GOMAXPROCS(0); procs < *workers {
			fmt.Fprintf(os.Stderr, "benchpaper: WARNING: GOMAXPROCS=%d < workers=%d; parallel timings on this host are not speedup evidence\n",
				procs, *workers)
			if *requireCores {
				fmt.Fprintln(os.Stderr, "benchpaper: -require-cores set; refusing to write a report (rerun with -workers", procs, "or on a larger host)")
				os.Exit(1)
			}
		}
		rep, err := bench.AlgoBench(ctx, env, *workers, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (workers=%d, gomaxprocs=%d)\n", *out, rep.Workers, rep.GOMAXPROCS)
	case *parallelBench:
		// Speedup numbers measured with fewer cores than workers are
		// scheduler noise, not parallel speedups. Warn always; under
		// -require-cores (the Makefile bench target) refuse to publish.
		if *workers < 2 {
			*workers = 2 // ParallelBench's own minimum
		}
		if procs := runtime.GOMAXPROCS(0); procs < *workers {
			fmt.Fprintf(os.Stderr, "benchpaper: WARNING: GOMAXPROCS=%d < workers=%d; parallel timings on this host are not speedup evidence\n",
				procs, *workers)
			if *requireCores {
				fmt.Fprintln(os.Stderr, "benchpaper: -require-cores set; refusing to write a report (rerun with -workers", procs, "or on a larger host)")
				os.Exit(1)
			}
		}
		rep, err := bench.ParallelBench(ctx, env, *workers, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchpaper:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (workers=%d, gomaxprocs=%d)\n", *out, rep.Workers, rep.GOMAXPROCS)
	case *table != "":
		run(ctx, env, "table"+*table)
	case *fig != "":
		run(ctx, env, "fig"+*fig)
	default:
		for _, t := range bench.AllExperiments(ctx, env) {
			fmt.Println(t.String())
		}
	}
}

func run(ctx context.Context, env *bench.Env, id string) {
	t, err := bench.Experiment(ctx, env, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchpaper:", err)
		os.Exit(1)
	}
	fmt.Println(t.String())
}
