package repro

// One testing.B benchmark per table and figure of the paper, plus the
// ablation benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The dataset scale defaults to 2% of the paper's (fast enough for CI);
// override with REPRO_BENCH_SCALE, e.g.
//
//	REPRO_BENCH_SCALE=0.1 go test -bench=Figure8 -benchtime=1x
//
// Query benches report ns/op for one warm execution of the query, the
// same measurement Figures 5–9 plot.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/pgrdf"
	"repro/internal/sparql"
	"repro/internal/twitter"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.02
}

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = bench.Setup(twitter.PaperConfig().Scale(benchScale()))
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// runQueryBench benchmarks one query under one scheme.
func runQueryBench(b *testing.B, se *bench.SchemeEnv, name, query string) {
	b.Helper()
	model := bench.TargetModelFor(se, name)
	// Warm once (paper methodology) and sanity-check the query.
	if _, err := se.Engine.Query(model, query); err != nil {
		b.Fatalf("%s: %v", name, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := se.Engine.Query(model, query); err != nil {
			b.Fatal(err)
		}
	}
}

func queryBenchPair(b *testing.B, names ...string) {
	env := benchEnv(b)
	queries := env.Queries()
	for _, name := range names {
		for _, se := range env.SchemeEnvs() {
			scheme := se.Scheme
			if (name[len(name)-1] == 'a' && len(name) == 4 && scheme != pgrdf.NG) ||
				(name[len(name)-1] == 'b' && len(name) == 4 && scheme != pgrdf.SP) {
				continue
			}
			se := se
			q := queries[name]
			b.Run(fmt.Sprintf("%s/%s", name, scheme), func(b *testing.B) {
				runQueryBench(b, se, name, q)
			})
		}
	}
}

// ---- Tables ----------------------------------------------------------

// BenchmarkTable1 measures the Figure-1 transformation under all schemes
// (the Table 1 content generator).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Table1(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 measures cardinality prediction + measurement.
func BenchmarkTable2(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := bench.Table2(env); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5 measures plan explanation for the Table 5 queries.
func BenchmarkTable5(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := bench.Table5(env); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable6 measures dataset generation at bench scale (the
// Table 6 input); this is the data-production cost.
func BenchmarkTable6(b *testing.B) {
	cfg := twitter.PaperConfig().Scale(benchScale())
	for i := 0; i < b.N; i++ {
		g := twitter.Generate(cfg)
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkTable7 measures the NG and SP conversions (the Table 7
// triple-count source).
func BenchmarkTable7(b *testing.B) {
	env := benchEnv(b)
	for _, scheme := range []pgrdf.Scheme{pgrdf.NG, pgrdf.SP} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			conv := &pgrdf.Converter{Scheme: scheme, Vocab: bench.Vocab(), Opts: pgrdf.DefaultOptions()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds := conv.Convert(env.Graph)
				if ds.Len() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkTable8 measures dataset statistics computation.
func BenchmarkTable8(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := bench.Table8(env); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable9 measures the storage accounting of both stores.
func BenchmarkTable9(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ng := env.NG.Store.Storage()
		sp := env.SP.Store.Storage()
		if ng.Total == 0 || sp.Total == 0 {
			b.Fatal("empty storage report")
		}
	}
}

// BenchmarkLoad measures bulk load into partitioned stores (the paper's
// "loading the quads and triples took 5m16s / 6m01s").
func BenchmarkLoad(b *testing.B) {
	env := benchEnv(b)
	for _, scheme := range []pgrdf.Scheme{pgrdf.NG, pgrdf.SP} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			conv := &pgrdf.Converter{Scheme: scheme, Vocab: bench.Vocab(), Opts: pgrdf.DefaultOptions()}
			ds := conv.Convert(env.Graph)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := pgrdf.NewStore(scheme)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pgrdf.LoadPartitioned(st, ds, "pg"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figures ---------------------------------------------------------

// BenchmarkFigure4 measures degree-distribution computation.
func BenchmarkFigure4(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, in := env.Graph.DegreeDistribution()
		if len(out) == 0 || len(in) == 0 {
			b.Fatal("empty distribution")
		}
	}
}

// BenchmarkFigure5 benchmarks the node-centric queries EQ1–EQ4 on both
// schemes.
func BenchmarkFigure5(b *testing.B) {
	queryBenchPair(b, "EQ1", "EQ2", "EQ3", "EQ4")
}

// BenchmarkFigure6 benchmarks the edge-centric queries EQ5–EQ8 (a = NG
// formulation, b = SP formulation).
func BenchmarkFigure6(b *testing.B) {
	queryBenchPair(b, "EQ5a", "EQ5b", "EQ6a", "EQ6b", "EQ7a", "EQ7b", "EQ8a", "EQ8b")
}

// BenchmarkFigure7 benchmarks the aggregate queries EQ9–EQ10.
func BenchmarkFigure7(b *testing.B) {
	queryBenchPair(b, "EQ9", "EQ10")
}

// BenchmarkFigure8 benchmarks the graph-traversal queries EQ11a–d.
// EQ11e (5 hops) is benchmarked separately because its cost does not
// shrink with dataset scale (per-ego density is scale-invariant).
func BenchmarkFigure8(b *testing.B) {
	queryBenchPair(b, "EQ11a", "EQ11b", "EQ11c", "EQ11d")
}

// BenchmarkFigure8EQ11e benchmarks the 5-hop path count.
func BenchmarkFigure8EQ11e(b *testing.B) {
	queryBenchPair(b, "EQ11e")
}

// BenchmarkFigure9 benchmarks triangle counting (EQ12).
func BenchmarkFigure9(b *testing.B) {
	queryBenchPair(b, "EQ12")
}

// ---- Ablations (DESIGN.md §4) ----------------------------------------

// BenchmarkDML measures the paper's deferred DML study: delete+reinsert
// round trips for sampled edges, NG vs SP.
func BenchmarkDML(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := bench.DMLExtension(env, 100)
		if len(tab.Rows) != 2 {
			b.Fatalf("DML table rows = %d", len(tab.Rows))
		}
	}
}

// BenchmarkAblationJoinStrategy compares the adaptive NLJ/hash executor
// against forced pure NLJ on the triangle query — the paper's
// Experiment 5 hinges on the optimizer choosing hash joins here.
func BenchmarkAblationJoinStrategy(b *testing.B) {
	env := benchEnv(b)
	q := env.Queries()["EQ12"]
	model := bench.TargetModelFor(env.NG, "EQ12")
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"adaptive", false}, {"nlj-only", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			eng := sparql.NewEngine(env.NG.Store)
			eng.DisableHashJoin = mode.disable
			if _, err := eng.Query(model, q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(model, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitioning compares an edge-KV query against the
// narrow Table 4 partition target versus the whole dataset — §3.2's
// argument for partitioned storage.
func BenchmarkAblationPartitioning(b *testing.B) {
	env := benchEnv(b)
	q := env.Queries()["EQ8a"]
	for _, target := range []struct{ name, model string }{
		{"partitioned", bench.TargetModelFor(env.NG, "EQ8a")},
		{"full-dataset", env.NG.Names.All},
	} {
		target := target
		b.Run(target.name, func(b *testing.B) {
			if _, err := env.NG.Engine.Query(target.model, q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.NG.Engine.Query(target.model, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationExplicitSPO compares edge traversal on SP data with
// the explicitly asserted -s-p-o triple (query uses the plain pattern)
// versus without it (query must go through rdfs:subPropertyOf) — the §2
// Discussion design choice.
func BenchmarkAblationExplicitSPO(b *testing.B) {
	env := benchEnv(b)
	prologue := "PREFIX r: <http://pg/r/>\nPREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
	plain := prologue + `SELECT (COUNT(*) AS ?cnt) WHERE { ?x r:follows ?y . ?y r:follows ?z }`
	viaSub := prologue + `SELECT (COUNT(*) AS ?cnt) WHERE {
		?x ?e1 ?y . ?e1 rdfs:subPropertyOf r:follows .
		?y ?e2 ?z . ?e2 rdfs:subPropertyOf r:follows }`

	// Build an SP store WITHOUT the redundant -s-p-o triples.
	conv := &pgrdf.Converter{Scheme: pgrdf.SP, Vocab: bench.Vocab(), Opts: pgrdf.Options{ExplicitSPO: false}}
	ds := conv.Convert(env.Graph)
	st, err := pgrdf.NewStore(pgrdf.SP)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pgrdf.LoadPartitioned(st, ds, "pg"); err != nil {
		b.Fatal(err)
	}
	noSPO := sparql.NewEngine(st)

	b.Run("with-explicit-spo", func(b *testing.B) {
		model := env.SP.Names.Topology
		if _, err := env.SP.Engine.Query(model, plain); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.SP.Engine.Query(model, plain); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("via-subPropertyOf", func(b *testing.B) {
		if _, err := noSPO.Query("pg", viaSub); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := noSPO.Query("pg", viaSub); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRF measures the reification scheme the paper drops
// after §2.3 on the Q2-style edge-KV query, against NG and SP — showing
// why: one extra join per edge access.
func BenchmarkAblationRF(b *testing.B) {
	env := benchEnv(b)
	vocab := bench.Vocab()
	conv := &pgrdf.Converter{Scheme: pgrdf.RF, Vocab: vocab, Opts: pgrdf.DefaultOptions()}
	ds := conv.Convert(env.Graph)
	st, err := pgrdf.NewStore(pgrdf.RF)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pgrdf.LoadPartitioned(st, ds, "pg"); err != nil {
		b.Fatal(err)
	}
	engines := map[string]struct {
		eng   *sparql.Engine
		model string
		query string
	}{
		"RF": {sparql.NewEngine(st), "pg", mustBuild(pgrdf.RF, vocab)},
		"NG": {env.NG.Engine, env.NG.Names.TopoEdgeKV, mustBuild(pgrdf.NG, vocab)},
		"SP": {env.SP.Engine, env.SP.Names.TopoEdgeKV, mustBuild(pgrdf.SP, vocab)},
	}
	for _, name := range []string{"RF", "NG", "SP"} {
		e := engines[name]
		b.Run(name, func(b *testing.B) {
			if _, err := e.eng.Query(e.model, e.query); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.eng.Query(e.model, e.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustBuild(s pgrdf.Scheme, vocab pgrdf.Vocabulary) string {
	qb := &pgrdf.QueryBuilder{Scheme: s, Vocab: vocab}
	return qb.Select([]string{"x", "y", "k", "v"}, qb.EdgeKVPattern("x", "y", "e", "follows", "k", "v"))
}
