package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ntriples"
	"repro/internal/pg"
	"repro/internal/pgrdf"
)

// writeSocialDataset converts a small, fixed social network to N-Quads
// under the NG scheme: everyone follows v1, v1 follows v2, and v2/v3
// know their successor. Deterministic by construction, so the CLI
// output below is a stable golden.
func writeSocialDataset(t *testing.T, dir string) string {
	t.Helper()
	g := pg.NewGraph()
	for i := 1; i <= 5; i++ {
		if _, err := g.AddVertexWithID(pg.ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	edge := func(src, dst pg.ID, label string) {
		t.Helper()
		if _, err := g.AddEdge(src, dst, label); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i <= 5; i++ {
		edge(pg.ID(i), 1, "follows")
	}
	edge(1, 2, "follows")
	edge(2, 3, "knows")
	edge(3, 4, "knows")

	path := filepath.Join(dir, "social.nq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds := pgrdf.NewConverter(pgrdf.NG).Convert(g)
	if err := ntriples.NewWriter(f).WriteAll(ds.All()); err != nil {
		t.Fatal(err)
	}
	return path
}

// runPgrdf runs the real CLI binary via `go run` and returns stdout.
func runPgrdf(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "repro/cmd/pgrdf"}, args...)...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("pgrdf %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return string(out)
}

// TestAlgoCLI drives the social-network dataset through the `pgrdf
// algo` subcommand — the CLI face of the CSR analytics shown by this
// example — and asserts the expected output. The hub v1 must win
// PageRank, the graph is one weak component, and the results are
// deterministic so exact rows are safe to pin.
func TestAlgoCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the CLI via go run")
	}
	data := writeSocialDataset(t, t.TempDir())

	pr := runPgrdf(t, "algo", "pagerank", "-data", data, "-k", "2")
	prWant := "rank\tscore\tvertex\n" +
		"1\t0.359053\thttp://pg/v1\n" +
		"2\t0.335195\thttp://pg/v2\n"
	if pr != prWant {
		t.Errorf("pagerank output:\n%q\nwant:\n%q", pr, prWant)
	}

	wcc := runPgrdf(t, "algo", "wcc", "-data", data, "-k", "1", "-parallelism", "4")
	wccWant := "components\t1\n" +
		"size\trepresentative\n" +
		"5\thttp://pg/v1\n"
	if wcc != wccWant {
		t.Errorf("wcc output:\n%q\nwant:\n%q", wcc, wccWant)
	}

	// The scheme flag accepts an explicit NG too and must not change a
	// single byte of the output.
	pr2 := runPgrdf(t, "algo", "pagerank", "-data", data, "-k", "2", "-scheme", "NG", "-parallelism", "8")
	if pr2 != pr {
		t.Errorf("explicit -scheme NG -parallelism 8 changed the output:\n%q\nvs\n%q", pr2, pr)
	}
}
