// Socialnetwork: generate a synthetic Twitter-like ego-network dataset
// (the paper's §4.2 construction), load it under both the NG and SP
// schemes, and run a tour of the paper's experiment queries — node
// lookups, edge-KV access, degree aggregates, multi-hop path counting
// and triangle counting — reporting times and access plans.
//
// Run with:
//
//	go run ./examples/socialnetwork [-scale 0.02]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/twitter"
)

func main() {
	scale := flag.Float64("scale", 0.02, "dataset scale relative to the paper's 973 egos")
	flag.Parse()

	cfg := twitter.PaperConfig().Scale(*scale)
	fmt.Printf("generating %d ego networks...\n", cfg.Egos)
	env, err := bench.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := env.GraphStats
	fmt.Printf("graph: %d nodes, %d edges, %d node KVs, %d edge KVs\n",
		st.Vertices, st.Edges, st.NodeKVs, st.EdgeKVs)
	fmt.Printf("tag analogue for #webseries: %s (%d nodes)\n", env.Tag, env.TagNodeCount)
	fmt.Printf("EQ11 start node: %s\n\n", env.StartNode)

	queries := env.Queries()

	// Node-centric: who carries the tag, who follows them (EQ1, EQ2).
	runBoth(env, queries, "EQ1", "nodes with the tag")
	runBoth(env, queries, "EQ2", "followers of tagged nodes")

	// Edge-centric: edges carrying the tag as an edge KV, in each
	// scheme's own formulation (EQ5a for NG, EQ5b for SP).
	runOne(env.NG, queries, "EQ5a", "NG: edges with the tag (named-graph access)")
	runOne(env.SP, queries, "EQ5b", "SP: edges with the tag (subproperty access)")
	runOne(env.NG, queries, "EQ8a", "NG: all KVs of tagged edges")
	runOne(env.SP, queries, "EQ8b", "SP: all KVs of tagged edges")

	// Aggregates: degree distributions (EQ9, EQ10).
	runBoth(env, queries, "EQ9", "in-degree distribution")
	runBoth(env, queries, "EQ10", "out-degree distribution")

	// Traversal: 1..3 hop path counts from the start node.
	for _, name := range []string{"EQ11a", "EQ11b", "EQ11c"} {
		runBoth(env, queries, name, "path counting "+name)
	}

	// Triangles (EQ12).
	runBoth(env, queries, "EQ12", "follows-triangle count")

	// Show an access plan the way Table 5 does.
	fmt.Println("== access plan for EQ1 (NG) ==")
	plan, err := env.NG.Engine.Explain(bench.TargetModelFor(env.NG, "EQ1"), queries["EQ1"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	// In-memory property-graph analytics on the same graph (the workload
	// the paper's §1 attributes to native graph databases), side by side
	// with the SPARQL answers above.
	fmt.Println("== in-memory analytics (pg package) ==")
	_, comps := env.Graph.ConnectedComponents()
	fmt.Printf("weakly connected components: %d\n", comps)
	start := time.Now()
	triangles := env.Graph.CountTriangles("follows")
	fmt.Printf("follows triangles (index-free adjacency): %d in %s (SPARQL EQ12 above counts the same cycles)\n",
		triangles, time.Since(start).Round(time.Microsecond))
	for i, r := range env.Graph.TopPageRank(3, pg.PageRankOptions{}) {
		fmt.Printf("PageRank #%d: vertex %d (%.5f)\n", i+1, r.ID, r.Score)
	}

	// The same analytics straight off the RDF store: project the NG
	// dataset into a CSR and run the morsel-parallel algorithms that
	// `pgrdf algo` and POST /algo expose. Results are identical under
	// any scheme and any parallelism (see DESIGN.md §17).
	fmt.Println("\n== CSR analytics over the RDF store (pgrdf algo path) ==")
	start = time.Now()
	cs, err := graph.Project(context.Background(), env.NG.Store, graph.ProjectOptions{
		Model:   env.NG.Names.All,
		Scheme:  pgrdf.NG,
		Reverse: true,
	}, graph.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected %d vertices, %d edges in %s\n",
		cs.NumVertices(), cs.NumEdges(), time.Since(start).Round(time.Microsecond))
	runner := graph.Runner{}
	pr, err := runner.PageRank(context.Background(), cs, graph.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range graph.TopScores(cs, pr.Scores, 3) {
		fmt.Printf("PageRank #%d: %s (%.5f)\n", i+1, r.Term, r.Score)
	}
	wcc, err := runner.WCC(context.Background(), cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weakly connected components: %d (matches the pg count above)\n", wcc.Components)
}

func runBoth(env *bench.Env, queries map[string]string, name, what string) {
	runOne(env.NG, queries, name, "NG: "+what)
	runOne(env.SP, queries, name, "SP: "+what)
}

func runOne(se *bench.SchemeEnv, queries map[string]string, name, what string) {
	model := bench.TargetModelFor(se, name)
	start := time.Now()
	res, err := se.Engine.Query(model, queries[name])
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-8s %-55s %7d rows in %8s\n", name, what, res.Len(), time.Since(start).Round(time.Microsecond))
}
