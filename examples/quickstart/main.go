// Quickstart: build the paper's Figure 1 property graph, transform it to
// RDF under all three PG-as-RDF models (reification, named-graph,
// subproperty), load each into the Oracle-style quad store, and run the
// §2.1 query — "who follows whom since when?" — in each model's SPARQL
// formulation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/sparql"
)

func main() {
	// 1. Build the Figure 1 property graph.
	g := pg.NewGraph()
	v1, err := g.AddVertexWithID(1)
	check(err)
	v2, err := g.AddVertexWithID(2)
	check(err)
	v1.SetProperty("name", pg.S("Amy"))
	v1.SetProperty("age", pg.I(23))
	v2.SetProperty("name", pg.S("Mira"))
	v2.SetProperty("age", pg.I(22))
	follows, err := g.AddEdgeWithID(3, 1, 2, "follows")
	check(err)
	follows.SetProperty("since", pg.I(2007))
	knows, err := g.AddEdgeWithID(4, 1, 2, "knows")
	check(err)
	knows.SetProperty("firstMetAt", pg.S("MIT"))

	fmt.Printf("property graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	for _, scheme := range pgrdf.Schemes {
		fmt.Printf("=== %s scheme ===\n", scheme)

		// 2. Transform to RDF (Table 1 shapes).
		conv := pgrdf.NewConverter(scheme)
		ds := conv.Convert(g)
		for _, q := range ds.All() {
			fmt.Println(" ", q)
		}

		// 3. Load into a store with the scheme's recommended indexes,
		// partitioned into topology / node-KV / edge-KV models (§3.2).
		st, err := pgrdf.NewStore(scheme)
		check(err)
		names, err := pgrdf.LoadPartitioned(st, ds, "fig1")
		check(err)

		// 4. Ask "who follows whom since when?" using the scheme's
		// query formulation (§2.1 / Table 3 rules).
		qb := pgrdf.NewQueryBuilder(scheme)
		query := qb.Select(
			[]string{"xname", "yname", "yr"},
			qb.EdgeBoundKVPattern("x", "y", "e", "follows", "since", "yr"),
			qb.NodeKVPattern("x", "name", "xname"),
			qb.NodeKVPattern("y", "name", "yname"),
		)
		fmt.Println("\nSPARQL:")
		fmt.Println(query)

		res, err := sparql.NewEngine(st).Query(names.All, query)
		check(err)
		for _, row := range res.Rows {
			fmt.Printf("-> %s follows %s since %s\n", row[0].Value, row[1].Value, row[2].Value)
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
