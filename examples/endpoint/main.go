// Endpoint: serve a PG-as-RDF dataset over the SPARQL 1.1 Protocol and
// query it as an HTTP client — the deployment shape an RDF-backed
// property graph service takes (the paper's §1: "RDF stores can serve as
// backend storage for large property graph datasets").
//
// The example:
//
//  1. generates a small ego-network dataset and loads it under NG,
//  2. starts the HTTP endpoint on an ephemeral port,
//  3. runs SELECT, ASK and update requests through the wire protocol,
//     decoding the SPARQL 1.1 JSON results format.
//
// Run with:
//
//	go run ./examples/endpoint
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"time"

	"repro/internal/bench"
	"repro/internal/httpapi"
	"repro/internal/sparql"
	"repro/internal/twitter"
)

func main() {
	// 1. Data: a small ego-network dataset under the NG scheme.
	env, err := bench.Setup(twitter.PaperConfig().Scale(0.01))
	check(err)
	fmt.Printf("dataset: %d nodes, %d edges; serving the NG store\n",
		env.GraphStats.Vertices, env.GraphStats.Edges)

	// 2. Serve on an ephemeral port, with explicit guardrails: a 5s
	// per-query deadline, a bounded admission queue, and a per-query
	// resource budget (see httpapi.Config for the knobs).
	cfg := httpapi.DefaultConfig()
	cfg.QueryTimeout = 5 * time.Second
	ln, err := net.Listen("tcp", "localhost:0")
	check(err)
	handler := httpapi.NewServerWithConfig(env.NG.Store, cfg)
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("endpoint:", base+"/sparql")

	// 3a. SELECT over the wire.
	q := `PREFIX k: <http://pg/k/>
SELECT ?n (COUNT(?t) AS ?tags) WHERE { ?n k:hasTag ?t } GROUP BY ?n ORDER BY DESC(?tags) LIMIT 3`
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(q) + "&model=" + env.NG.Names.NodeKV)
	check(err)
	res, _, err := httpapi.ParseResultsJSON(resp.Body)
	resp.Body.Close()
	check(err)
	fmt.Println("\nmost-tagged nodes (SELECT via HTTP):")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %s tags\n", row[0].Value, row[1].Value)
	}

	// 3b. ASK over the wire.
	ask := `PREFIX r: <http://pg/r/> ASK { ?x r:follows ?y . ?y r:follows ?x }`
	resp, err = http.Get(base + "/sparql?query=" + url.QueryEscape(ask))
	check(err)
	_, mutualFollows, err := httpapi.ParseResultsJSON(resp.Body)
	resp.Body.Close()
	check(err)
	fmt.Printf("\nmutual follows exist (ASK via HTTP): %v\n", mutualFollows)

	// 3c. Update over the wire, then read it back.
	resp, err = http.PostForm(base+"/update", url.Values{
		"update": {`INSERT DATA { <http://pg/n999999> <http://pg/k/name> "wire-inserted" }`},
		"model":  {env.NG.Names.NodeKV},
	})
	check(err)
	resp.Body.Close()
	verify := `SELECT ?s WHERE { ?s <http://pg/k/name> "wire-inserted" }`
	resp, err = http.Get(base + "/sparql?query=" + url.QueryEscape(verify))
	check(err)
	res, _, err = httpapi.ParseResultsJSON(resp.Body)
	resp.Body.Close()
	check(err)
	fmt.Printf("update visible over the wire: %d row(s)\n", res.Len())

	// 3d. Guardrails: an adversarial cross join is stopped by the
	// engine's budget/deadline instead of taking the endpoint down.
	handler.Config() // effective limits, if you want to inspect them
	eng := sparql.NewEngine(env.NG.Store)
	eng.Limits = sparql.Budget{Timeout: 100 * time.Millisecond}
	_, err = eng.Query("", `SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f }`)
	fmt.Printf("unbounded cross join with 100ms budget: %v (timeout=%v)\n",
		err, errors.Is(err, sparql.ErrTimeout))

	// 4. Graceful drain: shed new arrivals, let in-flight finish.
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	check(handler.Drain(dctx))
	check(srv.Close())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
