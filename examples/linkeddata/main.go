// Linkeddata: the §5.2 scenario — once property-graph data is RDF, it
// can be linked to community datasets and enriched with OWL inference.
//
// The example:
//
//  1. builds a tiny Twitter-like property graph whose nodes carry
//     #train and #Tampa tags, transformed with the NG scheme;
//  2. loads a bundled synthetic WordNet fragment (synsets with sense
//     labels: train/educate/prepare) and links it via owl:sameAs, then
//     answers "find nodes tagged with any synonym of 'train'" by query
//     term expansion — the paper finds 6 direct + 13 expanded results;
//  3. loads a synthetic CIA World Factbook fragment (USA borders
//     Canada/Mexico, Tampa is a US port), runs the paper's user-defined
//     rule to infer :hasTagR edges from tagged nodes to neighboring
//     countries, and queries the inferred model.
//
// Run with:
//
//	go run ./examples/linkeddata
package main

import (
	"fmt"
	"log"

	"repro/internal/inference"
	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const (
	wnNS = "http://wordnet/"
	fbNS = "http://factbook/"
)

func main() {
	// --- 1. Property graph -> RDF (NG scheme). -----------------------
	g := pg.NewGraph()
	tags := map[int][]string{
		1: {"#train"}, 2: {"#train", "#Tampa"}, 3: {"#educate"},
		4: {"#prepare"}, 5: {"#Tampa"}, 6: {"#beach"},
	}
	for id := 1; id <= len(tags); id++ {
		v, err := g.AddVertexWithID(pg.ID(id))
		check(err)
		v.SetProperty("name", pg.S(fmt.Sprintf("user%d", id)))
		for _, tag := range tags[id] {
			v.AddProperty("hasTag", pg.S(tag))
		}
	}
	_, err := g.AddEdge(1, 2, "follows")
	check(err)

	st, err := pgrdf.NewStore(pgrdf.NG)
	check(err)
	conv := pgrdf.NewConverter(pgrdf.NG)
	ds := conv.Convert(g)
	_, err = pgrdf.LoadPartitioned(st, ds, "twitter")
	check(err)
	eng := sparql.NewEngine(st)

	// --- 2. WordNet linking + query term expansion. -------------------
	check2(st.Load("wordnet", wordnetFragment()))

	// The paper's query: tags matching any sense label in the synset of
	// the word "train".
	query := `
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX wn: <` + wnNS + `>
PREFIX k: <http://pg/k/>
SELECT ?n ?y WHERE {
  ?w wn:senseLabel "train"@en-us .
  ?w rdfs:label ?label .
  ?n k:hasTag ?y
  FILTER (STR(?y) = CONCAT("#", STR(?label)))
}`
	check2(0, queryAndPrint(eng, "", "nodes tagged with a synonym of 'train'", query))

	// --- 3. Factbook + user-defined rule (:hasTagR). ------------------
	check2(st.Load("factbook", factbookFragment()))

	inf := inference.New(st)
	for _, r := range inference.OWLRules() {
		check(inf.AddRule(r))
	}
	// The paper's rule: a node tagged #Tampa gets :hasTagR links to the
	// countries neighboring Tampa's country (via ports + nbr chain).
	check(inf.AddRule(inference.Rule{
		Name: "hasTagR",
		Body: []inference.TriplePattern{
			{S: "?n", P: "<http://pg/k/hasTag>", O: `"#Tampa"`},
			{S: "?c", P: "<" + fbNS + "ports>", O: "<" + fbNS + "Tampa>"},
			{S: "?c", P: "<" + fbNS + "nbr>", O: "?other"},
		},
		Head: []inference.TriplePattern{
			{S: "?n", P: "<http://pg/k/hasTagR>", O: "?other"},
		},
	}))
	n, err := inf.Run("", "inferred", inference.Options{})
	check(err)
	fmt.Printf("inference: %d new triples\n\n", n)

	check2(0, queryAndPrint(eng, "", "inferred hasTagR links to neighboring countries", `
PREFIX k: <http://pg/k/>
SELECT ?n ?country WHERE { ?n k:hasTagR ?country }`))
}

// wordnetFragment is a bundled stand-in for the WordNet RDF dataset: one
// synset grouping train/educate/prepare under the sense label "train".
func wordnetFragment() []rdf.Quad {
	synset := rdf.NewIRI(wnNS + "synset-train-v-1")
	label := func(s string) rdf.Quad {
		return rdf.Quad{S: synset, P: rdf.NewIRI(rdf.RDFSLabel), O: rdf.NewLiteral(s)}
	}
	return []rdf.Quad{
		{S: synset, P: rdf.NewIRI(wnNS + "senseLabel"), O: rdf.NewLangLiteral("train", "en-us")},
		label("train"), label("educate"), label("prepare"),
	}
}

// factbookFragment is a bundled stand-in for the CIA World Factbook RDF:
// USA has port Tampa and borders Canada and Mexico.
func factbookFragment() []rdf.Quad {
	usa := rdf.NewIRI(fbNS + "USA")
	return []rdf.Quad{
		{S: usa, P: rdf.NewIRI(fbNS + "ports"), O: rdf.NewIRI(fbNS + "Tampa")},
		{S: usa, P: rdf.NewIRI(fbNS + "nbr"), O: rdf.NewIRI(fbNS + "Canada")},
		{S: usa, P: rdf.NewIRI(fbNS + "nbr"), O: rdf.NewIRI(fbNS + "Mexico")},
	}
}

func queryAndPrint(eng *sparql.Engine, model, what, q string) error {
	res, err := eng.Query(model, q)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (%d rows) ==\n", what, res.Len())
	for _, row := range res.Rows {
		for i, t := range row {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Print(t.String())
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func check2(_ int, err error) { check(err) }
