package turtle

import (
	"bytes"
	"testing"
)

// TestRoundTripCornerCases runs the FuzzParse property (accepted input
// must serialize and re-parse to the same triple set) over hand-picked
// inputs that stress the writer: escapes, long strings, numeric forms,
// empty containers, and bytes that broke the sibling N-Triples parser.
func TestRoundTripCornerCases(t *testing.T) {
	inputs := []string{
		"<http://a> <http://p> \"ends with backslash \\\\\" .\n",
		"<http://a> <http://p> \"has \\\" quote\" .\n",
		"<http://a> <http://p> \"\"\"a\"b\"\"c\"\"\" .\n",
		"<http://a> <http://p> \"tab\\there\" .\n",
		"<http://a> <http://p> \"new\\nline\" .\n",
		"<http://a> <http://p> 1. .\n",
		"<http://a> <http://p> 007 .\n",
		"<http://a> <http://p> -0.0 .\n",
		"<http://a> <http://p> 1E+0 .\n",
		"<http://a> <http://p> \"x\"@EN-us .\n",
		"<http://a> <http://p> \"\" .\n",
		"<http://a> <http://p> '''x''y''' .\n",
		"@prefix : <http://x/> .\n:a :p ( ) .\n",
		"@prefix : <http://x/> .\n:a :p [ ] .\n",
		"<http://a> <http://p> \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
		"<http://a> <http://p> \"x y\"^^<http://w/dt> .\n",
		"<http://a> <http://p> \"\xc3\" .\n",
		"\xe2\x80\xa2 <http://p> <http://b> .\n",
	}
	for _, data := range inputs {
		triples, err := ParseString(data)
		if err != nil {
			continue // rejection is fine; the property covers accepted input
		}
		var buf bytes.Buffer
		if err := Write(&buf, triples, nil); err != nil {
			t.Errorf("writer rejected parser output: %v\ninput: %q", err, data)
			continue
		}
		again, err := ParseString(buf.String())
		if err != nil {
			t.Errorf("round-trip re-parse failed: %v\ninput: %q\nserialized: %q", err, data, buf.String())
			continue
		}
		if !sameTripleSet(triples, again) {
			t.Errorf("round-trip differs\ninput: %q\nserialized: %q", data, buf.String())
		}
	}
}
