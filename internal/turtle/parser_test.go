package turtle

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func mustParse(t *testing.T, src string) []rdf.Triple {
	t.Helper()
	triples, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return triples
}

func tripleSet(triples []rdf.Triple) map[string]bool {
	m := make(map[string]bool, len(triples))
	for _, tr := range triples {
		m[tr.String()] = true
	}
	return m
}

func TestBasicTriples(t *testing.T) {
	triples := mustParse(t, `
		@prefix rel: <http://pg/r/> .
		@prefix pg: <http://pg/> .
		pg:v1 rel:follows pg:v2 .
		<http://pg/v2> <http://pg/r/knows> <http://pg/v1> .
	`)
	if len(triples) != 2 {
		t.Fatalf("triples = %d", len(triples))
	}
	set := tripleSet(triples)
	if !set["<http://pg/v1> <http://pg/r/follows> <http://pg/v2>"] {
		t.Errorf("prefixed triple missing: %v", triples)
	}
}

func TestSPARQLStylePrefix(t *testing.T) {
	triples := mustParse(t, `
		PREFIX rel: <http://pg/r/>
		<http://pg/v1> rel:follows <http://pg/v2> .
	`)
	if len(triples) != 1 || triples[0].P.Value != "http://pg/r/follows" {
		t.Fatalf("triples = %v", triples)
	}
}

func TestPredicateAndObjectLists(t *testing.T) {
	triples := mustParse(t, `
		@prefix k: <http://pg/k/> .
		<http://pg/v1> k:name "Amy" ;
		               k:tag "#a" , "#b" ;
		               a <http://pg/Person> .
	`)
	if len(triples) != 4 {
		t.Fatalf("triples = %d: %v", len(triples), triples)
	}
	set := tripleSet(triples)
	for _, want := range []string{
		`<http://pg/v1> <http://pg/k/name> "Amy"`,
		`<http://pg/v1> <http://pg/k/tag> "#a"`,
		`<http://pg/v1> <http://pg/k/tag> "#b"`,
		`<http://pg/v1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pg/Person>`,
	} {
		if !set[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestLiteralForms(t *testing.T) {
	triples := mustParse(t, `
		@prefix k: <http://pg/k/> .
		@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		<http://s> k:a "plain" ;
			k:b "typed"^^xsd:token ;
			k:c "tagged"@en-US ;
			k:d 42 ;
			k:e -3.14 ;
			k:f 1.0e6 ;
			k:g true ;
			k:h false ;
			k:i 'single' ;
			k:j """long
line"""  ;
			k:k "esc\t\"x\"é" .
	`)
	byKey := map[string]rdf.Term{}
	for _, tr := range triples {
		byKey[tr.P.Value[len("http://pg/k/"):]] = tr.O
	}
	checks := map[string]rdf.Term{
		"a": rdf.NewLiteral("plain"),
		"b": rdf.NewTypedLiteral("typed", rdf.XSDNS+"token"),
		"c": rdf.NewLangLiteral("tagged", "en-us"),
		"d": rdf.NewTypedLiteral("42", rdf.XSDInteger),
		"e": rdf.NewTypedLiteral("-3.14", rdf.XSDDecimal),
		"f": rdf.NewTypedLiteral("1.0e6", rdf.XSDDouble),
		"g": rdf.NewBoolean(true),
		"h": rdf.NewBoolean(false),
		"i": rdf.NewLiteral("single"),
		"j": rdf.NewLiteral("long\nline"),
		"k": rdf.NewLiteral("esc\t\"x\"é"),
	}
	for key, want := range checks {
		got, ok := byKey[key]
		if !ok || !got.Equal(want) {
			t.Errorf("k:%s = %v, want %v", key, got, want)
		}
	}
}

func TestBlankNodes(t *testing.T) {
	triples := mustParse(t, `
		@prefix k: <http://pg/k/> .
		_:b1 k:name "explicit" .
		<http://s> k:address [ k:city "Nashua" ; k:state "NH" ] .
	`)
	if len(triples) != 4 {
		t.Fatalf("triples = %d: %v", len(triples), triples)
	}
	// The anonymous node must connect the address triples.
	var anon rdf.Term
	for _, tr := range triples {
		if tr.P.Value == "http://pg/k/address" {
			anon = tr.O
		}
	}
	if !anon.IsBlank() {
		t.Fatalf("address object = %v", anon)
	}
	cityOK := false
	for _, tr := range triples {
		if tr.S.Equal(anon) && tr.P.Value == "http://pg/k/city" {
			cityOK = true
		}
	}
	if !cityOK {
		t.Error("anonymous property list not connected")
	}
}

func TestCollections(t *testing.T) {
	triples := mustParse(t, `
		@prefix k: <http://pg/k/> .
		<http://s> k:list ( "a" "b" ) .
		<http://s> k:empty ( ) .
	`)
	set := tripleSet(triples)
	// Empty list is rdf:nil.
	if !set[`<http://s> <http://pg/k/empty> <http://www.w3.org/1999/02/22-rdf-syntax-ns#nil>`] {
		t.Errorf("empty collection: %v", triples)
	}
	// Chain: s -list-> cell1 -first-> "a", cell1 -rest-> cell2 ... -rest-> nil.
	firsts, rests := 0, 0
	for _, tr := range triples {
		if strings.HasSuffix(tr.P.Value, "#first") {
			firsts++
		}
		if strings.HasSuffix(tr.P.Value, "#rest") {
			rests++
		}
	}
	if firsts != 2 || rests != 2 {
		t.Errorf("list structure: firsts=%d rests=%d\n%v", firsts, rests, triples)
	}
}

func TestBaseResolution(t *testing.T) {
	triples := mustParse(t, `
		@base <http://example.org/data/> .
		<item1> <rel> <item2> .
		<#frag> <rel> <item3> .
	`)
	sort.Slice(triples, func(i, j int) bool { return triples[i].S.Value < triples[j].S.Value })
	if triples[1].S.Value != "http://example.org/data/item1" {
		t.Errorf("relative IRI = %q", triples[1].S.Value)
	}
	if !strings.HasPrefix(triples[0].S.Value, "http://example.org/data/#frag") {
		t.Errorf("fragment IRI = %q", triples[0].S.Value)
	}
}

func TestComments(t *testing.T) {
	triples := mustParse(t, `
		# leading comment
		@prefix k: <http://pg/k/> . # trailing comment
		<http://s> k:p "v" . # done
	`)
	if len(triples) != 1 {
		t.Fatalf("triples = %d", len(triples))
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> "unterminated .`,
		`<http://s> <http://p> <http://o>`,    // missing dot
		`<http://s> nope:x <http://o> .`,      // unknown prefix
		`@prefix k <http://x/> .`,             // missing colon
		`<http://s> <http://p> "x"@ .`,        // empty lang
		`<http://s> <http://p> [ k:a "v" .`,   // unterminated []
		`<http://s> <http://p> ( "a" .`,       // unterminated ()
		`<http://s> <http://p> 1.2e .`,        // malformed double
		`<http://s> <http://p> "a\qb" .`,      // bad escape
		`<http://s a b> <http://p> "x" .`,     // space in IRI
		`@prefix k: <http://x/> . k:s k:p k:`, // missing dot at EOF
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted invalid: %s", src)
		}
	}
}

func TestTrailingDotInPrefixedName(t *testing.T) {
	triples := mustParse(t, `
		@prefix pg: <http://pg/> .
		pg:v1 pg:p pg:v2.
	`)
	if len(triples) != 1 || triples[0].O.Value != "http://pg/v2" {
		t.Fatalf("triples = %v", triples)
	}
}

// TestAgainstNTriples cross-checks the two parsers: a Turtle document
// without Turtle-specific sugar parses identically as N-Triples.
func TestAgainstNTriples(t *testing.T) {
	doc := `<http://s> <http://p> "lit" .
<http://s> <http://p2> <http://o> .
_:b <http://p3> "x"@en .`
	turtleTriples := mustParse(t, doc)
	if len(turtleTriples) != 3 {
		t.Fatalf("turtle parsed %d", len(turtleTriples))
	}
	set := tripleSet(turtleTriples)
	for _, want := range []string{
		`<http://s> <http://p> "lit"`,
		`<http://s> <http://p2> <http://o>`,
		`_:b <http://p3> "x"@en`,
	} {
		if !set[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRealWorldShape(t *testing.T) {
	// A WordNet-flavored snippet like §5.2 would load.
	triples := mustParse(t, `
		@prefix wn: <http://wordnet/> .
		@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
		wn:synset-train-v-1
			wn:senseLabel "train"@en-us ;
			rdfs:label "train" , "educate" , "prepare" .
	`)
	if len(triples) != 4 {
		t.Fatalf("triples = %d", len(triples))
	}
}
