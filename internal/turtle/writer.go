package turtle

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Write serializes triples as Turtle: @prefix directives for every
// prefix actually used, subjects grouped with ';' predicate lists and
// ',' object lists. The output re-parses to exactly the input triple
// set (round-trip property-tested).
func Write(w io.Writer, triples []rdf.Triple, prefixes rdf.PrefixMap) error {
	bw := bufio.NewWriter(w)

	// Group by subject, preserving first-appearance order; within a
	// subject group by predicate.
	type pgroup struct {
		pred    rdf.Term
		objects []rdf.Term
	}
	type sgroup struct {
		subj  rdf.Term
		preds []*pgroup
		pidx  map[string]*pgroup
	}
	var order []*sgroup
	bySubj := map[string]*sgroup{}
	for _, t := range triples {
		sk := t.S.String()
		sg, ok := bySubj[sk]
		if !ok {
			sg = &sgroup{subj: t.S, pidx: map[string]*pgroup{}}
			bySubj[sk] = sg
			order = append(order, sg)
		}
		pk := t.P.String()
		pg, ok := sg.pidx[pk]
		if !ok {
			pg = &pgroup{pred: t.P}
			sg.pidx[pk] = pg
			sg.preds = append(sg.preds, pg)
		}
		pg.objects = append(pg.objects, t.O)
	}

	// Emit only the prefixes that shorten something in this document.
	used := map[string]string{}
	shorten := func(iri string) (string, bool) {
		best, bestNS := "", ""
		for label, ns := range prefixes {
			if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) && validLocal(iri[len(ns):]) {
				best, bestNS = label, ns
			}
		}
		if bestNS == "" {
			return "", false
		}
		used[best] = bestNS
		return best + ":" + iri[len(bestNS):], true
	}
	renderTerm := func(t rdf.Term) string {
		switch t.Kind {
		case rdf.KindIRI:
			if t.Value == rdf.RDFType {
				return "a"
			}
			if s, ok := shorten(t.Value); ok {
				return s
			}
			return "<" + t.Value + ">"
		case rdf.KindLiteral:
			if t.Lang == "" && t.Datatype != "" {
				if s, ok := shorten(t.Datatype); ok {
					return quoteTurtle(t.Value) + "^^" + s
				}
			}
			return t.String() // N-Triples form is valid Turtle
		default:
			return t.String()
		}
	}

	// Render the body first so `used` is populated.
	var body strings.Builder
	for _, sg := range order {
		body.WriteString(renderTerm(sg.subj))
		for pi, pg := range sg.preds {
			if pi == 0 {
				body.WriteByte(' ')
			} else {
				body.WriteString(" ;\n    ")
			}
			body.WriteString(renderTerm(pg.pred))
			for oi, o := range pg.objects {
				if oi == 0 {
					body.WriteByte(' ')
				} else {
					body.WriteString(" , ")
				}
				body.WriteString(renderTerm(o))
			}
		}
		body.WriteString(" .\n")
	}

	labels := make([]string, 0, len(used))
	for l := range used {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if _, err := fmt.Fprintf(bw, "@prefix %s: <%s> .\n", l, used[l]); err != nil {
			return err
		}
	}
	if len(labels) > 0 {
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(body.String()); err != nil {
		return err
	}
	return bw.Flush()
}

// validLocal reports whether a string can appear as the local part of a
// prefixed name in our writer (conservative: names the parser accepts
// and that cannot end in '.').
func validLocal(s string) bool {
	if s == "" || strings.HasSuffix(s, ".") {
		return false
	}
	for _, r := range s {
		if !isNameChar(r) {
			return false
		}
	}
	return true
}

// quoteTurtle renders a short quoted string with escapes.
func quoteTurtle(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
