// Package turtle implements a parser for the W3C Turtle RDF syntax —
// the human-oriented serialization format RDF stores accept alongside
// N-Triples/N-Quads. Supported subset: @prefix/@base (and the SPARQL
// PREFIX/BASE spellings), prefixed names, 'a', predicate and object
// lists (';' and ','), anonymous blank nodes with property lists
// ([ ... ]), literals with datatypes, language tags and the numeric /
// boolean shortcuts, and long (triple-quoted) strings. RDF collections
// are parsed into the standard rdf:first/rdf:rest list encoding.
package turtle

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/rdf"
)

// Parse reads a complete Turtle document and returns its triples.
func Parse(r io.Reader) ([]rdf.Triple, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &parser{src: string(src), line: 1, prefixes: rdf.PrefixMap{}}
	return p.document()
}

// ParseString parses a Turtle document from a string.
func ParseString(src string) ([]rdf.Triple, error) {
	return Parse(strings.NewReader(src))
}

type parser struct {
	src      string
	pos      int
	line     int
	prefixes rdf.PrefixMap
	base     string
	blankSeq int
	triples  []rdf.Triple
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) document() ([]rdf.Triple, error) {
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return p.triples, nil
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) statement() error {
	switch {
	case p.hasKeyword("@prefix"), p.hasKeywordCI("PREFIX"):
		return p.prefixDirective()
	case p.hasKeyword("@base"), p.hasKeywordCI("BASE"):
		return p.baseDirective()
	default:
		return p.triplesStatement()
	}
}

// hasKeyword consumes a case-sensitive keyword if present.
func (p *parser) hasKeyword(kw string) bool {
	if strings.HasPrefix(p.src[p.pos:], kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

// hasKeywordCI consumes a case-insensitive keyword followed by
// whitespace (distinguishing the SPARQL-style PREFIX from a prefixed
// name like PREFIX:x).
func (p *parser) hasKeywordCI(kw string) bool {
	end := p.pos + len(kw)
	if end >= len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:end], kw) {
		return false
	}
	if c := p.src[end]; c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != '<' {
		return false
	}
	p.pos = end
	return true
}

func (p *parser) prefixDirective() error {
	p.skipWS()
	label, err := p.prefixLabel()
	if err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[label] = iri
	p.skipWS()
	p.consume('.') // @prefix requires it; SPARQL PREFIX omits it — accept both
	return nil
}

func (p *parser) baseDirective() error {
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipWS()
	p.consume('.')
	return nil
}

// prefixLabel reads "label:" (label may be empty).
func (p *parser) prefixLabel() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isNameChar(rune(p.src[p.pos])) {
		p.pos++
	}
	label := p.src[start:p.pos]
	if !p.consume(':') {
		return "", p.errf("expected ':' after prefix label %q", label)
	}
	return label, nil
}

func (p *parser) triplesStatement() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if !p.consume('.') {
		return p.errf("expected '.' at end of statement")
	}
	return nil
}

func (p *parser) predicateObjectList(subj rdf.Term) error {
	for {
		p.skipWS()
		pred, err := p.verb()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.emit(subj, pred, obj)
			p.skipWS()
			if !p.consume(',') {
				break
			}
		}
		p.skipWS()
		if !p.consume(';') {
			return nil
		}
		// Allow trailing ';' before '.' / ']' .
		p.skipWS()
		if p.pos < len(p.src) && (p.src[p.pos] == '.' || p.src[p.pos] == ']') {
			return nil
		}
	}
}

func (p *parser) emit(s, pr, o rdf.Term) {
	p.triples = append(p.triples, rdf.NewTriple(s, pr, o))
}

func (p *parser) verb() (rdf.Term, error) {
	if p.pos < len(p.src) && p.src[p.pos] == 'a' {
		// 'a' only when followed by whitespace or '<' etc.
		if p.pos+1 < len(p.src) {
			c := p.src[p.pos+1]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<' || c == '[' {
				p.pos++
				return rdf.NewIRI(rdf.RDFType), nil
			}
		}
	}
	t, err := p.iriTerm()
	if err != nil {
		return rdf.Term{}, err
	}
	return t, nil
}

func (p *parser) subject() (rdf.Term, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return rdf.Term{}, p.errf("unexpected end of input, expected a subject")
	}
	switch p.src[p.pos] {
	case '[':
		return p.blankNodePropertyList()
	case '(':
		return p.collection()
	case '_':
		return p.blankNode()
	default:
		return p.iriTerm()
	}
}

func (p *parser) object() (rdf.Term, error) {
	if p.pos >= len(p.src) {
		return rdf.Term{}, p.errf("unexpected end of input, expected an object")
	}
	c := p.src[p.pos]
	switch {
	case c == '[':
		return p.blankNodePropertyList()
	case c == '(':
		return p.collection()
	case c == '_':
		return p.blankNode()
	case c == '"' || c == '\'':
		return p.literal()
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case strings.HasPrefix(p.src[p.pos:], "true") && p.atWordBoundary(4):
		p.pos += 4
		return rdf.NewBoolean(true), nil
	case strings.HasPrefix(p.src[p.pos:], "false") && p.atWordBoundary(5):
		p.pos += 5
		return rdf.NewBoolean(false), nil
	default:
		return p.iriTerm()
	}
}

func (p *parser) atWordBoundary(offset int) bool {
	i := p.pos + offset
	if i >= len(p.src) {
		return true
	}
	r, _ := utf8.DecodeRuneInString(p.src[i:])
	return !isNameChar(r)
}

// blankNodePropertyList parses [ predicateObjectList? ], returning a
// fresh blank node.
func (p *parser) blankNodePropertyList() (rdf.Term, error) {
	p.pos++ // '['
	p.blankSeq++
	node := rdf.NewBlank(fmt.Sprintf("anon%d", p.blankSeq))
	p.skipWS()
	if p.consume(']') {
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	p.skipWS()
	if !p.consume(']') {
		return rdf.Term{}, p.errf("expected ']'")
	}
	return node, nil
}

// collection parses ( object* ) into rdf:first/rdf:rest structure.
func (p *parser) collection() (rdf.Term, error) {
	p.pos++ // '('
	first := rdf.NewIRI(rdf.RDFNS + "first")
	rest := rdf.NewIRI(rdf.RDFNS + "rest")
	nilT := rdf.NewIRI(rdf.RDFNS + "nil")
	var items []rdf.Term
	for {
		p.skipWS()
		if p.consume(')') {
			break
		}
		if p.pos >= len(p.src) {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		item, err := p.object()
		if err != nil {
			return rdf.Term{}, err
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return nilT, nil
	}
	head := rdf.Term{}
	var prev rdf.Term
	for i, item := range items {
		p.blankSeq++
		cell := rdf.NewBlank(fmt.Sprintf("list%d", p.blankSeq))
		if i == 0 {
			head = cell
		} else {
			p.emit(prev, rest, cell)
		}
		p.emit(cell, first, item)
		prev = cell
	}
	p.emit(prev, rest, nilT)
	return head, nil
}

func (p *parser) blankNode() (rdf.Term, error) {
	if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
		return rdf.Term{}, p.errf("expected '_:'")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.src) && isNameChar(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.src[start:p.pos]), nil
}

// iriTerm parses <iri> or prefixed:name.
func (p *parser) iriTerm() (rdf.Term, error) {
	if p.pos < len(p.src) && p.src[p.pos] == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	}
	// Prefixed name.
	start := p.pos
	for p.pos < len(p.src) && isNameChar(rune(p.src[p.pos])) {
		p.pos++
	}
	label := p.src[start:p.pos]
	if !p.consume(':') {
		return rdf.Term{}, p.errf("expected an IRI or prefixed name near %q", snippet(p.src[start:]))
	}
	ns, ok := p.prefixes[label]
	if !ok {
		return rdf.Term{}, p.errf("unknown prefix %q", label)
	}
	lstart := p.pos
	for p.pos < len(p.src) {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if !isLocalChar(r) {
			break
		}
		p.pos += size
	}
	local := p.src[lstart:p.pos]
	for strings.HasSuffix(local, ".") {
		local = local[:len(local)-1]
		p.pos--
	}
	return rdf.NewIRI(ns + local), nil
}

func (p *parser) iriRef() (string, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return "", p.errf("expected '<'")
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	if strings.ContainsAny(iri, " \t\n\"{}|^`") {
		return "", p.errf("IRI %q contains a forbidden character", iri)
	}
	return p.resolve(iri), nil
}

// resolve applies the base IRI to relative references (simple
// concatenation-style resolution, sufficient for same-document bases).
func (p *parser) resolve(iri string) string {
	if p.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") {
		return iri
	}
	if strings.HasPrefix(iri, "#") {
		return strings.TrimSuffix(p.base, "#") + iri
	}
	base := p.base
	if i := strings.LastIndexByte(base, '/'); i > len("https://") {
		base = base[:i+1]
	}
	return base + iri
}

func (p *parser) literal() (rdf.Term, error) {
	lex, err := p.quotedString()
	if err != nil {
		return rdf.Term{}, err
	}
	// Language tag or datatype?
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isAlnum(p.src[p.pos]) || p.src[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.iriTerm()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	}
	return rdf.NewLiteral(lex), nil
}

// quotedString parses "..." / '...' / """...""" / ”'...”'.
func (p *parser) quotedString() (string, error) {
	quote := p.src[p.pos]
	long := strings.HasPrefix(p.src[p.pos:], strings.Repeat(string(quote), 3))
	if long {
		p.pos += 3
		end := strings.Index(p.src[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return "", p.errf("unterminated long string")
		}
		raw := p.src[p.pos : p.pos+end]
		p.line += strings.Count(raw, "\n")
		p.pos += end + 3
		return unescape(raw, p)
	}
	p.pos++
	var b strings.Builder
	for {
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated string")
		}
		c := p.src[p.pos]
		if c == quote {
			p.pos++
			return b.String(), nil
		}
		if c == '\n' {
			return "", p.errf("newline in short string literal")
		}
		if c == '\\' {
			s, err := p.escape()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
}

func (p *parser) escape() (string, error) {
	if p.pos+1 >= len(p.src) {
		return "", p.errf("dangling escape")
	}
	e := p.src[p.pos+1]
	p.pos += 2
	switch e {
	case 't':
		return "\t", nil
	case 'n':
		return "\n", nil
	case 'r':
		return "\r", nil
	case 'b':
		return "\b", nil
	case 'f':
		return "\f", nil
	case '"':
		return `"`, nil
	case '\'':
		return "'", nil
	case '\\':
		return `\`, nil
	case 'u', 'U':
		n := 4
		if e == 'U' {
			n = 8
		}
		if p.pos+n > len(p.src) {
			return "", p.errf("truncated \\%c escape", e)
		}
		var v rune
		for i := 0; i < n; i++ {
			c := p.src[p.pos+i]
			var d rune
			switch {
			case c >= '0' && c <= '9':
				d = rune(c - '0')
			case c >= 'a' && c <= 'f':
				d = rune(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = rune(c-'A') + 10
			default:
				return "", p.errf("non-hex digit in \\%c escape", e)
			}
			v = v<<4 | d
		}
		p.pos += n
		if !utf8.ValidRune(v) {
			return "", p.errf("invalid code point U+%X", v)
		}
		return string(v), nil
	default:
		return "", p.errf("unknown escape \\%c", e)
	}
}

// unescape handles escapes inside long strings.
func unescape(raw string, p *parser) (string, error) {
	if !strings.Contains(raw, "\\") {
		return raw, nil
	}
	sub := &parser{src: raw, line: p.line}
	var b strings.Builder
	for sub.pos < len(sub.src) {
		if sub.src[sub.pos] == '\\' {
			s, err := sub.escape()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			continue
		}
		b.WriteByte(sub.src[sub.pos])
		sub.pos++
	}
	return b.String(), nil
}

func (p *parser) numericLiteral() (rdf.Term, error) {
	start := p.pos
	if c := p.src[p.pos]; c == '+' || c == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
		digits++
	}
	dt := rdf.XSDInteger
	if p.pos < len(p.src) && p.src[p.pos] == '.' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
		dt = rdf.XSDDecimal
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
			digits++
		}
	}
	if p.pos < len(p.src) && (p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
		dt = rdf.XSDDouble
		p.pos++
		if p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
			p.pos++
		}
		expDigits := 0
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
			expDigits++
		}
		if expDigits == 0 {
			return rdf.Term{}, p.errf("malformed double literal")
		}
	}
	if digits == 0 {
		return rdf.Term{}, p.errf("malformed numeric literal")
	}
	return rdf.NewTypedLiteral(p.src[start:p.pos], dt), nil
}

func (p *parser) consume(c byte) bool {
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isLocalChar(r rune) bool {
	return isNameChar(r) || r == '.' || r == '%'
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func snippet(s string) string {
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}
