package turtle

// regressionInputs pins inputs that previously made FuzzParse fail —
// either a parser panic or a write/re-parse round-trip break. Each
// entry is fed back as a fuzz seed so the bug cannot silently return.
var regressionInputs = []string{
	// No turtle-native crasher has been found yet (coverage-guided
	// fuzzing plus targeted probes all pass). These inputs are pinned
	// because the same byte patterns crashed the sibling parsers: a raw
	// invalid-UTF-8 byte broke the N-Triples round trip, and a >=0x80
	// byte decoding to a non-name rune hung the SPARQL lexer. Keeping
	// them here guards turtle against regressions of the same class.
	"<http://a> <http://p> \"\xc3\" .\n",
	"\xe2\x80\xa2 <http://p> <http://b> .\n",
	"@prefix \xea: <http://x/> .\n",
}
