package turtle

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestWriteGroupsAndPrefixes(t *testing.T) {
	v1 := rdf.NewIRI("http://pg/v1")
	triples := []rdf.Triple{
		{S: v1, P: rdf.NewIRI(rdf.KeyNS + "name"), O: rdf.NewLiteral("Amy")},
		{S: v1, P: rdf.NewIRI(rdf.KeyNS + "tag"), O: rdf.NewLiteral("#a")},
		{S: v1, P: rdf.NewIRI(rdf.KeyNS + "tag"), O: rdf.NewLiteral("#b")},
		{S: v1, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("http://pg/Person")},
	}
	var sb strings.Builder
	if err := Write(&sb, triples, rdf.PrefixMap{"key": rdf.KeyNS, "pg": rdf.PGNS}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "@prefix key: <http://pg/k/> .") {
		t.Errorf("missing prefix directive:\n%s", out)
	}
	if !strings.Contains(out, `key:tag "#a" , "#b"`) {
		t.Errorf("object list not grouped:\n%s", out)
	}
	if !strings.Contains(out, " ;\n") {
		t.Errorf("predicate list not grouped:\n%s", out)
	}
	if !strings.Contains(out, "a pg:Person") {
		t.Errorf("rdf:type not shortened to 'a':\n%s", out)
	}
	if strings.Count(out, "pg:v1") != 1 {
		t.Errorf("subject repeated:\n%s", out)
	}
}

// TestWriteParseRoundTrip is the writer's core property: serialize →
// parse gives back exactly the same triple set, for random data with
// every term shape.
func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prefixes := rdf.PrefixMap{"x": "http://x/", "k": "http://k#"}
	randTerm := func(resource bool) rdf.Term {
		kinds := 5
		if resource {
			kinds = 2
		}
		switch rng.Intn(kinds) {
		case 0:
			return rdf.NewIRI(fmt.Sprintf("http://x/r%d", rng.Intn(20)))
		case 1:
			return rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(10)))
		case 2:
			return rdf.NewLiteral(randomLex(rng))
		case 3:
			return rdf.NewInteger(rng.Int63n(1000) - 500)
		default:
			return rdf.NewLangLiteral(randomLex(rng), "en")
		}
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		seen := map[string]bool{}
		var triples []rdf.Triple
		for i := 0; i < n; i++ {
			tr := rdf.Triple{
				S: randTerm(true),
				P: rdf.NewIRI(fmt.Sprintf("http://k#p%d", rng.Intn(6))),
				O: randTerm(false),
			}
			if seen[tr.String()] {
				continue // writer emits sets; duplicates would collapse
			}
			seen[tr.String()] = true
			triples = append(triples, tr)
		}
		var sb strings.Builder
		if err := Write(&sb, triples, prefixes); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		back, err := ParseString(sb.String())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, sb.String())
		}
		if len(back) != len(triples) {
			t.Fatalf("trial %d: %d -> %d triples\n%s", trial, len(triples), len(back), sb.String())
		}
		a, b := renderSorted(triples), renderSorted(back)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: triple %d differs:\n%s\nvs\n%s\ndoc:\n%s", trial, i, a[i], b[i], sb.String())
			}
		}
	}
}

func renderSorted(triples []rdf.Triple) []string {
	out := make([]string, len(triples))
	for i, tr := range triples {
		out[i] = tr.String()
	}
	sort.Strings(out)
	return out
}

func randomLex(rng *rand.Rand) string {
	alphabet := []rune("ab \"\\\n\té#.:")
	n := rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

func TestWriteFallsBackToFullIRIs(t *testing.T) {
	triples := []rdf.Triple{
		{S: rdf.NewIRI("http://other/ns/x"), P: rdf.NewIRI("http://other/p"), O: rdf.NewIRI("http://other/o.")},
	}
	var sb strings.Builder
	if err := Write(&sb, triples, rdf.PrefixMap{"x": "http://x/"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "@prefix") {
		t.Errorf("unused prefix emitted:\n%s", sb.String())
	}
	back, err := ParseString(sb.String())
	if err != nil || len(back) != 1 {
		t.Fatalf("reparse: %v", err)
	}
}
