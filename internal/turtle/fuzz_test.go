package turtle

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/rdf"
)

// FuzzParse drives the Turtle parser with arbitrary input. Properties:
//
//  1. the parser never panics;
//  2. any accepted document serializes through the Turtle writer and
//     re-parses to the same triple SET (the writer regroups subjects
//     and predicate lists, so order may change but content must not).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<http://a> <http://p> <http://b> .\n",
		"@prefix ex: <http://example.org/> .\nex:a ex:p ex:b , ex:c ; ex:q \"v\" .\n",
		"PREFIX ex: <http://example.org/>\nex:a ex:p 1, 2.5, -3e2 .\n",
		"@base <http://example.org/> .\n<a> <p> <b> .\n",
		"ex:a a ex:Class .\n@prefix ex: <http://x/> .\n",
		"_:b0 <http://p> [ <http://q> \"nested\" ] .\n",
		"<http://a> <http://p> \"\"\"long\nliteral\"\"\" .\n",
		"<http://a> <http://p> 'single' .\n",
		"<http://a> <http://p> true, false .\n",
		"@prefix : <http://x/> .\n:a :p ( :b :c ) .\n",
		"@prefix ex: <http://x/> .\nex:a ex:p \"\\u00e9\" .\n",
		"<a> <p>",   // truncated
		"@prefix",   // truncated directive
		"\"\"\"",    // unterminated long literal
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range regressionInputs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		triples, err := ParseString(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, triples, nil); err != nil {
			t.Fatalf("writer rejected parser output: %v\ninput: %q", err, data)
		}
		again, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\ninput: %q\nserialized: %q", err, data, buf.String())
		}
		if !sameTripleSet(triples, again) {
			t.Fatalf("round-trip triple set differs\ninput: %q\nserialized: %q\nfirst: %v\nsecond: %v",
				data, buf.String(), triples, again)
		}
	})
}

// sameTripleSet compares triples as multisets, ignoring order.
func sameTripleSet(a, b []rdf.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t rdf.Triple) string { return t.S.String() + "\x00" + t.P.String() + "\x00" + t.O.String() }
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
