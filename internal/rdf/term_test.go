package rdf

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://pg/v1")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() || !iri.IsResource() {
		t.Fatalf("IRI kind predicates wrong: %+v", iri)
	}
	b := NewBlank("b0")
	if !b.IsBlank() || !b.IsResource() {
		t.Fatalf("blank kind predicates wrong: %+v", b)
	}
	l := NewLiteral("Amy")
	if !l.IsLiteral() || l.IsResource() {
		t.Fatalf("literal kind predicates wrong: %+v", l)
	}
	var zero Term
	if !zero.IsZero() || zero.IsResource() || zero.IsLiteral() {
		t.Fatalf("zero term predicates wrong")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://pg/v1"), "<http://pg/v1>"},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("Amy"), `"Amy"`},
		{NewInt(23), `"23"^^<http://www.w3.org/2001/XMLSchema#int>`},
		{NewInteger(2007), `"2007"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBoolean(true), `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
		{NewLangLiteral("train", "EN-US"), `"train"@en-us`},
		{NewLiteral("a\"b\\c\nd\te\r"), `"a\"b\\c\nd\te\r"`},
		{NewTypedLiteral("x", XSDString), `"x"`}, // xsd:string collapses to plain
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermEqual(t *testing.T) {
	if !NewLiteral("x").Equal(NewTypedLiteral("x", XSDString)) {
		t.Error("plain literal should equal explicit xsd:string literal")
	}
	if NewLiteral("x").Equal(NewTypedLiteral("x", XSDInteger)) {
		t.Error("different datatypes should not be equal")
	}
	if NewIRI("a").Equal(NewBlank("a")) {
		t.Error("IRI should not equal blank node with same value")
	}
	if !NewLangLiteral("x", "EN").Equal(NewLangLiteral("x", "en")) {
		t.Error("language tags are case-insensitive")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	terms := []Term{
		NewBlank("a"), NewBlank("b"),
		NewIRI("http://a"), NewIRI("http://b"),
		NewLangLiteral("a", "en"), NewTypedLiteral("a", XSDInteger), NewLiteral("a"),
	}
	for i, a := range terms {
		for j, b := range terms {
			got := Compare(a, b)
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%s,%s)=%d want 0", a, b, got)
			case i < j && got >= 0:
				t.Errorf("Compare(%s,%s)=%d want <0", a, b, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s,%s)=%d want >0", a, b, got)
			}
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(av, bv string, ak, bk uint8) bool {
		a := Term{Kind: TermKind(ak%3 + 1), Value: av}
		b := Term{Kind: TermKind(bk%3 + 1), Value: bv}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadValidate(t *testing.T) {
	v1, follows, v2 := NewIRI("http://pg/v1"), NewIRI(RelNS+"follows"), NewIRI("http://pg/v2")
	ok := NewQuad(v1, follows, v2, NewIRI("http://pg/e3"))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid quad rejected: %v", err)
	}
	if err := NewQuad(NewLiteral("x"), follows, v2, Term{}).Validate(); err == nil {
		t.Error("literal subject accepted")
	}
	if err := NewQuad(v1, NewBlank("p"), v2, Term{}).Validate(); err == nil {
		t.Error("blank predicate accepted")
	}
	if err := NewQuad(v1, follows, Term{}, Term{}).Validate(); err == nil {
		t.Error("missing object accepted")
	}
	if err := NewQuad(v1, follows, v2, NewLiteral("g")).Validate(); err == nil {
		t.Error("literal graph accepted")
	}
}

func TestQuadString(t *testing.T) {
	q := NewQuad(NewIRI("http://pg/v1"), NewIRI(RelNS+"follows"), NewIRI("http://pg/v2"), NewIRI("http://pg/e3"))
	want := "<http://pg/v1> <http://pg/r/follows> <http://pg/v2> <http://pg/e3>"
	if q.String() != want {
		t.Errorf("got %q want %q", q.String(), want)
	}
	q.G = Term{}
	want = "<http://pg/v1> <http://pg/r/follows> <http://pg/v2>"
	if q.String() != want {
		t.Errorf("got %q want %q", q.String(), want)
	}
}

func TestCompareQuadsSortStable(t *testing.T) {
	quads := []Quad{
		TripleQuad(NewTriple(NewIRI("b"), NewIRI("p"), NewIRI("o"))),
		TripleQuad(NewTriple(NewIRI("a"), NewIRI("p"), NewIRI("o"))),
		NewQuad(NewIRI("a"), NewIRI("p"), NewIRI("o"), NewIRI("g")),
	}
	sort.Slice(quads, func(i, j int) bool { return CompareQuads(quads[i], quads[j]) < 0 })
	if !quads[0].S.Equal(NewIRI("a")) || !quads[0].InDefaultGraph() {
		t.Errorf("default graph should sort first: %v", quads)
	}
	if !quads[2].G.Equal(NewIRI("g")) {
		t.Errorf("named graph should sort last: %v", quads)
	}
}

func TestPrefixMap(t *testing.T) {
	p := StandardPrefixes()
	if got := p.Shorten(RelNS + "follows"); got != "rel:follows" && got != "r:follows" {
		t.Errorf("Shorten = %q", got)
	}
	if got := p.Shorten("http://unknown/x"); got != "<http://unknown/x>" {
		t.Errorf("Shorten unknown = %q", got)
	}
	iri, ok := p.Expand("rdf:type")
	if !ok || iri != RDFType {
		t.Errorf("Expand rdf:type = %q, %v", iri, ok)
	}
	if _, ok := p.Expand("nope:x"); ok {
		t.Error("unknown prefix expanded")
	}
	if _, ok := p.Expand("nocolon"); ok {
		t.Error("name without colon expanded")
	}
}

func TestDatatypeIRIDefaulting(t *testing.T) {
	if NewLiteral("x").DatatypeIRI() != XSDString {
		t.Error("plain literal should default to xsd:string")
	}
	if NewLangLiteral("x", "en").DatatypeIRI() != RDFLangString {
		t.Error("lang literal should be rdf:langString")
	}
	if NewIRI("x").DatatypeIRI() != "" {
		t.Error("IRI has no datatype")
	}
}
