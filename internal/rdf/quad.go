package rdf

import (
	"fmt"
	"strings"
)

// Triple is an RDF triple <subject, predicate, object>.
type Triple struct {
	S, P, O Term
}

// NewTriple constructs a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without the final dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Quad is an RDF quad <subject, predicate, object, graph>. A zero G
// denotes the default (unnamed) graph, making every Triple embeddable as
// a Quad.
type Quad struct {
	S, P, O, G Term
}

// NewQuad constructs a quad in the named graph g; pass a zero Term for
// the default graph.
func NewQuad(s, p, o, g Term) Quad { return Quad{S: s, P: p, O: o, G: g} }

// TripleQuad lifts a triple into a quad in the default graph.
func TripleQuad(t Triple) Quad { return Quad{S: t.S, P: t.P, O: t.O} }

// Triple projects the quad onto its triple components.
func (q Quad) Triple() Triple { return Triple{S: q.S, P: q.P, O: q.O} }

// InDefaultGraph reports whether the quad lives in the default graph.
func (q Quad) InDefaultGraph() bool { return q.G.IsZero() }

// String renders the quad in N-Quads syntax (without the final dot).
func (q Quad) String() string {
	if q.G.IsZero() {
		return q.Triple().String()
	}
	return q.Triple().String() + " " + q.G.String()
}

// Validate checks the RDF 1.1 positional restrictions: the subject must
// be an IRI or blank node, the predicate an IRI, the object any term, and
// the graph (if present) an IRI or blank node.
func (q Quad) Validate() error {
	if !q.S.IsResource() {
		return fmt.Errorf("rdf: subject must be an IRI or blank node, got %s", q.S)
	}
	if !q.P.IsIRI() {
		return fmt.Errorf("rdf: predicate must be an IRI, got %s", q.P)
	}
	if q.O.IsZero() {
		return fmt.Errorf("rdf: object missing")
	}
	if !q.G.IsZero() && !q.G.IsResource() {
		return fmt.Errorf("rdf: graph must be an IRI or blank node, got %s", q.G)
	}
	return nil
}

// CompareQuads orders quads by G, S, P, O using term order; useful for
// deterministic serialization and set comparison in tests.
func CompareQuads(a, b Quad) int {
	if c := Compare(a.G, b.G); c != 0 {
		return c
	}
	if c := Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := Compare(a.P, b.P); c != 0 {
		return c
	}
	return Compare(a.O, b.O)
}

// PrefixMap maps prefix labels (without the colon) to namespace IRIs and
// supports compact rendering of IRIs in diagnostics.
type PrefixMap map[string]string

// StandardPrefixes returns the prefixes used throughout the paper.
func StandardPrefixes() PrefixMap {
	return PrefixMap{
		"rdf":  RDFNS,
		"rdfs": RDFSNS,
		"xsd":  XSDNS,
		"owl":  OWLNS,
		"pg":   PGNS,
		"rel":  RelNS,
		"r":    RelNS,
		"key":  KeyNS,
		"k":    KeyNS,
	}
}

// Shorten renders an IRI using the longest matching prefix, or in angle
// brackets if none matches.
func (p PrefixMap) Shorten(iri string) string {
	best, bestNS := "", ""
	for label, ns := range p {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			best, bestNS = label, ns
		}
	}
	if bestNS == "" {
		return "<" + iri + ">"
	}
	local := iri[len(bestNS):]
	if strings.ContainsAny(local, "/#:") {
		return "<" + iri + ">"
	}
	return best + ":" + local
}

// Expand resolves a prefixed name "label:local" against the map; ok is
// false when the prefix is unknown.
func (p PrefixMap) Expand(pname string) (iri string, ok bool) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", false
	}
	ns, ok := p[pname[:i]]
	if !ok {
		return "", false
	}
	return ns + pname[i+1:], true
}
