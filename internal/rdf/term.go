// Package rdf implements the RDF 1.1 data model: terms (IRIs, blank nodes
// and literals), triples and quads, together with the XSD value space
// needed for SPARQL expression evaluation.
//
// The representation follows the W3C RDF 1.1 Concepts and Abstract Syntax
// recommendation. Terms are small immutable value types so they can be
// used as map keys and copied freely.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The three RDF term kinds. The zero value is KindInvalid so that a zero
// Term is recognizably "absent" (used, e.g., for the default graph).
const (
	KindInvalid TermKind = iota
	KindIRI
	KindBlank
	KindLiteral
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindBlank:
		return "BlankNode"
	case KindLiteral:
		return "Literal"
	default:
		return "Invalid"
	}
}

// Term is an RDF term: an IRI, a blank node, or a literal.
//
// For an IRI, Value holds the IRI string (without angle brackets).
// For a blank node, Value holds the label (without the "_:" prefix).
// For a literal, Value holds the lexical form, Datatype the datatype IRI
// ("" is interpreted as xsd:string per RDF 1.1), and Lang the optional
// language tag (in which case the datatype is rdf:langString).
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewLiteral returns a plain literal, which RDF 1.1 treats as xsd:string.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged string literal.
// Language tags are canonicalized to lower case, per RDF 1.1.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: strings.ToLower(lang)}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: KindLiteral, Value: fmt.Sprintf("%d", v), Datatype: XSDInteger}
}

// NewInt returns an xsd:int literal (the paper maps PG NUMBER values with
// integral magnitude to xsd:int, e.g. "23"^^xsd:int).
func NewInt(v int32) Term {
	return Term{Kind: KindLiteral, Value: fmt.Sprintf("%d", v), Datatype: XSDInt}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{Kind: KindLiteral, Value: formatFloat(v), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	if v {
		return Term{Kind: KindLiteral, Value: "true", Datatype: XSDBoolean}
	}
	return Term{Kind: KindLiteral, Value: "false", Datatype: XSDBoolean}
}

// IsZero reports whether t is the zero Term (no term at all).
func (t Term) IsZero() bool { return t.Kind == KindInvalid }

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsResource reports whether t is an IRI or a blank node, i.e. may denote
// a graph node rather than a value.
func (t Term) IsResource() bool { return t.Kind == KindIRI || t.Kind == KindBlank }

// DatatypeIRI returns the literal's datatype IRI with RDF 1.1 defaulting
// applied: plain literals are xsd:string, language-tagged literals are
// rdf:langString. It returns "" for non-literals.
func (t Term) DatatypeIRI() string {
	if t.Kind != KindLiteral {
		return ""
	}
	if t.Lang != "" {
		return RDFLangString
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// String renders the term in N-Triples syntax. Invalid terms render as
// "<invalid>" to keep diagnostics readable.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		var b strings.Builder
		b.WriteByte('"')
		escapeLiteral(&b, t.Value)
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return "<invalid>"
	}
}

func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// Equal reports term equality. Two literals are equal iff their lexical
// form, datatype (after RDF 1.1 defaulting) and language tag all match.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind || t.Value != u.Value || t.Lang != u.Lang {
		return false
	}
	if t.Kind == KindLiteral {
		return t.DatatypeIRI() == u.DatatypeIRI()
	}
	return true
}

// Compare defines a total order over terms: first by kind (blank < IRI <
// literal, the SPARQL ORDER BY term order), then by value, datatype and
// language. It returns -1, 0 or +1.
func Compare(a, b Term) int {
	ka, kb := orderRank(a.Kind), orderRank(b.Kind)
	if ka != kb {
		return cmpInt(ka, kb)
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.DatatypeIRI(), b.DatatypeIRI()); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

func orderRank(k TermKind) int {
	switch k {
	case KindBlank:
		return 1
	case KindIRI:
		return 2
	case KindLiteral:
		return 3
	default:
		return 0
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
