package rdf

// Standard W3C namespaces.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
)

// rdf: vocabulary used by the reification scheme and typing.
const (
	RDFType       = RDFNS + "type"
	RDFSubject    = RDFNS + "subject"
	RDFPredicate  = RDFNS + "predicate"
	RDFObject     = RDFNS + "object"
	RDFStatement  = RDFNS + "Statement"
	RDFLangString = RDFNS + "langString"
)

// rdfs: vocabulary used by the subproperty scheme and RDFS inference.
const (
	RDFSSubPropertyOf = RDFSNS + "subPropertyOf"
	RDFSSubClassOf    = RDFSNS + "subClassOf"
	RDFSDomain        = RDFSNS + "domain"
	RDFSRange         = RDFSNS + "range"
	RDFSLabel         = RDFSNS + "label"
	RDFSResource      = RDFSNS + "Resource"
)

// owl: vocabulary used by the linked-data integration examples (§5.2).
const (
	OWLSameAs             = OWLNS + "sameAs"
	OWLEquivalentProperty = OWLNS + "equivalentProperty"
	OWLEquivalentClass    = OWLNS + "equivalentClass"
	OWLInverseOf          = OWLNS + "inverseOf"
	OWLTransitiveProperty = OWLNS + "TransitiveProperty"
	OWLSymmetricProperty  = OWLNS + "SymmetricProperty"
)

// xsd: datatypes used when mapping property-graph values to RDF literals.
const (
	XSDString   = XSDNS + "string"
	XSDBoolean  = XSDNS + "boolean"
	XSDInteger  = XSDNS + "integer"
	XSDInt      = XSDNS + "int"
	XSDLong     = XSDNS + "long"
	XSDDecimal  = XSDNS + "decimal"
	XSDDouble   = XSDNS + "double"
	XSDFloat    = XSDNS + "float"
	XSDDateTime = XSDNS + "dateTime"
	XSDDate     = XSDNS + "date"
)

// Namespaces used by the paper's PG-as-RDF vocabulary (§2.2): vertices and
// edges live under pg:, edge labels (relationship types) under rel:
// (<http://pg/r/>), and keys under key: (<http://pg/k/>).
const (
	PGNS  = "http://pg/"
	RelNS = "http://pg/r/"
	KeyNS = "http://pg/k/"
)
