package rdf

import (
	"testing"
	"testing/quick"
)

func TestLiteralValue(t *testing.T) {
	cases := []struct {
		term Term
		want Value
		ok   bool
	}{
		{NewLiteral("Amy"), Value{Kind: ValueString, Str: "Amy"}, true},
		{NewInt(23), Value{Kind: ValueInteger, Int: 23}, true},
		{NewInteger(-7), Value{Kind: ValueInteger, Int: -7}, true},
		{NewTypedLiteral("+5", XSDInteger), Value{Kind: ValueInteger, Int: 5}, true},
		{NewBoolean(true), Value{Kind: ValueBoolean, Bool: true}, true},
		{NewTypedLiteral("1", XSDBoolean), Value{Kind: ValueBoolean, Bool: true}, true},
		{NewDouble(2.5), Value{Kind: ValueDouble, Flt: 2.5}, true},
		{NewTypedLiteral("3.14", XSDDecimal), Value{Kind: ValueDecimal, Flt: 3.14}, true},
		{NewTypedLiteral("notanum", XSDInteger), Value{}, false},
		{NewTypedLiteral("maybe", XSDBoolean), Value{}, false},
		{NewIRI("http://x"), Value{}, false},
		{NewLangLiteral("train", "en-us"), Value{Kind: ValueString, Str: "train"}, true},
		{NewTypedLiteral("2007-01-02T00:00:00Z", XSDDateTime), Value{Kind: ValueDateTime, Str: "2007-01-02T00:00:00Z"}, true},
	}
	for _, c := range cases {
		got, ok := LiteralValue(c.term)
		if ok != c.ok {
			t.Errorf("LiteralValue(%s) ok=%v want %v", c.term, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("LiteralValue(%s) = %+v, want %+v", c.term, got, c.want)
		}
	}
}

func TestCompareValues(t *testing.T) {
	i23, _ := LiteralValue(NewInt(23))
	i22, _ := LiteralValue(NewInteger(22))
	d225, _ := LiteralValue(NewDouble(22.5))
	sAmy, _ := LiteralValue(NewLiteral("Amy"))
	sMira, _ := LiteralValue(NewLiteral("Mira"))
	bt, _ := LiteralValue(NewBoolean(true))
	bf, _ := LiteralValue(NewBoolean(false))

	if c, ok := CompareValues(i22, i23); !ok || c >= 0 {
		t.Errorf("22 < 23 failed: %d %v", c, ok)
	}
	if c, ok := CompareValues(d225, i23); !ok || c >= 0 {
		t.Errorf("22.5 < 23 (mixed) failed: %d %v", c, ok)
	}
	if c, ok := CompareValues(i22, d225); !ok || c >= 0 {
		t.Errorf("22 < 22.5 (mixed) failed: %d %v", c, ok)
	}
	if c, ok := CompareValues(sAmy, sMira); !ok || c >= 0 {
		t.Errorf("Amy < Mira failed: %d %v", c, ok)
	}
	if c, ok := CompareValues(bf, bt); !ok || c >= 0 {
		t.Errorf("false < true failed: %d %v", c, ok)
	}
	if _, ok := CompareValues(sAmy, i23); ok {
		t.Error("string vs integer should be incomparable")
	}
}

func TestEffectiveBoolean(t *testing.T) {
	cases := []struct {
		term    Term
		val, ok bool
	}{
		{NewBoolean(true), true, true},
		{NewBoolean(false), false, true},
		{NewLiteral(""), false, true},
		{NewLiteral("x"), true, true},
		{NewInteger(0), false, true},
		{NewInteger(5), true, true},
		{NewDouble(0), false, true},
		{NewDouble(1.5), true, true},
		{NewIRI("http://x"), false, false},
		{NewTypedLiteral("z", XSDInteger), false, false},
	}
	for _, c := range cases {
		val, ok := EffectiveBoolean(c.term)
		if val != c.val || ok != c.ok {
			t.Errorf("EffectiveBoolean(%s) = %v,%v want %v,%v", c.term, val, ok, c.val, c.ok)
		}
	}
}

func TestIntegerRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		val, ok := LiteralValue(NewInteger(v))
		return ok && val.Kind == ValueInteger && val.Int == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareValuesNumericConsistency(t *testing.T) {
	f := func(a, b int32) bool {
		va, _ := LiteralValue(NewInteger(int64(a)))
		vb, _ := LiteralValue(NewDouble(float64(b)))
		c, ok := CompareValues(va, vb)
		if !ok {
			return false
		}
		switch {
		case int64(a) < int64(b):
			return c < 0
		case int64(a) > int64(b):
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuessTypedLiteral(t *testing.T) {
	cases := []struct {
		relType, raw string
		want         Term
		wantErr      bool
	}{
		{"VARCHAR", "Amy", NewLiteral("Amy"), false},
		{"NUMBER", "23", NewInt(23), false},
		{"NUMBER", "2007", NewInt(2007), false},
		{"NUMBER", "9999999999", NewInteger(9999999999), false},
		{"NUMBER", "3.5", NewTypedLiteral("3.5", XSDDecimal), false},
		{"NUMBER", "abc", Term{}, true},
		{"BOOLEAN", "true", NewBoolean(true), false},
		{"BOOLEAN", "x", Term{}, true},
		{"DOUBLE", "2.5", NewTypedLiteral("2.5", XSDDouble), false},
		{"DOUBLE", "x", Term{}, true},
		{"DATE", "2007-01-01", NewTypedLiteral("2007-01-01", XSDDateTime), false},
		{"BLOB", "x", Term{}, true},
		{"", "plain", NewLiteral("plain"), false},
	}
	for _, c := range cases {
		got, err := GuessTypedLiteral(c.relType, c.raw)
		if (err != nil) != c.wantErr {
			t.Errorf("GuessTypedLiteral(%q,%q) err=%v wantErr=%v", c.relType, c.raw, err, c.wantErr)
			continue
		}
		if err == nil && !got.Equal(c.want) {
			t.Errorf("GuessTypedLiteral(%q,%q) = %s, want %s", c.relType, c.raw, got, c.want)
		}
	}
}

func TestPromoteNumeric(t *testing.T) {
	if PromoteNumeric(ValueInteger, ValueInteger) != ValueInteger {
		t.Error("int+int should stay integer")
	}
	if PromoteNumeric(ValueInteger, ValueDouble) != ValueDouble {
		t.Error("int+double should promote to double")
	}
	if PromoteNumeric(ValueDecimal, ValueInteger) != ValueDecimal {
		t.Error("decimal+int should promote to decimal")
	}
}

func TestNumericLiteral(t *testing.T) {
	if got := NumericLiteral(Value{Kind: ValueInteger, Int: 42}); !got.Equal(NewInteger(42)) {
		t.Errorf("NumericLiteral int = %s", got)
	}
	got := NumericLiteral(Value{Kind: ValueDouble, Flt: 2.5})
	if v, ok := LiteralValue(got); !ok || v.Flt != 2.5 || v.Kind != ValueDouble {
		t.Errorf("NumericLiteral double = %s", got)
	}
}
