package rdf

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind classifies the XSD value space of a literal for SPARQL
// operator dispatch.
type ValueKind uint8

// Value kinds, ordered so numeric promotion can compare them.
const (
	ValueUnknown ValueKind = iota
	ValueString
	ValueBoolean
	ValueInteger
	ValueDecimal
	ValueDouble
	ValueDateTime
)

// Value is the typed value of a literal in the XSD value space.
type Value struct {
	Kind ValueKind
	Str  string
	Int  int64
	Flt  float64
	Bool bool
}

// IsNumeric reports whether the value participates in numeric promotion.
func (v Value) IsNumeric() bool {
	return v.Kind == ValueInteger || v.Kind == ValueDecimal || v.Kind == ValueDouble
}

// Float returns the value as a float64 under numeric promotion.
func (v Value) Float() float64 {
	if v.Kind == ValueInteger {
		return float64(v.Int)
	}
	return v.Flt
}

// LiteralValue maps a literal term to its typed value. The second result
// is false for non-literals and for lexical forms outside the datatype's
// lexical space (SPARQL would raise a type error).
func LiteralValue(t Term) (Value, bool) {
	if t.Kind != KindLiteral {
		return Value{}, false
	}
	switch dt := t.DatatypeIRI(); dt {
	case XSDString, RDFLangString:
		return Value{Kind: ValueString, Str: t.Value}, true
	case XSDBoolean:
		switch t.Value {
		case "true", "1":
			return Value{Kind: ValueBoolean, Bool: true}, true
		case "false", "0":
			return Value{Kind: ValueBoolean, Bool: false}, true
		}
		return Value{}, false
	case XSDInteger, XSDInt, XSDLong, XSDNS + "short", XSDNS + "byte",
		XSDNS + "nonNegativeInteger", XSDNS + "positiveInteger",
		XSDNS + "negativeInteger", XSDNS + "nonPositiveInteger",
		XSDNS + "unsignedInt", XSDNS + "unsignedLong":
		i, err := strconv.ParseInt(strings.TrimPrefix(t.Value, "+"), 10, 64)
		if err != nil {
			return Value{}, false
		}
		return Value{Kind: ValueInteger, Int: i}, true
	case XSDDecimal:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return Value{}, false
		}
		return Value{Kind: ValueDecimal, Flt: f}, true
	case XSDDouble, XSDFloat:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return Value{}, false
		}
		return Value{Kind: ValueDouble, Flt: f}, true
	case XSDDateTime, XSDDate:
		// Lexical forms of xsd:dateTime/date order correctly as strings
		// when the timezone designators match, which suffices here.
		return Value{Kind: ValueDateTime, Str: t.Value}, true
	default:
		return Value{Kind: ValueUnknown, Str: t.Value}, true
	}
}

// CompareValues compares two literal values per SPARQL operator mapping.
// It returns the comparison result and whether the pair is comparable.
func CompareValues(a, b Value) (int, bool) {
	if a.IsNumeric() && b.IsNumeric() {
		if a.Kind == ValueInteger && b.Kind == ValueInteger {
			return cmpInt64(a.Int, b.Int), true
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.Kind != b.Kind {
		return 0, false
	}
	switch a.Kind {
	case ValueString, ValueDateTime:
		return strings.Compare(a.Str, b.Str), true
	case ValueBoolean:
		return cmpBool(a.Bool, b.Bool), true
	default:
		return 0, false
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// EffectiveBoolean computes the SPARQL effective boolean value (EBV) of a
// literal term; ok is false when the EBV is a type error.
func EffectiveBoolean(t Term) (val, ok bool) {
	v, ok := LiteralValue(t)
	if !ok {
		return false, false
	}
	switch v.Kind {
	case ValueBoolean:
		return v.Bool, true
	case ValueString:
		return v.Str != "", true
	case ValueInteger:
		return v.Int != 0, true
	case ValueDecimal, ValueDouble:
		return v.Flt != 0 && !math.IsNaN(v.Flt), true
	default:
		return false, false
	}
}

// formatFloat renders a float in the xsd:double canonical-ish form Go
// would round-trip.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "NaN") && !strings.Contains(s, "Inf") {
		s += ".0"
	}
	return s
}

// NumericLiteral builds a literal from a promoted numeric value.
func NumericLiteral(v Value) Term {
	switch v.Kind {
	case ValueInteger:
		return NewInteger(v.Int)
	case ValueDecimal:
		return NewTypedLiteral(formatFloat(v.Flt), XSDDecimal)
	default:
		return NewDouble(v.Flt)
	}
}

// PromoteNumeric returns the result kind of an arithmetic operation over
// the two numeric kinds.
func PromoteNumeric(a, b ValueKind) ValueKind {
	if a == ValueDouble || b == ValueDouble {
		return ValueDouble
	}
	if a == ValueDecimal || b == ValueDecimal {
		return ValueDecimal
	}
	return ValueInteger
}

// GuessTypedLiteral maps a raw string plus a declared relational type
// (the Type column of the ObjKVs table, e.g. VARCHAR or NUMBER) to an RDF
// literal, mirroring §2.2's value mapping.
func GuessTypedLiteral(relType, raw string) (Term, error) {
	switch strings.ToUpper(relType) {
	case "", "VARCHAR", "VARCHAR2", "STRING", "CHAR":
		return NewLiteral(raw), nil
	case "NUMBER", "INT", "INTEGER":
		if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
			if i >= math.MinInt32 && i <= math.MaxInt32 {
				return NewInt(int32(i)), nil
			}
			return NewInteger(i), nil
		}
		if _, err := strconv.ParseFloat(raw, 64); err == nil {
			return NewTypedLiteral(raw, XSDDecimal), nil
		}
		return Term{}, fmt.Errorf("rdf: %q is not in the lexical space of NUMBER", raw)
	case "DOUBLE", "FLOAT":
		if _, err := strconv.ParseFloat(raw, 64); err != nil {
			return Term{}, fmt.Errorf("rdf: %q is not a floating point value", raw)
		}
		return NewTypedLiteral(raw, XSDDouble), nil
	case "BOOLEAN", "BOOL":
		switch strings.ToLower(raw) {
		case "true", "1":
			return NewBoolean(true), nil
		case "false", "0":
			return NewBoolean(false), nil
		}
		return Term{}, fmt.Errorf("rdf: %q is not a boolean", raw)
	case "DATE", "DATETIME", "TIMESTAMP":
		return NewTypedLiteral(raw, XSDDateTime), nil
	default:
		return Term{}, fmt.Errorf("rdf: unsupported relational type %q", relType)
	}
}
