package sparql

import "testing"

func TestFilterExists(t *testing.T) {
	st := fig1Store(t)
	// Vertices with a name that follow someone.
	res := query(t, st, `SELECT ?x WHERE { ?x key:name ?n FILTER EXISTS { ?x rel:follows ?y } }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v1" {
		t.Fatalf("exists res = %s", res)
	}
}

func TestFilterNotExists(t *testing.T) {
	st := fig1Store(t)
	// Vertices with a name that follow no one.
	res := query(t, st, `SELECT ?x WHERE { ?x key:name ?n FILTER NOT EXISTS { ?x rel:follows ?y } }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v2" {
		t.Fatalf("not-exists res = %s", res)
	}
}

func TestExistsInsideParens(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x WHERE {
		?x key:name ?n
		FILTER (EXISTS { ?x rel:follows ?y } || ?n = "Mira")
	}`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
}

func TestExistsWithGraphContext(t *testing.T) {
	st := fig1Store(t)
	// Edges (named graphs) that carry a since KV.
	res := query(t, st, `SELECT ?x ?y WHERE {
		?x rel:follows ?y
		FILTER EXISTS { GRAPH ?g { ?x rel:follows ?y . ?g key:since ?v } }
	}`)
	if res.Len() != 1 {
		t.Fatalf("graph exists rows = %d\n%s", res.Len(), res)
	}
	// Negated: follows edges lacking a firstMetAt KV.
	res = query(t, st, `SELECT ?x ?y WHERE {
		?x rel:knows ?y
		FILTER NOT EXISTS { GRAPH ?g { ?x rel:knows ?y . ?g key:since ?v } }
	}`)
	if res.Len() != 1 {
		t.Fatalf("negated graph exists rows = %d\n%s", res.Len(), res)
	}
}

func TestExistsDoesNotLeakBindings(t *testing.T) {
	st := fig1Store(t)
	// ?y inside EXISTS must not become visible outside.
	res := query(t, st, `SELECT ?x ?y WHERE { ?x key:name ?n FILTER EXISTS { ?x rel:follows ?y } }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if !res.Rows[0][1].IsZero() {
		t.Errorf("?y leaked out of EXISTS: %v", res.Rows[0][1])
	}
}

func TestNotWithoutExistsIsError(t *testing.T) {
	if _, err := Parse(`SELECT ?x WHERE { ?x ?p ?y FILTER NOT (?x = ?y) }`); err == nil {
		t.Error("NOT without EXISTS accepted")
	}
}
