package sparql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// socialStore builds a synthetic social graph big enough to cross the
// parallel thresholds: ~4000 follows edges (first-step scans fan out
// above parallelScanMinRows) over 800 nodes whose out-degree 5 widens
// a BFS frontier past parallelBFSMinFrontier within three hops.
func socialStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	const n = 800
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	name := rdf.NewIRI(rdf.KeyNS + "name")
	node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/n%d", i)) }
	var quads []rdf.Quad
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 7, 31, 101, 257} {
			quads = append(quads, rdf.Quad{S: node(i), P: follows, O: node((i + d) % n)})
		}
		quads = append(quads, rdf.Quad{S: node(i), P: name, O: rdf.NewLiteral(fmt.Sprintf("user-%04d", i))})
	}
	if _, err := st.Load("social", quads); err != nil {
		t.Fatal(err)
	}
	return st
}

// intraQueries are the plan shapes the tentpole parallelizes: multi-hop
// joins that flip to hash joins, a triangle count, property-path BFS,
// and an ordered projection.
var intraQueries = []string{
	`SELECT ?a ?c WHERE { ?a rel:follows ?b . ?b rel:follows ?c } LIMIT 2000`,
	`SELECT (COUNT(*) AS ?t) WHERE { ?a rel:follows ?b . ?b rel:follows ?c . ?c rel:follows ?a }`,
	`SELECT ?y WHERE { <http://pg/n0> rel:follows+ ?y } LIMIT 500`,
	`SELECT ?n WHERE { ?x rel:follows ?y . ?y key:name ?n } ORDER BY ?n LIMIT 100`,
	`SELECT ?a (COUNT(?c) AS ?foaf) WHERE { ?a rel:follows ?b . ?b rel:follows ?c } GROUP BY ?a ORDER BY DESC(?foaf) ?a LIMIT 20`,
}

// TestParallelMatchesSerial is the differential acceptance test: every
// query must produce byte-identical results at Parallelism=1 and 8,
// with the hash-join threshold lowered so the lazy switch engages.
func TestParallelMatchesSerial(t *testing.T) {
	st := socialStore(t)
	serial := NewEngine(st)
	serial.Parallelism = 1
	serial.HashJoinThreshold = 16
	parallel := NewEngine(st)
	parallel.Parallelism = 8
	parallel.HashJoinThreshold = 16
	for _, q := range intraQueries {
		want, err := serial.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("serial: %v\n%s", err, q)
		}
		got, err := parallel.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("parallel: %v\n%s", err, q)
		}
		if got.String() != want.String() {
			t.Errorf("parallel result differs from serial for:\n%s\n--- serial ---\n%s\n--- parallel ---\n%s",
				q, want.String(), got.String())
		}
	}
	snap := parallel.ParallelStats()
	if snap.Queries == 0 || snap.Workers == 0 || snap.Morsels == 0 {
		t.Errorf("parallel engine never went parallel: %+v", snap)
	}
	if snap.ActiveWorkers != 0 {
		t.Errorf("leaked workers: %d", snap.ActiveWorkers)
	}
	if g := st.OpenCursors(); g != 0 {
		t.Errorf("leaked cursors: %d", g)
	}
}

// TestParallelBudgetExhaustion trips MaxBindings in the middle of a
// parallel run: the first worker to exceed it must latch the error and
// unwind every other worker with no goroutine or cursor leaks.
func TestParallelBudgetExhaustion(t *testing.T) {
	st := socialStore(t)
	e := NewEngine(st)
	e.Parallelism = 8
	e.HashJoinThreshold = 16
	e.Limits = Budget{MaxBindings: 3000}
	q := testPrologue + `SELECT ?a ?c WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`
	_, err := e.QueryContext(context.Background(), "", q)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if w := e.ParallelStats().ActiveWorkers; w != 0 {
		t.Errorf("leaked workers after budget trip: %d", w)
	}
	if g := st.OpenCursors(); g != 0 {
		t.Errorf("leaked cursors after budget trip: %d", g)
	}
}

// TestParallelCancellation cancels the context before execution; the
// guard notices within one poll interval no matter which worker sees it
// first, and shutdown must leave no workers or cursors behind.
func TestParallelCancellation(t *testing.T) {
	st := socialStore(t)
	e := NewEngine(st)
	e.Parallelism = 8
	e.HashJoinThreshold = 16
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := testPrologue + `SELECT ?a ?c WHERE { ?a rel:follows ?b . ?b rel:follows ?c . ?c rel:follows ?a }`
	_, err := e.QueryContext(ctx, "", q)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if w := e.ParallelStats().ActiveWorkers; w != 0 {
		t.Errorf("leaked workers after cancellation: %d", w)
	}
	if g := st.OpenCursors(); g != 0 {
		t.Errorf("leaked cursors after cancellation: %d", g)
	}
}

// TestParallelEarlyStop stops consuming mid-stream (LIMIT): the merge
// loop halts the workers, which must drain without leaking the
// unclaimed morsel cursors.
func TestParallelEarlyStop(t *testing.T) {
	st := socialStore(t)
	e := NewEngine(st)
	e.Parallelism = 8
	res, err := e.Query("", testPrologue+`SELECT ?a ?b WHERE { ?a rel:follows ?b } LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Len())
	}
	if w := e.ParallelStats().ActiveWorkers; w != 0 {
		t.Errorf("leaked workers after early stop: %d", w)
	}
	if g := st.OpenCursors(); g != 0 {
		t.Errorf("leaked cursors after early stop: %d", g)
	}
}

// TestExplainReportsParallelism: Explain names the execution mode so
// operators can see which plans fan out.
func TestExplainReportsParallelism(t *testing.T) {
	st := socialStore(t)
	e := NewEngine(st)
	e.Parallelism = 8
	out, err := e.Explain("", testPrologue+`SELECT ?a WHERE { ?a rel:follows ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Parallel (morsel-driven") {
		t.Errorf("explain missing parallel line:\n%s", out)
	}
	e.Parallelism = 1
	out, err = e.Explain("", testPrologue+`SELECT ?a WHERE { ?a rel:follows ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Serial (parallelism 1") {
		t.Errorf("explain missing serial line:\n%s", out)
	}
}
