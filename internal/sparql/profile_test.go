package sparql

// Tests for the observability layer (DESIGN.md §11): per-operator
// profiles / EXPLAIN ANALYZE, the slow-query log, the read-path
// dictionary-pollution fix, the plan-cache rework and the LIMIT 0
// short-circuit.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQueryProfiledActuals(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	res, prof, err := e.QueryProfiled("", testPrologue+
		`SELECT ?x ?n WHERE { ?x rel:follows ?y . ?x key:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if prof == nil {
		t.Fatal("profile is nil")
	}
	if prof.Rows != 1 {
		t.Errorf("profile rows = %d, want 1", prof.Rows)
	}
	if prof.WallNanos <= 0 {
		t.Errorf("profile wall = %d, want > 0", prof.WallNanos)
	}
	var bgp *ProfileNode
	var walk func(ns []*ProfileNode)
	walk = func(ns []*ProfileNode) {
		for _, n := range ns {
			if strings.HasPrefix(n.Label, "BGP") {
				bgp = n
			}
			walk(n.Children)
		}
	}
	walk(prof.Plan)
	if bgp == nil {
		t.Fatalf("no BGP node in profile:\n%s", prof.Render())
	}
	if bgp.RowsOut != 1 {
		t.Errorf("BGP rows out = %d, want 1", bgp.RowsOut)
	}
	if len(bgp.Children) != 2 {
		t.Fatalf("BGP children = %d, want 2 join steps", len(bgp.Children))
	}
	for i, step := range bgp.Children {
		if step.GuardTicks == 0 {
			t.Errorf("step %d: guard ticks = 0, want > 0", i)
		}
		if step.Index == "" {
			t.Errorf("step %d: no index recorded", i)
		}
	}
}

func TestExplainAnalyzeRendersActuals(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	txt, err := e.ExplainAnalyze("", testPrologue+
		`SELECT ?n WHERE { ?x key:name ?n } ORDER BY ?n LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(actual:", "rows=1", "OrderBy", "Project", "mode="} {
		if !strings.Contains(txt, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, txt)
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	_, prof, err := e.QueryProfiled("", testPrologue+`SELECT ?x WHERE { ?x key:age ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Plan) != len(prof.Plan) {
		t.Errorf("round-trip plan nodes = %d, want %d", len(back.Plan), len(prof.Plan))
	}
}

// TestDictStableUnderComputedValues is the regression test for the
// read-path dictionary-pollution bug: computed values (extended
// projection, BIND, VALUES, aggregate results) used to be interned
// into the store's shared dictionary, growing it on every read-only
// query. They now go through a per-query scratch overlay.
func TestDictStableUnderComputedValues(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	queries := []string{
		// Extended projection computes a fresh integer per row.
		`SELECT (?a + 1 AS ?b) WHERE { ?x key:age ?a }`,
		// BIND computes fresh strings.
		`SELECT ?ln WHERE { ?x key:name ?n BIND(CONCAT(?n, "-suffix") AS ?ln) }`,
		// VALUES injects inline terms the store has never seen.
		`SELECT ?v WHERE { VALUES ?v { "novel-a" "novel-b" 42 } }`,
		// Aggregates synthesize count/sum/avg literals.
		`SELECT (COUNT(?x) AS ?c) (AVG(?a) AS ?avg) WHERE { ?x key:age ?a }`,
		// GROUP BY with a computed key.
		`SELECT ?n (COUNT(?x) AS ?c) WHERE { ?x key:name ?n } GROUP BY ?n`,
	}
	before := st.Dict().Len()
	for _, q := range queries {
		if _, err := e.Query("", testPrologue+q); err != nil {
			t.Fatalf("query failed: %v\n%s", err, q)
		}
	}
	if after := st.Dict().Len(); after != before {
		t.Errorf("dictionary grew from %d to %d terms across read-only computed-value queries", before, after)
	}
}

// TestComputedValuesStillJoinable checks that the overlay keeps
// already-interned terms on their real IDs: a BIND that reproduces a
// stored lexical value must still join against stored data.
func TestComputedValuesStillJoinable(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x WHERE { BIND("Amy" AS ?n) ?x key:name ?n }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v1" {
		t.Fatalf("join through BIND value: %s", res)
	}
}

// TestLimitZero is the off-by-one regression test: LIMIT 0 must
// return an empty result without running the pipeline — in particular
// it must succeed even under a budget a single binding would trip.
func TestLimitZero(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	e.Limits = Budget{MaxBindings: 1}
	res, err := e.QueryContext(context.Background(), "",
		testPrologue+`SELECT ?x ?y WHERE { ?x rel:follows ?y . ?x key:name ?n } LIMIT 0`)
	if err != nil {
		t.Fatalf("LIMIT 0 errored: %v", err)
	}
	if res.Len() != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", res.Len())
	}
}

func TestLimitZeroProfiled(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	res, _, err := e.QueryProfiled("", testPrologue+`SELECT ?x WHERE { ?x key:name ?n } LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %d", res.Len())
	}
}

// TestPlanCacheSingleflight: concurrent first-time executions of the
// same text must compile it exactly once.
func TestPlanCacheSingleflight(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	const workers = 16
	q := testPrologue + `SELECT ?x WHERE { ?x key:name ?n }`
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Query("", q); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := e.PlanCacheStats()
	if stats.Misses != 1 {
		t.Errorf("plan cache misses = %d, want 1 (singleflight)", stats.Misses)
	}
	if stats.Hits != workers-1 {
		t.Errorf("plan cache hits = %d, want %d", stats.Hits, workers-1)
	}
	if stats.Entries != 1 {
		t.Errorf("plan cache entries = %d, want 1", stats.Entries)
	}
}

// TestPlanCacheEvictsOneEntry: at the limit the cache evicts a single
// entry per insertion instead of wiping wholesale.
func TestPlanCacheEvictsOneEntry(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	for i := 0; i < planCacheLimit+3; i++ {
		q := fmt.Sprintf("%sSELECT ?x WHERE { ?x key:name ?n } OFFSET %d", testPrologue, i)
		if _, err := e.Query("", q); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.PlanCacheStats()
	if stats.Entries != planCacheLimit {
		t.Errorf("plan cache entries = %d, want %d (stay at limit)", stats.Entries, planCacheLimit)
	}
	if stats.Evictions != 3 {
		t.Errorf("plan cache evictions = %d, want 3 (one per overflow insertion)", stats.Evictions)
	}
	if stats.Misses != planCacheLimit+3 {
		t.Errorf("plan cache misses = %d, want %d", stats.Misses, planCacheLimit+3)
	}
}

func TestPlanCacheMissOnParseErrorNotCached(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	bad := `SELECT WHERE {` // malformed
	for i := 0; i < 2; i++ {
		if _, err := e.Query("", bad); err == nil {
			t.Fatal("malformed query did not error")
		}
	}
	if stats := e.PlanCacheStats(); stats.Entries != 0 {
		t.Errorf("failed compilation was cached: entries = %d", stats.Entries)
	}
}

// TestSlowQueryLog: with a zero threshold every query is logged as one
// JSON line carrying the per-operator profile.
func TestSlowQueryLog(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	var buf bytes.Buffer
	e.SlowQueryLog = &buf
	e.SlowQueryThreshold = 0 // log everything

	if _, err := e.Query("", testPrologue+`SELECT ?x WHERE { ?x key:name ?n }`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ask("", testPrologue+`ASK { ?x rel:follows ?y }`); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var recs []SlowQueryRecord
	for sc.Scan() {
		var rec SlowQueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("slow log line is not JSON: %v\n%s", err, sc.Text())
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("slow log records = %d, want 2", len(recs))
	}
	sel := recs[0]
	if sel.Form != "select" || sel.Rows != 2 {
		t.Errorf("select record = form %q rows %d", sel.Form, sel.Rows)
	}
	if sel.Profile == nil || len(sel.Profile.Plan) == 0 {
		t.Errorf("select record carries no profile")
	}
	if sel.DurationMS < 0 {
		t.Errorf("negative duration %v", sel.DurationMS)
	}
	if recs[1].Form != "ask" {
		t.Errorf("second record form = %q, want ask", recs[1].Form)
	}
	if _, err := time.Parse(time.RFC3339Nano, sel.Time); err != nil {
		t.Errorf("record time %q is not RFC3339: %v", sel.Time, err)
	}
}

// TestSlowQueryLogThreshold: fast queries stay out of the log when a
// high threshold is set.
func TestSlowQueryLogThreshold(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	var buf bytes.Buffer
	e.SlowQueryLog = &buf
	e.SlowQueryThreshold = time.Hour
	if _, err := e.Query("", testPrologue+`SELECT ?x WHERE { ?x key:name ?n }`); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fast query was logged: %s", buf.String())
	}
	if e.MetricsSnapshot().SlowQueries != 0 {
		t.Errorf("slow query counter incremented for fast query")
	}
}

func TestMetricsSnapshotCounts(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	if _, err := e.Query("", testPrologue+`SELECT ?x WHERE { ?x key:name ?n }`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("", `SELECT WHERE {`); err == nil {
		t.Fatal("malformed query did not error")
	}
	if _, err := e.Ask("", testPrologue+`ASK { ?x rel:follows ?y }`); err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	byForm := map[string]FormMetricsSnapshot{}
	for _, f := range snap.Forms {
		byForm[f.Form] = f
	}
	if f := byForm["select"]; f.Queries != 2 || f.Errors != 1 {
		t.Errorf("select metrics = %d queries %d errors, want 2/1", f.Queries, f.Errors)
	}
	if f := byForm["ask"]; f.Queries != 1 || f.Errors != 0 {
		t.Errorf("ask metrics = %d queries %d errors, want 1/0", f.Queries, f.Errors)
	}
	// Histogram buckets must be cumulative and end at the total count.
	f := byForm["select"]
	if len(f.Buckets) != len(latencyBucketsSeconds)+1 {
		t.Fatalf("bucket count = %d", len(f.Buckets))
	}
	last := f.Buckets[len(f.Buckets)-1]
	if last.LE != -1 || last.Count != f.Queries {
		t.Errorf("+Inf bucket = {%v %d}, want {-1 %d}", last.LE, last.Count, f.Queries)
	}
	for i := 1; i < len(f.Buckets); i++ {
		if f.Buckets[i].Count < f.Buckets[i-1].Count {
			t.Errorf("buckets not cumulative at %d: %v", i, f.Buckets)
		}
	}
}

// TestProfilingOffHasNoProfile: plain QueryContext with no slow log
// must not allocate a profile (the cheap-when-off promise).
func TestProfilingOffHasNoProfile(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	res, prof, err := e.queryInternal(context.Background(), "",
		testPrologue+`SELECT ?x WHERE { ?x key:name ?n }`, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if prof != nil {
		t.Fatal("plain query returned a profile")
	}
}
