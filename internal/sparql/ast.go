// Package sparql implements a SPARQL 1.1 subset sufficient to express
// every query in the paper (Tables 3, 5 and 10) and the update forms of
// §2.1: SELECT queries with basic graph patterns, GRAPH, FILTER,
// OPTIONAL, UNION, VALUES, BIND, sub-SELECT, aggregates with GROUP BY,
// ORDER BY / LIMIT / OFFSET / DISTINCT, property paths, and the
// INSERT DATA / DELETE DATA / DELETE WHERE update forms.
//
// The engine compiles queries against the ID-based quad store in
// internal/store, choosing per-pattern semantic-network indexes and
// switching between index nested-loop joins and hash joins the way the
// paper's Oracle plans do.
//
// Dataset semantics: a triple pattern outside a GRAPH clause matches
// quads in ANY graph (default or named), mirroring Oracle SEM_MATCH; a
// GRAPH clause restricts (or binds) the named graph. This is what makes
// the paper's NG-scheme queries like EQ2 work, where topology quads live
// in per-edge named graphs but are queried with plain patterns.
package sparql

import (
	"repro/internal/rdf"
)

// QueryForm discriminates the supported query forms.
type QueryForm uint8

// Query forms.
const (
	FormSelect QueryForm = iota
	FormAsk
	FormConstruct
	FormDescribe
)

// Query is a parsed SPARQL query.
type Query struct {
	Prefixes rdf.PrefixMap
	Form     QueryForm
	// Select carries the WHERE clause and solution modifiers for every
	// form (ASK uses only the pattern; CONSTRUCT uses pattern +
	// modifiers).
	Select *SelectQuery
	// Template holds the CONSTRUCT template (triples, or GRAPH-wrapped
	// triples).
	Template []TemplateQuad
	// Describe lists the resources (IRIs or variables) of a DESCRIBE
	// query.
	Describe []TermOrVar
}

// TemplateQuad is one CONSTRUCT template entry: a triple pattern plus an
// optional graph (term or variable).
type TemplateQuad struct {
	S, P, O TermOrVar
	G       TermOrVar // zero Term and empty var = default graph
}

// SelectQuery is a SELECT query or sub-SELECT.
type SelectQuery struct {
	Distinct   bool
	Star       bool
	Projection []SelectItem
	Where      *GroupGraphPattern
	GroupBy    []Expr
	Having     []Expr
	OrderBy    []OrderKey
	Limit      int // -1 = none
	Offset     int
}

// SelectItem is one projection: a plain variable or (expr AS var).
type SelectItem struct {
	Var  string
	Expr Expr // nil for a plain variable
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// GroupGraphPattern is a `{ ... }` group: an ordered list of elements.
type GroupGraphPattern struct {
	Elems []PatternElem
}

// PatternElem is one element of a group graph pattern.
type PatternElem interface{ patternElem() }

// TriplePattern is a triple pattern, possibly with a property path in
// predicate position and possibly inside a GRAPH context (set by the
// parser on nesting).
type TriplePattern struct {
	S, O TermOrVar
	P    Path
	// Graph context: GraphNone (match any graph), GraphTerm (a
	// specific IRI) or GraphVar.
	Graph GraphCtx
}

// GraphCtxKind discriminates the graph context of a pattern.
type GraphCtxKind uint8

// Graph context kinds.
const (
	GraphAny  GraphCtxKind = iota // not inside GRAPH: match any graph
	GraphTerm                     // GRAPH <iri> { ... }
	GraphVar                      // GRAPH ?g { ... }
)

// GraphCtx is the graph context of a triple pattern.
type GraphCtx struct {
	Kind GraphCtxKind
	Term rdf.Term // for GraphTerm
	Var  string   // for GraphVar
}

// TermOrVar is a term or a variable in a pattern position.
type TermOrVar struct {
	IsVar bool
	Var   string
	Term  rdf.Term
}

// Variable makes a variable TermOrVar.
func Variable(name string) TermOrVar { return TermOrVar{IsVar: true, Var: name} }

// Constant makes a constant TermOrVar.
func Constant(t rdf.Term) TermOrVar { return TermOrVar{Term: t} }

// Path is a SPARQL 1.1 property path.
type Path interface{ path() }

// PathIRI is a plain predicate IRI.
type PathIRI struct{ IRI rdf.Term }

// PathVar is a variable in predicate position (not a path operator, but
// shares the predicate slot).
type PathVar struct{ Name string }

// PathSeq is the sequence path `a / b`.
type PathSeq struct{ Left, Right Path }

// PathAlt is the alternative path `a | b`.
type PathAlt struct{ Left, Right Path }

// PathInverse is the inverse path `^a`.
type PathInverse struct{ Inner Path }

// PathStar is `a*` (zero or more, distinct-node semantics).
type PathStar struct{ Inner Path }

// PathPlus is `a+` (one or more, distinct-node semantics).
type PathPlus struct{ Inner Path }

// PathOpt is `a?` (zero or one).
type PathOpt struct{ Inner Path }

func (PathIRI) path()     {}
func (PathVar) path()     {}
func (PathSeq) path()     {}
func (PathAlt) path()     {}
func (PathInverse) path() {}
func (PathStar) path()    {}
func (PathPlus) path()    {}
func (PathOpt) path()     {}

// GraphPattern is `GRAPH term-or-var { ... }`.
type GraphPattern struct {
	Graph TermOrVar
	Group *GroupGraphPattern
}

// UnionPattern is `{A} UNION {B} [UNION {C} ...]`.
type UnionPattern struct {
	Branches []*GroupGraphPattern
}

// OptionalPattern is `OPTIONAL { ... }`.
type OptionalPattern struct {
	Group *GroupGraphPattern
}

// MinusPattern is `MINUS { ... }`.
type MinusPattern struct {
	Group *GroupGraphPattern
}

// FilterElem is `FILTER expr`.
type FilterElem struct {
	Cond Expr
}

// BindElem is `BIND (expr AS ?v)`.
type BindElem struct {
	Expr Expr
	Var  string
}

// ValuesElem is an inline `VALUES (?a ?b) { (..) (..) }` block. A zero
// Term means UNDEF.
type ValuesElem struct {
	Vars []string
	Rows [][]rdf.Term
}

// SubSelect is a nested `{ SELECT ... }`.
type SubSelect struct {
	Select *SelectQuery
}

func (*TriplePattern) patternElem()   {}
func (*GraphPattern) patternElem()    {}
func (*UnionPattern) patternElem()    {}
func (*OptionalPattern) patternElem() {}
func (*MinusPattern) patternElem()    {}
func (*FilterElem) patternElem()      {}
func (*BindElem) patternElem()        {}
func (*ValuesElem) patternElem()      {}
func (*SubSelect) patternElem()       {}

// Expr is a SPARQL expression.
type Expr interface{ expr() }

// ExprVar references a variable.
type ExprVar struct{ Name string }

// ExprTerm is a constant term.
type ExprTerm struct{ Term rdf.Term }

// ExprCall is a built-in function call by upper-cased name.
type ExprCall struct {
	Name string
	Args []Expr
}

// ExprBinary is a binary operation: || && = != < > <= >= + - * /.
type ExprBinary struct {
	Op          string
	Left, Right Expr
}

// ExprUnary is !x or -x or +x.
type ExprUnary struct {
	Op    string
	Inner Expr
}

// ExprAggregate is COUNT/SUM/MIN/MAX/AVG, with optional DISTINCT;
// Arg == nil means COUNT(*).
type ExprAggregate struct {
	Func     string
	Distinct bool
	Arg      Expr
}

// ExprExists is FILTER (NOT) EXISTS { pattern }.
type ExprExists struct {
	Negate bool
	Group  *GroupGraphPattern
}

func (ExprVar) expr()       {}
func (ExprTerm) expr()      {}
func (ExprCall) expr()      {}
func (ExprBinary) expr()    {}
func (ExprUnary) expr()     {}
func (ExprAggregate) expr() {}
func (ExprExists) expr()    {}

// Update is a parsed SPARQL Update request (subset: INSERT DATA, DELETE
// DATA, DELETE WHERE).
type Update struct {
	Prefixes rdf.PrefixMap
	Ops      []UpdateOp
}

// UpdateOp is one update operation.
type UpdateOp interface{ updateOp() }

// InsertData inserts ground quads.
type InsertData struct{ Quads []rdf.Quad }

// DeleteData deletes ground quads.
type DeleteData struct{ Quads []rdf.Quad }

// DeleteWhere deletes all quads matching the pattern group.
type DeleteWhere struct{ Where *GroupGraphPattern }

// Modify is the template update form:
// DELETE { tmpl } INSERT { tmpl } WHERE { pattern } — either template
// may be absent (giving DELETE..WHERE or INSERT..WHERE).
type Modify struct {
	Delete []TemplateQuad
	Insert []TemplateQuad
	Where  *GroupGraphPattern
}

func (InsertData) updateOp()  {}
func (DeleteData) updateOp()  {}
func (DeleteWhere) updateOp() {}
func (Modify) updateOp()      {}
