package sparql

import (
	"strings"
	"testing"
)

// TestExplainAllOperators renders the plan of a query touching every
// operator, checking each contributes a line.
func TestExplainAllOperators(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	plan, err := e.Explain("", testPrologue+`
		SELECT ?x (COUNT(*) AS ?c) WHERE {
			{ SELECT ?x WHERE { ?x rel:follows ?y } }
			{ ?x key:name ?n } UNION { ?x key:age ?n }
			OPTIONAL { ?x key:age ?a }
			MINUS { ?x key:name "Nobody" }
			VALUES ?v { 1 2 }
			BIND (CONCAT("x-", STR(?n)) AS ?tag)
			?x rel:follows* ?z .
			FILTER (BOUND(?n))
		} GROUP BY ?x ORDER BY ?c LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SubSelect", "Union", "Optional", "Minus", "Values (2 rows)",
		"Bind ?tag", "PathClosure (*", "filter (pushed", "GroupAggregate", "OrderBy",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan lacks %q:\n%s", want, plan)
		}
	}

	plan, err = e.Explain("", testPrologue+`SELECT DISTINCT ?x WHERE { ?x rel:knows+ ?y . ?y rel:follows? ?z }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PathClosure (+") || !strings.Contains(plan, "PathClosure (?") {
		t.Errorf("closure kinds missing:\n%s", plan)
	}
	if !strings.Contains(plan, "Distinct") {
		t.Errorf("distinct missing:\n%s", plan)
	}
}

// TestGraphOverComplexGroup exercises GRAPH wrapping a group that holds
// more than triple patterns (filters, unions).
func TestGraphOverComplexGroup(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?g ?v WHERE {
		GRAPH ?g {
			{ ?g key:since ?v } UNION { ?g key:firstMetAt ?v }
			FILTER (isLiteral(?v))
		}
	}`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	for _, row := range res.Rows {
		if row[0].IsZero() {
			t.Errorf("graph var unbound: %v", row)
		}
	}
}

// TestNestedPathClosures drives closures whose inner path is itself a
// closure or a sequence.
func TestNestedPathClosures(t *testing.T) {
	st := fig1Store(t)
	// (follows|knows)+ from v1 reaches v2 (distinct).
	res := query(t, st, `SELECT ?y WHERE { <http://pg/v1> (rel:follows|rel:knows)+ ?y }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v2" {
		t.Fatalf("alt-plus res = %s", res)
	}
	// Nested closure: (follows*)+ — zero hops included, distinct nodes.
	res = query(t, st, `SELECT ?y WHERE { <http://pg/v1> (rel:follows*)+ ?y }`)
	if res.Len() != 2 { // v1 (zero) and v2
		t.Fatalf("nested closure rows = %d\n%s", res.Len(), res)
	}
	// Sequence inside a closure: (knows/^knows)+ = co-knowers of v1.
	res = query(t, st, `SELECT ?y WHERE { <http://pg/v1> (rel:knows/^rel:knows)+ ?y }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v1" {
		t.Fatalf("seq closure res = %s", res)
	}
	// Closure restricted to a constant graph.
	res = query(t, st, `SELECT ?y WHERE { GRAPH <http://pg/e3> { <http://pg/v1> rel:follows+ ?y } }`)
	if res.Len() != 1 {
		t.Fatalf("graph-scoped closure rows = %d", res.Len())
	}
	res = query(t, st, `SELECT ?y WHERE { GRAPH <http://pg/e4> { <http://pg/v1> rel:follows+ ?y } }`)
	if res.Len() != 0 {
		t.Fatalf("wrong-graph closure rows = %d", res.Len())
	}
}

// TestLimitFastPathWithExprProjection: the early-stop optimization must
// not engage when the projection computes expressions.
func TestLimitFastPathWithExprProjection(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT (STR(?n) AS ?s) WHERE { ?x key:name ?n } LIMIT 1`)
	if res.Len() != 1 || res.Rows[0][0].IsZero() {
		t.Fatalf("res = %s", res)
	}
}

func TestNumericLiteralLexing(t *testing.T) {
	st := fig1Store(t)
	// Decimal and double literals in FILTER expressions.
	res := query(t, st, `SELECT ?x WHERE { ?x key:age ?a FILTER (?a > 2.25e1 && ?a < 23.5) }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v1" {
		t.Fatalf("res = %s", res)
	}
}

func TestTable3QueriesParse(t *testing.T) {
	for name, q := range Table3Queries() {
		if _, err := Parse(q); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEngineStoreAccessor(t *testing.T) {
	st := fig1Store(t)
	if NewEngine(st).Store() != st {
		t.Error("Store() accessor broken")
	}
}

func TestExplainUnknownDataset(t *testing.T) {
	st := fig1Store(t)
	if _, err := NewEngine(st).Explain("missing", `SELECT ?x WHERE { ?x ?p ?y }`); err == nil {
		t.Error("unknown dataset accepted")
	}
	plan, err := NewEngine(st).Explain("", `SELECT ?x WHERE { ?x ?p ?y }`)
	if err != nil || !strings.Contains(plan, "<all models>") {
		t.Errorf("all-models dataset label missing: %v\n%s", err, plan)
	}
}
