package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/store"
)

// varTable assigns dense slots to variables of one (sub)query scope.
type varTable struct {
	names []string
	index map[string]int
}

func newVarTable() *varTable {
	return &varTable{index: make(map[string]int)}
}

func (vt *varTable) slot(name string) int {
	if i, ok := vt.index[name]; ok {
		return i
	}
	i := len(vt.names)
	vt.names = append(vt.names, name)
	vt.index[name] = i
	return i
}

func (vt *varTable) lookup(name string) (int, bool) {
	i, ok := vt.index[name]
	return i, ok
}

// binding is one solution mapping: slot -> term ID (NoID = unbound).
// Bindings passed to yield callbacks are only valid for the duration of
// the call; operators that retain them must clone.
type binding []store.ID

func (b binding) clone() binding {
	c := make(binding, len(b))
	copy(c, b)
	return c
}

// varset is a bitmask of bound variable slots (queries here have < 64
// variables; the compiler rejects more).
type varset uint64

func (v varset) has(slot int) bool    { return v&(1<<uint(slot)) != 0 }
func (v varset) with(slot int) varset { return v | 1<<uint(slot) }

const maxVars = 64

// maxPatterns bounds the triple patterns one query may lower. The
// greedy join-order search is quadratic in the pattern count, so an
// adversarial query with tens of thousands of patterns could stall the
// compiler before execution guardrails ever see it.
const maxPatterns = 4096

// posRef is one position of a quad pattern: a constant term or a var slot.
type posRef struct {
	isVar bool
	slot  int
	term  rdf.Term
}

func (c *compiler) posRefOf(tv TermOrVar) posRef {
	if tv.IsVar {
		return posRef{isVar: true, slot: c.vt.slot(tv.Var)}
	}
	return posRef{term: tv.Term}
}

// graphRef is the graph context of a quad pattern.
type graphRef struct {
	kind GraphCtxKind
	slot int      // for GraphVar
	term rdf.Term // for GraphTerm
}

// quadPattern is a lowered triple pattern (no paths).
type quadPattern struct {
	s, p, o posRef
	g       graphRef
	// text is the original pattern rendered for EXPLAIN output.
	text string
}

// vars returns the variable slots the pattern can bind.
func (qp quadPattern) vars() varset {
	var v varset
	for _, r := range []posRef{qp.s, qp.p, qp.o} {
		if r.isVar {
			v = v.with(r.slot)
		}
	}
	if qp.g.kind == GraphVar {
		v = v.with(qp.g.slot)
	}
	return v
}

// op is one operator in a compiled group pipeline. apply transforms an
// input source of bindings into an output source.
type op interface {
	apply(ec *execCtx, in source) source
	// bound returns the variable slots guaranteed bound after this op,
	// given the slots bound before it.
	bound(before varset) varset
	explain(e *explainer)
	// stageID is the operator's slot in the query profile; 0 means the
	// plan was never numbered (EXISTS sub-pipelines, non-SELECT forms)
	// and the operator is skipped by the instrumentation layer.
	stageID() int
}

// opStage is embedded by every operator to carry its profile stage id,
// assigned once by numberStages after compilation (profile.go).
type opStage struct{ sid int }

func (s *opStage) stageID() int   { return s.sid }
func (s *opStage) setStage(n int) { s.sid = n }

type stageSetter interface{ setStage(int) }

// source produces bindings, calling yield for each; yield returns false
// to stop early. A source returns an error only on evaluation failure
// (not on type errors inside filters, which SPARQL defines as false).
type source func(yield func(binding) bool) error

// compiled is a fully compiled SELECT query.
type compiled struct {
	vt         *varTable
	pipeline   []op
	distinct   bool
	projection []compiledProj
	groupBy    []compiledExpr
	aggregates []compiledAgg
	having     []compiledExpr
	orderBy    []compiledOrder
	limit      int
	offset     int
	// grouping is true when GROUP BY is present or any aggregate occurs.
	grouping bool

	// Profile stage ids for the tail phases of evalSelect (grouping,
	// ordering, projection) and the total stage count; assigned by
	// numberStages for plans that flow through compileCached, zero
	// otherwise. nstages is set on the top-level plan only.
	groupSid, sortSid, projSid int
	nstages                    int
}

// numberStages assigns dense stage ids (starting at 1) to every
// operator and tail phase of a compiled plan, recursing into union
// branches, optional/minus inners and sub-select plans. The ids index
// the preallocated per-stage slots of a queryProfile; operators left at
// sid 0 are invisible to the profiler.
func numberStages(cp *compiled) {
	n := 0
	numberPlan(cp, &n)
	cp.nstages = n
}

func numberPlan(cp *compiled, n *int) {
	numberOps(cp.pipeline, n)
	*n++
	cp.groupSid = *n
	*n++
	cp.sortSid = *n
	*n++
	cp.projSid = *n
}

func numberOps(ops []op, n *int) {
	for _, o := range ops {
		*n++
		if ss, ok := o.(stageSetter); ok {
			ss.setStage(*n)
		}
		switch x := o.(type) {
		case *bgpOp:
			// One stage per join step, in execution order, right after
			// the BGP's own stage.
			*n += len(x.patterns)
		case *unionOp:
			for _, br := range x.branches {
				numberOps(br, n)
			}
		case *optionalOp:
			numberOps(x.inner, n)
		case *minusOp:
			numberOps(x.inner, n)
		case *subselectOp:
			numberPlan(x.plan, n)
		}
	}
}

type compiledProj struct {
	name string
	slot int          // output slot
	expr compiledExpr // nil for plain variable or aggregate result
}

type compiledAgg struct {
	fn       string
	distinct bool
	arg      compiledExpr // nil for COUNT(*)
	slot     int          // slot receiving the result
}

type compiledOrder struct {
	expr compiledExpr
	desc bool
}

type compiler struct {
	vt       *varTable
	seq      *int // shared fresh-var counter across nested scopes
	patterns int  // total triple patterns lowered (guardrail accounting)
}

func freshCounter() *int { i := 0; return &i }

func (c *compiler) fresh(prefix string) int {
	*c.seq++
	return c.vt.slot(fmt.Sprintf(" %s%d", prefix, *c.seq)) // leading space: unspellable
}

// compileSelect compiles a SELECT (or sub-SELECT) into a plan with its
// own variable scope.
func compileSelect(sel *SelectQuery, seq *int) (*compiled, error) {
	c := &compiler{vt: newVarTable(), seq: seq}
	pipeline, err := c.group(sel.Where)
	if err != nil {
		return nil, err
	}
	cp := &compiled{
		vt:       c.vt,
		pipeline: pipeline,
		distinct: sel.Distinct,
		limit:    sel.Limit,
		offset:   sel.Offset,
	}

	// GROUP BY keys.
	for _, g := range sel.GroupBy {
		ce, err := c.expr(g)
		if err != nil {
			return nil, err
		}
		cp.groupBy = append(cp.groupBy, ce)
	}

	// Projection: extract aggregates into synthetic slots.
	if sel.Star {
		// All named (non-synthetic) variables, in first-use order.
		for i, name := range c.vt.names {
			if name != "" && name[0] != ' ' {
				cp.projection = append(cp.projection, compiledProj{name: name, slot: i})
			}
		}
		if len(cp.projection) == 0 {
			return nil, fmt.Errorf("sparql: SELECT * with no variables")
		}
	} else {
		for _, item := range sel.Projection {
			slot := c.vt.slot(item.Var)
			if item.Expr == nil {
				cp.projection = append(cp.projection, compiledProj{name: item.Var, slot: slot})
				continue
			}
			ce, err := c.exprWithAggregates(item.Expr, cp, slot)
			if err != nil {
				return nil, err
			}
			cp.projection = append(cp.projection, compiledProj{name: item.Var, slot: slot, expr: ce})
		}
	}
	for _, h := range sel.Having {
		ce, err := c.exprWithAggregates(h, cp, -1)
		if err != nil {
			return nil, err
		}
		cp.having = append(cp.having, ce)
	}
	for _, o := range sel.OrderBy {
		ce, err := c.exprWithAggregates(o.Expr, cp, -1)
		if err != nil {
			return nil, err
		}
		cp.orderBy = append(cp.orderBy, compiledOrder{expr: ce, desc: o.Desc})
	}
	cp.grouping = len(cp.groupBy) > 0 || len(cp.aggregates) > 0
	if len(c.vt.names) > maxVars {
		return nil, fmt.Errorf("sparql: query uses more than %d variables", maxVars)
	}
	return cp, nil
}

// exprWithAggregates compiles an expression, replacing each aggregate
// sub-expression with a reference to a synthetic slot computed by the
// grouping operator. hintSlot is used when the whole expression is a
// single aggregate assigned to a projection slot.
func (c *compiler) exprWithAggregates(e Expr, cp *compiled, hintSlot int) (compiledExpr, error) {
	switch x := e.(type) {
	case ExprAggregate:
		slot := hintSlot
		if slot < 0 {
			slot = c.fresh("agg")
		}
		var arg compiledExpr
		if x.Arg != nil {
			var err error
			arg, err = c.expr(x.Arg)
			if err != nil {
				return nil, err
			}
		}
		cp.aggregates = append(cp.aggregates, compiledAgg{fn: x.Func, distinct: x.Distinct, arg: arg, slot: slot})
		return &exprSlot{slot: slot}, nil
	case ExprBinary:
		l, err := c.exprWithAggregates(x.Left, cp, -1)
		if err != nil {
			return nil, err
		}
		r, err := c.exprWithAggregates(x.Right, cp, -1)
		if err != nil {
			return nil, err
		}
		return &exprBinaryC{op: x.Op, left: l, right: r}, nil
	case ExprUnary:
		in, err := c.exprWithAggregates(x.Inner, cp, -1)
		if err != nil {
			return nil, err
		}
		return &exprUnaryC{op: x.Op, inner: in}, nil
	case ExprCall:
		args := make([]compiledExpr, len(x.Args))
		for i, a := range x.Args {
			ca, err := c.exprWithAggregates(a, cp, -1)
			if err != nil {
				return nil, err
			}
			args[i] = ca
		}
		return &exprCallC{name: x.Name, args: args}, nil
	default:
		return c.expr(e)
	}
}

// group compiles a group graph pattern into a pipeline of operators.
// Consecutive triple patterns (including those inside GRAPH clauses over
// only-triples groups) are fused into a single BGP so the optimizer can
// order them jointly, exactly like the paper's query plans.
func (c *compiler) group(g *GroupGraphPattern) ([]op, error) {
	var pipeline []op
	var bgp []quadPattern
	var filters []*filterOp

	flushBGP := func() {
		if len(bgp) > 0 || len(filters) > 0 {
			pipeline = append(pipeline, &bgpOp{patterns: bgp, filters: filters})
			bgp, filters = nil, nil
		}
	}

	var addElems func(elems []PatternElem, gctx *GraphCtx) error
	addElems = func(elems []PatternElem, gctx *GraphCtx) error {
		for _, elem := range elems {
			switch x := elem.(type) {
			case *TriplePattern:
				eff := x.Graph
				if gctx != nil {
					eff = *gctx
				}
				qps, extra, err := c.lowerTriple(x, eff)
				if err != nil {
					return err
				}
				c.patterns += len(qps)
				if c.patterns > maxPatterns {
					return fmt.Errorf("sparql: query uses more than %d triple patterns", maxPatterns)
				}
				bgp = append(bgp, qps...)
				if len(extra) > 0 {
					// Path operators that need their own operator
					// (star/plus/opt/alt with complex structure).
					flushBGP()
					pipeline = append(pipeline, extra...)
				}
			case *GraphPattern:
				inner := GraphCtx{}
				if x.Graph.IsVar {
					inner = GraphCtx{Kind: GraphVar, Var: x.Graph.Var}
				} else {
					inner = GraphCtx{Kind: GraphTerm, Term: x.Graph.Term}
				}
				if onlyTriples(x.Group) {
					if err := addElems(x.Group.Elems, &inner); err != nil {
						return err
					}
					continue
				}
				flushBGP()
				sub, err := c.groupWithCtx(x.Group, &inner)
				if err != nil {
					return err
				}
				pipeline = append(pipeline, sub...)
			case *FilterElem:
				ce, err := c.expr(x.Cond)
				if err != nil {
					return err
				}
				filters = append(filters, &filterOp{cond: ce, need: exprVars(ce), text: "FILTER"})
			case *BindElem:
				flushBGP()
				ce, err := c.expr(x.Expr)
				if err != nil {
					return err
				}
				pipeline = append(pipeline, &bindOp{expr: ce, slot: c.vt.slot(x.Var)})
			case *UnionPattern:
				flushBGP()
				u := &unionOp{}
				for _, br := range x.Branches {
					sub, err := c.group(br)
					if err != nil {
						return err
					}
					u.branches = append(u.branches, sub)
				}
				pipeline = append(pipeline, u)
			case *OptionalPattern:
				flushBGP()
				sub, err := c.group(x.Group)
				if err != nil {
					return err
				}
				pipeline = append(pipeline, &optionalOp{inner: sub, innerVars: pipelineVars(sub)})
			case *MinusPattern:
				flushBGP()
				sub, err := c.group(x.Group)
				if err != nil {
					return err
				}
				pipeline = append(pipeline, &minusOp{inner: sub, innerVars: pipelineVars(sub)})
			case *ValuesElem:
				flushBGP()
				vo := &valuesOp{}
				for _, name := range x.Vars {
					vo.slots = append(vo.slots, c.vt.slot(name))
				}
				vo.rows = x.Rows
				pipeline = append(pipeline, vo)
			case *SubSelect:
				flushBGP()
				sub, err := compileSelect(x.Select, c.seq)
				if err != nil {
					return err
				}
				ss := &subselectOp{plan: sub}
				for _, pr := range sub.projection {
					ss.outer = append(ss.outer, c.vt.slot(pr.name))
					ss.inner = append(ss.inner, pr.slot)
				}
				pipeline = append(pipeline, ss)
			default:
				return fmt.Errorf("sparql: unsupported pattern element %T", elem)
			}
		}
		return nil
	}
	if err := addElems(g.Elems, nil); err != nil {
		return nil, err
	}
	flushBGP()
	return pipeline, nil
}

// groupWithCtx compiles a nested group whose elements inherit a graph
// context (GRAPH over a group containing non-triple elements).
func (c *compiler) groupWithCtx(g *GroupGraphPattern, gctx *GraphCtx) ([]op, error) {
	// Push the graph context down onto every triple pattern.
	clone := &GroupGraphPattern{}
	for _, e := range g.Elems {
		if tp, ok := e.(*TriplePattern); ok {
			cp := *tp
			cp.Graph = *gctx
			clone.Elems = append(clone.Elems, &cp)
		} else if gp, ok := e.(*GraphPattern); ok {
			clone.Elems = append(clone.Elems, gp) // inner GRAPH overrides
		} else {
			clone.Elems = append(clone.Elems, e)
		}
	}
	return c.group(clone)
}

func onlyTriples(g *GroupGraphPattern) bool {
	for _, e := range g.Elems {
		switch e.(type) {
		case *TriplePattern, *FilterElem:
		default:
			return false
		}
	}
	return true
}

// lowerTriple lowers a triple pattern with a property path into plain
// quad patterns (for IRI/var/seq/alt-free paths) plus extra operators for
// star/plus/opt closures.
func (c *compiler) lowerTriple(tp *TriplePattern, g GraphCtx) ([]quadPattern, []op, error) {
	gr := graphRef{kind: g.Kind, term: g.Term}
	if g.Kind == GraphVar {
		gr.slot = c.vt.slot(g.Var)
	}
	return c.lowerPath(c.posRefOf(tp.S), tp.P, c.posRefOf(tp.O), gr)
}

func (c *compiler) lowerPath(s posRef, p Path, o posRef, g graphRef) ([]quadPattern, []op, error) {
	switch x := p.(type) {
	case PathIRI:
		return []quadPattern{{s: s, p: posRef{term: x.IRI}, o: o, g: g, text: patternText(s, x.IRI.String(), o, c)}}, nil, nil
	case PathVar:
		slot := c.vt.slot(x.Name)
		return []quadPattern{{s: s, p: posRef{isVar: true, slot: slot}, o: o, g: g, text: patternText(s, "?"+x.Name, o, c)}}, nil, nil
	case PathInverse:
		return c.lowerPath(o, x.Inner, s, g)
	case PathSeq:
		mid := posRef{isVar: true, slot: c.fresh("seq")}
		left, lops, err := c.lowerPath(s, x.Left, mid, g)
		if err != nil {
			return nil, nil, err
		}
		right, rops, err := c.lowerPath(mid, x.Right, o, g)
		if err != nil {
			return nil, nil, err
		}
		return append(left, right...), append(lops, rops...), nil
	case PathAlt:
		// Lower each branch to its own pipeline and union them.
		lqp, lops, err := c.lowerPath(s, x.Left, o, g)
		if err != nil {
			return nil, nil, err
		}
		rqp, rops, err := c.lowerPath(s, x.Right, o, g)
		if err != nil {
			return nil, nil, err
		}
		u := &unionOp{branches: [][]op{
			append([]op{&bgpOp{patterns: lqp}}, lops...),
			append([]op{&bgpOp{patterns: rqp}}, rops...),
		}}
		return nil, []op{u}, nil
	case PathStar:
		return nil, []op{&pathOp{s: s, o: o, g: g, inner: x.Inner, min: 0, c: c}}, nil
	case PathPlus:
		return nil, []op{&pathOp{s: s, o: o, g: g, inner: x.Inner, min: 1, c: c}}, nil
	case PathOpt:
		return nil, []op{&pathOp{s: s, o: o, g: g, inner: x.Inner, min: 0, max: 1, c: c}}, nil
	default:
		return nil, nil, fmt.Errorf("sparql: unsupported path %T", p)
	}
}

func patternText(s posRef, p string, o posRef, c *compiler) string {
	return posText(s, c) + " " + p + " " + posText(o, c)
}

func posText(r posRef, c *compiler) string {
	if r.isVar {
		return "?" + c.vt.names[r.slot]
	}
	return r.term.String()
}

// pipelineVars returns the vars bound by a pipeline starting from none.
func pipelineVars(ops []op) varset {
	var v varset
	for _, o := range ops {
		v = o.bound(v)
	}
	return v
}

// exprVars returns the variable slots an expression reads.
func exprVars(e compiledExpr) varset {
	var v varset
	e.visitSlots(func(slot int) { v = v.with(slot) })
	return v
}

// sortedSlots lists the slots in a varset.
func sortedSlots(v varset) []int {
	var out []int
	for i := 0; i < maxVars; i++ {
		if v.has(i) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
