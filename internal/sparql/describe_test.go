package sparql

import (
	"testing"
)

func TestDescribeConstant(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	quads, err := e.Describe("", `DESCRIBE <http://pg/v1>`)
	if err != nil {
		t.Fatal(err)
	}
	// v1 is subject of: follows quad, knows quad, name, age = 4 quads;
	// it never occurs as object.
	if len(quads) != 4 {
		t.Fatalf("described %d quads: %v", len(quads), quads)
	}
	for _, q := range quads {
		if q.S.Value != "http://pg/v1" {
			t.Errorf("unexpected quad %v", q)
		}
	}
}

func TestDescribeVariable(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	quads, err := e.Describe("", testPrologue+`DESCRIBE ?x WHERE { ?x key:name "Mira" }`)
	if err != nil {
		t.Fatal(err)
	}
	// v2: subject of name + age; object of follows and knows quads.
	if len(quads) != 4 {
		t.Fatalf("described %d quads: %v", len(quads), quads)
	}
	sawAsObject := false
	for _, q := range quads {
		if q.O.Value == "http://pg/v2" {
			sawAsObject = true
		}
	}
	if !sawAsObject {
		t.Error("description should include quads with the resource as object")
	}
}

func TestDescribeMultipleAndUnknown(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	quads, err := e.Describe("", `DESCRIBE <http://pg/v1> <http://never/seen>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(quads) != 4 {
		t.Fatalf("described %d quads", len(quads))
	}
	// No targets at all is a parse error.
	if _, err := e.Describe("", `DESCRIBE WHERE { ?x ?p ?y }`); err == nil {
		t.Error("DESCRIBE without targets accepted")
	}
	// Wrong form.
	if _, err := e.Describe("", `SELECT ?x WHERE { ?x ?p ?y }`); err == nil {
		t.Error("Describe accepted a SELECT")
	}
}

func TestDescribeDeterministicOrder(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	a, err := e.Describe("", `DESCRIBE <http://pg/v1> <http://pg/v2>`)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.Describe("", `DESCRIBE <http://pg/v2> <http://pg/v1>`)
	if len(a) != len(b) {
		t.Fatalf("order-dependent result size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
