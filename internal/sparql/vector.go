package sparql

// Vectorized batch-at-a-time execution (DESIGN.md §15).
//
// The row-at-a-time pipeline pays an interface dispatch, a guard tick
// and (when profiling) counter flushes per binding; at the paper's
// path-counting scale (EQ11d folds ~10^6 intermediate rows into one
// COUNT) that per-row overhead dominates the join work itself. The
// vectorized executor pushes fixed-size columnar batches of store.ID
// vectors through the BGP instead:
//
//   - Scans pull contiguous runs from the store's batched scan API
//     (store.ScanBatch / Cursor.NextBatch) and bind whole runs in tight
//     loops; the guard is charged once per run via tickN, and profile
//     counters accumulate in locals flushed once per scan.
//   - Joins advance depth-by-depth over batches: all rows of a batch
//     are probed (or scanned) at one join step before the output batch
//     recurses, and an output batch recurses as soon as it fills. This
//     preserves the serial walker's exact depth-first emission order:
//     outputs are appended in input-row order at every depth and each
//     full batch is drained to emission before the next is built, so
//     the leaf emission sequence is the DFS sequence.
//   - Filters apply as selection vectors: a batch is compacted in
//     place, surviving rows copied down, instead of materializing
//     per-row bindings.
//
// The BGP is the vectorized operator; everything else adapts at the
// boundary. A colBatch carries its input binding (base) plus one ID
// column per variable slot the BGP touches, so any consumer can
// materialize rows on demand — evalSelect consumes batches directly
// (including a columnar COUNT fast path), while non-batch-aware
// operator shapes simply keep the row pipeline (ec.vectorized gates
// the whole path, and Engine.DisableVectorized restores the old
// executor for ablations).

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// batchRows is the row capacity of one columnar batch — the store's
// batched-scan run size, so scan runs map 1:1 onto binding batches.
const batchRows = store.DefaultBatchRows

// vecRampStart is the initial adaptive batch cap. The executor flushes
// its first output batch after this many rows and grows the cap ×4 per
// flush up to batchRows, so an early-stopping consumer (ASK, LIMIT, a
// tight MaxBindings budget) sees its first rows — and the guard its
// first ticks — after ~64 rows of scan-ahead instead of a full batch,
// while steady-state scans reach full batch size within two flushes.
const vecRampStart = 64

// colBatch is a columnar batch of bindings derived from one input
// binding: base holds the input row's values, and each slot in slots
// has a column of per-row values for the variables bound by the BGP so
// far. Rows i of all columns together with base form one binding.
// Batches handed to consumers are only valid during the callback
// (producers reuse them); consumers may compact a batch in place
// (shrink n, move rows down) but must not grow it.
type colBatch struct {
	base  binding
	slots []int         // slots with a column, in binding order
	cols  [][]store.ID  // indexed by slot; nil = slot not columnar
	n     int           // rows
}

func newColBatch(width int, slots []int) *colBatch {
	cb := &colBatch{slots: slots, cols: make([][]store.ID, width)}
	for _, s := range slots {
		cb.cols[s] = make([]store.ID, 0, batchRows)
	}
	return cb
}

func (cb *colBatch) reset() {
	for _, s := range cb.slots {
		cb.cols[s] = cb.cols[s][:0]
	}
	cb.n = 0
}

// appendFrom appends one row, reading the column slots' values from b.
func (cb *colBatch) appendFrom(b binding) {
	for _, s := range cb.slots {
		cb.cols[s] = append(cb.cols[s], b[s])
	}
	cb.n++
}

// writeCols overwrites dst's column slots with row i's values. dst must
// already hold base's values for the non-column slots; every row writes
// the same slot set, so no values leak between rows.
func (cb *colBatch) writeCols(i int, dst binding) {
	for _, s := range cb.slots {
		dst[s] = cb.cols[s][i]
	}
}

// materialize copies row i into dst as a full binding.
func (cb *colBatch) materialize(i int, dst binding) {
	copy(dst, cb.base)
	cb.writeCols(i, dst)
}

// copyOwned returns a private copy of the batch (columns cloned, base
// shared), safe to retain past the producer's callback — the form
// parallel workers send through the merge channels.
func (cb *colBatch) copyOwned() *colBatch {
	c := &colBatch{base: cb.base, slots: cb.slots, cols: make([][]store.ID, len(cb.cols)), n: cb.n}
	for _, s := range cb.slots {
		c.cols[s] = append([]store.ID(nil), cb.cols[s][:cb.n]...)
	}
	return c
}

// batchSource produces columnar batches, calling yield for each; yield
// returns false to stop early. Batches are borrowed: valid only during
// the call.
type batchSource func(yield func(*colBatch) bool) error

// batchOp is implemented by operators that can emit batches directly.
type batchOp interface {
	op
	applyBatch(ec *execCtx, in source) batchSource
}

// instrumentBatch is the batch counterpart of queryProfile.instrument:
// rows-out counts rows (not batches), wall time is inclusive.
func (p *queryProfile) instrumentBatch(sid int, src batchSource) batchSource {
	st := p.stage(sid)
	if st == nil {
		return src
	}
	return func(yield func(*colBatch) bool) error {
		st.invocations.Add(1)
		start := time.Now()
		var rows int64
		err := src(func(cb *colBatch) bool {
			rows += int64(cb.n)
			return yield(cb)
		})
		st.rowsOut.Add(rows)
		st.wall.Add(int64(time.Since(start)))
		return err
	}
}

// passFilters evaluates a filter list against one materialized row.
func passFilters(ec *execCtx, filters []*filterOp, b binding) bool {
	for _, f := range filters {
		v, err := evalBool(ec, f.cond, b)
		if err != nil || !v {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// The vectorized BGP driver.
// ---------------------------------------------------------------------

// vecExec drives one BGP input binding through the join tree
// batch-at-a-time. It is the batch counterpart of bgpWalker: the plan
// (which slots are columnar at each depth) is derived from the input
// binding's boundness mask and rebuilt only when the mask changes, so
// repeated input bindings reuse every buffer.
type vecExec struct {
	sh    *bgpShared
	width int
	base  binding // the current input binding (borrowed)
	mask  varset  // boundness mask the plan below was built for
	ready bool

	// colSlots[d] are the columnar slots of the batch entering depth d
	// (d = len(order) is the emission depth); out[d] is the reusable
	// output batch of depth d, scratch[d] the depth's materialization
	// buffer, undo[d] its in-place binding undo log.
	colSlots [][]int
	out      []*colBatch
	scratch  []binding
	undo     []undoList
	unit     *colBatch // the 1-row, column-less batch entering depth 0

	// cap is the adaptive output-batch flush threshold (vecRampStart up
	// to batchRows), shared across depths and reset per input binding.
	cap int

	// emit receives finished batches (borrowed, valid during the call).
	emit func(*colBatch) bool
}

func newVecExec(sh *bgpShared, width int, emit func(*colBatch) bool) *vecExec {
	return &vecExec{sh: sh, width: width, emit: emit, unit: &colBatch{}}
}

// prepare points the executor at a new input binding, rebuilding the
// per-depth plan when the binding's boundness differs from the last.
func (vx *vecExec) prepare(b binding) {
	vx.base = b
	mask := varset(0)
	for s, v := range b {
		if v != store.NoID {
			mask = mask.with(s)
		}
	}
	nd := len(vx.sh.order)
	if !vx.ready || mask != vx.mask {
		vx.ready, vx.mask = true, mask
		bound := mask
		vx.colSlots = make([][]int, nd+1)
		for d, oi := range vx.sh.order {
			rp := &vx.sh.rps[oi]
			next := append([]int(nil), vx.colSlots[d]...)
			addNew := func(r posRef) {
				if r.isVar && !bound.has(r.slot) {
					next = append(next, r.slot)
					bound = bound.with(r.slot)
				}
			}
			addNew(rp.qp.s)
			addNew(rp.qp.p)
			addNew(rp.qp.o)
			if rp.qp.g.kind == GraphVar {
				addNew(posRef{isVar: true, slot: rp.qp.g.slot})
			}
			vx.colSlots[d+1] = next
		}
		vx.out = make([]*colBatch, nd)
		for d := range vx.out {
			vx.out[d] = newColBatch(vx.width, vx.colSlots[d+1])
		}
		vx.scratch = make([]binding, nd+1)
		for i := range vx.scratch {
			vx.scratch[i] = make(binding, vx.width)
		}
		vx.undo = make([]undoList, nd)
	}
	for i := range vx.scratch {
		copy(vx.scratch[i], b)
	}
	for d := range vx.out {
		vx.out[d].reset()
		vx.out[d].base = b
	}
	vx.unit.base = b
	vx.unit.n = 1
}

// run evaluates the join tree for one input binding. It returns false
// when the consumer stopped or the guard tripped.
func (vx *vecExec) run(b binding) bool {
	vx.prepare(b)
	vx.cap = vecRampStart
	return vx.step(0, vx.unit)
}

// grow raises the adaptive batch cap after a flush.
func (vx *vecExec) grow() {
	if vx.cap < batchRows {
		vx.cap *= 4
		if vx.cap > batchRows {
			vx.cap = batchRows
		}
	}
}

// selectRows compacts in to the rows passing the depth's entry filters
// (the selection-vector form of the row walker's filterAt check).
func (vx *vecExec) selectRows(depth int, in *colBatch, filters []*filterOp) {
	ec := vx.sh.ec
	scratch := vx.scratch[depth]
	w := 0
	for i := 0; i < in.n; i++ {
		in.writeCols(i, scratch)
		if !passFilters(ec, filters, scratch) {
			continue
		}
		if w != i {
			for _, s := range in.slots {
				in.cols[s][w] = in.cols[s][i]
			}
		}
		w++
	}
	in.n = w
}

// step processes one input batch at a join depth, appending results to
// the depth's output batch and draining it to the next depth whenever
// it fills — the batch counterpart of bgpWalker.step. It returns false
// when the consumer stopped or the guard tripped; filtered-out or
// non-matching rows are simply skipped.
func (vx *vecExec) step(depth int, in *colBatch) bool {
	sh := vx.sh
	ec := sh.ec
	// Cooperative cancellation, amortized to once per batch; the scan
	// and probe loops below poll again per run via tickN.
	if !ec.guard.poll() {
		return false
	}
	if filters := sh.filterAt[depth]; len(filters) > 0 {
		vx.selectRows(depth, in, filters)
	}
	if in.n == 0 {
		return true
	}
	if depth == len(sh.order) {
		return vx.emitBatch(in)
	}
	rp := &sh.rps[sh.order[depth]]
	hs := &sh.hashes[depth]
	pst := sh.stepStat(depth)
	scratch := vx.scratch[depth]
	out := vx.out[depth]
	seen := sh.inputSeen[depth].Add(int64(in.n))

	// The adaptive NLJ→hash switch, decided once per input batch. The
	// switch point can differ from the row walker's by up to one batch;
	// both access paths emit rows in identical order, so the output is
	// unaffected (DESIGN.md §10).
	if !hs.built.Load() && !ec.noHashJoin && seen > int64(ec.hashMin) &&
		rp.estConst < 64*int(seen) {
		in.writeCols(0, scratch)
		sh.buildHash(depth, rp, scratch)
	}

	if hs.built.Load() {
		in.writeCols(0, scratch)
		usable := true
		//pgrdfvet:ignore guardedby -- keySlots is frozen before built.Store(true); built.Load() above is the publication barrier
		for _, slot := range hs.keySlots {
			if scratch[slot] == store.NoID {
				usable = false // heterogeneous boundness: NLJ fallback
				break
			}
		}
		if usable {
			return vx.probeBatch(depth, in, rp, hs, pst)
		}
	}

	// Index nested-loop join over the batched scan: one range scan per
	// input row, bound in tight loops over the returned runs. Guard
	// charges batch up in pending and flush once per run (tickN is
	// budget-equivalent to per-row ticks); profile counters flush once
	// per input batch.
	stopped := false
	var scanned, emitted int64
	pending := 0
	for i := 0; i < in.n; i++ {
		in.writeCols(i, scratch)
		stop := false
		ec.st.ScanBatch(rp.boundPattern(scratch), batchRows, func(run []store.IDQuad) bool {
			for _, q := range run {
				if !ec.quadVisible(q) {
					continue
				}
				scanned++
				pending++
				if !rp.matchesGraphCtx(q) {
					continue
				}
				if !rp.bindQuad(scratch, q, &vx.undo[depth]) {
					continue
				}
				emitted++
				out.appendFrom(scratch)
				vx.undo[depth].revert(scratch)
				if out.n >= vx.cap {
					if !ec.guard.tickN(pending) {
						pending, stop = 0, true
						return false
					}
					pending = 0
					if !vx.step(depth+1, out) {
						stop = true
						return false
					}
					out.reset()
					vx.grow()
				}
			}
			if !ec.guard.tickN(pending) {
				pending, stop = 0, true
				return false
			}
			pending = 0
			return true
		})
		if stop {
			stopped = true
			break
		}
	}
	pst.addTicks(scanned)
	pst.addRows(emitted)
	if stopped {
		return false
	}
	if out.n > 0 {
		cont := vx.step(depth+1, out)
		out.reset()
		return cont
	}
	return true
}

// probeBatch joins one input batch against a built hash table.
func (vx *vecExec) probeBatch(depth int, in *colBatch, rp *resolvedPattern, hs *hashState, pst *profStage) bool {
	ec := vx.sh.ec
	scratch := vx.scratch[depth]
	out := vx.out[depth]
	var probes int64 // flushed in one atomic per input batch
	pending := 0
	stopped := false
	for i := 0; i < in.n; i++ {
		in.writeCols(i, scratch)
		var key [4]store.ID
		//pgrdfvet:ignore guardedby -- keySlots is frozen before built.Store(true); the caller's built.Load() is the publication barrier
		for k, slot := range hs.keySlots {
			key[k] = scratch[slot]
		}
		//pgrdfvet:ignore guardedby -- table is immutable after built.Store(true); the caller's built.Load() is the publication barrier
		for _, q := range hs.table[key] {
			// Non-key bound positions are validated by bindQuad, like
			// the row walker's probe loop.
			if !rp.bindQuad(scratch, q, &vx.undo[depth]) {
				continue
			}
			probes++
			pending++
			out.appendFrom(scratch)
			vx.undo[depth].revert(scratch)
			if out.n >= vx.cap {
				// Probed rows bypass the scan guard, so charge them
				// here — batched, like the scan path.
				if !ec.guard.tickN(pending) {
					pending, stopped = 0, true
					break
				}
				pending = 0
				if !vx.step(depth+1, out) {
					stopped = true
					break
				}
				out.reset()
				vx.grow()
			}
		}
		if stopped {
			break
		}
	}
	if !stopped && !ec.guard.tickN(pending) {
		stopped = true
	}
	pst.addProbes(probes)
	if stopped {
		return false
	}
	if out.n > 0 {
		cont := vx.step(depth+1, out)
		out.reset()
		return cont
	}
	return true
}

// emitBatch applies the final filters as a selection over the finished
// batch and hands it to the consumer.
func (vx *vecExec) emitBatch(in *colBatch) bool {
	sh := vx.sh
	if len(sh.finalFilters) > 0 {
		vx.selectRows(len(sh.order), in, sh.finalFilters)
		// selectRows ran the final filters; re-running filterAt at this
		// depth is step's job, which already happened.
	}
	if in.n == 0 {
		return true
	}
	return vx.emit(in)
}

// applyBatch is the vectorized form of bgpOp.apply: same shared state,
// same parallel fan-out decision per input binding, batch emission.
func (o *bgpOp) applyBatch(ec *execCtx, in source) batchSource {
	return func(yield func(*colBatch) bool) error {
		sh, ok := o.newShared(ec)
		if !ok {
			return nil
		}
		var vx *vecExec
		err := in(func(b binding) bool {
			if sh.bgpStage != nil {
				sh.bgpStage.rowsIn.Add(1)
			}
			if ec.parallelism > 1 {
				if handled, cont := sh.tryParallelBatch(b, yield); handled {
					return cont
				}
			}
			if vx == nil {
				vx = newVecExec(sh, len(b), yield)
			}
			return vx.run(b)
		})
		sh.foldStepStats()
		if err == nil && ec.guard != nil {
			err = ec.guard.Err()
		}
		return err
	}
}

// ---------------------------------------------------------------------
// Parallel morsels in batch form.
// ---------------------------------------------------------------------

// tryParallelBatch mirrors tryParallel for the vectorized driver: fan
// the first join step's scan out to workers when it is big enough and
// worker slots are free, emitting batches through the merge.
func (sh *bgpShared) tryParallelBatch(b binding, yield func(*colBatch) bool) (handled, cont bool) {
	ec := sh.ec
	if len(sh.order) == 0 {
		return false, true
	}
	if !ec.guard.poll() {
		return true, false
	}
	for _, f := range sh.filterAt[0] {
		v, err := evalBool(ec, f.cond, b)
		if err != nil || !v {
			return true, true // filtered out, like the serial step(0, b)
		}
	}
	rp := &sh.rps[sh.order[0]]
	pat := rp.boundPattern(b)
	// Uncached estimate: bound patterns can carry per-query overlay IDs
	// (VALUES/BIND terms), which must not leak into the shared cache.
	if ec.st.EstimateCount(pat) < parallelScanMinRows {
		return false, true
	}
	workers := ec.acquireWorkers(ec.parallelism)
	if workers < 2 {
		ec.releaseWorkers(workers)
		return false, true
	}
	defer ec.releaseWorkers(workers)
	// The driver replaces the serial run(b) for this binding; keep the
	// step-0 input accounting consistent for later serial bindings.
	sh.inputSeen[0].Add(1)
	return true, sh.runParallelBatch(b, rp, pat, workers, yield)
}

// runParallelBatch executes one input binding's join tree with a
// partitioned first-step scan, morsels handing whole batches through
// the merge. In ordered mode the merge drains per-morsel channels
// strictly in morsel order (byte-identical to serial); when the query
// consumes results order-insensitively (ec.unordered, see
// orderInsensitive) batches fan in by completion order instead and the
// merge cost disappears. It returns false when the consumer stopped or
// the guard tripped.
func (sh *bgpShared) runParallelBatch(b binding, rp *resolvedPattern, pat store.Pattern, workers int, yield func(*colBatch) bool) bool {
	ec := sh.ec
	cur := ec.snapshot(pat)
	if cur == nil {
		return false // guard tripped before the snapshot
	}
	morsels := cur.Partitions(workers * morselsPerWorker)
	ec.markParallel(workers, len(morsels))
	if sh.bgpStage != nil {
		sh.bgpStage.morsels.Add(int64(len(morsels)))
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		stopOnce sync.Once
		stopped  = make(chan struct{})
		wg       sync.WaitGroup
	)
	halt := func() {
		stop.Store(true)
		stopOnce.Do(func() { close(stopped) })
	}

	// Fan-in plumbing: ordered mode gives each morsel its own bounded
	// channel; unordered mode shares one channel among all workers.
	unordered := ec.unordered
	var outs []chan *colBatch
	var shared chan *colBatch
	if unordered {
		shared = make(chan *colBatch, workers*2)
	} else {
		outs = make([]chan *colBatch, len(morsels))
		for i := range outs {
			outs[i] = make(chan *colBatch, 2)
		}
	}

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ec.workerEnter()
			defer ec.workerExit()
			base := b.clone()
			vx := newVecExec(sh, len(base), nil)
			for !stop.Load() {
				k := int(next.Add(1) - 1)
				if k >= len(morsels) {
					return
				}
				out := shared
				if !unordered {
					out = outs[k]
				}
				sh.processMorselBatch(vx, base, rp, morsels[k], out, !unordered, stopped, &stop)
			}
		}()
	}

	ok := true
	if unordered {
		// Completion-order fan-in: a closer goroutine seals the shared
		// channel once every worker has joined; the drain loop below is
		// the channel handshake that joins the closer itself.
		go func() {
			wg.Wait()
			close(shared)
		}()
		for cb := range shared {
			if !yield(cb) {
				ok = false
				halt()
				break
			}
		}
		halt()
		for range shared {
			// Drain until the closer seals the channel, so no worker
			// stays blocked on a send and the closer always exits.
		}
	} else {
		// Order-preserving merge: drain the per-morsel channels strictly
		// in morsel order, so emission order equals one serial scan over
		// the same snapshot.
	merge:
		for _, ch := range outs {
			for cb := range ch {
				if !yield(cb) {
					ok = false
					halt()
					break merge
				}
			}
		}
		halt()
	}
	wg.Wait()
	// Workers close the morsels they claimed; release the rest.
	claimed := int(next.Load())
	if claimed > len(morsels) {
		claimed = len(morsels)
	}
	for _, m := range morsels[claimed:] {
		m.Close()
	}
	if ec.guard.Err() != nil {
		return false
	}
	return ok
}

// processMorselBatch runs the vectorized join pipeline over one morsel
// of the first step's scan, sending finished batches (privately copied)
// to the merge. It always closes the morsel cursor, and in ordered mode
// its output channel.
func (sh *bgpShared) processMorselBatch(vx *vecExec, base binding, rp *resolvedPattern, cur *store.Cursor, out chan<- *colBatch, closeOut bool, stopped <-chan struct{}, stop *atomic.Bool) {
	if closeOut {
		defer close(out)
	}
	defer cur.Close()
	ec := sh.ec
	pst := sh.stepStat(0)
	vx.prepare(base)
	vx.cap = vecRampStart
	vx.emit = func(cb *colBatch) bool {
		select {
		case out <- cb.copyOwned():
			return true
		case <-stopped:
			return false
		}
	}
	scratch := vx.scratch[0]
	ob := vx.out[0]
	// Profiling counts into locals, flushed in one atomic per morsel;
	// guard charges batch up in pending, flushed once per run.
	var scanned, emitted int64
	pending := 0
	ok := true
	defer func() {
		pst.addTicks(scanned)
		pst.addRows(emitted)
	}()
	for ok {
		if stop.Load() {
			return
		}
		run := cur.NextBatch(batchRows)
		if run == nil {
			break
		}
		for _, q := range run {
			// The snapshot pushed a single-model restriction into its
			// pattern; rowVisible filters the multi-model case.
			if !ec.rowVisible(q) {
				continue
			}
			scanned++
			pending++
			if !rp.matchesGraphCtx(q) {
				continue
			}
			if !rp.bindQuad(scratch, q, &vx.undo[0]) {
				continue
			}
			emitted++
			ob.appendFrom(scratch)
			vx.undo[0].revert(scratch)
			if ob.n >= vx.cap {
				if !ec.guard.tickN(pending) {
					pending, ok = 0, false
					break
				}
				pending = 0
				if !vx.step(1, ob) {
					ok = false
					break
				}
				ob.reset()
				vx.grow()
			}
		}
		if !ok {
			break
		}
		if !ec.guard.tickN(pending) {
			pending, ok = 0, false
			break
		}
		pending = 0
	}
	if ok && ob.n > 0 {
		vx.step(1, ob)
		ob.reset()
	}
}

// ---------------------------------------------------------------------
// The row/batch boundary: plan tail detection and batch consumers.
// ---------------------------------------------------------------------

// filterBatch runs a FILTER as a selection vector over each batch:
// survivors are compacted down in place, empty batches are dropped.
func (o *filterOp) filterBatch(ec *execCtx, in batchSource) batchSource {
	var scratch binding
	return func(yield func(*colBatch) bool) error {
		return in(func(cb *colBatch) bool {
			if scratch == nil {
				scratch = make(binding, len(cb.base))
			}
			copy(scratch, cb.base)
			w := 0
			for i := 0; i < cb.n; i++ {
				cb.writeCols(i, scratch)
				v, err := evalBool(ec, o.cond, scratch)
				if err != nil || !v {
					continue
				}
				if w != i {
					for _, s := range cb.slots {
						cb.cols[s][w] = cb.cols[s][i]
					}
				}
				w++
			}
			cb.n = w
			if cb.n == 0 {
				return true
			}
			return yield(cb)
		})
	}
}

// vectorTail returns the pipeline as a batch source when its tail can
// run vectorized — the last operator shape the batch executor handles
// is a BGP followed only by FILTERs; everything before the BGP runs as
// the ordinary row pipeline feeding it. It returns nil when the plan
// has no BGP, a non-filter operator follows the last one, or the
// engine's vectorized executor is disabled — the caller then uses the
// row pipeline unchanged.
func vectorTail(ec *execCtx, ops []op, width int) batchSource {
	if !ec.vectorized {
		return nil
	}
	idx := -1
	for i, o := range ops {
		if _, ok := o.(*bgpOp); ok {
			idx = i
		}
	}
	if idx < 0 {
		return nil
	}
	for _, o := range ops[idx+1:] {
		if _, ok := o.(*filterOp); !ok {
			return nil
		}
	}
	bgp := ops[idx].(*bgpOp)
	in := runPipeline(ec, ops[:idx], unitSource(width))
	bs := bgp.applyBatch(ec, in)
	if ec.prof != nil {
		bs = ec.prof.instrumentBatch(bgp.stageID(), bs)
	}
	for _, o := range ops[idx+1:] {
		f := o.(*filterOp)
		bs = f.filterBatch(ec, bs)
		if ec.prof != nil {
			bs = ec.prof.instrumentBatch(f.stageID(), bs)
		}
	}
	return bs
}

// orderInsensitive reports whether a plan's results cannot depend on
// the order its solutions are produced in: a single implicit group
// whose aggregates are order-insensitive folds. COUNT, MIN and MAX
// qualify (their DISTINCT variants too); SUM and AVG do not (float
// accumulation order changes the result), nor do SAMPLE and
// GROUP_CONCAT (they pick by arrival order). When it holds, the
// parallel batch executor fans morsel results in by completion order
// instead of paying the order-preserving merge — the EQ11d fix
// (DESIGN.md §15).
func orderInsensitive(cp *compiled) bool {
	if !cp.grouping || len(cp.groupBy) != 0 || len(cp.orderBy) != 0 {
		return false
	}
	for _, agg := range cp.aggregates {
		switch agg.fn {
		case "COUNT", "MIN", "MAX":
		default:
			return false
		}
	}
	return true
}

// groupSolutionsBatch is groupSolutions over a batch source: identical
// groups and fold results, but with a columnar fast path for the
// single-group COUNT shape (the paper's EQ11/EQ12 path- and
// triangle-counting queries), which never materializes a row at all.
func groupSolutionsBatch(ec *execCtx, cp *compiled, bs batchSource) ([]binding, error) {
	acc := newGroupAcc(ec, cp)

	// COUNT-only single group: every aggregate needs at most a
	// boundness test per row, answered columnar.
	countOnly := acc.single != nil
	if countOnly {
		for _, agg := range cp.aggregates {
			if agg.fn != "COUNT" || agg.distinct {
				countOnly = false
				break
			}
			if agg.arg != nil {
				if _, isSlot := agg.arg.(*exprSlot); !isSlot {
					countOnly = false
					break
				}
			}
		}
	}

	var scratch binding
	if err := finishGuard(ec, bs(func(cb *colBatch) bool {
		if countOnly {
			for i, agg := range cp.aggregates {
				st := acc.single.states[i]
				if agg.arg == nil {
					st.count += int64(cb.n)
					continue
				}
				vs := agg.arg.(*exprSlot)
				if vs.slot >= len(cb.cols) {
					continue
				}
				if col := cb.cols[vs.slot]; col != nil {
					for _, v := range col[:cb.n] {
						if v != store.NoID {
							st.count++
						}
					}
				} else if cb.base[vs.slot] != store.NoID {
					// The slot is constant across the batch (bound by
					// the input binding, not the BGP).
					st.count += int64(cb.n)
				}
			}
			return true
		}
		if scratch == nil {
			scratch = make(binding, len(cb.base))
		}
		for i := 0; i < cb.n; i++ {
			cb.materialize(i, scratch)
			if !acc.add(scratch) {
				return false
			}
		}
		return true
	})); err != nil {
		return nil, err
	}
	return acc.finish(), nil
}
