package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// exprStore builds a tiny store for expression tests.
func exprStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	subj := rdf.NewIRI("http://x/s")
	add := func(p string, o rdf.Term) rdf.Quad {
		return rdf.Quad{S: subj, P: rdf.NewIRI("http://x/" + p), O: o}
	}
	_, err := st.Load("m", []rdf.Quad{
		add("str", rdf.NewLiteral("hello")),
		add("int", rdf.NewInteger(42)),
		add("neg", rdf.NewInteger(-5)),
		add("dbl", rdf.NewDouble(2.5)),
		add("lang", rdf.NewLangLiteral("bonjour", "fr")),
		add("iri", rdf.NewIRI("http://x/other")),
		add("blank", rdf.NewBlank("b1")),
		add("bool", rdf.NewBoolean(true)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// evalFilter runs `SELECT ?o WHERE { <s> <p> ?o FILTER (expr) }` and
// reports whether any row survives.
func evalFilter(t *testing.T, st *store.Store, prop, filter string) bool {
	t.Helper()
	q := `SELECT ?o WHERE { <http://x/s> <http://x/` + prop + `> ?o FILTER (` + filter + `) }`
	res, err := NewEngine(st).Query("", q)
	if err != nil {
		t.Fatalf("query %s: %v", filter, err)
	}
	return res.Len() > 0
}

func TestExprTypePredicates(t *testing.T) {
	st := exprStore(t)
	cases := []struct {
		prop, filter string
		want         bool
	}{
		{"str", "isLiteral(?o)", true},
		{"iri", "isLiteral(?o)", false},
		{"iri", "isIRI(?o)", true},
		{"iri", "isURI(?o)", true},
		{"blank", "isBlank(?o)", true},
		{"str", "isBlank(?o)", false},
		{"int", "isNumeric(?o)", true},
		{"str", "isNumeric(?o)", false},
		{"dbl", "isNumeric(?o)", true},
	}
	for _, c := range cases {
		if got := evalFilter(t, st, c.prop, c.filter); got != c.want {
			t.Errorf("%s on %s = %v, want %v", c.filter, c.prop, got, c.want)
		}
	}
}

func TestExprAccessors(t *testing.T) {
	st := exprStore(t)
	cases := []struct {
		prop, filter string
		want         bool
	}{
		{"lang", `LANG(?o) = "fr"`, true},
		{"str", `LANG(?o) = ""`, true},
		{"int", `DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#integer>`, true},
		{"str", `DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#string>`, true},
		{"iri", `STR(?o) = "http://x/other"`, true},
		{"int", `STR(?o) = "42"`, true},
		{"str", `sameTerm(?o, "hello")`, true},
		{"str", `sameTerm(?o, "hello"@fr)`, false},
	}
	for _, c := range cases {
		if got := evalFilter(t, st, c.prop, c.filter); got != c.want {
			t.Errorf("%s on %s = %v, want %v", c.filter, c.prop, got, c.want)
		}
	}
}

func TestExprArithmetic(t *testing.T) {
	st := exprStore(t)
	cases := []struct {
		prop, filter string
		want         bool
	}{
		{"int", "?o * 2 = 84", true},
		{"int", "?o - 40 = 2", true},
		{"int", "?o / 2 = 21", true}, // integer division yields decimal 21.0 = 21
		{"dbl", "?o + 0.5 = 3", true},
		{"neg", "ABS(?o) = 5", true},
		{"neg", "-?o = 5", true},
		{"int", "?o / 0 = 1", false}, // division by zero is a type error -> false
		{"str", "?o + 1 = 2", false}, // non-numeric arithmetic is an error
	}
	for _, c := range cases {
		if got := evalFilter(t, st, c.prop, c.filter); got != c.want {
			t.Errorf("%s on %s = %v, want %v", c.filter, c.prop, got, c.want)
		}
	}
}

func TestExprLogicErrorTolerance(t *testing.T) {
	st := exprStore(t)
	// SPARQL: error || true = true; error && false = false.
	if !evalFilter(t, st, "str", `(?o + 1 = 2) || true`) {
		t.Error("error || true should be true")
	}
	if evalFilter(t, st, "str", `(?o + 1 = 2) && true`) {
		t.Error("error && true should be an error (row dropped)")
	}
	if evalFilter(t, st, "str", `(?o + 1 = 2) && false`) {
		t.Error("error && false should be false")
	}
	if !evalFilter(t, st, "str", `!(?o = "nope")`) {
		t.Error("negation of false should pass")
	}
}

func TestExprConditionals(t *testing.T) {
	st := exprStore(t)
	if !evalFilter(t, st, "int", `IF(?o > 10, true, false)`) {
		t.Error("IF true branch")
	}
	if evalFilter(t, st, "int", `IF(?o > 100, true, false)`) {
		t.Error("IF false branch")
	}
	if !evalFilter(t, st, "int", `COALESCE(?missing, ?o) = 42`) {
		t.Error("COALESCE should skip unbound and return ?o")
	}
	if !evalFilter(t, st, "int", `BOUND(?o)`) {
		t.Error("BOUND(?o) should hold")
	}
	if evalFilter(t, st, "int", `BOUND(?nope)`) {
		t.Error("BOUND of never-bound var should be false")
	}
}

func TestExprInList(t *testing.T) {
	st := exprStore(t)
	if !evalFilter(t, st, "int", `?o IN (41, 42, 43)`) {
		t.Error("IN should match")
	}
	if evalFilter(t, st, "int", `?o IN (1, 2)`) {
		t.Error("IN should not match")
	}
	if !evalFilter(t, st, "int", `?o NOT IN (1, 2)`) {
		t.Error("NOT IN should match")
	}
}

func TestExprReplaceAndSubstr(t *testing.T) {
	st := exprStore(t)
	if !evalFilter(t, st, "str", `REPLACE(?o, "l+", "L") = "heLo"`) {
		t.Error("REPLACE failed")
	}
	if !evalFilter(t, st, "str", `SUBSTR(?o, 2) = "ello"`) {
		t.Error("SUBSTR(s,2) failed")
	}
	if !evalFilter(t, st, "str", `SUBSTR(?o, 1, 2) = "he"`) {
		t.Error("SUBSTR(s,1,2) failed")
	}
}

func TestHavingClause(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://x/p")
	var quads []rdf.Quad
	for i := 0; i < 5; i++ {
		quads = append(quads, rdf.Quad{S: rdf.NewIRI("http://x/a"), P: p, O: rdf.NewInteger(int64(i))})
	}
	quads = append(quads, rdf.Quad{S: rdf.NewIRI("http://x/b"), P: p, O: rdf.NewInteger(9)})
	st.Load("m", quads)
	res, err := NewEngine(st).Query("", `
		SELECT ?s (COUNT(*) AS ?n) WHERE { ?s <http://x/p> ?o }
		GROUP BY ?s HAVING (COUNT(*) > 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Value != "http://x/a" {
		t.Fatalf("having res = %s", res)
	}
}

func TestGroupConcatAndSample(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://x/p")
	s := rdf.NewIRI("http://x/a")
	st.Load("m", []rdf.Quad{
		{S: s, P: p, O: rdf.NewLiteral("x")},
		{S: s, P: p, O: rdf.NewLiteral("y")},
	})
	res, err := NewEngine(st).Query("", `
		SELECT (GROUP_CONCAT(?o) AS ?all) (SAMPLE(?o) AS ?one) WHERE { ?s <http://x/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	all := res.Rows[0][0].Value
	if all != "x y" && all != "y x" {
		t.Errorf("GROUP_CONCAT = %q", all)
	}
	one := res.Rows[0][1].Value
	if one != "x" && one != "y" {
		t.Errorf("SAMPLE = %q", one)
	}
}

func TestSumAvgOverEmptyAndMixed(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `
		SELECT (SUM(?o) AS ?s) (AVG(?o) AS ?a) WHERE { ?x <http://never> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Value != "0" || res.Rows[0][1].Value != "0" {
		t.Errorf("empty SUM/AVG = %v", res.Rows[0])
	}
	// SUM skips non-numeric values.
	res, err = NewEngine(st).Query("", `
		SELECT (SUM(?o) AS ?s) WHERE { <http://x/s> ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rdf.LiteralValue(res.Rows[0][0])
	if !ok || v.Float() != 39.5 { // 42 + -5 + 2.5
		t.Errorf("mixed SUM = %v", res.Rows[0][0])
	}
}

func TestMinMaxOverMixedTerms(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `
		SELECT (MIN(?o) AS ?lo) (MAX(?o) AS ?hi) WHERE { <http://x/s> <http://x/int> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Value != "42" || res.Rows[0][1].Value != "42" {
		t.Errorf("min/max singleton = %v", res.Rows[0])
	}
}

func TestOptionalWithFilterInside(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `
		SELECT ?o WHERE {
			<http://x/s> <http://x/int> ?v
			OPTIONAL { <http://x/s> <http://x/str> ?o FILTER (?v > 100) }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Rows[0][0].IsZero() {
		t.Fatalf("optional with failing inner filter should leave ?o unbound: %s", res)
	}
}

func TestNestedOptional(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `
		SELECT ?a ?b WHERE {
			<http://x/s> <http://x/int> ?v
			OPTIONAL { <http://x/s> <http://x/str> ?a
				OPTIONAL { <http://x/s> <http://x/lang> ?b } }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Value != "hello" || res.Rows[0][1].Value != "bonjour" {
		t.Fatalf("nested optional: %s", res)
	}
}

func TestValuesWithUndef(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `
		SELECT ?p ?o WHERE {
			VALUES (?p ?o) { (<http://x/int> UNDEF) (UNDEF "hello") }
			<http://x/s> ?p ?o
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("values/undef rows = %d\n%s", res.Len(), res)
	}
}

func TestOffsetPastEnd(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `SELECT ?o WHERE { <http://x/s> <http://x/int> ?o } OFFSET 10`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("offset past end rows = %d", res.Len())
	}
}

func TestSelectStar(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `SELECT * WHERE { <http://x/s> <http://x/int> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 1 || res.Vars[0] != "o" {
		t.Fatalf("star vars = %v", res.Vars)
	}
}

func TestResultsHelpers(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `SELECT ?o WHERE { <http://x/s> <http://x/int> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Col("o") != 0 || res.Col("missing") != -1 {
		t.Error("Col lookup broken")
	}
	if !strings.Contains(res.String(), "42") {
		t.Errorf("String() output: %s", res)
	}
}

func TestBindErrorLeavesUnbound(t *testing.T) {
	st := exprStore(t)
	res, err := NewEngine(st).Query("", `
		SELECT ?bad WHERE { <http://x/s> <http://x/str> ?o BIND (?o * 2 AS ?bad) }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Rows[0][0].IsZero() {
		t.Fatalf("BIND error should leave var unbound: %s", res)
	}
}

func TestRegexInvalidPatternIsError(t *testing.T) {
	st := exprStore(t)
	if evalFilter(t, st, "str", `REGEX(?o, "(")`) {
		t.Error("invalid regex should be a type error, dropping the row")
	}
}
