package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

const testPrologue = `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX rel: <http://pg/r/>
PREFIX key: <http://pg/k/>
PREFIX r: <http://pg/r/>
PREFIX k: <http://pg/k/>
`

func mustParseQuery(t *testing.T, q string) *Query {
	t.Helper()
	parsed, err := Parse(testPrologue + q)
	if err != nil {
		t.Fatalf("Parse(%s): %v", q, err)
	}
	return parsed
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x ?y WHERE { ?x rel:follows ?y }`)
	if len(q.Select.Projection) != 2 {
		t.Fatalf("projection = %v", q.Select.Projection)
	}
	if len(q.Select.Where.Elems) != 1 {
		t.Fatalf("where elems = %d", len(q.Select.Where.Elems))
	}
	tp := q.Select.Where.Elems[0].(*TriplePattern)
	if !tp.S.IsVar || tp.S.Var != "x" {
		t.Errorf("subject = %+v", tp.S)
	}
	p := tp.P.(PathIRI)
	if p.IRI.Value != rdf.RelNS+"follows" {
		t.Errorf("predicate = %v", p.IRI)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?e WHERE {
		?e rdf:subject ?x ; rdf:predicate rel:follows ; rdf:object ?y .
		?x key:name "Amy" , "Mira" .
	}`)
	if n := len(q.Select.Where.Elems); n != 5 {
		t.Fatalf("expected 5 patterns from ; and , lists, got %d", n)
	}
	// The ';' list shares the subject.
	for _, e := range q.Select.Where.Elems[:3] {
		tp := e.(*TriplePattern)
		if !tp.S.IsVar || tp.S.Var != "e" {
			t.Errorf("shared subject broken: %+v", tp.S)
		}
	}
}

func TestParseGraphClause(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x WHERE {
		GRAPH ?g { ?x rel:follows ?y . ?g key:since ?yr }
		?x key:name ?n
	}`)
	gp := q.Select.Where.Elems[0].(*GraphPattern)
	if !gp.Graph.IsVar || gp.Graph.Var != "g" {
		t.Fatalf("graph var = %+v", gp.Graph)
	}
	if len(gp.Group.Elems) != 2 {
		t.Fatalf("graph group has %d elems", len(gp.Group.Elems))
	}
	if _, ok := q.Select.Where.Elems[1].(*TriplePattern); !ok {
		t.Error("pattern after GRAPH missing")
	}
}

func TestParseFilters(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?x WHERE {
		?x ?k ?v FILTER (isLiteral(?v))
		FILTER (?v != "x" && STRLEN(STR(?v)) > 2 || BOUND(?k))
	}`)
	nFilters := 0
	for _, e := range q.Select.Where.Elems {
		if _, ok := e.(*FilterElem); ok {
			nFilters++
		}
	}
	if nFilters != 2 {
		t.Fatalf("filters = %d", nFilters)
	}
}

func TestParsePropertyPaths(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?y WHERE {
		<http://pg/n1> r:follows/r:follows ?y .
		?a (r:knows|r:follows) ?b .
		?c r:follows+ ?d .
		?e ^r:follows ?f .
		?g r:follows* ?h .
		?i r:knows? ?j .
	}`)
	tp := q.Select.Where.Elems[0].(*TriplePattern)
	if _, ok := tp.P.(PathSeq); !ok {
		t.Errorf("expected PathSeq, got %T", tp.P)
	}
	if _, ok := q.Select.Where.Elems[1].(*TriplePattern).P.(PathAlt); !ok {
		t.Error("expected PathAlt")
	}
	if _, ok := q.Select.Where.Elems[2].(*TriplePattern).P.(PathPlus); !ok {
		t.Error("expected PathPlus")
	}
	if _, ok := q.Select.Where.Elems[3].(*TriplePattern).P.(PathInverse); !ok {
		t.Error("expected PathInverse")
	}
	if _, ok := q.Select.Where.Elems[4].(*TriplePattern).P.(PathStar); !ok {
		t.Error("expected PathStar")
	}
	if _, ok := q.Select.Where.Elems[5].(*TriplePattern).P.(PathOpt); !ok {
		t.Error("expected PathOpt")
	}
}

func TestParseAggregatesAndSubquery(t *testing.T) {
	// EQ9 from the paper, verbatim shape.
	q := mustParseQuery(t, `SELECT ?inDeg (COUNT(*) as ?cnt)
		WHERE { SELECT ?n2 (COUNT(*) as ?inDeg)
			WHERE { ?n1 (r:knows|r:follows) ?n2 }
			GROUP BY ?n2 } GROUP BY ?inDeg ORDER BY DESC(?inDeg)`)
	if len(q.Select.Projection) != 2 {
		t.Fatalf("projection = %+v", q.Select.Projection)
	}
	if q.Select.Projection[1].Expr == nil {
		t.Fatal("COUNT(*) AS ?cnt lost")
	}
	if len(q.Select.GroupBy) != 1 || len(q.Select.OrderBy) != 1 || !q.Select.OrderBy[0].Desc {
		t.Fatalf("modifiers: groupBy=%v orderBy=%v", q.Select.GroupBy, q.Select.OrderBy)
	}
	ss, ok := q.Select.Where.Elems[0].(*SubSelect)
	if !ok {
		t.Fatalf("inner subselect missing: %T", q.Select.Where.Elems[0])
	}
	if len(ss.Select.GroupBy) != 1 {
		t.Error("inner GROUP BY missing")
	}
}

func TestParseUnionOptionalValues(t *testing.T) {
	q := mustParseQuery(t, `SELECT * WHERE {
		{ ?x rel:follows ?y } UNION { ?x rel:knows ?y }
		OPTIONAL { ?x key:name ?n }
		VALUES ?x { <http://pg/v1> <http://pg/v2> }
	}`)
	if _, ok := q.Select.Where.Elems[0].(*UnionPattern); !ok {
		t.Errorf("union missing: %T", q.Select.Where.Elems[0])
	}
	if _, ok := q.Select.Where.Elems[1].(*OptionalPattern); !ok {
		t.Errorf("optional missing: %T", q.Select.Where.Elems[1])
	}
	v, ok := q.Select.Where.Elems[2].(*ValuesElem)
	if !ok || len(v.Rows) != 2 {
		t.Errorf("values missing or wrong: %+v", q.Select.Where.Elems[2])
	}
}

func TestParseLiteralsInPatterns(t *testing.T) {
	q := mustParseQuery(t, `SELECT ?n WHERE {
		?n key:hasTag "#webseries" .
		?n key:age 23 .
		?n key:score 1.5 .
		?n key:active true .
		?n key:lang "train"@en-us .
		?n key:since "2007"^^<http://www.w3.org/2001/XMLSchema#int> .
	}`)
	objs := make([]rdf.Term, 0, 6)
	for _, e := range q.Select.Where.Elems {
		objs = append(objs, e.(*TriplePattern).O.Term)
	}
	if !objs[0].Equal(rdf.NewLiteral("#webseries")) {
		t.Errorf("string literal: %v", objs[0])
	}
	if !objs[1].Equal(rdf.NewTypedLiteral("23", rdf.XSDInteger)) {
		t.Errorf("integer literal: %v", objs[1])
	}
	if !objs[2].Equal(rdf.NewTypedLiteral("1.5", rdf.XSDDecimal)) {
		t.Errorf("decimal literal: %v", objs[2])
	}
	if !objs[3].Equal(rdf.NewBoolean(true)) {
		t.Errorf("boolean literal: %v", objs[3])
	}
	if !objs[4].Equal(rdf.NewLangLiteral("train", "en-us")) {
		t.Errorf("lang literal: %v", objs[4])
	}
	if !objs[5].Equal(rdf.NewInt(2007)) {
		t.Errorf("typed literal: %v", objs[5])
	}
}

func TestParseDistinctLimitOffset(t *testing.T) {
	q := mustParseQuery(t, `SELECT DISTINCT ?x WHERE { ?x ?p ?y } LIMIT 10 OFFSET 5`)
	if !q.Select.Distinct || q.Select.Limit != 10 || q.Select.Offset != 5 {
		t.Fatalf("modifiers: %+v", q.Select)
	}
}

func TestParseErrorsSPARQL(t *testing.T) {
	bad := []string{
		`SELECT WHERE { ?x ?p ?y }`,                   // empty projection
		`SELECT ?x { ?x nope:foo ?y }`,                // unknown prefix
		`SELECT ?x WHERE { ?x ?p }`,                   // incomplete triple
		`SELECT ?x WHERE { ?x ?p ?y `,                 // unterminated group
		`FOO ?x WHERE { ?x ?p ?y }`,                   // not a select
		`SELECT ?x WHERE { ?x ?p ?y } GROUP ?x`,       // GROUP without BY
		`SELECT ?x WHERE { ?x ?p ?y } LIMIT x`,        // bad limit
		`SELECT (COUNT(*) ?c) WHERE { ?x ?p ?y }`,     // missing AS
		`SELECT ?x WHERE { ?x ?p "unterminated }`,     // bad string
		`SELECT (SUM(*) AS ?s) WHERE { ?x ?p ?y }`,    // * only for COUNT
		`SELECT ?x WHERE { ?x ?p ?y } extra`,          // trailing tokens
		`SELECT ?x WHERE { ?x ?p ?y . ?x BADFN(?y) }`, // garbage
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("accepted invalid query: %s", s)
		}
	}
}

func TestParseUpdateForms(t *testing.T) {
	u, err := ParseUpdate(testPrologue + `
		INSERT DATA { <http://pg/v1> rel:follows <http://pg/v2> .
			GRAPH <http://pg/e3> { <http://pg/v1> rel:follows <http://pg/v2> } } ;
		DELETE DATA { <http://pg/v1> rel:follows <http://pg/v2> } ;
		DELETE WHERE { ?x rel:knows ?y }`)
	if err != nil {
		t.Fatalf("ParseUpdate: %v", err)
	}
	if len(u.Ops) != 3 {
		t.Fatalf("ops = %d", len(u.Ops))
	}
	ins := u.Ops[0].(InsertData)
	if len(ins.Quads) != 2 {
		t.Fatalf("insert quads = %d", len(ins.Quads))
	}
	if ins.Quads[1].G.Value != "http://pg/e3" {
		t.Errorf("graph quad = %v", ins.Quads[1])
	}
	if _, ok := u.Ops[1].(DeleteData); !ok {
		t.Error("second op should be DELETE DATA")
	}
	if _, ok := u.Ops[2].(DeleteWhere); !ok {
		t.Error("third op should be DELETE WHERE")
	}
}

func TestParseUpdateErrors(t *testing.T) {
	bad := []string{
		`INSERT { ?x ?p ?y }`,                      // no DATA
		`DELETE FROM x`,                            // unsupported form
		`INSERT DATA { ?x <http://p> <http://o> }`, // var in ground data
		``, // empty
	}
	for _, s := range bad {
		if _, err := ParseUpdate(s); err == nil {
			t.Errorf("accepted invalid update: %s", s)
		}
	}
}

func TestParseAllPaperQueries(t *testing.T) {
	// Every query from Table 10 must parse.
	for name, q := range PaperQueries() {
		if _, err := Parse(q); err != nil {
			t.Errorf("%s does not parse: %v\n%s", name, err, q)
		}
	}
}

func TestParseTrailingDotAfterPName(t *testing.T) {
	// A prefixed name directly followed by the triple terminator: the
	// dot must not be swallowed into the local name.
	q, err := Parse(`PREFIX pg: <http://pg/> PREFIX rel: <http://pg/r/>
		SELECT ?x WHERE { ?x rel:follows pg:v1. }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tp := q.Select.Where.Elems[0].(*TriplePattern)
	if tp.O.Term.Value != "http://pg/v1" {
		t.Errorf("object = %v", tp.O.Term)
	}
	if !strings.Contains(tp.O.Term.Value, "v1") {
		t.Errorf("local name mangled: %v", tp.O.Term)
	}
}
