package sparql

import (
	"sort"
	"testing"

	"repro/internal/rdf"
)

func TestAskQuery(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	yes, err := e.Ask("", testPrologue+`ASK { ?x rel:follows ?y }`)
	if err != nil || !yes {
		t.Fatalf("ask follows = %v, %v", yes, err)
	}
	no, err := e.Ask("", testPrologue+`ASK WHERE { ?x rel:blocks ?y }`)
	if err != nil || no {
		t.Fatalf("ask blocks = %v, %v", no, err)
	}
	// All-constant pattern (no variables at all).
	yes, err = e.Ask("", testPrologue+`ASK { <http://pg/v1> rel:follows <http://pg/v2> }`)
	if err != nil || !yes {
		t.Fatalf("constant ask = %v, %v", yes, err)
	}
	// Ask with a filter.
	yes, err = e.Ask("", testPrologue+`ASK { ?x key:age ?a FILTER (?a > 100) }`)
	if err != nil || yes {
		t.Fatalf("filtered ask = %v, %v", yes, err)
	}
	// Wrong form through Ask.
	if _, err := e.Ask("", `SELECT ?x WHERE { ?x ?p ?y }`); err == nil {
		t.Error("Ask accepted a SELECT query")
	}
	if _, err := e.Query("", testPrologue+`ASK { ?x ?p ?y }`); err == nil {
		t.Error("Query accepted an ASK query")
	}
}

func TestConstructQuery(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	quads, err := e.Construct("", testPrologue+`
		CONSTRUCT { ?y <http://x/followedBy> ?x . ?x <http://x/active> true }
		WHERE { ?x rel:follows ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(quads) != 2 {
		t.Fatalf("constructed %d quads: %v", len(quads), quads)
	}
	sort.Slice(quads, func(i, j int) bool { return rdf.CompareQuads(quads[i], quads[j]) < 0 })
	if quads[0].P.Value != "http://x/active" || quads[1].P.Value != "http://x/followedBy" {
		t.Errorf("quads = %v", quads)
	}
	if !quads[1].S.Equal(rdf.NewIRI("http://pg/v2")) {
		t.Errorf("inverted edge wrong: %v", quads[1])
	}
}

func TestConstructWithGraphTemplate(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	quads, err := e.Construct("", testPrologue+`
		CONSTRUCT { GRAPH ?g { ?x <http://x/inEdgeGraph> ?y } }
		WHERE { GRAPH ?g { ?x rel:follows ?y } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(quads) != 1 || !quads[0].G.Equal(rdf.NewIRI("http://pg/e3")) {
		t.Fatalf("graph template quads = %v", quads)
	}
}

func TestConstructSkipsInvalidAndUnbound(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	// ?v is a literal: binding it into subject position is invalid and
	// must be skipped; ?unbound is never bound.
	quads, err := e.Construct("", testPrologue+`
		CONSTRUCT { ?v <http://x/p> ?x . ?x <http://x/q> ?unbound . ?x <http://x/ok> ?v }
		WHERE { ?x key:name ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range quads {
		if q.P.Value != "http://x/ok" {
			t.Errorf("unexpected quad survived: %v", q)
		}
	}
	if len(quads) != 2 {
		t.Errorf("quads = %v", quads)
	}
}

func TestConstructDeduplicates(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	// Two solutions (follows + knows) produce the same template quad.
	quads, err := e.Construct("", testPrologue+`
		CONSTRUCT { ?x <http://x/connected> ?y } WHERE { ?x ?p ?y FILTER (isIRI(?y)) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(quads) != 1 {
		t.Fatalf("expected 1 deduplicated quad, got %v", quads)
	}
}

// TestConstructRoundTripsNGtoSP converts an NG dataset to SP triples
// with CONSTRUCT — the kind of scheme migration the models enable.
func TestConstructRoundTripsNGtoSP(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	quads, err := e.Construct("", testPrologue+`
		CONSTRUCT {
			?x ?g ?y .
			?g rdfs:subPropertyOf rel:follows .
			?x rel:follows ?y
		}
		WHERE { GRAPH ?g { ?x rel:follows ?y } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(quads) != 3 {
		t.Fatalf("migration quads = %v", quads)
	}
	// The migrated triples must contain the SP anchor form.
	found := false
	for _, q := range quads {
		if q.P.Value == "http://pg/e3" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing -s-e-o anchor in %v", quads)
	}
}
