package sparql

// Structured slow-query log (DESIGN.md §11): every query whose wall
// time reaches Engine.SlowQueryThreshold is appended to
// Engine.SlowQueryLog as one JSON line, with the per-operator profile
// attached for SELECT queries (profiling is switched on automatically
// while a slow-query log is installed). A threshold of zero logs every
// query, which is the right setting for debugging a single request.

import (
	"encoding/json"
	"time"
)

// SlowQueryRecord is one slow-query log line.
type SlowQueryRecord struct {
	Time       string   `json:"time"`
	Form       string   `json:"form"`
	Dataset    string   `json:"dataset"`
	DurationMS float64  `json:"duration_ms"`
	Rows       int      `json:"rows"`
	Error      string   `json:"error,omitempty"`
	Query      string   `json:"query"`
	Profile    *Profile `json:"profile,omitempty"`
}

// recordQuery feeds the per-form metrics and, when the query is slow
// enough, the slow-query log. It is registered with defer BEFORE
// recoverQueryPanic in every entry point, so it runs after recovery
// and observes the final error.
func (e *Engine) recordQuery(form int, model, query string, start time.Time, errp *error, rowsp *int, profp **Profile) {
	d := time.Since(start)
	var err error
	if errp != nil {
		err = *errp
	}
	e.metrics.observe(form, d, err)

	w := e.SlowQueryLog
	if w == nil || d < e.SlowQueryThreshold {
		return
	}
	e.metrics.slow.Add(1)
	rec := SlowQueryRecord{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Form:       formNames[form],
		Dataset:    datasetName(model),
		DurationMS: float64(d) / float64(time.Millisecond),
		Query:      query,
	}
	if rowsp != nil {
		rec.Rows = *rowsp
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if profp != nil {
		rec.Profile = *profp
	}
	line, jerr := json.Marshal(rec)
	if jerr != nil {
		return // a record that cannot marshal is dropped, never fatal
	}
	line = append(line, '\n')
	e.slowMu.Lock()
	w.Write(line)
	e.slowMu.Unlock()
}

// slowLogWantsProfile reports whether SELECT execution should collect
// a profile solely to serve the slow-query log.
func (e *Engine) slowLogWantsProfile() bool {
	return e.SlowQueryLog != nil
}
