package sparql

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// fuzzStore builds one small store shared by all fuzz executions: a
// handful of quads so parsed queries that survive compilation also
// exercise the executor paths (joins, paths, aggregates) cheaply.
func fuzzStore() *store.Store {
	st := store.New()
	n := func(s string) rdf.Term { return rdf.NewIRI("http://pg/" + s) }
	quads := []rdf.Quad{
		{S: n("a"), P: n("follows"), O: n("b")},
		{S: n("b"), P: n("follows"), O: n("c")},
		{S: n("c"), P: n("follows"), O: n("a")},
		{S: n("a"), P: n("name"), O: rdf.NewLiteral("alice")},
		{S: n("b"), P: n("age"), O: rdf.NewTypedLiteral("7", rdf.XSDInteger)},
		{S: n("a"), P: n("knows"), O: n("c"), G: n("g1")},
	}
	if _, err := st.Load("m", quads); err != nil {
		panic(err)
	}
	return st
}

// FuzzParseAndExec drives the SPARQL parser (and, for accepted
// queries, the guarded executor) with arbitrary input. Properties:
//
//  1. Parse and ParseUpdate never panic;
//  2. executing an accepted query under a strict budget never returns
//     ErrInternal — the kind reserved for recovered executor panics,
//     so any occurrence is a real crash the recover() masked.
//
// Seeds are the paper's EQ1–EQ12 plus grammar corner cases.
func FuzzParseAndExec(f *testing.F) {
	for _, q := range PaperQueries() {
		f.Add(q)
	}
	for _, q := range EQ11Queries("http://pg/a") {
		f.Add(q)
	}
	seeds := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"SELECT ?s (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s HAVING (COUNT(*) > 1) ORDER BY DESC(?c) LIMIT 3 OFFSET 1",
		"ASK { FILTER NOT EXISTS { ?s ?p ?o } }",
		"CONSTRUCT { ?s ?p ?o } WHERE { GRAPH ?g { ?s ?p ?o } }",
		"DESCRIBE <http://pg/a>",
		"SELECT ?x WHERE { ?x <http://pg/follows>+ ?y . OPTIONAL { ?y <http://pg/name> ?n } FILTER(!BOUND(?n) || STRLEN(?n) > 2) }",
		"SELECT ?s WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } MINUS { ?s <http://pg/age> ?a } }",
		"SELECT (1+2*3 AS ?x) (IF(true, \"a\", \"b\") AS ?y) WHERE {}",
		"INSERT DATA { <http://pg/x> <http://pg/p> \"v\" }",
		"DELETE WHERE { ?s <http://pg/gone> ?o }",
		"PREFIX : <http://pg/>\nSELECT ?v WHERE { :a :name ?v }",
		"SELECT * WHERE { ?s ?p \"unterminated",
		"SELECT ( WHERE {",
		"SELECT * WHERE { ?s <p>|^<q>/<r>* ?o }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range regressionInputs {
		f.Add(s)
	}
	st := fuzzStore()
	eng := NewEngine(st)
	eng.Limits = Budget{Timeout: 200 * time.Millisecond, MaxRows: 256, MaxBindings: 4096}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, execErr := eng.QueryContext(ctx, "m", src)
			cancel()
			if errors.Is(execErr, ErrInternal) {
				t.Fatalf("executor panicked (recovered as ErrInternal): %v\nquery: %q", execErr, src)
			}
		}
		// The update grammar is a separate entry point with its own
		// recursive-descent paths; parse it too (no execution: updates
		// mutate the shared store).
		if _, err := ParseUpdate(src); err != nil {
			_ = err
		}
		_ = strings.TrimSpace(src)
	})
}
