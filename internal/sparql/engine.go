package sparql

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Engine executes SPARQL queries and updates against a store.
type Engine struct {
	st *store.Store
	// DisableHashJoin forces index nested-loop joins for every pattern,
	// disabling the adaptive switch to hash joins over full scans. It
	// exists for the join-strategy ablation benchmarks; leave it false
	// for normal use.
	DisableHashJoin bool

	// DisableVectorized forces the row-at-a-time pull pipeline for every
	// operator, disabling batch-at-a-time BGP execution (DESIGN.md §15).
	// It exists as the vectorization ablation baseline for benchmarks
	// and the row/batch differential tests; leave it false for normal
	// use. Set it once before serving queries; it is read concurrently.
	DisableVectorized bool

	// Limits is the per-query resource budget applied by the *Context
	// execution methods. The zero value imposes no limits. Set it once
	// before serving queries; it is read concurrently.
	Limits Budget

	// Parallelism is the per-query worker budget for morsel-driven
	// intra-query parallelism: partitioned BGP scans, partitioned
	// hash-join builds and parallel path-search frontier expansion
	// (DESIGN.md §10). 0 means runtime.GOMAXPROCS(0). 1 disables
	// intra-query parallelism and reproduces the serial plans exactly
	// (the paper-faithful ablation setting). Set it once before
	// serving queries; it is read concurrently.
	Parallelism int

	// HashJoinThreshold is the number of input bindings that must
	// stream through a BGP join step before the executor considers
	// switching from index nested-loop join to a hash join over a full
	// scan — the Tables 5–9 crossover. 0 means the default of 1024.
	// Set it once before serving queries; it is read concurrently.
	HashJoinThreshold int

	// SlowQueryThreshold is the wall-time at or above which a query is
	// appended to SlowQueryLog. Zero logs every query (useful when
	// tracing a single request). Ignored while SlowQueryLog is nil.
	// Set both once before serving queries; they are read concurrently.
	SlowQueryThreshold time.Duration

	// SlowQueryLog receives one JSON line per slow query (see
	// SlowQueryRecord). While it is set, SELECT queries are executed
	// with profiling on so the log can attach per-operator actuals.
	SlowQueryLog io.Writer

	// CommitHook, when set, intercepts every Update operation's quad
	// delta before it is applied — the write-ahead log's entry point
	// (DESIGN.md §12). Set it once before serving updates; it is read
	// concurrently.
	CommitHook CommitHook

	// estc caches cardinality estimates for the greedy join-order
	// optimizer, invalidated by the store's mutation version.
	estc estCache

	// slowMu serializes writes to SlowQueryLog.
	slowMu sync.Mutex

	// metrics accumulates per-form query counters; see MetricsSnapshot.
	metrics queryMetrics

	// pstats accumulates intra-query parallelism counters; see
	// ParallelStats.
	pstats parallelStats

	// planCache caches compiled SELECT plans by query text. Compiled
	// plans are immutable after compilation (all per-run state lives in
	// the executor), so they are safe to share across goroutines.
	// planInflight deduplicates concurrent misses for the same text:
	// one goroutine compiles, the rest wait on the call's done channel.
	planMu sync.RWMutex
	//pgrdf:guardedby planMu
	planCache map[string]*compiled
	//pgrdf:guardedby planMu
	planInflight map[string]*compileCall

	planHits      atomic.Int64
	planMisses    atomic.Int64
	planEvictions atomic.Int64
}

// planCacheLimit bounds the compiled-plan cache; at the limit one
// arbitrary entry is evicted per insertion, so a workload that cycles
// through more than planCacheLimit distinct texts degrades to
// per-entry churn instead of wiping the whole hot set.
const planCacheLimit = 256

// compileCall is one in-flight compilation shared by every goroutine
// that missed on the same query text.
type compileCall struct {
	done chan struct{}
	cp   *compiled
	err  error
}

// NewEngine returns an engine over the given store.
func NewEngine(st *store.Store) *Engine {
	return &Engine{
		st:           st,
		planCache:    make(map[string]*compiled),
		planInflight: make(map[string]*compileCall),
	}
}

// compileCached returns the compiled plan for a SELECT query text,
// parsing and compiling only on a cache miss. Concurrent misses for
// the same text share a single compilation.
func (e *Engine) compileCached(query string) (*compiled, error) {
	e.planMu.RLock()
	cp, ok := e.planCache[query]
	e.planMu.RUnlock()
	if ok {
		e.planHits.Add(1)
		return cp, nil
	}

	e.planMu.Lock()
	if cp, ok = e.planCache[query]; ok {
		e.planMu.Unlock()
		e.planHits.Add(1)
		return cp, nil
	}
	if call, inflight := e.planInflight[query]; inflight {
		e.planMu.Unlock()
		<-call.done
		// Joining an in-flight compile is a hit on its (about-to-be)
		// cached entry, keeping Misses = number of compilations.
		if call.err == nil {
			e.planHits.Add(1)
		}
		return call.cp, call.err
	}
	call := &compileCall{done: make(chan struct{})}
	e.planInflight[query] = call
	e.planMu.Unlock()

	e.planMisses.Add(1)
	call.cp, call.err = e.compileSelectText(query)

	e.planMu.Lock()
	delete(e.planInflight, query)
	if call.err == nil {
		if len(e.planCache) >= planCacheLimit {
			for k := range e.planCache {
				delete(e.planCache, k)
				e.planEvictions.Add(1)
				break
			}
		}
		e.planCache[query] = call.cp
	}
	e.planMu.Unlock()
	close(call.done)
	return call.cp, call.err
}

// compileSelectText parses and compiles a SELECT query text and
// numbers its stages for profiling.
func (e *Engine) compileSelectText(query string) (*compiled, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form != FormSelect {
		return nil, fmt.Errorf("sparql: Query expects a SELECT query; use Ask, Construct or Describe")
	}
	cp, err := compileSelect(q.Select, freshCounter())
	if err != nil {
		return nil, err
	}
	numberStages(cp)
	return cp, nil
}

// PlanCacheStats returns the compiled-plan cache counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	e.planMu.RLock()
	entries := len(e.planCache)
	e.planMu.RUnlock()
	return PlanCacheStats{
		Entries:   entries,
		Hits:      e.planHits.Load(),
		Misses:    e.planMisses.Load(),
		Evictions: e.planEvictions.Load(),
	}
}

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.st }

// parallelism returns the effective per-query worker budget.
func (e *Engine) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// hashJoinMin returns the effective NLJ -> hash-join input threshold.
func (e *Engine) hashJoinMin() int {
	if e.HashJoinThreshold > 0 {
		return e.HashJoinThreshold
	}
	return defaultHashJoinMinInput
}

// ParallelStatsSnapshot is a point-in-time view of the engine's
// intra-query parallelism counters.
type ParallelStatsSnapshot struct {
	// Queries counts queries that ran at least one parallel stage.
	Queries int64
	// Workers counts worker goroutines launched across all queries.
	Workers int64
	// Morsels counts scan partitions (morsels) executed.
	Morsels int64
	// HashBuilds counts partitioned hash-table builds.
	HashBuilds int64
	// ActiveWorkers is the number of currently live worker goroutines;
	// it returns to 0 between queries (leak gauge).
	ActiveWorkers int64
}

// ParallelStats returns the engine's cumulative intra-query parallelism
// counters, exposed through the HTTP /stats endpoint and used by the
// no-leaked-goroutines tests.
func (e *Engine) ParallelStats() ParallelStatsSnapshot {
	return ParallelStatsSnapshot{
		Queries:       e.pstats.queries.Load(),
		Workers:       e.pstats.workers.Load(),
		Morsels:       e.pstats.morsels.Load(),
		HashBuilds:    e.pstats.hashBuilds.Load(),
		ActiveWorkers: e.pstats.activeWorkers.Load(),
	}
}

// Results is a materialized solution sequence. A zero Term in a row
// means the variable is unbound in that solution.
type Results struct {
	Vars []string
	Rows [][]rdf.Term
}

// Len returns the number of solutions.
func (r *Results) Len() int { return len(r.Rows) }

// Col returns the index of a variable in the result rows, or -1.
func (r *Results) Col(name string) int {
	for i, v := range r.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// String renders the results as a compact table for diagnostics.
func (r *Results) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Vars, "\t"))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		for i, t := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			if t.IsZero() {
				sb.WriteString("UNBOUND")
			} else {
				sb.WriteString(t.String())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Query parses and executes a SELECT query against the dataset named by
// model (a semantic model, a virtual model, or "" for the union of all
// models). It is the uncancellable convenience form of QueryContext.
func (e *Engine) Query(model, query string) (*Results, error) {
	return e.QueryContext(context.Background(), model, query)
}

// QueryContext is Query with cooperative cancellation and the engine's
// resource budget: execution stops promptly — returning a *QueryError
// with kind ErrTimeout, ErrCanceled or ErrBudgetExceeded — when ctx
// fires or Limits are exhausted. Internal panics are recovered into a
// *QueryError with kind ErrInternal.
func (e *Engine) QueryContext(ctx context.Context, model, query string) (*Results, error) {
	res, _, err := e.queryInternal(ctx, model, query, false)
	return res, err
}

// QueryProfiled executes a SELECT query with per-operator profiling
// and returns the results together with the executed-plan profile
// (EXPLAIN ANALYZE's data; see Profile).
func (e *Engine) QueryProfiled(model, query string) (*Results, *Profile, error) {
	return e.QueryProfiledContext(context.Background(), model, query)
}

// QueryProfiledContext is QueryProfiled with cooperative cancellation
// and the engine's resource budget (see QueryContext).
func (e *Engine) QueryProfiledContext(ctx context.Context, model, query string) (*Results, *Profile, error) {
	return e.queryInternal(ctx, model, query, true)
}

// queryInternal backs QueryContext and QueryProfiledContext. Profiling
// is enabled when the caller wants a profile or a slow-query log is
// installed (so over-threshold queries log with actuals attached).
func (e *Engine) queryInternal(ctx context.Context, model, query string, wantProfile bool) (res *Results, prof *Profile, err error) {
	start := time.Now()
	rows := 0
	var logProf *Profile // also attached to the slow-query log line
	defer e.recordQuery(int(FormSelect), model, query, start, &err, &rows, &logProf)
	defer recoverQueryPanic(&err)
	ctx, cancel := e.budgetCtx(ctx)
	defer cancel()
	cp, err := e.compileCached(query)
	if err != nil {
		return nil, nil, err
	}
	ec, err := e.execCtxIn(ctx, model, cp.vt)
	if err != nil {
		return nil, nil, err
	}
	if wantProfile || e.slowLogWantsProfile() {
		ec.prof = newQueryProfile(cp.nstages)
	}
	out, err := evalSelect(ec, cp)
	if ec.prof != nil {
		logProf = buildProfile(ec, cp, model, time.Since(start), len(out))
		if wantProfile {
			prof = logProf
		}
	}
	if err != nil {
		return nil, prof, err
	}
	rows = len(out)
	res = &Results{Rows: out}
	for _, pr := range cp.projection {
		res.Vars = append(res.Vars, pr.name)
	}
	return res, prof, nil
}

// ExplainAnalyze executes the query and renders the plan annotated
// with per-operator actuals: rows in/out, guard ticks, index and
// access method, NLJ→hash switches, morsel counts and wall time.
func (e *Engine) ExplainAnalyze(model, query string) (string, error) {
	return e.ExplainAnalyzeContext(context.Background(), model, query)
}

// ExplainAnalyzeContext is ExplainAnalyze with cooperative
// cancellation and the engine's resource budget.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, model, query string) (string, error) {
	_, prof, err := e.queryInternal(ctx, model, query, true)
	if err != nil {
		return "", err
	}
	return prof.Render(), nil
}

// Ask parses and executes an ASK query: does the pattern have at least
// one solution in the dataset?
func (e *Engine) Ask(model, query string) (bool, error) {
	return e.AskContext(context.Background(), model, query)
}

// AskContext is Ask with cooperative cancellation and the engine's
// resource budget (see QueryContext).
func (e *Engine) AskContext(ctx context.Context, model, query string) (found bool, err error) {
	defer e.recordQuery(int(FormAsk), model, query, time.Now(), &err, nil, nil)
	defer recoverQueryPanic(&err)
	ctx, cancel := e.budgetCtx(ctx)
	defer cancel()
	q, err := Parse(query)
	if err != nil {
		return false, err
	}
	if q.Form != FormAsk {
		return false, fmt.Errorf("sparql: Ask expects an ASK query")
	}
	c := &compiler{vt: newVarTable(), seq: freshCounter()}
	pipeline, err := c.group(q.Select.Where)
	if err != nil {
		return false, err
	}
	if len(c.vt.names) > maxVars {
		return false, fmt.Errorf("sparql: query uses more than %d variables", maxVars)
	}
	ec, err := e.execCtxIn(ctx, model, c.vt)
	if err != nil {
		return false, err
	}
	// ASK only needs any one row, so result order is irrelevant: let
	// the parallel batch executor skip the order-preserving merge.
	ec.unordered = true
	if bs := vectorTail(ec, pipeline, len(c.vt.names)); bs != nil {
		if err := finishGuard(ec, bs(func(cb *colBatch) bool {
			found = true
			return false
		})); err != nil {
			return false, err
		}
		return found, nil
	}
	src := runPipeline(ec, pipeline, unitSource(len(c.vt.names)))
	if err := finishGuard(ec, src(func(binding) bool {
		found = true
		return false
	})); err != nil {
		return false, err
	}
	return found, nil
}

// Construct parses and executes a CONSTRUCT query, returning the
// distinct quads built by instantiating the template for each solution
// (template entries with an unbound variable are skipped for that
// solution, per the SPARQL semantics).
func (e *Engine) Construct(model, query string) ([]rdf.Quad, error) {
	return e.ConstructContext(context.Background(), model, query)
}

// ConstructContext is Construct with cooperative cancellation and the
// engine's resource budget (see QueryContext). MaxRows caps the number
// of constructed quads.
func (e *Engine) ConstructContext(ctx context.Context, model, query string) (out []rdf.Quad, err error) {
	rows := 0
	defer e.recordQuery(int(FormConstruct), model, query, time.Now(), &err, &rows, nil)
	defer func() { rows = len(out) }()
	defer recoverQueryPanic(&err)
	ctx, cancel := e.budgetCtx(ctx)
	defer cancel()
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form != FormConstruct {
		return nil, fmt.Errorf("sparql: Construct expects a CONSTRUCT query")
	}
	c := &compiler{vt: newVarTable(), seq: freshCounter()}
	pipeline, err := c.group(q.Select.Where)
	if err != nil {
		return nil, err
	}
	tmpl := compileTemplates(c, q.Template)
	if len(c.vt.names) > maxVars {
		return nil, fmt.Errorf("sparql: query uses more than %d variables", maxVars)
	}
	ec, err := e.execCtxIn(ctx, model, c.vt)
	if err != nil {
		return nil, err
	}
	seen := make(map[rdf.Quad]struct{})
	src := runPipeline(ec, pipeline, unitSource(len(c.vt.names)))
	if err := finishGuard(ec, src(func(b binding) bool {
		instantiateTemplates(ec, tmpl, b, seen, &out)
		return ec.guard.checkRows(len(out))
	})); err != nil {
		return nil, err
	}
	return out, nil
}

// compiledTemplate is a CONSTRUCT/Modify template entry with variables
// resolved to the WHERE scope's slots.
type compiledTemplate struct {
	s, p, o, g posRef
	hasG       bool
}

func compileTemplates(c *compiler, tmpl []TemplateQuad) []compiledTemplate {
	refOf := func(tv TermOrVar) posRef {
		if tv.IsVar {
			return posRef{isVar: true, slot: c.vt.slot(tv.Var)}
		}
		return posRef{term: tv.Term}
	}
	out := make([]compiledTemplate, 0, len(tmpl))
	for _, tq := range tmpl {
		tr := compiledTemplate{s: refOf(tq.S), p: refOf(tq.P), o: refOf(tq.O)}
		if tq.G.IsVar || !tq.G.Term.IsZero() {
			tr.g = refOf(tq.G)
			tr.hasG = true
		}
		out = append(out, tr)
	}
	return out
}

// instantiateTemplates appends the valid, novel quads produced by the
// templates under one solution. Entries with an unbound variable or an
// invalid instantiation (e.g. literal subject) are skipped, per SPARQL.
func instantiateTemplates(ec *execCtx, tmpl []compiledTemplate, b binding, seen map[rdf.Quad]struct{}, out *[]rdf.Quad) {
	resolve := func(r posRef) (rdf.Term, bool) {
		if !r.isVar {
			return r.term, true
		}
		if b[r.slot] == store.NoID {
			return rdf.Term{}, false
		}
		return ec.term(b[r.slot]), true
	}
	for _, tr := range tmpl {
		s, ok1 := resolve(tr.s)
		p, ok2 := resolve(tr.p)
		o, ok3 := resolve(tr.o)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		quad := rdf.Quad{S: s, P: p, O: o}
		if tr.hasG {
			g, ok := resolve(tr.g)
			if !ok {
				continue
			}
			quad.G = g
		}
		if quad.Validate() != nil {
			continue
		}
		if _, dup := seen[quad]; dup {
			continue
		}
		seen[quad] = struct{}{}
		*out = append(*out, quad)
	}
}

// Describe parses and executes a DESCRIBE query, returning every quad
// in which each described resource occurs as subject or object (the
// common "symmetric concise bounded description" choice — the SPARQL
// spec leaves DESCRIBE semantics to the implementation).
func (e *Engine) Describe(model, query string) ([]rdf.Quad, error) {
	return e.DescribeContext(context.Background(), model, query)
}

// DescribeContext is Describe with cooperative cancellation and the
// engine's resource budget (see QueryContext). MaxRows caps the number
// of description quads.
func (e *Engine) DescribeContext(ctx context.Context, model, query string) (out []rdf.Quad, err error) {
	rows := 0
	defer e.recordQuery(int(FormDescribe), model, query, time.Now(), &err, &rows, nil)
	defer func() { rows = len(out) }()
	defer recoverQueryPanic(&err)
	ctx, cancel := e.budgetCtx(ctx)
	defer cancel()
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form != FormDescribe {
		return nil, fmt.Errorf("sparql: Describe expects a DESCRIBE query")
	}
	c := &compiler{vt: newVarTable(), seq: freshCounter()}
	pipeline, err := c.group(q.Select.Where)
	if err != nil {
		return nil, err
	}
	if len(c.vt.names) > maxVars {
		return nil, fmt.Errorf("sparql: query uses more than %d variables", maxVars)
	}
	ec, err := e.execCtxIn(ctx, model, c.vt)
	if err != nil {
		return nil, err
	}

	// Gather the set of resources to describe.
	resources := make(map[store.ID]struct{})
	var varSlots []int
	for _, tv := range q.Describe {
		if tv.IsVar {
			if slot, ok := c.vt.lookup(tv.Var); ok {
				varSlots = append(varSlots, slot)
			}
			continue
		}
		if id := e.st.Dict().Lookup(tv.Term); id != store.NoID {
			resources[id] = struct{}{}
		}
	}
	if len(varSlots) > 0 {
		src := runPipeline(ec, pipeline, unitSource(len(c.vt.names)))
		if err := finishGuard(ec, src(func(b binding) bool {
			for _, slot := range varSlots {
				if b[slot] != store.NoID {
					resources[b[slot]] = struct{}{}
				}
			}
			return true
		})); err != nil {
			return nil, err
		}
	}

	seen := make(map[rdf.Quad]struct{})
	emit := func(q store.IDQuad) bool {
		quad := rdf.Quad{S: ec.term(q.S), P: ec.term(q.P), O: ec.term(q.C)}
		if q.G != store.NoID {
			quad.G = ec.term(q.G)
		}
		if _, dup := seen[quad]; !dup {
			seen[quad] = struct{}{}
			out = append(out, quad)
		}
		return ec.guard.checkRows(len(out))
	}
	for id := range resources {
		p := store.AnyPattern()
		p.S = id
		ec.scan(p, emit)
		p = store.AnyPattern()
		p.C = id
		ec.scan(p, emit)
	}
	if err := finishGuard(ec, nil); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareQuads(out[i], out[j]) < 0 })
	return out, nil
}

// Count executes the query and returns only the number of solutions.
func (e *Engine) Count(model, query string) (int, error) {
	res, err := e.Query(model, query)
	if err != nil {
		return 0, err
	}
	return res.Len(), nil
}

// Explain compiles the query and renders the access plan: join order,
// per-pattern semantic-network index and access method — the information
// Table 5 of the paper reports.
func (e *Engine) Explain(model, query string) (string, error) {
	q, err := Parse(query)
	if err != nil {
		return "", err
	}
	cp, err := compileSelect(q.Select, freshCounter())
	if err != nil {
		return "", err
	}
	ec, err := e.execCtx(model, cp.vt)
	if err != nil {
		return "", err
	}
	ex := &explainer{ec: ec}
	ex.printf("Select (dataset=%s)", datasetName(model))
	ex.indent++
	if ec.parallelism > 1 {
		ex.printf("Parallel (morsel-driven: workers<=%d, morsels/scan<=%d, hash-join threshold %d)",
			ec.parallelism, ec.parallelism*morselsPerWorker, ec.hashMin)
	} else {
		ex.printf("Serial (parallelism 1, hash-join threshold %d)", ec.hashMin)
	}
	for _, op := range cp.pipeline {
		op.explain(ex)
	}
	if cp.grouping {
		ex.printf("GroupAggregate (%d keys, %d aggregates)", len(cp.groupBy), len(cp.aggregates))
	}
	if len(cp.orderBy) > 0 {
		ex.printf("OrderBy (%d keys)", len(cp.orderBy))
	}
	if cp.distinct {
		ex.printf("Distinct")
	}
	ex.indent--
	return ex.b.String(), nil
}

func datasetName(model string) string {
	if model == "" {
		return "<all models>"
	}
	return model
}

// budgetCtx derives the execution context honouring Limits.Timeout.
func (e *Engine) budgetCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.Limits.Timeout > 0 {
		return context.WithTimeout(ctx, e.Limits.Timeout)
	}
	return ctx, func() {}
}

// execCtxIn builds the execution context with a guard enforcing ctx and
// the engine's Limits.
func (e *Engine) execCtxIn(ctx context.Context, model string, vt *varTable) (*execCtx, error) {
	ec, err := e.execCtx(model, vt)
	if err != nil {
		return nil, err
	}
	ec.guard = newGuard(ctx, e.Limits)
	return ec, nil
}

func (e *Engine) execCtx(model string, vt *varTable) (*execCtx, error) {
	ids, err := e.st.ResolveDataset(model)
	if err != nil {
		return nil, err
	}
	ec := &execCtx{
		st:              e.st,
		estc:            &e.estc,
		vt:              vt,
		noHashJoin:      e.DisableHashJoin,
		vectorized:      !e.DisableVectorized,
		parallelism:     e.parallelism(),
		hashMin:         e.hashJoinMin(),
		pstats:          &e.pstats,
		parallelFlagged: new(atomic.Bool),
		// Computed terms (BIND, VALUES, extended projection, aggregate
		// results) intern into a per-query overlay so read paths never
		// grow the shared dictionary; updates resolve overlay IDs back
		// to terms before touching the store, so they share it safely.
		scratch: store.NewTermOverlay(e.st.Dict()),
	}
	if ec.parallelism > 1 {
		ec.slots = make(chan struct{}, ec.parallelism)
	}
	// nil model set (scan everything) when the dataset is all models.
	if model != "" && len(ids) != len(e.st.Models()) {
		ec.models = make(map[store.ModelID]struct{}, len(ids))
		for _, id := range ids {
			ec.models[id] = struct{}{}
		}
		if len(ids) == 1 {
			ec.singleModel = ids[0]
		}
	}
	return ec, nil
}

// UpdateResult reports the effect of an update request.
type UpdateResult struct {
	Inserted int
	Deleted  int
}

// Update parses and executes a SPARQL Update request. Inserts go into
// the named model (which must be a concrete semantic model); deletes
// remove matching quads from every model in the dataset.
func (e *Engine) Update(model, request string) (UpdateResult, error) {
	return e.UpdateContext(context.Background(), model, request)
}

// UpdateContext is Update with cooperative cancellation and the
// engine's resource budget: the WHERE evaluation of DELETE WHERE and
// DELETE/INSERT templates is guarded like a query, and bulk data blocks
// poll the context between quads. An update aborted mid-request leaves
// the already-applied operations in place (no rollback), mirroring the
// per-operation semantics of SPARQL Update.
func (e *Engine) UpdateContext(ctx context.Context, model, request string) (res UpdateResult, err error) {
	rows := 0
	defer e.recordQuery(formUpdate, model, request, time.Now(), &err, &rows, nil)
	defer func() { rows = res.Inserted + res.Deleted }()
	defer recoverQueryPanic(&err)
	ctx, cancel := e.budgetCtx(ctx)
	defer cancel()
	u, err := ParseUpdate(request)
	if err != nil {
		return UpdateResult{}, err
	}
	done := ctx.Done()
	checkCtx := func(i int) error {
		if done == nil || i%1024 != 0 {
			return nil
		}
		select {
		case <-done:
			return ctxQueryError(ctx.Err())
		default:
			return nil
		}
	}
	for _, op := range u.Ops {
		switch x := op.(type) {
		case InsertData:
			muts := make([]Mutation, 0, len(x.Quads))
			for i, q := range x.Quads {
				if err := checkCtx(i); err != nil {
					return res, err
				}
				if err := q.Validate(); err != nil {
					return res, err
				}
				muts = append(muts, Mutation{Insert: true, Model: model, Quad: q})
			}
			if err := e.applyMutations(muts, &res); err != nil {
				return res, err
			}
		case DeleteData:
			if e.st.LookupModel(model) == store.NoID {
				return res, fmt.Errorf("store: unknown model %q", model)
			}
			muts := make([]Mutation, 0, len(x.Quads))
			for i, q := range x.Quads {
				if err := checkCtx(i); err != nil {
					return res, err
				}
				if err := q.Validate(); err != nil {
					return res, err
				}
				muts = append(muts, Mutation{Model: model, Quad: q})
			}
			if err := e.applyMutations(muts, &res); err != nil {
				return res, err
			}
		case DeleteWhere:
			n, err := e.deleteWhere(ctx, model, x.Where)
			if err != nil {
				return res, err
			}
			res.Deleted += n
		case Modify:
			del, ins, err := e.modify(ctx, model, x)
			if err != nil {
				return res, err
			}
			res.Deleted += del
			res.Inserted += ins
		default:
			return res, fmt.Errorf("sparql: unsupported update op %T", op)
		}
	}
	return res, nil
}

// deleteWhere finds all solutions of the pattern, instantiates the
// pattern quads for each, and deletes them from every model of the
// dataset. The pattern must consist of plain triple patterns (optionally
// under GRAPH).
func (e *Engine) deleteWhere(ctx context.Context, model string, g *GroupGraphPattern) (int, error) {
	c := &compiler{vt: newVarTable(), seq: freshCounter()}
	pipeline, err := c.group(g)
	if err != nil {
		return 0, err
	}
	// Collect the template patterns for instantiation.
	var templates []quadPattern
	for _, op := range pipeline {
		bgp, ok := op.(*bgpOp)
		if !ok || len(bgp.filters) > 0 {
			return 0, fmt.Errorf("sparql: DELETE WHERE supports only plain triple patterns")
		}
		templates = append(templates, bgp.patterns...)
	}
	ec, err := e.execCtxIn(ctx, model, c.vt)
	if err != nil {
		return 0, err
	}
	src := runPipeline(ec, pipeline, unitSource(len(c.vt.names)))
	var toDelete []rdf.Quad
	if err := finishGuard(ec, src(func(b binding) bool {
		for _, tp := range templates {
			q, ok := instantiate(ec, tp, b)
			if ok {
				toDelete = append(toDelete, q)
			}
		}
		return ec.guard.checkRows(len(toDelete))
	})); err != nil {
		return 0, err
	}
	models, err := e.st.ResolveDataset(model)
	if err != nil {
		return 0, err
	}
	// Expand the delta to concrete models and validate every quad before
	// committing, so the hook never journals an op whose apply can fail.
	muts := make([]Mutation, 0, len(toDelete)*len(models))
	for _, q := range toDelete {
		if err := q.Validate(); err != nil {
			return 0, err
		}
		for _, m := range models {
			muts = append(muts, Mutation{Model: e.st.ModelName(m), Quad: q})
		}
	}
	var res UpdateResult
	if err := e.applyMutations(muts, &res); err != nil {
		return res.Deleted, err
	}
	return res.Deleted, nil
}

// modify executes the DELETE/INSERT..WHERE template form: the WHERE
// pattern is evaluated against the pre-update state, then all deletes
// are applied (to every model in the dataset), then all inserts (into
// the named model).
func (e *Engine) modify(ctx context.Context, model string, m Modify) (deleted, inserted int, err error) {
	c := &compiler{vt: newVarTable(), seq: freshCounter()}
	pipeline, err := c.group(m.Where)
	if err != nil {
		return 0, 0, err
	}
	delTmpl := compileTemplates(c, m.Delete)
	insTmpl := compileTemplates(c, m.Insert)
	if len(c.vt.names) > maxVars {
		return 0, 0, fmt.Errorf("sparql: update uses more than %d variables", maxVars)
	}
	ec, err := e.execCtxIn(ctx, model, c.vt)
	if err != nil {
		return 0, 0, err
	}
	var toDelete, toInsert []rdf.Quad
	delSeen := make(map[rdf.Quad]struct{})
	insSeen := make(map[rdf.Quad]struct{})
	src := runPipeline(ec, pipeline, unitSource(len(c.vt.names)))
	if err := finishGuard(ec, src(func(b binding) bool {
		instantiateTemplates(ec, delTmpl, b, delSeen, &toDelete)
		instantiateTemplates(ec, insTmpl, b, insSeen, &toInsert)
		return ec.guard.checkRows(len(toDelete) + len(toInsert))
	})); err != nil {
		return 0, 0, err
	}
	models, err := e.st.ResolveDataset(model)
	if err != nil {
		return 0, 0, err
	}
	// One delta for the whole operation, deletes first then inserts —
	// the order the loop below (and a replaying journal) applies them.
	// instantiateTemplates already dropped invalid quads.
	muts := make([]Mutation, 0, len(toDelete)*len(models)+len(toInsert))
	for _, q := range toDelete {
		for _, mid := range models {
			muts = append(muts, Mutation{Model: e.st.ModelName(mid), Quad: q})
		}
	}
	for _, q := range toInsert {
		muts = append(muts, Mutation{Insert: true, Model: model, Quad: q})
	}
	var res UpdateResult
	if err := e.applyMutations(muts, &res); err != nil {
		return res.Deleted, res.Inserted, err
	}
	return res.Deleted, res.Inserted, nil
}

func instantiate(ec *execCtx, tp quadPattern, b binding) (rdf.Quad, bool) {
	resolve := func(r posRef) (rdf.Term, bool) {
		if !r.isVar {
			return r.term, true
		}
		if b[r.slot] == store.NoID {
			return rdf.Term{}, false
		}
		return ec.term(b[r.slot]), true
	}
	s, ok := resolve(tp.s)
	if !ok {
		return rdf.Quad{}, false
	}
	p, ok := resolve(tp.p)
	if !ok {
		return rdf.Quad{}, false
	}
	o, ok := resolve(tp.o)
	if !ok {
		return rdf.Quad{}, false
	}
	q := rdf.Quad{S: s, P: p, O: o}
	switch tp.g.kind {
	case GraphTerm:
		q.G = tp.g.term
	case GraphVar:
		if b[tp.g.slot] == store.NoID {
			return rdf.Quad{}, false
		}
		q.G = ec.term(b[tp.g.slot])
	}
	return q, true
}
