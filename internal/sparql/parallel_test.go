package sparql

import (
	"fmt"
	"sync"
	"testing"
)

// TestParallelQueries runs many queries concurrently against one engine
// (the HTTP endpoint's usage pattern). Run with -race: dictionary
// interning during expression evaluation and scan-counter updates must
// be safe under concurrent readers.
func TestParallelQueries(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	queries := []string{
		testPrologue + `SELECT ?x ?y WHERE { ?x rel:follows ?y }`,
		testPrologue + `SELECT (COUNT(*) AS ?c) WHERE { ?x ?p ?v FILTER (isLiteral(?v)) }`,
		testPrologue + `SELECT ?g WHERE { GRAPH ?g { ?x rel:follows ?y } }`,
		testPrologue + `SELECT ?n WHERE { ?x key:name ?n } ORDER BY ?n`,
		testPrologue + `SELECT ?y WHERE { <http://pg/v1> (rel:follows|rel:knows)+ ?y }`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[i%len(queries)]
				res, err := e.Query("", q)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() == 0 {
					errs <- fmt.Errorf("empty result for %s", q)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelQueriesWithUpdates mixes readers with writers.
func TestParallelQueriesWithUpdates(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				_, err := e.Update("scratch", fmt.Sprintf(
					`INSERT DATA { <http://pg/w%d-%d> <http://pg/k/name> "tmp" }`, w, i))
				if err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := e.Query("", testPrologue+`SELECT ?x WHERE { ?x key:name ?n }`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, err := e.Count("scratch", `SELECT ?x WHERE { ?x <http://pg/k/name> "tmp" }`)
	if err != nil || n != 120 {
		t.Fatalf("inserted rows = %d, %v", n, err)
	}
}
