package sparql

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// egoNetStore builds a dense random follows-graph — the EQ-style
// traversal substrate — with nodes*degree edges.
func egoNetStore(t testing.TB, nodes, degree int) *store.Store {
	t.Helper()
	st := store.New()
	follows := rdf.NewIRI("http://pg/r/follows")
	rng := rand.New(rand.NewSource(42))
	quads := make([]rdf.Quad, 0, nodes*degree)
	for i := 0; i < nodes; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i))
		for d := 0; d < degree; d++ {
			o := rdf.NewIRI(fmt.Sprintf("http://pg/v%d", rng.Intn(nodes)))
			quads = append(quads, rdf.Quad{S: s, P: follows, O: o})
		}
	}
	if _, err := st.Load("net", quads); err != nil {
		t.Fatal(err)
	}
	return st
}

// crossJoin is a deliberately unbounded product over disjoint variables.
const crossJoin = `SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f }`

// TestDeadlineStopsCrossJoin is the acceptance scenario: an unbounded
// cross join with a 100ms deadline must return ErrTimeout well under 1s.
func TestDeadlineStopsCrossJoin(t *testing.T) {
	st := egoNetStore(t, 500, 8) // 4000 quads -> 4000^3 product rows
	e := NewEngine(st)
	e.Limits = Budget{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := e.QueryContext(context.Background(), "", crossJoin)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err %T is not *QueryError", err)
	}
	if elapsed > time.Second {
		t.Fatalf("query took %v, want well under 1s", elapsed)
	}
}

// TestCancellationMidHashJoin cancels a running query after the join has
// switched to hash-join mode (input cardinality beyond hashJoinMinInput)
// and checks it stops promptly with ErrCanceled.
func TestCancellationMidHashJoin(t *testing.T) {
	st := egoNetStore(t, 2000, 4) // 8000 quads per scan, >> hashJoinMinInput
	e := NewEngine(st)
	ctx, cancel := context.WithCancel(context.Background())
	fi := store.NewFaultInjector()
	// Slow every scanned row slightly so the cross join is guaranteed to
	// outlive the cancellation no matter how fast the machine is.
	fi.StallScans(64, 50*time.Microsecond)
	st.SetFaultInjector(fi)
	defer st.SetFaultInjector(nil)

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := e.QueryContext(ctx, "", `SELECT * WHERE { ?a ?p ?b . ?c ?q ?d }`)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the join get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not stop after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestDeadlineInsidePropertyPath expires a deadline during a multi-hop
// property-path BFS (a 5-hop EQ-style traversal over the ego-net), with
// fault-injected scan latency making the traversal deterministically
// slower than the deadline.
func TestDeadlineInsidePropertyPath(t *testing.T) {
	st := egoNetStore(t, 1500, 6)
	fi := store.NewFaultInjector()
	fi.StallScans(32, 100*time.Microsecond)
	st.SetFaultInjector(fi)
	defer st.SetFaultInjector(nil)

	e := NewEngine(st)
	e.Limits = Budget{Timeout: 30 * time.Millisecond}
	q := `SELECT (COUNT(?x) AS ?n) WHERE {
		<http://pg/v0> <http://pg/r/follows>/<http://pg/r/follows>/<http://pg/r/follows>/<http://pg/r/follows>/<http://pg/r/follows>* ?x }`
	start := time.Now()
	_, err := e.QueryContext(context.Background(), "", q)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("path query took %v after a 30ms deadline", elapsed)
	}
}

// TestMaxBindingsBudget stops the cross join on intermediate bindings
// alone — fully deterministic, no clock involved.
func TestMaxBindingsBudget(t *testing.T) {
	st := egoNetStore(t, 200, 5)
	e := NewEngine(st)
	e.Limits = Budget{MaxBindings: 10_000}
	_, err := e.Query("", crossJoin)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestMaxRowsBudget bounds materialized solution rows.
func TestMaxRowsBudget(t *testing.T) {
	st := egoNetStore(t, 100, 4)
	e := NewEngine(st)
	e.Limits = Budget{MaxRows: 50}
	_, err := e.Query("", `SELECT ?a ?b WHERE { ?a ?p ?b }`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// Under the cap, the query succeeds unchanged.
	e.Limits = Budget{MaxRows: 50}
	res, err := e.Query("", `SELECT ?a ?b WHERE { ?a ?p ?b } LIMIT 10`)
	if err != nil || res.Len() != 10 {
		t.Fatalf("LIMIT 10 under budget: res=%v err=%v", res, err)
	}
}

// TestMaxRowsBudgetGroups caps the number of aggregation groups.
func TestMaxRowsBudgetGroups(t *testing.T) {
	st := egoNetStore(t, 300, 3)
	e := NewEngine(st)
	e.Limits = Budget{MaxRows: 20}
	_, err := e.Query("", `SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ?p ?b } GROUP BY ?a`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("grouped err = %v, want ErrBudgetExceeded", err)
	}
}

// TestBudgetAppliesToAskConstructDescribeUpdate exercises the guard on
// every query form, not just SELECT.
func TestBudgetAppliesToAskConstructDescribeUpdate(t *testing.T) {
	st := egoNetStore(t, 300, 5)
	e := NewEngine(st)
	e.Limits = Budget{MaxBindings: 500}

	if _, err := e.Construct("", `CONSTRUCT { ?a <http://x> ?d } WHERE { ?a ?p ?b . ?c ?q ?d }`); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Construct err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := e.Describe("", `DESCRIBE ?a WHERE { ?a ?p ?b . ?c ?q ?d }`); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Describe err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := e.Update("net", `DELETE { ?a <http://x> ?d } INSERT { ?a <http://y> ?d } WHERE { ?a ?p ?b . ?c ?q ?d }`); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Update err = %v, want ErrBudgetExceeded", err)
	}
	// ASK finds its first row long before the budget and succeeds.
	if ok, err := e.Ask("", `ASK { ?a ?p ?b }`); err != nil || !ok {
		t.Errorf("Ask = %v, %v", ok, err)
	}
}

// TestCanceledContextFailsFast: an already-canceled context aborts the
// query on its first guard poll.
func TestCanceledContextFailsFast(t *testing.T) {
	st := egoNetStore(t, 500, 5)
	e := NewEngine(st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryContext(ctx, "", crossJoin)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestPanicRecovery: an injected scan fault panics inside the executor;
// the engine must surface a structured QueryError with kind ErrInternal
// instead of crashing, and must stay usable afterwards.
func TestPanicRecovery(t *testing.T) {
	st := egoNetStore(t, 100, 4)
	e := NewEngine(st)
	fi := store.NewFaultInjector()
	fi.FailScansAfter(50)
	st.SetFaultInjector(fi)
	_, err := e.Query("", `SELECT ?a WHERE { ?a ?p ?b }`)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Stack == "" {
		t.Fatalf("expected *QueryError with a stack, got %#v", err)
	}
	// Clearing the fault restores normal service.
	st.SetFaultInjector(nil)
	if _, err := e.Query("", `SELECT ?a WHERE { ?a ?p ?b } LIMIT 1`); err != nil {
		t.Fatalf("engine unusable after recovered panic: %v", err)
	}
}

// TestUpdateContextCancel cancels a bulk INSERT DATA mid-request.
func TestUpdateContextCancel(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb []byte
	sb = append(sb, "INSERT DATA { "...)
	for i := 0; i < 3000; i++ {
		sb = append(sb, fmt.Sprintf("<http://s%d> <http://p> <http://o> . ", i)...)
	}
	sb = append(sb, '}')
	_, err := e.UpdateContext(ctx, "m", string(sb))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := st.Len(); n >= 3000 {
		t.Fatalf("insert was not interrupted: %d quads landed", n)
	}
}

// TestMaxPatternsRejected: the compiler bounds pattern-count blowup.
func TestMaxPatternsRejected(t *testing.T) {
	var sb []byte
	sb = append(sb, "SELECT * WHERE { "...)
	for i := 0; i <= maxPatterns; i++ {
		sb = append(sb, "?a <http://p> ?a . "...)
	}
	sb = append(sb, '}')
	st := store.New()
	if _, err := NewEngine(st).Query("", string(sb)); err == nil {
		t.Fatal("query with too many patterns should be rejected")
	}
}

// TestGuardZeroOverheadPath: with no limits and a Background context the
// engine must not allocate a guard (nil fast path).
func TestGuardZeroOverheadPath(t *testing.T) {
	if g := newGuard(context.Background(), Budget{}); g != nil {
		t.Fatal("expected nil guard for Background ctx and zero budget")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := newGuard(ctx, Budget{}); g == nil {
		t.Fatal("expected live guard for cancelable ctx")
	}
}

// BenchmarkGuardOverhead compares a 2-hop join with and without an
// active guard, documenting the cost of per-row ticking.
func BenchmarkGuardOverhead(b *testing.B) {
	st := egoNetStore(b, 1000, 8)
	q := `SELECT (COUNT(?c) AS ?n) WHERE { <http://pg/v0> <http://pg/r/follows> ?b . ?b <http://pg/r/follows> ?c }`
	b.Run("unguarded", func(b *testing.B) {
		e := NewEngine(st)
		for i := 0; i < b.N; i++ {
			if _, err := e.Query("", q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("guarded", func(b *testing.B) {
		e := NewEngine(st)
		e.Limits = Budget{Timeout: time.Hour, MaxBindings: 1 << 40}
		for i := 0; i < b.N; i++ {
			if _, err := e.Query("", q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
