package sparql

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// pathOp evaluates a closure property path (`*`, `+`, `?`) between two
// positions, with SPARQL's distinct-node semantics. At least one endpoint
// must be bound (by a constant or an earlier pattern); arbitrary-length
// paths with both endpoints unbound are rejected, matching the paper's
// observation (§5.1) that SPARQL property paths cannot enumerate
// unanchored paths.
type pathOp struct {
	opStage
	s, o  posRef
	g     graphRef
	inner Path
	min   int // 0 for *, 1 for +
	max   int // 0 = unlimited, 1 for ?
	c     *compiler
}

func (o *pathOp) bound(before varset) varset {
	v := before
	if o.s.isVar {
		v = v.with(o.s.slot)
	}
	if o.o.isVar {
		v = v.with(o.o.slot)
	}
	return v
}

func (o *pathOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		pst := ec.profStage(o.sid)
		var evalErr error
		err := in(func(b binding) bool {
			if pst != nil {
				pst.rowsIn.Add(1)
			}
			startID, startBound := o.endpoint(ec, o.s, b)
			endID, endBound := o.endpoint(ec, o.o, b)
			switch {
			case startBound:
				reached, err := o.closure(ec, b, startID, false)
				if err != nil {
					evalErr = err
					return false
				}
				for _, node := range reached {
					if endBound {
						if node == endID {
							if !yield(b) {
								return false
							}
						}
						continue
					}
					old := b[o.o.slot]
					if old != store.NoID && old != node {
						continue
					}
					b[o.o.slot] = node
					cont := yield(b)
					b[o.o.slot] = old
					if !cont {
						return false
					}
				}
				return true
			case endBound:
				reached, err := o.closure(ec, b, endID, true)
				if err != nil {
					evalErr = err
					return false
				}
				for _, node := range reached {
					old := b[o.s.slot]
					if old != store.NoID && old != node {
						continue
					}
					b[o.s.slot] = node
					cont := yield(b)
					b[o.s.slot] = old
					if !cont {
						return false
					}
				}
				return true
			default:
				evalErr = fmt.Errorf("sparql: arbitrary-length path with both endpoints unbound is not supported")
				return false
			}
		})
		if evalErr != nil {
			return evalErr
		}
		return err
	}
}

// endpoint resolves an endpoint to an ID if bound.
func (o *pathOp) endpoint(ec *execCtx, r posRef, b binding) (store.ID, bool) {
	if !r.isVar {
		return ec.intern(r.term), true
	}
	if b[r.slot] != store.NoID {
		return b[r.slot], true
	}
	return store.NoID, false
}

// closure computes the nodes reachable from start via the inner path
// repeated [min..max] times (max 0 = unlimited), using BFS with
// distinct-node semantics. The result is in BFS discovery order —
// deterministic given the store's deterministic scan order — so the
// emission order of path solutions does not depend on whether the
// frontier was expanded serially or in parallel.
func (o *pathOp) closure(ec *execCtx, b binding, start store.ID, reverse bool) ([]store.ID, error) {
	var reached []store.ID
	inReached := make(map[store.ID]struct{})
	add := func(id store.ID) {
		if _, dup := inReached[id]; !dup {
			inReached[id] = struct{}{}
			reached = append(reached, id)
		}
	}
	if o.min == 0 {
		add(start)
	}
	frontier := []store.ID{start}
	visited := map[store.ID]struct{}{start: {}}
	depth := 0
	for len(frontier) > 0 {
		depth++
		if o.max > 0 && depth > o.max {
			break
		}
		succs, err := o.expandFrontier(ec, b, frontier, reverse)
		if err != nil {
			return nil, err
		}
		var next []store.ID
		for _, succ := range succs {
			for _, s := range succ {
				if depth >= o.min {
					add(s)
				}
				if _, seen := visited[s]; !seen {
					visited[s] = struct{}{}
					next = append(next, s)
				}
			}
		}
		frontier = next
	}
	return reached, nil
}

// expandFrontier computes the one-step successor list of every frontier
// node, fanning out to the query's worker pool when the frontier is
// wide enough. Results are merged in frontier order, so the BFS
// discovery order (and thus the solution order) is identical to the
// serial loop's.
func (o *pathOp) expandFrontier(ec *execCtx, b binding, frontier []store.ID, reverse bool) ([][]store.ID, error) {
	succs := make([][]store.ID, len(frontier))
	workers := 0
	if ec.parallelism > 1 && len(frontier) >= parallelBFSMinFrontier {
		want := ec.parallelism
		if want > len(frontier) {
			want = len(frontier)
		}
		if workers = ec.acquireWorkers(want); workers < 2 {
			ec.releaseWorkers(workers)
			workers = 0
		}
	}
	if workers == 0 {
		for i, node := range frontier {
			// Cooperative cancellation between node expansions: a
			// multi-hop traversal over a dense graph can spend its
			// whole life inside this loop.
			if !ec.guard.poll() {
				return nil, ec.guard.Err()
			}
			succ, err := o.step(ec, b, o.inner, node, reverse)
			if err != nil {
				return nil, err
			}
			succs[i] = succ
		}
		return succs, nil
	}
	defer ec.releaseWorkers(workers)
	ec.markParallel(workers, len(frontier))
	if pst := ec.profStage(o.sid); pst != nil {
		pst.morsels.Add(int64(len(frontier)))
	}
	errs := make([]error, len(frontier))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ec.workerEnter()
			defer ec.workerExit()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(frontier) {
					return
				}
				if !ec.guard.poll() {
					errs[i] = ec.guard.Err()
					return
				}
				succ, err := o.step(ec, b, o.inner, frontier[i], reverse)
				if err != nil {
					errs[i] = err
					return
				}
				succs[i] = succ
			}
		}()
	}
	wg.Wait()
	// Report the first error in frontier order, matching the serial loop.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return succs, nil
}

// step enumerates one-step successors of node via path p (predecessors
// when reverse is true).
func (o *pathOp) step(ec *execCtx, b binding, p Path, node store.ID, reverse bool) ([]store.ID, error) {
	switch x := p.(type) {
	case PathIRI:
		pid := ec.st.Dict().Lookup(x.IRI)
		if pid == store.NoID {
			return nil, nil
		}
		pat := store.AnyPattern()
		pat.P = pid
		if reverse {
			pat.C = node
		} else {
			pat.S = node
		}
		o.applyGraph(ec, b, &pat)
		var scanned int64 // step scans are guard-charged per row
		var out []store.ID
		ec.scan(pat, func(q store.IDQuad) bool {
			scanned++
			if o.g.kind == GraphVar && q.G == store.NoID {
				return true
			}
			if reverse {
				out = append(out, q.S)
			} else {
				out = append(out, q.C)
			}
			return true
		})
		ec.profStage(o.sid).addTicks(scanned)
		return out, nil
	case PathInverse:
		return o.step(ec, b, x.Inner, node, !reverse)
	case PathAlt:
		l, err := o.step(ec, b, x.Left, node, reverse)
		if err != nil {
			return nil, err
		}
		r, err := o.step(ec, b, x.Right, node, reverse)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case PathSeq:
		first, second := x.Left, x.Right
		if reverse {
			first, second = second, first
		}
		mid, err := o.step(ec, b, first, node, reverse)
		if err != nil {
			return nil, err
		}
		var out []store.ID
		for _, m := range mid {
			s, err := o.step(ec, b, second, m, reverse)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case PathStar, PathPlus, PathOpt:
		inner, min, max := innerOf(x)
		// The nested closure inherits this operator's stage id so its
		// scan ticks are attributed to the same profile slot.
		sub := &pathOp{opStage: o.opStage, s: o.s, o: o.o, g: o.g, inner: inner, min: min, max: max, c: o.c}
		return sub.closure(ec, b, node, reverse)
	case PathVar:
		return nil, fmt.Errorf("sparql: variable predicates are not supported inside path closures")
	default:
		return nil, fmt.Errorf("sparql: unsupported path %T in closure", p)
	}
}

func innerOf(p Path) (inner Path, min, max int) {
	switch x := p.(type) {
	case PathStar:
		return x.Inner, 0, 0
	case PathPlus:
		return x.Inner, 1, 0
	case PathOpt:
		return x.Inner, 0, 1
	default:
		return p, 1, 1
	}
}

// applyGraph sets the graph restriction on a step scan pattern.
func (o *pathOp) applyGraph(ec *execCtx, b binding, pat *store.Pattern) {
	switch o.g.kind {
	case GraphTerm:
		pat.G = ec.st.Dict().Lookup(o.g.term)
	case GraphVar:
		if b[o.g.slot] != store.NoID {
			pat.G = b[o.g.slot]
		} else {
			pat.G = store.Any
		}
	default:
		pat.G = store.Any
	}
}

func (o *pathOp) explain(e *explainer) {
	kind := "*"
	switch {
	case o.min == 1 && o.max == 0:
		kind = "+"
	case o.max == 1:
		kind = "?"
	}
	e.printf("PathClosure (%s, BFS, distinct nodes)", kind)
}
