package sparql

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Error kinds distinguishing why a query was aborted. Test with
// errors.Is against the error returned by the engine.
var (
	// ErrTimeout: the context deadline (or Budget.Timeout) expired.
	ErrTimeout = errors.New("query deadline exceeded")
	// ErrBudgetExceeded: the query consumed more rows or intermediate
	// bindings than its budget allows.
	ErrBudgetExceeded = errors.New("query resource budget exceeded")
	// ErrCanceled: the context was canceled by the caller.
	ErrCanceled = errors.New("query canceled")
	// ErrInternal: the executor recovered from an internal panic.
	ErrInternal = errors.New("internal query error")
)

// QueryError is the structured error the engine returns when a query is
// stopped by a guardrail or an internal failure. Kind is one of the
// sentinel errors above and is exposed through errors.Is/Unwrap.
type QueryError struct {
	Kind error
	Msg  string
	// Stack holds the recovered goroutine stack when Kind is
	// ErrInternal (panic recovery); empty otherwise.
	Stack string
}

func (e *QueryError) Error() string {
	if e.Msg == "" {
		return "sparql: " + e.Kind.Error()
	}
	return "sparql: " + e.Msg
}

func (e *QueryError) Unwrap() error { return e.Kind }

// Budget bounds the resources one query may consume. The zero value
// imposes no limits.
type Budget struct {
	// Timeout is the wall-clock deadline applied to every query that
	// does not already carry an earlier context deadline. 0 = none.
	Timeout time.Duration
	// MaxRows caps the number of solution rows a query may materialize
	// (result rows for SELECT, groups for aggregation, quads for
	// CONSTRUCT/DESCRIBE). 0 = unlimited.
	MaxRows int
	// MaxBindings caps the number of intermediate bindings produced by
	// index scans while evaluating the query — the knob that stops a
	// runaway cross join long before it materializes results.
	// 0 = unlimited.
	MaxBindings int
}

// guardPollInterval is how many guard events pass between checks of the
// context's done channel, keeping the hot loop at one counter increment
// per row in the common case.
const guardPollInterval = 256

// guard enforces a Budget cooperatively during execution. Scans tick it
// once per row produced; the property-path BFS and the join recursion
// poll it between expansion steps. The first violation latches into err
// and every later tick/poll fails fast, so the pipeline unwinds
// promptly. A nil *guard is inert.
//
// All counters are atomic: one guard is shared by every worker of a
// parallel query (morsel scans, partitioned hash builds, path-search
// frontier expansion), so workers tick and poll it concurrently without
// extra locking, and the first violation from any worker stops all of
// them. At Parallelism=1 the counters see exactly the serial sequence
// of events, so the budget semantics are unchanged.
type guard struct {
	ctx         context.Context
	maxBindings int64
	maxRows     int
	bindings    atomic.Int64
	events      atomic.Uint64
	err         atomic.Pointer[QueryError]
}

// newGuard returns nil (no overhead) when the context can never fire
// and the budget imposes no limits.
func newGuard(ctx context.Context, b Budget) *guard {
	if ctx.Done() == nil && b.MaxBindings <= 0 && b.MaxRows <= 0 {
		return nil
	}
	return &guard{ctx: ctx, maxBindings: int64(b.MaxBindings), maxRows: b.MaxRows}
}

// fail latches the first violation; later racers lose the CAS and are
// dropped, preserving the serial "first error wins" behavior.
func (g *guard) fail(qe *QueryError) {
	g.err.CompareAndSwap(nil, qe)
}

// tick records one intermediate binding and occasionally polls the
// context. It reports false when the query must stop.
func (g *guard) tick() bool {
	return g.tickN(1)
}

// tickN records n intermediate bindings at once — the batch form used
// by parallel workers so that per-row accounting does not serialize
// them on the shared counter. Ticking n rows in one call is equivalent
// to n ticks for budget purposes; the context is still polled at every
// guardPollInterval boundary the batch crosses.
func (g *guard) tickN(n int) bool {
	if g == nil {
		return true
	}
	if g.err.Load() != nil {
		return false
	}
	if n <= 0 {
		return true
	}
	total := g.bindings.Add(int64(n))
	if g.maxBindings > 0 && total > g.maxBindings {
		g.fail(&QueryError{Kind: ErrBudgetExceeded,
			Msg: fmt.Sprintf("query exceeded the budget of %d intermediate bindings", g.maxBindings)})
		return false
	}
	return g.pollEvery(n)
}

// poll checks the context every guardPollInterval guard events. It
// reports false when the query must stop.
func (g *guard) poll() bool {
	if g == nil {
		return true
	}
	if g.err.Load() != nil {
		return false
	}
	return g.pollEvery(1)
}

// pollEvery advances the event counter by n and checks the context's
// done channel when the counter crosses a guardPollInterval boundary,
// keeping the hot path at one atomic add per event batch.
func (g *guard) pollEvery(n int) bool {
	now := g.events.Add(uint64(n))
	if now/guardPollInterval == (now-uint64(n))/guardPollInterval {
		return true
	}
	select {
	case <-g.ctx.Done():
		g.fail(ctxQueryError(g.ctx.Err()))
		return false
	default:
		return true
	}
}

// Err returns the latched violation, if any.
func (g *guard) Err() error {
	if g == nil {
		return nil
	}
	if qe := g.err.Load(); qe != nil {
		return qe
	}
	return nil
}

// checkRows enforces MaxRows against a materialized row count.
func (g *guard) checkRows(n int) bool {
	if g == nil || g.maxRows <= 0 || n <= g.maxRows {
		return g.Err() == nil
	}
	g.fail(&QueryError{Kind: ErrBudgetExceeded,
		Msg: fmt.Sprintf("query exceeded the budget of %d result rows", g.maxRows)})
	return false
}

func ctxQueryError(err error) *QueryError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &QueryError{Kind: ErrTimeout}
	}
	return &QueryError{Kind: ErrCanceled}
}

// recoverQueryPanic converts an executor panic into a structured
// *QueryError with kind ErrInternal, preserving the stack for
// diagnostics. Deferred by every exported execution entry point so a
// malformed plan or injected fault degrades into an error, not a crash.
func recoverQueryPanic(err *error) {
	if r := recover(); r != nil {
		*err = &QueryError{
			Kind:  ErrInternal,
			Msg:   fmt.Sprintf("internal error: %v", r),
			Stack: string(debug.Stack()),
		}
	}
}

// finishGuard resolves the final error of an execution: an explicit
// pipeline error wins, then a latched guard violation.
func finishGuard(ec *execCtx, err error) error {
	if err != nil {
		return err
	}
	if ec != nil && ec.guard != nil {
		return ec.guard.Err()
	}
	return nil
}
