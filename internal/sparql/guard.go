package sparql

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Error kinds distinguishing why a query was aborted. Test with
// errors.Is against the error returned by the engine.
var (
	// ErrTimeout: the context deadline (or Budget.Timeout) expired.
	ErrTimeout = errors.New("query deadline exceeded")
	// ErrBudgetExceeded: the query consumed more rows or intermediate
	// bindings than its budget allows.
	ErrBudgetExceeded = errors.New("query resource budget exceeded")
	// ErrCanceled: the context was canceled by the caller.
	ErrCanceled = errors.New("query canceled")
	// ErrInternal: the executor recovered from an internal panic.
	ErrInternal = errors.New("internal query error")
)

// QueryError is the structured error the engine returns when a query is
// stopped by a guardrail or an internal failure. Kind is one of the
// sentinel errors above and is exposed through errors.Is/Unwrap.
type QueryError struct {
	Kind error
	Msg  string
	// Stack holds the recovered goroutine stack when Kind is
	// ErrInternal (panic recovery); empty otherwise.
	Stack string
}

func (e *QueryError) Error() string {
	if e.Msg == "" {
		return "sparql: " + e.Kind.Error()
	}
	return "sparql: " + e.Msg
}

func (e *QueryError) Unwrap() error { return e.Kind }

// Budget bounds the resources one query may consume. The zero value
// imposes no limits.
type Budget struct {
	// Timeout is the wall-clock deadline applied to every query that
	// does not already carry an earlier context deadline. 0 = none.
	Timeout time.Duration
	// MaxRows caps the number of solution rows a query may materialize
	// (result rows for SELECT, groups for aggregation, quads for
	// CONSTRUCT/DESCRIBE). 0 = unlimited.
	MaxRows int
	// MaxBindings caps the number of intermediate bindings produced by
	// index scans while evaluating the query — the knob that stops a
	// runaway cross join long before it materializes results.
	// 0 = unlimited.
	MaxBindings int
}

// guardPollInterval is how many guard events pass between checks of the
// context's done channel, keeping the hot loop at one counter increment
// per row in the common case.
const guardPollInterval = 256

// guard enforces a Budget cooperatively during execution. Scans tick it
// once per row produced; the property-path BFS and the join recursion
// poll it between expansion steps. The first violation latches into err
// and every later tick/poll fails fast, so the pipeline unwinds
// promptly. A nil *guard is inert.
type guard struct {
	ctx         context.Context
	maxBindings int
	maxRows     int
	bindings    int
	polls       int
	err         error
}

// newGuard returns nil (no overhead) when the context can never fire
// and the budget imposes no limits.
func newGuard(ctx context.Context, b Budget) *guard {
	if ctx.Done() == nil && b.MaxBindings <= 0 && b.MaxRows <= 0 {
		return nil
	}
	return &guard{ctx: ctx, maxBindings: b.MaxBindings, maxRows: b.MaxRows}
}

// tick records one intermediate binding and occasionally polls the
// context. It reports false when the query must stop.
func (g *guard) tick() bool {
	if g == nil {
		return true
	}
	if g.err != nil {
		return false
	}
	g.bindings++
	if g.maxBindings > 0 && g.bindings > g.maxBindings {
		g.err = &QueryError{Kind: ErrBudgetExceeded,
			Msg: fmt.Sprintf("query exceeded the budget of %d intermediate bindings", g.maxBindings)}
		return false
	}
	return g.poll()
}

// poll checks the context every guardPollInterval calls. It reports
// false when the query must stop.
func (g *guard) poll() bool {
	if g == nil {
		return true
	}
	if g.err != nil {
		return false
	}
	g.polls++
	if g.polls < guardPollInterval {
		return true
	}
	g.polls = 0
	select {
	case <-g.ctx.Done():
		g.err = ctxQueryError(g.ctx.Err())
		return false
	default:
		return true
	}
}

// Err returns the latched violation, if any.
func (g *guard) Err() error {
	if g == nil {
		return nil
	}
	return g.err
}

// checkRows enforces MaxRows against a materialized row count.
func (g *guard) checkRows(n int) bool {
	if g == nil || g.maxRows <= 0 || n <= g.maxRows {
		return g.Err() == nil
	}
	if g.err == nil {
		g.err = &QueryError{Kind: ErrBudgetExceeded,
			Msg: fmt.Sprintf("query exceeded the budget of %d result rows", g.maxRows)}
	}
	return false
}

func ctxQueryError(err error) *QueryError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &QueryError{Kind: ErrTimeout}
	}
	return &QueryError{Kind: ErrCanceled}
}

// recoverQueryPanic converts an executor panic into a structured
// *QueryError with kind ErrInternal, preserving the stack for
// diagnostics. Deferred by every exported execution entry point so a
// malformed plan or injected fault degrades into an error, not a crash.
func recoverQueryPanic(err *error) {
	if r := recover(); r != nil {
		*err = &QueryError{
			Kind:  ErrInternal,
			Msg:   fmt.Sprintf("internal error: %v", r),
			Stack: string(debug.Stack()),
		}
	}
}

// finishGuard resolves the final error of an execution: an explicit
// pipeline error wins, then a latched guard violation.
func finishGuard(ec *execCtx, err error) error {
	if err != nil {
		return err
	}
	if ec != nil && ec.guard != nil {
		return ec.guard.Err()
	}
	return nil
}
