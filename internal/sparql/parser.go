package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL SELECT query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.PrefixMap{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

// ParseUpdate parses a SPARQL Update request (INSERT DATA / DELETE DATA /
// DELETE WHERE, separated by semicolons).
func ParseUpdate(src string) (*Update, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.PrefixMap{}}
	u, err := p.update()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after end of update", p.peek())
	}
	return u, nil
}

type parser struct {
	toks     []token
	pos      int
	prefixes rdf.PrefixMap
	blankSeq int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

// keyword matches a case-insensitive identifier keyword.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errf("expected %q, got %s", s, p.peek())
	}
	return nil
}

// ---- Query ----

func (p *parser) query() (*Query, error) {
	if err := p.prologue(); err != nil {
		return nil, err
	}
	switch {
	case p.peekKeyword("SELECT"):
		sel, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		return &Query{Prefixes: p.prefixes, Form: FormSelect, Select: sel}, nil
	case p.keyword("ASK"):
		p.keyword("WHERE")
		group, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &Query{
			Prefixes: p.prefixes,
			Form:     FormAsk,
			Select:   &SelectQuery{Star: true, Where: group, Limit: 1},
		}, nil
	case p.keyword("CONSTRUCT"):
		tmpl, err := p.constructTemplate()
		if err != nil {
			return nil, err
		}
		if !p.keyword("WHERE") {
			return nil, p.errf("expected WHERE after CONSTRUCT template")
		}
		group, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		sel := &SelectQuery{Star: true, Where: group, Limit: -1}
		if err := p.solutionModifiers(sel); err != nil {
			return nil, err
		}
		return &Query{Prefixes: p.prefixes, Form: FormConstruct, Select: sel, Template: tmpl}, nil
	case p.keyword("DESCRIBE"):
		var targets []TermOrVar
		for {
			t := p.peek()
			if t.kind == tokVar || t.kind == tokIRI || t.kind == tokPName {
				tv, err := p.varOrTerm()
				if err != nil {
					return nil, err
				}
				targets = append(targets, tv)
				continue
			}
			break
		}
		if len(targets) == 0 {
			return nil, p.errf("DESCRIBE requires at least one resource or variable")
		}
		sel := &SelectQuery{Star: true, Where: &GroupGraphPattern{}, Limit: -1}
		if p.keyword("WHERE") || (p.peek().kind == tokPunct && p.peek().text == "{") {
			group, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			sel.Where = group
		}
		return &Query{Prefixes: p.prefixes, Form: FormDescribe, Select: sel, Describe: targets}, nil
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, got %s", p.peek())
	}
}

// constructTemplate parses { triples (GRAPH varOrTerm { triples })* },
// allowing variables anywhere.
func (p *parser) constructTemplate() ([]TemplateQuad, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []TemplateQuad
	appendTriples := func(group *GroupGraphPattern, g TermOrVar) error {
		for _, e := range group.Elems {
			tp, ok := e.(*TriplePattern)
			if !ok {
				return p.errf("only triples are allowed in a CONSTRUCT template")
			}
			var pPos TermOrVar
			switch path := tp.P.(type) {
			case PathIRI:
				pPos = Constant(path.IRI)
			case PathVar:
				pPos = Variable(path.Name)
			default:
				return p.errf("property paths are not allowed in a CONSTRUCT template")
			}
			out = append(out, TemplateQuad{S: tp.S, P: pPos, O: tp.O, G: g})
		}
		return nil
	}
	for {
		if p.punct("}") {
			return out, nil
		}
		if p.keyword("GRAPH") {
			gt, err := p.varOrTerm()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			inner := &GroupGraphPattern{}
			for !p.punct("}") {
				if err := p.triplesBlock(inner, GraphCtx{}); err != nil {
					return nil, err
				}
				p.punct(".")
			}
			if err := appendTriples(inner, gt); err != nil {
				return nil, err
			}
		} else {
			group := &GroupGraphPattern{}
			if err := p.triplesBlock(group, GraphCtx{}); err != nil {
				return nil, err
			}
			if err := appendTriples(group, TermOrVar{}); err != nil {
				return nil, err
			}
		}
		p.punct(".")
	}
}

func (p *parser) prologue() error {
	for {
		switch {
		case p.keyword("PREFIX"):
			t := p.peek()
			if t.kind != tokPName || !strings.HasSuffix(t.text, ":") {
				// PNAME token carries "prefix:local"; a prefix decl has
				// empty local part, e.g. "rel:".
				if t.kind != tokPName || strings.IndexByte(t.text, ':') != len(t.text)-1 {
					return p.errf("expected prefix name ending in ':', got %s", t)
				}
			}
			p.advance()
			label := strings.TrimSuffix(t.text, ":")
			iri := p.peek()
			if iri.kind != tokIRI {
				return p.errf("expected IRI after PREFIX %s:, got %s", label, iri)
			}
			p.advance()
			p.prefixes[label] = iri.text
		case p.keyword("BASE"):
			if p.peek().kind != tokIRI {
				return p.errf("expected IRI after BASE")
			}
			p.advance() // BASE is accepted and ignored; all paper IRIs are absolute
		default:
			return nil
		}
	}
}

func (p *parser) selectQuery() (*SelectQuery, error) {
	if !p.keyword("SELECT") {
		return nil, p.errf("expected SELECT, got %s", p.peek())
	}
	sel := &SelectQuery{Limit: -1}
	if p.keyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.keyword("REDUCED") // treated as plain SELECT
	}
	if p.punct("*") {
		sel.Star = true
	} else {
		for {
			t := p.peek()
			if t.kind == tokVar {
				p.advance()
				sel.Projection = append(sel.Projection, SelectItem{Var: t.text})
				continue
			}
			if t.kind == tokPunct && t.text == "(" {
				p.advance()
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if !p.keyword("AS") {
					return nil, p.errf("expected AS in projection expression")
				}
				v := p.peek()
				if v.kind != tokVar {
					return nil, p.errf("expected variable after AS")
				}
				p.advance()
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				sel.Projection = append(sel.Projection, SelectItem{Var: v.text, Expr: e})
				continue
			}
			break
		}
		if len(sel.Projection) == 0 {
			return nil, p.errf("empty SELECT projection")
		}
	}
	p.keyword("WHERE")
	group, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	sel.Where = group
	if err := p.solutionModifiers(sel); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *parser) solutionModifiers(sel *SelectQuery) error {
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return p.errf("expected BY after GROUP")
		}
		for {
			t := p.peek()
			if t.kind == tokVar {
				p.advance()
				sel.GroupBy = append(sel.GroupBy, ExprVar{Name: t.text})
				continue
			}
			if t.kind == tokPunct && t.text == "(" {
				p.advance()
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				sel.GroupBy = append(sel.GroupBy, e)
				continue
			}
			break
		}
		if len(sel.GroupBy) == 0 {
			return p.errf("empty GROUP BY")
		}
	}
	if p.keyword("HAVING") {
		for p.peek().kind == tokPunct && p.peek().text == "(" {
			p.advance()
			e, err := p.expression()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			sel.Having = append(sel.Having, e)
		}
		if len(sel.Having) == 0 {
			return p.errf("empty HAVING")
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return p.errf("expected BY after ORDER")
		}
		for {
			desc := false
			switch {
			case p.keyword("DESC"):
				desc = true
			case p.keyword("ASC"):
			default:
				t := p.peek()
				if t.kind == tokVar {
					p.advance()
					sel.OrderBy = append(sel.OrderBy, OrderKey{Expr: ExprVar{Name: t.text}})
					continue
				}
				if t.kind == tokPunct && t.text == "(" {
					p.advance()
					e, err := p.expression()
					if err != nil {
						return err
					}
					if err := p.expectPunct(")"); err != nil {
						return err
					}
					sel.OrderBy = append(sel.OrderBy, OrderKey{Expr: e})
					continue
				}
				if len(sel.OrderBy) == 0 {
					return p.errf("empty ORDER BY")
				}
				goto done
			}
			if err := p.expectPunct("("); err != nil {
				return err
			}
			e, err := p.expression()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			sel.OrderBy = append(sel.OrderBy, OrderKey{Expr: e, Desc: desc})
		}
	}
done:
	for {
		switch {
		case p.keyword("LIMIT"):
			t := p.peek()
			if t.kind != tokInteger {
				return p.errf("expected integer after LIMIT")
			}
			p.advance()
			sel.Limit = atoiMust(t.text)
		case p.keyword("OFFSET"):
			t := p.peek()
			if t.kind != tokInteger {
				return p.errf("expected integer after OFFSET")
			}
			p.advance()
			sel.Offset = atoiMust(t.text)
		default:
			return nil
		}
	}
}

func atoiMust(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// ---- Group graph patterns ----

func (p *parser) groupGraphPattern() (*GroupGraphPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	group := &GroupGraphPattern{}
	// Sub-select?
	if p.peekKeyword("SELECT") {
		sel, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		group.Elems = append(group.Elems, &SubSelect{Select: sel})
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return group, nil
	}
	for {
		if p.punct("}") {
			return group, nil
		}
		switch {
		case p.keyword("FILTER"):
			e, err := p.constraint()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &FilterElem{Cond: e})
		case p.keyword("BIND"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if !p.keyword("AS") {
				return nil, p.errf("expected AS in BIND")
			}
			v := p.peek()
			if v.kind != tokVar {
				return nil, p.errf("expected variable after AS in BIND")
			}
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &BindElem{Expr: e, Var: v.text})
		case p.keyword("OPTIONAL"):
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &OptionalPattern{Group: g})
		case p.keyword("MINUS"):
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &MinusPattern{Group: g})
		case p.keyword("GRAPH"):
			gt, err := p.varOrTerm()
			if err != nil {
				return nil, err
			}
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &GraphPattern{Graph: gt, Group: g})
		case p.keyword("VALUES"):
			v, err := p.valuesBlock()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, v)
		case p.peek().kind == tokPunct && p.peek().text == "{":
			// Group or UNION chain.
			first, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			union := &UnionPattern{Branches: []*GroupGraphPattern{first}}
			for p.keyword("UNION") {
				br, err := p.groupGraphPattern()
				if err != nil {
					return nil, err
				}
				union.Branches = append(union.Branches, br)
			}
			if len(union.Branches) == 1 {
				// Plain nested group: splice its elements.
				group.Elems = append(group.Elems, first.Elems...)
			} else {
				group.Elems = append(group.Elems, union)
			}
		default:
			if err := p.triplesBlock(group, GraphCtx{}); err != nil {
				return nil, err
			}
		}
		p.punct(".") // optional separator
	}
}

func (p *parser) constraint() (Expr, error) {
	// FILTER ( expr ) or FILTER builtInCall(...)
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return p.primaryExpression()
}

func (p *parser) valuesBlock() (*ValuesElem, error) {
	v := &ValuesElem{}
	single := false
	if p.peek().kind == tokVar {
		single = true
		v.Vars = []string{p.advance().text}
	} else {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for p.peek().kind == tokVar {
			v.Vars = append(v.Vars, p.advance().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.punct("}") {
		var row []rdf.Term
		if single {
			t, err := p.groundTermOrUndef()
			if err != nil {
				return nil, err
			}
			row = []rdf.Term{t}
		} else {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for i := 0; i < len(v.Vars); i++ {
				t, err := p.groundTermOrUndef()
				if err != nil {
					return nil, err
				}
				row = append(row, t)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		v.Rows = append(v.Rows, row)
	}
	return v, nil
}

func (p *parser) groundTermOrUndef() (rdf.Term, error) {
	if p.keyword("UNDEF") {
		return rdf.Term{}, nil
	}
	tv, err := p.varOrTerm()
	if err != nil {
		return rdf.Term{}, err
	}
	if tv.IsVar {
		return rdf.Term{}, p.errf("variables not allowed in VALUES data")
	}
	return tv.Term, nil
}

// triplesBlock parses subject predicateObjectList (';' and ',' lists).
func (p *parser) triplesBlock(group *GroupGraphPattern, g GraphCtx) error {
	subj, err := p.varOrTerm()
	if err != nil {
		return err
	}
	for {
		path, err := p.path()
		if err != nil {
			return err
		}
		for {
			obj, err := p.varOrTerm()
			if err != nil {
				return err
			}
			group.Elems = append(group.Elems, &TriplePattern{S: subj, P: path, O: obj, Graph: g})
			if !p.punct(",") {
				break
			}
		}
		if !p.punct(";") {
			return nil
		}
		// Allow trailing ';' before '.' or '}'.
		if t := p.peek(); t.kind == tokPunct && (t.text == "." || t.text == "}") {
			return nil
		}
	}
}

func (p *parser) varOrTerm() (TermOrVar, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return Variable(t.text), nil
	case tokIRI:
		p.advance()
		return Constant(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.advance()
		iri, ok := p.prefixes.Expand(t.text)
		if !ok {
			return TermOrVar{}, p.errf("unknown prefix in %q", t.text)
		}
		return Constant(rdf.NewIRI(iri)), nil
	case tokBlank:
		p.advance()
		return Constant(rdf.NewBlank(t.text)), nil
	case tokString:
		p.advance()
		return p.literalTail(t.text)
	case tokInteger:
		p.advance()
		return Constant(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	case tokDecimal:
		p.advance()
		return Constant(rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)), nil
	case tokDouble:
		p.advance()
		return Constant(rdf.NewTypedLiteral(t.text, rdf.XSDDouble)), nil
	case tokIdent:
		if strings.EqualFold(t.text, "true") {
			p.advance()
			return Constant(rdf.NewBoolean(true)), nil
		}
		if strings.EqualFold(t.text, "false") {
			p.advance()
			return Constant(rdf.NewBoolean(false)), nil
		}
		if t.text == "a" {
			p.advance()
			return Constant(rdf.NewIRI(rdf.RDFType)), nil
		}
	case tokPunct:
		if t.text == "[" {
			return TermOrVar{}, p.errf("blank node property lists are not supported")
		}
	}
	return TermOrVar{}, p.errf("expected a term or variable, got %s", t)
}

func (p *parser) literalTail(lex string) (TermOrVar, error) {
	t := p.peek()
	if t.kind == tokLangTag {
		p.advance()
		return Constant(rdf.NewLangLiteral(lex, t.text)), nil
	}
	if t.kind == tokPunct && t.text == "^^" {
		p.advance()
		dt := p.peek()
		switch dt.kind {
		case tokIRI:
			p.advance()
			return Constant(rdf.NewTypedLiteral(lex, dt.text)), nil
		case tokPName:
			p.advance()
			iri, ok := p.prefixes.Expand(dt.text)
			if !ok {
				return TermOrVar{}, p.errf("unknown prefix in %q", dt.text)
			}
			return Constant(rdf.NewTypedLiteral(lex, iri)), nil
		default:
			return TermOrVar{}, p.errf("expected datatype IRI after ^^")
		}
	}
	return Constant(rdf.NewLiteral(lex)), nil
}

// ---- Property paths ----
//
// Precedence (loosest to tightest): alternative '|', sequence '/',
// prefix '^', postfix '* + ?', primary (IRI, 'a', var, '(' path ')').

func (p *parser) path() (Path, error) {
	return p.pathAlt()
}

func (p *parser) pathAlt() (Path, error) {
	left, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	for p.punct("|") {
		right, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		left = PathAlt{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) pathSeq() (Path, error) {
	left, err := p.pathElt()
	if err != nil {
		return nil, err
	}
	for p.punct("/") {
		right, err := p.pathElt()
		if err != nil {
			return nil, err
		}
		left = PathSeq{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) pathElt() (Path, error) {
	if p.punct("^") {
		inner, err := p.pathElt()
		if err != nil {
			return nil, err
		}
		return PathInverse{Inner: inner}, nil
	}
	prim, err := p.pathPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.punct("*"):
			prim = PathStar{Inner: prim}
		case p.punct("+"):
			prim = PathPlus{Inner: prim}
		case p.punct("?"):
			prim = PathOpt{Inner: prim}
		default:
			return prim, nil
		}
	}
}

func (p *parser) pathPrimary() (Path, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return PathVar{Name: t.text}, nil
	case tokIRI:
		p.advance()
		return PathIRI{IRI: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.advance()
		iri, ok := p.prefixes.Expand(t.text)
		if !ok {
			return nil, p.errf("unknown prefix in %q", t.text)
		}
		return PathIRI{IRI: rdf.NewIRI(iri)}, nil
	case tokIdent:
		if t.text == "a" {
			p.advance()
			return PathIRI{IRI: rdf.NewIRI(rdf.RDFType)}, nil
		}
	case tokPunct:
		if t.text == "(" {
			p.advance()
			inner, err := p.path()
			if err != nil {
				return nil, err
			}
			return inner, p.expectPunct(")")
		}
	}
	return nil, p.errf("expected a predicate or path, got %s", t)
}

// ---- Expressions ----
//
// Precedence: || < && < relational < additive < multiplicative < unary.

func (p *parser) expression() (Expr, error) {
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.punct("||") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.punct("&&") {
		right, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) relExpr() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.punct(op) {
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return ExprBinary{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.keyword("IN") {
		return p.inList(left, false)
	}
	if p.peekKeyword("NOT") {
		p.advance()
		if !p.keyword("IN") {
			return nil, p.errf("expected IN after NOT")
		}
		return p.inList(left, true)
	}
	return left, nil
}

// inList desugars `x IN (a, b)` to `x = a || x = b`.
func (p *parser) inList(left Expr, negate bool) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var e Expr
	for {
		item, err := p.expression()
		if err != nil {
			return nil, err
		}
		eq := ExprBinary{Op: "=", Left: left, Right: item}
		if e == nil {
			e = eq
		} else {
			e = ExprBinary{Op: "||", Left: e, Right: eq}
		}
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if e == nil {
		e = ExprTerm{Term: rdf.NewBoolean(negate)}
	} else if negate {
		e = ExprUnary{Op: "!", Inner: e}
	}
	return e, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.punct("+"):
			right, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "+", Left: left, Right: right}
		case p.punct("-"):
			right, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.punct("*"):
			right, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "*", Left: left, Right: right}
		case p.punct("/"):
			right, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			left = ExprBinary{Op: "/", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	switch {
	case p.punct("!"):
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return ExprUnary{Op: "!", Inner: inner}, nil
	case p.punct("-"):
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return ExprUnary{Op: "-", Inner: inner}, nil
	case p.punct("+"):
		return p.unaryExpr()
	default:
		return p.primaryExpression()
	}
}

// aggregateFuncs are the supported set functions.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"SAMPLE": true, "GROUP_CONCAT": true,
}

// builtinFuncs are the supported scalar built-ins.
var builtinFuncs = map[string]int{ // name -> arity (-1 = variadic)
	"ISLITERAL": 1, "ISIRI": 1, "ISURI": 1, "ISBLANK": 1, "ISNUMERIC": 1,
	"STR": 1, "LANG": 1, "DATATYPE": 1, "BOUND": 1, "SAMETERM": 2,
	"IRI": 1, "URI": 1,
	"CONCAT": -1, "UCASE": 1, "LCASE": 1, "STRLEN": 1, "CONTAINS": 2,
	"STRSTARTS": 2, "STRENDS": 2, "SUBSTR": -1, "REGEX": -1, "ABS": 1,
	"IF": 3, "COALESCE": -1, "STRAFTER": 2, "STRBEFORE": 2, "REPLACE": -1,
}

func (p *parser) primaryExpression() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	case tokVar:
		p.advance()
		return ExprVar{Name: t.text}, nil
	case tokIdent:
		upper := strings.ToUpper(t.text)
		if upper == "EXISTS" {
			p.advance()
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Group: g}, nil
		}
		if upper == "NOT" {
			p.advance()
			if !p.keyword("EXISTS") {
				return nil, p.errf("expected EXISTS after NOT")
			}
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Negate: true, Group: g}, nil
		}
		if aggregateFuncs[upper] {
			p.advance()
			return p.aggregate(upper)
		}
		if _, ok := builtinFuncs[upper]; ok {
			p.advance()
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			if want := builtinFuncs[upper]; want >= 0 && len(args) != want {
				return nil, p.errf("%s expects %d argument(s), got %d", upper, want, len(args))
			}
			return ExprCall{Name: upper, Args: args}, nil
		}
		if strings.EqualFold(t.text, "true") {
			p.advance()
			return ExprTerm{Term: rdf.NewBoolean(true)}, nil
		}
		if strings.EqualFold(t.text, "false") {
			p.advance()
			return ExprTerm{Term: rdf.NewBoolean(false)}, nil
		}
		return nil, p.errf("unknown function or keyword %q in expression", t.text)
	}
	tv, err := p.varOrTerm()
	if err != nil {
		return nil, err
	}
	return ExprTerm{Term: tv.Term}, nil
}

func (p *parser) aggregate(name string) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := ExprAggregate{Func: name}
	if p.keyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.punct("*") {
		if name != "COUNT" {
			return nil, p.errf("only COUNT may use *")
		}
	} else {
		arg, err := p.expression()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	return agg, p.expectPunct(")")
}

func (p *parser) argList() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.punct(")") {
		return args, nil
	}
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.punct(",") {
			break
		}
	}
	return args, p.expectPunct(")")
}

// ---- Updates ----

func (p *parser) update() (*Update, error) {
	u := &Update{}
	for {
		if err := p.prologue(); err != nil {
			return nil, err
		}
		switch {
		case p.keyword("INSERT"):
			if p.keyword("DATA") {
				quads, err := p.quadData()
				if err != nil {
					return nil, err
				}
				u.Ops = append(u.Ops, InsertData{Quads: quads})
				break
			}
			// INSERT { tmpl } WHERE { pattern }
			tmpl, err := p.constructTemplate()
			if err != nil {
				return nil, err
			}
			if !p.keyword("WHERE") {
				return nil, p.errf("expected WHERE after INSERT template")
			}
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			u.Ops = append(u.Ops, Modify{Insert: tmpl, Where: g})
		case p.keyword("DELETE"):
			if p.keyword("DATA") {
				quads, err := p.quadData()
				if err != nil {
					return nil, err
				}
				u.Ops = append(u.Ops, DeleteData{Quads: quads})
			} else if p.keyword("WHERE") {
				g, err := p.groupGraphPattern()
				if err != nil {
					return nil, err
				}
				u.Ops = append(u.Ops, DeleteWhere{Where: g})
			} else if p.peek().kind == tokPunct && p.peek().text == "{" {
				// DELETE { tmpl } [INSERT { tmpl }] WHERE { pattern }
				del, err := p.constructTemplate()
				if err != nil {
					return nil, err
				}
				var ins []TemplateQuad
				if p.keyword("INSERT") {
					ins, err = p.constructTemplate()
					if err != nil {
						return nil, err
					}
				}
				if !p.keyword("WHERE") {
					return nil, p.errf("expected WHERE after DELETE/INSERT templates")
				}
				g, err := p.groupGraphPattern()
				if err != nil {
					return nil, err
				}
				u.Ops = append(u.Ops, Modify{Delete: del, Insert: ins, Where: g})
			} else {
				return nil, p.errf("expected DATA, WHERE or a template after DELETE")
			}
		default:
			if len(u.Ops) == 0 {
				return nil, p.errf("expected INSERT or DELETE, got %s", p.peek())
			}
			u.Prefixes = p.prefixes
			return u, nil
		}
		if !p.punct(";") {
			u.Prefixes = p.prefixes
			return u, nil
		}
	}
}

// quadData parses { triples (GRAPH term { triples })* } with ground terms.
func (p *parser) quadData() ([]rdf.Quad, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var quads []rdf.Quad
	for {
		if p.punct("}") {
			return quads, nil
		}
		if p.keyword("GRAPH") {
			gt, err := p.varOrTerm()
			if err != nil {
				return nil, err
			}
			if gt.IsVar {
				return nil, p.errf("variables not allowed in ground quad data")
			}
			inner, err := p.groundTriples()
			if err != nil {
				return nil, err
			}
			for _, t := range inner {
				quads = append(quads, rdf.NewQuad(t.S, t.P, t.O, gt.Term))
			}
		} else {
			group := &GroupGraphPattern{}
			if err := p.triplesBlock(group, GraphCtx{}); err != nil {
				return nil, err
			}
			for _, e := range group.Elems {
				tp := e.(*TriplePattern)
				t, err := groundTriple(tp)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				quads = append(quads, rdf.TripleQuad(t))
			}
		}
		p.punct(".")
	}
}

func (p *parser) groundTriples() ([]rdf.Triple, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var triples []rdf.Triple
	for {
		if p.punct("}") {
			return triples, nil
		}
		group := &GroupGraphPattern{}
		if err := p.triplesBlock(group, GraphCtx{}); err != nil {
			return nil, err
		}
		for _, e := range group.Elems {
			t, err := groundTriple(e.(*TriplePattern))
			if err != nil {
				return nil, p.errf("%v", err)
			}
			triples = append(triples, t)
		}
		p.punct(".")
	}
}

func groundTriple(tp *TriplePattern) (rdf.Triple, error) {
	iriPath, ok := tp.P.(PathIRI)
	if !ok {
		return rdf.Triple{}, fmt.Errorf("ground data requires plain predicates")
	}
	if tp.S.IsVar || tp.O.IsVar {
		return rdf.Triple{}, fmt.Errorf("variables not allowed in ground data")
	}
	return rdf.NewTriple(tp.S.Term, iriPath.IRI, tp.O.Term), nil
}
