package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// fig1Store loads the Figure 1 property graph in a hand-rolled
// named-graph (NG) representation:
//
//	v1 --follows{since=2007}--> v2, v1 --knows{firstMetAt=MIT}--> v2
//	v1: name=Amy age=23, v2: name=Mira age=22
func fig1Store(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	if err := st.CreateIndex("GSPCM"); err != nil {
		t.Fatal(err)
	}
	v1 := rdf.NewIRI("http://pg/v1")
	v2 := rdf.NewIRI("http://pg/v2")
	e3 := rdf.NewIRI("http://pg/e3")
	e4 := rdf.NewIRI("http://pg/e4")
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	knows := rdf.NewIRI(rdf.RelNS + "knows")
	name := rdf.NewIRI(rdf.KeyNS + "name")
	age := rdf.NewIRI(rdf.KeyNS + "age")
	since := rdf.NewIRI(rdf.KeyNS + "since")
	firstMetAt := rdf.NewIRI(rdf.KeyNS + "firstMetAt")

	quads := []rdf.Quad{
		rdf.NewQuad(v1, follows, v2, e3),
		rdf.NewQuad(e3, since, rdf.NewInt(2007), e3),
		rdf.NewQuad(v1, knows, v2, e4),
		rdf.NewQuad(e4, firstMetAt, rdf.NewLiteral("MIT"), e4),
		{S: v1, P: name, O: rdf.NewLiteral("Amy")},
		{S: v1, P: age, O: rdf.NewInt(23)},
		{S: v2, P: name, O: rdf.NewLiteral("Mira")},
		{S: v2, P: age, O: rdf.NewInt(22)},
	}
	if _, err := st.Load("fig1", quads); err != nil {
		t.Fatal(err)
	}
	return st
}

func query(t *testing.T, st *store.Store, q string) *Results {
	t.Helper()
	res, err := NewEngine(st).Query("", testPrologue+q)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q)
	}
	return res
}

func rowStrings(res *Results) []string {
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, t := range row {
			parts[i] = t.String()
		}
		out = append(out, strings.Join(parts, " "))
	}
	sort.Strings(out)
	return out
}

func TestBGPBasic(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x ?y WHERE { ?x rel:follows ?y }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Rows[0][0].Value != "http://pg/v1" || res.Rows[0][1].Value != "http://pg/v2" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestPaperIntroQuery(t *testing.T) {
	// "who follows whom since when?" — the NG formulation from §2.1.
	st := fig1Store(t)
	res := query(t, st, `SELECT ?xname ?yname ?yr WHERE {
		GRAPH ?g {?x rel:follows ?y . ?g key:since ?yr }
		?x key:name ?xname .
		?y key:name ?yname }`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	row := res.Rows[0]
	if row[0].Value != "Amy" || row[1].Value != "Mira" || row[2].Value != "2007" {
		t.Errorf("row = %v", row)
	}
}

func TestJoinOnObject(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?yname WHERE { ?x rel:follows ?y . ?y key:name ?yname }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "Mira" {
		t.Fatalf("res = %s", res)
	}
}

func TestFilterIsLiteralIsIRI(t *testing.T) {
	st := fig1Store(t)
	// Q3 of Table 3: all KVs of the vertex named Amy.
	res := query(t, st, `SELECT ?k ?V WHERE { ?x key:name "Amy" . ?x ?k ?V FILTER (isLiteral(?V)) }`)
	got := rowStrings(res)
	want := []string{
		`<http://pg/k/age> "23"^^<http://www.w3.org/2001/XMLSchema#int>`,
		`<http://pg/k/name> "Amy"`,
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
	// Q4: all edges (isIRI objects).
	res = query(t, st, `SELECT ?x ?y WHERE { ?x ?p ?y FILTER (isIRI(?y)) }`)
	if res.Len() != 2 {
		t.Errorf("edge rows = %d\n%s", res.Len(), res)
	}
}

func TestFilterComparisons(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x WHERE { ?x key:age ?a FILTER (?a > 22) }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v1" {
		t.Fatalf("res = %s", res)
	}
	res = query(t, st, `SELECT ?x WHERE { ?x key:age ?a FILTER (?a >= 22 && ?a <= 23) }`)
	if res.Len() != 2 {
		t.Fatalf("range rows = %d", res.Len())
	}
	res = query(t, st, `SELECT ?x WHERE { ?x key:age ?a FILTER (?a + 1 = 23) }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v2" {
		t.Fatalf("arith res = %s", res)
	}
	res = query(t, st, `SELECT ?x WHERE { ?x key:name ?n FILTER (?n != "Amy") }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v2" {
		t.Fatalf("neq res = %s", res)
	}
}

func TestFilterStringFunctions(t *testing.T) {
	st := fig1Store(t)
	cases := []struct {
		filter string
		rows   int
	}{
		{`STRSTARTS(?n, "A")`, 1},
		{`STRENDS(?n, "ra")`, 1},
		{`CONTAINS(?n, "ir")`, 1},
		{`STRLEN(?n) = 3`, 1},
		{`UCASE(?n) = "AMY"`, 1},
		{`LCASE(?n) = "mira"`, 1},
		{`REGEX(?n, "^A")`, 1},
		{`REGEX(?n, "^a", "i")`, 1},
		{`CONCAT("#", ?n) = "#Amy"`, 1},
		{`SUBSTR(?n, 1, 2) = "Mi"`, 1},
		{`STRBEFORE(?n, "m") = "A"`, 1},
		{`STRAFTER(?n, "A") = "my"`, 1},
	}
	for _, c := range cases {
		res := query(t, st, `SELECT ?x WHERE { ?x key:name ?n FILTER (`+c.filter+`) }`)
		if res.Len() != c.rows {
			t.Errorf("filter %s: rows = %d want %d", c.filter, res.Len(), c.rows)
		}
	}
}

func TestGraphVariableBinding(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?g WHERE { GRAPH ?g { ?x rel:follows ?y } }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/e3" {
		t.Fatalf("res = %s", res)
	}
	// GRAPH with a constant IRI.
	res = query(t, st, `SELECT ?x WHERE { GRAPH <http://pg/e4> { ?x rel:knows ?y } }`)
	if res.Len() != 1 {
		t.Fatalf("const graph rows = %d", res.Len())
	}
	// GRAPH variables never match default-graph triples.
	res = query(t, st, `SELECT ?g WHERE { GRAPH ?g { ?x key:name "Amy" } }`)
	if res.Len() != 0 {
		t.Fatalf("default-graph triple matched GRAPH ?g: %s", res)
	}
}

func TestUnion(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?y WHERE { { ?x rel:follows ?y } UNION { ?x rel:knows ?y } }`)
	if res.Len() != 2 {
		t.Fatalf("union rows = %d", res.Len())
	}
}

func TestPathAlternative(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?y WHERE { ?x (rel:knows|rel:follows) ?y }`)
	if res.Len() != 2 {
		t.Fatalf("alt rows = %d\n%s", res.Len(), res)
	}
}

func TestOptional(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x ?since WHERE {
		?x key:name ?n OPTIONAL { GRAPH ?g { ?x rel:follows ?y . ?g key:since ?since } } }`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	bound, unbound := 0, 0
	for _, row := range res.Rows {
		if row[1].IsZero() {
			unbound++
		} else {
			bound++
		}
	}
	if bound != 1 || unbound != 1 {
		t.Errorf("bound=%d unbound=%d", bound, unbound)
	}
}

func TestMinus(t *testing.T) {
	st := fig1Store(t)
	// Vertices that have a name but do not follow anyone.
	res := query(t, st, `SELECT ?x WHERE { ?x key:name ?n MINUS { ?x rel:follows ?y } }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v2" {
		t.Fatalf("res = %s", res)
	}
}

func TestBindAndValues(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?tag WHERE { ?x key:name ?n BIND (CONCAT("#", ?n) AS ?tag) }`)
	got := rowStrings(res)
	if len(got) != 2 || got[0] != `"#Amy"` || got[1] != `"#Mira"` {
		t.Fatalf("bind rows = %v", got)
	}
	res = query(t, st, `SELECT ?n WHERE { VALUES ?x { <http://pg/v2> } ?x key:name ?n }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "Mira" {
		t.Fatalf("values res = %s", res)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x (COUNT(*) AS ?cnt) WHERE { ?x ?k ?v FILTER (isLiteral(?v)) } GROUP BY ?x`)
	if res.Len() != 4 { // v1, v2, e3, e4 each have literal-valued triples
		t.Fatalf("groups = %d\n%s", res.Len(), res)
	}
	for _, row := range res.Rows {
		if row[1].Value != "2" && row[1].Value != "1" {
			t.Errorf("unexpected count %v", row[1])
		}
	}
	// Implicit single group.
	res = query(t, st, `SELECT (COUNT(*) AS ?cnt) WHERE { ?x rel:follows ?y }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "1" {
		t.Fatalf("count res = %s", res)
	}
	// COUNT over an empty pattern still yields a row with 0.
	res = query(t, st, `SELECT (COUNT(*) AS ?cnt) WHERE { ?x rel:missing ?y }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "0" {
		t.Fatalf("empty count res = %s", res)
	}
	// MIN / MAX / SUM / AVG.
	res = query(t, st, `SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (SUM(?a) AS ?s) (AVG(?a) AS ?m)
		WHERE { ?x key:age ?a }`)
	row := res.Rows[0]
	if row[0].Value != "22" || row[1].Value != "23" || row[2].Value != "45" || row[3].Value != "22.5" {
		t.Fatalf("min/max/sum/avg = %v", row)
	}
}

func TestCountDistinct(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT (COUNT(DISTINCT ?x) AS ?cnt) WHERE { ?x ?k ?v FILTER (isLiteral(?v)) }`)
	if res.Rows[0][0].Value != "4" {
		t.Fatalf("distinct count = %v", res.Rows[0][0])
	}
}

func TestSubSelectAggregation(t *testing.T) {
	st := store.New()
	var quads []rdf.Quad
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	// Star: v1..v4 all follow v0; v0 follows v1.
	v := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)) }
	for i := 1; i <= 4; i++ {
		quads = append(quads, rdf.TripleQuad(rdf.NewTriple(v(i), follows, v(0))))
	}
	quads = append(quads, rdf.TripleQuad(rdf.NewTriple(v(0), follows, v(1))))
	st.Load("m", quads)

	// In-degree distribution (EQ9 shape): v0 has in-degree 4, v1 has 1.
	res := query(t, st, `SELECT ?inDeg (COUNT(*) as ?cnt)
		WHERE { SELECT ?n2 (COUNT(*) as ?inDeg) WHERE { ?n1 r:follows ?n2 } GROUP BY ?n2 }
		GROUP BY ?inDeg ORDER BY DESC(?inDeg)`)
	if res.Len() != 2 {
		t.Fatalf("distribution rows = %d\n%s", res.Len(), res)
	}
	if res.Rows[0][0].Value != "4" || res.Rows[0][1].Value != "1" {
		t.Errorf("first row = %v", res.Rows[0])
	}
	if res.Rows[1][0].Value != "1" || res.Rows[1][1].Value != "1" {
		t.Errorf("second row = %v", res.Rows[1])
	}
}

func TestOrderLimitOffsetDistinct(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?a WHERE { ?x key:age ?a } ORDER BY ?a`)
	if res.Rows[0][0].Value != "22" || res.Rows[1][0].Value != "23" {
		t.Fatalf("order asc: %s", res)
	}
	res = query(t, st, `SELECT ?a WHERE { ?x key:age ?a } ORDER BY DESC(?a)`)
	if res.Rows[0][0].Value != "23" {
		t.Fatalf("order desc: %s", res)
	}
	res = query(t, st, `SELECT ?a WHERE { ?x key:age ?a } ORDER BY ?a LIMIT 1 OFFSET 1`)
	if res.Len() != 1 || res.Rows[0][0].Value != "23" {
		t.Fatalf("limit/offset: %s", res)
	}
	res = query(t, st, `SELECT DISTINCT ?p WHERE { ?x ?p ?y FILTER (isIRI(?y)) }`)
	if res.Len() != 2 {
		t.Fatalf("distinct rows = %d", res.Len())
	}
}

func TestPropertyPathSequence(t *testing.T) {
	st := store.New()
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	v := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)) }
	// Chain v0 -> v1 -> v2 -> v3 plus a branch v1 -> v3.
	st.Load("m", []rdf.Quad{
		rdf.TripleQuad(rdf.NewTriple(v(0), follows, v(1))),
		rdf.TripleQuad(rdf.NewTriple(v(1), follows, v(2))),
		rdf.TripleQuad(rdf.NewTriple(v(2), follows, v(3))),
		rdf.TripleQuad(rdf.NewTriple(v(1), follows, v(3))),
	})
	// Two-hop paths from v0: v0->v1->v2 and v0->v1->v3.
	res := query(t, st, `SELECT (COUNT(?y) AS ?cnt) WHERE { <http://pg/v0> r:follows/r:follows ?y }`)
	if res.Rows[0][0].Value != "2" {
		t.Fatalf("2-hop count = %v", res.Rows[0][0])
	}
	// Three-hop: v0->v1->v2->v3 only.
	res = query(t, st, `SELECT (COUNT(?y) AS ?cnt) WHERE { <http://pg/v0> r:follows/r:follows/r:follows ?y }`)
	if res.Rows[0][0].Value != "1" {
		t.Fatalf("3-hop count = %v", res.Rows[0][0])
	}
}

func TestPropertyPathClosures(t *testing.T) {
	st := store.New()
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	v := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)) }
	// Cycle v0 -> v1 -> v2 -> v0.
	st.Load("m", []rdf.Quad{
		rdf.TripleQuad(rdf.NewTriple(v(0), follows, v(1))),
		rdf.TripleQuad(rdf.NewTriple(v(1), follows, v(2))),
		rdf.TripleQuad(rdf.NewTriple(v(2), follows, v(0))),
	})
	res := query(t, st, `SELECT ?y WHERE { <http://pg/v0> r:follows+ ?y }`)
	if res.Len() != 3 { // distinct nodes v1, v2, v0
		t.Fatalf("plus rows = %d\n%s", res.Len(), res)
	}
	res = query(t, st, `SELECT ?y WHERE { <http://pg/v0> r:follows* ?y }`)
	if res.Len() != 3 { // v0 (zero hops), v1, v2 — v0 reached twice stays distinct
		t.Fatalf("star rows = %d\n%s", res.Len(), res)
	}
	res = query(t, st, `SELECT ?y WHERE { <http://pg/v0> r:follows? ?y }`)
	if res.Len() != 2 { // v0, v1
		t.Fatalf("opt rows = %d\n%s", res.Len(), res)
	}
	// Reverse anchored: who reaches v0 in one or more hops?
	res = query(t, st, `SELECT ?x WHERE { ?x r:follows+ <http://pg/v0> }`)
	if res.Len() != 3 {
		t.Fatalf("reverse plus rows = %d", res.Len())
	}
	// Inverse path.
	res = query(t, st, `SELECT ?x WHERE { <http://pg/v1> ^r:follows ?x }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://pg/v0" {
		t.Fatalf("inverse res = %s", res)
	}
	// Unanchored closure is rejected.
	if _, err := NewEngine(st).Query("", testPrologue+`SELECT ?x WHERE { ?x r:follows+ ?y }`); err == nil {
		t.Error("unanchored closure should fail")
	}
}

func TestDatasetRestriction(t *testing.T) {
	st := store.New()
	st.Load("m1", []rdf.Quad{{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://b")}})
	st.Load("m2", []rdf.Quad{{S: rdf.NewIRI("http://c"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://d")}})
	st.CreateVirtualModel("both", "m1", "m2")
	e := NewEngine(st)
	for model, want := range map[string]int{"m1": 1, "m2": 1, "both": 2, "": 2} {
		res, err := e.Query(model, `SELECT ?x WHERE { ?x <http://p> ?y }`)
		if err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		if res.Len() != want {
			t.Errorf("model %q: rows = %d want %d", model, res.Len(), want)
		}
	}
	if _, err := e.Query("missing", `SELECT ?x WHERE { ?x <http://p> ?y }`); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestUpdateInsertDelete(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	res, err := e.Update("m", testPrologue+`INSERT DATA {
		<http://pg/v1> rel:follows <http://pg/v2> .
		GRAPH <http://pg/e1> { <http://pg/v1> rel:knows <http://pg/v2> } }`)
	if err != nil || res.Inserted != 2 {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	res, err = e.Update("m", testPrologue+`DELETE DATA { <http://pg/v1> rel:follows <http://pg/v2> }`)
	if err != nil || res.Deleted != 1 {
		t.Fatalf("delete: %+v, %v", res, err)
	}
	if n, _ := e.Count("m", testPrologue+`SELECT ?x WHERE { ?x ?p ?y }`); n != 1 {
		t.Fatalf("remaining = %d", n)
	}
	// DELETE WHERE with a GRAPH template.
	res, err = e.Update("m", testPrologue+`DELETE WHERE { GRAPH ?g { ?x rel:knows ?y } }`)
	if err != nil || res.Deleted != 1 {
		t.Fatalf("delete where: %+v, %v", res, err)
	}
	if st.Len() != 0 {
		t.Fatalf("store not empty: %d", st.Len())
	}
}

func TestExplainReportsIndexes(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	plan, err := e.Explain("", testPrologue+`SELECT ?x WHERE { ?x key:name "Amy" . ?x ?k ?V FILTER (isLiteral(?V)) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PCSGM") {
		t.Errorf("plan should use PCSGM for the P+C bound pattern:\n%s", plan)
	}
	if !strings.Contains(plan, "index range scan") {
		t.Errorf("plan lacks range scan:\n%s", plan)
	}
	// Q2-NG shape: after the follows pattern binds ?g, the ?g ?k ?v
	// pattern has S and G bound — exactly the paper's GSPCM access.
	plan, err = e.Explain("", testPrologue+`SELECT ?g WHERE { GRAPH ?g { ?x rel:follows ?y . ?g ?k ?v } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "GSPCM") {
		t.Errorf("plan should use GSPCM for the G+S bound pattern:\n%s", plan)
	}
}

func TestQueryAgainstEmptyStore(t *testing.T) {
	st := store.New()
	res := query(t, st, `SELECT ?x WHERE { ?x ?p ?y }`)
	if res.Len() != 0 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestUnknownConstantShortCircuits(t *testing.T) {
	st := fig1Store(t)
	res := query(t, st, `SELECT ?x WHERE { ?x <http://never/seen> ?y }`)
	if res.Len() != 0 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://p")
	a, b := rdf.NewIRI("http://a"), rdf.NewIRI("http://b")
	st.Load("m", []rdf.Quad{
		rdf.TripleQuad(rdf.NewTriple(a, p, a)), // self loop
		rdf.TripleQuad(rdf.NewTriple(a, p, b)),
	})
	res := query(t, st, `SELECT ?x WHERE { ?x <http://p> ?x }`)
	if res.Len() != 1 || res.Rows[0][0].Value != "http://a" {
		t.Fatalf("self-loop res = %s", res)
	}
}

// TestBGPMatchesNaive is invariant 6: random BGPs over random data give
// the same solution multisets as a naive nested-loop reference evaluator.
func TestBGPMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		st := store.New()
		var quads []rdf.Quad
		nq := 30 + rng.Intn(100)
		for i := 0; i < nq; i++ {
			quads = append(quads, rdf.Quad{
				S: rdf.NewIRI(fmt.Sprintf("http://s/%d", rng.Intn(10))),
				P: rdf.NewIRI(fmt.Sprintf("http://p/%d", rng.Intn(4))),
				O: rdf.NewIRI(fmt.Sprintf("http://o/%d", rng.Intn(10))),
			})
		}
		st.Load("m", quads)

		// Random 2-4 pattern BGP over vars ?a..?d and constants.
		nPat := 2 + rng.Intn(3)
		vars := []string{"a", "b", "c", "d"}
		pos := func() string {
			if rng.Intn(2) == 0 {
				return "?" + vars[rng.Intn(len(vars))]
			}
			return fmt.Sprintf("<http://s/%d>", rng.Intn(10))
		}
		var pats []string
		type pat struct{ s, p, o string }
		var raw []pat
		for i := 0; i < nPat; i++ {
			s := pos()
			p := fmt.Sprintf("<http://p/%d>", rng.Intn(4))
			o := pos()
			pats = append(pats, s+" "+p+" "+o+" .")
			raw = append(raw, pat{s, p, o})
		}
		q := "SELECT ?a ?b ?c ?d WHERE { " + strings.Join(pats, " ") + " }"
		res, err := NewEngine(st).Query("", q)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, q)
		}

		// Naive evaluation.
		type bindingMap map[string]string
		sols := []bindingMap{{}}
		for _, p := range raw {
			var next []bindingMap
			for _, b := range sols {
				for _, quad := range quads {
					nb := bindingMap{}
					for k, v := range b {
						nb[k] = v
					}
					ok := true
					match := func(pos, val string) {
						if !ok {
							return
						}
						if strings.HasPrefix(pos, "?") {
							if prev, bound := nb[pos]; bound {
								ok = prev == val
							} else {
								nb[pos] = val
							}
						} else {
							ok = pos == "<"+val+">"
						}
					}
					match(p.s, quad.S.Value)
					match(p.p, quad.P.Value)
					match(p.o, quad.O.Value)
					if ok {
						next = append(next, nb)
					}
				}
			}
			sols = next
		}
		var wantRows []string
		for _, b := range sols {
			parts := make([]string, 4)
			for i, v := range vars {
				if val, bound := b["?"+v]; bound {
					parts[i] = "<" + val + ">"
				}
			}
			wantRows = append(wantRows, strings.Join(parts, " "))
		}
		sort.Strings(wantRows)
		var gotRows []string
		for _, row := range res.Rows {
			parts := make([]string, 4)
			for i, term := range row {
				if !term.IsZero() {
					parts[i] = term.String()
				}
			}
			gotRows = append(gotRows, strings.Join(parts, " "))
		}
		sort.Strings(gotRows)
		if strings.Join(gotRows, "\n") != strings.Join(wantRows, "\n") {
			t.Fatalf("trial %d: mismatch\nquery: %s\ngot (%d):\n%s\nwant (%d):\n%s",
				trial, q, len(gotRows), strings.Join(gotRows, "\n"), len(wantRows), strings.Join(wantRows, "\n"))
		}
	}
}
