package sparql

import (
	"sync"

	"repro/internal/store"
)

// estCacheLimit bounds the estimate cache; past it the map is dropped
// wholesale (estimates are cheap to recompute, the cache only shaves
// repeated index probes off hot plan-ordering paths).
const estCacheLimit = 4096

// estCache memoizes the store's cardinality estimates for fully-bound
// patterns, which the greedy join-order optimizer probes on every BGP
// resolve. Entries are keyed to the store's mutation counter: any
// successful Update bumps Store.Version, so the first estimate after
// a write discards the stale generation and plans re-order to the new
// selectivities (the bulk-insert regression in update_test.go).
type estCache struct {
	mu sync.Mutex
	//pgrdf:guardedby mu
	version uint64
	//pgrdf:guardedby mu
	m map[store.Pattern]int
}

// estimate returns st.EstimateCount(p), cached within one store
// version.
func (c *estCache) estimate(st *store.Store, p store.Pattern) int {
	v := st.Version()
	c.mu.Lock()
	if c.m == nil || c.version != v {
		c.m = make(map[store.Pattern]int)
		c.version = v
	}
	if n, ok := c.m[p]; ok {
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()

	n := st.EstimateCount(p)

	c.mu.Lock()
	// Recheck the generation: a concurrent Update may have advanced the
	// store while we computed, making n stale for the current version.
	if c.m != nil && c.version == v {
		if len(c.m) >= estCacheLimit {
			c.m = make(map[store.Pattern]int)
		}
		c.m[p] = n
	}
	c.mu.Unlock()
	return n
}
