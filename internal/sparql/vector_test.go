package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/store"
)

// rowEngine returns an engine forced onto the row-at-a-time pipeline —
// the vectorization ablation baseline the differential tests compare
// against.
func rowEngine(st *store.Store) *Engine {
	e := NewEngine(st)
	e.DisableVectorized = true
	e.Parallelism = 1
	return e
}

// vecEngine returns an engine on the vectorized executor, serial.
func vecEngine(st *store.Store) *Engine {
	e := NewEngine(st)
	e.Parallelism = 1
	return e
}

// vectorDiffQueries covers the operator shapes the batch executor
// handles (BGP + trailing filters, grouping, LIMIT/OFFSET, DISTINCT,
// ORDER BY) and shapes that must fall back to the row path (UNION,
// OPTIONAL, property paths, VALUES feeding a BGP).
var vectorDiffQueries = []string{
	`SELECT ?a ?b WHERE { ?a rel:follows ?b }`,
	`SELECT ?a ?c WHERE { ?a rel:follows ?b . ?b rel:follows ?c } LIMIT 2000`,
	`SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`,
	`SELECT (COUNT(*) AS ?t) WHERE { ?a rel:follows ?b . ?b rel:follows ?c . ?c rel:follows ?a }`,
	`SELECT ?a ?b WHERE { ?a rel:follows ?b . FILTER(?a != ?b) }`,
	`SELECT ?a ?b WHERE { ?a rel:follows ?b . FILTER(?a = ?b) }`,
	`SELECT DISTINCT ?a WHERE { ?a rel:follows ?b }`,
	`SELECT ?a (COUNT(?c) AS ?n) WHERE { ?a rel:follows ?b . ?b rel:follows ?c } GROUP BY ?a ORDER BY DESC(?n) ?a LIMIT 25`,
	`SELECT (MIN(?b) AS ?lo) (MAX(?b) AS ?hi) (COUNT(?b) AS ?n) WHERE { ?a rel:follows ?b }`,
	`SELECT (SUM(?n) AS ?s) WHERE { { SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a rel:follows ?b } GROUP BY ?a } }`,
	`SELECT ?a ?b WHERE { { ?a rel:follows ?b } UNION { ?b rel:follows ?a } } LIMIT 500`,
	`SELECT ?a ?c WHERE { ?a rel:follows ?b OPTIONAL { ?b rel:follows ?c } } LIMIT 500`,
	`SELECT ?y WHERE { <http://pg/v0> rel:follows+ ?y } LIMIT 200`,
	`SELECT ?a ?b WHERE { VALUES ?a { <http://pg/v1> <http://pg/v2> <http://pg/v7> } ?a rel:follows ?b }`,
	`SELECT ?a WHERE { ?a rel:follows ?a }`,
}

// TestVectorizedMatchesRow is the row/batch differential: every query
// must produce byte-identical results from the row pipeline, the
// serial vectorized executor, and the parallel vectorized executor.
func TestVectorizedMatchesRow(t *testing.T) {
	st := egoNetStore(t, 900, 5)
	row := rowEngine(st)
	row.HashJoinThreshold = 16
	vec := vecEngine(st)
	vec.HashJoinThreshold = 16
	par := NewEngine(st)
	par.Parallelism = 8
	par.HashJoinThreshold = 16
	for _, q := range vectorDiffQueries {
		want, err := row.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("row: %v\n%s", err, q)
		}
		got, err := vec.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("vectorized: %v\n%s", err, q)
		}
		if got.String() != want.String() {
			t.Errorf("vectorized result differs from row for:\n%s\n--- row ---\n%s\n--- vectorized ---\n%s",
				q, want.String(), got.String())
		}
		pgot, err := par.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("parallel vectorized: %v\n%s", err, q)
		}
		if pgot.String() != want.String() {
			t.Errorf("parallel vectorized result differs from row for:\n%s", q)
		}
	}
	if w := par.ParallelStats().ActiveWorkers; w != 0 {
		t.Errorf("leaked workers: %d", w)
	}
	if g := st.OpenCursors(); g != 0 {
		t.Errorf("leaked cursors: %d", g)
	}
}

// TestVectorizedEmptyBatches drives filters that reject everything (the
// whole stream, and every row of some batches but not others): the
// selection vector must compact to empty without emitting, and the
// result must match the row path.
func TestVectorizedEmptyBatches(t *testing.T) {
	st := egoNetStore(t, 600, 5)
	row := rowEngine(st)
	vec := vecEngine(st)
	for _, q := range []string{
		// No row survives: ?a never equals its own follows-target's name.
		`SELECT ?a ?b WHERE { ?a rel:follows ?b . FILTER(false) }`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b . FILTER(false) }`,
		// A sparse survivor set: most batches compact to empty.
		`SELECT ?a WHERE { ?a rel:follows ?b . FILTER(?a = <http://pg/v7>) }`,
	} {
		want, err := row.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("row: %v\n%s", err, q)
		}
		got, err := vec.Query("", testPrologue+q)
		if err != nil {
			t.Fatalf("vectorized: %v\n%s", err, q)
		}
		if got.String() != want.String() {
			t.Errorf("empty-batch differential failed for:\n%s\nrow:\n%s\nvec:\n%s", q, want.String(), got.String())
		}
	}
}

// TestVectorizedLimitOffsetBatchBoundary sweeps LIMIT and OFFSET across
// the batch capacity (one row under, exactly at, one over, multiple
// batches) so off-by-one errors at batch boundaries cannot hide.
func TestVectorizedLimitOffsetBatchBoundary(t *testing.T) {
	st := egoNetStore(t, 1200, 4) // 4800 result rows for the single pattern
	row := rowEngine(st)
	vec := vecEngine(st)
	for _, limit := range []int{1, vecRampStart, vecRampStart + 1, batchRows - 1, batchRows, batchRows + 1, 2*batchRows + 5} {
		for _, offset := range []int{0, 1, batchRows - 1, batchRows, batchRows + 1} {
			q := fmt.Sprintf(`SELECT ?a ?b WHERE { ?a rel:follows ?b } OFFSET %d LIMIT %d`, offset, limit)
			want, err := row.Query("", testPrologue+q)
			if err != nil {
				t.Fatalf("row: %v\n%s", err, q)
			}
			got, err := vec.Query("", testPrologue+q)
			if err != nil {
				t.Fatalf("vectorized: %v\n%s", err, q)
			}
			if got.String() != want.String() {
				t.Fatalf("limit=%d offset=%d: vectorized differs from row", limit, offset)
			}
			if want.Len() != limit && offset+limit <= 4800 {
				t.Fatalf("limit=%d offset=%d: got %d rows", limit, offset, want.Len())
			}
		}
	}
}

// TestVectorizedDistinctAcrossBatches: duplicates of the same ?a are
// spread thousands of rows apart (different batches); DISTINCT must
// still dedupe across batch boundaries exactly like the row path.
func TestVectorizedDistinctAcrossBatches(t *testing.T) {
	st := egoNetStore(t, 1500, 4)
	row := rowEngine(st)
	vec := vecEngine(st)
	q := `SELECT DISTINCT ?a WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`
	want, err := row.Query("", testPrologue+q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vec.Query("", testPrologue+q)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("DISTINCT differs: row %d rows, vectorized %d rows", want.Len(), got.Len())
	}
}

// TestVectorizedBudgetExhaustionMidBatch exhausts MaxBindings midway
// through a multi-batch join on both executors: each must surface
// ErrBudgetExceeded (the adaptive batch ramp keeps the vectorized
// scan-ahead well under the overshoot a whole batch would cause).
func TestVectorizedBudgetExhaustionMidBatch(t *testing.T) {
	st := egoNetStore(t, 800, 5)
	for _, mk := range []func(*store.Store) *Engine{rowEngine, vecEngine} {
		e := mk(st)
		e.Limits = Budget{MaxBindings: 3000}
		_, err := e.Query("", testPrologue+`SELECT ?a ?c WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("DisableVectorized=%v: err = %v, want ErrBudgetExceeded", e.DisableVectorized, err)
		}
	}
	// A tight budget must still let a first-rows query through: the
	// ramp bounds scan-ahead below the budget.
	e := vecEngine(st)
	e.Limits = Budget{MaxBindings: 500}
	res, err := e.Query("", testPrologue+`SELECT ?a ?b WHERE { ?a rel:follows ?b } LIMIT 3`)
	if err != nil || res.Len() != 3 {
		t.Fatalf("LIMIT 3 under budget: rows=%v err=%v", res.Len(), err)
	}
}

// TestVectorizedCancellationBetweenBatches cancels the context before
// execution: the batch executor's per-batch poll must notice and
// surface ErrCanceled without leaking workers or cursors.
func TestVectorizedCancellationBetweenBatches(t *testing.T) {
	st := egoNetStore(t, 800, 5)
	for _, parallelism := range []int{1, 8} {
		e := NewEngine(st)
		e.Parallelism = parallelism
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := e.QueryContext(ctx, "", testPrologue+`SELECT ?a ?c WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("parallelism=%d: err = %v, want ErrCanceled", parallelism, err)
		}
		if w := e.ParallelStats().ActiveWorkers; w != 0 {
			t.Errorf("parallelism=%d: leaked workers: %d", parallelism, w)
		}
	}
	if g := st.OpenCursors(); g != 0 {
		t.Errorf("leaked cursors: %d", g)
	}
}

// TestOrderInsensitive pins the merge-skip rule (DESIGN.md §15): only a
// single implicit group of order-insensitive folds may skip the
// order-preserving merge.
func TestOrderInsensitive(t *testing.T) {
	e := NewEngine(store.New())
	cases := []struct {
		q    string
		want bool
	}{
		{`SELECT (COUNT(*) AS ?n) WHERE { ?a ?p ?b }`, true},
		{`SELECT (COUNT(DISTINCT ?a) AS ?n) WHERE { ?a ?p ?b }`, true},
		{`SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?a ?p ?b }`, true},
		{`SELECT (SUM(?a) AS ?s) WHERE { ?a ?p ?b }`, false},
		{`SELECT (AVG(?a) AS ?s) WHERE { ?a ?p ?b }`, false},
		{`SELECT (SAMPLE(?a) AS ?s) WHERE { ?a ?p ?b }`, false},
		{`SELECT (GROUP_CONCAT(?a) AS ?s) WHERE { ?a ?p ?b }`, false},
		{`SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ?p ?b } GROUP BY ?a`, false},
		{`SELECT ?a WHERE { ?a ?p ?b }`, false},
		{`SELECT ?a WHERE { ?a ?p ?b } ORDER BY ?a`, false},
	}
	for _, c := range cases {
		cp, err := e.compileSelectText(testPrologue + c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if got := orderInsensitive(cp); got != c.want {
			t.Errorf("orderInsensitive(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestVectorizedUnorderedParallelCount: the unordered fan-in (merge
// skipped) must still produce the exact aggregate of the ordered and
// serial paths — same count, same min/max.
func TestVectorizedUnorderedParallelCount(t *testing.T) {
	st := egoNetStore(t, 900, 5)
	serial := rowEngine(st)
	par := NewEngine(st)
	par.Parallelism = 8
	par.HashJoinThreshold = 16
	for _, q := range []string{
		`SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`,
		`SELECT (MIN(?c) AS ?lo) (MAX(?c) AS ?hi) (COUNT(?c) AS ?n) WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`,
	} {
		want, err := serial.Query("", testPrologue+q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Query("", testPrologue+q)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("unordered parallel aggregate differs for:\n%s\nserial:\n%s\nparallel:\n%s",
				q, want.String(), got.String())
		}
	}
	if w := par.ParallelStats().ActiveWorkers; w != 0 {
		t.Errorf("leaked workers: %d", w)
	}
}

// TestVectorizedAsk: ASK through the batch tail — found, not-found, and
// early stop under a tight budget.
func TestVectorizedAsk(t *testing.T) {
	st := egoNetStore(t, 300, 5)
	e := NewEngine(st)
	e.Limits = Budget{MaxBindings: 500}
	if ok, err := e.Ask("", testPrologue+`ASK { ?a rel:follows ?b }`); err != nil || !ok {
		t.Fatalf("Ask = %v, %v, want true", ok, err)
	}
	if ok, err := e.Ask("", testPrologue+`ASK { ?a key:name ?b }`); err != nil || ok {
		t.Fatalf("Ask = %v, %v, want false", ok, err)
	}
}
