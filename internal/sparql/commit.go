package sparql

import "repro/internal/rdf"

// Mutation is one quad-level change of an Update operation, in the
// order it will be applied. Model is the concrete semantic model the
// change targets: deletes issued against a virtual model or the
// all-models dataset are expanded to one Mutation per member model
// before they reach the hook, so a journal replaying them never needs
// dataset resolution.
type Mutation struct {
	// Insert asserts the quad; false retracts it.
	Insert bool
	Model  string
	Quad   rdf.Quad
}

// CommitHook intercepts the commit of one Update operation so a
// durability layer can journal it log-first: the hook persists muts,
// then calls apply exactly once to mutate the store, and returns
// apply's error. If persisting fails the hook returns without calling
// apply — the operation never happened, in memory or on disk. The
// engine pre-validates every quad and resolves every model before
// calling the hook, so apply itself cannot fail on malformed input.
//
// The hook serializes calls as needed (Engine.Update operations may
// run concurrently); the engine imposes no ordering of its own.
type CommitHook func(muts []Mutation, apply func() error) error

// commit routes one update operation's quad delta through the commit
// hook, or applies it directly when none is installed.
func (e *Engine) commit(muts []Mutation, apply func() error) error {
	if e.CommitHook == nil || len(muts) == 0 {
		return apply()
	}
	return e.CommitHook(muts, apply)
}

// applyMutations commits one operation's quad delta (log first when a
// hook is installed) and applies it to the store, tallying the quads
// that actually changed into res. The apply phase deliberately has no
// context checks: once the delta is journaled, the operation is atomic.
func (e *Engine) applyMutations(muts []Mutation, res *UpdateResult) error {
	return e.commit(muts, func() error {
		for _, mu := range muts {
			if mu.Insert {
				ok, err := e.st.Insert(mu.Model, mu.Quad)
				if err != nil {
					return err
				}
				if ok {
					res.Inserted++
				}
			} else {
				ok, err := e.st.Delete(mu.Model, mu.Quad)
				if err != nil {
					return err
				}
				if ok {
					res.Deleted++
				}
			}
		}
		return nil
	})
}
