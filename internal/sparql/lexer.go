package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF     tokenKind = iota
	tokIdent             // keywords, prefixed-name prefixes, function names, 'a'
	tokVar               // ?name or $name
	tokIRI               // <...>
	tokPName             // prefix:local
	tokBlank             // _:label
	tokString            // "..." or '...'
	tokInteger           // 123
	tokDecimal           // 1.5
	tokDouble            // 1e3
	tokPunct             // punctuation and operators
	tokLangTag           // @en-us
)

type token struct {
	kind tokenKind
	text string
	pos  int
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole input up front; SPARQL queries are small.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start, line := l.pos, l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start, line: line}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		n := l.takeWhile(isNameChar)
		if n == "" {
			if c == '?' { // bare '?' is the zero-or-one path operator
				return token{kind: tokPunct, text: "?", pos: start, line: line}, nil
			}
			return token{}, l.errf("empty variable name")
		}
		return token{kind: tokVar, text: n, pos: start, line: line}, nil
	case c == '<':
		// '<' is ambiguous: IRIREF or the less-than operator. It is an
		// IRI only when a '>' appears before any whitespace.
		if !l.looksLikeIRI() {
			return l.lexPunct(start, line)
		}
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{}, l.errf("unterminated IRI")
		}
		iri := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIRI, text: iri, pos: start, line: line}, nil
	case c == '"' || c == '\'':
		s, err := l.lexString(c)
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start, line: line}, nil
	case c == '_' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
		l.pos += 2
		n := l.takeWhile(isNameChar)
		if n == "" {
			return token{}, l.errf("empty blank node label")
		}
		return token{kind: tokBlank, text: n, pos: start, line: line}, nil
	case c == '@':
		l.pos++
		n := l.takeWhile(func(r rune) bool { return isAlnumRune(r) || r == '-' })
		if n == "" {
			return token{}, l.errf("empty language tag")
		}
		return token{kind: tokLangTag, text: n, pos: start, line: line}, nil
	case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber(start, line)
	case isNameStartByte(c):
		word := l.takeWhile(isNameChar)
		if word == "" {
			// A byte >= 0x80 that decodes to a non-name rune (or to
			// U+FFFD on invalid UTF-8). Without this check the lexer
			// would emit a zero-width token and never advance.
			r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
			return token{}, l.errf("unexpected character %q", r)
		}
		// Prefixed name? (prefix:local, or :local via empty prefix)
		if l.peekByte() == ':' {
			l.pos++
			local := l.lexLocalName()
			return token{kind: tokPName, text: word + ":" + local, pos: start, line: line}, nil
		}
		return token{kind: tokIdent, text: word, pos: start, line: line}, nil
	case c == ':':
		l.pos++
		local := l.lexLocalName()
		return token{kind: tokPName, text: ":" + local, pos: start, line: line}, nil
	default:
		return l.lexPunct(start, line)
	}
}

func (l *lexer) lexPunct(start, line int) (token, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "&&", "||", "!=", "<=", ">=", "^^":
		l.pos += 2
		return token{kind: tokPunct, text: two, pos: start, line: line}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '{', '}', '(', ')', '.', ';', ',', '*', '+', '/', '|', '^', '!', '=', '<', '>', '-', '?':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start, line: line}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return token{}, l.errf("unexpected character %q", r)
}

func (l *lexer) lexNumber(start, line int) (token, error) {
	kind := tokInteger
	l.takeWhileBytes(isDigit)
	if l.peekByte() == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		kind = tokDecimal
		l.pos++
		l.takeWhileBytes(isDigit)
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		kind = tokDouble
		l.pos++
		if b := l.peekByte(); b == '+' || b == '-' {
			l.pos++
		}
		if !isDigit(l.peekByte()) {
			return token{}, l.errf("malformed double literal")
		}
		l.takeWhileBytes(isDigit)
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start, line: line}, nil
}

func (l *lexer) lexString(quote byte) (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", l.errf("unterminated string literal")
		}
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return b.String(), nil
		}
		if c == '\n' {
			return "", l.errf("newline in string literal")
		}
		if c == '\\' {
			if l.pos+1 >= len(l.src) {
				return "", l.errf("dangling escape")
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"', '\'', '\\':
				b.WriteByte(e)
			default:
				return "", l.errf("unknown escape \\%c", e)
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
}

func (l *lexer) takeWhile(pred func(rune) bool) string {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !pred(r) {
			break
		}
		l.pos += size
	}
	return l.src[start:l.pos]
}

func (l *lexer) takeWhileBytes(pred func(byte) bool) {
	for l.pos < len(l.src) && pred(l.src[l.pos]) {
		l.pos++
	}
}

// looksLikeIRI reports whether the '<' at the current position begins an
// IRIREF: a '>' occurs before any whitespace or another '<'.
func (l *lexer) looksLikeIRI() bool {
	for i := l.pos + 1; i < len(l.src); i++ {
		switch l.src[i] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '<':
			return false
		}
	}
	return false
}

// lexLocalName reads the local part of a prefixed name. SPARQL local
// names may contain interior dots but not end with one, so trailing dots
// are returned to the stream (they are triple terminators).
func (l *lexer) lexLocalName() string {
	local := l.takeWhile(isLocalNameChar)
	for strings.HasSuffix(local, ".") {
		local = local[:len(local)-1]
		l.pos--
	}
	return local
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStartByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c >= 0x80
}

func isNameChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isAlnumRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isLocalNameChar accepts the characters we allow in the local part of a
// prefixed name. SPARQL allows more (percent escapes etc.); this subset
// covers the paper's vocabulary, including leading digits (pg:v1).
func isLocalNameChar(r rune) bool {
	return isNameChar(r) || r == '-' || r == '.'
}
