package sparql

// This file catalogs the experiment queries of the paper (Table 10,
// EQ1–EQ12) verbatim, plus the Q1–Q4 graph patterns of Table 3. The "a"
// variants target the named-graph (NG) scheme, the "b" variants the
// subproperty (SP) scheme; unsuffixed queries are scheme-independent.

// paperPrologue declares the namespaces of §2.2.
const paperPrologue = `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX r: <http://pg/r/>
PREFIX k: <http://pg/k/>
PREFIX rel: <http://pg/r/>
PREFIX key: <http://pg/k/>
`

// PaperQueries returns the Table 10 queries (EQ1–EQ12), keyed by their
// paper names. The EQ11 start node is parameterized elsewhere; here it
// uses the paper's literal <http://pg/n6160742>.
func PaperQueries() map[string]string {
	m := map[string]string{
		"EQ1": `SELECT ?n WHERE { ?n k:hasTag "#webseries" }`,

		"EQ2": `SELECT ?nf WHERE { ?n k:hasTag "#webseries" . ?nf r:follows ?n }`,

		"EQ3": `SELECT ?n4 WHERE { ?n k:hasTag ?t . ?n r:follows ?n2 . ?n2 k:hasTag ?t .
			?n2 r:follows ?n3 . ?n3 k:hasTag ?t . ?n3 r:follows ?n4 .
			?n4 k:hasTag ?t FILTER (?t = "#webseries") }`,

		"EQ4": `SELECT ?n ?k ?v WHERE { ?n k:hasTag "#webseries" . ?n ?k ?v FILTER (isLiteral(?v)) }`,

		"EQ5a": `SELECT ?n2 WHERE { GRAPH ?g1 { ?n r:follows ?n2 . ?g1 k:hasTag "#webseries" } }`,

		"EQ5b": `SELECT ?n2 WHERE { ?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows . ?p k:hasTag "#webseries" }`,

		"EQ6a": `SELECT ?n3 WHERE { GRAPH ?g1 { ?n r:follows ?n2 . ?g1 k:hasTag "#webseries" }
			?n2 r:follows ?n3 }`,

		"EQ6b": `SELECT ?n3 WHERE { ?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows .
			?p k:hasTag "#webseries" . ?n2 r:follows ?n3 }`,

		"EQ7a": `SELECT ?n4 WHERE { GRAPH ?g1 { ?n r:follows ?n2 . ?g1 k:hasTag "#webseries" }
			GRAPH ?g2 { ?n2 r:follows ?n3 . ?g2 k:hasTag "#webseries" }
			GRAPH ?g3 { ?n3 r:follows ?n4 . ?g3 k:hasTag "#webseries" } }`,

		"EQ7b": `SELECT ?n4 WHERE { ?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows . ?p k:hasTag "#webseries" .
			?n2 ?p2 ?n3 . ?p2 rdfs:subPropertyOf r:follows . ?p2 k:hasTag "#webseries" .
			?n3 ?p3 ?n4 . ?p3 rdfs:subPropertyOf r:follows . ?p3 k:hasTag "#webseries" }`,

		"EQ8a": `SELECT ?n2 ?k ?v WHERE { GRAPH ?g1 { ?n r:follows ?n2 . ?g1 k:hasTag "#webseries" .
			?g1 ?k ?v FILTER (isLiteral(?v)) } }`,

		"EQ8b": `SELECT ?n2 ?k ?v WHERE { ?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows .
			?p k:hasTag "#webseries" . ?p ?k ?v FILTER (isLiteral(?v)) }`,

		"EQ9": `SELECT ?inDeg (COUNT(*) as ?cnt)
			WHERE { SELECT ?n2 (COUNT(*) as ?inDeg)
				WHERE { ?n1 (r:knows|r:follows) ?n2 }
				GROUP BY ?n2 } GROUP BY ?inDeg ORDER BY DESC(?inDeg)`,

		"EQ10": `SELECT ?outDeg (COUNT(*) as ?cnt)
			WHERE { SELECT ?n1 (COUNT(*) as ?outDeg)
				WHERE { ?n1 (r:knows|r:follows) ?n2 }
				GROUP BY ?n1 } GROUP BY ?outDeg ORDER BY DESC(?outDeg)`,

		"EQ12": `SELECT (COUNT(*) AS ?cnt) WHERE { ?x r:follows ?y . ?y r:follows ?z . ?z r:follows ?x }`,
	}
	for i, q := range EQ11Queries("http://pg/n6160742") {
		m["EQ11"+string(rune('a'+i))] = q
	}
	for name, q := range m {
		m[name] = paperPrologue + q
	}
	return m
}

// EQ11Queries builds the five graph-traversal queries EQ11a–e (1..5 hop
// path counting from a start node).
func EQ11Queries(startNode string) [5]string {
	var out [5]string
	path := ""
	for i := 0; i < 5; i++ {
		if i > 0 {
			path += "/"
		}
		path += "r:follows"
		out[i] = `SELECT (COUNT(?y) as ?cnt) WHERE { <` + startNode + `> ` + path + ` ?y }`
	}
	return out
}

// Table3Queries returns the Q1–Q4 graph patterns of Table 3, keyed by
// query id and PG-as-RDF model ("all", "RF", "NG", "SP").
func Table3Queries() map[string]string {
	m := map[string]string{
		// Q1: triangles of "follows" edges (all models).
		"Q1": `SELECT ?x ?y ?z WHERE { ?x rel:follows ?y . ?y rel:follows ?z . ?z rel:follows ?x }`,

		// Q2: vertex pairs and all KVs of edges with "follows" label.
		"Q2-RF": `SELECT ?x ?y ?k ?V WHERE { ?e rdf:subject ?x ; rdf:predicate rel:follows ; rdf:object ?y .
			?e ?k ?V FILTER (isLiteral(?V)) }`,
		"Q2-NG": `SELECT ?x ?y ?k ?V WHERE { GRAPH ?e { ?x rel:follows ?y . ?e ?k ?V FILTER (isLiteral(?V)) } }`,
		"Q2-SP": `SELECT ?x ?y ?k ?V WHERE { ?x ?e ?y . ?e rdfs:subPropertyOf rel:follows . ?e ?k ?V FILTER (isLiteral(?V)) }`,

		// Q3: all KVs of vertices matching name = "Amy" (all models).
		"Q3": `SELECT ?x ?k ?V WHERE { ?x key:name "Amy" . ?x ?k ?V FILTER (isLiteral(?V)) }`,

		// Q4: source and destination vertices of all edges (all models).
		"Q4": `SELECT ?x ?y WHERE { ?x ?p ?y FILTER (isIRI(?y)) }`,
	}
	for name, q := range m {
		m[name] = paperPrologue + q
	}
	return m
}
