package sparql

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestModifyInsertWhere(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	// Materialize inverse followedBy edges.
	res, err := e.Update("fig1", testPrologue+`
		INSERT { ?y <http://x/followedBy> ?x } WHERE { ?x rel:follows ?y }`)
	if err != nil || res.Inserted != 1 {
		t.Fatalf("insert-where: %+v, %v", res, err)
	}
	n, err := e.Count("fig1", `SELECT ?x WHERE { ?x <http://x/followedBy> ?y }`)
	if err != nil || n != 1 {
		t.Fatalf("materialized rows = %d, %v", n, err)
	}
}

func TestModifyDeleteInsertWhere(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	_, err := e.Update("m", testPrologue+`INSERT DATA {
		<http://pg/v1> key:age "23"^^<http://www.w3.org/2001/XMLSchema#int> .
		<http://pg/v2> key:age "22"^^<http://www.w3.org/2001/XMLSchema#int> }`)
	if err != nil {
		t.Fatal(err)
	}
	// Rename the key:age property to key:years (the paper's §2.1
	// DELETE-and-INSERT update pattern).
	res, err := e.Update("m", testPrologue+`
		DELETE { ?s key:age ?v } INSERT { ?s key:years ?v } WHERE { ?s key:age ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 2 || res.Inserted != 2 {
		t.Fatalf("modify result: %+v", res)
	}
	if n, _ := e.Count("m", testPrologue+`SELECT ?s WHERE { ?s key:age ?v }`); n != 0 {
		t.Errorf("old property still present: %d", n)
	}
	if n, _ := e.Count("m", testPrologue+`SELECT ?s WHERE { ?s key:years ?v }`); n != 2 {
		t.Errorf("new property rows = %d", n)
	}
}

func TestModifyDeleteOnlyTemplate(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	// Delete only the edge-KV quads of the follows edge (GRAPH form).
	res, err := e.Update("fig1", testPrologue+`
		DELETE { GRAPH ?g { ?g key:since ?v } } WHERE { GRAPH ?g { ?g key:since ?v } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("deleted = %d", res.Deleted)
	}
	// Topology must be intact.
	if n, _ := e.Count("fig1", testPrologue+`SELECT ?x WHERE { ?x rel:follows ?y }`); n != 1 {
		t.Error("topology quad lost")
	}
}

func TestModifyWhereEvaluatedBeforeWrites(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	_, err := e.Update("m", `INSERT DATA { <http://a> <http://next> <http://b> . <http://b> <http://next> <http://c> }`)
	if err != nil {
		t.Fatal(err)
	}
	// Shift every chain link: the WHERE must see the ORIGINAL state, so
	// exactly 2 hop edges are inserted, not a transitive cascade.
	res, err := e.Update("m", `
		INSERT { ?x <http://hop> ?y } WHERE { ?x <http://next> ?y }`)
	if err != nil || res.Inserted != 2 {
		t.Fatalf("modify: %+v, %v", res, err)
	}
}

func TestUpdateRejectsGarbage(t *testing.T) {
	e := NewEngine(store.New())
	for _, bad := range []string{
		`DELETE { ?x <http://p> ?y }`,                     // missing WHERE
		`INSERT { ?x <http://p> ?y } WHEREISH { }`,        // typo
		`DELETE { ?x <http://p>+ ?y } WHERE { ?x ?p ?y }`, // path in template
	} {
		if _, err := e.Update("m", bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestModifyInsertIntoNamedGraphTemplate(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	if _, err := e.Update("m", `INSERT DATA { <http://a> <http://p> <http://b> }`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Update("m", `
		INSERT { GRAPH <http://g> { ?x <http://p2> ?y } } WHERE { ?x <http://p> ?y }`)
	if err != nil || res.Inserted != 1 {
		t.Fatalf("insert into graph: %+v, %v", res, err)
	}
	if !st.Contains("m", rdf.NewQuad(rdf.NewIRI("http://a"), rdf.NewIRI("http://p2"), rdf.NewIRI("http://b"), rdf.NewIRI("http://g"))) {
		t.Error("named-graph quad missing")
	}
}
