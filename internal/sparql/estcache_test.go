package sparql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func estFixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for i := 0; i < 2; i++ {
		if _, err := st.Insert("m", rdf.Quad{
			S: rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)),
			P: rdf.NewIRI("http://pg/k/rare"),
			O: rdf.NewLiteral(fmt.Sprintf("r%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := st.Insert("m", rdf.Quad{
			S: rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)),
			P: rdf.NewIRI("http://pg/k/common"),
			O: rdf.NewLiteral(fmt.Sprintf("c%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func predPattern(st *store.Store, pred string) store.Pattern {
	p := store.AnyPattern()
	p.P = st.Dict().Lookup(rdf.NewIRI(pred))
	return p
}

func TestEstCacheInvalidatesOnStoreVersion(t *testing.T) {
	st := estFixture(t)
	var c estCache
	p := predPattern(st, "http://pg/k/rare")
	if got := c.estimate(st, p); got != st.EstimateCount(p) {
		t.Fatalf("first estimate = %d, want %d", got, st.EstimateCount(p))
	}
	before := c.estimate(st, p)

	// A successful mutation bumps Store.Version; the cached generation
	// must be discarded, not served stale.
	if _, err := st.Insert("m", rdf.Quad{
		S: rdf.NewIRI("http://pg/v9"), P: rdf.NewIRI("http://pg/k/rare"), O: rdf.NewLiteral("r9")}); err != nil {
		t.Fatal(err)
	}
	after := c.estimate(st, p)
	if after == before {
		t.Fatalf("estimate stayed %d across an insert; cache not invalidated", before)
	}
	if want := st.EstimateCount(p); after != want {
		t.Fatalf("post-insert estimate = %d, want %d", after, want)
	}

	// A failed mutation (duplicate insert) must not have bumped anything:
	// the cache may keep serving the same generation.
	v := st.Version()
	if added, err := st.Insert("m", rdf.Quad{
		S: rdf.NewIRI("http://pg/v9"), P: rdf.NewIRI("http://pg/k/rare"), O: rdf.NewLiteral("r9")}); err != nil || added {
		t.Fatalf("duplicate insert: added=%v err=%v", added, err)
	}
	if st.Version() != v {
		t.Fatal("no-op insert bumped the store version")
	}
}

func TestEstCacheWholesaleDropAtLimit(t *testing.T) {
	st := estFixture(t)
	var c estCache
	for i := 0; i < estCacheLimit; i++ {
		p := store.AnyPattern()
		p.S = store.ID(i + 1000)
		c.estimate(st, p)
	}
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	if n != estCacheLimit {
		t.Fatalf("cache holds %d entries, want %d", n, estCacheLimit)
	}
	// One more estimate crosses the limit: the map is dropped wholesale
	// and restarted with just the new entry.
	c.estimate(st, store.AnyPattern())
	c.mu.Lock()
	n = len(c.m)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("cache holds %d entries after the wholesale drop, want 1", n)
	}
}

// TestPlanReordersAfterBulkInsert is the ISSUE 5 satellite regression:
// the greedy join-order optimizer reads cardinality estimates through a
// per-engine cache, and a successful Update must invalidate it so the
// next plan sees the skewed selectivities.
func TestPlanReordersAfterBulkInsert(t *testing.T) {
	st := estFixture(t)
	e := NewEngine(st)
	const q = `SELECT ?s WHERE { ?s <http://pg/k/rare> ?a . ?s <http://pg/k/common> ?b }`

	order := func() (rare, common int) {
		t.Helper()
		plan, err := e.Explain("m", q)
		if err != nil {
			t.Fatal(err)
		}
		rare = strings.Index(plan, "k/rare")
		common = strings.Index(plan, "k/common")
		if rare < 0 || common < 0 {
			t.Fatalf("plan lacks the patterns:\n%s", plan)
		}
		return rare, common
	}

	// 2 rare vs 8 common rows: rare leads. This Explain also primes the
	// estimate cache, which is the point of the regression.
	if r, c := order(); r > c {
		t.Fatal("selective pattern not ordered first before the bulk insert")
	}

	var ins strings.Builder
	ins.WriteString("INSERT DATA {\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&ins, "<http://pg/bulk%d> <http://pg/k/rare> \"b%d\" .\n", i, i)
	}
	ins.WriteString("}")
	if res, err := e.Update("m", ins.String()); err != nil || res.Inserted != 100 {
		t.Fatalf("bulk insert: %+v, %v", res, err)
	}

	// Now 102 rare vs 8 common rows: the plan must flip. With a stale
	// estimate cache it would not.
	if r, c := order(); r < c {
		t.Fatal("plan did not re-order after a bulk insert skewed selectivities")
	}
}
