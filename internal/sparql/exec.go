package sparql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
	"repro/internal/store"
)

// execCtx carries the store, dataset restriction and variable table
// through execution.
type execCtx struct {
	st          *store.Store
	estc        *estCache                  // nil = uncached estimates
	models      map[store.ModelID]struct{} // nil = all models
	singleModel store.ModelID              // set when the dataset is one model
	vt          *varTable
	noHashJoin  bool   // force NLJ everywhere (join-strategy ablation)
	guard       *guard // nil = no cancellation or budget enforcement

	// Intra-query parallelism (DESIGN.md §10). parallelism is the
	// worker budget (1 = serial plans, exactly the pre-parallel
	// executor); slots is the per-query semaphore workers are drawn
	// from, so nested parallel stages degrade to serial instead of
	// oversubscribing; pstats points at the engine's cumulative
	// counters (nil in bare contexts such as Explain's).
	parallelism     int
	hashMin         int // NLJ -> hash-join input threshold
	slots           chan struct{}
	pstats          *parallelStats
	parallelFlagged *atomic.Bool // set once when the query goes parallel

	// vectorized enables batch-at-a-time BGP execution (DESIGN.md §15).
	// Off, every operator runs the row-at-a-time pull pipeline — the
	// pre-vectorization executor, kept as the ablation baseline and the
	// fallback for operators that are not batch-aware.
	vectorized bool

	// unordered is set by evalSelect when the plan's results are
	// consumed order-insensitively (a single implicit group whose
	// aggregates do not depend on row order, or ASK's any-row check).
	// The parallel batch executor then fans morsel results in by
	// completion order instead of paying the order-preserving merge.
	unordered bool

	// scratch holds terms computed while answering this query (BIND,
	// VALUES, extended projection, aggregate results) so evaluation
	// never grows the store's shared dictionary. Updates resolve any
	// scratch ID back to its term before inserting into the store.
	scratch *store.TermOverlay

	// prof, when non-nil, collects per-stage actuals (DESIGN.md §11).
	// All execution hooks are nil-checked so unprofiled queries pay a
	// predictable branch and zero allocations.
	prof *queryProfile
}

// child derives an execCtx for a nested scope (sub-select), sharing the
// guard, dataset restriction and parallel budget but using the inner
// scope's variable table.
func (ec *execCtx) child(vt *varTable) *execCtx {
	c := *ec
	c.vt = vt
	return &c
}

// estimate returns the store's cardinality estimate for p, through the
// engine's versioned cache when one is attached.
func (ec *execCtx) estimate(p store.Pattern) int {
	if ec.estc != nil {
		return ec.estc.estimate(ec.st, p)
	}
	return ec.st.EstimateCount(p)
}

// term resolves an ID from the shared dictionary or, when the query
// carries a scratch overlay, from either range.
func (ec *execCtx) term(id store.ID) rdf.Term {
	if ec.scratch != nil {
		return ec.scratch.Term(id)
	}
	return ec.st.Dict().Term(id)
}

// intern maps a computed term to an ID without growing the shared
// dictionary when a scratch overlay is present (read-only queries).
func (ec *execCtx) intern(t rdf.Term) store.ID {
	if ec.scratch != nil {
		return ec.scratch.Intern(t)
	}
	return ec.st.Dict().Intern(t)
}

// scan runs a store scan restricted to the dataset's models. Every row
// produced ticks the query guard, making scans the chokepoint where a
// runaway query notices cancellation, deadline expiry or budget
// exhaustion — whichever operator drives them.
func (ec *execCtx) scan(p store.Pattern, fn func(store.IDQuad) bool) {
	if g := ec.guard; g != nil {
		inner := fn
		fn = func(q store.IDQuad) bool {
			if !g.tick() {
				return false
			}
			return inner(q)
		}
	}
	if ec.models == nil {
		ec.st.Scan(p, fn)
		return
	}
	if ec.singleModel != store.NoID {
		m := ec.singleModel
		ec.st.Scan(p, func(q store.IDQuad) bool {
			if q.M != m {
				return true
			}
			return fn(q)
		})
		return
	}
	ec.st.Scan(p, func(q store.IDQuad) bool {
		if _, ok := ec.models[q.M]; !ok {
			return true
		}
		return fn(q)
	})
}

// quadVisible reports whether a quad belongs to the dataset's models —
// the per-row form of the model filter ec.scan applies, used by the
// batched scan loops (which receive raw index runs).
func (ec *execCtx) quadVisible(q store.IDQuad) bool {
	if ec.models == nil {
		return true
	}
	if ec.singleModel != store.NoID {
		return q.M == ec.singleModel
	}
	_, ok := ec.models[q.M]
	return ok
}

// unitSource yields a single empty binding of the scope's width.
func unitSource(width int) source {
	return func(yield func(binding) bool) error {
		b := make(binding, width)
		yield(b)
		return nil
	}
}

// runPipeline folds a pipeline over an input source. When the context
// carries a profile, each operator's stream is wrapped with row and
// wall-time accounting (the BGP additionally keeps its own per-step
// counters inside apply).
func runPipeline(ec *execCtx, ops []op, in source) source {
	src := in
	for _, o := range ops {
		src = o.apply(ec, src)
		if ec.prof != nil {
			src = ec.prof.instrument(o.stageID(), src)
		}
	}
	return src
}

// explainer accumulates a textual plan.
type explainer struct {
	b      strings.Builder
	indent int
	ec     *execCtx
}

func (e *explainer) printf(format string, args ...any) {
	e.b.WriteString(strings.Repeat("  ", e.indent))
	fmt.Fprintf(&e.b, format, args...)
	e.b.WriteByte('\n')
}

// ---------------------------------------------------------------------
// BGP operator: ordered quad patterns with interleaved filters, executed
// with adaptive index nested-loop / hash joins.
// ---------------------------------------------------------------------

type bgpOp struct {
	opStage
	patterns []quadPattern
	filters  []*filterOp
}

func (o *bgpOp) bound(before varset) varset {
	v := before
	for _, qp := range o.patterns {
		v |= qp.vars()
	}
	return v
}

// resolvedPattern is a quad pattern with constants resolved to IDs.
type resolvedPattern struct {
	qp       quadPattern
	ids      [4]store.ID // const IDs for S,P,O,G (NoID if var/absent)
	missing  bool        // a constant is not in the dictionary: no matches
	estConst int         // estimated rows with only constants bound
}

func (o *bgpOp) resolve(ec *execCtx) []resolvedPattern {
	rps := make([]resolvedPattern, len(o.patterns))
	for i, qp := range o.patterns {
		rp := resolvedPattern{qp: qp}
		resolvePos := func(idx int, r posRef) {
			if r.isVar {
				return
			}
			id := ec.st.Dict().Lookup(r.term)
			if id == store.NoID {
				rp.missing = true
			}
			rp.ids[idx] = id
		}
		resolvePos(0, qp.s)
		resolvePos(1, qp.p)
		resolvePos(2, qp.o)
		if qp.g.kind == GraphTerm {
			id := ec.st.Dict().Lookup(qp.g.term)
			if id == store.NoID {
				rp.missing = true
			}
			rp.ids[3] = id
		}
		if !rp.missing {
			rp.estConst = ec.estimate(rp.constPattern())
		}
		rps[i] = rp
	}
	return rps
}

// constPattern builds the store pattern with only constants bound.
func (rp *resolvedPattern) constPattern() store.Pattern {
	p := store.AnyPattern()
	if !rp.qp.s.isVar {
		p.S = rp.ids[0]
	}
	if !rp.qp.p.isVar {
		p.P = rp.ids[1]
	}
	if !rp.qp.o.isVar {
		p.C = rp.ids[2]
	}
	if rp.qp.g.kind == GraphTerm {
		p.G = rp.ids[3]
	}
	return p
}

// boundPattern builds the store pattern given a current binding.
func (rp *resolvedPattern) boundPattern(b binding) store.Pattern {
	p := rp.constPattern()
	if rp.qp.s.isVar && b[rp.qp.s.slot] != store.NoID {
		p.S = b[rp.qp.s.slot]
	}
	if rp.qp.p.isVar && b[rp.qp.p.slot] != store.NoID {
		p.P = b[rp.qp.p.slot]
	}
	if rp.qp.o.isVar && b[rp.qp.o.slot] != store.NoID {
		p.C = b[rp.qp.o.slot]
	}
	if rp.qp.g.kind == GraphVar && b[rp.qp.g.slot] != store.NoID {
		p.G = b[rp.qp.g.slot]
	}
	return p
}

// unboundCount counts positions not bound by constants or vars in `bound`.
func (rp *resolvedPattern) unboundCount(bound varset) int {
	n := 0
	check := func(r posRef) {
		if r.isVar && !bound.has(r.slot) {
			n++
		}
	}
	check(rp.qp.s)
	check(rp.qp.p)
	check(rp.qp.o)
	if rp.qp.g.kind == GraphVar && !bound.has(rp.qp.g.slot) {
		n++
	}
	return n
}

// undoList records in-place binding extensions so they can be reverted
// after recursion; a quad pattern binds at most 4 positions.
type undoList struct {
	slots [4]int
	n     int
}

func (u *undoList) revert(b binding) {
	for i := 0; i < u.n; i++ {
		b[u.slots[i]] = store.NoID
	}
}

// bindQuad extends b in place with the quad's values for unbound var
// positions, filling the undo list, or returns false (with b already
// reverted) when a repeated variable or an already-bound variable
// conflicts. GRAPH variables never bind to the default graph.
func (rp *resolvedPattern) bindQuad(b binding, q store.IDQuad, undo *undoList) bool {
	undo.n = 0
	bind := func(isVar bool, slot int, v store.ID) bool {
		if !isVar {
			return true
		}
		cur := b[slot]
		if cur == store.NoID {
			b[slot] = v
			undo.slots[undo.n] = slot
			undo.n++
			return true
		}
		return cur == v
	}
	if !bind(rp.qp.s.isVar, rp.qp.s.slot, q.S) ||
		!bind(rp.qp.p.isVar, rp.qp.p.slot, q.P) ||
		!bind(rp.qp.o.isVar, rp.qp.o.slot, q.C) {
		undo.revert(b)
		return false
	}
	if rp.qp.g.kind == GraphVar {
		if q.G == store.NoID || !bind(true, rp.qp.g.slot, q.G) {
			undo.revert(b)
			return false
		}
	}
	return true
}

// matchesGraphCtx checks the graph-context constraint for quads coming
// from a hash-table or scan where G was left unbound.
func (rp *resolvedPattern) matchesGraphCtx(q store.IDQuad) bool {
	if rp.qp.g.kind == GraphVar && q.G == store.NoID {
		return false
	}
	return true
}

// orderPatterns chooses a greedy join order: repeatedly pick the best
// next pattern by (connected to the bound variables first, then fewest
// unbound positions, then smallest constant-bound estimate). The
// connectivity rule keeps cartesian products out of plans like EQ6b,
// where a selective but disjoint pattern would otherwise be interleaved
// before the joining one. Returns indices in execution order.
func orderPatterns(rps []resolvedPattern, initial varset) []int {
	n := len(rps)
	used := make([]bool, n)
	var order []int
	bound := initial
	anyBound := initial != 0
	for len(order) < n {
		best := -1
		bestJoined, bestUnbound, bestEst := false, 99, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			joined := !anyBound || rps[i].qp.vars()&bound != 0
			ub := rps[i].unboundCount(bound)
			est := rps[i].estConst
			better := false
			switch {
			case best < 0:
				better = true
			case joined != bestJoined:
				better = joined
			case ub != bestUnbound:
				better = ub < bestUnbound
			default:
				better = est < bestEst
			}
			if better {
				best, bestJoined, bestUnbound, bestEst = i, joined, ub, est
			}
		}
		used[best] = true
		order = append(order, best)
		bound |= rps[best].qp.vars()
		anyBound = anyBound || bound != 0
	}
	return order
}

// defaultHashJoinMinInput is the default number of input bindings that
// must stream through a pattern before the executor considers switching
// from index nested-loop join to a hash join built from a full pattern
// scan. This mirrors the paper's plans: selective node/edge queries
// stay on NLJ, while multi-hop traversals and triangle counting switch
// to hash joins with full scans. Tunable per engine via
// Engine.HashJoinThreshold for the Tables 5–9 crossover ablation.
const defaultHashJoinMinInput = 1024

// hashState is the lazily built hash table of one BGP join step. It is
// shared by the serial driver and all parallel workers: built flips to
// true only after table is fully populated (the atomic store publishes
// the map), so a reader that observes built==true probes a complete
// table, while readers that still see false keep using the index NLJ
// against the same snapshot order — the two access paths emit rows in
// the same order for the store's index geometry, so the switch point is
// invisible in the output (DESIGN.md §10).
// hashState's guarded fields are written only under mu inside
// buildHash; after built flips to true they are immutable and probe
// paths read them lock-free behind the built.Load() publication
// barrier (those reads carry justified suppressions).
type hashState struct {
	mu    sync.Mutex
	built atomic.Bool
	// var slots in the outer binding forming the join key
	//pgrdf:guardedby mu
	keySlots []int
	// 0=S,1=P,2=O,3=G
	//pgrdf:guardedby mu
	keyPos []int
	//pgrdf:guardedby mu
	table map[[4]store.ID][]store.IDQuad
}

// keyOf projects a quad onto the join key chosen at build time.
//
//pgrdf:locks mu
func (hs *hashState) keyOf(q store.IDQuad) [4]store.ID {
	var key [4]store.ID
	vals := [4]store.ID{q.S, q.P, q.C, q.G}
	for i, pos := range hs.keyPos {
		key[i] = vals[pos]
	}
	return key
}

// bgpShared is the state of one BGP evaluation shared across the serial
// driver and all its parallel workers: resolved patterns, join order,
// filter placement, the lazily built hash tables, and the per-step
// input counters that drive the adaptive NLJ/hash switch.
type bgpShared struct {
	ec           *execCtx
	rps          []resolvedPattern
	order        []int
	filterAt     [][]*filterOp
	finalFilters []*filterOp
	hashes       []hashState
	inputSeen    []atomic.Int64

	// Profiling slots, resolved once per apply invocation: bgpStage is
	// the operator's own slot, stepStats[depth] the slot of the join
	// step executed at that depth (stage ids follow execution order).
	// Both are nil when profiling is off.
	bgpStage  *profStage
	stepStats []*profStage
}

// stepStat returns the profiling slot for a join step, nil-safe.
func (sh *bgpShared) stepStat(depth int) *profStage {
	if sh.stepStats == nil {
		return nil
	}
	return sh.stepStats[depth]
}

// bgpWalker is the per-goroutine execution state walking the join tree:
// its own undo stack and row sink over a binding it owns exclusively.
type bgpWalker struct {
	sh    *bgpShared
	undos []undoList
	emit  func(binding) bool
}

func (w *bgpWalker) emitRow(b binding) bool {
	ec := w.sh.ec
	for _, f := range w.sh.finalFilters {
		v, err := evalBool(ec, f.cond, b)
		if err != nil || !v {
			return true
		}
	}
	return w.emit(b)
}

// step advances the join recursion by one pattern. It is the serial
// executor verbatim; parallel workers run the same code over disjoint
// morsels of the first step's scan.
func (w *bgpWalker) step(depth int, b binding) bool {
	sh := w.sh
	ec := sh.ec
	// Cooperative cancellation: the guard latches its error and the
	// recursion unwinds; the source reports it on return.
	if !ec.guard.poll() {
		return false
	}
	for _, f := range sh.filterAt[depth] {
		v, err := evalBool(ec, f.cond, b)
		if err != nil || !v {
			return true // filtered out; keep going
		}
	}
	if depth == len(sh.order) {
		return w.emitRow(b)
	}
	rp := &sh.rps[sh.order[depth]]
	hs := &sh.hashes[depth]
	pst := sh.stepStat(depth)
	seen := sh.inputSeen[depth].Add(1)

	// Decide whether to (lazily) switch this step to a hash join.
	if !hs.built.Load() && !ec.noHashJoin && seen > int64(ec.hashMin) &&
		rp.estConst < 64*int(seen) {
		sh.buildHash(depth, rp, b)
	}

	if hs.built.Load() {
		var key [4]store.ID
		usable := true
		//pgrdfvet:ignore guardedby -- keySlots is frozen before built.Store(true); built.Load() above is the publication barrier
		for i, slot := range hs.keySlots {
			if b[slot] == store.NoID {
				usable = false // heterogeneous boundness: NLJ fallback
				break
			}
			key[i] = b[slot]
		}
		if usable {
			var probes int64 // flushed in one atomic per probe loop
			//pgrdfvet:ignore guardedby -- table is immutable after built.Store(true); built.Load() above is the publication barrier
			for _, q := range hs.table[key] {
				if !rp.bindQuad(b, q, &w.undos[depth]) {
					continue
				}
				probes++
				// Probed rows bypass ec.scan, so they tick the guard
				// here to stay inside the bindings budget.
				if !ec.guard.tick() {
					w.undos[depth].revert(b)
					pst.addProbes(probes)
					return false
				}
				// Re-check non-key bound positions (vars bound after
				// the table was built are validated by bindQuad).
				cont := w.step(depth+1, b)
				w.undos[depth].revert(b)
				if !cont {
					pst.addProbes(probes)
					return false
				}
			}
			pst.addProbes(probes)
			return true
		}
	}

	// Index nested-loop join. Profiling counts into locals and flushes
	// once after the scan: one guard tick was charged per scanned row.
	stopped := false
	var scanned, emitted int64
	ec.scan(rp.boundPattern(b), func(q store.IDQuad) bool {
		scanned++
		if !rp.matchesGraphCtx(q) {
			return true
		}
		if !rp.bindQuad(b, q, &w.undos[depth]) {
			return true
		}
		emitted++
		cont := w.step(depth+1, b)
		w.undos[depth].revert(b)
		if !cont {
			stopped = true
			return false
		}
		return true
	})
	pst.addTicks(scanned)
	pst.addRows(emitted)
	return !stopped
}

// buildHash populates the hash table for one join step. The first
// binding to cross the threshold builds (partitioned across workers
// when the parallel budget allows); concurrent workers crossing the
// threshold block on the mutex and then probe the finished table, while
// workers still under the threshold keep using NLJ.
func (sh *bgpShared) buildHash(depth int, rp *resolvedPattern, b binding) {
	hs := &sh.hashes[depth]
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.built.Load() {
		return
	}
	ec := sh.ec
	// Join key: pattern var positions currently bound in b.
	addKey := func(pos int, r posRef) {
		if r.isVar && b[r.slot] != store.NoID {
			hs.keySlots = append(hs.keySlots, r.slot)
			hs.keyPos = append(hs.keyPos, pos)
		}
	}
	addKey(0, rp.qp.s)
	addKey(1, rp.qp.p)
	addKey(2, rp.qp.o)
	if rp.qp.g.kind == GraphVar {
		addKey(3, posRef{isVar: true, slot: rp.qp.g.slot})
	}
	hs.table = make(map[[4]store.ID][]store.IDQuad)
	pst := sh.stepStat(depth)
	if ec.parallelism > 1 && ec.parallelHashBuild(rp, hs, pst) {
		hs.built.Store(true)
		return
	}
	var scanned int64 // build-side scan rows are guard-charged too
	ec.scan(rp.constPattern(), func(q store.IDQuad) bool {
		scanned++
		if !rp.matchesGraphCtx(q) {
			return true
		}
		key := hs.keyOf(q)
		hs.table[key] = append(hs.table[key], q)
		return true
	})
	pst.addTicks(scanned)
	hs.built.Store(true)
}

// newShared builds the per-evaluation shared state of a BGP: resolved
// patterns, join order, filter placement and profiling slots. It
// reports ok=false when a constant term does not occur in the
// dictionary (the BGP can have no solutions).
func (o *bgpOp) newShared(ec *execCtx) (*bgpShared, bool) {
	rps := o.resolve(ec)
	for _, rp := range rps {
		if rp.missing {
			return nil, false // a constant term does not occur: no solutions
		}
	}
	order := orderPatterns(rps, 0)

	// Place filters at the earliest position where their variables
	// are all bound; filters never bound become final filters.
	bound := varset(0)
	filterAt := make([][]*filterOp, len(order)+1)
	placed := make([]bool, len(o.filters))
	for step, oi := range order {
		bound |= rps[oi].qp.vars()
		for fi, f := range o.filters {
			if !placed[fi] && f.need&^bound == 0 {
				filterAt[step+1] = append(filterAt[step+1], f)
				placed[fi] = true
			}
		}
	}
	var finalFilters []*filterOp
	for fi, f := range o.filters {
		if !placed[fi] {
			finalFilters = append(finalFilters, f)
		}
	}

	sh := &bgpShared{
		ec:           ec,
		rps:          rps,
		order:        order,
		filterAt:     filterAt,
		finalFilters: finalFilters,
		hashes:       make([]hashState, len(order)),
		inputSeen:    make([]atomic.Int64, len(order)),
	}
	if ec.prof != nil && o.sid > 0 {
		// Join step i runs under stage id sid+1+i (execution order,
		// matching explain and the profile tree).
		sh.bgpStage = ec.prof.stage(o.sid)
		sh.stepStats = make([]*profStage, len(order))
		for i := range order {
			sh.stepStats[i] = ec.prof.stage(o.sid + 1 + i)
		}
	}
	return sh, true
}

// foldStepStats folds the per-step input counters and the NLJ→hash
// switch flags into the profile once per evaluation.
func (sh *bgpShared) foldStepStats() {
	if sh.stepStats == nil {
		return
	}
	for i := range sh.order {
		if st := sh.stepStats[i]; st != nil {
			st.rowsIn.Add(sh.inputSeen[i].Load())
			if sh.hashes[i].built.Load() {
				st.hashJoin.Store(true)
			}
		}
	}
}

func (o *bgpOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		sh, ok := o.newShared(ec)
		if !ok {
			return nil
		}
		w := &bgpWalker{sh: sh, undos: make([]undoList, len(sh.order)), emit: yield}
		err := in(func(b binding) bool {
			if sh.bgpStage != nil {
				sh.bgpStage.rowsIn.Add(1)
			}
			if ec.parallelism > 1 {
				if handled, cont := sh.tryParallel(b, yield); handled {
					return cont
				}
			}
			return w.step(0, b)
		})
		sh.foldStepStats()
		if err == nil && ec.guard != nil {
			err = ec.guard.Err()
		}
		return err
	}
}

func (o *bgpOp) explain(e *explainer) {
	rps := o.resolve(e.ec)
	order := orderPatterns(rps, 0)
	e.printf("BGP (%d patterns):", len(o.patterns))
	e.indent++
	bound := varset(0)
	for i, oi := range order {
		rp := rps[oi]
		var boundCols []store.Col
		describe := func(col store.Col, r posRef) {
			if !r.isVar || bound.has(r.slot) {
				boundCols = append(boundCols, col)
			}
		}
		describe(store.ColS, rp.qp.s)
		describe(store.ColP, rp.qp.p)
		describe(store.ColC, rp.qp.o)
		switch rp.qp.g.kind {
		case GraphTerm:
			boundCols = append(boundCols, store.ColG)
		case GraphVar:
			if bound.has(rp.qp.g.slot) {
				boundCols = append(boundCols, store.ColG)
			}
		}
		spec := e.ec.st.ChooseIndexByBound(boundCols)
		cols := make([]string, len(boundCols))
		for j, c := range boundCols {
			cols[j] = c.String()
		}
		access := "full index scan"
		if len(boundCols) > 0 {
			access = "index range scan"
		}
		e.printf("%d: %s  [%s bound] index=%s (%s) est=%d",
			i+1, rp.qp.text, strings.Join(cols, ","), spec, access, rp.estConst)
		bound |= rp.qp.vars()
	}
	for range o.filters {
		e.printf("filter (pushed to earliest bound position)")
	}
	e.indent--
}

// ---------------------------------------------------------------------
// Filter, Bind, Values
// ---------------------------------------------------------------------

type filterOp struct {
	opStage
	cond compiledExpr
	need varset
	text string
}

func (o *filterOp) bound(before varset) varset { return before }

func (o *filterOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		return in(func(b binding) bool {
			v, err := evalBool(ec, o.cond, b)
			if err != nil || !v {
				return true
			}
			return yield(b)
		})
	}
}

func (o *filterOp) explain(e *explainer) { e.printf("Filter") }

type bindOp struct {
	opStage
	expr compiledExpr
	slot int
}

func (o *bindOp) bound(before varset) varset { return before.with(o.slot) }

func (o *bindOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		return in(func(b binding) bool {
			t, err := o.expr.eval(ec, b)
			if err != nil {
				// Expression errors leave the variable unbound.
				return yield(b)
			}
			old := b[o.slot]
			b[o.slot] = ec.intern(t)
			cont := yield(b)
			b[o.slot] = old
			return cont
		})
	}
}

func (o *bindOp) explain(e *explainer) { e.printf("Bind ?%s", e.ec.vt.names[o.slot]) }

type valuesOp struct {
	opStage
	slots []int
	rows  [][]rdf.Term
}

func (o *valuesOp) bound(before varset) varset {
	v := before
	for _, s := range o.slots {
		v = v.with(s)
	}
	return v
}

func (o *valuesOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		// Resolve row terms once.
		ids := make([][]store.ID, len(o.rows))
		for i, row := range o.rows {
			ids[i] = make([]store.ID, len(row))
			for j, t := range row {
				if t.IsZero() {
					ids[i][j] = store.NoID // UNDEF
				} else {
					ids[i][j] = ec.intern(t)
				}
			}
		}
		return in(func(b binding) bool {
			for _, row := range ids {
				var undo []int
				ok := true
				for j, slot := range o.slots {
					v := row[j]
					if v == store.NoID {
						continue // UNDEF joins with anything
					}
					if b[slot] == store.NoID {
						b[slot] = v
						undo = append(undo, slot)
					} else if b[slot] != v {
						ok = false
						break
					}
				}
				cont := true
				if ok {
					cont = yield(b)
				}
				for _, s := range undo {
					b[s] = store.NoID
				}
				if !cont {
					return false
				}
			}
			return true
		})
	}
}

func (o *valuesOp) explain(e *explainer) { e.printf("Values (%d rows)", len(o.rows)) }

// ---------------------------------------------------------------------
// Union, Optional, Minus
// ---------------------------------------------------------------------

type unionOp struct {
	opStage
	branches [][]op
}

func (o *unionOp) bound(before varset) varset {
	// Only vars bound in EVERY branch are guaranteed.
	var all varset
	for i, br := range o.branches {
		v := pipelineVars(br)
		if i == 0 {
			all = v
		} else {
			all &= v
		}
	}
	return before | all
}

func (o *unionOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		var innerErr error
		err := in(func(b binding) bool {
			for _, br := range o.branches {
				src := runPipeline(ec, br, singleton(b))
				stopped := false
				if innerErr = src(func(out binding) bool {
					if !yield(out) {
						stopped = true
						return false
					}
					return true
				}); innerErr != nil {
					return false
				}
				if stopped {
					return false
				}
			}
			return true
		})
		if innerErr != nil {
			return innerErr
		}
		return err
	}
}

func (o *unionOp) explain(e *explainer) {
	e.printf("Union (%d branches):", len(o.branches))
	e.indent++
	for _, br := range o.branches {
		for _, sub := range br {
			sub.explain(e)
		}
	}
	e.indent--
}

// singleton yields one borrowed binding.
func singleton(b binding) source {
	return func(yield func(binding) bool) error {
		yield(b)
		return nil
	}
}

type optionalOp struct {
	opStage
	inner     []op
	innerVars varset
}

func (o *optionalOp) bound(before varset) varset { return before }

func (o *optionalOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		var innerErr error
		err := in(func(b binding) bool {
			matched := false
			src := runPipeline(ec, o.inner, singleton(b))
			stopped := false
			if innerErr = src(func(out binding) bool {
				matched = true
				if !yield(out) {
					stopped = true
					return false
				}
				return true
			}); innerErr != nil {
				return false
			}
			if stopped {
				return false
			}
			if !matched {
				return yield(b)
			}
			return true
		})
		if innerErr != nil {
			return innerErr
		}
		return err
	}
}

func (o *optionalOp) explain(e *explainer) {
	e.printf("Optional:")
	e.indent++
	for _, sub := range o.inner {
		sub.explain(e)
	}
	e.indent--
}

type minusOp struct {
	opStage
	inner     []op
	innerVars varset
}

func (o *minusOp) bound(before varset) varset { return before }

func (o *minusOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		var innerErr error
		err := in(func(b binding) bool {
			// MINUS only removes when the domains share a bound var.
			shared := false
			for _, slot := range sortedSlots(o.innerVars) {
				if slot < len(b) && b[slot] != store.NoID {
					shared = true
					break
				}
			}
			if !shared {
				return yield(b)
			}
			found := false
			src := runPipeline(ec, o.inner, singleton(b))
			if innerErr = src(func(binding) bool {
				found = true
				return false
			}); innerErr != nil {
				return false
			}
			if found {
				return true
			}
			return yield(b)
		})
		if innerErr != nil {
			return innerErr
		}
		return err
	}
}

func (o *minusOp) explain(e *explainer) {
	e.printf("Minus:")
	e.indent++
	for _, sub := range o.inner {
		sub.explain(e)
	}
	e.indent--
}

// ---------------------------------------------------------------------
// Sub-select
// ---------------------------------------------------------------------

type subselectOp struct {
	opStage
	plan  *compiled
	outer []int // outer slots for the projected vars
	inner []int // inner projection slots
}

func (o *subselectOp) bound(before varset) varset {
	v := before
	for _, s := range o.outer {
		v = v.with(s)
	}
	return v
}

func (o *subselectOp) apply(ec *execCtx, in source) source {
	return func(yield func(binding) bool) error {
		// Evaluate the sub-select once, independently (SPARQL bottom-up
		// semantics), then join with the input stream.
		subCtx := ec.child(o.plan.vt)
		rows, err := evalSelect(subCtx, o.plan)
		if err != nil {
			return err
		}
		// Materialized rows hold term IDs per projected column.
		mat := make([][]store.ID, len(rows))
		for i, r := range rows {
			ids := make([]store.ID, len(o.inner))
			for j := range o.inner {
				if r[j].IsZero() {
					ids[j] = store.NoID
				} else {
					ids[j] = ec.intern(r[j])
				}
			}
			mat[i] = ids
		}
		return in(func(b binding) bool {
			for _, row := range mat {
				var undo []int
				ok := true
				for j, slot := range o.outer {
					v := row[j]
					if v == store.NoID {
						continue
					}
					if b[slot] == store.NoID {
						b[slot] = v
						undo = append(undo, slot)
					} else if b[slot] != v {
						ok = false
						break
					}
				}
				cont := true
				if ok {
					cont = yield(b)
				}
				for _, s := range undo {
					b[s] = store.NoID
				}
				if !cont {
					return false
				}
			}
			return true
		})
	}
}

func (o *subselectOp) explain(e *explainer) {
	e.printf("SubSelect (join on projected vars):")
	e.indent++
	sub := &explainer{ec: e.ec.child(o.plan.vt), indent: e.indent}
	for _, sop := range o.plan.pipeline {
		sop.explain(sub)
	}
	e.b.WriteString(sub.b.String())
	e.indent--
}

// ---------------------------------------------------------------------
// Select evaluation (grouping, ordering, projection)
// ---------------------------------------------------------------------

// evalSelect runs a compiled select and materializes the projected rows
// as terms (zero Term = unbound).
//
// Aggregating queries are evaluated streaming: solutions are folded into
// group accumulators as they are produced, never materialized — this is
// what makes the paper's EQ11d/e path-counting queries (hundreds of
// millions of solution rows at full scale) feasible.
func evalSelect(ec *execCtx, cp *compiled) ([][]rdf.Term, error) {
	// LIMIT 0 can never produce a row: short-circuit before touching
	// the pipeline so no scan, guard tick or clone happens at all.
	if cp.limit == 0 {
		return nil, nil
	}
	width := len(cp.vt.names)
	// The batch path may fan morsel results in unordered when nothing
	// downstream observes row order (DESIGN.md §15).
	ec.unordered = orderInsensitive(cp)
	bs := vectorTail(ec, cp.pipeline, width)
	var src source
	if bs == nil {
		src = runPipeline(ec, cp.pipeline, unitSource(width))
	}

	var solutions []binding
	if cp.grouping {
		gst := ec.profStage(cp.groupSid)
		start := profNow(gst)
		var err error
		if bs != nil {
			solutions, err = groupSolutionsBatch(ec, cp, bs)
		} else {
			solutions, err = groupSolutions(ec, cp, src)
		}
		if err != nil {
			return nil, err
		}
		profDone(gst, start, len(solutions))
	} else {
		// Plain SELECT with LIMIT and no ORDER BY / DISTINCT /
		// projection expressions can stop as soon as enough rows exist.
		budget := -1
		if cp.limit >= 0 && len(cp.orderBy) == 0 && !cp.distinct && !hasProjExprs(cp) {
			budget = cp.offset + cp.limit
		}
		// Both consumers below materialize each solution and then apply
		// the same caps: MaxRows bounds what the query may materialize,
		// before DISTINCT or OFFSET/LIMIT shrink it — a resource cap,
		// not a result-shaping knob — and budget stops a plain LIMIT
		// query as soon as enough rows exist (mid-batch included).
		if bs != nil {
			err := finishGuard(ec, bs(func(cb *colBatch) bool {
				for i := 0; i < cb.n; i++ {
					b := make(binding, width)
					cb.materialize(i, b)
					solutions = append(solutions, b)
					if !ec.guard.checkRows(len(solutions)) {
						return false
					}
					if budget >= 0 && len(solutions) >= budget {
						return false
					}
				}
				return true
			}))
			if err != nil {
				return nil, err
			}
		} else if err := finishGuard(ec, src(func(b binding) bool {
			solutions = append(solutions, b.clone())
			if !ec.guard.checkRows(len(solutions)) {
				return false
			}
			return budget < 0 || len(solutions) < budget
		})); err != nil {
			return nil, err
		}
	}

	// Extended projection (expressions with AS).
	for _, pr := range cp.projection {
		if pr.expr == nil {
			continue
		}
		if _, isSlot := pr.expr.(*exprSlot); isSlot && cp.grouping {
			continue // aggregate already materialized into the slot
		}
		for _, b := range solutions {
			t, err := pr.expr.eval(ec, b)
			if err != nil {
				b[pr.slot] = store.NoID
				continue
			}
			b[pr.slot] = ec.intern(t)
		}
	}

	// ORDER BY.
	if len(cp.orderBy) > 0 {
		sst := ec.profStage(cp.sortSid)
		sortStart := profNow(sst)
		keys := make([][]rdf.Term, len(solutions))
		for i, b := range solutions {
			row := make([]rdf.Term, len(cp.orderBy))
			for j, ok := range cp.orderBy {
				t, err := ok.expr.eval(ec, b)
				if err == nil {
					row[j] = t
				}
			}
			keys[i] = row
		}
		idx := make([]int, len(solutions))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, c int) bool {
			ka, kc := keys[idx[a]], keys[idx[c]]
			for j, ok := range cp.orderBy {
				cmp := orderCompare(ka[j], kc[j])
				if ok.desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		sorted := make([]binding, len(solutions))
		for i, ix := range idx {
			sorted[i] = solutions[ix]
		}
		solutions = sorted
		profDone(sst, sortStart, len(solutions))
	}

	// Project.
	pst := ec.profStage(cp.projSid)
	projStart := profNow(pst)
	rows := make([][]rdf.Term, 0, len(solutions))
	var seen map[string]struct{}
	if cp.distinct {
		seen = make(map[string]struct{})
	}
	for _, b := range solutions {
		row := make([]rdf.Term, len(cp.projection))
		for j, pr := range cp.projection {
			if pr.slot < len(b) && b[pr.slot] != store.NoID {
				row[j] = ec.term(b[pr.slot])
			}
		}
		if cp.distinct {
			key := rowKey(row)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
		}
		rows = append(rows, row)
	}

	// OFFSET / LIMIT.
	if cp.offset > 0 {
		if cp.offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[cp.offset:]
		}
	}
	if cp.limit >= 0 && cp.limit < len(rows) {
		rows = rows[:cp.limit]
	}
	profDone(pst, projStart, len(rows))
	return rows, nil
}

func hasProjExprs(cp *compiled) bool {
	for _, pr := range cp.projection {
		if pr.expr != nil {
			return true
		}
	}
	return false
}

func rowKey(row []rdf.Term) string {
	var sb strings.Builder
	for _, t := range row {
		sb.WriteString(t.String())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count   int64
	sum     rdf.Value
	sumOK   bool
	min     rdf.Term
	max     rdf.Term
	sample  rdf.Term
	concat  []string
	seen    map[string]struct{} // DISTINCT
	started bool
}

// groupData is one group's representative binding and aggregate states.
type groupData struct {
	rep    binding
	states []*aggState
}

// groupAcc folds solutions into per-group aggregate states — the
// accumulator shared by the row (groupSolutions) and batch
// (groupSolutionsBatch) grouping paths, so both produce identical
// groups in identical order.
type groupAcc struct {
	ec     *execCtx
	cp     *compiled
	groups map[string]*groupData
	order  []string
	// single is the implicit group when there is no GROUP BY: the key
	// map is skipped entirely — path counting queries like EQ11e fold
	// hundreds of millions of rows into one group.
	single *groupData
	keyBuf strings.Builder
}

func newGroupAcc(ec *execCtx, cp *compiled) *groupAcc {
	acc := &groupAcc{ec: ec, cp: cp, groups: make(map[string]*groupData)}
	if len(cp.groupBy) == 0 {
		acc.single = acc.newGroup(nil)
		acc.groups[""] = acc.single
		acc.order = append(acc.order, "")
	}
	return acc
}

func (acc *groupAcc) keyOf(b binding) string {
	acc.keyBuf.Reset()
	for _, ge := range acc.cp.groupBy {
		// Group keys of plain variables hash by ID, not lexical form.
		if vs, isVar := ge.(*exprSlot); isVar {
			fmt.Fprintf(&acc.keyBuf, "#%d", b[vs.slot])
		} else if t, err := ge.eval(acc.ec, b); err == nil {
			acc.keyBuf.WriteString(t.String())
		}
		acc.keyBuf.WriteByte('\x00')
	}
	return acc.keyBuf.String()
}

func (acc *groupAcc) newGroup(b binding) *groupData {
	// Representative keeps only GROUP BY variables.
	rep := make(binding, len(acc.cp.vt.names))
	for _, ge := range acc.cp.groupBy {
		if vs, isVar := ge.(*exprSlot); isVar {
			rep[vs.slot] = b[vs.slot]
		}
	}
	gd := &groupData{rep: rep, states: make([]*aggState, len(acc.cp.aggregates))}
	for i := range gd.states {
		gd.states[i] = &aggState{}
	}
	return gd
}

// add folds one solution into its group, returning false when the
// guard's row cap latches (new-group creation counts against MaxRows).
// The binding is only read during the call, so callers may reuse it.
func (acc *groupAcc) add(b binding) bool {
	ec, cp := acc.ec, acc.cp
	gd := acc.single
	if gd == nil {
		key := acc.keyOf(b)
		var ok bool
		gd, ok = acc.groups[key]
		if !ok {
			if !ec.guard.checkRows(len(acc.groups) + 1) {
				return false
			}
			gd = acc.newGroup(b)
			acc.groups[key] = gd
			acc.order = append(acc.order, key)
		}
	}
	for i, agg := range cp.aggregates {
		st := gd.states[i]
		// Fast path: COUNT(?v) only needs boundness, no term.
		if agg.fn == "COUNT" && !agg.distinct {
			if agg.arg == nil {
				st.count++
				continue
			}
			if vs, isVar := agg.arg.(*exprSlot); isVar {
				if vs.slot < len(b) && b[vs.slot] != store.NoID {
					st.count++
				}
				continue
			}
		}
		var val rdf.Term
		if agg.arg != nil {
			t, err := agg.arg.eval(ec, b)
			if err != nil {
				continue // error values do not contribute
			}
			val = t
		}
		if agg.distinct {
			if st.seen == nil {
				st.seen = make(map[string]struct{})
			}
			k := val.String()
			if _, dup := st.seen[k]; dup {
				continue
			}
			st.seen[k] = struct{}{}
		}
		accumulate(st, agg, val)
	}
	return true
}

// finish materializes the groups: aggregate results interned into the
// representative bindings, HAVING applied, first-seen group order.
func (acc *groupAcc) finish() []binding {
	ec, cp := acc.ec, acc.cp
	out := make([]binding, 0, len(acc.groups))
	for _, key := range acc.order {
		gd := acc.groups[key]
		for i, agg := range cp.aggregates {
			t, ok := finishAgg(gd.states[i], agg)
			if ok {
				gd.rep[agg.slot] = ec.intern(t)
			}
		}
		keep := true
		for _, h := range cp.having {
			v, err := evalBool(ec, h, gd.rep)
			if err != nil || !v {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, gd.rep)
		}
	}
	return out
}

// groupSolutions consumes the source and folds each solution into its
// group's aggregate states, returning one representative binding per
// group with the aggregate result slots filled.
func groupSolutions(ec *execCtx, cp *compiled, src source) ([]binding, error) {
	acc := newGroupAcc(ec, cp)
	if err := finishGuard(ec, src(acc.add)); err != nil {
		return nil, err
	}
	return acc.finish(), nil
}

func accumulate(st *aggState, agg compiledAgg, val rdf.Term) {
	switch agg.fn {
	case "COUNT":
		st.count++
	case "SUM", "AVG":
		v, ok := rdf.LiteralValue(val)
		if !ok || !v.IsNumeric() {
			return
		}
		st.count++
		if !st.started {
			st.sum, st.started, st.sumOK = v, true, true
			return
		}
		kind := rdf.PromoteNumeric(st.sum.Kind, v.Kind)
		if kind == rdf.ValueInteger {
			st.sum = rdf.Value{Kind: kind, Int: st.sum.Int + v.Int}
		} else {
			st.sum = rdf.Value{Kind: kind, Flt: st.sum.Float() + v.Float()}
		}
	case "MIN", "MAX":
		if !st.started {
			st.min, st.max, st.started = val, val, true
			return
		}
		if orderCompare(val, st.min) < 0 {
			st.min = val
		}
		if orderCompare(val, st.max) > 0 {
			st.max = val
		}
	case "SAMPLE":
		if !st.started {
			st.sample, st.started = val, true
		}
	case "GROUP_CONCAT":
		st.concat = append(st.concat, val.Value)
	}
}

func finishAgg(st *aggState, agg compiledAgg) (rdf.Term, bool) {
	switch agg.fn {
	case "COUNT":
		return rdf.NewInteger(st.count), true
	case "SUM":
		if !st.sumOK {
			return rdf.NewInteger(0), true
		}
		return rdf.NumericLiteral(st.sum), true
	case "AVG":
		if st.count == 0 {
			return rdf.NewInteger(0), true
		}
		return rdf.NumericLiteral(rdf.Value{Kind: rdf.ValueDouble, Flt: st.sum.Float() / float64(st.count)}), true
	case "MIN":
		return st.min, st.started
	case "MAX":
		return st.max, st.started
	case "SAMPLE":
		return st.sample, st.started
	case "GROUP_CONCAT":
		return rdf.NewLiteral(strings.Join(st.concat, " ")), true
	default:
		return rdf.Term{}, false
	}
}
