package sparql

// regressionInputs pins queries that previously made FuzzParseAndExec
// fail — a parser panic or an executor panic recovered as ErrInternal.
// Each entry is fed back as a fuzz seed so the bug cannot silently
// return.
var regressionInputs = []string{
	// A byte >= 0x80 decoding to a non-name rune made the lexer emit a
	// zero-width identifier token without advancing, so lex() looped
	// forever appending tokens until the process was killed. Both the
	// invalid-UTF-8 and the valid-but-non-letter forms are pinned.
	"PREFIX key: \xea\xea\xea<http://pg/k/>\nSELECT ?y WHERE { ?x ?p ?y }",
	"SELECT • WHERE { ?s ?p ?o }",
}
