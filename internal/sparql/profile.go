package sparql

// Per-operator execution profiling (DESIGN.md §11).
//
// A compiled plan is numbered once (numberStages): every operator —
// and, inside a BGP, every join step — owns one slot in a flat,
// preallocated array of atomic counters (queryProfile). Profiling is
// opt-in per query: when execCtx.prof is nil the executor pays a
// single predictable branch per site and allocates nothing, so the
// serial-identical parallel guarantees and the bench numbers are
// unaffected. When enabled, the counters record actual rows in/out,
// guard ticks (rows produced by scans and hash probes — exactly the
// events the query guard charges against Budget.MaxBindings), morsel
// counts and inclusive wall time; parallel workers update the same
// slots through atomics.
//
// After execution, buildProfile walks the static plan and pairs each
// operator with its counters, producing the ProfileNode tree that
// backs Engine.QueryProfiled, EXPLAIN ANALYZE text rendering, and the
// slow-query log's JSON profile attachment.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// profStage is one operator's (or join step's) slot of live counters.
// All fields are atomics: parallel workers update them concurrently.
type profStage struct {
	invocations atomic.Int64 // times the operator's source was driven
	rowsIn      atomic.Int64 // bindings entering the operator / step
	rowsOut     atomic.Int64 // bindings emitted downstream
	ticks       atomic.Int64 // guard ticks (scanned + hash-probed rows)
	wall        atomic.Int64 // inclusive nanoseconds across invocations
	morsels     atomic.Int64 // scan partitions / parallel work items
	hashJoin    atomic.Bool  // the step switched from NLJ to hash join
}

// queryProfile is the per-query counter array, indexed by stage id
// (slot 0 is unused: sid 0 marks unnumbered operators).
type queryProfile struct {
	stages []profStage
}

func newQueryProfile(nstages int) *queryProfile {
	return &queryProfile{stages: make([]profStage, nstages+1)}
}

// stage returns the slot for a stage id, or nil when the id is outside
// the numbered plan (EXISTS sub-pipelines run with sid 0).
func (p *queryProfile) stage(sid int) *profStage {
	if p == nil || sid <= 0 || sid >= len(p.stages) {
		return nil
	}
	return &p.stages[sid]
}

// instrument wraps an operator's source with row and wall-time
// accounting. Wall time is inclusive — it covers upstream production
// and downstream consumption of the stream, like the actual times of a
// conventional EXPLAIN ANALYZE — and accumulates across invocations
// (operators nested under UNION/OPTIONAL re-run per outer binding).
func (p *queryProfile) instrument(sid int, src source) source {
	st := p.stage(sid)
	if st == nil {
		return src
	}
	return func(yield func(binding) bool) error {
		st.invocations.Add(1)
		start := time.Now()
		var rows int64
		err := src(func(b binding) bool {
			rows++
			return yield(b)
		})
		st.rowsOut.Add(rows)
		st.wall.Add(int64(time.Since(start)))
		return err
	}
}

// addTicks / addRows / addProbes fold a batch of locally-counted
// events into the slot. The executor's hot loops count into plain
// locals and flush once per scan, so profiling costs one atomic per
// scan rather than several per row. All are nil-safe no-ops.
func (st *profStage) addTicks(n int64) {
	if st != nil && n != 0 {
		st.ticks.Add(n)
	}
}

func (st *profStage) addRows(n int64) {
	if st != nil && n != 0 {
		st.rowsOut.Add(n)
	}
}

// addProbes records hash-probe hits, which count as both guard ticks
// and emitted rows.
func (st *profStage) addProbes(n int64) {
	if st != nil && n != 0 {
		st.ticks.Add(n)
		st.rowsOut.Add(n)
	}
}

// profStage is a convenience lookup through the context.
func (ec *execCtx) profStage(sid int) *profStage {
	if ec.prof == nil {
		return nil
	}
	return ec.prof.stage(sid)
}

// profNow / profDone bracket a tail phase (grouping, ordering,
// projection) that runs as a materialized pass rather than a stream.
func profNow(st *profStage) time.Time {
	if st == nil {
		return time.Time{}
	}
	return time.Now()
}

func profDone(st *profStage, start time.Time, rows int) {
	if st == nil {
		return
	}
	st.invocations.Add(1)
	st.rowsOut.Add(int64(rows))
	st.wall.Add(int64(time.Since(start)))
}

// ---------------------------------------------------------------------
// The materialized profile tree.
// ---------------------------------------------------------------------

// Profile is the executed-plan profile of one SELECT query: the static
// plan annotated with per-operator actuals. It is returned by
// Engine.QueryProfiled, rendered by Render for EXPLAIN ANALYZE, and
// attached as JSON to slow-query log records.
type Profile struct {
	Dataset   string         `json:"dataset"`
	Parallel  bool           `json:"parallel"`
	WallNanos int64          `json:"wall_ns"`
	Rows      int            `json:"rows"`
	Plan      []*ProfileNode `json:"plan"`
}

// ProfileNode is one operator (or BGP join step, or tail phase) of the
// profile tree.
type ProfileNode struct {
	Label       string         `json:"label"`
	Index       string         `json:"index,omitempty"`
	Access      string         `json:"access,omitempty"`
	Est         int64          `json:"est,omitempty"`
	Invocations int64          `json:"invocations,omitempty"`
	RowsIn      int64          `json:"rows_in"`
	RowsOut     int64          `json:"rows_out"`
	GuardTicks  int64          `json:"guard_ticks,omitempty"`
	Morsels     int64          `json:"morsels,omitempty"`
	WallNanos   int64          `json:"wall_ns"`
	HashJoin    bool           `json:"hash_join,omitempty"`
	Children    []*ProfileNode `json:"children,omitempty"`
}

// load fills a node's counters from a stage slot (nil-safe).
func (n *ProfileNode) load(st *profStage) *ProfileNode {
	if st == nil {
		return n
	}
	n.Invocations = st.invocations.Load()
	n.RowsIn = st.rowsIn.Load()
	n.RowsOut = st.rowsOut.Load()
	n.GuardTicks = st.ticks.Load()
	n.Morsels = st.morsels.Load()
	n.WallNanos = st.wall.Load()
	n.HashJoin = st.hashJoin.Load()
	return n
}

// buildProfile pairs the numbered plan with the collected counters.
func buildProfile(ec *execCtx, cp *compiled, model string, wall time.Duration, rows int) *Profile {
	p := &Profile{
		Dataset:   datasetName(model),
		Parallel:  ec.parallelFlagged != nil && ec.parallelFlagged.Load(),
		WallNanos: int64(wall),
		Rows:      rows,
	}
	p.Plan = profilePlan(ec, cp)
	return p
}

// profilePlan builds nodes for a plan's pipeline plus its tail phases
// (grouping, ordering, projection).
func profilePlan(ec *execCtx, cp *compiled) []*ProfileNode {
	nodes := profileOps(ec, cp.pipeline)
	// Tail phases consume the last pipeline stage's output.
	lastOut := int64(0)
	if len(nodes) > 0 {
		lastOut = nodes[len(nodes)-1].RowsOut
	}
	if cp.grouping {
		n := (&ProfileNode{
			Label: fmt.Sprintf("GroupAggregate (%d keys, %d aggregates)", len(cp.groupBy), len(cp.aggregates)),
		}).load(ec.profStage(cp.groupSid))
		n.RowsIn = lastOut
		lastOut = n.RowsOut
		nodes = append(nodes, n)
	}
	if len(cp.orderBy) > 0 {
		n := (&ProfileNode{
			Label: fmt.Sprintf("OrderBy (%d keys)", len(cp.orderBy)),
		}).load(ec.profStage(cp.sortSid))
		n.RowsIn = lastOut
		lastOut = n.RowsOut
		nodes = append(nodes, n)
	}
	label := "Project"
	if cp.distinct {
		label = "Project (distinct)"
	}
	if cp.offset > 0 || cp.limit >= 0 {
		label += fmt.Sprintf(" (offset=%d limit=%d)", cp.offset, cp.limit)
	}
	n := (&ProfileNode{Label: label}).load(ec.profStage(cp.projSid))
	n.RowsIn = lastOut
	nodes = append(nodes, n)
	return nodes
}

// profileOps builds one node per pipeline operator, chaining rows-in
// from the previous operator's rows-out where the operator does not
// count its own input.
func profileOps(ec *execCtx, ops []op) []*ProfileNode {
	nodes := make([]*ProfileNode, 0, len(ops))
	for _, o := range ops {
		var n *ProfileNode
		switch x := o.(type) {
		case *bgpOp:
			n = profileBGP(ec, x)
		case *filterOp:
			n = (&ProfileNode{Label: "Filter"}).load(ec.profStage(x.sid))
		case *bindOp:
			n = (&ProfileNode{Label: "Bind ?" + ec.vt.names[x.slot]}).load(ec.profStage(x.sid))
		case *valuesOp:
			n = (&ProfileNode{Label: fmt.Sprintf("Values (%d rows)", len(x.rows))}).load(ec.profStage(x.sid))
		case *unionOp:
			n = (&ProfileNode{Label: fmt.Sprintf("Union (%d branches)", len(x.branches))}).load(ec.profStage(x.sid))
			for _, br := range x.branches {
				n.Children = append(n.Children, profileOps(ec, br)...)
			}
		case *optionalOp:
			n = (&ProfileNode{Label: "Optional"}).load(ec.profStage(x.sid))
			n.Children = profileOps(ec, x.inner)
		case *minusOp:
			n = (&ProfileNode{Label: "Minus"}).load(ec.profStage(x.sid))
			n.Children = profileOps(ec, x.inner)
		case *subselectOp:
			n = (&ProfileNode{Label: "SubSelect (join on projected vars)"}).load(ec.profStage(x.sid))
			n.Children = profilePlan(ec.child(x.plan.vt), x.plan)
		case *pathOp:
			kind := "*"
			switch {
			case x.min == 1 && x.max == 0:
				kind = "+"
			case x.max == 1:
				kind = "?"
			}
			n = (&ProfileNode{Label: fmt.Sprintf("PathClosure (%s, BFS, distinct nodes)", kind)}).load(ec.profStage(x.sid))
		default:
			n = (&ProfileNode{Label: fmt.Sprintf("%T", o)}).load(ec.profStage(o.stageID()))
		}
		if n.RowsIn == 0 && len(nodes) > 0 {
			n.RowsIn = nodes[len(nodes)-1].RowsOut
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// profileBGP builds the BGP node with one child per join step, in the
// deterministic execution order (the same order explain prints).
func profileBGP(ec *execCtx, o *bgpOp) *ProfileNode {
	n := (&ProfileNode{Label: fmt.Sprintf("BGP (%d patterns)", len(o.patterns))}).load(ec.profStage(o.sid))
	for i, d := range bgpStepDescs(ec, o) {
		c := (&ProfileNode{
			Label:  fmt.Sprintf("%d: %s  [%s bound]", i+1, d.text, d.boundCols),
			Index:  d.index,
			Access: d.access,
			Est:    int64(d.est),
		}).load(ec.profStage(o.sid + 1 + i))
		n.Children = append(n.Children, c)
	}
	for range o.filters {
		n.Children = append(n.Children, &ProfileNode{Label: "filter (pushed to earliest bound position)"})
	}
	return n
}

// stepDesc is the static description of one BGP join step, shared by
// the textual explain and the profile tree so the two always agree.
type stepDesc struct {
	text      string
	boundCols string
	index     string
	access    string
	est       int
}

// bgpStepDescs recomputes the deterministic join order and per-step
// index choice for a BGP, exactly as execution does.
func bgpStepDescs(ec *execCtx, o *bgpOp) []stepDesc {
	rps := o.resolve(ec)
	order := orderPatterns(rps, 0)
	out := make([]stepDesc, 0, len(order))
	bound := varset(0)
	for _, oi := range order {
		rp := rps[oi]
		var boundCols []store.Col
		describe := func(col store.Col, r posRef) {
			if !r.isVar || bound.has(r.slot) {
				boundCols = append(boundCols, col)
			}
		}
		describe(store.ColS, rp.qp.s)
		describe(store.ColP, rp.qp.p)
		describe(store.ColC, rp.qp.o)
		switch rp.qp.g.kind {
		case GraphTerm:
			boundCols = append(boundCols, store.ColG)
		case GraphVar:
			if bound.has(rp.qp.g.slot) {
				boundCols = append(boundCols, store.ColG)
			}
		}
		spec := ec.st.ChooseIndexByBound(boundCols)
		cols := make([]string, len(boundCols))
		for j, c := range boundCols {
			cols[j] = c.String()
		}
		access := "full index scan"
		if len(boundCols) > 0 {
			access = "index range scan"
		}
		out = append(out, stepDesc{
			text:      rp.qp.text,
			boundCols: strings.Join(cols, ","),
			index:     spec,
			access:    access,
			est:       rp.estConst,
		})
		bound |= rp.qp.vars()
	}
	return out
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE text rendering.
// ---------------------------------------------------------------------

// Render formats the profile as EXPLAIN ANALYZE text: the static plan
// shape with an "(actual: ...)" annotation per operator.
func (p *Profile) Render() string {
	var sb strings.Builder
	mode := "serial"
	if p.Parallel {
		mode = "parallel"
	}
	fmt.Fprintf(&sb, "Select (dataset=%s)  (actual: rows=%d wall=%s mode=%s)\n",
		p.Dataset, p.Rows, time.Duration(p.WallNanos).Round(time.Microsecond), mode)
	renderNodes(&sb, p.Plan, 1)
	return sb.String()
}

func renderNodes(sb *strings.Builder, nodes []*ProfileNode, indent int) {
	for _, n := range nodes {
		sb.WriteString(strings.Repeat("  ", indent))
		sb.WriteString(n.Label)
		if n.Index != "" {
			fmt.Fprintf(sb, " index=%s (%s) est=%d", n.Index, n.Access, n.Est)
		}
		fmt.Fprintf(sb, "  (actual: in=%d out=%d", n.RowsIn, n.RowsOut)
		if n.GuardTicks > 0 {
			fmt.Fprintf(sb, " ticks=%d", n.GuardTicks)
		}
		if n.Morsels > 0 {
			fmt.Fprintf(sb, " morsels=%d", n.Morsels)
		}
		if n.HashJoin {
			sb.WriteString(" join=hash")
		}
		if n.Invocations > 1 {
			fmt.Fprintf(sb, " loops=%d", n.Invocations)
		}
		fmt.Fprintf(sb, " wall=%s)\n", time.Duration(n.WallNanos).Round(time.Microsecond))
		renderNodes(sb, n.Children, indent+1)
	}
}
