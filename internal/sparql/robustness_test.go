package sparql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// TestParserNeverPanics mutates valid queries at random and checks the
// parser returns an error (or a query) without panicking — a cheap
// fuzzing pass over the grammar.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		testPrologue + `SELECT ?x WHERE { ?x rel:follows ?y }`,
		testPrologue + `SELECT ?x (COUNT(*) AS ?c) WHERE { GRAPH ?g { ?x ?p ?y FILTER (isLiteral(?y)) } } GROUP BY ?x ORDER BY DESC(?c) LIMIT 3`,
		testPrologue + `ASK { ?x rel:knows/rel:follows* ?y }`,
		testPrologue + `CONSTRUCT { ?x ?p ?y } WHERE { { ?x ?p ?y } UNION { ?y ?p ?x } }`,
		testPrologue + `SELECT * WHERE { VALUES (?a ?b) { (1 "x") (UNDEF true) } OPTIONAL { ?a ?b ?c } }`,
	}
	mutations := []func(string, *rand.Rand) string{
		func(s string, r *rand.Rand) string { // delete a byte
			if len(s) < 2 {
				return s
			}
			i := r.Intn(len(s))
			return s[:i] + s[i+1:]
		},
		func(s string, r *rand.Rand) string { // duplicate a byte
			if s == "" {
				return s
			}
			i := r.Intn(len(s))
			return s[:i] + string(s[i]) + s[i:]
		},
		func(s string, r *rand.Rand) string { // swap in a random delimiter
			if s == "" {
				return s
			}
			chars := ";.{}()?<>\"'@^|/*+-"
			i := r.Intn(len(s))
			return s[:i] + string(chars[r.Intn(len(chars))]) + s[i+1:]
		},
		func(s string, r *rand.Rand) string { // truncate
			if s == "" {
				return s
			}
			return s[:r.Intn(len(s))]
		},
	}
	rng := rand.New(rand.NewSource(2014))
	for trial := 0; trial < 3000; trial++ {
		q := seeds[rng.Intn(len(seeds))]
		for m := 0; m < 1+rng.Intn(3); m++ {
			q = mutations[rng.Intn(len(mutations))](q, rng)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", q, p)
				}
			}()
			Parse(q)       //nolint:errcheck — errors are expected
			ParseUpdate(q) //nolint:errcheck
		}()
	}
}

// TestExecutionNeverPanicsOnValidQueries runs randomly generated valid
// queries against a small dataset, checking evaluation robustness.
func TestExecutionNeverPanicsOnValidQueries(t *testing.T) {
	st := fig1Store(t)
	e := NewEngine(st)
	rng := rand.New(rand.NewSource(7))
	pos := func() string {
		opts := []string{"?a", "?b", "?c", "<http://pg/v1>", "<http://pg/e3>", `"Amy"`, "23"}
		return opts[rng.Intn(len(opts))]
	}
	pred := func() string {
		opts := []string{"?p", "<http://pg/r/follows>", "<http://pg/k/name>", "<http://pg/k/age>",
			"<http://pg/r/follows>/<http://pg/r/follows>", "(<http://pg/r/follows>|<http://pg/r/knows>)"}
		return opts[rng.Intn(len(opts))]
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		sb.WriteString("SELECT * WHERE { ")
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			subj := pos()
			for strings.HasPrefix(subj, `"`) || subj == "23" {
				subj = pos() // subjects must be resources
			}
			sb.WriteString(subj + " " + pred() + " " + pos() + " . ")
		}
		if rng.Intn(3) == 0 {
			sb.WriteString("FILTER (isLiteral(?a) || ?b > 1) ")
		}
		sb.WriteString("}")
		q := sb.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("execution panicked on %q: %v", q, p)
				}
			}()
			res, err := e.Query("", q)
			if err == nil && res == nil {
				t.Fatalf("nil results without error for %q", q)
			}
		}()
	}
}

// TestWideBindings ensures queries near the variable limit work and the
// limit is enforced cleanly.
func TestWideBindings(t *testing.T) {
	st := store.New()
	st.Load("m", []rdf.Quad{{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://a")}})
	var sb strings.Builder
	sb.WriteString("SELECT * WHERE { ")
	for i := 0; i < 60; i++ {
		sb.WriteString("?a <http://p> ?a . ")
	}
	sb.WriteString("}")
	if _, err := NewEngine(st).Query("", sb.String()); err != nil {
		t.Fatalf("60-pattern query failed: %v", err)
	}

	sb.Reset()
	sb.WriteString("SELECT * WHERE { ")
	for i := 0; i < 70; i++ {
		sb.WriteString("?v")
		sb.WriteString(strings.Repeat("x", i%3+1))
		sb.WriteString(string(rune('a'+i%26)) + string(rune('a'+(i/26))))
		sb.WriteString(" <http://p> ?o . ")
	}
	sb.WriteString("}")
	if _, err := NewEngine(st).Query("", sb.String()); err == nil {
		t.Error("query with > 64 variables should be rejected")
	}
}
