package sparql

// Morsel-driven intra-query parallelism (DESIGN.md §10).
//
// The engine parallelizes the scan-heavy plan shapes the paper singles
// out as expensive (multi-hop traversals and triangle counting, Tables
// 5–9): the driving scan of a BGP is snapshotted and split into
// contiguous morsels, a small worker pool claims morsels from a shared
// counter (work stealing), and every worker runs the ordinary serial
// join pipeline over its morsel — probing the shared, lazily built hash
// tables. Completed rows travel back to the coordinating goroutine in
// per-morsel channels and are merged strictly in morsel order, so the
// emitted row order is byte-identical to the serial executor's.
//
// Workers honor the guard exactly like the serial path: every scanned
// row ticks the shared (atomic) guard, every recursion step polls it,
// and the first violation from any worker latches and unwinds all of
// them. Worker goroutines always exit before the driving operator
// returns — there is no detached work — which the leak-gauge tests
// assert via Engine.ParallelStats().ActiveWorkers and OpenCursors.

import (
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

const (
	// parallelScanMinRows is the minimum estimated size of a BGP's
	// driving scan before the executor fans it out to workers; below
	// it, snapshot + goroutine overhead dominates the work.
	parallelScanMinRows = 2048
	// morselsPerWorker cuts morsels finer than the worker count so
	// stragglers rebalance through the shared claim counter.
	morselsPerWorker = 4
	// emitChunkRows is how many completed rows a worker batches per
	// channel send to the order-preserving merger.
	emitChunkRows = 64
	// tickBatchRows is how many scanned rows a hash-build worker
	// accumulates before ticking the shared guard in one tickN batch.
	tickBatchRows = 1024
	// parallelBFSMinFrontier is the path-search frontier width below
	// which expansion stays serial.
	parallelBFSMinFrontier = 64
)

// parallelStats are the engine's cumulative intra-query parallelism
// counters, surfaced through /stats and Engine.ParallelStats.
type parallelStats struct {
	queries       atomic.Int64 // queries that ran at least one parallel stage
	workers       atomic.Int64 // worker goroutines launched
	morsels       atomic.Int64 // morsels (scan partitions) executed
	hashBuilds    atomic.Int64 // partitioned hash-table builds
	activeWorkers atomic.Int64 // live worker goroutines (leak gauge)
}

// markParallel flags the current query as parallel (once) and records
// a worker-pool launch.
func (ec *execCtx) markParallel(workers, morsels int) {
	if ec.pstats == nil {
		return
	}
	if ec.parallelFlagged != nil && ec.parallelFlagged.CompareAndSwap(false, true) {
		ec.pstats.queries.Add(1)
	}
	ec.pstats.workers.Add(int64(workers))
	ec.pstats.morsels.Add(int64(morsels))
}

// workerEnter / workerExit bracket every worker goroutine for the
// active-worker leak gauge.
func (ec *execCtx) workerEnter() {
	if ec.pstats != nil {
		ec.pstats.activeWorkers.Add(1)
	}
}

func (ec *execCtx) workerExit() {
	if ec.pstats != nil {
		ec.pstats.activeWorkers.Add(-1)
	}
}

// acquireWorkers claims up to want worker slots from the query's budget
// without blocking; the caller must release what it got. Nested
// parallel stages (a path closure inside a BGP morsel, a sub-select)
// therefore degrade to serial execution instead of oversubscribing.
func (ec *execCtx) acquireWorkers(want int) int {
	if ec.slots == nil {
		return 0
	}
	got := 0
	for got < want {
		select {
		case ec.slots <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

func (ec *execCtx) releaseWorkers(n int) {
	for i := 0; i < n; i++ {
		<-ec.slots
	}
}

// snapshot materializes the rows matching p (restricted to the
// dataset's models where the restriction can be pushed into the
// pattern) as a cursor, polling the guard first so a tripped query
// never pays for the materialization. A multi-model subset cannot be
// pushed down; workers filter those rows via rowVisible.
func (ec *execCtx) snapshot(p store.Pattern) *store.Cursor {
	if !ec.guard.poll() {
		return nil
	}
	if ec.models != nil && ec.singleModel != store.NoID {
		p.M = ec.singleModel
	}
	return ec.st.Cursor(p)
}

// rowVisible applies the dataset restriction a snapshot could not push
// down into its pattern.
func (ec *execCtx) rowVisible(q store.IDQuad) bool {
	if ec.models == nil || ec.singleModel != store.NoID {
		return true
	}
	_, ok := ec.models[q.M]
	return ok
}

// tryParallel attempts to evaluate one input binding of a BGP by
// fanning the first join step's scan out to workers. It reports
// handled=false when the scan is too small or no worker slots are free,
// in which case the caller falls back to the serial walker.
func (sh *bgpShared) tryParallel(b binding, yield func(binding) bool) (handled, cont bool) {
	ec := sh.ec
	if len(sh.order) == 0 {
		return false, true
	}
	if !ec.guard.poll() {
		return true, false
	}
	for _, f := range sh.filterAt[0] {
		v, err := evalBool(ec, f.cond, b)
		if err != nil || !v {
			return true, true // filtered out, like the serial step(0, b)
		}
	}
	rp := &sh.rps[sh.order[0]]
	pat := rp.boundPattern(b)
	// Uncached estimate: bound patterns can carry per-query overlay IDs
	// (VALUES/BIND terms), which must not leak into the shared cache.
	if ec.st.EstimateCount(pat) < parallelScanMinRows {
		return false, true
	}
	workers := ec.acquireWorkers(ec.parallelism)
	if workers < 2 {
		ec.releaseWorkers(workers)
		return false, true
	}
	defer ec.releaseWorkers(workers)
	// The driver replaces the serial step(0, b) for this binding; keep
	// the step-0 input accounting consistent for later serial bindings.
	sh.inputSeen[0].Add(1)
	return true, sh.runParallel(b, rp, pat, workers, yield)
}

// runParallel executes one input binding's join tree with a partitioned
// first-step scan and order-preserving merge. It returns false when the
// consumer stopped or the guard tripped.
func (sh *bgpShared) runParallel(b binding, rp *resolvedPattern, pat store.Pattern, workers int, yield func(binding) bool) bool {
	ec := sh.ec
	cur := ec.snapshot(pat)
	if cur == nil {
		return false // guard tripped before the snapshot
	}
	morsels := cur.Partitions(workers * morselsPerWorker)
	ec.markParallel(workers, len(morsels))
	if sh.bgpStage != nil {
		sh.bgpStage.morsels.Add(int64(len(morsels)))
	}

	outs := make([]chan []binding, len(morsels))
	for i := range outs {
		outs[i] = make(chan []binding, 2)
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		stopOnce sync.Once
		stopped  = make(chan struct{})
		wg       sync.WaitGroup
	)
	halt := func() {
		stop.Store(true)
		stopOnce.Do(func() { close(stopped) })
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ec.workerEnter()
			defer ec.workerExit()
			wk := &bgpWalker{sh: sh, undos: make([]undoList, len(sh.order))}
			base := b.clone()
			for !stop.Load() {
				k := int(next.Add(1) - 1)
				if k >= len(morsels) {
					return
				}
				sh.processMorsel(wk, base, rp, morsels[k], outs[k], stopped, &stop)
			}
		}()
	}

	// Merge: drain the per-morsel channels strictly in morsel order, so
	// emission order equals the order of one serial scan over the same
	// snapshot. Bounded channels give backpressure; a consumer stop
	// closes `stopped`, which unblocks any worker mid-send.
	ok := true
merge:
	for _, ch := range outs {
		for chunk := range ch {
			for _, row := range chunk {
				if !yield(row) {
					ok = false
					halt()
					break merge
				}
			}
		}
	}
	halt()
	wg.Wait()
	// Workers close the morsels they claimed; release the rest.
	claimed := int(next.Load())
	if claimed > len(morsels) {
		claimed = len(morsels)
	}
	for _, m := range morsels[claimed:] {
		m.Close()
	}
	if ec.guard.Err() != nil {
		return false
	}
	return ok
}

// processMorsel runs the serial join pipeline over one morsel of the
// first step's scan, batching completed rows to the merger. It always
// closes the morsel cursor and its output channel.
func (sh *bgpShared) processMorsel(wk *bgpWalker, base binding, rp *resolvedPattern, cur *store.Cursor, out chan<- []binding, stopped <-chan struct{}, stop *atomic.Bool) {
	defer close(out)
	defer cur.Close()
	ec := sh.ec
	pst := sh.stepStat(0)
	chunk := make([]binding, 0, emitChunkRows)
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		select {
		case out <- chunk:
			chunk = make([]binding, 0, emitChunkRows)
			return true
		case <-stopped:
			return false
		}
	}
	wk.emit = func(row binding) bool {
		chunk = append(chunk, row.clone())
		if len(chunk) < emitChunkRows {
			return true
		}
		return flush()
	}
	var undo undoList
	// Profiling counts into locals, flushed in one atomic per morsel.
	var scanned, emitted int64
	defer func() {
		pst.addTicks(scanned)
		pst.addRows(emitted)
	}()
	for {
		if stop.Load() {
			return
		}
		q, more := cur.Next()
		if !more {
			break
		}
		if !ec.rowVisible(q) {
			continue
		}
		// Tick per row exactly like (*execCtx).scan does serially.
		if !ec.guard.tick() {
			return
		}
		scanned++
		if !rp.matchesGraphCtx(q) {
			continue
		}
		if !rp.bindQuad(base, q, &undo) {
			continue
		}
		emitted++
		cont := wk.step(1, base)
		undo.revert(base)
		if !cont {
			return
		}
	}
	flush()
}

// parallelHashBuild populates hs.table from a partitioned snapshot of
// the pattern's constant-bound scan. Each worker builds a partial table
// over its partition; partials are merged in partition order, so every
// bucket's row order equals the serially built bucket's. Budget ticks
// are batched through guard.tickN. Reports false when no worker slots
// were free (the caller then builds serially). Called with hs.mu held.
//
//pgrdf:locks hs.mu
func (ec *execCtx) parallelHashBuild(rp *resolvedPattern, hs *hashState, pst *profStage) bool {
	workers := ec.acquireWorkers(ec.parallelism)
	if workers < 2 {
		ec.releaseWorkers(workers)
		return false
	}
	defer ec.releaseWorkers(workers)
	cur := ec.snapshot(rp.constPattern())
	if cur == nil {
		return true // guard tripped; the empty table unwinds with it
	}
	parts := cur.Partitions(workers)
	ec.markParallel(workers, len(parts))
	if ec.pstats != nil {
		ec.pstats.hashBuilds.Add(1)
	}
	if pst != nil {
		pst.morsels.Add(int64(len(parts)))
	}
	partials := make([]map[[4]store.ID][]store.IDQuad, len(parts))
	var wg sync.WaitGroup
	for i, pc := range parts {
		wg.Add(1)
		go func(i int, pc *store.Cursor) {
			defer wg.Done()
			ec.workerEnter()
			defer ec.workerExit()
			defer pc.Close()
			m := make(map[[4]store.ID][]store.IDQuad)
			pending := 0
			for {
				q, more := pc.Next()
				if !more {
					break
				}
				if !ec.rowVisible(q) {
					continue
				}
				pending++
				if pending >= tickBatchRows {
					if !ec.guard.tickN(pending) {
						return
					}
					if pst != nil {
						pst.ticks.Add(int64(pending))
					}
					pending = 0
				}
				if !rp.matchesGraphCtx(q) {
					continue
				}
				//pgrdfvet:ignore guardedby -- keyPos is frozen by buildHash (which holds hs.mu) before workers start
				key := hs.keyOf(q)
				m[key] = append(m[key], q)
			}
			if !ec.guard.tickN(pending) {
				return
			}
			if pst != nil {
				pst.ticks.Add(int64(pending))
			}
			partials[i] = m
		}(i, pc)
	}
	wg.Wait()
	for _, m := range partials {
		if m == nil {
			continue // worker aborted: the guard has latched, the query unwinds
		}
		for k, rows := range m {
			hs.table[k] = append(hs.table[k], rows...)
		}
	}
	return true
}
