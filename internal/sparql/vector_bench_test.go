package sparql

import (
	"testing"

	"repro/internal/store"
)

// Microbenchmark kernels comparing the row-at-a-time pipeline against
// the vectorized batch executor on the three hot loops: raw pattern
// scan, hash-table probe, and filter evaluation. Run via
// `make bench-micro`.
//
// Each kernel is a COUNT query so the measured work is operator
// execution, not result materialization; the row variant sets
// DisableVectorized on an otherwise identical engine.

// benchStore is built once and shared across kernels: a random
// follows-graph big enough that scans span many batches.
var benchStore *store.Store

func kernelStore(b *testing.B) *store.Store {
	if benchStore == nil {
		benchStore = egoNetStore(b, 2000, 8) // 16k quads
	}
	return benchStore
}

func runKernel(b *testing.B, q string, hashMin int) {
	st := kernelStore(b)
	for _, mode := range []struct {
		name string
		row  bool
	}{{"row", true}, {"batch", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := NewEngine(st)
			e.Parallelism = 1
			e.DisableVectorized = mode.row
			if hashMin != 0 {
				e.HashJoinThreshold = hashMin
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query("", testPrologue+q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanKernel: single-pattern scan, the tightest loop — every
// quad flows through quadVisible + bind + emit.
func BenchmarkScanKernel(b *testing.B) {
	runKernel(b, `SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b }`, 0)
}

// BenchmarkHashProbeKernel: two-hop join with the hash build forced on
// early, so the inner loop is hash probes rather than index scans.
func BenchmarkHashProbeKernel(b *testing.B) {
	runKernel(b, `SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`, 16)
}

// BenchmarkNestedLoopKernel: the same two-hop join with hash joins
// disabled — measures the batched bound-pattern rescan path.
func BenchmarkNestedLoopKernel(b *testing.B) {
	st := kernelStore(b)
	q := `SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b . ?b rel:follows ?c }`
	for _, mode := range []struct {
		name string
		row  bool
	}{{"row", true}, {"batch", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := NewEngine(st)
			e.Parallelism = 1
			e.DisableVectorized = mode.row
			e.DisableHashJoin = true
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query("", testPrologue+q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterKernel: scan plus a cheap predicate — measures the
// selection-vector compaction against per-row filter dispatch.
func BenchmarkFilterKernel(b *testing.B) {
	runKernel(b, `SELECT (COUNT(*) AS ?n) WHERE { ?a rel:follows ?b . FILTER(?a != ?b) }`, 0)
}
