package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// bigChainStore builds a graph large enough to push intermediate
// cardinalities past the hash-join switch threshold.
func bigChainStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	rng := rand.New(rand.NewSource(31))
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	n := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/n%d", i)) }
	var quads []rdf.Quad
	const nodes = 400
	for i := 0; i < nodes*16; i++ {
		quads = append(quads, rdf.Quad{S: n(rng.Intn(nodes)), P: follows, O: n(rng.Intn(nodes))})
	}
	if _, err := st.Load("m", quads); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHashJoinMatchesNLJ verifies the adaptive executor's hash-join
// switch is invisible: large multi-hop queries return the same answers
// with hash joins enabled and with forced pure NLJ.
func TestHashJoinMatchesNLJ(t *testing.T) {
	st := bigChainStore(t)
	queries := []string{
		`PREFIX r: <http://pg/r/> SELECT (COUNT(*) AS ?c) WHERE { ?x r:follows ?y . ?y r:follows ?z }`,
		`PREFIX r: <http://pg/r/> SELECT (COUNT(*) AS ?c) WHERE { ?x r:follows ?y . ?y r:follows ?z . ?z r:follows ?x }`,
		`PREFIX r: <http://pg/r/> SELECT (COUNT(?w) AS ?c) WHERE { ?x r:follows ?y . ?y r:follows ?z . ?z r:follows ?w }`,
	}
	adaptive := NewEngine(st)
	nljOnly := NewEngine(st)
	nljOnly.DisableHashJoin = true
	for _, q := range queries {
		a, err := adaptive.Query("", q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := nljOnly.Query("", q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows[0][0].Value != b.Rows[0][0].Value {
			t.Errorf("adaptive %s != nlj %s for %s", a.Rows[0][0].Value, b.Rows[0][0].Value, q)
		}
		if a.Rows[0][0].Value == "0" {
			t.Errorf("degenerate zero count for %s", q)
		}
	}
}

// TestHashJoinMatchesNLJRows compares full row sets (not just counts)
// on a projection query that crosses the switch threshold.
func TestHashJoinMatchesNLJRows(t *testing.T) {
	st := bigChainStore(t)
	q := `PREFIX r: <http://pg/r/> SELECT DISTINCT ?x ?z WHERE { ?x r:follows ?y . ?y r:follows ?z }`
	adaptive := NewEngine(st)
	nljOnly := NewEngine(st)
	nljOnly.DisableHashJoin = true
	a, err := adaptive.Query("", q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nljOnly.Query("", q)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := rowSet(a), rowSet(b)
	if ra != rb {
		t.Errorf("row sets differ: %d vs %d distinct rows", a.Len(), b.Len())
	}
}

func rowSet(r *Results) string {
	var rows []string
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, t := range row {
			parts[i] = t.String()
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestHashJoinWithGraphContext crosses the threshold inside a GRAPH
// clause, checking quads with named graphs survive the hash path.
func TestHashJoinWithGraphContext(t *testing.T) {
	st := store.New()
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	n := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/n%d", i)) }
	e := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://pg/e%d", i)) }
	var quads []rdf.Quad
	const nodes = 120
	id := 0
	for i := 0; i < nodes; i++ {
		for j := 0; j < 20; j++ {
			quads = append(quads, rdf.NewQuad(n(i), follows, n((i+j+1)%nodes), e(id)))
			id++
		}
	}
	if _, err := st.Load("m", quads); err != nil {
		t.Fatal(err)
	}
	q := `PREFIX r: <http://pg/r/> SELECT (COUNT(*) AS ?c) WHERE {
		GRAPH ?g1 { ?x r:follows ?y } GRAPH ?g2 { ?y r:follows ?z } }`
	adaptive := NewEngine(st)
	nljOnly := NewEngine(st)
	nljOnly.DisableHashJoin = true
	a, err := adaptive.Query("", q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nljOnly.Query("", q)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(nodes * 20 * 20)
	if a.Rows[0][0].Value != want || b.Rows[0][0].Value != want {
		t.Errorf("counts: adaptive=%s nlj=%s want %s", a.Rows[0][0].Value, b.Rows[0][0].Value, want)
	}
}
