package sparql

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// errTypeError is the SPARQL expression type error. Filters treat it as
// false; it is not a query failure.
var errTypeError = errors.New("sparql: expression type error")

// compiledExpr is an executable expression.
type compiledExpr interface {
	eval(ec *execCtx, b binding) (rdf.Term, error)
	visitSlots(func(int))
}

type exprSlot struct{ slot int }

func (e *exprSlot) eval(ec *execCtx, b binding) (rdf.Term, error) {
	if e.slot >= len(b) || b[e.slot] == store.NoID {
		return rdf.Term{}, errTypeError
	}
	return ec.term(b[e.slot]), nil
}
func (e *exprSlot) visitSlots(f func(int)) { f(e.slot) }

type exprConst struct{ term rdf.Term }

func (e *exprConst) eval(*execCtx, binding) (rdf.Term, error) { return e.term, nil }
func (e *exprConst) visitSlots(func(int))                     {}

// expr compiles an expression that may not contain aggregates.
func (c *compiler) expr(e Expr) (compiledExpr, error) {
	switch x := e.(type) {
	case ExprVar:
		return &exprSlot{slot: c.vt.slot(x.Name)}, nil
	case ExprTerm:
		return &exprConst{term: x.Term}, nil
	case ExprBinary:
		l, err := c.expr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(x.Right)
		if err != nil {
			return nil, err
		}
		return &exprBinaryC{op: x.Op, left: l, right: r}, nil
	case ExprUnary:
		in, err := c.expr(x.Inner)
		if err != nil {
			return nil, err
		}
		return &exprUnaryC{op: x.Op, inner: in}, nil
	case ExprCall:
		args := make([]compiledExpr, len(x.Args))
		for i, a := range x.Args {
			ca, err := c.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = ca
		}
		return &exprCallC{name: x.Name, args: args}, nil
	case ExprAggregate:
		return nil, fmt.Errorf("sparql: aggregate %s not allowed here", x.Func)
	case ExprExists:
		pipeline, err := c.group(x.Group)
		if err != nil {
			return nil, err
		}
		return &exprExistsC{negate: x.Negate, pipeline: pipeline, vars: pipelineVars(pipeline)}, nil
	default:
		return nil, fmt.Errorf("sparql: unsupported expression %T", e)
	}
}

// exprExistsC implements FILTER (NOT) EXISTS: the inner pipeline is
// evaluated correlated with the current binding (shared variable scope),
// and the filter tests whether any solution exists.
type exprExistsC struct {
	negate   bool
	pipeline []op
	vars     varset
}

func (e *exprExistsC) visitSlots(f func(int)) {
	for _, slot := range sortedSlots(e.vars) {
		f(slot)
	}
}

func (e *exprExistsC) eval(ec *execCtx, b binding) (rdf.Term, error) {
	found := false
	src := runPipeline(ec, e.pipeline, singleton(b))
	if err := src(func(binding) bool {
		found = true
		return false
	}); err != nil {
		return rdf.Term{}, errTypeError
	}
	return rdf.NewBoolean(found != e.negate), nil
}

type exprBinaryC struct {
	op          string
	left, right compiledExpr
}

func (e *exprBinaryC) visitSlots(f func(int)) {
	e.left.visitSlots(f)
	e.right.visitSlots(f)
}

func (e *exprBinaryC) eval(ec *execCtx, b binding) (rdf.Term, error) {
	switch e.op {
	case "||", "&&":
		lv, lerr := evalBool(ec, e.left, b)
		rv, rerr := evalBool(ec, e.right, b)
		// SPARQL logical operators tolerate one-sided errors.
		if e.op == "||" {
			if lerr == nil && lv || rerr == nil && rv {
				return rdf.NewBoolean(true), nil
			}
			if lerr != nil || rerr != nil {
				return rdf.Term{}, errTypeError
			}
			return rdf.NewBoolean(false), nil
		}
		if lerr == nil && !lv || rerr == nil && !rv {
			return rdf.NewBoolean(false), nil
		}
		if lerr != nil || rerr != nil {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewBoolean(true), nil
	}
	lt, err := e.left.eval(ec, b)
	if err != nil {
		return rdf.Term{}, err
	}
	rt, err := e.right.eval(ec, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch e.op {
	case "=", "!=":
		eq, err := termsEqual(lt, rt)
		if err != nil {
			return rdf.Term{}, err
		}
		if e.op == "!=" {
			eq = !eq
		}
		return rdf.NewBoolean(eq), nil
	case "<", ">", "<=", ">=":
		cv, ok := compareTerms(lt, rt)
		if !ok {
			return rdf.Term{}, errTypeError
		}
		var res bool
		switch e.op {
		case "<":
			res = cv < 0
		case ">":
			res = cv > 0
		case "<=":
			res = cv <= 0
		default:
			res = cv >= 0
		}
		return rdf.NewBoolean(res), nil
	case "+", "-", "*", "/":
		return arith(e.op, lt, rt)
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown operator %q", e.op)
	}
}

// termsEqual implements RDFterm-equal: by value for comparable literals,
// by term identity otherwise; incomparable distinct literals of unknown
// datatypes raise a type error unless identical terms.
func termsEqual(a, b rdf.Term) (bool, error) {
	if a.IsLiteral() && b.IsLiteral() {
		av, aok := rdf.LiteralValue(a)
		bv, bok := rdf.LiteralValue(b)
		if aok && bok && av.Kind != rdf.ValueUnknown && bv.Kind != rdf.ValueUnknown {
			if c, comparable := rdf.CompareValues(av, bv); comparable {
				return c == 0, nil
			}
			return false, nil
		}
		if a.Equal(b) {
			return true, nil
		}
		return false, errTypeError
	}
	return a.Equal(b), nil
}

// compareTerms orders two terms for <,>,<=,>= : literal value comparison.
func compareTerms(a, b rdf.Term) (int, bool) {
	av, aok := rdf.LiteralValue(a)
	bv, bok := rdf.LiteralValue(b)
	if !aok || !bok {
		return 0, false
	}
	return rdf.CompareValues(av, bv)
}

// orderCompare is the ORDER BY comparator: unbound < blank < IRI <
// literal, literals by value when comparable, else by term order.
func orderCompare(a, b rdf.Term) int {
	if a.IsZero() || b.IsZero() {
		switch {
		case a.IsZero() && b.IsZero():
			return 0
		case a.IsZero():
			return -1
		default:
			return 1
		}
	}
	if a.IsLiteral() && b.IsLiteral() {
		if c, ok := compareTerms(a, b); ok {
			if c != 0 {
				return c
			}
			return rdf.Compare(a, b)
		}
	}
	return rdf.Compare(a, b)
}

func arith(op string, a, b rdf.Term) (rdf.Term, error) {
	av, aok := rdf.LiteralValue(a)
	bv, bok := rdf.LiteralValue(b)
	if !aok || !bok || !av.IsNumeric() || !bv.IsNumeric() {
		return rdf.Term{}, errTypeError
	}
	kind := rdf.PromoteNumeric(av.Kind, bv.Kind)
	if op == "/" && kind == rdf.ValueInteger {
		kind = rdf.ValueDecimal // xsd:integer division yields xsd:decimal
	}
	if kind == rdf.ValueInteger {
		var r int64
		switch op {
		case "+":
			r = av.Int + bv.Int
		case "-":
			r = av.Int - bv.Int
		case "*":
			r = av.Int * bv.Int
		}
		return rdf.NewInteger(r), nil
	}
	af, bf := av.Float(), bv.Float()
	var r float64
	switch op {
	case "+":
		r = af + bf
	case "-":
		r = af - bf
	case "*":
		r = af * bf
	case "/":
		if bf == 0 {
			return rdf.Term{}, errTypeError
		}
		r = af / bf
	}
	return rdf.NumericLiteral(rdf.Value{Kind: kind, Flt: r}), nil
}

type exprUnaryC struct {
	op    string
	inner compiledExpr
}

func (e *exprUnaryC) visitSlots(f func(int)) { e.inner.visitSlots(f) }

func (e *exprUnaryC) eval(ec *execCtx, b binding) (rdf.Term, error) {
	if e.op == "!" {
		v, err := evalBool(ec, e.inner, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(!v), nil
	}
	t, err := e.inner.eval(ec, b)
	if err != nil {
		return rdf.Term{}, err
	}
	v, ok := rdf.LiteralValue(t)
	if !ok || !v.IsNumeric() {
		return rdf.Term{}, errTypeError
	}
	if v.Kind == rdf.ValueInteger {
		return rdf.NewInteger(-v.Int), nil
	}
	return rdf.NumericLiteral(rdf.Value{Kind: v.Kind, Flt: -v.Flt}), nil
}

type exprCallC struct {
	name string
	args []compiledExpr
	re   *regexp.Regexp // cached for REGEX with constant pattern
}

func (e *exprCallC) visitSlots(f func(int)) {
	for _, a := range e.args {
		a.visitSlots(f)
	}
}

func (e *exprCallC) eval(ec *execCtx, b binding) (rdf.Term, error) {
	switch e.name {
	case "BOUND":
		slot, ok := e.args[0].(*exprSlot)
		if !ok {
			return rdf.Term{}, errTypeError
		}
		bound := slot.slot < len(b) && b[slot.slot] != store.NoID
		return rdf.NewBoolean(bound), nil
	case "COALESCE":
		for _, a := range e.args {
			if t, err := a.eval(ec, b); err == nil {
				return t, nil
			}
		}
		return rdf.Term{}, errTypeError
	case "IF":
		cond, err := evalBool(ec, e.args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		if cond {
			return e.args[1].eval(ec, b)
		}
		return e.args[2].eval(ec, b)
	}

	args := make([]rdf.Term, len(e.args))
	for i, a := range e.args {
		t, err := a.eval(ec, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = t
	}
	switch e.name {
	case "ISLITERAL":
		return rdf.NewBoolean(args[0].IsLiteral()), nil
	case "ISIRI", "ISURI":
		return rdf.NewBoolean(args[0].IsIRI()), nil
	case "ISBLANK":
		return rdf.NewBoolean(args[0].IsBlank()), nil
	case "ISNUMERIC":
		v, ok := rdf.LiteralValue(args[0])
		return rdf.NewBoolean(ok && v.IsNumeric()), nil
	case "STR":
		switch args[0].Kind {
		case rdf.KindIRI:
			return rdf.NewLiteral(args[0].Value), nil
		case rdf.KindLiteral:
			return rdf.NewLiteral(args[0].Value), nil
		default:
			return rdf.Term{}, errTypeError
		}
	case "LANG":
		if !args[0].IsLiteral() {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewLiteral(args[0].Lang), nil
	case "DATATYPE":
		if !args[0].IsLiteral() {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewIRI(args[0].DatatypeIRI()), nil
	case "SAMETERM":
		return rdf.NewBoolean(args[0].Equal(args[1])), nil
	case "IRI", "URI":
		switch args[0].Kind {
		case rdf.KindIRI:
			return args[0], nil
		case rdf.KindLiteral:
			if args[0].DatatypeIRI() != rdf.XSDString {
				return rdf.Term{}, errTypeError
			}
			return rdf.NewIRI(args[0].Value), nil
		default:
			return rdf.Term{}, errTypeError
		}
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			s, err := stringArg(a)
			if err != nil {
				return rdf.Term{}, err
			}
			sb.WriteString(s)
		}
		return rdf.NewLiteral(sb.String()), nil
	case "UCASE", "LCASE":
		s, err := stringArg(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		if e.name == "UCASE" {
			return rdf.NewLiteral(strings.ToUpper(s)), nil
		}
		return rdf.NewLiteral(strings.ToLower(s)), nil
	case "STRLEN":
		s, err := stringArg(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewInteger(int64(len([]rune(s)))), nil
	case "CONTAINS", "STRSTARTS", "STRENDS", "STRAFTER", "STRBEFORE":
		s1, err := stringArg(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		s2, err := stringArg(args[1])
		if err != nil {
			return rdf.Term{}, err
		}
		switch e.name {
		case "CONTAINS":
			return rdf.NewBoolean(strings.Contains(s1, s2)), nil
		case "STRSTARTS":
			return rdf.NewBoolean(strings.HasPrefix(s1, s2)), nil
		case "STRENDS":
			return rdf.NewBoolean(strings.HasSuffix(s1, s2)), nil
		case "STRAFTER":
			if i := strings.Index(s1, s2); i >= 0 {
				return rdf.NewLiteral(s1[i+len(s2):]), nil
			}
			return rdf.NewLiteral(""), nil
		default:
			if i := strings.Index(s1, s2); i >= 0 {
				return rdf.NewLiteral(s1[:i]), nil
			}
			return rdf.NewLiteral(""), nil
		}
	case "SUBSTR":
		if len(args) < 2 || len(args) > 3 {
			return rdf.Term{}, errTypeError
		}
		s, err := stringArg(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		sv, ok := rdf.LiteralValue(args[1])
		if !ok || sv.Kind != rdf.ValueInteger {
			return rdf.Term{}, errTypeError
		}
		runes := []rune(s)
		start := int(sv.Int) - 1 // SPARQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(runes) {
			start = len(runes)
		}
		end := len(runes)
		if len(args) == 3 {
			lv, ok := rdf.LiteralValue(args[2])
			if !ok || lv.Kind != rdf.ValueInteger {
				return rdf.Term{}, errTypeError
			}
			end = start + int(lv.Int)
			if end > len(runes) {
				end = len(runes)
			}
			if end < start {
				end = start
			}
		}
		return rdf.NewLiteral(string(runes[start:end])), nil
	case "ABS":
		v, ok := rdf.LiteralValue(args[0])
		if !ok || !v.IsNumeric() {
			return rdf.Term{}, errTypeError
		}
		if v.Kind == rdf.ValueInteger {
			if v.Int < 0 {
				return rdf.NewInteger(-v.Int), nil
			}
			return rdf.NewInteger(v.Int), nil
		}
		f := v.Float()
		if f < 0 {
			f = -f
		}
		return rdf.NumericLiteral(rdf.Value{Kind: v.Kind, Flt: f}), nil
	case "REGEX":
		if len(args) < 2 || len(args) > 3 {
			return rdf.Term{}, errTypeError
		}
		s, err := stringArg(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		pat, err := stringArg(args[1])
		if err != nil {
			return rdf.Term{}, err
		}
		if len(args) == 3 {
			flags, err := stringArg(args[2])
			if err != nil {
				return rdf.Term{}, err
			}
			if strings.Contains(flags, "i") {
				pat = "(?i)" + pat
			}
		}
		re := e.re
		if re == nil {
			var cerr error
			re, cerr = regexp.Compile(pat)
			if cerr != nil {
				return rdf.Term{}, errTypeError
			}
		}
		return rdf.NewBoolean(re.MatchString(s)), nil
	case "REPLACE":
		if len(args) != 3 {
			return rdf.Term{}, errTypeError
		}
		s, err := stringArg(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		pat, err := stringArg(args[1])
		if err != nil {
			return rdf.Term{}, err
		}
		rep, err := stringArg(args[2])
		if err != nil {
			return rdf.Term{}, err
		}
		re, cerr := regexp.Compile(pat)
		if cerr != nil {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewLiteral(re.ReplaceAllString(s, rep)), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", e.name)
	}
}

func stringArg(t rdf.Term) (string, error) {
	if t.IsLiteral() {
		return t.Value, nil
	}
	if t.IsIRI() {
		return t.Value, nil
	}
	return "", errTypeError
}

// evalBool computes the effective boolean value of an expression.
func evalBool(ec *execCtx, e compiledExpr, b binding) (bool, error) {
	t, err := e.eval(ec, b)
	if err != nil {
		return false, err
	}
	v, ok := rdf.EffectiveBoolean(t)
	if !ok {
		return false, errTypeError
	}
	return v, nil
}
