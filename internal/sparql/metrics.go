package sparql

// Engine-level query metrics (DESIGN.md §11): cheap atomic counters
// fed by every *Context entry point and snapshotted by the HTTP
// /metrics endpoint. No sampling, no locks on the hot path.

import (
	"sync/atomic"
	"time"
)

// formUpdate extends the QueryForm space with updates for metric
// labelling (QueryForm itself only covers the four query forms).
const formUpdate = int(FormDescribe) + 1

var formNames = [...]string{"select", "ask", "construct", "describe", "update"}

// latencyBucketsSeconds are the histogram upper bounds; an implicit
// +Inf bucket follows. Chosen to straddle the paper's EQ1–EQ12 range
// from sub-millisecond point lookups to multi-second traversals.
var latencyBucketsSeconds = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// formMetrics holds one query form's counters. Buckets are
// non-cumulative internally (each observation increments exactly one)
// and are converted to the cumulative Prometheus convention at
// snapshot time.
type formMetrics struct {
	queries atomic.Int64
	errors  atomic.Int64
	durSum  atomic.Int64 // total nanoseconds
	buckets [len(latencyBucketsSeconds) + 1]atomic.Int64
}

type queryMetrics struct {
	forms [formUpdate + 1]formMetrics
	slow  atomic.Int64 // queries over the slow-query threshold
}

func (m *queryMetrics) observe(form int, d time.Duration, err error) {
	if form < 0 || form >= len(m.forms) {
		return
	}
	fm := &m.forms[form]
	fm.queries.Add(1)
	if err != nil {
		fm.errors.Add(1)
	}
	fm.durSum.Add(int64(d))
	secs := d.Seconds()
	i := 0
	for ; i < len(latencyBucketsSeconds); i++ {
		if secs <= latencyBucketsSeconds[i] {
			break
		}
	}
	fm.buckets[i].Add(1)
}

// LatencyBucket is one cumulative histogram bucket: Count observations
// took at most LE seconds (LE is +Inf for the final bucket).
type LatencyBucket struct {
	LE    float64
	Count int64
}

// FormMetricsSnapshot is the point-in-time view of one query form.
type FormMetricsSnapshot struct {
	Form        string
	Queries     int64
	Errors      int64
	DurationSum float64 // seconds
	Buckets     []LatencyBucket
}

// PlanCacheStats is the point-in-time view of the compiled-plan cache.
type PlanCacheStats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// MetricsSnapshot aggregates everything the /metrics endpoint exports
// from the engine.
type MetricsSnapshot struct {
	Forms       []FormMetricsSnapshot
	SlowQueries int64
	PlanCache   PlanCacheStats
	Parallel    ParallelStatsSnapshot
}

// MetricsSnapshot returns the engine's cumulative query metrics.
func (e *Engine) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		SlowQueries: e.metrics.slow.Load(),
		PlanCache:   e.PlanCacheStats(),
		Parallel:    e.ParallelStats(),
	}
	for f := range e.metrics.forms {
		fm := &e.metrics.forms[f]
		fs := FormMetricsSnapshot{
			Form:        formNames[f],
			Queries:     fm.queries.Load(),
			Errors:      fm.errors.Load(),
			DurationSum: time.Duration(fm.durSum.Load()).Seconds(),
		}
		cum := int64(0)
		for i := range fm.buckets {
			cum += fm.buckets[i].Load()
			le := float64(0)
			if i < len(latencyBucketsSeconds) {
				le = latencyBucketsSeconds[i]
			} else {
				le = -1 // +Inf marker; renderers print "+Inf"
			}
			fs.Buckets = append(fs.Buckets, LatencyBucket{LE: le, Count: cum})
		}
		snap.Forms = append(snap.Forms, fs)
	}
	return snap
}
