package inference

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func triple(s, p, o string) rdf.Quad {
	return rdf.Quad{S: iri(s), P: iri(p), O: iri(o)}
}

func mustLoad(t *testing.T, st *store.Store, model string, quads ...rdf.Quad) {
	t.Helper()
	if _, err := st.Load(model, quads); err != nil {
		t.Fatal(err)
	}
}

func contains(st *store.Store, model string, q rdf.Quad) bool {
	return st.Contains(model, q)
}

func TestRuleValidation(t *testing.T) {
	ok := Rule{Name: "ok",
		Body: []TriplePattern{{"?x", "<http://p>", "?y"}},
		Head: []TriplePattern{{"?y", "<http://q>", "?x"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	bad := Rule{Name: "unbound",
		Body: []TriplePattern{{"?x", "<http://p>", "?y"}},
		Head: []TriplePattern{{"?z", "<http://q>", "?x"}}}
	if err := bad.Validate(); err == nil {
		t.Error("rule with unbound head var accepted")
	}
	if err := (Rule{Name: "empty"}).Validate(); err == nil {
		t.Error("empty rule accepted")
	}
	e := New(store.New())
	if err := e.AddRule(bad); err == nil {
		t.Error("AddRule accepted invalid rule")
	}
}

func TestSubPropertyEntailment(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data",
		triple("amy", "follows", "mira"),
		rdf.Quad{S: iri("follows"), P: rdf.NewIRI(rdf.RDFSSubPropertyOf), O: iri("connectedTo")},
		rdf.Quad{S: iri("connectedTo"), P: rdf.NewIRI(rdf.RDFSSubPropertyOf), O: iri("related")},
	)
	e := New(st)
	for _, r := range RDFSRules() {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Run("data", "inf", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing inferred")
	}
	if !contains(st, "inf", triple("amy", "connectedTo", "mira")) {
		t.Error("direct subproperty entailment missing")
	}
	if !contains(st, "inf", triple("amy", "related", "mira")) {
		t.Error("transitive subproperty entailment missing")
	}
}

func TestClassDomainRangeEntailment(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data",
		rdf.Quad{S: iri("tampa"), P: rdf.NewIRI(rdf.RDFType), O: iri("Port")},
		rdf.Quad{S: iri("Port"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: iri("Place")},
		rdf.Quad{S: iri("Place"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: iri("Thing")},
		triple("usa", "hasPort", "tampa"),
		rdf.Quad{S: iri("hasPort"), P: rdf.NewIRI(rdf.RDFSDomain), O: iri("Country")},
		rdf.Quad{S: iri("hasPort"), P: rdf.NewIRI(rdf.RDFSRange), O: iri("Port")},
	)
	e := New(st)
	for _, r := range RDFSRules() {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run("data", "inf", Options{}); err != nil {
		t.Fatal(err)
	}
	typ := rdf.NewIRI(rdf.RDFType)
	for _, want := range []rdf.Quad{
		{S: iri("tampa"), P: typ, O: iri("Place")},
		{S: iri("tampa"), P: typ, O: iri("Thing")},
		{S: iri("usa"), P: typ, O: iri("Country")},
	} {
		if !contains(st, "inf", want) {
			t.Errorf("missing entailment %s", want)
		}
	}
}

func TestSameAsAndEquivalentProperty(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data",
		rdf.Quad{S: iri("kw_train"), P: rdf.NewIRI(rdf.OWLSameAs), O: iri("wn_train")},
		triple("wn_train", "senseLabel", "trainSense"),
		rdf.Quad{S: iri("hasTag"), P: rdf.NewIRI(rdf.OWLEquivalentProperty), O: iri("taggedWith")},
		triple("n1", "hasTag", "kw_train"),
	)
	e := New(st)
	for _, r := range append(RDFSRules(), OWLRules()...) {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run("data", "inf", Options{}); err != nil {
		t.Fatal(err)
	}
	if !contains(st, "inf", rdf.Quad{S: iri("wn_train"), P: rdf.NewIRI(rdf.OWLSameAs), O: iri("kw_train")}) {
		t.Error("sameAs symmetry missing")
	}
	if !contains(st, "inf", triple("kw_train", "senseLabel", "trainSense")) {
		t.Error("sameAs substitution missing")
	}
	if !contains(st, "inf", triple("n1", "taggedWith", "kw_train")) {
		t.Error("equivalentProperty entailment missing")
	}
}

// TestUserDefinedPropertyChain reproduces the §5.2 Fact Book example:
// infer :hasTagR linking a node with a #Tampa tag to countries
// neighboring Tampa's country via a property chain.
func TestUserDefinedPropertyChain(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data",
		triple("node7", "hasTag", "tagTampa"),
		triple("tagTampa", "denotes", "tampa"),
		triple("usa", "ports", "tampa"),
		triple("usa", "nbr", "mexico"),
		triple("usa", "nbr", "canada"),
	)
	e := New(st)
	err := e.AddRule(Rule{
		Name: "hasTagR-via-ports-and-neighbors",
		Body: []TriplePattern{
			{"?n", "<http://x/hasTag>", "?t"},
			{"?t", "<http://x/denotes>", "?city"},
			{"?c", "<http://x/ports>", "?city"},
			{"?c", "<http://x/nbr>", "?other"},
		},
		Head: []TriplePattern{{"?n", "<http://x/hasTagR>", "?other"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Run("data", "inf", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("inferred %d, want 2", n)
	}
	if !contains(st, "inf", triple("node7", "hasTagR", "mexico")) ||
		!contains(st, "inf", triple("node7", "hasTagR", "canada")) {
		t.Error("hasTagR entailments missing")
	}
}

func TestInverseAndTransitive(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data",
		rdf.Quad{S: iri("partOf"), P: rdf.NewIRI(rdf.OWLInverseOf), O: iri("contains")},
		rdf.Quad{S: iri("partOf"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(rdf.OWLTransitiveProperty)},
		triple("a", "partOf", "b"),
		triple("b", "partOf", "c"),
	)
	e := New(st)
	for _, r := range OWLRules() {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run("data", "inf", Options{}); err != nil {
		t.Fatal(err)
	}
	if !contains(st, "inf", triple("a", "partOf", "c")) {
		t.Error("transitivity missing")
	}
	if !contains(st, "inf", triple("b", "contains", "a")) {
		t.Error("inverse missing")
	}
	if !contains(st, "inf", triple("c", "contains", "a")) {
		t.Error("inverse of inferred triple missing (rules must chain)")
	}
}

func TestFixpointTerminatesOnCycles(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data",
		rdf.Quad{S: iri("a"), P: rdf.NewIRI(rdf.OWLSameAs), O: iri("b")},
		rdf.Quad{S: iri("b"), P: rdf.NewIRI(rdf.OWLSameAs), O: iri("c")},
		rdf.Quad{S: iri("c"), P: rdf.NewIRI(rdf.OWLSameAs), O: iri("a")},
	)
	e := New(st)
	for _, r := range OWLRules() {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Run("data", "inf", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sameAs closure over {a,b,c}: all 9 pairs minus 3 asserted = 6.
	if n != 6 {
		t.Errorf("inferred %d, want 6", n)
	}
}

func TestMaxInferredGuard(t *testing.T) {
	st := store.New()
	var quads []rdf.Quad
	for i := 0; i < 20; i++ {
		quads = append(quads, rdf.Quad{S: iri(fmt.Sprintf("n%d", i)), P: rdf.NewIRI(rdf.OWLSameAs), O: iri(fmt.Sprintf("n%d", i+1))})
	}
	mustLoad(t, st, "data", quads...)
	e := New(st)
	for _, r := range OWLRules() {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	_, err := e.Run("data", "inf", Options{MaxInferred: 10})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("guard did not trip: %v", err)
	}
}

func TestParseTermErrors(t *testing.T) {
	if _, err := parseTerm("plainword"); err == nil {
		t.Error("bare word accepted as term")
	}
	if term, err := parseTerm(`"lit"`); err != nil || !term.Equal(rdf.NewLiteral("lit")) {
		t.Errorf("literal: %v %v", term, err)
	}
	if term, err := parseTerm("_:b1"); err != nil || !term.Equal(rdf.NewBlank("b1")) {
		t.Errorf("blank: %v %v", term, err)
	}
}

func TestAbsentConstantIsNoMatch(t *testing.T) {
	st := store.New()
	mustLoad(t, st, "data", triple("a", "p", "b"))
	e := New(st)
	if err := e.AddRule(Rule{Name: "r",
		Body: []TriplePattern{{"?x", "<http://never/seen>", "?y"}},
		Head: []TriplePattern{{"?y", "<http://x/q>", "?x"}}}); err != nil {
		t.Fatal(err)
	}
	n, err := e.Run("data", "inf", Options{})
	if err != nil || n != 0 {
		t.Errorf("n=%d err=%v", n, err)
	}
}
