// Package inference implements a forward-chaining rule engine over the
// quad store, covering the capabilities §5.2 of the paper uses to enrich
// transformed property-graph data:
//
//   - an RDFS subset (rdfs:subPropertyOf, rdfs:subClassOf, rdfs:domain,
//     rdfs:range entailment),
//   - owl:sameAs and owl:equivalentProperty handling for linked-data
//     integration,
//   - user-defined rules (the paper's example: inferring a :hasTagR
//     property that links nodes directly to neighboring countries via a
//     property chain over Fact Book data).
//
// Entailment is pre-computed into a separate "inferred" semantic model,
// mirroring Oracle's native inference engine, and queried through a
// virtual model that unions asserted and inferred data.
package inference

import (
	"errors"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/store"
)

// TriplePattern is a rule atom: each position holds either a constant
// term or a variable name (prefixed with '?').
type TriplePattern struct {
	S, P, O string
}

// Rule is a user-defined rule: when every body atom matches, the head
// atoms are instantiated and asserted.
type Rule struct {
	Name string
	Body []TriplePattern
	Head []TriplePattern
}

// Validate checks that head variables appear in the body.
func (r Rule) Validate() error {
	bound := map[string]bool{}
	for _, a := range r.Body {
		for _, pos := range []string{a.S, a.P, a.O} {
			if isVar(pos) {
				bound[pos] = true
			}
		}
	}
	for _, a := range r.Head {
		for _, pos := range []string{a.S, a.P, a.O} {
			if isVar(pos) && !bound[pos] {
				return fmt.Errorf("inference: rule %q: head variable %s not bound in body", r.Name, pos)
			}
		}
	}
	if len(r.Body) == 0 || len(r.Head) == 0 {
		return fmt.Errorf("inference: rule %q must have a body and a head", r.Name)
	}
	return nil
}

func isVar(s string) bool { return len(s) > 1 && s[0] == '?' }

// Engine runs forward chaining over a dataset.
type Engine struct {
	st    *store.Store
	rules []Rule
}

// New returns an engine over the store.
func New(st *store.Store) *Engine { return &Engine{st: st} }

// AddRule registers a user-defined rule.
func (e *Engine) AddRule(r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.rules = append(e.rules, r)
	return nil
}

// RDFSRules returns the RDFS subset rules (property and class hierarchy,
// domain, range) as user-defined rules over the engine's rule language.
func RDFSRules() []Rule {
	sub := "<" + rdf.RDFSSubPropertyOf + ">"
	subC := "<" + rdf.RDFSSubClassOf + ">"
	typ := "<" + rdf.RDFType + ">"
	dom := "<" + rdf.RDFSDomain + ">"
	rng := "<" + rdf.RDFSRange + ">"
	return []Rule{
		{Name: "rdfs-subPropertyOf-transitivity",
			Body: []TriplePattern{{"?p", sub, "?q"}, {"?q", sub, "?r"}},
			Head: []TriplePattern{{"?p", sub, "?r"}}},
		{Name: "rdfs-subPropertyOf-usage",
			Body: []TriplePattern{{"?s", "?p", "?o"}, {"?p", sub, "?q"}},
			Head: []TriplePattern{{"?s", "?q", "?o"}}},
		{Name: "rdfs-subClassOf-transitivity",
			Body: []TriplePattern{{"?c", subC, "?d"}, {"?d", subC, "?e"}},
			Head: []TriplePattern{{"?c", subC, "?e"}}},
		{Name: "rdfs-subClassOf-usage",
			Body: []TriplePattern{{"?x", typ, "?c"}, {"?c", subC, "?d"}},
			Head: []TriplePattern{{"?x", typ, "?d"}}},
		{Name: "rdfs-domain",
			Body: []TriplePattern{{"?s", "?p", "?o"}, {"?p", dom, "?c"}},
			Head: []TriplePattern{{"?s", typ, "?c"}}},
		{Name: "rdfs-range",
			Body: []TriplePattern{{"?s", "?p", "?o"}, {"?p", rng, "?c"}},
			Head: []TriplePattern{{"?o", typ, "?c"}}},
	}
}

// OWLRules returns the owl:sameAs / owl:equivalentProperty /
// owl:inverseOf / transitive-property subset used by the linked-data
// examples.
func OWLRules() []Rule {
	same := "<" + rdf.OWLSameAs + ">"
	eqp := "<" + rdf.OWLEquivalentProperty + ">"
	sub := "<" + rdf.RDFSSubPropertyOf + ">"
	inv := "<" + rdf.OWLInverseOf + ">"
	typ := "<" + rdf.RDFType + ">"
	trans := "<" + rdf.OWLTransitiveProperty + ">"
	return []Rule{
		{Name: "owl-sameAs-symmetry",
			Body: []TriplePattern{{"?x", same, "?y"}},
			Head: []TriplePattern{{"?y", same, "?x"}}},
		{Name: "owl-sameAs-transitivity",
			Body: []TriplePattern{{"?x", same, "?y"}, {"?y", same, "?z"}},
			Head: []TriplePattern{{"?x", same, "?z"}}},
		{Name: "owl-sameAs-subject-substitution",
			Body: []TriplePattern{{"?x", same, "?y"}, {"?x", "?p", "?o"}},
			Head: []TriplePattern{{"?y", "?p", "?o"}}},
		{Name: "owl-sameAs-object-substitution",
			Body: []TriplePattern{{"?x", same, "?y"}, {"?s", "?p", "?x"}},
			Head: []TriplePattern{{"?s", "?p", "?y"}}},
		{Name: "owl-equivalentProperty-forward",
			Body: []TriplePattern{{"?p", eqp, "?q"}},
			Head: []TriplePattern{{"?p", sub, "?q"}, {"?q", sub, "?p"}}},
		{Name: "owl-inverseOf",
			Body: []TriplePattern{{"?p", inv, "?q"}, {"?s", "?p", "?o"}},
			Head: []TriplePattern{{"?o", "?q", "?s"}}},
		{Name: "owl-transitive-property",
			Body: []TriplePattern{{"?p", typ, trans}, {"?x", "?p", "?y"}, {"?y", "?p", "?z"}},
			Head: []TriplePattern{{"?x", "?p", "?z"}}},
	}
}

// Options configure a Run.
type Options struct {
	// MaxRounds bounds fixpoint iteration (0 = default 64).
	MaxRounds int
	// MaxInferred bounds the number of inferred triples (0 = 10M), a
	// guard against runaway rule sets.
	MaxInferred int
}

// Run computes the fixpoint of the registered rules over the dataset
// named by srcModel (a model or virtual model; "" = all), asserting new
// triples into dstModel. It returns the number of triples inferred.
//
// Inferred triples always go to the default graph of dstModel.
func (e *Engine) Run(srcModel, dstModel string, opts Options) (int, error) {
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64
	}
	maxInferred := opts.MaxInferred
	if maxInferred == 0 {
		maxInferred = 10_000_000
	}
	srcIDs, err := e.st.ResolveDataset(srcModel)
	if err != nil {
		return 0, err
	}
	models := make(map[store.ModelID]struct{}, len(srcIDs)+1)
	for _, id := range srcIDs {
		models[id] = struct{}{}
	}
	// The destination participates in matching so rules chain.
	models[e.st.Model(dstModel)] = struct{}{}

	total := 0
	for round := 0; round < maxRounds; round++ {
		var fresh []rdf.Quad
		for _, r := range e.rules {
			matches, err := e.matchRule(r, models)
			if err != nil {
				return total, err
			}
			fresh = append(fresh, matches...)
		}
		added := 0
		for _, q := range fresh {
			if total+added >= maxInferred {
				return total + added, fmt.Errorf("inference: exceeded %d inferred triples", maxInferred)
			}
			if e.presentInModels(q, srcIDs) {
				continue // already asserted; Oracle's engine does not duplicate it
			}
			ok, err := e.st.Insert(dstModel, q)
			if err != nil {
				return total + added, err
			}
			if ok {
				added++
			}
		}
		e.st.Compact()
		total += added
		if added == 0 {
			return total, nil
		}
	}
	return total, fmt.Errorf("inference: no fixpoint after %d rounds", maxRounds)
}

// presentInModels reports whether the triple is already asserted in any
// of the source models (in any graph).
func (e *Engine) presentInModels(q rdf.Quad, models []store.ModelID) bool {
	p := store.AnyPattern()
	p.S = e.st.Dict().Lookup(q.S)
	p.P = e.st.Dict().Lookup(q.P)
	p.C = e.st.Dict().Lookup(q.O)
	if p.S == store.NoID || p.P == store.NoID || p.C == store.NoID {
		return false
	}
	found := false
	e.st.Scan(p, func(row store.IDQuad) bool {
		for _, m := range models {
			if row.M == m {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// orderBody greedily orders rule body atoms: atoms with more constants
// first, then atoms sharing a variable with the already-bound set —
// keeping, e.g., the RDFS subPropertyOf-usage rule from opening with a
// full scan of `?s ?p ?o` when the tiny `?p rdfs:subPropertyOf ?q` atom
// can bind ?p first.
func orderBody(body []TriplePattern) []TriplePattern {
	n := len(body)
	used := make([]bool, n)
	bound := map[string]bool{}
	out := make([]TriplePattern, 0, n)
	varsOf := func(a TriplePattern) []string {
		var vs []string
		for _, pos := range []string{a.S, a.P, a.O} {
			if isVar(pos) {
				vs = append(vs, pos)
			}
		}
		return vs
	}
	for len(out) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			consts := 3 - len(varsOf(body[i]))
			joined := 0
			for _, v := range varsOf(body[i]) {
				if bound[v] {
					joined = 1
					break
				}
			}
			score := consts*4 + joined*2
			if len(out) == 0 {
				score = consts // nothing bound yet
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		used[best] = true
		out = append(out, body[best])
		for _, v := range varsOf(body[best]) {
			bound[v] = true
		}
	}
	return out
}

// matchRule evaluates a rule body against the models and returns the
// instantiated head quads (possibly already present; Insert dedupes).
func (e *Engine) matchRule(r Rule, models map[store.ModelID]struct{}) ([]rdf.Quad, error) {
	type bindings map[string]store.ID
	results := []bindings{{}}
	for _, atom := range orderBody(r.Body) {
		var next []bindings
		pat, vars, err := e.compileAtom(atom)
		if err != nil {
			return nil, err
		}
		if pat == nil {
			return nil, nil // a constant term is absent: no matches
		}
		for _, b := range results {
			p := *pat
			// Substitute bound vars.
			if vars.s != "" {
				if id, ok := b[vars.s]; ok {
					p.S = id
				}
			}
			if vars.p != "" {
				if id, ok := b[vars.p]; ok {
					p.P = id
				}
			}
			if vars.o != "" {
				if id, ok := b[vars.o]; ok {
					p.C = id
				}
			}
			e.st.Scan(p, func(q store.IDQuad) bool {
				if _, ok := models[q.M]; !ok {
					return true
				}
				nb := bindings{}
				for k, v := range b {
					nb[k] = v
				}
				ok := true
				bind := func(name string, v store.ID) {
					if name == "" || !ok {
						return
					}
					if prev, bound := nb[name]; bound {
						ok = prev == v
					} else {
						nb[name] = v
					}
				}
				bind(vars.s, q.S)
				bind(vars.p, q.P)
				bind(vars.o, q.C)
				if ok {
					next = append(next, nb)
				}
				return true
			})
		}
		results = next
		if len(results) == 0 {
			return nil, nil
		}
	}

	var out []rdf.Quad
	for _, b := range results {
		for _, h := range r.Head {
			q, err := e.instantiateHead(h, b)
			if err != nil {
				return nil, err
			}
			if q.Validate() == nil {
				out = append(out, q)
			}
		}
	}
	return out, nil
}

type atomVars struct{ s, p, o string }

// compileAtom resolves an atom's constants; nil pattern means a constant
// is unknown to the dictionary (no matches possible).
func (e *Engine) compileAtom(a TriplePattern) (*store.Pattern, atomVars, error) {
	p := store.AnyPattern()
	var vars atomVars
	resolve := func(s string, set func(store.ID), varSlot *string) error {
		if isVar(s) {
			*varSlot = s
			return nil
		}
		t, err := parseTerm(s)
		if err != nil {
			return err
		}
		id := e.st.Dict().Lookup(t)
		if id == store.NoID {
			return errAbsent
		}
		set(id)
		return nil
	}
	if err := resolve(a.S, func(id store.ID) { p.S = id }, &vars.s); err != nil {
		if errors.Is(err, errAbsent) {
			return nil, vars, nil
		}
		return nil, vars, err
	}
	if err := resolve(a.P, func(id store.ID) { p.P = id }, &vars.p); err != nil {
		if errors.Is(err, errAbsent) {
			return nil, vars, nil
		}
		return nil, vars, err
	}
	if err := resolve(a.O, func(id store.ID) { p.C = id }, &vars.o); err != nil {
		if errors.Is(err, errAbsent) {
			return nil, vars, nil
		}
		return nil, vars, err
	}
	return &p, vars, nil
}

var errAbsent = fmt.Errorf("inference: term absent")

func (e *Engine) instantiateHead(h TriplePattern, b map[string]store.ID) (rdf.Quad, error) {
	resolve := func(s string) (rdf.Term, error) {
		if isVar(s) {
			id, ok := b[s]
			if !ok {
				return rdf.Term{}, fmt.Errorf("inference: unbound head variable %s", s)
			}
			return e.st.Dict().Term(id), nil
		}
		return parseTerm(s)
	}
	s, err := resolve(h.S)
	if err != nil {
		return rdf.Quad{}, err
	}
	p, err := resolve(h.P)
	if err != nil {
		return rdf.Quad{}, err
	}
	o, err := resolve(h.O)
	if err != nil {
		return rdf.Quad{}, err
	}
	return rdf.Quad{S: s, P: p, O: o}, nil
}

// parseTerm parses a constant: <iri>, "literal", or _:blank.
func parseTerm(s string) (rdf.Term, error) {
	switch {
	case len(s) > 2 && s[0] == '<' && s[len(s)-1] == '>':
		return rdf.NewIRI(s[1 : len(s)-1]), nil
	case len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"':
		return rdf.NewLiteral(s[1 : len(s)-1]), nil
	case len(s) > 2 && s[0] == '_' && s[1] == ':':
		return rdf.NewBlank(s[2:]), nil
	default:
		return rdf.Term{}, fmt.Errorf("inference: cannot parse term %q (use <iri>, \"literal\" or _:label)", s)
	}
}
