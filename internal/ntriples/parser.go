// Package ntriples implements streaming parsers and serializers for the
// W3C N-Triples and N-Quads line-based RDF interchange formats. These are
// the bulk-load formats the store accepts (§3.1 of the paper: "fast bulk
// load of RDF data supplied in N-Quads format").
package ntriples

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"repro/internal/rdf"
)

// SyntaxError describes a parse failure with line/column position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Reader is a streaming N-Quads parser. N-Triples documents parse as
// N-Quads whose quads are all in the default graph.
//
// Lines are streamed through a bufio.Reader rather than a Scanner:
// one multi-megabyte literal is a legal (and, via store snapshots, an
// actually-occurring) single line, and a Scanner would fail it with
// bufio.ErrTooLong at its buffer cap instead of parsing it.
type Reader struct {
	br   *bufio.Reader
	line int
}

// NewReader returns a parser reading from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024)}
}

// Read returns the next quad, or io.EOF at end of input. Blank lines and
// comment lines (starting with '#') are skipped.
func (r *Reader) Read() (rdf.Quad, error) {
	for {
		raw, rerr := r.br.ReadString('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return rdf.Quad{}, rerr
		}
		atEOF := errors.Is(rerr, io.EOF)
		if raw == "" && atEOF {
			return rdf.Quad{}, io.EOF
		}
		r.line++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if atEOF {
				return rdf.Quad{}, io.EOF
			}
			continue
		}
		return r.parseLine(line)
	}
}

// ReadAll consumes the remaining input and returns all quads.
func (r *Reader) ReadAll() ([]rdf.Quad, error) {
	var quads []rdf.Quad
	for {
		q, err := r.Read()
		if errors.Is(err, io.EOF) {
			return quads, nil
		}
		if err != nil {
			return quads, err
		}
		quads = append(quads, q)
	}
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (r *Reader) parseLine(line string) (rdf.Quad, error) {
	p := &lineParser{s: line, line: r.line}
	var q rdf.Quad
	var err error
	// N-Triples documents are UTF-8; raw invalid bytes must not leak
	// into terms, where they would not survive a write/read round trip.
	if !utf8.ValidString(line) {
		return q, p.errf("line is not valid UTF-8")
	}
	if q.S, err = p.term(); err != nil {
		return q, err
	}
	if q.P, err = p.term(); err != nil {
		return q, err
	}
	if q.O, err = p.term(); err != nil {
		return q, err
	}
	p.skipWS()
	if p.peek() != '.' {
		if q.G, err = p.term(); err != nil {
			return q, err
		}
		p.skipWS()
	}
	if p.peek() != '.' {
		return q, p.errf("expected '.' terminator")
	}
	p.pos++
	p.skipWS()
	if p.pos != len(p.s) {
		return q, p.errf("trailing content after '.'")
	}
	if err := q.Validate(); err != nil {
		return q, p.errf("%v", err)
	}
	return q, nil
}

func (p *lineParser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) peek() byte {
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) term() (rdf.Term, error) {
	p.skipWS()
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	case 0:
		return rdf.Term{}, p.errf("unexpected end of line, expected a term")
	default:
		return rdf.Term{}, p.errf("unexpected character %q, expected a term", p.s[p.pos])
	}
}

func (p *lineParser) iri() (rdf.Term, error) {
	p.pos++ // '<'
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] != '>' {
		p.pos++
	}
	if p.pos >= len(p.s) {
		return rdf.Term{}, p.errf("unterminated IRI")
	}
	raw := p.s[start:p.pos]
	p.pos++ // '>'
	iri, err := unescapeUCHAR(raw)
	if err != nil {
		return rdf.Term{}, p.errf("bad IRI escape: %v", err)
	}
	if iri == "" {
		return rdf.Term{}, p.errf("empty IRI")
	}
	if strings.ContainsAny(iri, " \t\"{}|^`") {
		return rdf.Term{}, p.errf("IRI %q contains a forbidden character", iri)
	}
	return rdf.NewIRI(iri), nil
}

func (p *lineParser) blank() (rdf.Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return rdf.Term{}, p.errf("expected '_:' blank node prefix")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) && !isWS(p.s[p.pos]) && p.s[p.pos] != '.' {
		p.pos++
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.s[start:p.pos]), nil
}

func (p *lineParser) literal() (rdf.Term, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.s) {
			return rdf.Term{}, p.errf("unterminated literal")
		}
		c := p.s[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			if p.pos+1 >= len(p.s) {
				return rdf.Term{}, p.errf("dangling escape at end of line")
			}
			p.pos++
			switch e := p.s[p.pos]; e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if e == 'U' {
					n = 8
				}
				if p.pos+n >= len(p.s) {
					return rdf.Term{}, p.errf("truncated \\%c escape", e)
				}
				r, err := hexRune(p.s[p.pos+1 : p.pos+1+n])
				if err != nil {
					return rdf.Term{}, p.errf("bad \\%c escape: %v", e, err)
				}
				b.WriteRune(r)
				p.pos += n
			default:
				return rdf.Term{}, p.errf("unknown escape \\%c", e)
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	// Optional language tag or datatype.
	switch p.peek() {
	case '@':
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && (isAlnum(p.s[p.pos]) || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.s[start:p.pos]), nil
	case '^':
		if p.pos+1 >= len(p.s) || p.s[p.pos+1] != '^' {
			return rdf.Term{}, p.errf("expected '^^' before datatype")
		}
		p.pos += 2
		dt, err := p.iri()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	default:
		return rdf.NewLiteral(lex), nil
	}
}

func isWS(c byte) bool { return c == ' ' || c == '\t' }

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func hexRune(s string) (rune, error) {
	var v rune
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("non-hex digit %q", c)
		}
		v = v<<4 | d
	}
	if !utf8.ValidRune(v) {
		return 0, fmt.Errorf("invalid code point U+%X", v)
	}
	return v, nil
}

func unescapeUCHAR(s string) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling backslash")
		}
		n := 0
		switch s[i+1] {
		case 'u':
			n = 4
		case 'U':
			n = 8
		default:
			return "", fmt.Errorf("unknown escape \\%c in IRI", s[i+1])
		}
		if i+2+n > len(s) {
			return "", fmt.Errorf("truncated \\%c escape", s[i+1])
		}
		r, err := hexRune(s[i+2 : i+2+n])
		if err != nil {
			return "", err
		}
		b.WriteRune(r)
		i += 2 + n
	}
	return b.String(), nil
}
