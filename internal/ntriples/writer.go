package ntriples

import (
	"bufio"
	"io"

	"repro/internal/rdf"
)

// Writer serializes quads in N-Quads syntax (N-Triples when every quad is
// in the default graph).
type Writer struct {
	bw  *bufio.Writer
	n   int
	err error
}

// NewWriter returns a serializer writing to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write emits one quad. Errors are sticky: after a write error every
// subsequent call returns the same error.
func (w *Writer) Write(q rdf.Quad) error {
	if w.err != nil {
		return w.err
	}
	if w.err = q.Validate(); w.err != nil {
		return w.err
	}
	_, w.err = w.bw.WriteString(q.String())
	if w.err == nil {
		_, w.err = w.bw.WriteString(" .\n")
	}
	if w.err == nil {
		w.n++
	}
	return w.err
}

// WriteAll emits all quads then flushes.
func (w *Writer) WriteAll(quads []rdf.Quad) error {
	for _, q := range quads {
		if err := w.Write(q); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Count returns the number of quads successfully written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}
