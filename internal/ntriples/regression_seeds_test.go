package ntriples

// regressionInputs pins inputs that previously made FuzzReader fail —
// either a parser panic or a write/read round-trip break. Each entry
// is fed back as a fuzz seed so the bug cannot silently return.
var regressionInputs = []string{
	// A raw invalid-UTF-8 byte inside a literal used to parse, then the
	// writer escaped it to U+FFFD so the round trip changed the term.
	// The parser now rejects lines that are not valid UTF-8.
	"<0><0>\"\xc3\".",
}
