package ntriples

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func mustParse(t *testing.T, s string) []rdf.Quad {
	t.Helper()
	quads, err := NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return quads
}

func TestParseTriple(t *testing.T) {
	quads := mustParse(t, `<http://pg/v1> <http://pg/r/follows> <http://pg/v2> .`)
	if len(quads) != 1 {
		t.Fatalf("got %d quads", len(quads))
	}
	want := rdf.TripleQuad(rdf.NewTriple(
		rdf.NewIRI("http://pg/v1"), rdf.NewIRI("http://pg/r/follows"), rdf.NewIRI("http://pg/v2")))
	if quads[0] != want {
		t.Errorf("got %v want %v", quads[0], want)
	}
}

func TestParseQuad(t *testing.T) {
	quads := mustParse(t, `<http://pg/v1> <http://pg/r/follows> <http://pg/v2> <http://pg/e3> .`)
	if !quads[0].G.Equal(rdf.NewIRI("http://pg/e3")) {
		t.Errorf("graph = %v", quads[0].G)
	}
}

func TestParseLiterals(t *testing.T) {
	input := `<http://pg/v1> <http://pg/k/name> "Amy" .
<http://pg/v1> <http://pg/k/age> "23"^^<http://www.w3.org/2001/XMLSchema#int> .
<http://pg/v1> <http://pg/k/bio> "line1\nline2\t\"quoted\" back\\slash" .
<http://pg/v1> <http://pg/k/label> "train"@en-us .
<http://pg/v1> <http://pg/k/uni> "é\U0001F600" .`
	quads := mustParse(t, input)
	if len(quads) != 5 {
		t.Fatalf("got %d quads", len(quads))
	}
	if !quads[0].O.Equal(rdf.NewLiteral("Amy")) {
		t.Errorf("plain literal: %v", quads[0].O)
	}
	if !quads[1].O.Equal(rdf.NewInt(23)) {
		t.Errorf("typed literal: %v", quads[1].O)
	}
	if quads[2].O.Value != "line1\nline2\t\"quoted\" back\\slash" {
		t.Errorf("escapes: %q", quads[2].O.Value)
	}
	if !quads[3].O.Equal(rdf.NewLangLiteral("train", "en-us")) {
		t.Errorf("lang literal: %v", quads[3].O)
	}
	if quads[4].O.Value != "é😀" {
		t.Errorf("unicode escapes: %q", quads[4].O.Value)
	}
}

func TestParseBlankNodes(t *testing.T) {
	quads := mustParse(t, `_:b0 <http://p> _:b1 .`)
	if !quads[0].S.Equal(rdf.NewBlank("b0")) || !quads[0].O.Equal(rdf.NewBlank("b1")) {
		t.Errorf("blank nodes: %v", quads[0])
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	input := "# a comment\n\n<http://s> <http://p> <http://o> .\n   \n# another\n"
	quads := mustParse(t, input)
	if len(quads) != 1 {
		t.Errorf("got %d quads", len(quads))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> <http://o>`,            // missing dot
		`<http://s> <http://p> .`,                     // missing object
		`"lit" <http://p> <http://o> .`,               // literal subject
		`<http://s> _:b <http://o> .`,                 // blank predicate
		`<http://s> <http://p> "unterminated .`,       // unterminated literal
		`<http://s> <http://p> <http://o> "lit" .`,    // literal graph
		`<http://s> <http://p> <http://o> . extra`,    // trailing garbage
		`<http://s <http://p> <http://o> .`,           // IRI with space
		`<http://s> <http://p> "x"^^bad .`,            // datatype not an IRI
		`<http://s> <http://p> "x"@ .`,                // empty lang tag
		`<> <http://p> <http://o> .`,                  // empty IRI
		`<http://s> <http://p> "\q" .`,                // unknown escape
		`<http://s> <http://p> "\u00" .`,              // truncated \u
		`<http://s> <http://p> "\uZZZZ" .`,            // non-hex \u
		`<http://s\q> <http://p> <http://o> .`,        // bad IRI escape
		`_: <http://p> <http://o> .`,                  // empty blank label
		`<http://s> <http://p> <http://o> <http://g>`, // quad missing dot
	}
	for _, s := range bad {
		if _, err := NewReader(strings.NewReader(s)).ReadAll(); err == nil {
			t.Errorf("accepted invalid line %q", s)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("want *SyntaxError for %q, got %T %v", s, err, err)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	input := "<http://s> <http://p> <http://o> .\nbogus line\n"
	_, err := NewReader(strings.NewReader(input)).ReadAll()
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want SyntaxError, got %v", err)
	}
	if se.Line != 2 {
		t.Errorf("line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("message lacks position: %s", se.Error())
	}
}

func TestReaderStreams(t *testing.T) {
	r := NewReader(strings.NewReader("<http://s> <http://p> <http://o> .\n<http://s2> <http://p> <http://o> .\n"))
	q1, err := r.Read()
	if err != nil || q1.S.Value != "http://s" {
		t.Fatalf("first read: %v %v", q1, err)
	}
	q2, err := r.Read()
	if err != nil || q2.S.Value != "http://s2" {
		t.Fatalf("second read: %v %v", q2, err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(io.Discard)
	bad := rdf.NewQuad(rdf.NewLiteral("x"), rdf.NewIRI("http://p"), rdf.NewIRI("http://o"), rdf.Term{})
	if err := w.Write(bad); err == nil {
		t.Fatal("invalid quad accepted")
	}
	// Error must be sticky.
	good := rdf.TripleQuad(rdf.NewTriple(rdf.NewIRI("http://s"), rdf.NewIRI("http://p"), rdf.NewIRI("http://o")))
	if err := w.Write(good); err == nil {
		t.Fatal("write after error should keep failing")
	}
	if w.Count() != 0 {
		t.Errorf("count = %d, want 0", w.Count())
	}
}

func randomTerm(rng *rand.Rand, resourceOnly bool) rdf.Term {
	kinds := 3
	if resourceOnly {
		kinds = 2
	}
	switch rng.Intn(kinds) {
	case 0:
		return rdf.NewIRI(fmt.Sprintf("http://x/%d", rng.Intn(50)))
	case 1:
		return rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(50)))
	default:
		switch rng.Intn(4) {
		case 0:
			return rdf.NewLiteral(randomString(rng))
		case 1:
			return rdf.NewInteger(rng.Int63n(1000) - 500)
		case 2:
			return rdf.NewLangLiteral(randomString(rng), "en")
		default:
			return rdf.NewDouble(float64(rng.Intn(100)) / 4)
		}
	}
}

func randomString(rng *rand.Rand) string {
	alphabet := []rune("abcXYZ 0189\"\\\n\t\réあ😀#@")
	n := rng.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// TestRoundTrip is the invariant-5 property test: serialize→parse is the
// identity on any set of valid quads, including nasty literals.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		quads := make([]rdf.Quad, 0, n)
		for i := 0; i < n; i++ {
			q := rdf.Quad{
				S: randomTerm(rng, true),
				P: rdf.NewIRI(fmt.Sprintf("http://p/%d", rng.Intn(10))),
				O: randomTerm(rng, false),
			}
			if rng.Intn(2) == 0 {
				q.G = randomTerm(rng, true)
			}
			quads = append(quads, q)
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		if err := w.WriteAll(quads); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := NewReader(strings.NewReader(sb.String())).ReadAll()
		if err != nil {
			t.Fatalf("trial %d: parse: %v\ninput:\n%s", trial, err, sb.String())
		}
		if len(got) != len(quads) {
			t.Fatalf("trial %d: got %d quads, want %d", trial, len(got), len(quads))
		}
		sort.Slice(got, func(i, j int) bool { return rdf.CompareQuads(got[i], got[j]) < 0 })
		want := append([]rdf.Quad(nil), quads...)
		sort.Slice(want, func(i, j int) bool { return rdf.CompareQuads(want[i], want[j]) < 0 })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: quad %d differs:\ngot  %v\nwant %v", trial, i, got[i], want[i])
			}
		}
	}
}
