package ntriples

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader drives the N-Triples/N-Quads parser with arbitrary input.
// Properties:
//
//  1. the parser never panics;
//  2. anything it accepts, the writer serializes and the serialization
//     re-parses to the identical quad sequence (write/read round-trip).
//
// Regression seeds at the bottom reproduce inputs that previously
// crashed or mis-round-tripped; keep them even if the corpus rotates.
func FuzzReader(f *testing.F) {
	seeds := []string{
		"<http://a> <http://p> <http://b> .\n",
		"<http://a> <http://p> \"lit\" .\n",
		"<http://a> <http://p> \"v\"@en .\n",
		"<http://a> <http://p> \"1\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
		"<http://a> <http://p> <http://b> <http://g> .\n",
		"_:b0 <http://p> _:b1 .\n",
		"# comment\n\n<http://a> <http://p> \"x\\\"y\\\\z\" .\n",
		"<http://a> <http://p> \"\\u00e9\\U0001F600\" .\n",
		"<a> <p>",             // truncated
		"\"dangling",          // bare literal
		"<http://a> <http://p> \"v\"^^",
		"<http://a> <http://p> \"v\"@",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Regression seeds: previously-panicking inputs found by fuzzing
	// stay pinned here so the crash can never come back silently.
	for _, s := range regressionInputs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		quads, err := NewReader(strings.NewReader(data)).ReadAll()
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteAll(quads); err != nil {
			t.Fatalf("writer rejected parser output: %v\ninput: %q", err, data)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		again, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\ninput: %q\nserialized: %q", err, data, buf.String())
		}
		if len(again) != len(quads) {
			t.Fatalf("round-trip count %d != %d\ninput: %q\nserialized: %q", len(again), len(quads), data, buf.String())
		}
		for i := range quads {
			if !quads[i].S.Equal(again[i].S) || !quads[i].P.Equal(again[i].P) ||
				!quads[i].O.Equal(again[i].O) || !quads[i].G.Equal(again[i].G) {
				t.Fatalf("round-trip quad %d differs:\n  first:  %v\n  second: %v\ninput: %q", i, quads[i], again[i], data)
			}
		}
	})
}
