package bench

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/graph"
)

// algoBenchNames orders the graph algorithms in BENCH_algos.json.
var algoBenchNames = []string{"pagerank", "wcc", "triangles"}

// AlgoResult is one algorithm × scheme measurement: CSR projection time
// plus serial (1 worker) vs parallel run time. Fingerprint is an FNV-64a
// hash over the raw result bits (Float64bits of every PageRank score,
// every WCC label, the triangle count); AlgoBench fails unless the
// serial and parallel fingerprints match and every scheme of the same
// property graph produces the same fingerprint, so a published report
// is itself evidence of the determinism contract.
type AlgoResult struct {
	Algo        string  `json:"algo"`
	Scheme      string  `json:"scheme"`
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`
	CSRBuildMS  float64 `json:"csr_build_ms"`
	SerialMS    float64 `json:"serial_ms"`
	ParallelMS  float64 `json:"parallel_ms"`
	Speedup     float64 `json:"speedup"`
	Iterations  int     `json:"iterations,omitempty"`
	Components  int     `json:"components,omitempty"`
	Triangles   int64   `json:"triangles,omitempty"`
	Fingerprint string  `json:"fingerprint"`
}

// AlgoReport is the payload of BENCH_algos.json. As with
// ParallelReport, speedups measured with GOMAXPROCS < workers are
// scheduler noise, so GOMAXPROCS is recorded alongside the numbers.
type AlgoReport struct {
	Workers    int          `json:"workers"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Iters      int          `json:"iters"`
	Results    []AlgoResult `json:"results"`
}

// AlgoBench projects the Twitter dataset into a CSR under every scheme
// (NG, SP and the lazily loaded RF ablation) and times PageRank, WCC
// and triangle counting serial vs parallel. Each leg is warmed once
// implicitly by the fingerprint run, then timed iters times from a
// collected heap; the median is reported.
func AlgoBench(ctx context.Context, env *Env, workers, iters int) (*AlgoReport, error) {
	if workers < 2 {
		workers = 2
	}
	if iters < 1 {
		iters = 1
	}
	rf, err := env.RFEnv()
	if err != nil {
		return nil, fmt.Errorf("algobench: loading RF scheme: %w", err)
	}
	rep := &AlgoReport{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0), Iters: iters}
	// Cross-scheme acceptance: the same algorithm over the same property
	// graph must fingerprint identically no matter which scheme encoded
	// it or how many workers ran it.
	crossFP := map[string]string{}
	for _, se := range append(env.SchemeEnvs(), rf) {
		var cs *graph.CSR
		build, err := medianOf(iters, func() error {
			c, perr := graph.Project(ctx, se.Store, graph.ProjectOptions{
				Model:   se.Names.All,
				Scheme:  se.Scheme,
				Reverse: true,
			}, graph.Budget{})
			cs = c
			return perr
		})
		if err != nil {
			return nil, fmt.Errorf("algobench %s (project): %w", se.Scheme, err)
		}
		for _, algo := range algoBenchNames {
			serial := graph.Runner{Parallelism: 1}
			par := graph.Runner{Parallelism: workers}
			sRun, err := runAlgoOnce(ctx, serial, cs, algo)
			if err != nil {
				return nil, fmt.Errorf("algobench %s/%s (serial): %w", se.Scheme, algo, err)
			}
			pRun, err := runAlgoOnce(ctx, par, cs, algo)
			if err != nil {
				return nil, fmt.Errorf("algobench %s/%s (parallel): %w", se.Scheme, algo, err)
			}
			if sRun.fp != pRun.fp {
				return nil, fmt.Errorf("algobench %s/%s: serial fingerprint %s != parallel %s (determinism violation)",
					se.Scheme, algo, sRun.fp, pRun.fp)
			}
			if want, ok := crossFP[algo]; !ok {
				crossFP[algo] = sRun.fp
			} else if want != sRun.fp {
				return nil, fmt.Errorf("algobench %s/%s: fingerprint %s differs from other schemes' %s (projection divergence)",
					se.Scheme, algo, sRun.fp, want)
			}
			sMed, err := medianOf(iters, func() error {
				_, e := runAlgoOnce(ctx, serial, cs, algo)
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("algobench %s/%s (serial timing): %w", se.Scheme, algo, err)
			}
			pMed, err := medianOf(iters, func() error {
				_, e := runAlgoOnce(ctx, par, cs, algo)
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("algobench %s/%s (parallel timing): %w", se.Scheme, algo, err)
			}
			rep.Results = append(rep.Results, AlgoResult{
				Algo:        algo,
				Scheme:      se.Scheme.String(),
				Vertices:    cs.NumVertices(),
				Edges:       cs.NumEdges(),
				CSRBuildMS:  ms(build),
				SerialMS:    ms(sMed),
				ParallelMS:  ms(pMed),
				Speedup:     speedup(sMed, pMed),
				Iterations:  sRun.iterations,
				Components:  sRun.components,
				Triangles:   sRun.triangles,
				Fingerprint: sRun.fp,
			})
		}
	}
	return rep, nil
}

// algoRun is one algorithm execution's identity: the result fingerprint
// plus the scalar outputs worth publishing.
type algoRun struct {
	fp         string
	iterations int
	components int
	triangles  int64
}

func runAlgoOnce(ctx context.Context, r graph.Runner, cs *graph.CSR, algo string) (algoRun, error) {
	h := fnv.New64a()
	var buf [8]byte
	out := algoRun{}
	switch algo {
	case "pagerank":
		res, err := r.PageRank(ctx, cs, graph.PageRankOptions{})
		if err != nil {
			return out, err
		}
		for _, s := range res.Scores {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s))
			h.Write(buf[:])
		}
		out.iterations = res.Iterations
	case "wcc":
		res, err := r.WCC(ctx, cs)
		if err != nil {
			return out, err
		}
		for _, l := range res.Labels {
			binary.LittleEndian.PutUint32(buf[:4], l)
			h.Write(buf[:4])
		}
		out.iterations = res.Iterations
		out.components = res.Components
	case "triangles":
		res, err := r.Triangles(ctx, cs)
		if err != nil {
			return out, err
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(res.Count))
		h.Write(buf[:])
		out.triangles = res.Count
	default:
		return out, fmt.Errorf("unknown algorithm %q", algo)
	}
	out.fp = fmt.Sprintf("%016x", h.Sum64())
	return out, nil
}

// medianOf times iters runs of f from a collected heap and reports the
// median (see medianRun for why the GC call is part of the protocol).
func medianOf(iters int, f func() error) (time.Duration, error) {
	durs := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		runtime.GC()
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		durs = append(durs, time.Since(start))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], nil
}
