package bench

// Profiling-overhead differential (DESIGN.md §11): runs EQ1–EQ12 on
// both schemes with profiling off and on and reports the aggregate
// slowdown, gating the promise that the instrumented executor is cheap
// enough to leave on in production paths like the slow-query log.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/sparql"
)

// OverheadResult is one query's with/without-profiling comparison.
type OverheadResult struct {
	Name       string  `json:"name"`
	Scheme     string  `json:"scheme"`
	PlainMS    float64 `json:"plain_ms"`
	ProfiledMS float64 `json:"profiled_ms"`
}

// OverheadReport is the payload of BENCH_profile_overhead.json.
type OverheadReport struct {
	Iters   int              `json:"iters"`
	Queries []OverheadResult `json:"queries"`
	// PlainMS / ProfiledMS are total best-of-iters time across all
	// queries and schemes; OverheadPct the aggregate slowdown.
	PlainMS     float64 `json:"plain_ms"`
	ProfiledMS  float64 `json:"profiled_ms"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ProfileOverhead times every paper query with and without profiling
// and reports the aggregate overhead. Engines run serial
// (Parallelism=1) so the measurement captures the instrumentation
// cost, not atomic contention noise. Samples for the two legs are
// interleaved in alternating order and each leg takes its best of
// iters runs: the long traversal queries are allocation-heavy enough
// that GC pacing drifts across a run, and interleaving keeps that
// drift from being billed to whichever leg happens to run second.
func ProfileOverhead(ctx context.Context, env *Env, iters int) (*OverheadReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &OverheadReport{Iters: iters}
	queries := env.Queries()
	for _, se := range env.SchemeEnvs() {
		eng := sparql.NewEngine(se.Store)
		eng.Parallelism = 1
		for _, name := range sortedKeys(queries) {
			model := TargetModelFor(se, name)
			q := queries[name]
			// Warm both paths: first runs pay plan-compilation and
			// cache-fault costs that are not the profiler's.
			if _, err := eng.QueryContext(ctx, model, q); err != nil {
				return nil, fmt.Errorf("overhead %s/%s: %w", se.Scheme, name, err)
			}
			if _, _, err := eng.QueryProfiledContext(ctx, model, q); err != nil {
				return nil, fmt.Errorf("overhead %s/%s (profiled): %w", se.Scheme, name, err)
			}
			plain, profiled, err := interleavedBestOf(iters,
				func() error {
					_, err := eng.QueryContext(ctx, model, q)
					return err
				},
				func() error {
					_, _, err := eng.QueryProfiledContext(ctx, model, q)
					return err
				})
			if err != nil {
				return nil, fmt.Errorf("overhead %s/%s: %w", se.Scheme, name, err)
			}
			rep.Queries = append(rep.Queries, OverheadResult{
				Name:       name,
				Scheme:     se.Scheme.String(),
				PlainMS:    ms(plain),
				ProfiledMS: ms(profiled),
			})
			rep.PlainMS += ms(plain)
			rep.ProfiledMS += ms(profiled)
		}
	}
	if rep.PlainMS > 0 {
		rep.OverheadPct = (rep.ProfiledMS - rep.PlainMS) / rep.PlainMS * 100
	}
	return rep, nil
}

// interleavedBestOf times a and b iters times each, alternating which
// runs first within an iteration, and returns each side's minimum. A
// GC settle before each iteration keeps one side from paying for the
// other's garbage.
func interleavedBestOf(iters int, a, b func() error) (bestA, bestB time.Duration, err error) {
	timeOne := func(run func() error) (time.Duration, error) {
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	for i := 0; i < iters; i++ {
		runtime.GC()
		first, second := a, b
		if i%2 == 1 {
			first, second = b, a
		}
		d1, err := timeOne(first)
		if err != nil {
			return 0, 0, err
		}
		d2, err := timeOne(second)
		if err != nil {
			return 0, 0, err
		}
		da, db := d1, d2
		if i%2 == 1 {
			da, db = d2, d1
		}
		if bestA == 0 || da < bestA {
			bestA = da
		}
		if bestB == 0 || db < bestB {
			bestB = db
		}
	}
	return bestA, bestB, nil
}

// ExplainAnalyzeAll renders EXPLAIN ANALYZE for every paper query on
// every scheme, verifying that each profile reports actuals. Used by
// the benchpaper -explainanalyze mode and the acceptance tests.
func ExplainAnalyzeAll(ctx context.Context, env *Env) (string, error) {
	var sb strings.Builder
	queries := env.Queries()
	for _, se := range env.SchemeEnvs() {
		eng := sparql.NewEngine(se.Store)
		for _, name := range sortedKeys(queries) {
			model := TargetModelFor(se, name)
			txt, err := eng.ExplainAnalyzeContext(ctx, model, queries[name])
			if err != nil {
				return "", fmt.Errorf("explain analyze %s/%s: %w", se.Scheme, name, err)
			}
			if !strings.Contains(txt, "(actual:") {
				return "", fmt.Errorf("explain analyze %s/%s: no actuals in output:\n%s", se.Scheme, name, txt)
			}
			fmt.Fprintf(&sb, "=== %s / %s ===\n%s\n", se.Scheme, name, txt)
		}
	}
	return sb.String(), nil
}
