package bench

import (
	"context"
	"testing"
)

// TestParallelDifferential is the acceptance check: the whole paper
// query suite (EQ1–EQ12, both schemes) must return byte-identical
// results under the morsel-driven executor and the serial one.
func TestParallelDifferential(t *testing.T) {
	env := sharedEnv(t)
	if err := ParallelDifferential(context.Background(), env, 8); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBenchSmoke runs the serial-vs-parallel harness once at
// test scale and sanity-checks the report shape.
func TestParallelBenchSmoke(t *testing.T) {
	env := sharedEnv(t)
	rep, err := ParallelBench(context.Background(), env, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(parallelBenchQueries) {
		t.Fatalf("report has %d queries, want %d", len(rep.Queries), len(parallelBenchQueries))
	}
	for _, qr := range rep.Queries {
		if qr.SerialMS < 0 || qr.ParallelMS < 0 {
			t.Errorf("%s: negative timing %+v", qr.Name, qr)
		}
	}
	if rep.BulkLoad.Quads == 0 {
		t.Error("bulk load benchmark saw zero quads")
	}
	if rep.BulkLoad.Speedup <= 0 {
		t.Errorf("bulk load speedup = %v", rep.BulkLoad.Speedup)
	}
}
