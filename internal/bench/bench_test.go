package bench

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/twitter"
)

var (
	testEnvOnce sync.Once
	testEnv     *Env
	testEnvErr  error
)

// sharedEnv builds one small environment for all harness tests.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	testEnvOnce.Do(func() {
		testEnv, testEnvErr = Setup(twitter.TestConfig())
	})
	if testEnvErr != nil {
		t.Fatal(testEnvErr)
	}
	return testEnv
}

func TestSetupPicksSelectiveTagAndStartNode(t *testing.T) {
	env := sharedEnv(t)
	if env.Tag == "" || !strings.HasPrefix(env.Tag, "#") {
		t.Fatalf("tag = %q", env.Tag)
	}
	if env.TagNodeCount < 1 {
		t.Fatalf("tag node count = %d", env.TagNodeCount)
	}
	if env.TagNodeCount > env.GraphStats.Vertices/10 {
		t.Errorf("tag too common: %d of %d nodes", env.TagNodeCount, env.GraphStats.Vertices)
	}
	if !strings.HasPrefix(env.StartNode, "http://pg/n") {
		t.Errorf("start node = %q", env.StartNode)
	}
}

func TestQueriesSubstituted(t *testing.T) {
	env := sharedEnv(t)
	for name, q := range env.Queries() {
		if strings.Contains(q, "#webseries") {
			t.Errorf("%s still references #webseries", name)
		}
		if strings.Contains(q, "n6160742") {
			t.Errorf("%s still references the paper's start node", name)
		}
	}
}

func TestCrossSchemeCheck(t *testing.T) {
	if err := CrossSchemeCheck(context.Background(), sharedEnv(t)); err != nil {
		t.Fatal(err)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	env := sharedEnv(t)
	tables := AllExperiments(context.Background(), env)
	if len(tables) != 15 {
		t.Fatalf("experiments = %d, want 15", len(tables))
	}
	for _, tab := range tables {
		out := tab.String()
		if strings.Contains(out, "ERROR") {
			t.Errorf("%s contains an error:\n%s", tab.ID, out)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s is empty", tab.ID)
		}
	}
}

func TestExperimentLookup(t *testing.T) {
	env := sharedEnv(t)
	for _, id := range []string{"table1", "table2", "table5", "table6", "table7", "table8", "table9",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "dml"} {
		if _, err := Experiment(context.Background(), env, id); err != nil {
			t.Errorf("Experiment(%q): %v", id, err)
		}
	}
	if _, err := Experiment(context.Background(), env, "table3"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

// TestTable9Shapes verifies the paper's storage findings hold in the
// estimates: SP's triples table is larger, SP lacks a G index, and the
// totals are within ~25% of each other.
func TestTable9Shapes(t *testing.T) {
	env := sharedEnv(t)
	ng := env.NG.Store.Storage()
	sp := env.SP.Store.Storage()
	if sp.MB("Triples Table") <= ng.MB("Triples Table") {
		t.Errorf("SP triples table (%f) should exceed NG (%f)", sp.MB("Triples Table"), ng.MB("Triples Table"))
	}
	if sp.MB("GPSCM Index") != 0 {
		t.Error("SP should have no GPSCM index")
	}
	if ng.MB("GPSCM Index") == 0 {
		t.Error("NG should have a GPSCM index")
	}
	ratio := sp.TotalMB() / ng.TotalMB()
	if ratio < 0.8 || ratio > 1.4 {
		t.Errorf("total storage ratio SP/NG = %.2f, expected near parity (paper: 1794/1625 = 1.10)", ratio)
	}
}

// TestFigure6Shape verifies the headline performance result: NG beats SP
// on the 3-hop edge-KV query EQ7 (most joins saved).
func TestFigure6Shape(t *testing.T) {
	env := sharedEnv(t)
	queries := env.Queries()
	durNG, nNG, err := RunTimed(context.Background(), env.NG.Engine, TargetModelFor(env.NG, "EQ7a"), queries["EQ7a"])
	if err != nil {
		t.Fatal(err)
	}
	durSP, nSP, err := RunTimed(context.Background(), env.SP.Engine, TargetModelFor(env.SP, "EQ7b"), queries["EQ7b"])
	if err != nil {
		t.Fatal(err)
	}
	if nNG != nSP {
		t.Fatalf("EQ7 results disagree: %d vs %d", nNG, nSP)
	}
	t.Logf("EQ7: NG=%s SP=%s (%d rows)", durNG, durSP, nNG)
	// Timing on tiny data is noisy; assert only that NG is not
	// dramatically slower (the paper's claim is NG <= SP here).
	if durNG > 3*durSP && durSP > 0 {
		t.Errorf("NG (%s) dramatically slower than SP (%s) on EQ7 — contradicts the paper", durNG, durSP)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Head: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	out := tab.String()
	for _, want := range []string{"== X: t ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}
