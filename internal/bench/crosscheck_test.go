package bench

import (
	"context"
	"testing"
)

// TestEQ12MatchesInMemoryTriangles cross-validates the SPARQL triangle
// count (EQ12) against the pg package's index-free adjacency counter.
func TestEQ12MatchesInMemoryTriangles(t *testing.T) {
	env := sharedEnv(t)
	_, sparqlCount, err := RunTimed(context.Background(), env.NG.Engine, TargetModelFor(env.NG, "EQ12"), env.Queries()["EQ12"])
	if err != nil {
		t.Fatal(err)
	}
	inMem := env.Graph.CountTriangles("follows")
	if int64(sparqlCount) != inMem {
		t.Fatalf("EQ12 = %d but in-memory count = %d", sparqlCount, inMem)
	}
}

// TestEQ9MatchesInMemoryDegrees cross-validates the EQ9 in-degree
// distribution row count against a direct computation.
func TestEQ9MatchesInMemoryDegrees(t *testing.T) {
	env := sharedEnv(t)
	_, rows, err := RunTimed(context.Background(), env.NG.Engine, TargetModelFor(env.NG, "EQ9"), env.Queries()["EQ9"])
	if err != nil {
		t.Fatal(err)
	}
	_, in := env.Graph.DegreeDistribution()
	distinct := 0
	for deg := range in {
		if deg > 0 {
			distinct++
		}
	}
	if rows != distinct {
		t.Fatalf("EQ9 rows = %d but distinct positive in-degrees = %d", rows, distinct)
	}
}
