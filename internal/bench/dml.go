package bench

import (
	"fmt"
	"time"

	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/rdf"
)

// This file implements the DML study the paper defers (§2.1: "the key
// performance metric that distinguishes the three approaches is time
// taken to locate existing quads to delete... We will consequently focus
// on query performance and leave a detailed study of DML performance for
// future work").
//
// The experiment removes and re-adds a sample of edges (with their edge
// KVs) under each scheme through SPARQL Update, measuring per-edge cost.
// NG touches 1 topology quad + k KV quads per edge; SP touches 3 triples
// + k KVs; RF 4 triples + k KVs — the same per-edge multiplicities that
// drive the query results.

// DMLExtension measures edge delete+reinsert round-trips per scheme.
func DMLExtension(env *Env, sampleSize int) *Table {
	t := &Table{ID: "Extension: DML", Title: "Edge delete + reinsert round-trip (the paper's deferred DML study)",
		Head: []string{"scheme", "edges", "quads touched", "delete", "reinsert", "per edge"}}

	// Sample edges deterministically: every k-th edge.
	var sample []*pg.Edge
	stride := env.GraphStats.Edges / sampleSize
	if stride < 1 {
		stride = 1
	}
	i := 0
	env.Graph.Edges(func(e *pg.Edge) bool {
		if i%stride == 0 && len(sample) < sampleSize {
			sample = append(sample, e)
		}
		i++
		return len(sample) < sampleSize
	})

	for _, se := range env.SchemeEnvs() {
		conv := &pgrdf.Converter{Scheme: se.Scheme, Vocab: Vocab(), Opts: pgrdf.DefaultOptions()}
		// Build the per-edge quad groups using a single-edge graph each,
		// so the emitted shapes match exactly what was loaded.
		perEdge := make([][]rdf.Quad, 0, len(sample))
		totalQuads := 0
		for _, e := range sample {
			quads := edgeQuads(conv, env.Graph, e)
			perEdge = append(perEdge, quads)
			totalQuads += len(quads)
		}

		// Deletes must target the model each quad actually lives in.
		topo, edgekv := se.Names.Topology, se.Names.EdgeKV

		start := time.Now()
		deleted := 0
		for _, quads := range perEdge {
			for _, q := range quads {
				model := edgekv
				if isTopologyQuad(se.Scheme, q) {
					model = topo
				}
				ok, err := se.Store.Delete(model, q)
				if err != nil {
					t.AddNote("%s delete error: %v", se.Scheme, err)
					return t
				}
				if ok {
					deleted++
				}
			}
		}
		delDur := time.Since(start)

		start = time.Now()
		for _, quads := range perEdge {
			for _, q := range quads {
				model := edgekv
				if isTopologyQuad(se.Scheme, q) {
					model = topo
				}
				if _, err := se.Store.Insert(model, q); err != nil {
					t.AddNote("%s insert error: %v", se.Scheme, err)
					return t
				}
			}
		}
		insDur := time.Since(start)
		se.Store.Compact()

		if deleted != totalQuads {
			t.AddNote("%s: deleted %d of %d quads (unexpected)", se.Scheme, deleted, totalQuads)
		}
		t.AddRow(se.Scheme.String(), fmt.Sprint(len(sample)), fmt.Sprint(totalQuads),
			fmtDur(delDur), fmtDur(insDur),
			fmt.Sprintf("%.1fµs", float64((delDur+insDur).Microseconds())/float64(len(sample))))
	}
	t.AddNote("NG touches 1+k quads per edge, SP 3+k (k = edge KVs): SP pays the same extra-triple tax on DML as on queries")
	return t
}

// edgeQuads emits the RDF quads one edge contributes, by converting a
// graph holding just that edge (and its endpoints, without their KVs).
func edgeQuads(conv *pgrdf.Converter, g *pg.Graph, e *pg.Edge) []rdf.Quad {
	tmp := pg.NewGraph()
	mustAdd := func(id pg.ID) {
		if tmp.Vertex(id) == nil {
			if _, err := tmp.AddVertexWithID(id); err != nil {
				panic(err)
			}
		}
	}
	mustAdd(e.Src)
	mustAdd(e.Dst)
	ne, err := tmp.AddEdgeWithID(e.ID, e.Src, e.Dst, e.Label)
	if err != nil {
		panic(err)
	}
	for _, k := range e.Keys() {
		for _, v := range e.Values(k) {
			ne.AddProperty(k, v)
		}
	}
	ds := conv.Convert(tmp)
	// Topology + edge KVs only; endpoint vertices contribute no KVs in
	// the temp graph, but guard against the isolated-vertex special case
	// (endpoints have an edge here, so none is emitted).
	return append(append([]rdf.Quad{}, ds.Topology...), ds.EdgeKV...)
}

// isTopologyQuad classifies a quad into the topology partition the way
// the converter does.
func isTopologyQuad(s pgrdf.Scheme, q rdf.Quad) bool {
	switch s {
	case pgrdf.NG:
		return !q.G.IsZero() && q.O.IsResource() && q.S.Value != q.G.Value
	default: // RF, SP: the asserted -s-p-o triple with a rel: predicate
		return q.O.IsResource() && len(q.P.Value) > len(rdf.RelNS) && q.P.Value[:len(rdf.RelNS)] == rdf.RelNS
	}
}
