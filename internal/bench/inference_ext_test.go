package bench

import (
	"context"
	"strings"
	"testing"
)

func TestInferenceExtension(t *testing.T) {
	env := sharedEnv(t)
	tab := InferenceExtension(context.Background(), env)
	out := tab.String()
	if strings.Contains(out, "error") {
		t.Fatalf("inference extension failed:\n%s", out)
	}
	// Running a second time on the same env must work (idempotence of
	// the virtual-model setup) and infer nothing new.
	tab2 := InferenceExtension(context.Background(), env)
	if strings.Contains(tab2.String(), "error") {
		t.Fatalf("second run failed:\n%s", tab2.String())
	}
	if len(tab2.Rows) < 4 {
		t.Fatalf("second run rows: %v", tab2.Rows)
	}
}
