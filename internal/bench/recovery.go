package bench

// Recovery benchmark (ISSUE 5 acceptance): time writing a ~1M-quad
// checkpoint, restoring it, and replaying a log tail on top — the two
// halves of wal.Open's crash-recovery path. Emitted as
// BENCH_recovery.json by `benchpaper -recoverybench`.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/twitter"
	"repro/internal/wal"
)

// RecoveryReport is the payload of BENCH_recovery.json. The unprefixed
// checkpoint columns measure the default binary format; the text_
// columns measure the legacy N-Quads format over the same store, and
// RestoreSpeedup is the ratio between their restore times.
type RecoveryReport struct {
	// Dataset shape.
	Quads       int   `json:"quads"`
	TailRecords int64 `json:"tail_records"`

	// On-disk sizes.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	WalBytes        int64 `json:"wal_bytes"`

	// Phase timings (binary checkpoint format).
	CheckpointWriteMS   float64 `json:"checkpoint_write_ms"`
	CheckpointRestoreMS float64 `json:"checkpoint_restore_ms"`
	TotalRecoveryMS     float64 `json:"total_recovery_ms"`
	ReplayMS            float64 `json:"replay_ms"`

	// Legacy text format over the same store, and the ratio of text to
	// binary restore time.
	TextCheckpointBytes   int64   `json:"text_checkpoint_bytes"`
	TextCheckpointWriteMS float64 `json:"text_checkpoint_write_ms"`
	TextRestoreMS         float64 `json:"text_restore_ms"`
	RestoreSpeedup        float64 `json:"restore_speedup"`

	// Incremental checkpoint of the replayed tail: fold+publish time,
	// delta size on disk, and a full recovery (base restore + delta
	// replay) with the folded tail.
	IncrCheckpointMS float64 `json:"incr_checkpoint_ms"`
	DeltaBytes       int64   `json:"delta_bytes"`
	IncrRecoveryMS   float64 `json:"incr_recovery_ms"`

	// Derived rates.
	RestoreQuadsPerSec float64 `json:"restore_quads_per_sec"`
	ReplayRecsPerSec   float64 `json:"replay_recs_per_sec"`
}

// recoveryIndexes matches the NG-scheme serving configuration (the
// Oracle default pair plus the graph-leading index).
var recoveryIndexes = []string{"PCSGM", "PSCGM", "GSPCM"}

// RecoveryBench builds an NG-scheme Twitter dataset of roughly
// quadTarget quads in a fresh durability directory, checkpoints it,
// journals tailRecords single-insert commits, then closes and reopens
// the directory twice — once with an empty log (pure checkpoint
// restore) and once with the tail (restore + replay) — reporting the
// timings of each phase.
func RecoveryBench(ctx context.Context, quadTarget int, tailRecords int) (*RecoveryReport, error) {
	if quadTarget < 1 {
		quadTarget = 1_000_000
	}
	if tailRecords < 1 {
		tailRecords = 10_000
	}
	dir, err := os.MkdirTemp("", "pgrdf-recoverybench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Probe a small generation to find the scale that lands near the
	// quad target (quads grow linearly with the ego count).
	conv := pgrdf.NewConverter(pgrdf.NG)
	probe := conv.Convert(twitter.Generate(twitter.PaperConfig().Scale(0.01)))
	probeQuads := len(probe.Topology) + len(probe.NodeKV) + len(probe.EdgeKV)
	scale := 0.01 * float64(quadTarget) / float64(probeQuads)
	if scale > 1 {
		scale = 1
	}
	ds := conv.Convert(twitter.Generate(twitter.PaperConfig().Scale(scale)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &RecoveryReport{TailRecords: int64(tailRecords)}

	// Load and checkpoint in both formats. SyncOff: the bench measures
	// recovery, not fsync latency, and keeps CI runtime flat across
	// disk types. The text leg checkpoints the same loaded store into a
	// sibling directory so both formats snapshot identical data.
	textDir, err := os.MkdirTemp("", "pgrdf-recoverybench-text-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(textDir)
	err = withLog(dir, func(st *store.Store, l *wal.Log) error {
		if _, err := pgrdf.LoadPartitioned(st, ds, "pg"); err != nil {
			return err
		}
		rep.Quads = st.Len()
		start := time.Now()
		if err := l.Checkpoint(st); err != nil {
			return fmt.Errorf("recoverybench: checkpoint: %w", err)
		}
		rep.CheckpointWriteMS = msSince(start)
		rep.CheckpointBytes = l.Stats().LastCheckpointBytes

		return withTextLog(textDir, func(_ *store.Store, tl *wal.Log) error {
			start := time.Now()
			if err := tl.Checkpoint(st); err != nil {
				return fmt.Errorf("recoverybench: text checkpoint: %w", err)
			}
			rep.TextCheckpointWriteMS = msSince(start)
			rep.TextCheckpointBytes = tl.Stats().LastCheckpointBytes
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1: reopen with an empty log — pure checkpoint restore —
	// then journal the tail: single-insert commits into the node-KV
	// partition, exactly what the serve path writes per update. The GC
	// runs before every timed open so one leg's garbage (a whole store
	// image per snapshot or restore) is not collected on another leg's
	// clock.
	runtime.GC()
	start := time.Now()
	err = withLog(dir, func(st *store.Store, l *wal.Log) error {
		rep.CheckpointRestoreMS = msSince(start)
		name := rdf.NewIRI(rdf.KeyNS + "name")
		for i := 0; i < tailRecords; i++ {
			q := rdf.Quad{
				S: rdf.NewIRI(fmt.Sprintf("http://pg/bench%d", i)),
				P: name,
				O: rdf.NewLiteral(fmt.Sprintf("tail %d", i)),
			}
			b := wal.Batch{Ops: []wal.Op{{Kind: wal.OpInsert, Model: "pg_nodekv", Quad: q}}}
			err := l.Commit(b, func() error {
				_, err := st.Insert("pg_nodekv", q)
				return err
			})
			if err != nil {
				return fmt.Errorf("recoverybench: tail commit %d: %w", i, err)
			}
		}
		if err := l.Sync(); err != nil {
			return err
		}
		rep.WalBytes = l.Stats().WalBytes
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("recoverybench: restore+tail: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: reopen with the tail — restore + replay.
	runtime.GC()
	start = time.Now()
	st2, l2, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, Indexes: recoveryIndexes})
	if err != nil {
		return nil, fmt.Errorf("recoverybench: recovery: %w", err)
	}
	rep.TotalRecoveryMS = msSince(start)
	defer l2.Close()
	if got := l2.Stats().ReplayedRecords; got != int64(tailRecords) {
		return nil, fmt.Errorf("recoverybench: replayed %d records, want %d", got, tailRecords)
	}
	if want := rep.Quads + tailRecords; st2.Len() != want {
		return nil, fmt.Errorf("recoverybench: recovered %d quads, want %d", st2.Len(), want)
	}

	// Phase 3: fold the replayed tail into a delta file, then recover
	// once more — base restore plus delta replay.
	start = time.Now()
	if err := l2.CheckpointIncremental(st2); err != nil {
		return nil, fmt.Errorf("recoverybench: incremental checkpoint: %w", err)
	}
	rep.IncrCheckpointMS = msSince(start)
	ws := l2.Stats()
	rep.DeltaBytes = ws.DeltaChainBytes
	if ws.IncrementalCheckpoints != 1 || ws.DeltaChainLen != 1 {
		return nil, fmt.Errorf("recoverybench: incremental checkpoint stats: %+v", ws)
	}
	if err := l2.Close(); err != nil {
		return nil, err
	}
	runtime.GC()
	start = time.Now()
	err = withLog(dir, func(st *store.Store, _ *wal.Log) error {
		rep.IncrRecoveryMS = msSince(start)
		if want := rep.Quads + tailRecords; st.Len() != want {
			return fmt.Errorf("recoverybench: incremental recovery got %d quads, want %d", st.Len(), want)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Text leg last: its restore is an order of magnitude slower than
	// every binary phase, so it gets the tail of the run.
	runtime.GC()
	start = time.Now()
	err = withTextLog(textDir, func(st *store.Store, _ *wal.Log) error {
		rep.TextRestoreMS = msSince(start)
		if st.Len() != rep.Quads {
			return fmt.Errorf("recoverybench: text restore got %d quads, want %d", st.Len(), rep.Quads)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep.ReplayMS = rep.TotalRecoveryMS - rep.CheckpointRestoreMS
	if rep.ReplayMS < 0 {
		rep.ReplayMS = 0
	}
	if rep.CheckpointRestoreMS > 0 {
		rep.RestoreQuadsPerSec = float64(rep.Quads) / (rep.CheckpointRestoreMS / 1000)
	}
	if rep.ReplayMS > 0 {
		rep.ReplayRecsPerSec = float64(tailRecords) / (rep.ReplayMS / 1000)
	}
	if rep.CheckpointRestoreMS > 0 {
		rep.RestoreSpeedup = rep.TextRestoreMS / rep.CheckpointRestoreMS
	}
	return rep, nil
}

// withLog opens the durability directory (SyncOff, NG indexes), runs
// fn, and closes the log on every path, surfacing the close error.
func withLog(dir string, fn func(*store.Store, *wal.Log) error) (err error) {
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, Indexes: recoveryIndexes})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}()
	return fn(st, l)
}

// withTextLog is withLog with the legacy text checkpoint format — the
// comparison leg of the bench.
func withTextLog(dir string, fn func(*store.Store, *wal.Log) error) (err error) {
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, Indexes: recoveryIndexes, TextCheckpoints: true})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}()
	return fn(st, l)
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
