package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated table or figure: a header, measured rows and
// optional per-row paper reference values for side-by-side comparison.
type Table struct {
	ID    string // e.g. "Table 6", "Figure 8"
	Title string
	Notes []string
	Head  []string
	Rows  [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an explanatory note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Head))
	rows := append([][]string{t.Head}, t.Rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			sb.WriteString(cell)
			if i < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", pad+2))
			}
		}
		sb.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
