package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/pgrdf"
	"repro/internal/sparql"
)

// parallelBenchQueries are the paper queries the morsel-driven executor
// targets: the multi-hop joins and path/triangle aggregates of Tables
// 5–9 whose driving scans are large enough to fan out.
var parallelBenchQueries = []string{"EQ3", "EQ7a", "EQ11d", "EQ12"}

// ParallelQueryResult is one query's three-way comparison: the
// row-at-a-time serial baseline (serial_ms), the vectorized serial
// executor (batch_ms), and the vectorized parallel executor
// (parallel_ms). batch_speedup isolates the vectorization win at
// workers=1; speedup is the combined vectorization+parallelism win
// over the row baseline.
//
// Rows is the baseline's count and ParallelRows the parallel
// executor's; ParallelBench fails if any executor disagrees, so a
// published report is itself evidence the executors agreed. A zero
// count is not a measurement bug: EQ3 and EQ7a are 4-hop chain SELECTs
// whose same-tag join finds no matches at small synthetic scales,
// while the scans and joins being timed still do their full work.
type ParallelQueryResult struct {
	Name         string  `json:"name"`
	Scheme       string  `json:"scheme"`
	Model        string  `json:"model"`
	Rows         int     `json:"rows"`
	ParallelRows int     `json:"parallel_rows"`
	SerialMS     float64 `json:"serial_ms"`
	BatchMS      float64 `json:"batch_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	BatchSpeedup float64 `json:"batch_speedup"`
}

// ParallelLoadResult compares serial vs parallel bulk-load time for the
// NG dataset (all partitions, all configured indexes).
type ParallelLoadResult struct {
	Quads      int     `json:"quads"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// ParallelReport is the payload of BENCH_parallel.json.
type ParallelReport struct {
	Workers    int                   `json:"workers"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Iters      int                   `json:"iters"`
	Queries    []ParallelQueryResult `json:"queries"`
	BulkLoad   ParallelLoadResult    `json:"bulk_load"`
}

// ParallelBench measures the paper's scan-heavy queries under three
// executors — the row-at-a-time serial baseline (vectorization
// disabled), the vectorized serial executor, and the vectorized
// morsel-driven executor with the given worker budget — plus bulk-load
// throughput with serial vs parallel index builds. Each query is
// warmed once, then timed iters times; the median is reported. Note
// that parallel speedups are bounded by the machine: on a single-core
// host the parallel executor can only match the serial one (GOMAXPROCS
// is recorded in the report for that reason); batch_speedup is
// machine-independent since both legs run on one worker.
func ParallelBench(ctx context.Context, env *Env, workers, iters int) (*ParallelReport, error) {
	if workers < 2 {
		workers = 2
	}
	if iters < 1 {
		iters = 1
	}
	rep := &ParallelReport{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0), Iters: iters}
	se := env.NG
	serial := sparql.NewEngine(se.Store)
	serial.Parallelism = 1
	serial.DisableVectorized = true
	batch := sparql.NewEngine(se.Store)
	batch.Parallelism = 1
	par := sparql.NewEngine(se.Store)
	par.Parallelism = workers
	queries := env.Queries()
	for _, name := range parallelBenchQueries {
		q, ok := queries[name]
		if !ok {
			return nil, fmt.Errorf("parallelbench: unknown paper query %q", name)
		}
		model := TargetModelFor(se, name)
		res, err := serial.QueryContext(ctx, model, q) // warm-up + row count
		if err != nil {
			return nil, fmt.Errorf("parallelbench %s (serial): %w", name, err)
		}
		bres, err := batch.QueryContext(ctx, model, q) // warm-up + row count
		if err != nil {
			return nil, fmt.Errorf("parallelbench %s (batch): %w", name, err)
		}
		pres, err := par.QueryContext(ctx, model, q) // warm-up + row count
		if err != nil {
			return nil, fmt.Errorf("parallelbench %s (parallel): %w", name, err)
		}
		if resultCount(bres) != resultCount(res) || resultCount(pres) != resultCount(res) {
			// A timing report over divergent results would be
			// meaningless — and would hide a correctness bug.
			return nil, fmt.Errorf("parallelbench %s: row/batch/parallel executors returned %d/%d/%d rows",
				name, resultCount(res), resultCount(bres), resultCount(pres))
		}
		sMed, err := medianRun(ctx, serial, model, q, iters)
		if err != nil {
			return nil, fmt.Errorf("parallelbench %s (serial): %w", name, err)
		}
		bMed, err := medianRun(ctx, batch, model, q, iters)
		if err != nil {
			return nil, fmt.Errorf("parallelbench %s (batch): %w", name, err)
		}
		pMed, err := medianRun(ctx, par, model, q, iters)
		if err != nil {
			return nil, fmt.Errorf("parallelbench %s (parallel): %w", name, err)
		}
		rep.Queries = append(rep.Queries, ParallelQueryResult{
			Name:         name,
			Scheme:       se.Scheme.String(),
			Model:        model,
			Rows:         resultCount(res),
			ParallelRows: resultCount(pres),
			SerialMS:     ms(sMed),
			BatchMS:      ms(bMed),
			ParallelMS:   ms(pMed),
			Speedup:      speedup(sMed, pMed),
			BatchSpeedup: speedup(sMed, bMed),
		})
	}
	load, err := parallelLoadBench(env, workers, iters)
	if err != nil {
		return nil, err
	}
	rep.BulkLoad = *load
	return rep, nil
}

// parallelLoadBench times loading the NG dataset into a fresh store
// with serial vs parallel index builds.
func parallelLoadBench(env *Env, workers, iters int) (*ParallelLoadResult, error) {
	ds := env.NG.Dataset
	quads := len(ds.Topology) + len(ds.NodeKV) + len(ds.EdgeKV)
	timeLoad := func(par int) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < iters; i++ {
			st, err := pgrdf.NewStore(pgrdf.NG)
			if err != nil {
				return 0, err
			}
			st.SetParallelism(par)
			start := time.Now()
			if _, err := pgrdf.LoadPartitioned(st, ds, "blbench"); err != nil {
				return 0, err
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	sDur, err := timeLoad(1)
	if err != nil {
		return nil, fmt.Errorf("parallelbench bulk load (serial): %w", err)
	}
	pDur, err := timeLoad(workers)
	if err != nil {
		return nil, fmt.Errorf("parallelbench bulk load (parallel): %w", err)
	}
	return &ParallelLoadResult{
		Quads:      quads,
		SerialMS:   ms(sDur),
		ParallelMS: ms(pDur),
		Speedup:    speedup(sDur, pDur),
	}, nil
}

// ParallelDifferential runs every paper query under the row-at-a-time
// serial baseline, the vectorized serial executor, and the vectorized
// parallel executor on all three schemes (NG, SP, and the lazily
// loaded RF ablation) and fails on the first result mismatch — the
// acceptance check that batch-at-a-time and morsel-driven execution
// are byte-identical to the row-at-a-time serial plans.
func ParallelDifferential(ctx context.Context, env *Env, workers int) error {
	if workers < 2 {
		workers = 8
	}
	queries := env.Queries()
	rf, err := env.RFEnv()
	if err != nil {
		return fmt.Errorf("differential: loading RF scheme: %w", err)
	}
	for _, se := range append(env.SchemeEnvs(), rf) {
		serial := sparql.NewEngine(se.Store)
		serial.Parallelism = 1
		serial.DisableVectorized = true
		batch := sparql.NewEngine(se.Store)
		batch.Parallelism = 1
		par := sparql.NewEngine(se.Store)
		par.Parallelism = workers
		// Lower the hash-join threshold so the lazy switch (and thus the
		// partitioned build) engages even at test scale.
		serial.HashJoinThreshold = 16
		batch.HashJoinThreshold = 16
		par.HashJoinThreshold = 16
		for _, name := range sortedKeys(queries) {
			model := TargetModelFor(se, name)
			want, err := serial.QueryContext(ctx, model, queries[name])
			if err != nil {
				return fmt.Errorf("differential %s/%s (serial): %w", se.Scheme, name, err)
			}
			bgot, err := batch.QueryContext(ctx, model, queries[name])
			if err != nil {
				return fmt.Errorf("differential %s/%s (batch): %w", se.Scheme, name, err)
			}
			if bgot.String() != want.String() {
				return fmt.Errorf("differential %s/%s: vectorized result differs from row-at-a-time\n--- row ---\n%s\n--- vectorized ---\n%s",
					se.Scheme, name, want, bgot)
			}
			got, err := par.QueryContext(ctx, model, queries[name])
			if err != nil {
				return fmt.Errorf("differential %s/%s (parallel): %w", se.Scheme, name, err)
			}
			if got.String() != want.String() {
				return fmt.Errorf("differential %s/%s: parallel result differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					se.Scheme, name, want, got)
			}
			// Third leg: parallel execution with per-operator profiling
			// on must stay byte-identical too (the instrumentation layer
			// may not perturb morsel merge order), and the profile must
			// actually carry the plan.
			pres, prof, err := par.QueryProfiledContext(ctx, model, queries[name])
			if err != nil {
				return fmt.Errorf("differential %s/%s (profiled): %w", se.Scheme, name, err)
			}
			if pres.String() != want.String() {
				return fmt.Errorf("differential %s/%s: profiled parallel result differs from serial", se.Scheme, name)
			}
			if prof == nil || len(prof.Plan) == 0 {
				return fmt.Errorf("differential %s/%s: profiled run returned an empty profile", se.Scheme, name)
			}
		}
		if n := par.ParallelStats().ActiveWorkers; n != 0 {
			return fmt.Errorf("differential %s: %d worker goroutines leaked", se.Scheme, n)
		}
		if n := se.Store.OpenCursors(); n != 0 {
			return fmt.Errorf("differential %s: %d cursors leaked", se.Scheme, n)
		}
	}
	return nil
}

// medianRun times iters runs and reports the median. Each run starts
// from a collected heap (like testing.B between runs): the parallel
// hash build's partial tables otherwise accumulate as floating garbage
// across iterations, and the background collector's marking competes
// with the measured query — the later iterations would be charged for
// the earlier ones' garbage.
func medianRun(ctx context.Context, e *sparql.Engine, model, query string, iters int) (time.Duration, error) {
	durs := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		runtime.GC()
		start := time.Now()
		if _, err := e.QueryContext(ctx, model, query); err != nil {
			return 0, err
		}
		durs = append(durs, time.Since(start))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func speedup(serial, parallel time.Duration) float64 {
	if parallel <= 0 {
		return 0
	}
	return float64(serial) / float64(parallel)
}
