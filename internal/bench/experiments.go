package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/pg"
	"repro/internal/pgrdf"
)

// Paper constants for side-by-side comparison columns.
var (
	paperTable6 = map[string]int{
		"Nodes": 76245, "Edges": 1796085, "Node KVs": 1218763, "Edge KVs": 3345982,
	}
	paperTable7 = map[string]int{
		"follows": 1667885, "knows": 128200, "refs": 3771755, "hasTag": 792990,
		"NG total": 6360830, "SP total": 9953000,
	}
	paperTable9MB = map[string]map[string]float64{
		"NG": {"Triples Table": 248, "Values Table": 56, "PCSGM Index": 259, "PSCGM Index": 338, "GPSCM Index": 366, "SPCGM Index": 358, "Total": 1625},
		"SP": {"Triples Table": 329, "Values Table": 57, "PCSGM Index": 398, "PSCGM Index": 504, "SPCGM Index": 506, "Total": 1794},
	}
	// Paper result counts for EQ1–EQ12 (Table 10), at full scale.
	paperResults = map[string]int{
		"EQ1": 251, "EQ2": 1249, "EQ3": 11440, "EQ4": 3011,
		"EQ5a": 206, "EQ5b": 206, "EQ6a": 13012, "EQ6b": 13012,
		"EQ7a": 11440, "EQ7b": 11440, "EQ8a": 1269, "EQ8b": 1269,
		"EQ9": 580, "EQ10": 412,
		"EQ11a": 21, "EQ11b": 900, "EQ11c": 52540, "EQ11d": 3573916, "EQ11e": 257861728,
		"EQ12": 20211887,
	}
)

// Table1 renders the RDF representation of the three models on the
// Figure 1 sample graph (the content of Table 1).
func Table1() *Table {
	t := &Table{ID: "Table 1", Title: "RDF representation for three models (Figure 1 graph)",
		Head: []string{"model", "partition", "quad/triple"}}
	g := figure1Graph()
	for _, s := range pgrdf.Schemes {
		ds := pgrdf.NewConverter(s).Convert(g)
		for _, q := range ds.Topology {
			t.AddRow(s.String(), "topology", q.String())
		}
		for _, q := range ds.EdgeKV {
			t.AddRow(s.String(), "edge-KV", q.String())
		}
		for _, q := range ds.NodeKV {
			t.AddRow(s.String(), "node-KV", q.String())
		}
	}
	return t
}

func figure1Graph() *pg.Graph {
	g := pg.NewGraph()
	v1, _ := g.AddVertexWithID(1)
	v2, _ := g.AddVertexWithID(2)
	v1.SetProperty("name", pg.S("Amy"))
	v1.SetProperty("age", pg.I(23))
	v2.SetProperty("name", pg.S("Mira"))
	v2.SetProperty("age", pg.I(22))
	e3, _ := g.AddEdgeWithID(3, 1, 2, "follows")
	e3.SetProperty("since", pg.I(2007))
	e4, _ := g.AddEdgeWithID(4, 1, 2, "knows")
	e4.SetProperty("firstMetAt", pg.S("MIT"))
	return g
}

// Table2 compares predicted vs measured cardinalities on the generated
// dataset for all three models.
func Table2(env *Env) *Table {
	t := &Table{ID: "Table 2", Title: "Property graph vs RDF cardinalities (predicted = formula, measured = generated)",
		Head: []string{"model", "quantity", "predicted", "measured"}}
	vocab := Vocab()
	for _, s := range pgrdf.Schemes {
		conv := &pgrdf.Converter{Scheme: s, Vocab: vocab, Opts: pgrdf.DefaultOptions()}
		ds := conv.Convert(env.Graph)
		pred := pgrdf.PredictCardinalities(env.GraphStats, s)
		meas := pgrdf.MeasureCardinalities(ds)
		add := func(q string, p, m int) { t.AddRow(s.String(), q, fmt.Sprint(p), fmt.Sprint(m)) }
		add("named graphs", pred.NamedGraphs, meas.NamedGraphs)
		add("obj-prop triples/quads", pred.ObjPropQuads, meas.ObjPropQuads)
		add("data-prop triples", pred.DataPropTriples, meas.DataPropTriples)
		add("distinct subjects", pred.DistinctSubjects, meas.DistinctSubjects)
		add("distinct obj-properties", pred.DistinctObjProps, meas.DistinctObjProps)
		add("distinct data-properties", pred.DistinctDataProps, meas.DistinctDataProps)
	}
	return t
}

// Table5 regenerates the index-based access plans for the Table 5
// queries under both schemes.
func Table5(env *Env) *Table {
	t := &Table{ID: "Table 5", Title: "Property graph query execution using indexes (EXPLAIN output)",
		Head: []string{"query", "scheme", "plan"}}
	queries := env.Queries()
	for _, name := range []string{"EQ1", "EQ8a", "EQ8b", "EQ4"} {
		q, ok := queries[name]
		if !ok {
			continue
		}
		for _, se := range env.SchemeEnvs() {
			if schemeVariant(name) == "a" && se.Scheme != pgrdf.NG {
				continue
			}
			if schemeVariant(name) == "b" && se.Scheme != pgrdf.SP {
				continue
			}
			plan, err := se.Engine.Explain(TargetModelFor(se, name), q)
			if err != nil {
				plan = "ERROR: " + err.Error()
			}
			for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
				t.AddRow(name, se.Scheme.String(), line)
			}
		}
	}
	return t
}

// Table6 reports the generated dataset characteristics next to the
// paper's.
func Table6(env *Env) *Table {
	t := &Table{ID: "Table 6", Title: "Twitter dataset characteristics",
		Head: []string{"quantity", "generated", "paper (full scale)", "generated/paper"}}
	st := env.GraphStats
	rows := []struct {
		name string
		val  int
	}{
		{"Nodes", st.Vertices},
		{"Edges", st.Edges},
		{"Node KVs", st.NodeKVs},
		{"Edge KVs", st.EdgeKVs},
	}
	for _, r := range rows {
		ref := paperTable6[r.name]
		t.AddRow(r.name, fmt.Sprint(r.val), fmt.Sprint(ref), fmt.Sprintf("%.3f", float64(r.val)/float64(ref)))
	}
	t.AddNote("generated at scale factor %.3f (%d egos vs the paper's 973)", float64(env.Config.Egos)/973, env.Config.Egos)
	return t
}

// Table7 reports transformed RDF triple counts per label/key and the
// NG/SP totals.
func Table7(env *Env) *Table {
	t := &Table{ID: "Table 7", Title: "Transformed RDF dataset characteristics: triples",
		Head: []string{"quantity", "generated", "paper (full scale)"}}
	tc := pgrdf.CountTriples(env.NG.Dataset, Vocab())
	for _, label := range []string{"follows", "knows"} {
		t.AddRow("edges "+label, fmt.Sprint(tc.ByLabel[label]), fmt.Sprint(paperTable7[label]))
	}
	for _, key := range []string{"refs", "hasTag"} {
		t.AddRow("KVs "+key, fmt.Sprint(tc.ByKey[key]), fmt.Sprint(paperTable7[key]))
	}
	t.AddRow("NG total", fmt.Sprint(env.NG.Dataset.Len()), fmt.Sprint(paperTable7["NG total"]))
	t.AddRow("SP total", fmt.Sprint(env.SP.Dataset.Len()), fmt.Sprint(paperTable7["SP total"]))
	t.AddNote("SP exceeds NG by 2*E = %d triples (-e-sPO-p and -s-e-o per edge)", 2*env.GraphStats.Edges)
	return t
}

// Table8 reports distinct resources per position for NG vs SP.
func Table8(env *Env) *Table {
	t := &Table{ID: "Table 8", Title: "Transformed RDF dataset characteristics: resources",
		Head: []string{"quantity", "NG", "SP", "paper NG", "paper SP"}}
	ngStats, err := env.NG.Store.Stats(env.NG.Names.All)
	if err != nil {
		t.AddNote("NG stats error: %v", err)
		return t
	}
	spStats, err := env.SP.Store.Stats(env.SP.Names.All)
	if err != nil {
		t.AddNote("SP stats error: %v", err)
		return t
	}
	t.AddRow("Quads/Triples", fmt.Sprint(ngStats.Quads), fmt.Sprint(spStats.Quads), "6360830", "9953000")
	t.AddRow("Subjects", fmt.Sprint(ngStats.Subjects), fmt.Sprint(spStats.Subjects), "1019549", "1866182")
	t.AddRow("Predicates", fmt.Sprint(ngStats.Predicates), fmt.Sprint(spStats.Predicates), "4", "1796090")
	t.AddRow("Objects", fmt.Sprint(ngStats.Objects), fmt.Sprint(spStats.Objects), "288392", "288394")
	t.AddRow("Named Graphs", fmt.Sprint(ngStats.NamedGraphs), fmt.Sprint(spStats.NamedGraphs), "1796085", "0")
	return t
}

// Table9 reports estimated physical storage for both schemes.
func Table9(env *Env) *Table {
	t := &Table{ID: "Table 9", Title: "Physical storage characteristics (estimated MB)",
		Head: []string{"object", "NG MB", "SP MB", "paper NG MB", "paper SP MB"}}
	ngRep := env.NG.Store.Storage()
	spRep := env.SP.Store.Storage()
	objects := []string{"Triples Table", "Values Table", "PCSGM Index", "PSCGM Index", "GPSCM Index", "SPCGM Index"}
	fmtMB := func(v float64) string {
		if v == 0 {
			return "NA"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, name := range objects {
		t.AddRow(name, fmtMB(ngRep.MB(name)), fmtMB(spRep.MB(name)),
			fmtMB(paperTable9MB["NG"][name]), fmtMB(paperTable9MB["SP"][name]))
	}
	t.AddRow("Total", fmtMB(ngRep.TotalMB()), fmtMB(spRep.TotalMB()),
		fmtMB(paperTable9MB["NG"]["Total"]), fmtMB(paperTable9MB["SP"]["Total"]))
	t.AddNote("load time: NG %s, SP %s (paper: 5m16s / 6m01s at full scale)", env.NG.LoadDur, env.SP.LoadDur)
	t.AddNote("shape checks: SP triples table > NG; SP has no G index; totals similar")
	return t
}

// Figure4 reports the out-/in-degree distributions of the transformed
// RDF graph (NG model): out-degree counts triples per subject, in-degree
// triples per object. The paper notes "the in-degrees are generally
// higher than out-degrees as the same literal values are often shared
// between many KVs" — which only holds over the RDF graph, where
// popular tag/keyword literals are objects of thousands of KV triples.
func Figure4(env *Env) *Table {
	t := &Table{ID: "Figure 4", Title: "Out-degree and in-degree distribution (RDF graph, NG model)",
		Head: []string{"degree", "#nodes (out)", "#nodes (in)"}}
	out, in := rdfDegreeDistribution(env.NG.Dataset)
	degrees := make(map[int]struct{})
	for d := range out {
		degrees[d] = struct{}{}
	}
	for d := range in {
		degrees[d] = struct{}{}
	}
	var sorted []int
	for d := range degrees {
		sorted = append(sorted, d)
	}
	sort.Ints(sorted)
	// Log-scale buckets to keep the table small.
	buckets := []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1 << 20}
	outB := make([]int, len(buckets))
	inB := make([]int, len(buckets))
	for _, d := range sorted {
		for i := len(buckets) - 1; i >= 0; i-- {
			if d >= buckets[i] {
				outB[i] += out[d]
				inB[i] += in[d]
				break
			}
		}
	}
	for i := 0; i < len(buckets)-1; i++ {
		label := fmt.Sprintf("[%d,%d)", buckets[i], buckets[i+1])
		t.AddRow(label, fmt.Sprint(outB[i]), fmt.Sprint(inB[i]))
	}
	maxOut, maxIn := 0, 0
	for d := range out {
		if d > maxOut {
			maxOut = d
		}
	}
	for d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	t.AddNote("max out-degree %d, max in-degree %d (paper: in-degree tail is heavier — shared literal values)", maxOut, maxIn)
	return t
}

// rdfDegreeDistribution histograms triples-per-subject (out) and
// triples-per-object (in) over a transformed dataset.
func rdfDegreeDistribution(ds *pgrdf.Dataset) (out, in map[int]int) {
	outDeg := make(map[string]int)
	inDeg := make(map[string]int)
	for _, q := range ds.All() {
		outDeg[q.S.String()]++
		inDeg[q.O.String()]++
	}
	out = make(map[int]int)
	in = make(map[int]int)
	for _, d := range outDeg {
		out[d]++
	}
	for _, d := range inDeg {
		in[d]++
	}
	return out, in
}

// schemeVariant returns "a" (NG formulation) or "b" (SP formulation)
// for the EQ5–EQ8 scheme-specific query pairs, and "" for queries whose
// trailing letter is not a scheme marker (EQ11a–e are hop variants).
func schemeVariant(name string) string {
	switch name {
	case "EQ5a", "EQ6a", "EQ7a", "EQ8a":
		return "a"
	case "EQ5b", "EQ6b", "EQ7b", "EQ8b":
		return "b"
	default:
		return ""
	}
}

// queryFigure runs a set of queries on the applicable schemes and
// renders times + result counts.
func queryFigure(ctx context.Context, env *Env, id, title string, names []string) *Table {
	t := &Table{ID: id, Title: title,
		Head: []string{"query", "scheme", "time", "results", "paper results (full scale)"}}
	queries := env.Queries()
	for _, name := range names {
		q := queries[name]
		for _, se := range env.SchemeEnvs() {
			if schemeVariant(name) == "a" && se.Scheme != pgrdf.NG {
				continue
			}
			if schemeVariant(name) == "b" && se.Scheme != pgrdf.SP {
				continue
			}
			model := TargetModelFor(se, name)
			dur, n, err := RunTimed(ctx, se.Engine, model, q)
			if err != nil {
				t.AddRow(name, se.Scheme.String(), "ERROR", err.Error(), "")
				continue
			}
			t.AddRow(name, se.Scheme.String(), fmtDur(dur), fmt.Sprint(n), fmt.Sprint(paperResults[name]))
		}
	}
	return t
}

// Figure5 runs the node-centric queries EQ1–EQ4.
func Figure5(ctx context.Context, env *Env) *Table {
	t := queryFigure(ctx, env, "Figure 5", "Execution time for node-centric queries", []string{"EQ1", "EQ2", "EQ3", "EQ4"})
	t.AddNote("expected shape: NG ≈ SP (same node-KV triples, index NLJ both)")
	return t
}

// Figure6 runs the edge-centric queries EQ5–EQ8 (a = NG, b = SP).
func Figure6(ctx context.Context, env *Env) *Table {
	t := queryFigure(ctx, env, "Figure 6", "Execution time for edge-centric queries",
		[]string{"EQ5a", "EQ5b", "EQ6a", "EQ6b", "EQ7a", "EQ7b", "EQ8a", "EQ8b"})
	t.AddNote("expected shape: NG < SP on edge-KV access (2 quads vs 3 triples per edge); gap widest at EQ7")
	return t
}

// Figure7 runs the aggregate queries EQ9–EQ10.
func Figure7(ctx context.Context, env *Env) *Table {
	t := queryFigure(ctx, env, "Figure 7", "Execution time for aggregate queries", []string{"EQ9", "EQ10"})
	t.AddNote("expected shape: NG ≈ SP (same topology structures)")
	return t
}

// Figure8 runs the graph traversal queries EQ11a–e.
func Figure8(ctx context.Context, env *Env) *Table {
	t := queryFigure(ctx, env, "Figure 8", "Execution time for graph traversal queries (1..5 hops, path counting)",
		[]string{"EQ11a", "EQ11b", "EQ11c", "EQ11d", "EQ11e"})
	t.AddNote("expected shape: ~exponential growth with hops; NG slightly faster (smaller scan table)")
	t.AddNote("start node: %s (follows out-degree ~21, as in the paper)", env.StartNode)
	return t
}

// Figure9 runs the triangle counting query EQ12.
func Figure9(ctx context.Context, env *Env) *Table {
	t := queryFigure(ctx, env, "Figure 9", "Execution time for triangle counting", []string{"EQ12"})
	t.AddNote("expected shape: hash joins with full scans; NG slightly faster")
	return t
}

// AllExperiments runs everything in paper order, plus the DML
// extension.
func AllExperiments(ctx context.Context, env *Env) []*Table {
	return []*Table{
		Table1(), Table2(env), Table5(env), Table6(env), Table7(env),
		Table8(env), Table9(env), Figure4(env), Figure5(ctx, env), Figure6(ctx, env),
		Figure7(ctx, env), Figure8(ctx, env), Figure9(ctx, env), DMLExtension(env, 200),
		InferenceExtension(ctx, env),
	}
}

// Experiment looks up one experiment by id ("table1".."table9",
// "fig4".."fig9").
func Experiment(ctx context.Context, env *Env, id string) (*Table, error) {
	switch strings.ToLower(id) {
	case "table1", "1":
		return Table1(), nil
	case "table2", "2":
		return Table2(env), nil
	case "table5", "5":
		return Table5(env), nil
	case "table6", "6":
		return Table6(env), nil
	case "table7", "7":
		return Table7(env), nil
	case "table8", "8":
		return Table8(env), nil
	case "table9", "9":
		return Table9(env), nil
	case "fig4":
		return Figure4(env), nil
	case "fig5":
		return Figure5(ctx, env), nil
	case "fig6":
		return Figure6(ctx, env), nil
	case "fig7":
		return Figure7(ctx, env), nil
	case "fig8":
		return Figure8(ctx, env), nil
	case "fig9":
		return Figure9(ctx, env), nil
	case "dml":
		return DMLExtension(env, 200), nil
	case "inference", "inf":
		return InferenceExtension(ctx, env), nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
}

// Sanity cross-checks used by tests: the NG and SP answers to every
// experiment query must match.
func CrossSchemeCheck(ctx context.Context, env *Env) error {
	queries := env.Queries()
	pairs := [][2]string{
		{"EQ5a", "EQ5b"}, {"EQ6a", "EQ6b"}, {"EQ7a", "EQ7b"}, {"EQ8a", "EQ8b"},
	}
	for _, p := range pairs {
		_, nNG, err := RunTimed(ctx, env.NG.Engine, TargetModelFor(env.NG, p[0]), queries[p[0]])
		if err != nil {
			return fmt.Errorf("%s: %w", p[0], err)
		}
		_, nSP, err := RunTimed(ctx, env.SP.Engine, TargetModelFor(env.SP, p[1]), queries[p[1]])
		if err != nil {
			return fmt.Errorf("%s: %w", p[1], err)
		}
		if nNG != nSP {
			return fmt.Errorf("%s/%s disagree: NG=%d SP=%d", p[0], p[1], nNG, nSP)
		}
	}
	for _, name := range []string{"EQ1", "EQ2", "EQ3", "EQ4", "EQ9", "EQ10", "EQ12"} {
		_, nNG, err := RunTimed(ctx, env.NG.Engine, TargetModelFor(env.NG, name), queries[name])
		if err != nil {
			return fmt.Errorf("NG %s: %w", name, err)
		}
		_, nSP, err := RunTimed(ctx, env.SP.Engine, TargetModelFor(env.SP, name), queries[name])
		if err != nil {
			return fmt.Errorf("SP %s: %w", name, err)
		}
		if nNG != nSP {
			return fmt.Errorf("%s disagrees: NG=%d SP=%d", name, nNG, nSP)
		}
	}
	return nil
}
