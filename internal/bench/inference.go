package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/inference"
	"repro/internal/rdf"
)

// InferenceExtension exercises §5.2 at dataset scale: map the
// property-graph relationship predicates into a small ontology
// (rel:follows and rel:knows are subproperties of rel:connectedTo),
// pre-compute the RDFS entailment with the forward-chaining engine into
// an "inferred" model — Oracle's native-inference workflow — and show
// that a single-predicate SPARQL query over the virtual (asserted +
// inferred) dataset replaces the alternation query EQ9/EQ10 use.
func InferenceExtension(ctx context.Context, env *Env) *Table {
	t := &Table{ID: "Extension: Inference", Title: "RDFS subproperty entailment over the transformed dataset (§5.2)",
		Head: []string{"quantity", "value"}}
	se := env.NG
	vocab := Vocab()
	connectedTo := rdf.NewIRI(vocab.RelNS + "connectedTo")
	subPropertyOf := rdf.NewIRI(rdf.RDFSSubPropertyOf)

	// The ontology: both PG edge labels are subproperties of connectedTo.
	ont := []rdf.Quad{
		{S: vocab.LabelIRI("follows"), P: subPropertyOf, O: connectedTo},
		{S: vocab.LabelIRI("knows"), P: subPropertyOf, O: connectedTo},
	}
	if _, err := se.Store.Load("ontology", ont); err != nil {
		t.AddNote("load error: %v", err)
		return t
	}

	eng := inference.New(se.Store)
	// Only the subproperty-usage rule is needed; restrict the rule set
	// so fixpoint iteration stays linear in the entailment size.
	if err := eng.AddRule(inference.Rule{
		Name: "subPropertyOf-usage",
		Body: []inference.TriplePattern{
			{S: "?p", P: "<" + rdf.RDFSSubPropertyOf + ">", O: "?q"},
			{S: "?s", P: "?p", O: "?o"},
		},
		Head: []inference.TriplePattern{{S: "?s", P: "?q", O: "?o"}},
	}); err != nil {
		t.AddNote("rule error: %v", err)
		return t
	}

	// The entailment source spans topology plus the ontology. Ignore
	// already-exists errors so the experiment is rerunnable on one env.
	if _, err := se.Store.ResolveDataset("topo_ont"); err != nil {
		if err := se.Store.CreateVirtualModel("topo_ont", se.Names.Topology, "ontology"); err != nil {
			t.AddNote("virtual model error: %v", err)
			return t
		}
	}
	start := time.Now()
	n, err := eng.Run("topo_ont", "inferred", inference.Options{})
	if err != nil {
		t.AddNote("run error: %v", err)
		return t
	}
	dur := time.Since(start)

	// Query the enriched dataset: one plain predicate instead of the
	// (knows|follows) alternation.
	if _, err := se.Store.ResolveDataset("topo_inferred"); err != nil {
		if err := se.Store.CreateVirtualModel("topo_inferred", se.Names.Topology, "inferred"); err != nil {
			t.AddNote("virtual model error: %v", err)
			return t
		}
	}
	q := `PREFIX rel: <` + vocab.RelNS + `>
SELECT (COUNT(*) AS ?c) WHERE { ?x rel:connectedTo ?y }`
	durQ, count, err := RunTimed(ctx, se.Engine, "topo_inferred", q)
	if err != nil {
		t.AddNote("query error: %v", err)
		return t
	}

	t.AddRow("topology edges", fmt.Sprint(env.GraphStats.Edges))
	t.AddRow("inferred triples", fmt.Sprint(n))
	t.AddRow("entailment time", dur.Round(time.Millisecond).String())
	t.AddRow("connectedTo count (asserted+inferred)", fmt.Sprint(count))
	t.AddRow("connectedTo query time", fmtDur(durQ))
	t.AddNote("inferred ≈ one rel:connectedTo triple per topology edge (vertex pairs linked by both labels dedupe)")
	return t
}
