package bench

import (
	"context"
	"strings"
	"testing"
)

func TestDMLExtensionRoundTrips(t *testing.T) {
	env := sharedEnv(t)

	// Record a fingerprint: EQ8 counts depend on edge KVs being intact.
	queries := env.Queries()
	_, beforeNG, err := RunTimed(context.Background(), env.NG.Engine, TargetModelFor(env.NG, "EQ8a"), queries["EQ8a"])
	if err != nil {
		t.Fatal(err)
	}
	_, beforeSP, err := RunTimed(context.Background(), env.SP.Engine, TargetModelFor(env.SP, "EQ8b"), queries["EQ8b"])
	if err != nil {
		t.Fatal(err)
	}

	tab := DMLExtension(env, 50)
	out := tab.String()
	if strings.Contains(out, "error") || strings.Contains(out, "unexpected") {
		t.Fatalf("DML experiment reported a problem:\n%s", out)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d\n%s", len(tab.Rows), out)
	}

	// The store must be exactly restored: rerun the fingerprint queries.
	_, afterNG, err := RunTimed(context.Background(), env.NG.Engine, TargetModelFor(env.NG, "EQ8a"), queries["EQ8a"])
	if err != nil {
		t.Fatal(err)
	}
	_, afterSP, err := RunTimed(context.Background(), env.SP.Engine, TargetModelFor(env.SP, "EQ8b"), queries["EQ8b"])
	if err != nil {
		t.Fatal(err)
	}
	if beforeNG != afterNG || beforeSP != afterSP {
		t.Errorf("DML round trip changed query results: NG %d->%d, SP %d->%d",
			beforeNG, afterNG, beforeSP, afterSP)
	}

	// SP must touch more quads than NG for the same edges (3+k vs 1+k).
	quadCol := func(row []string) string { return row[2] }
	if quadCol(tab.Rows[0]) >= quadCol(tab.Rows[1]) && len(quadCol(tab.Rows[0])) >= len(quadCol(tab.Rows[1])) {
		t.Errorf("NG quads (%s) should be below SP quads (%s)\n%s",
			quadCol(tab.Rows[0]), quadCol(tab.Rows[1]), out)
	}
}
