// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Tables 1–9, Figures 4–9,
// queries EQ1–EQ12) against the synthetic Twitter dataset, loaded under
// both the NG and SP schemes (plus RF for ablations).
//
// The harness follows the paper's methodology (§4.4): each query is run
// once to warm the store, then run again for the reported time.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/twitter"
)

// SchemeEnv is one scheme's loaded store.
type SchemeEnv struct {
	Scheme  pgrdf.Scheme
	Store   *store.Store
	Engine  *sparql.Engine
	Names   pgrdf.ModelNames
	Dataset *pgrdf.Dataset
	LoadDur time.Duration
}

// Env is a fully prepared experiment environment.
type Env struct {
	Config     twitter.Config
	Graph      *pg.Graph
	GraphStats pg.Stats
	NG, SP     *SchemeEnv

	// Tag is the generated analogue of the paper's "#webseries": a tag
	// chosen so its node count scales like 251/76,245.
	Tag string
	// TagNodeCount is the number of nodes carrying Tag (EQ1's result
	// size analogue).
	TagNodeCount int
	// StartNode is the IRI of the EQ11 start node, chosen with
	// follows-out-degree close to the paper's 21.
	StartNode string

	// rf is the lazily loaded RF scheme (see RFEnv).
	rf     *SchemeEnv
	rfErr  error
	rfOnce sync.Once
}

// Vocab is the vocabulary used by the harness: Twitter nodes use the
// "n" prefix, matching the paper's <http://pg/n6160742>.
func Vocab() pgrdf.Vocabulary {
	v := pgrdf.DefaultVocabulary()
	v.VertexPrefix = "n"
	return v
}

// Setup generates the dataset and loads it under NG and SP.
func Setup(cfg twitter.Config) (*Env, error) {
	g := twitter.Generate(cfg)
	env := &Env{Config: cfg, Graph: g, GraphStats: g.ComputeStats()}
	env.pickTag()
	env.pickStartNode()
	var err error
	if env.NG, err = loadScheme(g, pgrdf.NG); err != nil {
		return nil, err
	}
	if env.SP, err = loadScheme(g, pgrdf.SP); err != nil {
		return nil, err
	}
	return env, nil
}

func loadScheme(g *pg.Graph, s pgrdf.Scheme) (*SchemeEnv, error) {
	st, err := pgrdf.NewStore(s)
	if err != nil {
		return nil, err
	}
	if s == pgrdf.NG {
		// GSPCM serves the GRAPH-anchored subject access of Q2/EQ8
		// (Table 5 lists it for the NG plans).
		if err := st.CreateIndex("GSPCM"); err != nil {
			return nil, err
		}
	}
	conv := &pgrdf.Converter{Scheme: s, Vocab: Vocab(), Opts: pgrdf.DefaultOptions()}
	ds := conv.Convert(g)
	start := time.Now()
	names, err := pgrdf.LoadPartitioned(st, ds, "pg")
	if err != nil {
		return nil, err
	}
	return &SchemeEnv{
		Scheme:  s,
		Store:   st,
		Engine:  sparql.NewEngine(st),
		Names:   names,
		Dataset: ds,
		LoadDur: time.Since(start),
	}, nil
}

// pickTag selects the "#webseries" analogue: the tag whose node count is
// closest to the paper's 251 nodes scaled by dataset size.
func (env *Env) pickTag() {
	counts := make(map[string]int)
	env.Graph.Vertices(func(v *pg.Vertex) bool {
		for _, val := range v.Values("hasTag") {
			counts[val.Str]++
		}
		return true
	})
	target := int(251 * float64(env.GraphStats.Vertices) / 76245)
	if target < 3 {
		target = 3
	}
	best, bestDiff := "", 1<<31
	for tag, n := range counts {
		diff := n - target
		if diff < 0 {
			diff = -diff
		}
		if best == "" || diff < bestDiff || (diff == bestDiff && tag < best) {
			best, bestDiff = tag, diff
		}
	}
	env.Tag = best
	env.TagNodeCount = counts[best]
}

// pickStartNode selects the EQ11 start node: follows-out-degree closest
// to the paper's 21 (EQ11a returns 21 rows).
func (env *Env) pickStartNode() {
	vocab := Vocab()
	bestID, bestDiff := pg.ID(0), 1<<31
	env.Graph.Vertices(func(v *pg.Vertex) bool {
		deg := 0
		for _, e := range env.Graph.OutEdges(v.ID) {
			if e.Label == "follows" {
				deg++
			}
		}
		diff := deg - 21
		if diff < 0 {
			diff = -diff
		}
		if bestID == 0 || diff < bestDiff || (diff == bestDiff && v.ID < bestID) {
			bestID, bestDiff = v.ID, diff
		}
		return true
	})
	env.StartNode = vocab.VertexIRI(bestID).Value
}

// SchemeEnvs returns the NG and SP environments.
func (env *Env) SchemeEnvs() []*SchemeEnv { return []*SchemeEnv{env.NG, env.SP} }

// RFEnv lazily loads the RF (reification) scheme. RF is an ablation
// scheme: it is deliberately not part of SchemeEnvs(), so the timing
// benchmarks stay NG/SP-only, but the executor differentials cover it
// because reified edges stress join shapes the other schemes do not
// (4 triples per edge, shared anchor subjects).
func (env *Env) RFEnv() (*SchemeEnv, error) {
	env.rfOnce.Do(func() {
		env.rf, env.rfErr = loadScheme(env.Graph, pgrdf.RF)
	})
	return env.rf, env.rfErr
}

// Queries returns the Table 10 queries rewritten for the generated
// dataset (its tag and start node).
func (env *Env) Queries() map[string]string {
	m := sparql.PaperQueries()
	for name, q := range m {
		q = strings.ReplaceAll(q, "#webseries", env.Tag)
		q = strings.ReplaceAll(q, "http://pg/n6160742", env.StartNode)
		m[name] = q
	}
	return m
}

// RunTimed runs a query with the paper's methodology (warm-up run, then
// timed runs; we take the median of three timed runs since our queries
// are orders of magnitude shorter than Oracle's and noisier). The
// returned count matches Table 10's "Number of Results" convention: for
// a single-row single-column COUNT query it is the counted value
// (EQ11/EQ12 report path/triangle counts); otherwise it is the number
// of solution rows.
func RunTimed(ctx context.Context, e *sparql.Engine, model, query string) (time.Duration, int, error) {
	res, err := e.QueryContext(ctx, model, query) // warm-up
	if err != nil {
		return 0, 0, err
	}
	runs := 3
	if first := timeOnce(ctx, e, model, query); first > 2*time.Second {
		// Long queries: a single timed run, like the paper.
		return first, resultCount(res), nil
	} else {
		durs := []time.Duration{first}
		for i := 1; i < runs; i++ {
			durs = append(durs, timeOnce(ctx, e, model, query))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return durs[len(durs)/2], resultCount(res), nil
	}
}

func timeOnce(ctx context.Context, e *sparql.Engine, model, query string) time.Duration {
	start := time.Now()
	_, _ = e.QueryContext(ctx, model, query)
	return time.Since(start)
}

func resultCount(res *sparql.Results) int {
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		if v, ok := rdf.LiteralValue(res.Rows[0][0]); ok && v.Kind == rdf.ValueInteger {
			return int(v.Int)
		}
	}
	return res.Len()
}

// TargetModelFor picks the dataset each experiment query family is
// posed against, following Table 4: node-centric queries use
// topology+node-KV, edge-centric queries use the scheme's edge-KV
// target, and traversal/aggregate queries use topology only.
func TargetModelFor(se *SchemeEnv, queryName string) string {
	switch {
	case strings.HasPrefix(queryName, "EQ1") && len(queryName) == 3, // EQ1
		queryName == "EQ2", queryName == "EQ3", queryName == "EQ4":
		return se.Names.TopoNodeKV
	case strings.HasPrefix(queryName, "EQ5"), strings.HasPrefix(queryName, "EQ6"),
		strings.HasPrefix(queryName, "EQ7"), strings.HasPrefix(queryName, "EQ8"):
		// Edge-centric queries touch topology plus edge KVs (and for
		// SP the anchor triples, which live in the edge-KV partition).
		return se.Names.TopoEdgeKV
	case queryName == "EQ9", queryName == "EQ10", queryName == "EQ12",
		strings.HasPrefix(queryName, "EQ11"):
		return se.Names.Topology
	default:
		return se.Names.All
	}
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fmtDur renders a duration in milliseconds with 2 decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
