package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutinelife requires every `go` statement in non-test code to be
// tied to a join mechanism visible in the enclosing function. A
// goroutine nobody can wait for or cancel outlives shutdown, leaks
// under error paths, and races teardown — the WAL checkpointer, morsel
// workers, and follower tail loop all carry explicit lifetimes, and
// this analyzer keeps it that way.
//
// Accepted evidence, checked in order:
//
//   - the spawned call receives a context.Context argument (the callee
//     owns its cancellation);
//   - the goroutine body calls Done on a sync.WaitGroup and the
//     enclosing function calls Add or Wait on one (counter join);
//   - the body watches a cancellation signal: ctx.Done()/ctx.Err(), or
//     a receive from a chan struct{} (stop channel or worker-slot
//     semaphore release);
//   - a channel handshake: the body sends on or closes a channel that
//     the enclosing function receives from (result/err/done channels).
//
// For `go x.method()` the analyzer inspects the same-package callee's
// body. Example programs under repro/examples/ are exempt — they run
// to process exit.
//
// Independently, a goroutine closure that captures an enclosing loop
// variable is flagged: Go ≥ 1.22 makes the capture per-iteration-safe,
// but the gate still requires passing it as an argument so the data
// flow into the goroutine is explicit.
var Goroutinelife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement must have a visible join: WaitGroup, context, stop channel, or channel handshake",
	Run:  runGoroutinelife,
}

func runGoroutinelife(pass *Pass) error {
	if strings.HasPrefix(pass.Path, "repro/examples/") {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, file, g, decls)
			return true
		})
	}
	return nil
}

func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	return decls
}

func checkGoStmt(pass *Pass, file *ast.File, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) {
	enclosing := outermostFunc(file, g.Pos())

	// Loop-variable capture is reported independently of join evidence.
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok && enclosing != nil {
		reportLoopCaptures(pass, enclosing, g, fl)
	}

	if hasContextArg(pass, g.Call) {
		return
	}

	body := goroutineBody(pass, g.Call, decls)
	if body != nil {
		bodyDone := hasWaitGroupCall(pass.Info, body, "Done")
		enclosingJoin := enclosing != nil &&
			hasWaitGroupCallOutside(pass.Info, enclosing.Body, g, "Add", "Wait")
		if bodyDone && enclosingJoin {
			return
		}
		if hasCtxCancelWatch(pass.Info, body) || hasStructChanRecv(pass.Info, body) {
			return
		}
		if enclosing != nil && channelHandshake(pass.Info, body, enclosing.Body, g) {
			return
		}
	}

	pass.Reportf(g.Pos(),
		"goroutine has no visible join mechanism (WaitGroup counter, context.Context, stop channel, or channel handshake with the spawner); tie its lifetime to one")
}

// goroutineBody resolves the AST body the goroutine will run: the
// funclit's body, or the same-package callee's declaration body.
func goroutineBody(pass *Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	if fn := calleeFunc(pass.Info, call); fn != nil {
		if fd, ok := decls[fn]; ok && fd.Body != nil {
			return fd.Body
		}
	}
	return nil
}

func hasContextArg(pass *Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t := pass.Info.TypeOf(a); t != nil && isNamedType(t, "context", "Context") {
			return true
		}
	}
	return false
}

// hasWaitGroupCall reports whether n contains a call to one of the
// named methods on a sync.WaitGroup.
func hasWaitGroupCall(info *types.Info, n ast.Node, names ...string) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := methodCall(info, call)
		if !ok || !isNamedType(recv, "sync", "WaitGroup") {
			return true
		}
		for _, want := range names {
			if method == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasWaitGroupCallOutside is hasWaitGroupCall over the enclosing body
// with the go statement's own subtree excluded.
func hasWaitGroupCallOutside(info *types.Info, body *ast.BlockStmt, skip *ast.GoStmt, names ...string) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if node == skip {
			return false
		}
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := methodCall(info, call)
		if !ok || !isNamedType(recv, "sync", "WaitGroup") {
			return true
		}
		for _, want := range names {
			if method == want {
				found = true
			}
		}
		return true
	})
	return found
}

// hasCtxCancelWatch reports whether n calls Done or Err on a
// context.Context — the body observes cancellation.
func hasCtxCancelWatch(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := methodCall(info, call)
		if !ok || !isNamedType(recv, "context", "Context") {
			return true
		}
		if method == "Done" || method == "Err" {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasStructChanRecv reports whether n receives from a chan struct{}:
// the stop-channel / semaphore-slot idiom.
func hasStructChanRecv(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && isStructChan(info.TypeOf(node.X)) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isStructChan(info.TypeOf(node.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isStructChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// channelHandshake reports whether the goroutine body sends on or
// closes a channel that the enclosing function (outside the go
// statement) receives from.
func channelHandshake(info *types.Info, body ast.Node, enclosing *ast.BlockStmt, skip *ast.GoStmt) bool {
	writes := chanWriteKeys(info, body)
	if len(writes) == 0 {
		return false
	}
	reads := chanReadKeysOutside(info, enclosing, skip)
	for k := range writes {
		if reads[k] {
			return true
		}
	}
	return false
}

// chanWriteKeys collects ExprString keys of channels n sends on or
// closes.
func chanWriteKeys(info *types.Info, n ast.Node) map[string]bool {
	keys := make(map[string]bool)
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SendStmt:
			keys[types.ExprString(node.Chan)] = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "close" && len(node.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					keys[types.ExprString(node.Args[0])] = true
				}
			}
		}
		return true
	})
	return keys
}

// chanReadKeysOutside collects ExprString keys of channels the
// enclosing body receives from or ranges over, excluding the go
// statement's subtree.
func chanReadKeysOutside(info *types.Info, body *ast.BlockStmt, skip *ast.GoStmt) map[string]bool {
	keys := make(map[string]bool)
	ast.Inspect(body, func(node ast.Node) bool {
		if node == skip {
			return false
		}
		switch node := node.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				keys[types.ExprString(node.X)] = true
			}
		case *ast.RangeStmt:
			if isChan(info.TypeOf(node.X)) {
				keys[types.ExprString(node.X)] = true
			}
		}
		return true
	})
	return keys
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// reportLoopCaptures flags uses of enclosing loop variables inside the
// goroutine closure.
func reportLoopCaptures(pass *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, fl *ast.FuncLit) {
	loopVars := make(map[types.Object]string)
	ast.Inspect(enclosing, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Pos() <= g.Pos() && g.End() <= n.End() && n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			}
		case *ast.ForStmt:
			if n.Pos() <= g.Pos() && g.End() <= n.End() {
				if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, l := range init.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								loopVars[obj] = id.Name
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		if name, isLoopVar := loopVars[obj]; isLoopVar {
			reported[obj] = true
			pass.Reportf(g.Pos(),
				"goroutine captures loop variable %s; pass it as an argument to the closure instead", name)
		}
		return true
	})
}
