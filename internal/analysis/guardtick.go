package analysis

import (
	"go/ast"
	"go/types"
)

// Guardtick keeps the budget guard wired to every row source inside
// the query engine. The PR-1 guardrails only work because scans are
// the chokepoint: each row produced ticks the guard, which is how a
// runaway query notices cancellation, deadline expiry, and budget
// exhaustion. A new operator that scans the store directly — without
// ticking — reopens the exact hole the guard closed: rows flow with
// no cancellation point and MaxBindings stops counting them.
//
// Rule, scoped to repro/internal/sparql: any call to a raw store row
// source — (*store.Store).Scan / ScanBatch / ScanIndex / Cursor,
// (*store.Index).Scan / ScanRange / ScanRangeBatch, or
// (*store.Cursor).NextBatch — must sit in a top-level function that
// also ticks the guard (a call to guard.tick, guard.tickN, guard.poll,
// or guard.checkRows somewhere in the same function, typically inside
// the scan callback or the worker loop draining a cursor). Routing
// through (*execCtx).scan satisfies this by construction and is the
// preferred fix. The batched sources pair naturally with tickN: the
// vectorized executor accumulates a pending count over a batch's rows
// and settles it with one tickN per emitted batch (DESIGN.md §15),
// which is budget-equivalent to per-row ticking.
//
// The same rule patrols repro/internal/graph, which has its own nilable
// guard type with the same method names. There the row sources are the
// store cursors the projection drains plus the CSR adjacency accessors
// (Neighbors / InNeighbors and their weight twins) — the algorithm hot
// loops. An algorithm phase that walks adjacency without ticking would
// run a full iteration blind to cancellation, deadlines and MaxWork;
// the morsel runner only polls between morsels, so the per-morsel edge
// work must settle through tickN inside the same top-level function.
var Guardtick = &Analyzer{
	Name: "guardtick",
	Doc:  "store scans and CSR hot loops must tick the budget guard",
	Run:  runGuardtick,
}

// rawScanMethods are the store row sources that bypass (*execCtx).scan.
var rawScanMethods = map[string]map[string]bool{
	"Store":  {"Scan": true, "ScanBatch": true, "ScanIndex": true, "Cursor": true},
	"Index":  {"Scan": true, "ScanRange": true, "ScanBatch": true, "ScanRangeBatch": true},
	"Cursor": {"NextBatch": true},
}

// csrRowMethods are internal/graph's hot-loop row sources: every CSR
// adjacency read inside an algorithm phase stands in for a store scan.
var csrRowMethods = map[string]bool{
	"Neighbors": true, "NeighborWeights": true,
	"InNeighbors": true, "InNeighborWeights": true,
}

const graphPkg = "repro/internal/graph"

// guardMethods are the calls that count as "the guard is consulted".
// tickN is the batch form used by parallel workers: one tickN(n) call
// accounts for n rows, so a worker loop that batches its ticks is as
// guarded as one that ticks per row.
var guardMethods = map[string]bool{"tick": true, "tickN": true, "poll": true, "checkRows": true}

func runGuardtick(pass *Pass) error {
	if pass.Path != sparqlPkg && pass.Path != graphPkg {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := methodCall(pass.Info, call)
			if !ok || !isRawScan(pass.Path, recv, name) {
				return true
			}
			fd := outermostFunc(file, call.Pos())
			if fd == nil || !ticksGuard(pass, fd) {
				pass.Reportf(call.Pos(),
					"store scan without a budget-guard tick; route it through (*execCtx).scan or tick the guard per row")
			}
			return true
		})
	}
	return nil
}

func isRawScan(path string, recv types.Type, name string) bool {
	for typeName, methods := range rawScanMethods {
		if methods[name] && isNamedType(recv, storePkg, typeName) {
			return true
		}
	}
	// Only internal/graph's own hot loops must tick on adjacency reads;
	// consumers elsewhere (tests, reporting) read CSR rows freely.
	return path == graphPkg && csrRowMethods[name] && isNamedType(recv, graphPkg, "CSR")
}

// ticksGuard reports whether fd contains a call to one of the guard
// methods on the package's own guard type, anywhere in its body
// (including nested function literals such as scan callbacks).
func ticksGuard(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := methodCall(pass.Info, call)
		if !ok || !guardMethods[name] {
			return true
		}
		t := recv
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			obj := named.Obj()
			if obj != nil && obj.Pkg() == pass.Pkg && obj.Name() == "guard" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
