package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomiconly enforces two atomics-consistency rules across a package:
//
//  1. A field whose address is ever passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.v), ...) is an
//     atomic field: every other access to it must also go through
//     sync/atomic. A plain read or write of such a field races with
//     the atomic accesses — the race detector only catches it when a
//     test happens to interleave, this analyzer catches it always.
//     (Typed atomics — atomic.Int64, atomic.Pointer[T] — already get
//     this guarantee from the type system.)
//
//  2. A value whose type transitively contains sync or sync/atomic
//     state (Mutex, RWMutex, WaitGroup, Once, atomic.Int64, ...) must
//     never be copied: copying a mutex forks the lock, copying an
//     atomic forks the counter. go vet's copylocks covers the sync
//     types; this rule extends the same check to sync/atomic typed
//     values, flagging value receivers, by-value parameters and
//     results, assignments, range copies, and by-value call arguments.
//     Composite literals are allowed — building a zero-valued struct
//     is initialization, not a copy.
var Atomiconly = &Analyzer{
	Name: "atomiconly",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly; values containing atomics or locks must not be copied",
	Run:  runAtomiconly,
}

func runAtomiconly(pass *Pass) error {
	atomicFields := collectAtomicFields(pass)
	for _, file := range pass.Files {
		parents := buildParents(file)
		checkPlainAccesses(pass, file, atomicFields, parents)
		checkCopies(pass, file)
	}
	return nil
}

// collectAtomicFields finds every struct field whose address flows into
// a sync/atomic call anywhere in the package.
func collectAtomicFields(pass *Pass) map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				u, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					fields[v] = true
				}
			}
			return true
		})
	}
	return fields
}

// buildParents maps every node to its parent so an access can be
// classified by its enclosing context.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// checkPlainAccesses flags selectors of atomic fields that are not
// themselves inside an &field argument to a sync/atomic call.
func checkPlainAccesses(pass *Pass, file *ast.File, fields map[*types.Var]bool, parents map[ast.Node]ast.Node) {
	if len(fields) == 0 {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !fields[v] {
			return true
		}
		if isAtomicContext(pass, sel, parents) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed atomically elsewhere (sync/atomic); this plain access races with it — use the matching atomic op",
			sel.Sel.Name)
		return true
	})
}

// isAtomicContext reports whether sel appears as &sel passed directly
// to a sync/atomic function.
func isAtomicContext(pass *Pass, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) bool {
	p := parents[sel]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	u, ok := p.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	p = parents[u]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	call, ok := p.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// --- copy checks -----------------------------------------------------

// containsSyncState reports whether t transitively contains a named
// type from sync or sync/atomic (interfaces like sync.Locker excluded:
// an interface value holds a pointer).
func containsSyncState(t types.Type) bool {
	return containsSyncState1(t, make(map[types.Type]bool))
}

func containsSyncState1(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if pkg := t.Obj().Pkg(); pkg != nil {
			if path := pkg.Path(); path == "sync" || path == "sync/atomic" {
				_, isIface := t.Underlying().(*types.Interface)
				return !isIface
			}
		}
		return containsSyncState1(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsSyncState1(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncState1(t.Elem(), seen)
	}
	return false
}

func syncCopyName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func checkCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) > 0 {
				if t := fieldValueType(pass, n.Recv.List[0]); t != nil {
					pass.Reportf(n.Pos(),
						"method %s uses a value receiver of type %s, which contains sync/atomic state; use a pointer receiver",
						n.Name.Name, syncCopyName(t))
				}
			}
			checkSignature(pass, n.Type)
		case *ast.FuncLit:
			checkSignature(pass, n.Type)
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				checkCopyExpr(pass, r)
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.Info.TypeOf(n.Value); t != nil && containsSyncState(t) {
					pass.Reportf(n.Value.Pos(),
						"range copies %s by value, which contains sync/atomic state; range over indices or pointers",
						syncCopyName(t))
				}
			}
		case *ast.CallExpr:
			// len/cap inspect without copying; new/make take a type,
			// not a value.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "len", "cap", "new", "make":
						return true
					}
				}
			}
			fn := calleeFunc(pass.Info, n)
			// Calls into sync/atomic take addresses; anything else
			// receiving a lock-bearing value by value forks it.
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return true
			}
			for _, a := range n.Args {
				checkCopyExpr(pass, a)
			}
		}
		return true
	})
}

// checkSignature flags by-value parameters and results whose types
// contain sync/atomic state.
func checkSignature(pass *Pass, ft *ast.FuncType) {
	flag := func(list *ast.FieldList, kind string) {
		if list == nil {
			return
		}
		for _, f := range list.List {
			if t := fieldValueType(pass, f); t != nil {
				pass.Reportf(f.Pos(),
					"%s passes %s by value, which contains sync/atomic state; pass a pointer",
					kind, syncCopyName(t))
			}
		}
	}
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
}

// fieldValueType returns the field's type when it is a non-pointer type
// containing sync state, nil otherwise.
func fieldValueType(pass *Pass, f *ast.Field) types.Type {
	t := pass.Info.TypeOf(f.Type)
	if t == nil {
		return nil
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return nil
	}
	if !containsSyncState(t) {
		return nil
	}
	return t
}

// checkCopyExpr flags an expression whose evaluation copies a
// lock-bearing value: any non-composite-literal expression of such a
// type. Composite literals (and their addresses) construct rather than
// copy; pointers and calls to sync/atomic are fine.
func checkCopyExpr(pass *Pass, e ast.Expr) {
	inner := ast.Unparen(e)
	switch inner.(type) {
	case *ast.CompositeLit:
		return
	case *ast.UnaryExpr:
		return // &x yields a pointer
	case *ast.CallExpr:
		return // the callee's signature is checked at its declaration
	}
	if tv, ok := pass.Info.Types[inner]; ok && tv.IsType() {
		return // a type expression (new(T), conversions), not a value
	}
	t := pass.Info.TypeOf(inner)
	if t == nil || !containsSyncState(t) {
		return
	}
	pass.Reportf(e.Pos(),
		"expression copies %s by value, which contains sync/atomic state; use a pointer",
		syncCopyName(t))
}
