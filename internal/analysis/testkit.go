package analysis

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file is the analysistest analogue: RunTest checks an analyzer
// against a testdata package annotated with golang.org/x/tools-style
// expectations:
//
//	bad()  // want "regexp matching the diagnostic"
//
// Every diagnostic must be matched by a want on its line and every
// want must be matched by a diagnostic; either mismatch fails the
// test. Multiple wants on one line each consume one diagnostic.

var (
	sharedOnce   sync.Once
	sharedLoader *Loader
	sharedErr    error
)

// testLoader returns a process-wide loader that has indexed export
// data for the whole module, so testdata packages can import repro
// packages. Loading the module once costs a few seconds; every RunTest
// after that is cheap.
func testLoader() (*Loader, error) {
	sharedOnce.Do(func() {
		out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
		if err != nil {
			sharedErr = fmt.Errorf("locating module root: %v", err)
			return
		}
		root := strings.TrimSpace(string(out))
		sharedLoader = NewLoader(root)
		if _, err := sharedLoader.Load("./..."); err != nil {
			sharedErr = err
		}
	})
	return sharedLoader, sharedErr
}

// RunTest runs one analyzer over the testdata package in dir,
// presenting it to the analyzer under importPath (so path-scoped
// analyzers such as guardtick can be pointed at the package they
// guard), and verifies the findings against // want comments.
func RunTest(t testing.TB, a *Analyzer, dir, importPath string) {
	t.Helper()
	loader, err := testLoader()
	if err != nil {
		t.Fatalf("loading module for analysis tests: %v", err)
	}
	pkg, err := loader.CheckDir(dir, importPath)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	findings, err := RunAnalyzers(loader.Fset, []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}
	for _, f := range findings {
		key := wantKey{file: filepath.Base(f.Pos.Filename), line: f.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w.used || !w.re.MatchString(f.Message) {
				continue
			}
			wants[key][i].used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", key.file, key.line, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("no finding at %s:%d matched want %q", key.file, key.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts // want "..." expectations from every .go file
// directly under dir.
func parseWants(dir string) (map[wantKey][]want, error) {
	out := make(map[wantKey][]want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, q := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want string %s: %v", e.Name(), line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), line, pat, err)
				}
				key := wantKey{file: e.Name(), line: line}
				out[key] = append(out[key], want{re: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return out, nil
}

// splitQuoted returns the double-quoted segments of a want payload,
// e.g. `"a" "b"` -> ["\"a\"", "\"b\""].
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}
