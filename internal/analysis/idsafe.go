package analysis

import (
	"go/ast"
	"go/token"
)

// Idsafe protects the opacity of dictionary IDs outside the store.
//
// The RF/NG/SP schemes stay interchangeable only because every layer
// above the store treats a store.ID as an opaque token: the same term
// gets the same ID under every scheme, and nothing else about the
// numeric value is contract. Arithmetic on IDs, ordering IDs, or
// fabricating an ID from an integer all bake the dictionary's current
// assignment order into query results — the bug class that makes one
// scheme return different rows than another with no test failing until
// the insert order changes.
//
// Outside repro/internal/store (which owns the representation), Idsafe
// forbids:
//   - arithmetic and bitwise binary ops where either operand is store.ID
//   - order comparisons (< <= > >=) between IDs
//   - compound assignment (+=, ...) and ++/-- on an ID lvalue
//   - conversions store.ID(x) from non-constant expressions
//
// Equality against other IDs (and the NoID / Any sentinels) stays
// legal: identity is exactly the contract IDs offer.
var Idsafe = &Analyzer{
	Name: "idsafe",
	Doc:  "dictionary IDs are opaque outside internal/store: no arithmetic, ordering, or fabrication",
	Run:  runIdsafe,
}

const storePkg = "repro/internal/store"

func isStoreID(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && isNamedType(t, storePkg, "ID")
}

var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

var orderOps = map[token.Token]bool{
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

var arithAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.SHL_ASSIGN: true,
	token.SHR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

func runIdsafe(pass *Pass) error {
	if pass.Path == storePkg {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				// Whole-expression constants (e.g. ^ID(0) spelled in a
				// const block) carry no runtime ID and are fine.
				if tv, ok := pass.Info.Types[n]; ok && tv.Value != nil {
					return true
				}
				if arithOps[n.Op] && (isStoreID(pass, n.X) || isStoreID(pass, n.Y)) {
					pass.Reportf(n.Pos(),
						"arithmetic (%s) on a store.ID; IDs are opaque dictionary tokens — derive values from terms, not IDs", n.Op)
				}
				if orderOps[n.Op] && (isStoreID(pass, n.X) || isStoreID(pass, n.Y)) {
					pass.Reportf(n.Pos(),
						"ordering store.IDs with %s; ID order is dictionary insertion order, not term order — compare terms instead", n.Op)
				}
			case *ast.AssignStmt:
				if !arithAssignOps[n.Tok] {
					return true
				}
				for _, lhs := range n.Lhs {
					if isStoreID(pass, lhs) {
						pass.Reportf(n.Pos(), "compound arithmetic assignment (%s) on a store.ID", n.Tok)
					}
				}
			case *ast.IncDecStmt:
				if isStoreID(pass, n.X) {
					pass.Reportf(n.Pos(), "%s on a store.ID; IDs are assigned only by the dictionary", n.Tok)
				}
			case *ast.CallExpr:
				// A conversion store.ID(x): the Fun position holds a type.
				tv, ok := pass.Info.Types[n.Fun]
				if !ok || !tv.IsType() || !isNamedType(tv.Type, storePkg, "ID") || len(n.Args) != 1 {
					return true
				}
				if argTV, ok := pass.Info.Types[n.Args[0]]; ok && argTV.Value == nil && !isStoreID(pass, n.Args[0]) {
					pass.Reportf(n.Pos(),
						"store.ID fabricated from a non-constant integer; only the dictionary issues IDs (use Dict().Intern or Lookup)")
				}
			}
			return true
		})
	}
	return nil
}
