package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errsentinel bans identity comparison of error values. The engine's
// QueryError wraps its sentinel kind (ErrTimeout, ErrBudgetExceeded,
// ErrCanceled, ErrInternal) behind Unwrap, so `err == ErrTimeout` is
// false exactly when it matters; the same applies to io.EOF once a
// reader is wrapped. errors.Is is the only comparison that survives
// wrapping, and the difference between the two is invisible in tests
// until a caller adds one fmt.Errorf("%w") frame.
var Errsentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "compare errors with errors.Is/errors.As, never == or != (nil checks excepted)",
	Run:  runErrsentinel,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorExpr reports whether e is a non-nil expression of a type that
// is (or implements) error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Identical(t, errorIface)
}

func runErrsentinel(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrorExpr(pass.Info, n.X) && isErrorExpr(pass.Info, n.Y) {
					pass.Reportf(n.Pos(),
						"error compared with %s; use errors.Is so the check survives wrapping", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(pass.Info, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if isErrorExpr(pass.Info, e) {
							pass.Reportf(e.Pos(),
								"switch on an error value compares with ==; use errors.Is in if/else chains")
							return true
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
