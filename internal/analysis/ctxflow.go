package analysis

import (
	"go/ast"
	"strings"
)

// Ctxflow enforces the context-threading discipline the PR-1 guardrails
// depend on: a query that never sees the caller's context can neither
// be canceled nor observe its deadline, so the admission/timeout story
// silently degrades to "runs forever".
//
// Two rules:
//
//  1. Outside the engine package itself (and examples/ and tests), the
//     ctx-less convenience wrappers on *sparql.Engine — Query, Ask,
//     Construct, Describe, Update — are forbidden; call the *Context
//     form and pass the context you were given.
//  2. Inside library packages (repro/internal/...), minting a fresh
//     context with context.Background or context.TODO is forbidden:
//     library code receives its context from the caller. Binaries
//     under cmd/ create the root context, so they are exempt from
//     this rule (but not from rule 1).
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library/server code must call *Context engine entry points and thread the caller's context",
	Run:  runCtxflow,
}

// ctxlessEngineMethods are the context.Background wrappers on
// *sparql.Engine, mapped to the entry point to call instead.
var ctxlessEngineMethods = map[string]string{
	"Query":     "QueryContext",
	"Ask":       "AskContext",
	"Construct": "ConstructContext",
	"Describe":  "DescribeContext",
	"Update":    "UpdateContext",
}

const sparqlPkg = "repro/internal/sparql"

func runCtxflow(pass *Pass) error {
	path := pass.Path
	if path == sparqlPkg || strings.HasPrefix(path, "repro/examples/") {
		return nil
	}
	libraryPkg := strings.HasPrefix(path, "repro/internal/")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, name, ok := methodCall(pass.Info, call); ok {
				if want, banned := ctxlessEngineMethods[name]; banned && isNamedType(recv, sparqlPkg, "Engine") {
					pass.Reportf(call.Pos(),
						"(*sparql.Engine).%s pins context.Background; call %s and thread the caller's context",
						name, want)
				}
				return true
			}
			if !libraryPkg {
				return true
			}
			if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
				pass.Reportf(call.Pos(),
					"library code must accept a context from its caller, not mint context.%s", fn.Name())
			}
			return true
		})
	}
	return nil
}
