package analysis

import (
	"go/ast"
	"go/types"
)

// Walerr keeps the durability and replication chains honest. The
// WAL's whole guarantee — crash at any byte, recover to the last
// durable commit — rests on the caller noticing when a journal write
// fails: an ignored (*wal.Log).Commit or (*wal.Writer).Append error
// means a mutation is applied (or reported as applied) without being
// on disk, which is a silent durability hole no test will catch until
// a crash. The same goes for Checkpoint (a failed snapshot must not
// be treated as a truncation point) and Sync (the shutdown flush).
//
// The replication apply/ack chain gets the same treatment: a dropped
// wal.ApplyBatch or wal.DecodeFrames error — or a discarded error
// from the follower's apply, bootstrap, tail, or conflict handlers —
// silently forks a follower from its leader with no crash to notice.
// Discarding any of these errors — an expression statement, `_ =`,
// go, or defer — is reported.
var Walerr = &Analyzer{
	Name: "walerr",
	Doc:  "errors from wal/repl durability and replication-apply calls must not be discarded",
	Run:  runWalerr,
}

// walerrMethods maps package path → receiver type → the methods whose
// error return is durability- or replication-critical. Close is
// exempt: it is routinely deferred on teardown paths where the flush
// already happened via Sync. Follower.Run is exempt too: it only
// returns the context's error and is designed to be driven by `go`.
// The repl.Follower entries are unexported, so they bind inside the
// repl package itself — exactly where the apply/ack chain lives.
var walerrMethods = map[string]map[string]map[string]bool{
	walPkg: {
		"Log":    {"Commit": true, "Checkpoint": true, "CheckpointIncremental": true, "Sync": true},
		"Writer": {"Append": true, "Sync": true},
	},
	replPkg: {
		"Follower": {
			"applyFrames":    true,
			"bootstrap":      true,
			"tailOnce":       true,
			"handleConflict": true,
		},
	},
}

// walerrFuncs maps package path → package-level functions under the
// same rule: these are the follower's apply path, and an unhandled
// error means the local store holds a half-applied batch.
var walerrFuncs = map[string]map[string]bool{
	walPkg: {"ApplyBatch": true, "DecodeFrames": true},
}

const (
	walPkg  = "repro/internal/wal"
	replPkg = "repro/internal/repl"
)

// walerrCall reports whether call invokes one of the guarded methods
// or functions.
func walerrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if walerrFuncs[pkg][fn.Name()] {
			return fn.Name(), true
		}
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	typeName := named.Obj().Name()
	if walerrMethods[pkg][typeName][fn.Name()] {
		return typeName + "." + fn.Name(), true
	}
	return "", false
}

func runWalerr(pass *Pass) error {
	report := func(call *ast.CallExpr, how string) {
		if name, ok := walerrCall(pass.Info, call); ok {
			pass.Reportf(call.Pos(),
				"%s error %s; a dropped journal error is a silent durability hole — handle it or fail the operation", name, how)
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "discarded")
				}
			case *ast.GoStmt:
				report(n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				report(n.Call, "discarded by defer")
			case *ast.AssignStmt:
				// `_ = l.Sync()` and friends: every LHS is blank.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				report(call, "assigned to _")
			}
			return true
		})
	}
	return nil
}
