package analysis

import (
	"go/ast"
	"go/types"
)

// Walerr keeps the durability chain honest. The WAL's whole guarantee
// — crash at any byte, recover to the last durable commit — rests on
// the caller noticing when a journal write fails: an ignored
// (*wal.Log).Commit or (*wal.Writer).Append error means a mutation is
// applied (or reported as applied) without being on disk, which is a
// silent durability hole no test will catch until a crash. The same
// goes for Checkpoint (a failed snapshot must not be treated as a
// truncation point) and Sync (the shutdown flush). Discarding these
// errors — an expression statement, `_ =`, go, or defer — is reported.
var Walerr = &Analyzer{
	Name: "walerr",
	Doc:  "errors from wal.Log/wal.Writer durability methods must not be discarded",
	Run:  runWalerr,
}

// walerrMethods maps receiver type (in repro/internal/wal) to the
// methods whose error return is durability-critical. Close is exempt:
// it is routinely deferred on teardown paths where the flush already
// happened via Sync.
var walerrMethods = map[string]map[string]bool{
	"Log":    {"Commit": true, "Checkpoint": true, "Sync": true},
	"Writer": {"Append": true, "Sync": true},
}

const walPkg = "repro/internal/wal"

// walerrCall reports whether call invokes one of the guarded methods.
func walerrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != walPkg {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	typeName := named.Obj().Name()
	if walerrMethods[typeName][fn.Name()] {
		return typeName + "." + fn.Name(), true
	}
	return "", false
}

func runWalerr(pass *Pass) error {
	report := func(call *ast.CallExpr, how string) {
		if name, ok := walerrCall(pass.Info, call); ok {
			pass.Reportf(call.Pos(),
				"%s error %s; a dropped journal error is a silent durability hole — handle it or fail the operation", name, how)
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "discarded")
				}
			case *ast.GoStmt:
				report(n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				report(n.Call, "discarded by defer")
			case *ast.AssignStmt:
				// `_ = l.Sync()` and friends: every LHS is blank.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				report(call, "assigned to _")
			}
			return true
		})
	}
	return nil
}
