package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Iterclose enforces the close discipline on the store's iterator
// types. A leaked store.Cursor pins its row snapshot and permanently
// inflates the OpenCursors leak gauge, and the bug is invisible in
// small tests — exactly the failure mode the gauge exists to surface.
//
// A "resource" is any value whose type is (a pointer to) a named type
// declared in this module (import path repro/...) with a Close method.
// For every local acquisition of a resource from a call, the function
// must do one of:
//
//   - defer v.Close() (the preferred form: it covers error returns)
//   - call v.Close() with no return statement between acquisition and
//     the close — an early `return err` in that window leaks v
//   - let v escape (return it, pass it to a call, store it in a
//     struct/map/slice/channel): ownership moved, the receiver closes
//
// Discarding a resource result (assigning to _ or dropping the return
// value) is always a leak and is reported outright.
var Iterclose = &Analyzer{
	Name: "iterclose",
	Doc:  "repo iterator/cursor types must be closed on every path, including error returns",
	Run:  runIterclose,
}

// isResourceType reports whether t is (a pointer to) a module-local
// named type with Close in its method set.
func isResourceType(t types.Type) bool {
	if t == nil {
		return false
	}
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), "repro/") {
		return false
	}
	for _, ms := range []*types.MethodSet{
		types.NewMethodSet(t),
		types.NewMethodSet(types.NewPointer(base)),
	} {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Close" {
				return true
			}
		}
	}
	return false
}

// resourceResults returns which results of a call are resource types.
func resourceResults(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.IsType() {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{tv.Type}
	}
}

// consumingMethods are resource methods that take over their receiver:
// calling one disposes of the original (it is closed or its ownership
// moves into the returned values), so the caller's obligation ends.
// (*store.Cursor).Partitions closes the parent cursor and hands the
// snapshot to the child cursors it returns.
var consumingMethods = map[string]bool{"Partitions": true}

type acquisition struct {
	obj  types.Object // the variable holding the resource
	pos  token.Pos    // where it was acquired
	expr ast.Expr     // the acquiring call, for reporting
}

func runIterclose(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncResources(pass, fd.Body)
		}
	}
	return nil
}

// checkFuncResources analyzes one function body. Nested function
// literals are analyzed as part of their enclosing function: a close
// or escape anywhere in the subtree counts, but return statements in
// nested literals do not count against the early-return rule.
func checkFuncResources(pass *Pass, body *ast.BlockStmt) {
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			results := resourceResults(pass.Info, call)
			for i, lhs := range n.Lhs {
				if i >= len(results) || !isResourceType(results[i]) {
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue // stored into a field/index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "%s result discarded; it must be closed", typeLabel(results[i]))
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					acqs = append(acqs, acquisition{obj: obj, pos: call.Pos(), expr: call})
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				for _, rt := range resourceResults(pass.Info, call) {
					if isResourceType(rt) {
						pass.Reportf(call.Pos(), "%s result discarded; it must be closed", typeLabel(rt))
					}
				}
			}
		}
		return true
	})
	for _, a := range acqs {
		checkAcquisition(pass, body, a)
	}
}

func typeLabel(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		prefix := ""
		if strings.HasPrefix(s, "*") {
			prefix = "*"
		}
		s = prefix + s[i+1:]
	}
	return s
}

// checkAcquisition decides the fate of one acquired resource variable.
func checkAcquisition(pass *Pass, body *ast.BlockStmt, a acquisition) {
	var (
		deferred  bool
		closePos  = token.NoPos
		escapes   bool
		parents   []ast.Node
		returnsIn []token.Pos // returns of THIS function, not nested literals
	)
	litDepthAt := func() int {
		d := 0
		for _, p := range parents {
			if _, ok := p.(*ast.FuncLit); ok {
				d++
			}
		}
		return d
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && litDepthAt() == 0 {
			returnsIn = append(returnsIn, ret.Pos())
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == a.obj {
			classifyUse(pass, parents, id, &deferred, &closePos, &escapes)
		}
		parents = append(parents, n)
		for _, c := range childNodes(n) {
			walk(c)
		}
		parents = parents[:len(parents)-1]
	}
	walk(body)
	if escapes || deferred {
		return
	}
	label := typeLabel(a.obj.Type())
	if closePos == token.NoPos {
		pass.Reportf(a.pos, "%s %q is never closed; defer %s.Close() after acquiring it", label, a.obj.Name(), a.obj.Name())
		return
	}
	for _, rp := range returnsIn {
		if a.pos < rp && rp < closePos {
			pass.Reportf(a.pos, "%s %q may leak: a return between acquisition and Close skips the close — use defer %s.Close()", label, a.obj.Name(), a.obj.Name())
			return
		}
	}
}

// classifyUse inspects one use of the tracked variable given the stack
// of ancestor nodes (innermost last).
func classifyUse(pass *Pass, parents []ast.Node, id *ast.Ident, deferred *bool, closePos *token.Pos, escapes *bool) {
	if len(parents) == 0 {
		return
	}
	parent := parents[len(parents)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return
		}
		// v.Close() — deferred if any ancestor is a defer statement,
		// which also covers defer func() { v.Close() }().
		if len(parents) >= 2 {
			if call, ok := parents[len(parents)-2].(*ast.CallExpr); ok && call.Fun == p {
				switch {
				case p.Sel.Name == "Close":
					for i := len(parents) - 2; i >= 0; i-- {
						if _, isDefer := parents[i].(*ast.DeferStmt); isDefer {
							*deferred = true
							return
						}
					}
					if *closePos == token.NoPos || call.Pos() < *closePos {
						*closePos = call.Pos()
					}
					return
				case consumingMethods[p.Sel.Name]:
					*escapes = true // receiver consumed; callee disposed of it
					return
				}
			}
		}
		// v.Next(), v.Len(), field reads: plain use, not an escape.
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(id) {
				*escapes = true // ownership handed to the callee
				return
			}
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		*escapes = true
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			*escapes = true
		}
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == ast.Expr(id) {
				*escapes = true // aliased into another variable or field
				return
			}
		}
	case *ast.IndexExpr:
		if p.Index == ast.Expr(id) || p.X == ast.Expr(id) {
			return
		}
	}
}

// childNodes returns the direct AST children of n, preserving order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
