package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Guardedby enforces Abseil/Java-style thread-safety contracts declared
// in source: a struct field annotated
//
//	//pgrdf:guardedby mu
//
// (where mu is a sibling sync.Mutex or sync.RWMutex field) may only be
// read or written while that lock is held. "Held" is established
// lexically, per function, with branch-aware merging: a read must sit
// between mu.Lock()/mu.RLock() and the matching Unlock (a deferred
// unlock holds to the end of the function); a write additionally
// requires the write lock (RLock does not suffice under an RWMutex).
//
// Helper methods that are documented to run with the lock already held
// declare it instead of re-acquiring:
//
//	//pgrdf:locks mu        // the receiver's mu is held on entry
//	//pgrdf:locks hs.mu     // parameter hs's mu is held on entry
//
// Inside an annotated function the named lock is treated as
// write-held; in exchange, every caller is checked — the call must
// itself occur with the lock held (or inside another annotated
// function on the same lock). This is exactly the repo's *Locked
// naming convention, machine-checked.
//
// Two deliberate holes keep the check lexical and tractable:
//
//   - A local variable freshly built from a composite literal (or
//     new(T) / a zero-valued var) in the same function is exclusively
//     owned and exempt — constructors initialize fields and call
//     *Locked helpers before the value escapes.
//   - A function literal inherits the lock state of its definition
//     point (scan callbacks run inside the call), except a `go`
//     funclit body, which starts with no locks held — a goroutine
//     never inherits its spawner's critical section.
//
// Violations that are safe for a publication-order reason (e.g. a
// field read behind an atomic "built" flag) carry a justified
// //pgrdfvet:ignore guardedby directive.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated //pgrdf:guardedby must be accessed only with the named lock held",
	Run:  runGuardedby,
}

// gbAnnotationRE matches well-formed annotations; gbPrefixRE catches
// malformed ones so a typo cannot silently disable a contract.
var (
	gbAnnotationRE = regexp.MustCompile(`^//pgrdf:(guardedby|locks)\s+([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)\s*$`)
	gbPrefixRE     = regexp.MustCompile(`^//pgrdf:(guardedby|locks)\b`)
)

// guardInfo is one field's contract: the sibling lock field guarding it.
type guardInfo struct {
	lock  string // sibling field name of the mutex
	owner string // struct type name, for messages
}

// locksReq is one //pgrdf:locks declaration on a function: the lock
// field of the receiver (param == -1) or of the param at that index is
// held on entry.
type locksReq struct {
	param     int    // flattened parameter index; -1 = receiver
	paramName string // for the entry-state key
	lock      string
}

type gbFacts struct {
	guarded map[*types.Var]guardInfo
	locks   map[*types.Func][]locksReq
}

// Lock-hold modes, ordered so "stronger" compares greater.
const (
	gbNotHeld = iota
	gbReadHeld
	gbWriteHeld
)

// gbState maps a lock key — ExprString(base)+"."+lockField — to its
// hold mode at the current program point.
type gbState map[string]int

func (s gbState) clone() gbState {
	m := make(gbState, len(s))
	for k, v := range s {
		m[k] = v
	}
	return m
}

// gbMerge intersects the states of converging control-flow paths: a
// lock counts as held after a branch only if every surviving path
// holds it, at the weakest mode any of them holds.
func gbMerge(states []gbState) gbState {
	if len(states) == 0 {
		return gbState{}
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for k, v := range out {
			sv, ok := s[k]
			if !ok || sv == gbNotHeld {
				delete(out, k)
			} else if sv < v {
				out[k] = sv
			}
		}
	}
	return out
}

func runGuardedby(pass *Pass) error {
	facts := collectGuardedbyFacts(pass)
	if len(facts.guarded) == 0 && len(facts.locks) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &gbChecker{pass: pass, facts: facts, fresh: make(map[types.Object]bool)}
			c.stmts(fd.Body.List, c.entryState(fd))
		}
	}
	return nil
}

// entryState seeds the lock state from the function's //pgrdf:locks
// annotations: each declared lock is treated as write-held.
func (c *gbChecker) entryState(fd *ast.FuncDecl) gbState {
	st := gbState{}
	fn, _ := c.pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return st
	}
	for _, req := range c.facts.locks[fn] {
		name := req.paramName
		if req.param < 0 {
			name = receiverName(fd)
		}
		if name == "" || name == "_" {
			continue
		}
		st[name+"."+req.lock] = gbWriteHeld
	}
	return st
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// --- fact collection -------------------------------------------------

func collectGuardedbyFacts(pass *Pass) *gbFacts {
	facts := &gbFacts{
		guarded: make(map[*types.Var]guardInfo),
		locks:   make(map[*types.Func][]locksReq),
	}
	for _, file := range pass.Files {
		// Malformed //pgrdf: annotations are findings: a typo must not
		// silently drop a thread-safety contract.
		for _, cg := range file.Comments {
			for _, cmt := range cg.List {
				if gbPrefixRE.MatchString(cmt.Text) && gbAnnotationRE.FindStringSubmatch(cmt.Text) == nil {
					pass.Reportf(cmt.Pos(),
						"malformed pgrdf annotation (want //pgrdf:guardedby <mutexField> or //pgrdf:locks [<param>.]<mutexField>)")
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if st, ok := n.(*ast.StructType); ok {
				collectStructAnnotations(pass, st, facts)
			}
			return true
		})
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				collectLocksAnnotations(pass, fd, facts)
			}
		}
	}
	return facts
}

// fieldAnnotation returns the //pgrdf:guardedby lock name attached to a
// struct field (doc comment above it or line comment beside it).
func fieldAnnotation(f *ast.Field) (lock string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			m := gbAnnotationRE.FindStringSubmatch(cmt.Text)
			if m != nil && m[1] == "guardedby" {
				return m[2], cmt.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

func collectStructAnnotations(pass *Pass, st *ast.StructType, facts *gbFacts) {
	for _, f := range st.Fields.List {
		lock, _, ok := fieldAnnotation(f)
		if !ok {
			continue
		}
		if strings.Contains(lock, ".") {
			pass.Reportf(f.Pos(), "//pgrdf:guardedby %s: a field's guard must be a sibling field, not a path", lock)
			continue
		}
		owner := "struct"
		if len(f.Names) > 0 {
			if obj, isVar := pass.Info.Defs[f.Names[0]].(*types.Var); isVar {
				if named := namedOwner(pass, st, obj); named != "" {
					owner = named
				}
			}
		}
		if !structHasMutexField(pass, st, lock) {
			pass.Reportf(f.Pos(), "//pgrdf:guardedby %s: %s has no mutex field %q (want a sibling sync.Mutex or sync.RWMutex)", lock, owner, lock)
			continue
		}
		for _, name := range f.Names {
			if obj, isVar := pass.Info.Defs[name].(*types.Var); isVar {
				facts.guarded[obj] = guardInfo{lock: lock, owner: owner}
			}
		}
	}
}

// namedOwner best-effort recovers the declared struct type's name for
// messages by asking the field's parent scope; "" when anonymous.
func namedOwner(pass *Pass, st *ast.StructType, field *types.Var) string {
	// The field's owning struct is the one we are iterating; find a
	// TypeSpec whose type is st by position.
	for ident, obj := range pass.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.Type() == nil {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			if s, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < s.NumFields(); i++ {
					if s.Field(i) == field {
						return ident.Name
					}
				}
			}
		}
	}
	return ""
}

// structHasMutexField reports whether the struct literally declares a
// field named lock whose type is sync.Mutex or sync.RWMutex.
func structHasMutexField(pass *Pass, st *ast.StructType, lock string) bool {
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name != lock {
				continue
			}
			obj, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				return false
			}
			return isMutexType(obj.Type())
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

func collectLocksAnnotations(pass *Pass, fd *ast.FuncDecl, facts *gbFacts) {
	if fd.Doc == nil {
		return
	}
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	for _, cmt := range fd.Doc.List {
		m := gbAnnotationRE.FindStringSubmatch(cmt.Text)
		if m == nil || m[1] != "locks" {
			continue
		}
		spec := m[2]
		if fn == nil {
			continue
		}
		req, errMsg := resolveLocksSpec(pass, fd, spec)
		if errMsg != "" {
			pass.Reportf(cmt.Pos(), "//pgrdf:locks %s: %s", spec, errMsg)
			continue
		}
		facts.locks[fn] = append(facts.locks[fn], req)
	}
}

// resolveLocksSpec validates "mu" (receiver's field) or "p.mu"
// (parameter p's field) against the function's signature.
func resolveLocksSpec(pass *Pass, fd *ast.FuncDecl, spec string) (locksReq, string) {
	holder, lock := "", spec
	if i := strings.IndexByte(spec, '.'); i >= 0 {
		holder, lock = spec[:i], spec[i+1:]
	}
	if holder == "" {
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return locksReq{}, "function has no receiver; name a parameter as <param>.<mutexField>"
		}
		recvIdent := receiverIdent(fd)
		if recvIdent == nil {
			return locksReq{}, "receiver is unnamed; the lock cannot be referenced"
		}
		recvType := pass.Info.Defs[recvIdent].(*types.Var).Type()
		if !typeHasMutexField(recvType, lock) {
			return locksReq{}, "receiver type has no mutex field " + quoteName(lock)
		}
		return locksReq{param: -1, lock: lock}, ""
	}
	idx := 0
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if name.Name == holder {
				obj := pass.Info.Defs[name].(*types.Var)
				if !typeHasMutexField(obj.Type(), lock) {
					return locksReq{}, "parameter " + holder + " has no mutex field " + quoteName(lock)
				}
				return locksReq{param: idx, paramName: holder, lock: lock}, ""
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return locksReq{}, "no parameter named " + quoteName(holder)
}

func quoteName(s string) string { return "\"" + s + "\"" }

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if len(fd.Recv.List[0].Names) > 0 {
		return fd.Recv.List[0].Names[0]
	}
	return nil
}

// typeHasMutexField reports whether t (after pointer indirection) is a
// struct with a mutex-typed field named lock.
func typeHasMutexField(t types.Type, lock string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if f := s.Field(i); f.Name() == lock {
			return isMutexType(f.Type())
		}
	}
	return false
}

// --- the checker -----------------------------------------------------

type gbChecker struct {
	pass  *Pass
	facts *gbFacts
	// fresh holds locals built from composite literals / new / zero
	// values in this function: exclusively owned, exempt from checks.
	fresh map[types.Object]bool
}

func (c *gbChecker) stmts(list []ast.Stmt, st gbState) (gbState, bool) {
	for _, s := range list {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *gbChecker) stmt(s ast.Stmt, st gbState) (gbState, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.ExprStmt:
		if key, op, ok := c.lockOp(s.X); ok {
			applyLockOp(st, key, op)
			return st, false
		}
		c.expr(s.X, st)
		return st, false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, st)
		}
		if s.Tok == token.DEFINE {
			c.noteFresh(s)
		}
		for _, l := range s.Lhs {
			c.writeTarget(l, st)
		}
		return st, false
	case *ast.IncDecStmt:
		c.writeTarget(s.X, st)
		return st, false
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return st, false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				c.expr(v, st)
			}
			if len(vs.Values) == 0 {
				// var x T — a zero value this function owns outright.
				for _, name := range vs.Names {
					if obj := c.pass.Info.Defs[name]; obj != nil {
						c.fresh[obj] = true
					}
				}
			}
		}
		return st, false
	case *ast.DeferStmt:
		if _, op, ok := c.lockOp(s.Call); ok && (op == opUnlock || op == opRUnlock) {
			// Deferred unlock runs at function exit: the lock stays
			// held for the rest of the body.
			return st, false
		}
		c.expr(s.Call, st)
		return st, false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
		// A goroutine body never inherits the spawner's locks.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, gbState{})
		} else {
			c.checkAnnotatedCall(s.Call, gbState{})
		}
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		st, _ = c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		var ends []gbState
		if thenSt, term := c.stmts(s.Body.List, st.clone()); !term {
			ends = append(ends, thenSt)
		}
		if s.Else != nil {
			if elseSt, term := c.stmt(s.Else, st.clone()); !term {
				ends = append(ends, elseSt)
			}
		} else {
			ends = append(ends, st)
		}
		if len(ends) == 0 {
			return st, false // all paths terminated; what follows is unreachable
		}
		return gbMerge(ends), false
	case *ast.ForStmt:
		st, _ = c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		bodySt, term := c.stmts(s.Body.List, st.clone())
		if term {
			return st, false
		}
		bodySt, _ = c.stmt(s.Post, bodySt)
		return gbMerge([]gbState{st, bodySt}), false
	case *ast.RangeStmt:
		c.expr(s.X, st)
		if s.Tok == token.ASSIGN {
			if s.Key != nil {
				c.writeTarget(s.Key, st)
			}
			if s.Value != nil {
				c.writeTarget(s.Value, st)
			}
		}
		bodySt, term := c.stmts(s.Body.List, st.clone())
		if term {
			return st, false
		}
		return gbMerge([]gbState{st, bodySt}), false
	case *ast.SwitchStmt:
		st, _ = c.stmt(s.Init, st)
		c.expr(s.Tag, st)
		return c.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		st, _ = c.stmt(s.Init, st)
		st, _ = c.stmt(s.Assign, st)
		return c.clauses(s.Body, st)
	case *ast.SelectStmt:
		var ends []gbState
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cSt := st.clone()
			cSt, _ = c.stmt(cc.Comm, cSt)
			if endSt, term := c.stmts(cc.Body, cSt); !term {
				ends = append(ends, endSt)
			}
		}
		if len(ends) == 0 {
			return st, false
		}
		return gbMerge(ends), false
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
		return st, false
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	default:
		return st, false
	}
}

// clauses walks switch/type-switch cases, merging the surviving ends
// with the incoming state (no case may match).
func (c *gbChecker) clauses(body *ast.BlockStmt, st gbState) (gbState, bool) {
	ends := []gbState{st}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.expr(e, st)
		}
		if endSt, term := c.stmts(cc.Body, st.clone()); !term {
			ends = append(ends, endSt)
		}
	}
	return gbMerge(ends), false
}

// noteFresh records locals defined from composite literals or new():
// values this function built and exclusively owns.
func (c *gbChecker) noteFresh(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if !isFreshValue(s.Rhs[i]) {
			continue
		}
		if obj := c.pass.Info.Defs[id]; obj != nil {
			c.fresh[obj] = true
		}
	}
}

func isFreshValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func (c *gbChecker) isFreshBase(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.Info.Uses[id]
	return obj != nil && c.fresh[obj]
}

// --- lock operations -------------------------------------------------

type lockOpKind int

const (
	opLock lockOpKind = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockOp recognizes base.mu.Lock() / Unlock / RLock / RUnlock calls on
// sync.Mutex / sync.RWMutex values and returns the lock key.
func (c *gbChecker) lockOp(e ast.Expr) (key string, op lockOpKind, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	recv, _, isMethod := methodCall(c.pass.Info, call)
	if !isMethod || !isMutexType(recv) {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

func applyLockOp(st gbState, key string, op lockOpKind) {
	switch op {
	case opLock:
		st[key] = gbWriteHeld
	case opRLock:
		st[key] = gbReadHeld
	case opUnlock, opRUnlock:
		delete(st, key)
	}
}

// --- expression walking and access checks ----------------------------

func (c *gbChecker) expr(e ast.Expr, st gbState) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		c.access(e, st, false)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "delete" {
			// builtin delete mutates its map argument
			if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				c.writeTarget(e.Args[0], st)
				for _, a := range e.Args[1:] {
					c.expr(a, st)
				}
				return
			}
		}
		c.checkAnnotatedCall(e, st)
		c.expr(e.Fun, st)
		for _, a := range e.Args {
			c.expr(a, st)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking a guarded field's address can leak writes; require
			// the write lock.
			c.writeTarget(e.X, st)
			return
		}
		c.expr(e.X, st)
	case *ast.FuncLit:
		// A callback runs inside the call that receives it; it sees the
		// locks of its definition point.
		c.stmts(e.Body.List, st.clone())
	case *ast.BinaryExpr:
		c.expr(e.X, st)
		c.expr(e.Y, st)
	case *ast.ParenExpr:
		c.expr(e.X, st)
	case *ast.StarExpr:
		c.expr(e.X, st)
	case *ast.IndexExpr:
		c.expr(e.X, st)
		c.expr(e.Index, st)
	case *ast.IndexListExpr:
		c.expr(e.X, st)
		for _, i := range e.Indices {
			c.expr(i, st)
		}
	case *ast.SliceExpr:
		c.expr(e.X, st)
		c.expr(e.Low, st)
		c.expr(e.High, st)
		c.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		c.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, isIdent := kv.Key.(*ast.Ident); !isIdent || c.pass.Info.Uses[id] != nil {
					c.expr(kv.Key, st)
				}
				c.expr(kv.Value, st)
				continue
			}
			c.expr(el, st)
		}
	}
}

// writeTarget checks an expression appearing in a mutating position:
// assignment LHS, ++/--, &x, delete's map argument. Writing an element
// of a guarded map/slice counts as writing the field.
func (c *gbChecker) writeTarget(e ast.Expr, st gbState) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		c.access(e, st, true)
	case *ast.IndexExpr:
		c.writeTarget(e.X, st)
		c.expr(e.Index, st)
	case *ast.ParenExpr:
		c.writeTarget(e.X, st)
	case *ast.StarExpr:
		// Writing through a pointer: the pointee is not the field.
		c.expr(e.X, st)
	case *ast.Ident:
		// Local variable write.
	default:
		c.expr(e, st)
	}
}

// access checks one base.field selector against the field's contract.
func (c *gbChecker) access(sel *ast.SelectorExpr, st gbState, write bool) {
	if obj, ok := c.pass.Info.Uses[sel.Sel].(*types.Var); ok {
		if gi, guarded := c.facts.guarded[obj]; guarded && !c.isFreshBase(sel.X) {
			key := types.ExprString(sel.X) + "." + gi.lock
			mode := st[key]
			switch {
			case write && mode != gbWriteHeld:
				held := "no lock is"
				if mode == gbReadHeld {
					held = "only " + key + ".RLock is"
				}
				c.pass.Reportf(sel.Pos(),
					"%s.%s is written without %s write-held (%s held); //pgrdf:guardedby %s requires %s.Lock",
					types.ExprString(sel.X), sel.Sel.Name, key, held, gi.lock, key)
			case !write && mode == gbNotHeld:
				c.pass.Reportf(sel.Pos(),
					"%s.%s is read without %s held; //pgrdf:guardedby %s requires the lock (RLock suffices for reads)",
					types.ExprString(sel.X), sel.Sel.Name, key, gi.lock)
			}
		}
	}
	c.expr(sel.X, st)
}

// checkAnnotatedCall enforces the caller side of //pgrdf:locks: calling
// an annotated function requires the declared lock held (in any mode).
func (c *gbChecker) checkAnnotatedCall(call *ast.CallExpr, st gbState) {
	fn := calleeFunc(c.pass.Info, call)
	if fn == nil {
		return
	}
	for _, req := range c.facts.locks[fn] {
		var base ast.Expr
		if req.param < 0 {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue // method value / expression call: out of lexical reach
			}
			base = sel.X
		} else {
			if req.param >= len(call.Args) {
				continue
			}
			base = call.Args[req.param]
			if u, ok := ast.Unparen(base).(*ast.UnaryExpr); ok && u.Op == token.AND {
				base = u.X
			}
		}
		if c.isFreshBase(base) {
			continue
		}
		key := types.ExprString(base) + "." + req.lock
		if st[key] == gbNotHeld {
			c.pass.Reportf(call.Pos(),
				"call to %s requires %s held (//pgrdf:locks on the callee); acquire it or annotate the caller",
				fn.Name(), key)
		}
	}
}
