package analysis

import "testing"

// TestRepoPassesGate runs the full pgrdfvet suite over the whole
// module from inside the regular test suite, so `go test ./...` fails
// the moment a change reintroduces a banned pattern — no separate CI
// step required for the invariant to hold.
func TestRepoPassesGate(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	loader, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(loader.Fset, pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
