package analysis

import "testing"

// Each analyzer is verified against a testdata package containing
// failing patterns (annotated with // want), fixed counterparts, and a
// justified suppression.

func TestAtomiconly(t *testing.T) {
	RunTest(t, Atomiconly, "testdata/src/atomiconly", "repro/internal/atomiconlytest")
}

func TestCtxflow(t *testing.T) {
	RunTest(t, Ctxflow, "testdata/src/ctxflow", "repro/internal/ctxflowtest")
}

func TestErrsentinel(t *testing.T) {
	RunTest(t, Errsentinel, "testdata/src/errsentinel", "repro/internal/errsentineltest")
}

func TestGoroutinelife(t *testing.T) {
	RunTest(t, Goroutinelife, "testdata/src/goroutinelife", "repro/internal/goroutinelifetest")
}

func TestGuardedby(t *testing.T) {
	RunTest(t, Guardedby, "testdata/src/guardedby", "repro/internal/guardedbytest")
}

func TestGuardtick(t *testing.T) {
	// guardtick only patrols the engine package, so the testdata poses
	// as repro/internal/sparql.
	RunTest(t, Guardtick, "testdata/src/guardtick", "repro/internal/sparql")
}

func TestGuardtickGraph(t *testing.T) {
	// The analytics scope: the same testdata trick, posing as
	// repro/internal/graph, where CSR adjacency reads are row sources.
	RunTest(t, Guardtick, "testdata/src/guardtick_graph", "repro/internal/graph")
}

func TestIdsafe(t *testing.T) {
	RunTest(t, Idsafe, "testdata/src/idsafe", "repro/internal/idsafetest")
}

func TestIterclose(t *testing.T) {
	RunTest(t, Iterclose, "testdata/src/iterclose", "repro/internal/iterclosetest")
}

func TestWalerr(t *testing.T) {
	RunTest(t, Walerr, "testdata/src/walerr", "repro/internal/walerrtest")
}

// TestExamplesExemptFromCtxflow pins the scoping rule: the same code
// that fails as library code passes when analyzed under examples/.
func TestExamplesExemptFromCtxflow(t *testing.T) {
	loader, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckDir("testdata/src/ctxflow", "repro/examples/ctxflowtest")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(loader.Fset, []*Package{pkg}, []*Analyzer{Ctxflow})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		// The package's ctxflow suppression is reported as unused here
		// (correct: ctxflow skips examples/ entirely); only analyzer
		// findings would break the exemption.
		if f.Analyzer == "ctxflow" {
			t.Fatalf("examples/ package should be exempt from ctxflow, got %v", f)
		}
	}
}
