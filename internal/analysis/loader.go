// Package analysis is a self-contained static-analysis framework plus
// the pgrdfvet analyzer suite for this repository.
//
// It mirrors the golang.org/x/tools/go/analysis API surface we need
// (Analyzer / Pass / Diagnostic, an analysistest-style harness driven
// by "// want" comments) but is built only on the standard library:
// packages are enumerated with `go list -export -deps -json` and
// type-checked with go/types against the gc export data the go command
// already produces offline, so the suite works without network access
// or third-party modules.
//
// See DESIGN.md "Static analysis gate" for what each analyzer enforces
// and why it protects the RF/NG/SP scheme-equivalence argument.
package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader loads and type-checks packages of the repository module. It
// keeps the shared FileSet and the export-data index so testdata
// packages can be checked against the real repro/... types.
type Loader struct {
	Fset    *token.FileSet
	dir     string            // module root the go commands run in
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listPackage is the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// NewLoader prepares a loader rooted at dir (the module root).
func NewLoader(dir string) *Loader {
	return &Loader{Fset: token.NewFileSet(), dir: dir}
}

// goList runs `go list -export -deps -json` for the patterns and
// decodes the JSON stream.
func (l *Loader) goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	// Cgo files cannot be type-checked from export-free source; the
	// pure-Go stdlib variants type-check fine and are what -race-free
	// builds use anyway.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup serves export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q (is it reachable from the loaded patterns?)", path)
	}
	return os.Open(f)
}

// Load lists the packages matching patterns (plus their dependency
// export data) and type-checks every non-stdlib, non-dep-only match
// from source. Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	if l.exports == nil {
		l.exports = make(map[string]string)
	}
	var targets []*listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	}
	var out []*Package
	for _, p := range targets {
		var files []string
		for _, gf := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, gf))
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// CheckDir parses every non-test .go file directly under dir and
// type-checks them as a single package under the given import path.
// It is the entry point the analysistest harness uses for testdata
// packages, which the go tool itself refuses to list. Imports resolve
// against export data gathered by previous Load calls, so call
// Load("./...") first if the testdata imports repro packages.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	}
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
