package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so analyzers port mechanically if the
// dependency ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the import path under analysis. It is distinct from
	// Pkg.Path() only in tests, where testdata packages can pose as a
	// repo package to exercise path-scoped analyzers.
	Path  string
	Info  *types.Info
	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Finding is a positioned diagnostic, resolved for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the pgrdfvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Ctxflow, Errsentinel, Guardtick, Idsafe, Iterclose, Walerr}
}

// ignoreRE matches suppression directives:
//
//	//pgrdfvet:ignore <analyzer>[,<analyzer>...] -- <justification>
//
// The directive applies to its own line and to the line directly below
// (so it can sit above a long statement). A justification is mandatory;
// a bare directive is itself reported.
var ignoreRE = regexp.MustCompile(`^//pgrdfvet:ignore\s+([a-z0-9_,\s]+?)\s*(?:--\s*(\S.*))?$`)

type ignoreKey struct {
	file string
	line int
}

// ignoreIndex maps (file, line) to the analyzer names suppressed there.
type ignoreIndex map[ignoreKey]map[string]bool

// buildIgnoreIndex scans a package's comments for directives. Malformed
// directives (no justification) are returned as findings so the gate
// cannot be waved through silently.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Finding) {
	idx := make(ignoreIndex)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//pgrdfvet:") {
						bad = append(bad, Finding{
							Analyzer: "pgrdfvet",
							Pos:      fset.Position(c.Pos()),
							Message:  "malformed pgrdfvet directive (want //pgrdfvet:ignore <analyzer> -- <why>)",
						})
					}
					continue
				}
				if m[2] == "" {
					bad = append(bad, Finding{
						Analyzer: "pgrdfvet",
						Pos:      fset.Position(c.Pos()),
						Message:  "pgrdfvet:ignore needs a justification: `//pgrdfvet:ignore " + strings.TrimSpace(m[1]) + " -- <why>`",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := ignoreKey{file: pos.Filename, line: line}
						if idx[k] == nil {
							idx[k] = make(map[string]bool)
						}
						idx[k][name] = true
					}
				}
			}
		}
	}
	return idx, bad
}

func (idx ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	set := idx[ignoreKey{file: pos.Filename, line: pos.Line}]
	return set[analyzer] || set["all"]
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving findings sorted by position. The fset must be the one the
// packages were parsed with.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		idx, bad := buildIgnoreIndex(fset, pkg.Files)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Path:     pkg.ImportPath,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				pos := fset.Position(d.Pos)
				if idx.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// --- shared type helpers used by several analyzers ---

// isNamedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodCall resolves a call of the form x.Sel(...) to the method's
// receiver type and name; ok is false for anything else (including
// package-qualified function calls).
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selection.Recv(), sel.Sel.Name, true
}

// calleeFunc resolves a call to the *types.Func it invokes (method or
// package-level function), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// outermostFunc returns the top-level FuncDecl containing pos, or nil.
func outermostFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
