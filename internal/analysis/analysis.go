package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so analyzers port mechanically if the
// dependency ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the import path under analysis. It is distinct from
	// Pkg.Path() only in tests, where testdata packages can pose as a
	// repo package to exercise path-scoped analyzers.
	Path  string
	Info  *types.Info
	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Finding is a positioned diagnostic, resolved for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the pgrdfvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		Atomiconly, Ctxflow, Errsentinel, Goroutinelife, Guardedby,
		Guardtick, Idsafe, Iterclose, Walerr,
	}
}

// knownAnalyzerNames returns the valid targets of a pgrdfvet:ignore
// directive.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{"all": true}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// ignoreRE matches suppression directives:
//
//	//pgrdfvet:ignore <analyzer>[,<analyzer>...] -- <justification>
//
// The directive applies to its own line and to the line directly below
// (so it can sit above a long statement). A justification is mandatory;
// a bare directive is itself reported.
var ignoreRE = regexp.MustCompile(`^//pgrdfvet:ignore\s+([a-z0-9_,\s]+?)\s*(?:--\s*(\S.*))?$`)

type ignoreKey struct {
	file string
	line int
}

// ignoreDirective is one //pgrdfvet:ignore comment. Usage is tracked
// per analyzer name so stale suppressions — directives that no longer
// mask any finding — are themselves reported.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string
	used      map[string]bool
}

// ignoreIndex holds a package's suppression directives, addressable by
// the (file, line) pairs they cover.
type ignoreIndex struct {
	byLine map[ignoreKey][]*ignoreDirective
	list   []*ignoreDirective
}

// buildIgnoreIndex scans a package's comments for directives. Malformed
// directives (no justification) and directives naming analyzers that do
// not exist are returned as findings so the gate cannot be waved
// through silently.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (*ignoreIndex, []Finding) {
	idx := &ignoreIndex{byLine: make(map[ignoreKey][]*ignoreDirective)}
	known := knownAnalyzerNames()
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//pgrdfvet:") {
						bad = append(bad, Finding{
							Analyzer: "pgrdfvet",
							Pos:      fset.Position(c.Pos()),
							Message:  "malformed pgrdfvet directive (want //pgrdfvet:ignore <analyzer> -- <why>)",
						})
					}
					continue
				}
				if m[2] == "" {
					bad = append(bad, Finding{
						Analyzer: "pgrdfvet",
						Pos:      fset.Position(c.Pos()),
						Message:  "pgrdfvet:ignore needs a justification: `//pgrdfvet:ignore " + strings.TrimSpace(m[1]) + " -- <why>`",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{pos: pos, used: make(map[string]bool)}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						bad = append(bad, Finding{
							Analyzer: "pgrdfvet",
							Pos:      pos,
							Message:  fmt.Sprintf("pgrdfvet:ignore names unknown analyzer %q", name),
						})
						continue
					}
					d.analyzers = append(d.analyzers, name)
				}
				if len(d.analyzers) == 0 {
					continue
				}
				idx.list = append(idx.list, d)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := ignoreKey{file: pos.Filename, line: line}
					idx.byLine[k] = append(idx.byLine[k], d)
				}
			}
		}
	}
	return idx, bad
}

// suppressed reports whether a finding at pos is masked, marking the
// matching directive as used.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range idx.byLine[ignoreKey{file: pos.Filename, line: pos.Line}] {
		for _, name := range d.analyzers {
			if name == analyzer || name == "all" {
				d.used[analyzer] = true
				hit = true
			}
		}
	}
	return hit
}

// unusedFindings reports directives that suppressed nothing during a
// run. Only analyzers that actually ran are considered, so a partial
// -only invocation never flags a directive for an analyzer it skipped;
// an "all" directive is checked only when the full suite ran.
func (idx *ignoreIndex) unusedFindings(active map[string]bool) []Finding {
	fullSuite := true
	for name := range knownAnalyzerNames() {
		if name != "all" && !active[name] {
			fullSuite = false
			break
		}
	}
	var out []Finding
	for _, d := range idx.list {
		for _, name := range d.analyzers {
			stale := false
			if name == "all" {
				stale = fullSuite && len(d.used) == 0
			} else {
				stale = active[name] && !d.used[name]
			}
			if stale {
				out = append(out, Finding{
					Analyzer: "pgrdfvet",
					Pos:      d.pos,
					Message:  fmt.Sprintf("unused pgrdfvet:ignore for %s: no finding on this or the next line; delete the stale suppression", name),
				})
			}
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving findings sorted by position. The fset must be the one the
// packages were parsed with.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	for _, pkg := range pkgs {
		idx, bad := buildIgnoreIndex(fset, pkg.Files)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Path:     pkg.ImportPath,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				pos := fset.Position(d.Pos)
				if idx.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		findings = append(findings, idx.unusedFindings(active)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// --- shared type helpers used by several analyzers ---

// isNamedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodCall resolves a call of the form x.Sel(...) to the method's
// receiver type and name; ok is false for anything else (including
// package-qualified function calls).
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selection.Recv(), sel.Sel.Name, true
}

// calleeFunc resolves a call to the *types.Func it invokes (method or
// package-level function), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// outermostFunc returns the top-level FuncDecl containing pos, or nil.
func outermostFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
