package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func buildFromSrc(t *testing.T, src string) (*token.FileSet, ignoreIndex, []Finding) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := buildIgnoreIndex(fset, []*ast.File{f})
	return fset, idx, bad
}

func TestIgnoreDirectiveWithReason(t *testing.T) {
	_, idx, bad := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe -- hashing keeps equal IDs together
var a = 1

//pgrdfvet:ignore idsafe, iterclose -- two analyzers, one reason
var b = 2
`)
	if len(bad) != 0 {
		t.Fatalf("well-formed directives reported as bad: %v", bad)
	}
	// The directive covers its own line (3) and the next line (4).
	for _, line := range []int{3, 4} {
		if !idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: line}) {
			t.Errorf("idsafe not suppressed on line %d", line)
		}
	}
	if idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: 5}) {
		t.Error("suppression leaked past the directive's scope")
	}
	if idx.suppressed("ctxflow", token.Position{Filename: "x.go", Line: 3}) {
		t.Error("directive suppressed an analyzer it does not name")
	}
	// Multi-analyzer directive covers both names on line 6/7.
	for _, name := range []string{"idsafe", "iterclose"} {
		if !idx.suppressed(name, token.Position{Filename: "x.go", Line: 7}) {
			t.Errorf("%s not suppressed by the comma-separated directive", name)
		}
	}
}

func TestIgnoreDirectiveWithoutReasonIsReported(t *testing.T) {
	_, idx, bad := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe
var a = 1
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "needs a justification") {
		t.Fatalf("bare directive not reported, got %v", bad)
	}
	if idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: 4}) {
		t.Error("a justification-free directive must not suppress anything")
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	_, _, bad := buildFromSrc(t, `package p

//pgrdfvet:silence idsafe -- wrong verb
var a = 1
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed pgrdfvet directive") {
		t.Fatalf("malformed directive not reported, got %v", bad)
	}
}
