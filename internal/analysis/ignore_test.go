package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func buildFromSrc(t *testing.T, src string) (*token.FileSet, *ignoreIndex, []Finding) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := buildIgnoreIndex(fset, []*ast.File{f})
	return fset, idx, bad
}

func TestIgnoreDirectiveWithReason(t *testing.T) {
	_, idx, bad := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe -- hashing keeps equal IDs together
var a = 1

//pgrdfvet:ignore idsafe, iterclose -- two analyzers, one reason
var b = 2
`)
	if len(bad) != 0 {
		t.Fatalf("well-formed directives reported as bad: %v", bad)
	}
	// The directive covers its own line (3) and the next line (4).
	for _, line := range []int{3, 4} {
		if !idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: line}) {
			t.Errorf("idsafe not suppressed on line %d", line)
		}
	}
	if idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: 5}) {
		t.Error("suppression leaked past the directive's scope")
	}
	if idx.suppressed("ctxflow", token.Position{Filename: "x.go", Line: 3}) {
		t.Error("directive suppressed an analyzer it does not name")
	}
	// Multi-analyzer directive covers both names on line 6/7.
	for _, name := range []string{"idsafe", "iterclose"} {
		if !idx.suppressed(name, token.Position{Filename: "x.go", Line: 7}) {
			t.Errorf("%s not suppressed by the comma-separated directive", name)
		}
	}
}

func TestIgnoreDirectiveWithoutReasonIsReported(t *testing.T) {
	_, idx, bad := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe
var a = 1
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "needs a justification") {
		t.Fatalf("bare directive not reported, got %v", bad)
	}
	if idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: 4}) {
		t.Error("a justification-free directive must not suppress anything")
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	_, _, bad := buildFromSrc(t, `package p

//pgrdfvet:silence idsafe -- wrong verb
var a = 1
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed pgrdfvet directive") {
		t.Fatalf("malformed directive not reported, got %v", bad)
	}
}

func TestUnknownAnalyzerNameIsReported(t *testing.T) {
	_, idx, bad := buildFromSrc(t, `package p

//pgrdfvet:ignore walwarn -- typo for walerr
var a = 1
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, `unknown analyzer "walwarn"`) {
		t.Fatalf("unknown analyzer name not reported, got %v", bad)
	}
	if idx.suppressed("walerr", token.Position{Filename: "x.go", Line: 4}) {
		t.Error("a misspelled directive must not suppress anything")
	}
}

func TestUnusedSuppressionDetection(t *testing.T) {
	activeAll := make(map[string]bool)
	for name := range knownAnalyzerNames() {
		activeAll[name] = true
	}

	t.Run("stale directive is reported", func(t *testing.T) {
		_, idx, bad := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe -- the finding this masked was fixed long ago
var a = 1
`)
		if len(bad) != 0 {
			t.Fatalf("unexpected parse findings: %v", bad)
		}
		unused := idx.unusedFindings(activeAll)
		if len(unused) != 1 || !strings.Contains(unused[0].Message, "unused pgrdfvet:ignore for idsafe") {
			t.Fatalf("stale suppression not reported, got %v", unused)
		}
		if unused[0].Pos.Line != 3 {
			t.Errorf("unused finding at line %d, want the directive's line 3", unused[0].Pos.Line)
		}
	})

	t.Run("consumed directive is not reported", func(t *testing.T) {
		_, idx, _ := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe -- live suppression
var a = 1
`)
		if !idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: 4}) {
			t.Fatal("directive did not suppress")
		}
		if unused := idx.unusedFindings(activeAll); len(unused) != 0 {
			t.Fatalf("consumed directive reported as unused: %v", unused)
		}
	})

	t.Run("inactive analyzer is not flagged", func(t *testing.T) {
		// A partial -only run must not call suppressions for the
		// analyzers it skipped stale.
		_, idx, _ := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe -- only meaningful when idsafe runs
var a = 1
`)
		if unused := idx.unusedFindings(map[string]bool{"walerr": true}); len(unused) != 0 {
			t.Fatalf("directive for inactive analyzer reported as unused: %v", unused)
		}
	})

	t.Run("all-directive checked only under the full suite", func(t *testing.T) {
		_, idx, _ := buildFromSrc(t, `package p

//pgrdfvet:ignore all -- blanket suppression that masks nothing
var a = 1
`)
		if unused := idx.unusedFindings(map[string]bool{"walerr": true}); len(unused) != 0 {
			t.Fatalf("all-directive flagged on a partial run: %v", unused)
		}
		unused := idx.unusedFindings(activeAll)
		if len(unused) != 1 || !strings.Contains(unused[0].Message, "unused pgrdfvet:ignore for all") {
			t.Fatalf("stale all-directive not reported under the full suite, got %v", unused)
		}
	})

	t.Run("one name of a multi-analyzer directive can be stale", func(t *testing.T) {
		_, idx, _ := buildFromSrc(t, `package p

//pgrdfvet:ignore idsafe, walerr -- only idsafe still fires here
var a = 1
`)
		if !idx.suppressed("idsafe", token.Position{Filename: "x.go", Line: 4}) {
			t.Fatal("directive did not suppress idsafe")
		}
		unused := idx.unusedFindings(activeAll)
		if len(unused) != 1 || !strings.Contains(unused[0].Message, "unused pgrdfvet:ignore for walerr") {
			t.Fatalf("stale half of a multi-analyzer directive not reported, got %v", unused)
		}
	})
}
