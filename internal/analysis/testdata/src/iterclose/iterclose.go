// Package iterclosetest exercises the iterclose analyzer against the
// store.Cursor resource type.
package iterclosetest

import (
	"errors"

	"repro/internal/store"
)

func neverClosed(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p) // want "is never closed; defer c.Close"
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	return n
}

func discardedBare(st *store.Store, p store.Pattern) {
	st.Cursor(p) // want "result discarded; it must be closed"
}

func discardedBlank(st *store.Store, p store.Pattern) {
	_ = st.Cursor(p) // want "result discarded; it must be closed"
}

func earlyReturnLeak(st *store.Store, p store.Pattern, fail bool) error {
	c := st.Cursor(p) // want "may leak: a return between acquisition and Close"
	if fail {
		return errors.New("boom") // skips the close below
	}
	_, _ = c.Next()
	c.Close()
	return nil
}

func goodDeferred(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p)
	defer c.Close()
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	return n
}

func goodDeferredInClosure(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p)
	defer func() { _ = c.Close() }()
	return c.Len()
}

func goodStraightLine(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p)
	n := c.Len()
	c.Close()
	if n > 10 {
		return 10
	}
	return n
}

func goodReturned(st *store.Store, p store.Pattern) *store.Cursor {
	return st.Cursor(p) // ownership moves to the caller
}

func goodReturnedVar(st *store.Store, p store.Pattern) (*store.Cursor, error) {
	c := st.Cursor(p)
	return c, nil
}

func goodHandedOff(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p)
	return drain(c) // callee takes ownership
}

func drain(c *store.Cursor) int {
	defer c.Close()
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			return n
		}
		n++
	}
}

func goodStored(st *store.Store, p store.Pattern) []*store.Cursor {
	var open []*store.Cursor
	c := st.Cursor(p)
	open = append(open, c) // escapes into a structure the caller owns
	return open
}

func goodPartitioned(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p) // Partitions consumes c: it closes the parent itself
	parts := c.Partitions(4)
	n := 0
	for _, pc := range parts {
		n += drain(pc) // each child is handed off and closed by drain
	}
	return n
}

func suppressed(st *store.Store, p store.Pattern) {
	//pgrdfvet:ignore iterclose -- intentionally leaked to exercise the OpenCursors gauge in a demo
	c := st.Cursor(p)
	_, _ = c.Next()
}
