// Package atomiconlytest exercises the atomiconly analyzer: fields
// touched via sync/atomic must never be accessed plainly, and values
// containing atomics or locks must not be copied.
package atomiconlytest

import (
	"sync"
	"sync/atomic"
)

// --- mixed plain/atomic access ---------------------------------------

type hits struct {
	n int64
	// ok is never touched atomically, so plain access stays legal.
	ok int64
}

func bump(h *hits) { atomic.AddInt64(&h.n, 1) }

func badRead(h *hits) int64 {
	return h.n // want "field n is accessed atomically elsewhere"
}

func badWrite(h *hits) {
	h.n = 0 // want "field n is accessed atomically elsewhere"
}

func goodRead(h *hits) int64 { return atomic.LoadInt64(&h.n) }

func goodStore(h *hits) { atomic.StoreInt64(&h.n, 0) }

func plainFieldStaysPlain(h *hits) int64 {
	h.ok++
	return h.ok
}

// --- copying values that contain sync/atomic state -------------------

type gauge struct {
	v atomic.Int64
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func use(interface{}) {}

func (g gauge) badValueReceiver() int64 { // want "method badValueReceiver uses a value receiver"
	return g.v.Load()
}

func badParam(g guarded) {} // want "parameter passes .* by value"

func badResult() (g guarded) { return } // want "result passes .* by value"

func badDerefCopy(g *gauge) {
	x := *g // want "copies .* by value"
	use(&x)
}

func badArgCopy(g *guarded) {
	use(*g) // want "copies .* by value"
}

func goodConstruct() *gauge {
	g := gauge{} // composite literal constructs, it does not copy
	return &g
}

func goodPointerFlow(g *gauge) *gauge {
	p := g
	return p
}

// --- justified suppression -------------------------------------------

func suppressedCopy(g *gauge) {
	//pgrdfvet:ignore atomiconly -- snapshotting a quiesced gauge in a single-threaded teardown path
	x := *g
	use(&x)
}
