// Package guardticktest exercises the guardtick analyzer. It is
// analyzed under the import path repro/internal/sparql — the only
// package the analyzer patrols — with a stand-in guard type shaped
// like the engine's.
package guardticktest

import (
	"sync"

	"repro/internal/store"
)

type guard struct{ n int }

func (g *guard) tick() bool           { g.n++; return true }
func (g *guard) tickN(n int) bool     { g.n += n; return true }
func (g *guard) poll() bool           { return true }
func (g *guard) checkRows(n int) bool { return n >= 0 }

func badDirectScan(st *store.Store, p store.Pattern) int {
	n := 0
	st.Scan(p, func(q store.IDQuad) bool { // want "store scan without a budget-guard tick"
		n++
		return true
	})
	return n
}

func badForcedIndex(st *store.Store, p store.Pattern) error {
	return st.ScanIndex("PCSGM", p, func(q store.IDQuad) bool { // want "store scan without a budget-guard tick"
		return true
	})
}

func badCursor(st *store.Store, p store.Pattern) int {
	c := st.Cursor(p) // want "store scan without a budget-guard tick"
	defer c.Close()
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	return n
}

func badIndexScan(ix *store.Index, p store.Pattern) int {
	n := 0
	ix.Scan(p, func(q store.IDQuad) bool { // want "store scan without a budget-guard tick"
		n++
		return true
	})
	return n
}

func goodTickedScan(g *guard, st *store.Store, p store.Pattern) int {
	n := 0
	st.Scan(p, func(q store.IDQuad) bool {
		if !g.tick() {
			return false
		}
		n++
		return true
	})
	return n
}

func goodTickedCursor(g *guard, st *store.Store, p store.Pattern) int {
	c := st.Cursor(p)
	defer c.Close()
	n := 0
	for {
		q, ok := c.Next()
		if !ok || !g.tick() {
			break
		}
		_ = q
		n++
	}
	return n
}

func goodCheckRows(g *guard, st *store.Store, p store.Pattern) []store.IDQuad {
	var rows []store.IDQuad
	st.Scan(p, func(q store.IDQuad) bool {
		rows = append(rows, q)
		return g.checkRows(len(rows))
	})
	return rows
}

func badRangeScan(ix *store.Index, r store.RowRange, p store.Pattern) int {
	n := 0
	ix.ScanRange(r, p, func(q store.IDQuad) bool { // want "store scan without a budget-guard tick"
		n++
		return true
	})
	return n
}

// goodWorkerPool is the morsel-driven shape: worker goroutines drain
// partitioned cursors and batch their budget accounting through tickN.
// One tickN call anywhere in the function counts as a tick.
func goodWorkerPool(g *guard, st *store.Store, p store.Pattern) int {
	cur := st.Cursor(p)
	parts := cur.Partitions(4)
	var (
		mu    sync.Mutex
		total int
		wg    sync.WaitGroup
	)
	for _, pc := range parts {
		wg.Add(1)
		go func(pc *store.Cursor) {
			defer wg.Done()
			defer pc.Close()
			pending := 0
			for {
				if _, ok := pc.Next(); !ok {
					break
				}
				pending++
				if pending >= 64 {
					if !g.tickN(pending) {
						return
					}
					pending = 0
				}
			}
			if !g.tickN(pending) {
				return
			}
			mu.Lock()
			total += pending
			mu.Unlock()
		}(pc)
	}
	wg.Wait()
	return total
}

// goodRangeScan pairs the per-morsel range scan with a per-row tick.
func goodRangeScan(g *guard, ix *store.Index, r store.RowRange, p store.Pattern) int {
	n := 0
	ix.ScanRange(r, p, func(q store.IDQuad) bool {
		if !g.tick() {
			return false
		}
		n++
		return true
	})
	return n
}

func badBatchScan(st *store.Store, p store.Pattern) int {
	n := 0
	st.ScanBatch(p, 1024, func(run []store.IDQuad) bool { // want "store scan without a budget-guard tick"
		n += len(run)
		return true
	})
	return n
}

func badRangeBatch(ix *store.Index, r store.RowRange, p store.Pattern) int {
	n := 0
	ix.ScanRangeBatch(r, p, nil, 1024, func(run []store.IDQuad) bool { // want "store scan without a budget-guard tick"
		n += len(run)
		return true
	})
	return n
}

func badNextBatch(c *store.Cursor) int {
	n := 0
	for {
		run := c.NextBatch(1024) // want "store scan without a budget-guard tick"
		if run == nil {
			break
		}
		n += len(run)
	}
	return n
}

// goodBatchScan settles the budget with one tickN per batch — the
// vectorized executor's per-batch amortization of per-row ticks.
func goodBatchScan(g *guard, st *store.Store, p store.Pattern) int {
	n := 0
	st.ScanBatch(p, 1024, func(run []store.IDQuad) bool {
		if !g.tickN(len(run)) {
			return false
		}
		n += len(run)
		return true
	})
	return n
}

// goodBatchCursor drains morsel batches, accumulating a pending count
// settled by tickN at each flush.
func goodBatchCursor(g *guard, c *store.Cursor) int {
	n, pending := 0, 0
	for {
		run := c.NextBatch(1024)
		if run == nil {
			break
		}
		pending += len(run)
		if pending >= 1024 {
			if !g.tickN(pending) {
				return n
			}
			pending = 0
		}
		n += len(run)
	}
	g.tickN(pending)
	return n
}

func suppressed(st *store.Store, p store.Pattern) int {
	// Plan-cardinality estimation runs outside query execution.
	n := 0
	//pgrdfvet:ignore guardtick -- planner-side row count, not an execution scan
	st.Scan(p, func(q store.IDQuad) bool { n++; return true })
	return n
}
