// Package errsentineltest exercises the errsentinel analyzer.
package errsentineltest

import (
	"errors"
	"fmt"
	"io"
)

var errAbsent = errors.New("absent")

func bad(err error) int {
	if err == errAbsent { // want "error compared with ==; use errors.Is"
		return 1
	}
	if err != io.EOF { // want "error compared with !=; use errors.Is"
		return 2
	}
	switch err {
	case errAbsent: // want "switch on an error value compares with =="
		return 3
	}
	return 0
}

func good(err error) (int, error) {
	if err == nil { // nil checks are identity by definition
		return 0, nil
	}
	if errors.Is(err, errAbsent) {
		return 1, nil
	}
	if errors.Is(err, io.EOF) {
		return 2, nil
	}
	var target *fmt.Stringer
	_ = target
	switch {
	case errors.Is(err, errAbsent):
		return 3, nil
	}
	switch err {
	case nil: // a nil case arm is still a nil check
		return 4, nil
	}
	return 0, fmt.Errorf("wrapped: %w", err)
}

func suppressed(err error) bool {
	//pgrdfvet:ignore errsentinel -- interop with a legacy API that documents identity comparison
	return err == io.EOF
}
