// Package idsafetest exercises the idsafe analyzer outside the store
// package, where dictionary IDs must stay opaque.
package idsafetest

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

func badArith(a, b store.ID, n int) store.ID {
	x := a + 1 // want "arithmetic \\(\\+\\) on a store.ID"
	x = a - b  // want "arithmetic \\(-\\) on a store.ID"
	x = a | b  // want "arithmetic \\(\\|\\) on a store.ID"
	x = a << 2 // want "arithmetic \\(<<\\) on a store.ID"
	return x
}

func badOrder(a, b store.ID) bool {
	if a < b { // want "ordering store.IDs with <"
		return true
	}
	return a >= b // want "ordering store.IDs with >="
}

func badMutate(a store.ID) store.ID {
	a += 2 // want "compound arithmetic assignment \\(\\+=\\) on a store.ID"
	a++    // want "\\+\\+ on a store.ID"
	return a
}

func badFabricate(n int, u uint64) store.ID {
	x := store.ID(n) // want "store.ID fabricated from a non-constant integer"
	x = store.ID(u)  // want "store.ID fabricated from a non-constant integer"
	return x
}

func good(d *store.Dict, t rdf.Term, a, b store.ID) bool {
	id := d.Intern(t)     // the dictionary is the only ID mint
	if id == store.NoID { // equality against sentinels is the contract
		return false
	}
	if a == b || a != b {
		return true
	}
	seen := map[store.ID]bool{a: true} // IDs as opaque map keys are fine
	_ = seen
	const fixture = store.ID(7) // constant conversions: test fixtures, sentinels
	p := store.Pattern{S: a, P: store.Any, C: store.Any, G: store.Any, M: store.Any}
	_ = p
	return fixture == b
}

func suppressed(a store.ID) uint64 {
	//pgrdfvet:ignore idsafe -- hashing an ID for shard routing keeps equal IDs together
	return uint64(a * 0x9e3779b97f4a7c15)
}
