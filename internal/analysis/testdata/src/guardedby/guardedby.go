// Package guardedbytest exercises the guardedby analyzer: lock-
// discipline contracts declared with //pgrdf:guardedby and
// //pgrdf:locks.
package guardedbytest

import "sync"

type counter struct {
	mu sync.Mutex
	//pgrdf:guardedby mu
	n int
}

// --- failing cases ---------------------------------------------------

func badRead(c *counter) int {
	return c.n // want "c.n is read without c.mu held"
}

func badWrite(c *counter) {
	c.n = 1 // want "c.n is written without c.mu write-held"
}

func badIncrement(c *counter) {
	c.n++ // want "c.n is written without c.mu write-held"
}

func badAfterUnlock(c *counter) int {
	c.mu.Lock()
	c.n = 7
	c.mu.Unlock()
	return c.n // want "c.n is read without c.mu held"
}

// --- fixed counterparts ----------------------------------------------

func goodRead(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func goodWrite(c *counter) {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
}

// goodBranches exercises the branch-aware walker: an early unlock on
// one path must not poison the other, and accesses after converging
// paths are judged by the intersection of the branch states.
func goodBranches(c *counter, flip bool) int {
	c.mu.Lock()
	if flip {
		c.n++
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

func badAfterMerge(c *counter, flip bool) {
	c.mu.Lock()
	if flip {
		c.mu.Unlock() // lock no longer held on every path below
	}
	c.n = 2 // want "c.n is written without c.mu write-held"
	if !flip {
		c.mu.Unlock()
	}
}

// --- RWMutex: RLock suffices for reads, not writes -------------------

type table struct {
	mu sync.RWMutex
	//pgrdf:guardedby mu
	m map[string]int
}

func rlockRead(t *table, k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func rlockWrite(t *table, k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = 1 // want "only t.mu.RLock is held"
}

func lockedDelete(t *table, k string) {
	t.mu.Lock()
	delete(t.m, k)
	t.mu.Unlock()
}

func unlockedDelete(t *table, k string) {
	delete(t.m, k) // want "t.m is written without t.mu write-held"
}

// --- //pgrdf:locks: callee declares, callers are checked -------------

//pgrdf:locks mu
func (t *table) growLocked() {
	t.m = make(map[string]int)
}

func callerHolds(t *table) {
	t.mu.Lock()
	t.growLocked()
	t.mu.Unlock()
}

func callerForgets(t *table) {
	t.growLocked() // want "call to growLocked requires t.mu held"
}

//pgrdf:locks t.mu
func resetParam(t *table) {
	t.m = nil
}

func paramCallerHolds(t *table) {
	t.mu.Lock()
	resetParam(t)
	t.mu.Unlock()
}

func paramCallerForgets(t *table) {
	resetParam(t) // want "call to resetParam requires t.mu held"
}

// --- fresh objects are exclusively owned -----------------------------

func construct() *table {
	t := &table{}
	t.m = make(map[string]int) // fresh local: no lock needed
	t.growLocked()             // fresh local: callee contract waived
	return t
}

func constructVar() counter {
	var c counter
	c.n = 41 // zero value owned by this function
	c.n++
	return c
}

// --- goroutines never inherit the spawner's critical section ---------

func spawnLoses(c *counter, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 1 // held here...
	go func() {
		c.n = 2 // want "c.n is written without c.mu write-held"
		close(done)
	}()
	<-done
}

// --- justified suppression -------------------------------------------

func suppressed(c *counter) int {
	//pgrdfvet:ignore guardedby -- single-goroutine fixture: no writer exists while this reads
	return c.n
}

// --- annotation validation -------------------------------------------

type badAnno struct {
	//pgrdf:guardedby missing
	x int // want "no mutex field \"missing\""
}

//pgrdf:guardedby // want "malformed pgrdf annotation"
type unannotated struct{ y int }

func useFields(b *badAnno, u *unannotated) int { return b.x + u.y }
