// Package walerrtest exercises the walerr analyzer.
package walerrtest

import (
	"fmt"

	"repro/internal/wal"
)

func bad(l *wal.Log, b wal.Batch) {
	l.Commit(b, nil)     // want "Log.Commit error discarded"
	l.Checkpoint(nil)    // want "Log.Checkpoint error discarded"
	l.CheckpointIncremental(nil) // want "Log.CheckpointIncremental error discarded"
	l.Sync()             // want "Log.Sync error discarded"
	_ = l.Sync()         // want "Log.Sync error assigned to _"
	defer l.Sync()       // want "Log.Sync error discarded by defer"
	go l.Checkpoint(nil) // want "Log.Checkpoint error discarded by go statement"
}

func good(l *wal.Log, b wal.Batch) error {
	if err := l.Commit(b, nil); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	if err := l.Checkpoint(nil); err != nil {
		return err
	}
	if err := l.CheckpointIncremental(nil); err != nil {
		return err
	}
	err := l.Sync()
	// Close is exempt: the flush already happened via Sync above, and
	// teardown paths routinely defer it.
	defer l.Close()
	return err
}

func suppressed(l *wal.Log) {
	//pgrdfvet:ignore walerr -- test harness tears down a log whose disk is already gone
	l.Sync()
}

// The replication apply path: wal.ApplyBatch and wal.DecodeFrames are
// how a follower extends its copy of the leader's history, so a
// dropped error silently forks the replica. (The repl.Follower
// methods under the same rule are unexported; they are checked inside
// the repl package itself when pgrdfvet runs over ./...)
func applyPath(b wal.Batch, data []byte) {
	wal.ApplyBatch(nil, b)         // want "ApplyBatch error discarded"
	_, _, _ = wal.DecodeFrames(data, nil) // want "DecodeFrames error assigned to _"
	go wal.ApplyBatch(nil, b)      // want "ApplyBatch error discarded by go statement"
}

func applyPathGood(b wal.Batch, data []byte) error {
	if err := wal.ApplyBatch(nil, b); err != nil {
		return err
	}
	consumed, _, err := wal.DecodeFrames(data, nil)
	_ = consumed
	return err
}
