// Package walerrtest exercises the walerr analyzer.
package walerrtest

import (
	"fmt"

	"repro/internal/wal"
)

func bad(l *wal.Log, b wal.Batch) {
	l.Commit(b, nil)     // want "Log.Commit error discarded"
	l.Checkpoint(nil)    // want "Log.Checkpoint error discarded"
	l.Sync()             // want "Log.Sync error discarded"
	_ = l.Sync()         // want "Log.Sync error assigned to _"
	defer l.Sync()       // want "Log.Sync error discarded by defer"
	go l.Checkpoint(nil) // want "Log.Checkpoint error discarded by go statement"
}

func good(l *wal.Log, b wal.Batch) error {
	if err := l.Commit(b, nil); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	if err := l.Checkpoint(nil); err != nil {
		return err
	}
	err := l.Sync()
	// Close is exempt: the flush already happened via Sync above, and
	// teardown paths routinely defer it.
	defer l.Close()
	return err
}

func suppressed(l *wal.Log) {
	//pgrdfvet:ignore walerr -- test harness tears down a log whose disk is already gone
	l.Sync()
}
