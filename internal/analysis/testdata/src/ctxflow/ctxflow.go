// Package ctxflowtest exercises the ctxflow analyzer. It is analyzed
// under the import path repro/internal/ctxflowtest, i.e. as library
// code, where both rules apply.
package ctxflowtest

import (
	"context"
	"sync"

	"repro/internal/sparql"
)

const q = "SELECT * WHERE { ?s ?p ?o }"

func badWrappers(e *sparql.Engine) {
	_, _ = e.Query("m", q)        // want "Query pins context.Background; call QueryContext"
	_, _ = e.Ask("m", "ASK {}")   // want "Ask pins context.Background; call AskContext"
	_, _ = e.Construct("m", q)    // want "Construct pins context.Background; call ConstructContext"
	_, _ = e.Describe("m", q)     // want "Describe pins context.Background; call DescribeContext"
	_, _ = e.Update("m", "CLEAR") // want "Update pins context.Background; call UpdateContext"
}

func badMintedContext(e *sparql.Engine) {
	ctx := context.Background() // want "must accept a context from its caller, not mint context.Background"
	_, _ = e.QueryContext(ctx, "m", q)
	_, _ = e.AskContext(context.TODO(), "m", "ASK {}") // want "must accept a context from its caller, not mint context.TODO"
}

func good(ctx context.Context, e *sparql.Engine) error {
	if _, err := e.QueryContext(ctx, "m", q); err != nil {
		return err
	}
	if _, err := e.UpdateContext(ctx, "m", "CLEAR ALL"); err != nil {
		return err
	}
	// Explain and Count-free helpers that take no context are out of
	// scope for rule 1.
	_, err := e.Explain("m", q)
	return err
}

// goodWorkerPool is the intra-query parallelism shape: worker
// goroutines share the caller's context (captured by the closure or
// derived via WithCancel), which is threading, not minting — the
// analyzer must not flag it.
func goodWorkerPool(ctx context.Context, e *sparql.Engine, queries []string) error {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, q := range queries {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			if _, err := e.QueryContext(wctx, "m", q); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(q)
	}
	wg.Wait()
	return firstErr
}

// badWorkerMintsContext detaches a worker from the caller's
// cancellation by minting a fresh root context inside the goroutine.
func badWorkerMintsContext(e *sparql.Engine) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background() // want "must accept a context from its caller, not mint context.Background"
		_, _ = e.QueryContext(ctx, "m", q)
	}()
	wg.Wait()
}

func suppressed(e *sparql.Engine) {
	//pgrdfvet:ignore ctxflow -- warm-up helper is deliberately uncancellable
	_, _ = e.Query("m", q)
}
