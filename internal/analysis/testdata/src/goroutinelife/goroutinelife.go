// Package goroutinelifetest exercises the goroutinelife analyzer:
// every go statement needs a visible join — WaitGroup counter, context
// cancellation, stop channel, or a channel handshake with the spawner.
package goroutinelifetest

import (
	"context"
	"sync"
)

func work()    {}
func sink(int) {}

// --- failing cases ---------------------------------------------------

func fireAndForget() {
	go work() // want "no visible join mechanism"
}

func fireAndForgetClosure(items []int) {
	go func() { // want "no visible join mechanism"
		for _, it := range items {
			sink(it)
		}
	}()
}

// --- fixed counterparts ----------------------------------------------

func waitGroupJoin(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func contextArg(ctx context.Context) {
	// The callee receives the context, so it owns its cancellation.
	go tail(ctx)
}

func tail(ctx context.Context) {
	<-ctx.Done()
}

func contextLoop(ctx context.Context, tick <-chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
				work()
			}
		}
	}()
}

type pump struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// stopChannel: the body watches a chan struct{} — the stop-channel /
// semaphore-slot idiom.
func (p *pump) stopChannel() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			default:
				work()
			}
		}
	}()
}

// methodBody: for `go p.loop()` the analyzer inspects the same-package
// callee's body for join evidence.
func (p *pump) methodBody() {
	p.wg.Add(1)
	go p.loop()
}

func (p *pump) loop() {
	defer p.wg.Done()
	<-p.stop
}

func channelHandshake() error {
	errc := make(chan error, 1)
	go func() {
		errc <- doWork()
	}()
	return <-errc
}

func doWork() error { return nil }

// --- loop-variable capture -------------------------------------------

func loopCapture(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() { // want "captures loop variable i"
			defer wg.Done()
			sink(i)
		}()
	}
	wg.Wait()
}

func loopFixed(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink(i)
		}(i)
	}
	wg.Wait()
}

// --- justified suppression -------------------------------------------

func suppressed() {
	//pgrdfvet:ignore goroutinelife -- process-lifetime metrics flusher, exits with the process by design
	go work()
}
