// Package guardtickgraph exercises the guardtick analyzer's
// internal/graph scope. It is analyzed under the import path
// repro/internal/graph with stand-in guard and CSR types shaped like
// the analytics package's: CSR adjacency reads are the algorithm hot
// loops, and must settle their work through the guard in the same
// top-level function, exactly like store scans.
package guardtickgraph

import "repro/internal/store"

type guard struct{ n int }

func (g *guard) tickN(n int) bool { g.n += n; return true }
func (g *guard) poll() bool       { return true }

type CSR struct {
	off, dst   []uint32
	roff, rsrc []uint32
	w          []float64
}

func (c *CSR) Neighbors(v uint32) []uint32 { return c.dst[c.off[v]:c.off[v+1]] }
func (c *CSR) InNeighbors(v uint32) []uint32 {
	return c.rsrc[c.roff[v]:c.roff[v+1]]
}
func (c *CSR) NeighborWeights(v uint32) []float64 {
	if c.w == nil {
		return nil
	}
	return c.w[c.off[v]:c.off[v+1]]
}
func (c *CSR) NumVertices() int { return len(c.off) - 1 }

// badGather walks every in-edge with no guard in sight: a full
// iteration blind to cancellation and MaxWork.
func badGather(cs *CSR, rank []float64) float64 {
	var sum float64
	for v := 0; v < cs.NumVertices(); v++ {
		for _, u := range cs.InNeighbors(uint32(v)) { // want "store scan without a budget-guard tick"
			sum += rank[u]
		}
	}
	return sum
}

// badWeighted reads the weight rows, which count as adjacency too.
func badWeighted(cs *CSR, v uint32) float64 {
	var sum float64
	for _, w := range cs.NeighborWeights(v) { // want "store scan without a budget-guard tick"
		sum += w
	}
	return sum
}

// badDrain replays the projection's cursor loop without the tick.
func badDrain(st *store.Store, p store.Pattern) int {
	cur := st.Cursor(p) // want "store scan without a budget-guard tick"
	defer cur.Close()
	n := 0
	for {
		batch := cur.NextBatch(1024) // want "store scan without a budget-guard tick"
		if len(batch) == 0 {
			return n
		}
		n += len(batch)
	}
}

// goodGather settles the morsel's edge work with one tickN, the
// batched form the real algorithm phases use.
func goodGather(g *guard, cs *CSR, rank []float64, lo, hi int) (float64, bool) {
	var sum float64
	edges := 0
	for v := lo; v < hi; v++ {
		in := cs.InNeighbors(uint32(v))
		edges += len(in)
		for _, u := range in {
			sum += rank[u]
		}
	}
	return sum, g.tickN(edges)
}

// goodDrain is the projection's shape: cursor batches ticked as they
// are drained, in the same function that opened the cursor.
func goodDrain(g *guard, st *store.Store, p store.Pattern) int {
	cur := st.Cursor(p)
	defer cur.Close()
	n := 0
	for {
		batch := cur.NextBatch(1024)
		if len(batch) == 0 {
			return n
		}
		if !g.tickN(len(batch)) {
			return n
		}
		n += len(batch)
	}
}

// goodNestedClosure ticks from inside a worker closure; the analyzer
// accepts any guard consultation within the same top-level function.
func goodNestedClosure(g *guard, cs *CSR) int {
	total := 0
	walk := func(v uint32) {
		row := cs.Neighbors(v)
		total += len(row)
		g.tickN(len(row))
	}
	for v := 0; v < cs.NumVertices(); v++ {
		walk(uint32(v))
	}
	return total
}
