package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader is exercised on well-formed packages by every analyzer
// test; these tests pin its error paths — the answers pgrdfvet gives
// when pointed at broken, missing, or unresolvable code must be
// diagnoses, not panics or silent successes.

func TestCheckDirMissingDirectory(t *testing.T) {
	l := NewLoader(t.TempDir())
	_, err := l.CheckDir(filepath.Join(t.TempDir(), "no-such-dir"), "repro/internal/missing")
	if err == nil {
		t.Fatal("CheckDir on a missing directory succeeded")
	}
	if !os.IsNotExist(err) {
		t.Errorf("want an os.IsNotExist error, got %v", err)
	}
}

func TestCheckDirNoGoFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("not go"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(dir)
	_, err := l.CheckDir(dir, "repro/internal/empty")
	if err == nil || !strings.Contains(err.Error(), "no .go files") {
		t.Fatalf("want a 'no .go files' error, got %v", err)
	}
}

func TestCheckDirParseError(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc oops( {\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(dir)
	_, err := l.CheckDir(dir, "repro/internal/broken")
	if err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("want a parse error naming the file, got %v", err)
	}
}

func TestCheckDirTypeError(t *testing.T) {
	dir := t.TempDir()
	src := `package broken

func typeError() int {
	var s string = 42
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(dir)
	_, err := l.CheckDir(dir, "repro/internal/broken")
	if err == nil || !strings.Contains(err.Error(), "type-checking repro/internal/broken") {
		t.Fatalf("want a type-checking error for the package, got %v", err)
	}
}

func TestCheckDirUnresolvableImport(t *testing.T) {
	// A fresh loader has indexed no export data, so any import —
	// including one that would resolve under `go list` against a
	// vendored or module dependency — must fail with the "no export
	// data" diagnosis rather than a nil-importer panic.
	dir := t.TempDir()
	src := `package uses

import "repro/internal/store"

var _ = store.New
`
	if err := os.WriteFile(filepath.Join(dir, "uses.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(dir)
	_, err := l.CheckDir(dir, "repro/internal/uses")
	if err == nil || !strings.Contains(err.Error(), `no export data for "repro/internal/store"`) {
		t.Fatalf("want a 'no export data' error, got %v", err)
	}
}

func TestLoadBadPattern(t *testing.T) {
	l := NewLoader(t.TempDir())
	_, err := l.Load("./does/not/exist/...")
	if err == nil || !strings.Contains(err.Error(), "go list") {
		t.Fatalf("want a go list error, got %v", err)
	}
}

func TestLoadPackageWithTypeErrors(t *testing.T) {
	// go list succeeds on a syntactically valid module whose code does
	// not type-check; the failure must surface from the loader's own
	// check step (or go list's Error field), never as a half-loaded
	// package.
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module brokenmod\n\ngo 1.22\n")
	writeFile("main.go", `package main

func main() {
	var s string = 42
	_ = s
}
`)
	l := NewLoader(dir)
	_, err := l.Load("./...")
	if err == nil {
		t.Fatal("Load on a package with type errors succeeded")
	}
	if !strings.Contains(err.Error(), "type-checking") && !strings.Contains(err.Error(), "go list") {
		t.Errorf("error does not diagnose the type failure: %v", err)
	}
}
