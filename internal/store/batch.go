package store

// Batched scan API: the store-side half of the engine's vectorized
// executor (DESIGN.md §15). The row-at-a-time Scan/Next paths pay a
// callback (or method call) per quad; at millions of intermediate rows
// the dispatch dominates the work. The batch entry points below hand
// the caller contiguous runs of matching rows instead — zero-copy
// subslices of the sorted index (or cursor snapshot) — so the tight
// per-row loops live next to the index layout and the caller amortizes
// its own bookkeeping (guard ticks, profile counters) to one update
// per batch.

// DefaultBatchRows is the batch capacity callers use unless they have a
// reason not to: large enough to amortize per-batch costs, small enough
// to stay cache-resident (1024 quads = 40 KiB).
const DefaultBatchRows = 1024

// ScanRangeBatch calls fn with consecutive runs of rows from the morsel
// r that match p and are not tombstoned in dead (nil means no
// tombstones), in key order. Each run is a subslice of the index's row
// array, at most max rows long (max <= 0 means DefaultBatchRows); fn
// must not mutate it or retain it past the callback — like ScanRange,
// the caller is expected to hold the store's read lock for the duration
// of the scan. It returns false if fn stopped the scan early.
//
// Visiting the ranges of Partitions(p, n) in order yields exactly the
// rows Scan(p, fn) visits from the index, in the same order — the batch
// boundary placement is the only difference.
func (ix *Index) ScanRangeBatch(r RowRange, p Pattern, dead map[IDQuad]struct{}, max int, fn func([]IDQuad) bool) bool {
	if max <= 0 {
		max = DefaultBatchRows
	}
	lo, hi := r.Lo, r.Hi
	if hi > len(ix.rows) {
		hi = len(ix.rows)
	}
	i := lo
	for i < hi {
		if !p.Matches(ix.rows[i]) {
			i++
			continue
		}
		if _, gone := dead[ix.rows[i]]; gone {
			i++
			continue
		}
		// Extend the run of consecutive live matches.
		j := i + 1
		lim := i + max
		if lim > hi {
			lim = hi
		}
		for j < lim && p.Matches(ix.rows[j]) {
			if _, gone := dead[ix.rows[j]]; gone {
				break
			}
			j++
		}
		if !fn(ix.rows[i:j]) {
			return false
		}
		i = j
	}
	return true
}

// ScanBatch is the batched counterpart of Scan on a single index: it
// resolves the bound key prefix to a row range and emits runs via
// ScanRangeBatch, updating the same access-path statistics as Scan.
// It returns false if fn stopped the scan early.
func (ix *Index) ScanBatch(p Pattern, dead map[IDQuad]struct{}, max int, fn func([]IDQuad) bool) bool {
	n := ix.prefixLen(p)
	lo, hi := 0, len(ix.rows)
	if n > 0 {
		lo, hi = ix.rangeOf(p, n)
		ix.rangeScans.Add(1)
	} else {
		ix.fullScans.Add(1)
	}
	return ix.ScanRangeBatch(RowRange{Lo: lo, Hi: hi}, p, dead, max, fn)
}

// ScanBatch calls fn with runs of at most max quads matching the
// pattern (max <= 0 means DefaultBatchRows), choosing the best index
// automatically. It visits exactly the rows Scan visits, in the same
// order: sorted index rows first (tombstones skipped), then the
// unmerged delta buffer. Index runs are zero-copy subslices valid only
// during the callback; delta rows are staged through a scratch buffer
// that is reused between callbacks, so fn must not retain its argument
// either way. fn returning false stops the scan.
//
// When a FaultInjector is installed the scan degrades to the row path
// internally (the injector observes individual rows), preserving
// per-row fault semantics at batch-call granularity.
func (s *Store) ScanBatch(p Pattern, max int, fn func([]IDQuad) bool) {
	if max <= 0 {
		max = DefaultBatchRows
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.fault.Load() != nil {
		s.scanBatchFaultLocked(p, max, fn)
		return
	}
	ix := s.chooseIndexLocked(p)
	if !ix.ScanBatch(p, s.dead, max, fn) {
		return
	}
	if len(s.delta) == 0 {
		return
	}
	// Delta rows are appended out of index order, so they cannot be
	// handed out as subslices of a sorted run; stage them in a scratch
	// batch. Rows deleted while still in the delta are removed from the
	// delta itself (never tombstoned), so no dead-check here — exactly
	// like scanLocked.
	buf := make([]IDQuad, 0, max)
	for _, q := range s.delta {
		if !p.Matches(q) {
			continue
		}
		buf = append(buf, q)
		if len(buf) == max {
			if !fn(buf) {
				return
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		fn(buf)
	}
}

// scanBatchFaultLocked bridges the fault-injected row scan into
// batches: every row still passes through the injector's per-row hook.
//
//pgrdf:locks mu
func (s *Store) scanBatchFaultLocked(p Pattern, max int, fn func([]IDQuad) bool) {
	buf := make([]IDQuad, 0, max)
	stopped := false
	s.scanLocked(p, func(q IDQuad) bool {
		buf = append(buf, q)
		if len(buf) == max {
			if !fn(buf) {
				stopped = true
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if !stopped && len(buf) > 0 {
		fn(buf)
	}
}

// NextBatch returns up to max of the cursor's remaining rows (max <= 0
// means DefaultBatchRows) as a zero-copy subslice of the snapshot,
// advancing the cursor past them. It returns nil once the cursor is
// exhausted or closed. The snapshot is immutable and privately owned,
// so the returned slice stays valid after further NextBatch/Close
// calls; callers must still not mutate it (sub-cursors from Partitions
// share the underlying array).
func (c *Cursor) NextBatch(max int) []IDQuad {
	if c.closed || c.pos >= len(c.rows) {
		return nil
	}
	if max <= 0 {
		max = DefaultBatchRows
	}
	end := c.pos + max
	if end > len(c.rows) {
		end = len(c.rows)
	}
	out := c.rows[c.pos:end]
	c.pos = end
	return out
}
