package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

func TestOverlayInternReadsThrough(t *testing.T) {
	d := NewDict()
	known := rdf.NewLiteral("known")
	kid := d.Intern(known)
	before := d.Len()

	o := NewTermOverlay(d)
	if got := o.Intern(known); got != kid {
		t.Errorf("known term got scratch ID %d, want dictionary ID %d", got, kid)
	}
	novel := rdf.NewLiteral("novel")
	sid := o.Intern(novel)
	if sid < scratchBase {
		t.Errorf("novel term got dictionary-range ID %d", sid)
	}
	if d.Len() != before {
		t.Errorf("overlay grew the dictionary: %d -> %d", before, d.Len())
	}
	if o.Len() != 1 {
		t.Errorf("overlay len = %d, want 1", o.Len())
	}
	// Interning the same novel term again is stable.
	if again := o.Intern(novel); again != sid {
		t.Errorf("re-intern gave %d, want %d", again, sid)
	}
}

func TestOverlayTermRoutesByRange(t *testing.T) {
	d := NewDict()
	known := rdf.NewIRI("http://x/known")
	kid := d.Intern(known)
	o := NewTermOverlay(d)
	novel := rdf.NewInt(12345)
	sid := o.Intern(novel)

	if got := o.Term(kid); got.String() != known.String() {
		t.Errorf("Term(%d) = %v, want %v", kid, got, known)
	}
	if got := o.Term(sid); got.String() != novel.String() {
		t.Errorf("Term(%d) = %v, want %v", sid, got, novel)
	}
}

func TestOverlayTermPanicsOnBogusScratchID(t *testing.T) {
	o := NewTermOverlay(NewDict())
	defer func() {
		if recover() == nil {
			t.Error("Term on never-issued scratch ID did not panic")
		}
	}()
	o.Term(scratchBase + 99)
}

func TestOverlayConcurrent(t *testing.T) {
	d := NewDict()
	o := NewTermOverlay(d)
	const workers = 8
	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				term := rdf.NewLiteral(fmt.Sprintf("scratch-%d", i))
				id := o.Intern(term)
				ids[w] = append(ids[w], id)
				if got := o.Term(id); got.Value != term.Value {
					t.Errorf("Term(%d) = %v, want %v", id, got, term)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every worker interned the same 100 terms; IDs must agree.
	for w := 1; w < workers; w++ {
		for i := range ids[0] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got ID %d for term %d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
	if o.Len() != 100 {
		t.Errorf("overlay len = %d, want 100", o.Len())
	}
	if d.Len() != 0 {
		t.Errorf("dictionary grew to %d", d.Len())
	}
}
