package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func quad(s, p, o, g string) rdf.Quad {
	q := rdf.Quad{S: iri(s), P: iri(p), O: iri(o)}
	if g != "" {
		q.G = iri(g)
	}
	return q
}

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	a := d.Intern(rdf.NewIRI("http://a"))
	b := d.Intern(rdf.NewLiteral("a"))
	if a == b {
		t.Fatal("distinct terms got same ID")
	}
	if d.Intern(rdf.NewIRI("http://a")) != a {
		t.Error("re-intern changed ID")
	}
	if d.Lookup(rdf.NewIRI("http://a")) != a {
		t.Error("lookup mismatch")
	}
	if d.Lookup(rdf.NewIRI("http://missing")) != NoID {
		t.Error("missing term should be NoID")
	}
	if !d.Term(a).Equal(rdf.NewIRI("http://a")) {
		t.Error("Term round-trip failed")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.LexicalBytes() <= 0 {
		t.Error("LexicalBytes should be positive")
	}
}

func TestDictTermPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Term(NoID) should panic")
		}
	}()
	NewDict().Term(NoID)
}

func TestParsePermutation(t *testing.T) {
	for _, ok := range []string{"PCSGM", "PSCGM", "GSPCM", "GPCSM", "SPCGM", "SCPGM", "MGCPS"} {
		p, err := ParsePermutation(ok)
		if err != nil {
			t.Errorf("ParsePermutation(%q): %v", ok, err)
		}
		if p.String() != ok {
			t.Errorf("round-trip %q -> %q", ok, p.String())
		}
	}
	for _, bad := range []string{"", "PCS", "PPSGM", "PCSGX", "PCSGMM"} {
		if _, err := ParsePermutation(bad); err == nil {
			t.Errorf("ParsePermutation(%q) should fail", bad)
		}
	}
}

func TestLoadAndScan(t *testing.T) {
	s := New()
	n, err := s.Load("m1", []rdf.Quad{
		quad("v1", "follows", "v2", "e3"),
		quad("v1", "knows", "v2", "e4"),
		quad("v2", "follows", "v3", "e5"),
	})
	if err != nil || n != 3 {
		t.Fatalf("Load = %d, %v", n, err)
	}
	// Pattern bound on P.
	p := AnyPattern()
	p.P = s.Dict().Lookup(iri("follows"))
	var got []rdf.Quad
	s.Scan(p, func(q IDQuad) bool {
		got = append(got, s.quadTerms(q))
		return true
	})
	if len(got) != 2 {
		t.Fatalf("P-scan got %d rows", len(got))
	}
	if !s.Contains("m1", quad("v1", "follows", "v2", "e3")) {
		t.Error("Contains false for loaded quad")
	}
	if s.Contains("m1", quad("v1", "follows", "v2", "")) {
		t.Error("Contains true for same triple in default graph")
	}
}

func TestLoadDeduplicates(t *testing.T) {
	s := New()
	q := quad("a", "p", "b", "")
	n, err := s.Load("m", []rdf.Quad{q, q, q})
	if err != nil || n != 1 {
		t.Fatalf("Load dedup within batch = %d, %v", n, err)
	}
	n, err = s.Load("m", []rdf.Quad{q})
	if err != nil || n != 0 {
		t.Fatalf("Load dedup across batches = %d, %v", n, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	s := New()
	bad := rdf.Quad{S: rdf.NewLiteral("x"), P: iri("p"), O: iri("o")}
	if _, err := s.Load("m", []rdf.Quad{bad}); err == nil {
		t.Error("invalid quad loaded")
	}
}

func TestInsertDelete(t *testing.T) {
	s := New()
	q := quad("a", "p", "b", "")
	if ok, err := s.Insert("m", q); !ok || err != nil {
		t.Fatalf("Insert = %v, %v", ok, err)
	}
	if ok, _ := s.Insert("m", q); ok {
		t.Error("duplicate insert reported true")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if ok, err := s.Delete("m", q); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, _ := s.Delete("m", q); ok {
		t.Error("double delete reported true")
	}
	if s.Len() != 0 {
		t.Errorf("Len after delete = %d", s.Len())
	}
	if s.Contains("m", q) {
		t.Error("deleted quad still present")
	}
	// Reinsert after delete (exercises tombstone resurrection).
	if ok, _ := s.Insert("m", q); !ok {
		t.Error("reinsert after delete failed")
	}
	s.Compact()
	if !s.Contains("m", q) {
		t.Error("quad lost after compaction")
	}
}

func TestDeleteBaseRowThenCompact(t *testing.T) {
	s := New()
	quads := []rdf.Quad{quad("a", "p", "b", ""), quad("a", "p", "c", "")}
	if _, err := s.Load("m", quads); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Delete("m", quads[0]); !ok {
		t.Fatal("delete of base row failed")
	}
	if s.Contains("m", quads[0]) {
		t.Error("tombstoned row still visible")
	}
	s.Compact()
	if s.Contains("m", quads[0]) || !s.Contains("m", quads[1]) {
		t.Error("compaction applied tombstones incorrectly")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestModelsAndVirtualModels(t *testing.T) {
	s := New()
	s.Load("topo", []rdf.Quad{quad("a", "p", "b", "")})
	s.Load("kv", []rdf.Quad{quad("a", "name", "b", "")})
	if err := s.CreateVirtualModel("all", "topo", "kv"); err != nil {
		t.Fatal(err)
	}
	ids, err := s.ResolveDataset("all")
	if err != nil || len(ids) != 2 {
		t.Fatalf("ResolveDataset(all) = %v, %v", ids, err)
	}
	// Nested virtual model, with dedup.
	if err := s.CreateVirtualModel("all2", "all", "topo"); err != nil {
		t.Fatal(err)
	}
	ids, _ = s.ResolveDataset("all2")
	if len(ids) != 2 {
		t.Errorf("nested virtual model ids = %v", ids)
	}
	if err := s.CreateVirtualModel("bad", "missing"); err == nil {
		t.Error("virtual model over unknown member accepted")
	}
	if err := s.CreateVirtualModel("topo", "kv"); err == nil {
		t.Error("virtual model may not shadow a semantic model")
	}
	if err := s.CreateVirtualModel("empty"); err == nil {
		t.Error("empty virtual model accepted")
	}
	if _, err := s.ResolveDataset("missing"); err == nil {
		t.Error("unknown dataset resolved")
	}
	all, err := s.ResolveDataset("")
	if err != nil || len(all) != 2 {
		t.Errorf("ResolveDataset(\"\") = %v, %v", all, err)
	}
	if s.ModelName(s.LookupModel("topo")) != "topo" {
		t.Error("ModelName round-trip failed")
	}
	if got := s.Models(); len(got) != 2 || got[0] != "topo" {
		t.Errorf("Models() = %v", got)
	}
}

func TestCreateDropIndex(t *testing.T) {
	s := New()
	s.Load("m", []rdf.Quad{quad("a", "p", "b", "g"), quad("c", "p", "d", "g2")})
	if err := s.CreateIndex("GSPCM"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("GSPCM"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := s.CreateIndex("XXXXX"); err == nil {
		t.Error("bad spec accepted")
	}
	// New index must see pre-existing rows.
	g := s.Dict().Lookup(iri("g"))
	p := AnyPattern()
	p.G = g
	n := 0
	if err := s.ScanIndex("GSPCM", p, func(IDQuad) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("GSPCM scan found %d rows, want 1", n)
	}
	if err := s.DropIndex("GSPCM"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropIndex("GSPCM"); err == nil {
		t.Error("dropping missing index succeeded")
	}
	if err := s.DropIndex("PCSGM"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropIndex("PSCGM"); err == nil {
		t.Error("dropped the last index")
	}
}

func TestChooseIndexPrefersLongestPrefix(t *testing.T) {
	s, err := NewWithIndexes([]string{"PCSGM", "PSCGM", "GSPCM", "SPCGM"})
	if err != nil {
		t.Fatal(err)
	}
	var quads []rdf.Quad
	for i := 0; i < 100; i++ {
		quads = append(quads, quad(fmt.Sprintf("s%d", i%10), fmt.Sprintf("p%d", i%3), fmt.Sprintf("o%d", i), fmt.Sprintf("g%d", i)))
	}
	s.Load("m", quads)

	lookup := func(name string) ID { return s.Dict().Lookup(iri(name)) }

	p := AnyPattern()
	p.P = lookup("p0")
	p.C = lookup("o0")
	if got := s.ChooseIndex(p).Perm().String(); got != "PCSGM" {
		t.Errorf("P+C bound chose %s, want PCSGM", got)
	}
	p = AnyPattern()
	p.P = lookup("p0")
	p.S = lookup("s0")
	if got := s.ChooseIndex(p).Perm().String(); got != "PSCGM" && got != "SPCGM" {
		t.Errorf("P+S bound chose %s", got)
	}
	p = AnyPattern()
	p.G = lookup("g5")
	if got := s.ChooseIndex(p).Perm().String(); got != "GSPCM" {
		t.Errorf("G bound chose %s, want GSPCM", got)
	}
	p = AnyPattern()
	p.S = lookup("s1")
	if got := s.ChooseIndex(p).Perm().String(); got != "SPCGM" {
		t.Errorf("S bound chose %s, want SPCGM", got)
	}
}

func TestIndexStatsCounters(t *testing.T) {
	s := New()
	s.Load("m", []rdf.Quad{quad("a", "p", "b", "")})
	p := AnyPattern()
	p.P = s.Dict().Lookup(iri("p"))
	s.Scan(p, func(IDQuad) bool { return true })
	s.Scan(AnyPattern(), func(IDQuad) bool { return true })
	var ranges, fulls int64
	for _, st := range s.IndexStatsSnapshot() {
		ranges += st.RangeScans
		fulls += st.FullScans
	}
	if ranges != 1 || fulls != 1 {
		t.Errorf("range=%d full=%d, want 1,1", ranges, fulls)
	}
	s.ResetIndexStats()
	for _, st := range s.IndexStatsSnapshot() {
		if st.RangeScans != 0 || st.FullScans != 0 {
			t.Error("stats not reset")
		}
	}
}

func TestStats(t *testing.T) {
	s := New()
	s.Load("m1", []rdf.Quad{
		quad("v1", "follows", "v2", "e3"),
		quad("v1", "knows", "v2", "e4"),
	})
	s.Load("m2", []rdf.Quad{
		{S: iri("v1"), P: iri("name"), O: rdf.NewLiteral("Amy")},
	})
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := DatasetStats{Quads: 3, Subjects: 1, Predicates: 3, Objects: 2, NamedGraphs: 2}
	if st != want {
		t.Errorf("Stats() = %+v, want %+v", st, want)
	}
	st, _ = s.Stats("m2")
	if st.Quads != 1 || st.NamedGraphs != 0 {
		t.Errorf("Stats(m2) = %+v", st)
	}
	if _, err := s.Stats("nope"); err == nil {
		t.Error("Stats over unknown model succeeded")
	}
}

func TestStorageReport(t *testing.T) {
	s := New()
	var quads []rdf.Quad
	for i := 0; i < 500; i++ {
		quads = append(quads, quad(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", i%2), fmt.Sprintf("o%d", i), fmt.Sprintf("g%d", i)))
	}
	s.Load("m", quads)
	s.CreateIndex("GSPCM")
	rep := s.Storage()
	if rep.Total <= 0 {
		t.Fatal("empty storage report")
	}
	var pcsgm, gspcm int64
	for _, o := range rep.Objects {
		switch o.Name {
		case "PCSGM Index":
			pcsgm = o.Bytes
		case "GSPCM Index":
			gspcm = o.Bytes
		}
	}
	if pcsgm == 0 || gspcm == 0 {
		t.Fatalf("missing index objects: %+v", rep.Objects)
	}
	// P has 2 distinct values over 500 rows, G is unique per row: prefix
	// compression must make PCSGM smaller than GSPCM (the Table 9 effect).
	if pcsgm >= gspcm {
		t.Errorf("PCSGM (%d) should compress better than GSPCM (%d)", pcsgm, gspcm)
	}
	if rep.MB("Triples Table") <= 0 || rep.TotalMB() <= 0 {
		t.Error("MB accessors broken")
	}
	if rep.MB("Nope") != 0 {
		t.Error("MB of unknown object should be 0")
	}
}

func TestExportDeterministic(t *testing.T) {
	s := New()
	in := []rdf.Quad{
		quad("b", "p", "c", ""),
		quad("a", "p", "b", "g1"),
		{S: iri("a"), P: iri("name"), O: rdf.NewLiteral("x")},
	}
	s.Load("m", in)
	got, err := s.Export("m")
	if err != nil || len(got) != 3 {
		t.Fatalf("Export = %d quads, %v", len(got), err)
	}
	for i := 1; i < len(got); i++ {
		if rdf.CompareQuads(got[i-1], got[i]) >= 0 {
			t.Error("export not sorted")
		}
	}
	if _, err := s.Export("missing"); err == nil {
		t.Error("export of unknown model succeeded")
	}
}

// TestScanMatchesNaive is invariant 4: for random data and random
// patterns, every index returns exactly the rows a naive filter over the
// full quad set returns — across interleaved loads, inserts and deletes.
func TestScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []string{"PCSGM", "PSCGM", "GSPCM", "GPCSM", "SPCGM", "SCPGM"}
	s, err := NewWithIndexes(specs)
	if err != nil {
		t.Fatal(err)
	}
	mirror := make(map[rdf.Quad]bool) // model m only
	randQuad := func() rdf.Quad {
		g := ""
		if rng.Intn(2) == 0 {
			g = fmt.Sprintf("g%d", rng.Intn(5))
		}
		return quad(
			fmt.Sprintf("s%d", rng.Intn(8)),
			fmt.Sprintf("p%d", rng.Intn(4)),
			fmt.Sprintf("o%d", rng.Intn(8)),
			g)
	}
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0: // bulk load a small batch
			batch := make([]rdf.Quad, rng.Intn(20))
			for i := range batch {
				batch[i] = randQuad()
				mirror[batch[i]] = true
			}
			if _, err := s.Load("m", batch); err != nil {
				t.Fatal(err)
			}
		case 1, 2: // delete
			q := randQuad()
			ok, err := s.Delete("m", q)
			if err != nil {
				t.Fatal(err)
			}
			if ok != mirror[q] {
				t.Fatalf("step %d: Delete(%v) = %v, mirror says %v", step, q, ok, mirror[q])
			}
			delete(mirror, q)
		case 3: // explicit compaction
			s.Compact()
		default: // insert
			q := randQuad()
			ok, err := s.Insert("m", q)
			if err != nil {
				t.Fatal(err)
			}
			if ok == mirror[q] {
				t.Fatalf("step %d: Insert(%v) = %v but mirror already %v", step, q, ok, mirror[q])
			}
			mirror[q] = true
		}

		if step%20 != 19 {
			continue
		}
		// Random pattern: bind each position with 50% probability.
		pat := AnyPattern()
		var want []rdf.Quad
		bindTerm := func(name string) ID {
			return s.Dict().Lookup(iri(name))
		}
		var sB, pB, oB, gB string
		if rng.Intn(2) == 0 {
			sB = fmt.Sprintf("s%d", rng.Intn(8))
			pat.S = bindTerm(sB)
		}
		if rng.Intn(2) == 0 {
			pB = fmt.Sprintf("p%d", rng.Intn(4))
			pat.P = bindTerm(pB)
		}
		if rng.Intn(2) == 0 {
			oB = fmt.Sprintf("o%d", rng.Intn(8))
			pat.C = bindTerm(oB)
		}
		if rng.Intn(2) == 0 {
			gB = fmt.Sprintf("g%d", rng.Intn(5))
			pat.G = bindTerm(gB)
		}
		for q := range mirror {
			if sB != "" && !q.S.Equal(iri(sB)) {
				continue
			}
			if pB != "" && !q.P.Equal(iri(pB)) {
				continue
			}
			if oB != "" && !q.O.Equal(iri(oB)) {
				continue
			}
			if gB != "" && !q.G.Equal(iri(gB)) {
				continue
			}
			want = append(want, q)
		}
		for _, spec := range specs {
			var got []rdf.Quad
			if err := s.ScanIndex(spec, pat, func(q IDQuad) bool {
				got = append(got, s.quadTerms(q))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d index %s: got %d rows, want %d (pattern s=%q p=%q o=%q g=%q)",
					step, spec, len(got), len(want), sB, pB, oB, gB)
			}
			gotSet := make(map[rdf.Quad]bool, len(got))
			for _, q := range got {
				if gotSet[q] {
					t.Fatalf("step %d index %s: duplicate row %v", step, spec, q)
				}
				gotSet[q] = true
			}
			for _, q := range want {
				if !gotSet[q] {
					t.Fatalf("step %d index %s: missing row %v", step, spec, q)
				}
			}
		}
	}
}

func TestEstimateCountIsUpperBound(t *testing.T) {
	s := New()
	var quads []rdf.Quad
	for i := 0; i < 200; i++ {
		quads = append(quads, quad(fmt.Sprintf("s%d", i%20), fmt.Sprintf("p%d", i%5), fmt.Sprintf("o%d", i%10), ""))
	}
	s.Load("m", quads)
	for i := 0; i < 5; i++ {
		p := AnyPattern()
		p.P = s.Dict().Lookup(iri(fmt.Sprintf("p%d", i)))
		p.C = s.Dict().Lookup(iri(fmt.Sprintf("o%d", i)))
		actual := 0
		s.Scan(p, func(IDQuad) bool { actual++; return true })
		if est := s.EstimateCount(p); est < actual {
			t.Errorf("estimate %d below actual %d", est, actual)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New()
	var quads []rdf.Quad
	for i := 0; i < 50; i++ {
		quads = append(quads, quad(fmt.Sprintf("s%d", i), "p", "o", ""))
	}
	s.Load("m", quads)
	n := 0
	s.Scan(AnyPattern(), func(IDQuad) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop visited %d rows", n)
	}
}
