package store

import "repro/internal/rdf"

// Cursor is a pull-based iterator over the quads matching a pattern.
// It is the streaming counterpart of Scan for callers that cannot drive
// a callback (HTTP handlers writing row-by-row, mergers interleaving
// several scans, ...).
//
// A Cursor is a consistent snapshot: the matching rows are materialized
// under the store's read lock at creation time, so later inserts,
// deletes and compactions do not affect it. The price is O(matches)
// memory, which is the same bound the callback API's consumers pay in
// practice when they buffer rows.
//
// Every Cursor MUST be closed (or fully drained; Next reports
// exhaustion and then Close becomes a no-op bookkeeping call that is
// still required). Open cursors are counted on the store — see
// OpenCursors — so leaks are observable in tests and in the /stats
// endpoint. The pgrdfvet iterclose analyzer enforces the Close
// discipline at compile time.
type Cursor struct {
	st     *Store
	rows   []IDQuad
	pos    int
	closed bool
}

// Cursor returns a snapshot iterator over the quads matching p, in the
// key order of the index chosen for the pattern (delta rows follow the
// indexed rows). The caller must Close it.
func (s *Store) Cursor(p Pattern) *Cursor {
	var rows []IDQuad
	s.mu.RLock()
	s.scanLocked(p, func(q IDQuad) bool {
		rows = append(rows, q)
		return true
	})
	s.mu.RUnlock()
	s.openCursors.Add(1)
	return &Cursor{st: s, rows: rows}
}

// Next returns the next matching quad. ok is false once the cursor is
// exhausted or closed.
func (c *Cursor) Next() (q IDQuad, ok bool) {
	if c.closed || c.pos >= len(c.rows) {
		return IDQuad{}, false
	}
	q = c.rows[c.pos]
	c.pos++
	return q, true
}

// Len returns the total number of rows in the snapshot, drained or not.
func (c *Cursor) Len() int { return len(c.rows) }

// NextQuad is Next with the dictionary lookup applied: it materializes
// the row's IDs back into RDF terms. The dictionary is append-only and
// self-locking, so this is safe while the store mutates.
func (c *Cursor) NextQuad() (rdf.Quad, bool) {
	q, ok := c.Next()
	if !ok {
		return rdf.Quad{}, false
	}
	return c.st.quadTerms(q), true
}

// Close releases the cursor. It is idempotent and never fails; the
// error return satisfies io.Closer so cursors compose with generic
// resource-cleanup helpers.
func (c *Cursor) Close() error {
	if !c.closed {
		c.closed = true
		c.rows = nil
		c.st.openCursors.Add(-1)
	}
	return nil
}

// OpenCursors returns the number of cursors created and not yet closed,
// a leak gauge for tests and monitoring.
func (s *Store) OpenCursors() int64 {
	return s.openCursors.Load()
}
