package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// TestConcurrentReadersAndWriters exercises the store under parallel
// load: four writers inserting disjoint quads while four readers scan.
// Run with -race to check the locking discipline.
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New()
	// Seed some data so scans have work.
	var seed []rdf.Quad
	for i := 0; i < 200; i++ {
		seed = append(seed, quad(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", i%5), fmt.Sprintf("o%d", i%20), ""))
	}
	if _, err := s.Load("m", seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := quad(fmt.Sprintf("w%d-s%d", w, i), "p0", "o0", "")
				if _, err := s.Insert("m", q); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%3 == 0 {
					if _, err := s.Delete("m", q); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := AnyPattern()
				p.P = s.Dict().Lookup(iri("p0"))
				n := 0
				s.Scan(p, func(IDQuad) bool { n++; return true })
				if n == 0 {
					t.Error("scan found nothing despite seeded data")
					return
				}
				_ = s.EstimateCount(p)
				_, _ = s.Stats()
			}
		}()
	}
	wg.Wait()

	// Final consistency: count w-prefixed survivors.
	s.Compact()
	survivors := 0
	s.Scan(AnyPattern(), func(q IDQuad) bool {
		if len(s.Dict().Term(q.S).Value) > len("http://x/") && s.Dict().Term(q.S).Value[9] == 'w' {
			survivors++
		}
		return true
	})
	// Each writer inserted 200, deleted ~67.
	want := 4 * (200 - 67)
	if survivors != want {
		t.Errorf("survivors = %d, want %d", survivors, want)
	}
}

func TestConcurrentInterning(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	ids := make([][]ID, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[g] = make([]ID, 100)
			for i := 0; i < 100; i++ {
				ids[g][i] = d.Intern(rdf.NewIRI(fmt.Sprintf("http://t/%d", i)))
			}
		}()
	}
	wg.Wait()
	// All goroutines must agree on every term's ID.
	for g := 1; g < 8; g++ {
		for i := 0; i < 100; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got different ID for term %d", g, i)
			}
		}
	}
	if d.Len() != 100 {
		t.Errorf("dict has %d terms, want 100", d.Len())
	}
}
