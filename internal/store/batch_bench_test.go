package store

import "testing"

// Raw scan kernels: per-row callback dispatch vs batched runs over the
// same index. The delta is pure iteration overhead — no binding or
// query machinery on top. Run via `make bench-micro`.

func benchScanStore(b *testing.B) *Store {
	s := partitionTestStore(b, 20000)
	s.Compact()
	return s
}

func BenchmarkScanRow(b *testing.B) {
	s := benchScanStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Scan(AnyPattern(), func(q IDQuad) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("empty scan")
		}
	}
}

func BenchmarkScanBatch(b *testing.B) {
	s := benchScanStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ScanBatch(AnyPattern(), DefaultBatchRows, func(run []IDQuad) bool {
			n += len(run)
			return true
		})
		if n == 0 {
			b.Fatal("empty scan")
		}
	}
}
