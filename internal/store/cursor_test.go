package store

import (
	"testing"

	"repro/internal/rdf"
)

func cursorTestStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	quads := []rdf.Quad{
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://x/p"), O: rdf.NewIRI("http://x/b")},
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://x/p"), O: rdf.NewIRI("http://x/c")},
		{S: rdf.NewIRI("http://x/b"), P: rdf.NewIRI("http://x/q"), O: rdf.NewLiteral("v")},
	}
	if _, err := s.Load("m", quads); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

func TestCursorDrain(t *testing.T) {
	s := cursorTestStore(t)
	p := AnyPattern()
	p.S = s.Dict().Lookup(rdf.NewIRI("http://x/a"))
	c := s.Cursor(p)
	defer c.Close()
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	n := 0
	for {
		q, ok := c.Next()
		if !ok {
			break
		}
		if q.S != p.S {
			t.Fatalf("row %v does not match pattern subject %d", q, p.S)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d rows, want 2", n)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("Next after exhaustion reported ok")
	}
}

func TestCursorSnapshotIsolation(t *testing.T) {
	s := cursorTestStore(t)
	c := s.Cursor(AnyPattern())
	defer c.Close()
	before := c.Len()
	if _, err := s.Insert("m", rdf.Quad{S: rdf.NewIRI("http://x/z"), P: rdf.NewIRI("http://x/p"), O: rdf.NewIRI("http://x/a")}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	s.Compact()
	n := 0
	for _, ok := c.Next(); ok; _, ok = c.Next() {
		n++
	}
	if n != before {
		t.Fatalf("snapshot saw %d rows after concurrent insert, want %d", n, before)
	}
}

func TestCursorLeakGauge(t *testing.T) {
	s := cursorTestStore(t)
	if got := s.OpenCursors(); got != 0 {
		t.Fatalf("OpenCursors = %d before any cursor", got)
	}
	c1 := s.Cursor(AnyPattern())
	c2 := s.Cursor(AnyPattern())
	if got := s.OpenCursors(); got != 2 {
		t.Fatalf("OpenCursors = %d, want 2", got)
	}
	c1.Close()
	c1.Close() // idempotent: must not decrement twice
	if got := s.OpenCursors(); got != 1 {
		t.Fatalf("OpenCursors = %d after double close of one cursor, want 1", got)
	}
	c2.Close()
	if got := s.OpenCursors(); got != 0 {
		t.Fatalf("OpenCursors = %d after closing all, want 0", got)
	}
	if _, ok := c1.Next(); ok {
		t.Fatal("Next on closed cursor reported ok")
	}
}
