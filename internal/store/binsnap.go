package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/rdf"
)

// Binary snapshot format (DESIGN.md §16). The text snapshot spells
// every term of every quad out lexically, so restoring a million quads
// re-parses and re-interns five million terms. The binary format dumps
// the storage representation instead — the value dictionary once, and
// each semantic-network index's ID rows in index order — so restore is
// a bulk decode: no parsing, no interning, no sorting, and the index
// sections decode in parallel.
//
//	file    := magic section* trailer
//	magic   := "PGRDFBC1" (8 bytes)
//	section := u8 type | u64le payloadLen | payload | u32le crc32c(type|len|payload)
//
// Section types, in file order:
//
//	1 header  : uv version=1 | uv quads | uv terms | uv models | uv virtuals | uv indexes
//	2 dict    : terms × term (ID order; term := u8 kind | uv len | bytes
//	            | typed: uv len | datatype | lang-tagged: uv len | lang)
//	3 models  : models × (uv len | name), ID order
//	4 virtual : virtuals × (uv len | name | uv n | n × uv modelID), sorted by name
//	5 index   : 5-byte permutation spec | uv rows | rows × (uv id per
//	            column, key order) — one section per index, rows sorted,
//	            tombstones elided and the delta buffer merged in
//	ff trailer: uv sectionCount | u32le crc32c(file bytes before trailer)
//
// Every integer suffix "uv" is an unsigned varint. CRCs are CRC32-C
// (Castagnoli — hardware-accelerated on amd64/arm64). The per-section
// CRC localizes corruption to a section; the trailer's section count
// and whole-file CRC catch truncation after any section boundary.

// binMagic identifies a binary snapshot ("pgrdf binary checkpoint v1").
const binMagic = "PGRDFBC1"

// binVersion is the current format version; decoders reject anything
// newer so a downgraded binary never misreads a future layout.
const binVersion = 1

const (
	secHeader  = 1
	secDict    = 2
	secModels  = 3
	secVirtual = 4
	secIndex   = 5
	secTrailer = 0xFF
)

// Term kind tags in the dict section. Literals split by shape so plain
// literals pay no empty datatype/lang fields.
const (
	binTermIRI     = 1
	binTermBlank   = 2
	binTermLiteral = 3
	binTermTyped   = 4
	binTermLang    = 5
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotBinarySnapshot reports that the input does not begin with the
// binary-snapshot magic — it is some other format (likely a text
// snapshot), not a damaged binary one.
var ErrNotBinarySnapshot = errors.New("store: not a binary snapshot")

// ErrBinarySnapshotCorrupt reports a binary snapshot that begins with
// the right magic but fails validation: a truncated or CRC-damaged
// section, a missing trailer, or inconsistent section contents.
var ErrBinarySnapshotCorrupt = errors.New("store: corrupt binary snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBinarySnapshotCorrupt, fmt.Sprintf(format, args...))
}

// IsBinarySnapshot reports whether data begins with the binary
// snapshot magic. Callers sniffing a checkpoint file pass any prefix
// of at least 8 bytes.
func IsBinarySnapshot(data []byte) bool {
	return len(data) >= len(binMagic) && string(data[:len(binMagic)]) == binMagic
}

// crcWriter tracks the running CRC32-C and byte count of everything
// written through it, so the trailer can seal the whole file.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}

// SnapshotBinary writes the whole store in the binary snapshot format.
// Like Snapshot it holds one read-lock acquisition for the duration,
// so the dump is a consistent point-in-time view.
func (s *Store) SnapshotBinary(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotBinaryLocked(w)
}

//pgrdf:locks mu
func (s *Store) snapshotBinaryLocked(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}
	if _, err := io.WriteString(cw, binMagic); err != nil {
		return err
	}

	terms := s.dict.snapshotTerms()
	sections := 0
	var buf []byte
	writeSection := func(typ byte, payload []byte) error {
		var hdr [9]byte
		hdr[0] = typ
		binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
		crc := crc32.Update(0, crcTable, hdr[:])
		crc = crc32.Update(crc, crcTable, payload)
		if _, err := cw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := cw.Write(payload); err != nil {
			return err
		}
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc)
		if _, err := cw.Write(tail[:]); err != nil {
			return err
		}
		sections++
		return nil
	}

	// Header.
	buf = binary.AppendUvarint(buf[:0], binVersion)
	buf = binary.AppendUvarint(buf, uint64(s.count))
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	buf = binary.AppendUvarint(buf, uint64(len(s.modelNames)))
	buf = binary.AppendUvarint(buf, uint64(len(s.virtual)))
	buf = binary.AppendUvarint(buf, uint64(len(s.indexes)))
	if err := writeSection(secHeader, buf); err != nil {
		return err
	}

	// Dict: every interned term in ID order, including terms no live
	// quad references — preserving the exact ID assignment makes
	// restore-then-resnapshot a byte-level fixed point.
	buf = buf[:0]
	for _, t := range terms {
		buf = appendTerm(buf, t)
	}
	if err := writeSection(secDict, buf); err != nil {
		return err
	}

	// Model-name table, ID order.
	buf = buf[:0]
	for _, name := range s.modelNames {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	if err := writeSection(secModels, buf); err != nil {
		return err
	}

	// Virtual-model table, sorted by name for determinism.
	names := make([]string, 0, len(s.virtual))
	for name := range s.virtual {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = buf[:0]
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		ids := s.virtual[name]
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	if err := writeSection(secVirtual, buf); err != nil {
		return err
	}

	// One section per index: the base rows with tombstones elided and
	// the delta buffer merged in, in the index's own key order — the
	// final row array, ready for bulk decode.
	for _, ix := range s.indexes {
		buf = buf[:0]
		spec := ix.perm.String()
		buf = append(buf, spec...)
		buf = binary.AppendUvarint(buf, uint64(s.count))
		delta := append([]IDQuad(nil), s.delta...)
		sort.Slice(delta, func(i, j int) bool { return ix.less(delta[i], delta[j]) })
		di := 0
		emit := func(q IDQuad) {
			for _, c := range ix.perm {
				buf = binary.AppendUvarint(buf, uint64(q.Get(c)))
			}
		}
		for _, q := range ix.rows {
			if _, gone := s.dead[q]; gone {
				continue
			}
			for di < len(delta) && ix.less(delta[di], q) {
				emit(delta[di])
				di++
			}
			emit(q)
		}
		for ; di < len(delta); di++ {
			emit(delta[di])
		}
		if err := writeSection(secIndex, buf); err != nil {
			return err
		}
	}

	// Trailer: seal section count and whole-file CRC so truncation at
	// any section boundary (or byte) is detectable.
	fileCRC := cw.crc
	buf = binary.AppendUvarint(buf[:0], uint64(sections))
	buf = binary.LittleEndian.AppendUint32(buf, fileCRC)
	if err := writeSection(secTrailer, buf); err != nil {
		return err
	}
	return bw.Flush()
}

// appendTerm encodes one dictionary term.
func appendTerm(buf []byte, t rdf.Term) []byte {
	switch t.Kind {
	case rdf.KindIRI:
		buf = append(buf, binTermIRI)
	case rdf.KindBlank:
		buf = append(buf, binTermBlank)
	default:
		switch {
		case t.Lang != "":
			buf = append(buf, binTermLang)
		case t.Datatype != "":
			buf = append(buf, binTermTyped)
		default:
			buf = append(buf, binTermLiteral)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
	buf = append(buf, t.Value...)
	if t.Kind == rdf.KindLiteral {
		if t.Lang != "" {
			buf = binary.AppendUvarint(buf, uint64(len(t.Lang)))
			buf = append(buf, t.Lang...)
		} else if t.Datatype != "" {
			buf = binary.AppendUvarint(buf, uint64(len(t.Datatype)))
			buf = append(buf, t.Datatype...)
		}
	}
	return buf
}

// binSection is one framed, CRC-verified section.
type binSection struct {
	typ     byte
	payload []byte
}

// RestoreBinary rebuilds a store from a binary snapshot. The dict and
// index sections decode concurrently (bounded by GOMAXPROCS — the same
// worker budget a fresh store's SetParallelism defaults to), so restore
// scales with cores instead of re-interning terms one by one.
//
// It returns ErrNotBinarySnapshot when data lacks the magic, and
// ErrBinarySnapshotCorrupt (wrapped with detail) for any framing, CRC
// or consistency failure.
func RestoreBinary(data []byte) (*Store, error) {
	if !IsBinarySnapshot(data) {
		return nil, ErrNotBinarySnapshot
	}
	sections, err := parseSections(data)
	if err != nil {
		return nil, err
	}
	if len(sections) == 0 || sections[0].typ != secHeader {
		return nil, corruptf("first section is not the header")
	}
	hdr, err := decodeHeader(sections[0].payload)
	if err != nil {
		return nil, err
	}

	var dictSec, modelSec, virtSec []byte
	var indexSecs [][]byte
	for _, sec := range sections[1:] {
		switch sec.typ {
		case secDict:
			if dictSec != nil {
				return nil, corruptf("duplicate dict section")
			}
			dictSec = sec.payload
		case secModels:
			if modelSec != nil {
				return nil, corruptf("duplicate model section")
			}
			modelSec = sec.payload
		case secVirtual:
			if virtSec != nil {
				return nil, corruptf("duplicate virtual-model section")
			}
			virtSec = sec.payload
		case secIndex:
			indexSecs = append(indexSecs, sec.payload)
		default:
			// Unknown section types are an error within version 1: the
			// version bump is the compatibility mechanism, not silent
			// skipping (a skipped section is silently lost data).
			return nil, corruptf("unknown section type %d", sec.typ)
		}
	}
	if dictSec == nil || modelSec == nil || virtSec == nil {
		return nil, corruptf("missing dict, model or virtual-model section")
	}
	if len(indexSecs) != int(hdr.indexes) || len(indexSecs) == 0 {
		return nil, corruptf("%d index sections, header declares %d", len(indexSecs), hdr.indexes)
	}

	// Models and virtuals are tiny; decode them inline. Dict and index
	// sections carry the bulk — fan those out.
	modelNames, err := decodeModels(modelSec, hdr.models)
	if err != nil {
		return nil, err
	}
	virtuals, err := decodeVirtuals(virtSec, hdr.virtuals, hdr.models)
	if err != nil {
		return nil, err
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		decErr  error
		dict    *Dict
		indexes = make([]*Index, len(indexSecs))
	)
	fail := func(err error) {
		mu.Lock()
		if decErr == nil {
			decErr = err
		}
		mu.Unlock()
	}
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, max(workers, 1))
	run := func(fn func()) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			fn()
		}()
	}
	run(func() {
		terms, err := decodeTerms(dictSec, hdr.terms)
		if err != nil {
			fail(err)
			return
		}
		dict = newDictFromTerms(terms)
	})
	for i := range indexSecs {
		i := i
		run(func() {
			ix, err := decodeIndex(indexSecs[i], hdr)
			if err != nil {
				fail(err)
				return
			}
			indexes[i] = ix
		})
	}
	wg.Wait()
	if decErr != nil {
		return nil, decErr
	}
	for i, ix := range indexes {
		for j := 0; j < i; j++ {
			if indexes[j].perm == ix.perm {
				return nil, corruptf("duplicate index section %s", ix.perm.String())
			}
		}
	}

	st := &Store{
		dict:       dict,
		modelIDs:   make(map[string]ModelID, len(modelNames)),
		modelNames: modelNames,
		virtual:    make(map[string][]ModelID, len(virtuals)),
		indexes:    indexes,
		deltaSet:   make(map[IDQuad]struct{}),
		dead:       make(map[IDQuad]struct{}),
		count:      int(hdr.quads),
	}
	for i, name := range modelNames {
		if _, dup := st.modelIDs[name]; dup {
			return nil, corruptf("duplicate model name %q", name)
		}
		st.modelIDs[name] = ModelID(i + 1)
	}
	for _, v := range virtuals {
		if _, clash := st.modelIDs[v.name]; clash {
			return nil, corruptf("virtual model %q collides with a model name", v.name)
		}
		if _, dup := st.virtual[v.name]; dup {
			return nil, corruptf("duplicate virtual model %q", v.name)
		}
		st.virtual[v.name] = v.ids
	}
	return st, nil
}

// RestoreAny restores either snapshot format, sniffing the magic: a
// binary snapshot is read fully and bulk-decoded, anything else
// streams through the text Restore path.
func RestoreAny(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	prefix, err := br.Peek(len(binMagic))
	if err == nil && IsBinarySnapshot(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		return RestoreBinary(data)
	}
	return Restore(br)
}

// parseSections walks the section frames, verifying each CRC and the
// trailer's section count and whole-file CRC. The returned sections
// exclude the trailer.
func parseSections(data []byte) ([]binSection, error) {
	var sections []binSection
	off := len(binMagic)
	for {
		if off == len(data) {
			return nil, corruptf("missing trailer (file truncated at a section boundary)")
		}
		if len(data)-off < 13 {
			return nil, corruptf("truncated section frame at offset %d", off)
		}
		typ := data[off]
		plen := binary.LittleEndian.Uint64(data[off+1 : off+9])
		if plen > uint64(len(data)-off-13) {
			return nil, corruptf("section %d at offset %d: payload of %d bytes exceeds file", typ, off, plen)
		}
		payload := data[off+9 : off+9+int(plen)]
		wantCRC := binary.LittleEndian.Uint32(data[off+9+int(plen):])
		crc := crc32.Update(0, crcTable, data[off:off+9+int(plen)])
		if crc != wantCRC {
			return nil, corruptf("section %d at offset %d: CRC mismatch", typ, off)
		}
		if typ == secTrailer {
			count, n := binary.Uvarint(payload)
			if n <= 0 || len(payload) != n+4 {
				return nil, corruptf("malformed trailer")
			}
			if int(count) != len(sections) {
				return nil, corruptf("trailer declares %d sections, file has %d", count, len(sections))
			}
			fileCRC := binary.LittleEndian.Uint32(payload[n:])
			if crc32.Checksum(data[:off], crcTable) != fileCRC {
				return nil, corruptf("whole-file CRC mismatch")
			}
			if off+13+int(plen) != len(data) {
				return nil, corruptf("%d trailing bytes after trailer", len(data)-off-13-int(plen))
			}
			return sections, nil
		}
		sections = append(sections, binSection{typ: typ, payload: payload})
		off += 13 + int(plen)
	}
}

type binHeader struct {
	quads, terms, models, virtuals, indexes uint64
}

func decodeHeader(p []byte) (binHeader, error) {
	var h binHeader
	fields := []*uint64{new(uint64), &h.quads, &h.terms, &h.models, &h.virtuals, &h.indexes}
	off := 0
	for _, f := range fields {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return h, corruptf("truncated header")
		}
		*f = v
		off += n
	}
	if off != len(p) {
		return h, corruptf("header has %d trailing bytes", len(p)-off)
	}
	if version := *fields[0]; version != binVersion {
		return h, corruptf("format version %d (this build reads version %d)", version, binVersion)
	}
	return h, nil
}

// decodeTerms rebuilds the dictionary's term table.
func decodeTerms(p []byte, count uint64) ([]rdf.Term, error) {
	if count > uint64(len(p)) { // every term costs >= 2 bytes
		return nil, corruptf("dict declares %d terms in %d bytes", count, len(p))
	}
	readStr := func(off int) (string, int, error) {
		l, n := binary.Uvarint(p[off:])
		if n <= 0 || l > uint64(len(p)-off-n) {
			return "", 0, corruptf("truncated dict string at offset %d", off)
		}
		return string(p[off+n : off+n+int(l)]), off + n + int(l), nil
	}
	terms := make([]rdf.Term, 0, count)
	off := 0
	for i := uint64(0); i < count; i++ {
		if off >= len(p) {
			return nil, corruptf("dict ends after %d of %d terms", i, count)
		}
		kind := p[off]
		off++
		value, next, err := readStr(off)
		if err != nil {
			return nil, err
		}
		off = next
		var t rdf.Term
		switch kind {
		case binTermIRI:
			t = rdf.Term{Kind: rdf.KindIRI, Value: value}
		case binTermBlank:
			t = rdf.Term{Kind: rdf.KindBlank, Value: value}
		case binTermLiteral:
			t = rdf.Term{Kind: rdf.KindLiteral, Value: value}
		case binTermTyped:
			dt, next, err := readStr(off)
			if err != nil {
				return nil, err
			}
			off = next
			t = rdf.Term{Kind: rdf.KindLiteral, Value: value, Datatype: dt}
		case binTermLang:
			lang, next, err := readStr(off)
			if err != nil {
				return nil, err
			}
			off = next
			t = rdf.Term{Kind: rdf.KindLiteral, Value: value, Lang: lang}
		default:
			return nil, corruptf("dict term %d has unknown kind %d", i+1, kind)
		}
		terms = append(terms, t)
	}
	if off != len(p) {
		return nil, corruptf("dict has %d trailing bytes", len(p)-off)
	}
	return terms, nil
}

func decodeModels(p []byte, count uint64) ([]string, error) {
	if count > uint64(len(p))+1 {
		return nil, corruptf("model table declares %d models in %d bytes", count, len(p))
	}
	names := make([]string, 0, count)
	off := 0
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(p[off:])
		if n <= 0 || l > uint64(len(p)-off-n) {
			return nil, corruptf("truncated model table at entry %d", i)
		}
		names = append(names, string(p[off+n:off+n+int(l)]))
		off += n + int(l)
	}
	if off != len(p) {
		return nil, corruptf("model table has %d trailing bytes", len(p)-off)
	}
	return names, nil
}

type binVirtual struct {
	name string
	ids  []ModelID
}

func decodeVirtuals(p []byte, count, models uint64) ([]binVirtual, error) {
	if count > uint64(len(p))+1 {
		return nil, corruptf("virtual table declares %d entries in %d bytes", count, len(p))
	}
	out := make([]binVirtual, 0, count)
	off := 0
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(p[off:])
		if n <= 0 || l > uint64(len(p)-off-n) {
			return nil, corruptf("truncated virtual table at entry %d", i)
		}
		name := string(p[off+n : off+n+int(l)])
		off += n + int(l)
		nm, n := binary.Uvarint(p[off:])
		if n <= 0 || nm == 0 || nm > models {
			return nil, corruptf("virtual model %q declares %d members of %d models", name, nm, models)
		}
		off += n
		ids := make([]ModelID, 0, nm)
		for j := uint64(0); j < nm; j++ {
			id, n := binary.Uvarint(p[off:])
			if n <= 0 || id == 0 || id > models {
				return nil, corruptf("virtual model %q member %d: model ID %d out of range", name, j, id)
			}
			off += n
			ids = append(ids, ModelID(id))
		}
		out = append(out, binVirtual{name: name, ids: ids})
	}
	if off != len(p) {
		return nil, corruptf("virtual table has %d trailing bytes", len(p)-off)
	}
	return out, nil
}

// decodeIndex decodes one index section: permutation spec, then the
// sorted row array. Every column value is range-checked against the
// dict and model tables and the sort order is verified, so a decoded
// index can never panic a later Term lookup or break binary search.
func decodeIndex(p []byte, hdr binHeader) (*Index, error) {
	if len(p) < int(numCols) {
		return nil, corruptf("index section shorter than its permutation spec")
	}
	perm, err := ParsePermutation(string(p[:numCols]))
	if err != nil {
		return nil, corruptf("index section: %v", err)
	}
	off := int(numCols)
	count, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return nil, corruptf("index %s: truncated row count", perm.String())
	}
	off += n
	if count != hdr.quads {
		return nil, corruptf("index %s declares %d rows, header declares %d quads", perm.String(), count, hdr.quads)
	}
	if count > uint64(len(p)-off)+1 {
		return nil, corruptf("index %s declares %d rows in %d bytes", perm.String(), count, len(p)-off)
	}
	ix := NewIndex(perm)
	rows := make([]IDQuad, count)
	for i := range rows {
		var q IDQuad
		for _, c := range perm {
			v, n := binary.Uvarint(p[off:])
			if n <= 0 {
				return nil, corruptf("index %s: truncated row %d", perm.String(), i)
			}
			off += n
			id := ID(v)
			switch c {
			case ColS, ColP, ColC:
				if id == NoID || uint64(id) > hdr.terms {
					return nil, corruptf("index %s row %d: term ID %d out of range", perm.String(), i, id)
				}
			case ColG:
				if uint64(id) > hdr.terms {
					return nil, corruptf("index %s row %d: graph ID %d out of range", perm.String(), i, id)
				}
			case ColM:
				if id == NoID || uint64(id) > hdr.models {
					return nil, corruptf("index %s row %d: model ID %d out of range", perm.String(), i, id)
				}
			}
			switch c {
			case ColS:
				q.S = id
			case ColP:
				q.P = id
			case ColC:
				q.C = id
			case ColG:
				q.G = id
			case ColM:
				q.M = id
			}
		}
		if i > 0 && !ix.less(rows[i-1], q) {
			return nil, corruptf("index %s rows %d..%d out of order", perm.String(), i-1, i)
		}
		rows[i] = q
	}
	if off != len(p) {
		return nil, corruptf("index %s has %d trailing bytes", perm.String(), len(p)-off)
	}
	ix.rows = rows
	return ix, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
