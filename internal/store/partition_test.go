package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rdf"
)

// partitionTestStore loads one model with a deterministic synthetic
// edge set large enough to split meaningfully.
func partitionTestStore(t testing.TB, n int) *Store {
	t.Helper()
	s := New()
	quads := make([]rdf.Quad, 0, n)
	for i := 0; i < n; i++ {
		quads = append(quads, rdf.Quad{
			S: iri(fmt.Sprintf("n%d", i%257)),
			P: iri(fmt.Sprintf("p%d", i%7)),
			O: iri(fmt.Sprintf("n%d", (i*31)%257)),
		})
	}
	if _, err := s.Load("m", quads); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSplitRangeProperties(t *testing.T) {
	cases := []struct{ lo, hi, n int }{
		{0, 100, 4}, {0, 100, 1}, {0, 3, 8}, {5, 6, 3}, {0, 0, 4}, {7, 7, 1},
	}
	for _, c := range cases {
		parts := splitRange(c.lo, c.hi, c.n)
		if c.lo == c.hi {
			if parts != nil {
				t.Errorf("splitRange(%d,%d,%d) = %v, want nil for empty interval", c.lo, c.hi, c.n, parts)
			}
			continue
		}
		// Parts must be contiguous, non-empty, and cover [lo, hi).
		at := c.lo
		for _, r := range parts {
			if r.Lo != at {
				t.Fatalf("splitRange(%d,%d,%d): gap or overlap at %d (got Lo=%d)", c.lo, c.hi, c.n, at, r.Lo)
			}
			if r.Len() <= 0 {
				t.Fatalf("splitRange(%d,%d,%d): empty part %+v", c.lo, c.hi, c.n, r)
			}
			at = r.Hi
		}
		if at != c.hi {
			t.Fatalf("splitRange(%d,%d,%d): covers up to %d, want %d", c.lo, c.hi, c.n, at, c.hi)
		}
		if len(parts) > c.n {
			t.Errorf("splitRange(%d,%d,%d): %d parts, want <= %d", c.lo, c.hi, c.n, len(parts), c.n)
		}
	}
}

// TestIndexPartitionsCoverScan verifies that scanning every partition
// range in order reproduces exactly the rows of one full Index.Scan.
func TestIndexPartitionsCoverScan(t *testing.T) {
	s := partitionTestStore(t, 3000)
	s.mu.RLock()
	ix := s.indexes[0]
	s.mu.RUnlock()

	p := AnyPattern()
	p.P = s.Dict().Lookup(iri("p3"))
	if p.P == NoID {
		t.Fatal("predicate p3 not interned")
	}
	var whole []IDQuad
	ix.Scan(p, func(q IDQuad) bool { whole = append(whole, q); return true })
	if len(whole) == 0 {
		t.Fatal("empty scan; fixture broken")
	}
	for _, n := range []int{1, 3, 8, len(whole) + 5} {
		var pieced []IDQuad
		for _, r := range ix.Partitions(p, n) {
			ix.ScanRange(r, p, func(q IDQuad) bool { pieced = append(pieced, q); return true })
		}
		if len(pieced) != len(whole) {
			t.Fatalf("n=%d: partitioned scan rows = %d, want %d", n, len(pieced), len(whole))
		}
		for i := range whole {
			if pieced[i] != whole[i] {
				t.Fatalf("n=%d: row %d = %+v, want %+v", n, i, pieced[i], whole[i])
			}
		}
	}
}

// TestCursorPartitions verifies the cursor splitter: children are
// disjoint, ordered, cover the parent snapshot, and hand the open-
// cursor gauge over from parent to children.
func TestCursorPartitions(t *testing.T) {
	s := partitionTestStore(t, 3000)
	p := AnyPattern()

	var whole []IDQuad
	ref := s.Cursor(p)
	for {
		q, ok := ref.Next()
		if !ok {
			break
		}
		whole = append(whole, q)
	}
	ref.Close()
	if g := s.OpenCursors(); g != 0 {
		t.Fatalf("open cursors after reference drain = %d", g)
	}

	cur := s.Cursor(p)
	parts := cur.Partitions(7)
	if g := s.OpenCursors(); g != int64(len(parts)) {
		t.Fatalf("open cursors after split = %d, want %d (one per child; parent closed)", g, len(parts))
	}
	var pieced []IDQuad
	for _, pc := range parts {
		for {
			q, ok := pc.Next()
			if !ok {
				break
			}
			pieced = append(pieced, q)
		}
		pc.Close()
	}
	if g := s.OpenCursors(); g != 0 {
		t.Fatalf("open cursors after closing children = %d", g)
	}
	if len(pieced) != len(whole) {
		t.Fatalf("partitioned rows = %d, want %d", len(pieced), len(whole))
	}
	for i := range whole {
		if pieced[i] != whole[i] {
			t.Fatalf("row %d = %+v, want %+v", i, pieced[i], whole[i])
		}
	}
}

// TestCursorPartitionsEmpty: an empty snapshot still yields one valid
// (empty) child so callers need no special case.
func TestCursorPartitionsEmpty(t *testing.T) {
	s := partitionTestStore(t, 10)
	p := AnyPattern()
	p.P = s.Dict().Intern(iri("no-such-predicate"))
	parts := s.Cursor(p).Partitions(4)
	if len(parts) != 1 {
		t.Fatalf("parts = %d, want 1", len(parts))
	}
	if _, ok := parts[0].Next(); ok {
		t.Fatal("empty partition yielded a row")
	}
	parts[0].Close()
	if g := s.OpenCursors(); g != 0 {
		t.Fatalf("open cursors = %d", g)
	}
}

// TestParallelLoadEquivalence: the same quads loaded with parallel
// index builds produce byte-identical scan output to a serial load.
func TestParallelLoadEquivalence(t *testing.T) {
	mk := func(par int) *Store {
		s := New()
		if err := s.CreateIndex("GSPCM"); err != nil {
			t.Fatal(err)
		}
		s.SetParallelism(par)
		quads := make([]rdf.Quad, 0, 40000)
		for i := 0; i < 40000; i++ {
			quads = append(quads, rdf.Quad{
				S: iri(fmt.Sprintf("n%d", i%1023)),
				P: iri(fmt.Sprintf("p%d", i%11)),
				O: iri(fmt.Sprintf("n%d", (i*17)%1023)),
				G: iri(fmt.Sprintf("g%d", i%3)),
			})
		}
		if _, err := s.Load("m", quads); err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial, parallel := mk(1), mk(8)
	if serial.Len() != parallel.Len() {
		t.Fatalf("len: serial %d, parallel %d", serial.Len(), parallel.Len())
	}
	for _, spec := range serial.Indexes() {
		var a, b []IDQuad
		if err := serial.ScanIndex(spec, AnyPattern(), func(q IDQuad) bool { a = append(a, q); return true }); err != nil {
			t.Fatal(err)
		}
		if err := parallel.ScanIndex(spec, AnyPattern(), func(q IDQuad) bool { b = append(b, q); return true }); err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("index %s: serial %d rows, parallel %d", spec, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("index %s row %d: serial %+v, parallel %+v", spec, i, a[i], b[i])
			}
		}
	}
}

// TestSortQuadsEquivalence checks the parallel merge sort against the
// stdlib sort on inputs above the parallel threshold.
func TestSortQuadsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := parallelSortMinRows + 5000
	rows := make([]IDQuad, n)
	for i := range rows {
		rows[i] = IDQuad{
			S: ID(rng.Intn(500)), P: ID(rng.Intn(20)),
			C: ID(rng.Intn(500)), G: ID(rng.Intn(5)), M: ModelID(rng.Intn(3)),
		}
	}
	less := func(a, b IDQuad) bool {
		if a.P != b.P {
			return a.P < b.P
		}
		if a.S != b.S {
			return a.S < b.S
		}
		if a.C != b.C {
			return a.C < b.C
		}
		if a.G != b.G {
			return a.G < b.G
		}
		return a.M < b.M
	}
	want := append([]IDQuad(nil), rows...)
	sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
	for _, workers := range []int{1, 2, 8} {
		got := append([]IDQuad(nil), rows...)
		sortQuads(got, less, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
