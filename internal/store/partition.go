package store

// Morsel partitioning: the scan-side half of the engine's morsel-driven
// parallelism (DESIGN.md §10). An index or cursor snapshot is a sorted
// quad slice, so a "morsel" is simply a contiguous row range; splitting
// the range yields disjoint morsels that together cover the scan and
// preserve global row order when processed (or merged back) in range
// order.

// RowRange is a half-open [Lo, Hi) row interval inside an index or a
// cursor snapshot — one morsel of a partitioned scan.
type RowRange struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r RowRange) Len() int { return r.Hi - r.Lo }

// splitRange cuts [lo, hi) into at most n near-equal contiguous ranges.
// It returns nil for an empty interval and never returns empty ranges.
func splitRange(lo, hi, n int) []RowRange {
	size := hi - lo
	if size <= 0 || n <= 0 {
		return nil
	}
	if n > size {
		n = size
	}
	out := make([]RowRange, 0, n)
	chunk, rem := size/n, size%n
	at := lo
	for i := 0; i < n; i++ {
		next := at + chunk
		if i < rem {
			next++
		}
		out = append(out, RowRange{Lo: at, Hi: next})
		at = next
	}
	return out
}

// Partitions splits the rows addressed by the pattern's bound key prefix
// into at most n disjoint contiguous morsels, in key order. Together the
// morsels cover exactly the rows a Scan with the same pattern would
// visit from the index (rows inside a morsel still need Matches
// filtering, exactly as Scan filters within its prefix range).
func (ix *Index) Partitions(p Pattern, n int) []RowRange {
	lo, hi := 0, len(ix.rows)
	if pl := ix.prefixLen(p); pl > 0 {
		lo, hi = ix.rangeOf(p, pl)
	}
	return splitRange(lo, hi, n)
}

// ScanRange calls fn for every quad in the morsel r that matches p, in
// key order, stopping early if fn returns false. It is the per-morsel
// counterpart of Scan: iterating the ranges of Partitions(p, n) in order
// visits exactly the rows Scan(p, fn) would.
func (ix *Index) ScanRange(r RowRange, p Pattern, fn func(IDQuad) bool) {
	hi := r.Hi
	if hi > len(ix.rows) {
		hi = len(ix.rows)
	}
	for i := r.Lo; i < hi; i++ {
		if p.Matches(ix.rows[i]) && !fn(ix.rows[i]) {
			return
		}
	}
}

// Partitions splits the cursor's remaining rows into at most n
// contiguous sub-cursors (morsels) covering them in order. Ownership of
// the snapshot transfers to the returned cursors: the receiver is
// closed, and every returned cursor must be closed independently (each
// counts in the store's open-cursor gauge, so a leaked morsel is as
// observable as a leaked cursor). A drained or empty cursor yields a
// single empty partition so callers need no special case.
func (c *Cursor) Partitions(n int) []*Cursor {
	st := c.st
	var rows []IDQuad
	if !c.closed {
		rows = c.rows[c.pos:]
	}
	c.Close()
	ranges := splitRange(0, len(rows), n)
	if len(ranges) == 0 {
		st.openCursors.Add(1)
		return []*Cursor{{st: st}}
	}
	out := make([]*Cursor, len(ranges))
	for i, r := range ranges {
		st.openCursors.Add(1)
		out[i] = &Cursor{st: st, rows: rows[r.Lo:r.Hi]}
	}
	return out
}
