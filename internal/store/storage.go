package store

// Storage accounting for Table 9 ("Physical storage characteristics").
//
// The model is deliberately simple but preserves the effects the paper
// reports: the quads table grows linearly with rows; the values table
// with distinct lexical bytes; and each index costs one entry per row
// whose key cells are PREFIX-COMPRESSED in key order — so an index whose
// leading columns repeat heavily (PCSGM: few distinct predicates) is
// smaller than one whose leading column is nearly unique per row (GPSCM
// on NG data: one named graph per edge).
const (
	// bytesPerTableRow approximates a stored quads-table row: five ID
	// columns plus row overhead.
	bytesPerTableRow = 38
	// bytesPerValueOverhead is the per-entry overhead of the values
	// table on top of the lexical bytes.
	bytesPerValueOverhead = 12
	// bytesPerKeyCell is the cost of one uncompressed index key cell.
	bytesPerKeyCell = 8
	// bytesPerIndexEntry is the per-entry rowid + slot overhead.
	bytesPerIndexEntry = 6
)

// ObjectSize reports the estimated size of one database object.
type ObjectSize struct {
	Name  string
	Bytes int64
}

// StorageReport mirrors Table 9: per-object estimated sizes plus the
// total.
type StorageReport struct {
	Objects []ObjectSize
	Total   int64
}

// MB returns the size of the named object in megabytes (0 when absent).
func (r StorageReport) MB(name string) float64 {
	for _, o := range r.Objects {
		if o.Name == name {
			return float64(o.Bytes) / (1 << 20)
		}
	}
	return 0
}

// TotalMB returns the total size in megabytes.
func (r StorageReport) TotalMB() float64 { return float64(r.Total) / (1 << 20) }

// Storage computes the estimated physical storage of the store: the
// quads (triples) table, the values table, and every index.
func (s *Store) Storage() StorageReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep StorageReport
	rows := int64(0)
	if len(s.indexes) > 0 {
		rows = int64(s.indexes[0].Len()) + int64(len(s.delta)) - int64(len(s.dead))
	}
	table := ObjectSize{Name: "Triples Table", Bytes: rows * bytesPerTableRow}
	values := ObjectSize{
		Name:  "Values Table",
		Bytes: s.dict.LexicalBytes() + int64(s.dict.Len())*bytesPerValueOverhead,
	}
	rep.Objects = append(rep.Objects, table, values)
	rep.Total = table.Bytes + values.Bytes
	for _, ix := range s.indexes {
		b := ix.keyCompressedCells()*bytesPerKeyCell + int64(ix.Len())*bytesPerIndexEntry
		o := ObjectSize{Name: ix.perm.String() + " Index", Bytes: b}
		rep.Objects = append(rep.Objects, o)
		rep.Total += b
	}
	return rep
}
