package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

func faultTestStore(t *testing.T, n int) *Store {
	t.Helper()
	st := New()
	quads := make([]rdf.Quad, 0, n)
	for i := 0; i < n; i++ {
		quads = append(quads, rdf.Quad{
			S: rdf.NewIRI(fmt.Sprintf("http://s%d", i)),
			P: rdf.NewIRI("http://p"),
			O: rdf.NewIRI(fmt.Sprintf("http://o%d", i%7)),
		})
	}
	if _, err := st.Load("m", quads); err != nil {
		t.Fatal(err)
	}
	return st
}

func countScan(st *Store) int {
	n := 0
	st.Scan(AnyPattern(), func(IDQuad) bool { n++; return true })
	return n
}

func TestFaultInjectorStallsScans(t *testing.T) {
	st := faultTestStore(t, 200)
	fi := NewFaultInjector()
	st.SetFaultInjector(fi)
	defer st.SetFaultInjector(nil)

	// 200 rows, stall every 10th by 1ms -> at least ~20ms.
	fi.StallScans(10, time.Millisecond)
	start := time.Now()
	if n := countScan(st); n != 200 {
		t.Fatalf("scan saw %d rows", n)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("injected latency not observed: scan took %v", elapsed)
	}
	if fi.Scanned() != 200 {
		t.Fatalf("Scanned() = %d", fi.Scanned())
	}

	// Reset disables the stall: the same scan is fast again.
	fi.Reset()
	start = time.Now()
	countScan(st)
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("scan still slow after Reset: %v", elapsed)
	}
}

func TestFaultInjectorForcedFailure(t *testing.T) {
	st := faultTestStore(t, 100)
	fi := NewFaultInjector()
	st.SetFaultInjector(fi)
	defer st.SetFaultInjector(nil)
	fi.FailScansAfter(10)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an injected panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("panic value %v does not match ErrInjectedFault", r)
		}
	}()
	countScan(st)
}

// TestFaultInjectorConcurrent flips faults while readers scan, verifying
// the atomics hold up under -race.
func TestFaultInjectorConcurrent(t *testing.T) {
	st := faultTestStore(t, 500)
	fi := NewFaultInjector()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					countScan(st)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		st.SetFaultInjector(fi)
		fi.StallScans(100, 10*time.Microsecond)
		fi.Reset()
		st.SetFaultInjector(nil)
	}
	close(stop)
	wg.Wait()
}
