package store

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdf"
)

// Snapshot serialization: the store's contents as sectioned N-Quads,
// with directive comments carrying the parts N-Quads cannot express —
// model boundaries, virtual model definitions and the index
// configuration:
//
//	# pgrdf-snapshot v1
//	# indexes PCSGM,PSCGM
//	# virtual all = topo,kv
//	# model topo
//	<s> <p> <o> <g> .
//	# model kv
//	...
//
// The format stays a valid N-Quads document (comments are ignored by
// plain N-Quads parsers), so snapshots double as ordinary exports.

const snapshotHeader = "# pgrdf-snapshot v1"

// Snapshot writes the whole store (all models, virtual model
// definitions and index configuration) to w.
func (s *Store) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, snapshotHeader); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "# indexes %s\n", strings.Join(s.Indexes(), ",")); err != nil {
		return err
	}

	s.mu.RLock()
	type vdef struct {
		name    string
		members []string
	}
	var vdefs []vdef
	for name, ids := range s.virtual {
		var members []string
		for _, id := range ids {
			members = append(members, s.modelNames[id-1])
		}
		vdefs = append(vdefs, vdef{name: name, members: members})
	}
	s.mu.RUnlock()
	// s.virtual is a map; sort so equal stores snapshot to equal bytes
	// (crash recovery is verified by byte-comparing snapshots).
	sort.Slice(vdefs, func(i, j int) bool { return vdefs[i].name < vdefs[j].name })
	for _, v := range vdefs {
		if _, err := fmt.Fprintf(bw, "# virtual %s = %s\n", v.name, strings.Join(v.members, ",")); err != nil {
			return err
		}
	}

	for _, model := range s.Models() {
		if _, err := fmt.Fprintf(bw, "# model %s\n", model); err != nil {
			return err
		}
		quads, err := s.Export(model)
		if err != nil {
			return err
		}
		nw := ntriples.NewWriter(bw)
		for _, q := range quads {
			if err := nw.Write(q); err != nil {
				return err
			}
		}
		if err := nw.Flush(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore rebuilds a store from a snapshot. Index configuration and
// virtual models are restored from the directives; a plain N-Quads file
// (no directives) restores into a single model named "data" with the
// default indexes.
func Restore(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var st *Store
	indexes := DefaultIndexes
	type vdef struct {
		name    string
		members []string
	}
	var virtuals []vdef
	model := "data"
	var pending []rdf.Quad
	line := 0

	flush := func() error {
		if st == nil {
			var err error
			st, err = NewWithIndexes(indexes)
			if err != nil {
				return err
			}
		}
		if len(pending) > 0 {
			if _, err := st.Load(model, pending); err != nil {
				return err
			}
			pending = pending[:0]
		}
		return nil
	}

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || text == snapshotHeader:
			continue
		case strings.HasPrefix(text, "# indexes "):
			if st != nil {
				return nil, fmt.Errorf("store: line %d: indexes directive after data", line)
			}
			indexes = strings.Split(strings.TrimPrefix(text, "# indexes "), ",")
		case strings.HasPrefix(text, "# virtual "):
			spec := strings.TrimPrefix(text, "# virtual ")
			name, members, ok := strings.Cut(spec, " = ")
			if !ok {
				return nil, fmt.Errorf("store: line %d: malformed virtual directive", line)
			}
			virtuals = append(virtuals, vdef{name: name, members: strings.Split(members, ",")})
		case strings.HasPrefix(text, "# model "):
			if err := flush(); err != nil {
				return nil, err
			}
			model = strings.TrimPrefix(text, "# model ")
			// Register even if the model ends up empty.
			st.Model(model)
		case strings.HasPrefix(text, "#"):
			continue // ordinary comment
		default:
			quads, err := ntriples.NewReader(strings.NewReader(text)).ReadAll()
			if err != nil {
				return nil, fmt.Errorf("store: line %d: %w", line, err)
			}
			if st == nil {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			pending = append(pending, quads...)
			if len(pending) >= 65536 {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for _, v := range virtuals {
		if err := st.CreateVirtualModel(v.name, v.members...); err != nil {
			return nil, err
		}
	}
	return st, nil
}
