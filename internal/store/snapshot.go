package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdf"
)

// Snapshot serialization: the store's contents as sectioned N-Quads,
// with directive comments carrying the parts N-Quads cannot express —
// model boundaries, virtual model definitions and the index
// configuration:
//
//	# pgrdf-snapshot v1
//	# indexes PCSGM,PSCGM
//	# virtual all = topo,kv
//	# model topo
//	<s> <p> <o> <g> .
//	# model kv
//	...
//
// The format stays a valid N-Quads document (comments are ignored by
// plain N-Quads parsers), so snapshots double as ordinary exports.
//
// Model and virtual-model names appearing in directives are
// percent-escaped (see escapeName): the directive grammar reserves
// ',', " = " and line structure, and an unescaped name containing
// those would silently mis-restore. Names without reserved bytes are
// written verbatim, so snapshots of ordinary stores are unchanged and
// old snapshots (which never escaped) parse identically.
//
// The text format is the interchange format (/export?format=snapshot,
// pgrdf snapshot). Durability checkpoints use the binary format in
// binsnap.go, which restores an order of magnitude faster; Restore
// here remains the decoder for text snapshots and plain N-Quads.

const snapshotHeader = "# pgrdf-snapshot v1"

// Snapshot writes the whole store (all models, virtual model
// definitions and index configuration) to w.
//
// The entire dump is taken under one read-lock acquisition, so the
// result is a point-in-time view: a snapshot can never contain half of
// a concurrent update, a virtual-model directive out of step with the
// model sections, or quads from different models at different times.
// Writers block until the dump completes (the streaming /export cursor
// is the surface for lock-free exports).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(w)
}

//pgrdf:locks mu
func (s *Store) snapshotLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, snapshotHeader); err != nil {
		return err
	}
	specs := make([]string, len(s.indexes))
	for i, ix := range s.indexes {
		specs[i] = ix.perm.String()
	}
	if _, err := fmt.Fprintf(bw, "# indexes %s\n", strings.Join(specs, ",")); err != nil {
		return err
	}

	// s.virtual is a map; sort so equal stores snapshot to equal bytes
	// (crash recovery is verified by byte-comparing snapshots).
	for _, v := range s.virtualDefsLocked() {
		escaped := make([]string, len(v.members))
		for i, m := range v.members {
			escaped[i] = escapeName(m)
		}
		if _, err := fmt.Fprintf(bw, "# virtual %s = %s\n", escapeName(v.name), strings.Join(escaped, ",")); err != nil {
			return err
		}
	}

	for i, model := range s.modelNames {
		if _, err := fmt.Fprintf(bw, "# model %s\n", escapeName(model)); err != nil {
			return err
		}
		nw := ntriples.NewWriter(bw)
		for _, q := range s.exportLocked(ModelID(i + 1)) {
			if err := nw.Write(q); err != nil {
				return err
			}
		}
		if err := nw.Flush(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// vdef is one virtual-model definition with member names resolved.
type vdef struct {
	name    string
	members []string
}

// virtualDefsLocked resolves the virtual-model table to names, sorted
// by virtual-model name for deterministic serialization.
//
//pgrdf:locks mu
func (s *Store) virtualDefsLocked() []vdef {
	vdefs := make([]vdef, 0, len(s.virtual))
	for name, ids := range s.virtual {
		members := make([]string, len(ids))
		for i, id := range ids {
			members[i] = s.modelNames[id-1]
		}
		vdefs = append(vdefs, vdef{name: name, members: members})
	}
	sort.Slice(vdefs, func(i, j int) bool { return vdefs[i].name < vdefs[j].name })
	return vdefs
}

// exportLocked materializes one model's quads in the deterministic
// lexical order Export promises.
//
//pgrdf:locks mu
func (s *Store) exportLocked(m ModelID) []rdf.Quad {
	p := AnyPattern()
	p.M = m
	var quads []rdf.Quad
	s.scanLocked(p, func(q IDQuad) bool {
		quads = append(quads, s.quadTerms(q))
		return true
	})
	sort.Slice(quads, func(i, j int) bool { return rdf.CompareQuads(quads[i], quads[j]) < 0 })
	return quads
}

// escapeName percent-escapes a model or virtual-model name for use in
// a snapshot directive. The directive grammar reserves ',' (member
// separator), '=' (the " = " definition separator), '#' (comment
// lead-in), '%' (the escape itself) and all whitespace/control bytes
// (line structure, and Restore trims surrounding space). Every other
// byte — including multi-byte UTF-8 — passes through, so ordinary
// names are unchanged.
func escapeName(s string) string {
	if !nameNeedsEscape(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if nameByteReserved(c) {
			b.WriteByte('%')
			b.WriteByte(hexUpper[c>>4])
			b.WriteByte(hexUpper[c&0xF])
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

const hexUpper = "0123456789ABCDEF"

func nameNeedsEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		if nameByteReserved(s[i]) {
			return true
		}
	}
	return false
}

// nameByteReserved reports whether a byte must be escaped in directive
// names. 0x7F..0xFF are escaped too: Restore trims any unicode
// whitespace around names, so a name beginning with U+00A0 would
// otherwise round-trip wrong, and escaping all high bytes keeps the
// rule byte-local (no UTF-8 decoding of possibly invalid names).
func nameByteReserved(c byte) bool {
	return c <= 0x20 || c >= 0x7F || c == '%' || c == ',' || c == '=' || c == '#'
}

// unescapeName reverses escapeName. Decoding is lenient: a '%' not
// followed by two hex digits is kept literally, so names from old
// snapshots (written unescaped) round-trip even when they contain '%'.
func unescapeName(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, okHi := unhex(s[i+1])
			lo, okLo := unhex(s[i+2])
			if okHi && okLo {
				b.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Restore rebuilds a store from a snapshot. Index configuration and
// virtual models are restored from the directives; a plain N-Quads file
// (no directives) restores into a single model named "data" with the
// default indexes.
//
// Lines are streamed through a bufio.Reader rather than a Scanner, so
// a single long line — one multi-megabyte literal is enough — cannot
// fail the restore with a buffer-cap error the way Snapshot's
// unbounded writer side could produce it.
func Restore(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 64*1024)

	var st *Store
	indexes := DefaultIndexes
	var virtuals []vdef
	model := "data"
	var pending []rdf.Quad
	line := 0

	flush := func() error {
		if st == nil {
			var err error
			st, err = NewWithIndexes(indexes)
			if err != nil {
				return err
			}
		}
		if len(pending) > 0 {
			if _, err := st.Load(model, pending); err != nil {
				return err
			}
			pending = pending[:0]
		}
		return nil
	}

	for {
		raw, rerr := br.ReadString('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return nil, rerr
		}
		atEOF := errors.Is(rerr, io.EOF)
		if raw == "" && atEOF {
			break
		}
		line++
		text := strings.TrimSpace(raw)
		switch {
		case text == "" || text == snapshotHeader:
			// skip
		case strings.HasPrefix(text, "# indexes "):
			if st != nil {
				return nil, fmt.Errorf("store: line %d: indexes directive after data", line)
			}
			indexes = strings.Split(strings.TrimPrefix(text, "# indexes "), ",")
		case strings.HasPrefix(text, "# virtual "):
			spec := strings.TrimPrefix(text, "# virtual ")
			name, members, ok := strings.Cut(spec, " = ")
			if !ok {
				return nil, fmt.Errorf("store: line %d: malformed virtual directive", line)
			}
			v := vdef{name: unescapeName(name)}
			for _, m := range strings.Split(members, ",") {
				v.members = append(v.members, unescapeName(m))
			}
			virtuals = append(virtuals, v)
		case strings.HasPrefix(text, "# model ") || text == "# model":
			if err := flush(); err != nil {
				return nil, err
			}
			model = unescapeName(strings.TrimPrefix(text, "# model "))
			if text == "# model" {
				model = "" // empty name: the trailing space was trimmed away
			}
			// Register even if the model ends up empty.
			st.Model(model)
		case strings.HasPrefix(text, "#"):
			// ordinary comment
		default:
			quads, err := ntriples.NewReader(strings.NewReader(text)).ReadAll()
			if err != nil {
				return nil, fmt.Errorf("store: line %d: %w", line, err)
			}
			if st == nil {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			pending = append(pending, quads...)
			if len(pending) >= 65536 {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if atEOF {
			break
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for _, v := range virtuals {
		if err := st.CreateVirtualModel(v.name, v.members...); err != nil {
			return nil, err
		}
	}
	return st, nil
}
