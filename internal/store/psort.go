package store

import (
	"sort"
	"sync"
)

// parallelSortMinRows is the slice size below which the parallel sort
// falls back to a plain sort.Slice: goroutine and merge overhead beats
// the win on small batches.
const parallelSortMinRows = 1 << 14

// sortQuads sorts rows by less using up to workers goroutines: the
// slice is cut into contiguous chunks, each chunk sorted concurrently,
// then chunks are merged pairwise (also concurrently) until one sorted
// run remains. Ties never reorder observably: an index never holds two
// equal rows (the store deduplicates on load/insert), so less induces a
// total order and the result is byte-identical to the serial sort.
func sortQuads(rows []IDQuad, less func(a, b IDQuad) bool, workers int) {
	if workers <= 1 || len(rows) < parallelSortMinRows {
		sort.Slice(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
		return
	}
	runs := splitRange(0, len(rows), workers)
	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := rows[lo:hi]
			sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		}(r.Lo, r.Hi)
	}
	wg.Wait()

	// Pairwise merge, ping-ponging between rows and a scratch buffer.
	src, dst := rows, make([]IDQuad, len(rows))
	for len(runs) > 1 {
		next := make([]RowRange, 0, (len(runs)+1)/2)
		var mg sync.WaitGroup
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				r := runs[i]
				copy(dst[r.Lo:r.Hi], src[r.Lo:r.Hi])
				next = append(next, r)
				continue
			}
			a, b := runs[i], runs[i+1]
			mg.Add(1)
			go func(a, b RowRange) {
				defer mg.Done()
				mergeRuns(dst[a.Lo:b.Hi], src[a.Lo:a.Hi], src[b.Lo:b.Hi], less)
			}(a, b)
			next = append(next, RowRange{Lo: a.Lo, Hi: b.Hi})
		}
		mg.Wait()
		src, dst = dst, src
		runs = next
	}
	if len(rows) > 0 && &src[0] != &rows[0] {
		copy(rows, src)
	}
}

// mergeRuns merges the sorted runs a and b into out (len(out) must be
// len(a)+len(b)), taking from a on ties.
func mergeRuns(out, a, b []IDQuad, less func(x, y IDQuad) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}
