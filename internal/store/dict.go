// Package store implements an in-memory RDF quad store patterned after
// Oracle Database's RDF Semantic Graph storage (§3 of the paper):
//
//   - a values table (dictionary) mapping lexical RDF terms to numeric IDs,
//   - an ID-based quads table with columns S (subject), P (predicate),
//     C (canonical object), G (named graph) and M (semantic model),
//   - semantic-network indexes over any permutation of those columns
//     (PCSGM, PSCGM, GSPCM, GPCSM, SPCGM, SCPGM, ...), served by
//     binary-search range scans,
//   - semantic models acting as partitions (the M column) and virtual
//     models defined as unions of models.
//
// Queries are answered from the indexes alone; the "table" is only
// scanned for full-scan plans, mirroring the paper's observation that
// "SPARQL query processing in Oracle typically involves accessing only
// the indexes".
package store

import (
	"sync"

	"repro/internal/rdf"
)

// ID is a numeric identifier assigned by the dictionary. 0 is reserved:
// in the G column it denotes the default graph, and as a lookup result it
// means "not present".
type ID uint64

// NoID is the zero ID: absent term / default graph.
const NoID ID = 0

// Any is the wildcard ID used in scan patterns.
const Any ID = ^ID(0)

// Dict is the values table: a bijection between RDF terms and dense
// numeric IDs starting at 1. It is safe for concurrent use.
type Dict struct {
	mu sync.RWMutex
	//pgrdf:guardedby mu
	byKey map[string]ID
	//pgrdf:guardedby mu
	terms []rdf.Term
	// total lexical bytes, for storage accounting
	//pgrdf:guardedby mu
	lexLen int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byKey: make(map[string]ID)}
}

// Intern returns the ID for t, assigning a fresh one on first sight.
func (d *Dict) Intern(t rdf.Term) ID {
	key := t.String()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.byKey[key] = id
	d.lexLen += int64(len(key))
	return id
}

// Lookup returns the ID for t, or NoID if the term has never been seen.
func (d *Dict) Lookup(t rdf.Term) ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.byKey[t.String()]
}

// Term returns the term for a valid ID. It panics on NoID or an ID never
// issued, which always indicates a bug in the caller.
func (d *Dict) Term(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoID || int(id) > len(d.terms) {
		panic("store: Term called with invalid ID")
	}
	return d.terms[id-1]
}

// snapshotTerms returns a stable view of all interned terms in ID
// order (index i holds the term for ID i+1). The returned slice is a
// capped view of the append-only terms table: existing entries are
// never mutated, so the view stays valid after the lock is released.
func (d *Dict) snapshotTerms() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[:len(d.terms):len(d.terms)]
}

// newDictFromTerms rebuilds a dictionary whose ID assignment is
// exactly terms[i] -> ID(i+1) — the bulk path binary-snapshot restore
// uses instead of re-interning term by term.
func newDictFromTerms(terms []rdf.Term) *Dict {
	d := &Dict{byKey: make(map[string]ID, len(terms)), terms: terms}
	for i, t := range terms {
		key := t.String()
		d.byKey[key] = ID(i + 1)
		d.lexLen += int64(len(key))
	}
	return d
}

// Len returns the number of distinct terms interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// LexicalBytes returns the total lexical length of all interned terms,
// the dominant component of the values-table size in Table 9.
func (d *Dict) LexicalBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lexLen
}
