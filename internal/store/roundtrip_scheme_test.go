package store_test

// Snapshot/Restore round-trip property test (ISSUE 5 satellite): for
// every index configuration and every RF/NG/SP scheme dataset,
// Snapshot(Restore(Snapshot(st))) must equal Snapshot(st) byte for
// byte. Crash recovery (internal/wal) verifies durability by comparing
// snapshot bytes, so this determinism property is load-bearing.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/twitter"
)

// indexConfigs spans single-index, the Oracle default pair, the
// NG-scheme config with a graph-leading index, and a full fan of
// permutation prefixes.
var indexConfigs = [][]string{
	{"PCSGM"},
	{"PCSGM", "PSCGM"},
	{"PCSGM", "PSCGM", "GSPCM"},
	{"SPCGM", "GSPCM"},
	{"PCSGM", "PSCGM", "SPCGM", "GSPCM", "CPSGM"},
}

// trickyQuads stresses the N-Quads escaping path of the snapshot
// format: quotes, newlines, unicode, language tags, typed literals and
// blank nodes.
func trickyQuads() []rdf.Quad {
	s := rdf.NewIRI("http://pg/v1")
	return []rdf.Quad{
		{S: s, P: rdf.NewIRI("http://pg/k/bio"), O: rdf.NewLiteral("line1\nline2\t\"quoted\" \\slash")},
		{S: s, P: rdf.NewIRI("http://pg/k/name"), O: rdf.NewLangLiteral("Amélie", "fr")},
		{S: s, P: rdf.NewIRI("http://pg/k/age"), O: rdf.NewInt(23)},
		{S: s, P: rdf.NewIRI("http://pg/k/score"), O: rdf.NewDouble(1.5e-8)},
		{S: s, P: rdf.NewIRI("http://pg/k/active"), O: rdf.NewBoolean(true)},
		{S: rdf.NewBlank("b0"), P: rdf.NewIRI("http://pg/k/note"), O: rdf.NewLiteral("from a blank"), G: rdf.NewIRI("http://pg/e99")},
	}
}

func snapshotOf(t *testing.T, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTripSchemesAndIndexes(t *testing.T) {
	g := twitter.Generate(twitter.PaperConfig().Scale(0.002))
	for _, scheme := range pgrdf.Schemes {
		conv := pgrdf.NewConverter(scheme)
		ds := conv.Convert(g)
		for _, idx := range indexConfigs {
			t.Run(fmt.Sprintf("%s/%v", scheme, idx), func(t *testing.T) {
				st, err := store.NewWithIndexes(idx)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := pgrdf.LoadPartitioned(st, ds, "pg"); err != nil {
					t.Fatal(err)
				}
				if _, err := st.Load("tricky", trickyQuads()); err != nil {
					t.Fatal(err)
				}
				st.Model("empty") // empty models must survive the trip too

				first := snapshotOf(t, st)
				r, err := store.Restore(bytes.NewReader(first))
				if err != nil {
					t.Fatal(err)
				}
				second := snapshotOf(t, r)
				if !bytes.Equal(first, second) {
					t.Fatalf("snapshot not a fixed point under Restore (%d vs %d bytes)", len(first), len(second))
				}
				if !reflect.DeepEqual(r.Indexes(), st.Indexes()) {
					t.Fatalf("indexes: %v vs %v", r.Indexes(), st.Indexes())
				}
				if r.Len() != st.Len() {
					t.Fatalf("restored %d of %d quads", r.Len(), st.Len())
				}
				for _, vm := range []string{"pg", "pg_topo_nodekv", "pg_topo_edgekv"} {
					want, err1 := st.ResolveDataset(vm)
					got, err2 := r.ResolveDataset(vm)
					if err1 != nil || err2 != nil || len(want) != len(got) {
						t.Fatalf("virtual model %s: %v/%v, %v/%v", vm, want, got, err1, err2)
					}
				}
			})
		}
	}
}
