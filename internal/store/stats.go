package store

import "sort"

// DatasetStats summarizes a set of models the way Table 8 of the paper
// does: distinct subjects, predicates, objects and named graphs, plus the
// quad count.
type DatasetStats struct {
	Quads       int
	Subjects    int
	Predicates  int
	Objects     int
	NamedGraphs int
}

// Stats computes DatasetStats over the union of the given models (all
// models when none are given).
func (s *Store) Stats(models ...string) (DatasetStats, error) {
	var ids []ModelID
	if len(models) == 0 {
		var err error
		ids, err = s.ResolveDataset("")
		if err != nil {
			return DatasetStats{}, err
		}
	} else {
		for _, m := range models {
			sub, err := s.ResolveDataset(m)
			if err != nil {
				return DatasetStats{}, err
			}
			ids = append(ids, sub...)
		}
	}
	subs := make(map[ID]struct{})
	preds := make(map[ID]struct{})
	objs := make(map[ID]struct{})
	graphs := make(map[ID]struct{})
	var st DatasetStats
	for _, m := range ids {
		p := AnyPattern()
		p.M = m
		s.Scan(p, func(q IDQuad) bool {
			st.Quads++
			subs[q.S] = struct{}{}
			preds[q.P] = struct{}{}
			objs[q.C] = struct{}{}
			if q.G != NoID {
				graphs[q.G] = struct{}{}
			}
			return true
		})
	}
	st.Subjects = len(subs)
	st.Predicates = len(preds)
	st.Objects = len(objs)
	st.NamedGraphs = len(graphs)
	return st, nil
}

// IndexStats reports per-index scan counters, keyed by index spec.
type IndexStats struct {
	Spec       string
	Rows       int
	RangeScans int64
	FullScans  int64
}

// IndexStatsSnapshot returns the current per-index counters.
func (s *Store) IndexStatsSnapshot() []IndexStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]IndexStats, 0, len(s.indexes))
	for _, ix := range s.indexes {
		out = append(out, IndexStats{
			Spec:       ix.perm.String(),
			Rows:       ix.Len(),
			RangeScans: ix.rangeScans.Load(),
			FullScans:  ix.fullScans.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec < out[j].Spec })
	return out
}

// ResetIndexStats zeroes the per-index scan counters.
func (s *Store) ResetIndexStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ix := range s.indexes {
		ix.rangeScans.Store(0)
		ix.fullScans.Store(0)
	}
}
