package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

// collectScan drains a row scan into a slice.
func collectScan(s *Store, p Pattern) []IDQuad {
	var out []IDQuad
	s.Scan(p, func(q IDQuad) bool {
		out = append(out, q)
		return true
	})
	return out
}

// collectScanBatch drains a batched scan, copying each run (the runs
// are only valid during the callback).
func collectScanBatch(s *Store, p Pattern, max int) []IDQuad {
	var out []IDQuad
	s.ScanBatch(p, max, func(run []IDQuad) bool {
		out = append(out, run...)
		return true
	})
	return out
}

func quadsEqual(t *testing.T, label string, got, want []IDQuad) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestScanBatchMatchesScan drives a randomized mutation workload
// (inserts, deletes, bulk loads, compactions — so the store passes
// through delta-only, tombstoned and compacted states) and checks after
// every burst that ScanBatch visits exactly the rows Scan visits, in
// the same order, for random patterns and batch sizes.
func TestScanBatchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	randQuad := func() rdf.Quad {
		g := ""
		if rng.Intn(2) == 0 {
			g = fmt.Sprintf("g%d", rng.Intn(3))
		}
		return quad(
			fmt.Sprintf("s%d", rng.Intn(10)),
			fmt.Sprintf("p%d", rng.Intn(4)),
			fmt.Sprintf("o%d", rng.Intn(10)),
			g)
	}
	for step := 0; step < 300; step++ {
		switch rng.Intn(10) {
		case 0:
			batch := make([]rdf.Quad, rng.Intn(30))
			for i := range batch {
				batch[i] = randQuad()
			}
			if _, err := s.Load("m", batch); err != nil {
				t.Fatal(err)
			}
		case 1, 2:
			if _, err := s.Delete("m", randQuad()); err != nil {
				t.Fatal(err)
			}
		case 3:
			s.Compact()
		default:
			if _, err := s.Insert("m", randQuad()); err != nil {
				t.Fatal(err)
			}
		}
		if step%15 != 14 {
			continue
		}
		pat := AnyPattern()
		if rng.Intn(2) == 0 {
			pat.P = s.Dict().Lookup(iri(fmt.Sprintf("p%d", rng.Intn(4))))
		}
		if rng.Intn(3) == 0 {
			pat.S = s.Dict().Lookup(iri(fmt.Sprintf("s%d", rng.Intn(10))))
		}
		want := collectScan(s, pat)
		for _, max := range []int{1, 3, 64, DefaultBatchRows} {
			got := collectScanBatch(s, pat, max)
			quadsEqual(t, fmt.Sprintf("step %d max %d", step, max), got, want)
		}
		// max <= 0 falls back to the default batch size.
		quadsEqual(t, fmt.Sprintf("step %d default", step), collectScanBatch(s, pat, 0), want)
	}
}

// TestScanBatchEarlyStop checks that returning false from the batch
// callback stops the scan without visiting the delta tail.
func TestScanBatchEarlyStop(t *testing.T) {
	s := partitionTestStore(t, 500)
	// Leave rows in the delta buffer.
	if _, err := s.Insert("m", quad("zzz", "zzp", "zzo", "")); err != nil {
		t.Fatal(err)
	}
	calls, rows := 0, 0
	s.ScanBatch(AnyPattern(), 64, func(run []IDQuad) bool {
		calls++
		rows += len(run)
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2", calls)
	}
	if rows != 128 {
		t.Fatalf("saw %d rows before stop, want 128", rows)
	}
}

// TestScanRangeBatchCoversPartitions checks that walking the morsels of
// Index.Partitions with ScanRangeBatch reproduces the index's row scan
// exactly, tombstones skipped, for every batch size.
func TestScanRangeBatchCoversPartitions(t *testing.T) {
	s := partitionTestStore(t, 2000)
	// Tombstone some base rows by deleting post-compaction.
	s.Compact()
	for i := 0; i < 40; i++ {
		if _, err := s.Delete("m", rdf.Quad{
			S: iri(fmt.Sprintf("n%d", i%257)),
			P: iri(fmt.Sprintf("p%d", i%7)),
			O: iri(fmt.Sprintf("n%d", (i*31)%257)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	p := AnyPattern()
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := s.chooseIndexLocked(p)
	var want []IDQuad
	ix.Scan(p, func(q IDQuad) bool {
		if _, gone := s.dead[q]; !gone {
			want = append(want, q)
		}
		return true
	})
	for _, nparts := range []int{1, 3, 8} {
		for _, max := range []int{1, 7, 256} {
			var got []IDQuad
			for _, r := range ix.Partitions(p, nparts) {
				if !ix.ScanRangeBatch(r, p, s.dead, max, func(run []IDQuad) bool {
					if len(run) == 0 || len(run) > max {
						t.Fatalf("run of %d rows with max %d", len(run), max)
					}
					got = append(got, run...)
					return true
				}) {
					t.Fatal("unexpected early stop")
				}
			}
			quadsEqual(t, fmt.Sprintf("parts %d max %d", nparts, max), got, want)
		}
	}
}

// TestCursorNextBatch checks NextBatch against Next on a twin cursor:
// same rows, same order, for several batch sizes, and nil at
// exhaustion and after Close.
func TestCursorNextBatch(t *testing.T) {
	s := partitionTestStore(t, 1100)
	for _, max := range []int{1, 13, 512, DefaultBatchRows} {
		ref := s.Cursor(AnyPattern())
		cur := s.Cursor(AnyPattern())
		var want, got []IDQuad
		for {
			q, ok := ref.Next()
			if !ok {
				break
			}
			want = append(want, q)
		}
		for {
			run := cur.NextBatch(max)
			if run == nil {
				break
			}
			if len(run) > max {
				t.Fatalf("run of %d rows with max %d", len(run), max)
			}
			got = append(got, run...)
		}
		quadsEqual(t, fmt.Sprintf("max %d", max), got, want)
		if run := cur.NextBatch(max); run != nil {
			t.Fatalf("NextBatch after exhaustion = %d rows, want nil", len(run))
		}
		ref.Close()
		cur.Close()
		if run := cur.NextBatch(max); run != nil {
			t.Fatalf("NextBatch after Close = %d rows, want nil", len(run))
		}
	}
	if n := s.OpenCursors(); n != 0 {
		t.Fatalf("open cursors = %d, want 0", n)
	}
}

// TestScanBatchUnderFaultInjector checks that the batched scan
// degrades to the per-row path when an injector is installed: the
// injector observes every row, and the visited rows stay identical.
func TestScanBatchUnderFaultInjector(t *testing.T) {
	s := faultTestStore(t, 300)
	want := collectScan(s, AnyPattern())
	fi := NewFaultInjector()
	s.SetFaultInjector(fi)
	defer s.SetFaultInjector(nil)
	got := collectScanBatch(s, AnyPattern(), 64)
	quadsEqual(t, "fault path", got, want)
	if fi.Scanned() != int64(len(want)) {
		t.Fatalf("injector observed %d rows, want %d", fi.Scanned(), len(want))
	}
	// Early stop through the fault bridge.
	calls := 0
	s.ScanBatch(AnyPattern(), 64, func(run []IDQuad) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("callback ran %d times after stop, want 1", calls)
	}
}
