package store

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjectedFault is the base error carried by panics raised by a
// FaultInjector's forced scan failures; errors.Is matches it through
// the engine's panic recovery.
var ErrInjectedFault = errors.New("store: injected scan fault")

// InjectedFault is the panic value raised by a forced scan failure.
type InjectedFault struct{ Row int64 }

func (f InjectedFault) Error() string {
	return fmt.Sprintf("store: injected scan fault at row %d", f.Row)
}

func (f InjectedFault) Unwrap() error { return ErrInjectedFault }

// FaultInjector deterministically perturbs store reads so degradation
// behavior (slow disks, failing storage) is testable without real
// faults. It supports per-row scan latency and a forced failure after a
// fixed number of rows. All configuration is atomic, so tests can flip
// faults while queries are running; a store without an injector pays a
// single atomic pointer load per scan. No build tags: the hooks are
// always compiled in and nil-checked on the hot path.
type FaultInjector struct {
	scanned    atomic.Int64 // rows observed since creation/Reset
	delayEvery atomic.Int64 // stall every Nth row; 0 = off
	delayNs    atomic.Int64 // stall duration in nanoseconds
	failAfter  atomic.Int64 // panic once scanned exceeds this; <0 = off
}

// NewFaultInjector returns an injector with every fault disabled.
func NewFaultInjector() *FaultInjector {
	f := &FaultInjector{}
	f.failAfter.Store(-1)
	return f
}

// StallScans injects d of latency every Nth scanned row (every <= 0
// disables). The stall happens while the scan holds the store's read
// lock, modeling a slow storage layer that also delays writers.
func (f *FaultInjector) StallScans(every int, d time.Duration) {
	f.delayNs.Store(int64(d))
	f.delayEvery.Store(int64(every))
}

// FailScansAfter makes the injector panic with an InjectedFault once
// more than n further rows have been scanned (n < 0 disables). The
// SPARQL engine's panic recovery converts the fault into a QueryError
// with kind ErrInternal.
func (f *FaultInjector) FailScansAfter(n int) {
	if n >= 0 {
		n += int(f.scanned.Load())
	}
	f.failAfter.Store(int64(n))
}

// Reset disables all faults and zeroes the row counter.
func (f *FaultInjector) Reset() {
	f.delayEvery.Store(0)
	f.delayNs.Store(0)
	f.failAfter.Store(-1)
	f.scanned.Store(0)
}

// Scanned reports how many rows the injector has observed.
func (f *FaultInjector) Scanned() int64 { return f.scanned.Load() }

// observeRow is the per-row hook called from the store's scan loop.
func (f *FaultInjector) observeRow() {
	n := f.scanned.Add(1)
	if fa := f.failAfter.Load(); fa >= 0 && n > fa {
		panic(InjectedFault{Row: n})
	}
	if every := f.delayEvery.Load(); every > 0 && n%every == 0 {
		if d := f.delayNs.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
	}
}

// SetFaultInjector installs (or, with nil, removes) the store's fault
// injector. Safe to call concurrently with readers.
func (s *Store) SetFaultInjector(f *FaultInjector) { s.fault.Store(f) }

// faultWrap wraps a scan callback with the injector's per-row hook when
// one is installed.
func (s *Store) faultWrap(fn func(IDQuad) bool) func(IDQuad) bool {
	f := s.fault.Load()
	if f == nil {
		return fn
	}
	return func(q IDQuad) bool {
		f.observeRow()
		return fn(q)
	}
}
