package store

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
)

// ModelID identifies a semantic model (a partition of the quads table).
type ModelID = ID

// compactThreshold is the delta-buffer size that triggers automatic
// compaction into the sorted indexes.
const compactThreshold = 8192

// Store is the quad store. A Store holds any number of semantic models
// (partitions); every quad belongs to exactly one model. Virtual models
// name unions of models and are resolved at query time.
//
// All methods are safe for concurrent use.
type Store struct {
	mu sync.RWMutex

	// dict is set once at construction and internally synchronized; it
	// is deliberately NOT guarded by mu (read paths resolve terms
	// without the store lock).
	dict *Dict

	//pgrdf:guardedby mu
	modelIDs map[string]ModelID
	//pgrdf:guardedby mu
	modelNames []string

	//pgrdf:guardedby mu
	virtual map[string][]ModelID

	// all indexes hold the same row set
	//pgrdf:guardedby mu
	indexes []*Index

	// inserted but not yet merged
	//pgrdf:guardedby mu
	delta []IDQuad
	// membership for delta
	//pgrdf:guardedby mu
	deltaSet map[IDQuad]struct{}
	// tombstones for base rows
	//pgrdf:guardedby mu
	dead map[IDQuad]struct{}
	// live quads = base + delta - dead
	//pgrdf:guardedby mu
	count int

	// par is the worker budget for bulk operations (Load, Compact,
	// CreateIndex): all configured indexes are built concurrently and
	// large batch sorts are chunked across goroutines. 0 = GOMAXPROCS,
	// 1 = fully serial. See SetParallelism.
	par atomic.Int32

	// fault optionally perturbs scans for degradation testing; nil in
	// production. See FaultInjector.
	fault atomic.Pointer[FaultInjector]

	// openCursors counts Cursors created but not yet closed (leak gauge).
	openCursors atomic.Int64

	// version counts successful content mutations (Insert, Delete,
	// Load); derived caches key their validity to it. See Version.
	version atomic.Uint64
}

// DefaultIndexes are the two indexes Oracle creates on every semantic
// model by default (§3.2).
var DefaultIndexes = []string{"PCSGM", "PSCGM"}

// New creates a store with the default PCSGM and PSCGM indexes.
func New() *Store {
	s, err := NewWithIndexes(DefaultIndexes)
	if err != nil {
		panic(err) // DefaultIndexes are statically valid
	}
	return s
}

// NewWithIndexes creates a store with the given semantic-network indexes.
// At least one index is required, since all reads go through indexes.
func NewWithIndexes(specs []string) (*Store, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("store: at least one index is required")
	}
	s := &Store{
		dict:     NewDict(),
		modelIDs: make(map[string]ModelID),
		virtual:  make(map[string][]ModelID),
		deltaSet: make(map[IDQuad]struct{}),
		dead:     make(map[IDQuad]struct{}),
	}
	for _, spec := range specs {
		if err := s.createIndexLocked(spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dict exposes the values table.
func (s *Store) Dict() *Dict { return s.dict }

// SetParallelism sets the worker budget for bulk operations (Load,
// Compact, CreateIndex). n <= 0 restores the default of
// runtime.GOMAXPROCS(0); 1 makes bulk loads fully serial. Safe to call
// concurrently with readers and writers.
func (s *Store) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	s.par.Store(int32(n))
}

// Parallelism returns the effective bulk-operation worker budget.
func (s *Store) Parallelism() int {
	if n := s.par.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// insertAllLocked merges a deduplicated batch into every index. With a
// worker budget above 1 the per-index merges run concurrently, and each
// index's batch sort gets an equal share of the remaining budget —
// bulk load builds all semantic-network indexes at once instead of one
// after another. Must be called with mu held.
//
//pgrdf:locks mu
func (s *Store) insertAllLocked(batch []IDQuad) {
	if len(batch) == 0 {
		return
	}
	w := s.Parallelism()
	if w <= 1 {
		for _, ix := range s.indexes {
			ix.insertSorted(append([]IDQuad(nil), batch...))
		}
		return
	}
	sortW := w / len(s.indexes)
	if sortW < 1 {
		sortW = 1
	}
	var wg sync.WaitGroup
	for _, ix := range s.indexes {
		wg.Add(1)
		go func(ix *Index) {
			defer wg.Done()
			ix.insertSortedN(append([]IDQuad(nil), batch...), sortW)
		}(ix)
	}
	wg.Wait()
}

// removeAllLocked applies tombstones to every index, concurrently when
// the worker budget allows. Must be called with mu held.
//
//pgrdf:locks mu
func (s *Store) removeAllLocked(del map[IDQuad]struct{}) {
	if len(del) == 0 {
		return
	}
	if s.Parallelism() <= 1 || len(s.indexes) == 1 {
		for _, ix := range s.indexes {
			ix.remove(del)
		}
		return
	}
	var wg sync.WaitGroup
	for _, ix := range s.indexes {
		wg.Add(1)
		go func(ix *Index) {
			defer wg.Done()
			ix.remove(del)
		}(ix)
	}
	wg.Wait()
}

// CreateIndex adds a semantic-network index with the given key spec
// (e.g. "GSPCM"), populating it from the current contents.
func (s *Store) CreateIndex(spec string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.createIndexLocked(spec)
}

//pgrdf:locks mu
func (s *Store) createIndexLocked(spec string) error {
	perm, err := ParsePermutation(spec)
	if err != nil {
		return err
	}
	for _, ix := range s.indexes {
		if ix.perm == perm {
			return fmt.Errorf("store: index %s already exists", spec)
		}
	}
	ix := NewIndex(perm)
	if len(s.indexes) > 0 {
		rows := make([]IDQuad, 0, s.indexes[0].Len())
		for _, q := range s.indexes[0].rows {
			rows = append(rows, q)
		}
		ix.build(rows, s.Parallelism())
	}
	s.indexes = append(s.indexes, ix)
	return nil
}

// DropIndex removes the index with the given key spec. The last index
// cannot be dropped.
func (s *Store) DropIndex(spec string) error {
	perm, err := ParsePermutation(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ix := range s.indexes {
		if ix.perm == perm {
			if len(s.indexes) == 1 {
				return fmt.Errorf("store: cannot drop the last index")
			}
			s.indexes = append(s.indexes[:i], s.indexes[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("store: no index %s", spec)
}

// Indexes returns the key specs of all indexes.
func (s *Store) Indexes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	specs := make([]string, len(s.indexes))
	for i, ix := range s.indexes {
		specs[i] = ix.perm.String()
	}
	return specs
}

// Model returns the ID for a semantic model, creating it if necessary.
func (s *Store) Model(name string) ModelID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modelLocked(name)
}

//pgrdf:locks mu
func (s *Store) modelLocked(name string) ModelID {
	if id, ok := s.modelIDs[name]; ok {
		return id
	}
	s.modelNames = append(s.modelNames, name)
	id := ModelID(len(s.modelNames))
	s.modelIDs[name] = id
	return id
}

// LookupModel returns the ID for an existing model, or NoID.
func (s *Store) LookupModel(name string) ModelID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.modelIDs[name]
}

// ModelName returns the name of a model ID.
func (s *Store) ModelName(id ModelID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id == NoID || int(id) > len(s.modelNames) {
		return ""
	}
	return s.modelNames[id-1]
}

// Models returns the names of all semantic models, in creation order.
func (s *Store) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.modelNames...)
}

// CreateVirtualModel defines name as the union of the given models,
// mirroring Oracle's virtual semantic models (§3.1). Members may include
// previously defined virtual models; the union is flattened.
func (s *Store) CreateVirtualModel(name string, members ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.modelIDs[name]; exists {
		return fmt.Errorf("store: %q already names a semantic model", name)
	}
	var ids []ModelID
	seen := make(map[ModelID]struct{})
	for _, m := range members {
		var memberIDs []ModelID
		if vm, ok := s.virtual[m]; ok {
			memberIDs = vm
		} else if id, ok := s.modelIDs[m]; ok {
			memberIDs = []ModelID{id}
		} else {
			return fmt.Errorf("store: unknown model %q in virtual model %q", m, name)
		}
		for _, id := range memberIDs {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("store: virtual model %q has no members", name)
	}
	s.virtual[name] = ids
	return nil
}

// ResolveDataset maps a model or virtual-model name to the set of model
// IDs it denotes. An empty name denotes all models.
func (s *Store) ResolveDataset(name string) ([]ModelID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		ids := make([]ModelID, len(s.modelNames))
		for i := range s.modelNames {
			ids[i] = ModelID(i + 1)
		}
		return ids, nil
	}
	if ids, ok := s.virtual[name]; ok {
		return append([]ModelID(nil), ids...), nil
	}
	if id, ok := s.modelIDs[name]; ok {
		return []ModelID{id}, nil
	}
	return nil, fmt.Errorf("store: unknown model %q", name)
}

// internQuad interns a quad's terms and returns its ID row.
func (s *Store) internQuad(m ModelID, q rdf.Quad) (IDQuad, error) {
	if err := q.Validate(); err != nil {
		return IDQuad{}, err
	}
	row := IDQuad{
		S: s.dict.Intern(q.S),
		P: s.dict.Intern(q.P),
		C: s.dict.Intern(q.O),
		M: m,
	}
	if !q.G.IsZero() {
		row.G = s.dict.Intern(q.G)
	}
	return row, nil
}

// Load bulk-loads quads into the named model, rebuilding all indexes
// once. This is the fast path corresponding to Oracle's N-Quads bulk
// load; prefer it over repeated Insert calls for large datasets.
func (s *Store) Load(model string, quads []rdf.Quad) (int, error) {
	rows := make([]IDQuad, 0, len(quads))
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.modelLocked(model)
	for _, q := range quads {
		row, err := s.internQuad(m, q)
		if err != nil {
			return 0, err
		}
		rows = append(rows, row)
	}
	s.compactLocked()
	// Deduplicate against existing contents and within the batch.
	fresh := rows[:0]
	batch := make(map[IDQuad]struct{}, len(rows))
	for _, row := range rows {
		if _, dup := batch[row]; dup {
			continue
		}
		if s.indexes[0].Contains(row) {
			continue
		}
		batch[row] = struct{}{}
		fresh = append(fresh, row)
	}
	s.insertAllLocked(fresh)
	s.count += len(fresh)
	if len(fresh) > 0 {
		s.version.Add(1)
	}
	return len(fresh), nil
}

// Version returns a counter bumped by every successful content
// mutation (Insert, Delete, Load that changed at least one quad).
// Consumers caching data derived from store contents — e.g. the
// optimizer's cardinality estimates — compare versions to decide
// whether their cache is still valid.
func (s *Store) Version() uint64 { return s.version.Load() }

// Insert adds a single quad to the model (incremental DML). Duplicate
// inserts are no-ops returning false.
func (s *Store) Insert(model string, q rdf.Quad) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.modelLocked(model)
	row, err := s.internQuad(m, q)
	if err != nil {
		return false, err
	}
	if _, dying := s.dead[row]; dying {
		delete(s.dead, row)
		s.count++
		s.version.Add(1)
		return true, nil
	}
	if _, inDelta := s.deltaSet[row]; inDelta {
		return false, nil
	}
	if s.indexes[0].Contains(row) {
		return false, nil
	}
	s.delta = append(s.delta, row)
	s.deltaSet[row] = struct{}{}
	s.count++
	s.version.Add(1)
	if len(s.delta) >= compactThreshold {
		s.compactLocked()
	}
	return true, nil
}

// Delete removes a single quad from the model. It returns false when the
// quad was not present.
func (s *Store) Delete(model string, q rdf.Quad) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.modelIDs[model]
	if !ok {
		return false, fmt.Errorf("store: unknown model %q", model)
	}
	if err := q.Validate(); err != nil {
		return false, err
	}
	row := IDQuad{S: s.dict.Lookup(q.S), P: s.dict.Lookup(q.P), C: s.dict.Lookup(q.O), M: m}
	if !q.G.IsZero() {
		row.G = s.dict.Lookup(q.G)
		if row.G == NoID {
			return false, nil
		}
	}
	if row.S == NoID || row.P == NoID || row.C == NoID {
		return false, nil
	}
	if _, inDelta := s.deltaSet[row]; inDelta {
		delete(s.deltaSet, row)
		for i, d := range s.delta {
			if d == row {
				s.delta = append(s.delta[:i], s.delta[i+1:]...)
				break
			}
		}
		s.count--
		s.version.Add(1)
		return true, nil
	}
	if !s.indexes[0].Contains(row) {
		return false, nil
	}
	if _, dying := s.dead[row]; dying {
		return false, nil
	}
	s.dead[row] = struct{}{}
	s.count--
	s.version.Add(1)
	if len(s.dead) >= compactThreshold {
		s.compactLocked()
	}
	return true, nil
}

// Compact merges the delta buffer into the sorted indexes and applies
// tombstones.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

//pgrdf:locks mu
func (s *Store) compactLocked() {
	if len(s.dead) > 0 {
		s.removeAllLocked(s.dead)
		s.dead = make(map[IDQuad]struct{})
	}
	if len(s.delta) > 0 {
		s.insertAllLocked(s.delta)
		s.delta = s.delta[:0]
		s.deltaSet = make(map[IDQuad]struct{})
	}
}

// Len returns the number of live quads across all models.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// ModelLen returns the number of live quads in one model.
func (s *Store) ModelLen(model string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.modelIDs[model]
	if !ok {
		return 0
	}
	n := 0
	p := AnyPattern()
	p.M = m
	s.scanLocked(p, func(IDQuad) bool { n++; return true })
	return n
}

// ChooseIndex returns the index that best serves the pattern: the one
// with the longest bound key prefix, ties broken by the smaller estimated
// range. This is the store's "optimizer hint" used by the SPARQL engine
// and reported in query plans.
func (s *Store) ChooseIndex(p Pattern) *Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.chooseIndexLocked(p)
}

//pgrdf:locks mu
func (s *Store) chooseIndexLocked(p Pattern) *Index {
	best := s.indexes[0]
	bestPrefix := best.prefixLen(p)
	for _, ix := range s.indexes[1:] {
		n := ix.prefixLen(p)
		if n > bestPrefix {
			best, bestPrefix = ix, n
			continue
		}
		// Tie-break by estimated range size only for single-column
		// prefixes: two indexes with the same prefix LENGTH >= 2 cover
		// the same bound-column set in practice (the range size depends
		// only on the set, not the order), so the extra binary searches
		// would be pure overhead on the per-probe NLJ path.
		if n == bestPrefix && n == 1 && ix.EstimateCount(p) < best.EstimateCount(p) {
			best = ix
		}
	}
	return best
}

// ChooseIndexByBound returns the spec of the index that would serve a
// pattern whose bound columns are exactly cols: the index with the
// longest key prefix covered by the bound set, ties broken by creation
// order. Used for EXPLAIN-style plan reporting when concrete IDs are not
// yet known.
func (s *Store) ChooseIndexByBound(cols []Col) string {
	var bound [numCols]bool
	for _, c := range cols {
		bound[c] = true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	best, bestPrefix := s.indexes[0], -1
	for _, ix := range s.indexes {
		n := 0
		for _, c := range ix.perm {
			if !bound[c] {
				break
			}
			n++
		}
		if n > bestPrefix {
			best, bestPrefix = ix, n
		}
	}
	return best.perm.String()
}

// Scan calls fn for each quad matching the pattern, choosing the best
// index automatically. fn returning false stops iteration. The delta
// buffer is merged in, and tombstoned rows are skipped.
func (s *Store) Scan(p Pattern, fn func(IDQuad) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.scanLocked(p, fn)
}

//pgrdf:locks mu
func (s *Store) scanLocked(p Pattern, fn func(IDQuad) bool) {
	fn = s.faultWrap(fn)
	ix := s.chooseIndexLocked(p)
	stopped := false
	ix.Scan(p, func(q IDQuad) bool {
		if _, gone := s.dead[q]; gone {
			return true
		}
		if !fn(q) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, q := range s.delta {
		if p.Matches(q) && !fn(q) {
			return
		}
	}
}

// ScanIndex is like Scan but forces a particular index (for plan tests
// and ablations). The spec must name an existing index.
func (s *Store) ScanIndex(spec string, p Pattern, fn func(IDQuad) bool) error {
	perm, err := ParsePermutation(spec)
	if err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn = s.faultWrap(fn)
	for _, ix := range s.indexes {
		if ix.perm == perm {
			ix.Scan(p, func(q IDQuad) bool {
				if _, gone := s.dead[q]; gone {
					return true
				}
				return fn(q)
			})
			for _, q := range s.delta {
				if p.Matches(q) && !fn(q) {
					break
				}
			}
			return nil
		}
	}
	return fmt.Errorf("store: no index %s", spec)
}

// EstimateCount estimates the number of quads matching the pattern using
// the best index's bound-prefix range. It is an upper bound and costs
// O(log n).
func (s *Store) EstimateCount(p Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.chooseIndexLocked(p).EstimateCount(p)
	if len(s.delta) > 0 {
		for _, q := range s.delta {
			if p.Matches(q) {
				n++
			}
		}
	}
	return n
}

// Contains reports whether the quad exists in the model.
func (s *Store) Contains(model string, q rdf.Quad) bool {
	s.mu.RLock()
	m, ok := s.modelIDs[model]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	row := IDQuad{S: s.dict.Lookup(q.S), P: s.dict.Lookup(q.P), C: s.dict.Lookup(q.O), M: m}
	if !q.G.IsZero() {
		row.G = s.dict.Lookup(q.G)
		if row.G == NoID {
			return false
		}
	}
	if row.S == NoID || row.P == NoID || row.C == NoID {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, gone := s.dead[row]; gone {
		return false
	}
	if _, inDelta := s.deltaSet[row]; inDelta {
		return true
	}
	return s.indexes[0].Contains(row)
}

// Quads materializes the quads matching the pattern as rdf.Quads, in
// index order. Intended for tests, export and small results.
func (s *Store) Quads(p Pattern) []rdf.Quad {
	var out []rdf.Quad
	s.Scan(p, func(q IDQuad) bool {
		out = append(out, s.quadTerms(q))
		return true
	})
	return out
}

func (s *Store) quadTerms(q IDQuad) rdf.Quad {
	r := rdf.Quad{S: s.dict.Term(q.S), P: s.dict.Term(q.P), O: s.dict.Term(q.C)}
	if q.G != NoID {
		r.G = s.dict.Term(q.G)
	}
	return r
}

// Export returns all quads of a model in deterministic order, suitable
// for N-Quads serialization.
func (s *Store) Export(model string) ([]rdf.Quad, error) {
	s.mu.RLock()
	m, ok := s.modelIDs[model]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown model %q", model)
	}
	p := AnyPattern()
	p.M = m
	quads := s.Quads(p)
	sort.Slice(quads, func(i, j int) bool { return rdf.CompareQuads(quads[i], quads[j]) < 0 })
	return quads, nil
}
