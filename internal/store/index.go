package store

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Col identifies a quad-table column.
type Col uint8

// The five columns of the quads table.
const (
	ColS Col = iota // subject
	ColP            // predicate
	ColC            // canonical object
	ColG            // named graph
	ColM            // semantic model
	numCols
)

func (c Col) String() string {
	return string("SPCGM"[c])
}

// IDQuad is a row of the ID-based quads table.
type IDQuad struct {
	S, P, C, G, M ID
}

// Get returns the value in column c.
func (q IDQuad) Get(c Col) ID {
	switch c {
	case ColS:
		return q.S
	case ColP:
		return q.P
	case ColC:
		return q.C
	case ColG:
		return q.G
	default:
		return q.M
	}
}

// Pattern is a scan pattern: a value per column, where Any matches
// everything. Note G==NoID matches only default-graph quads; to match any
// graph use Any.
type Pattern struct {
	S, P, C, G, M ID
}

// AnyPattern returns a pattern matching every quad.
func AnyPattern() Pattern { return Pattern{S: Any, P: Any, C: Any, G: Any, M: Any} }

// Get returns the pattern value for column c.
func (p Pattern) Get(c Col) ID {
	switch c {
	case ColS:
		return p.S
	case ColP:
		return p.P
	case ColC:
		return p.C
	case ColG:
		return p.G
	default:
		return p.M
	}
}

// Matches reports whether the quad satisfies the pattern.
func (p Pattern) Matches(q IDQuad) bool {
	return (p.S == Any || p.S == q.S) &&
		(p.P == Any || p.P == q.P) &&
		(p.C == Any || p.C == q.C) &&
		(p.G == Any || p.G == q.G) &&
		(p.M == Any || p.M == q.M)
}

// BoundCols returns the set of bound (non-wildcard) columns.
func (p Pattern) BoundCols() []Col {
	var cols []Col
	for c := ColS; c < numCols; c++ {
		if p.Get(c) != Any {
			cols = append(cols, c)
		}
	}
	return cols
}

// Permutation is an ordered list of columns forming an index key, e.g.
// "PCSGM". A valid permutation uses each of S, P, C, G, M exactly once.
type Permutation [numCols]Col

// ParsePermutation parses a key spec such as "PCSGM".
func ParsePermutation(s string) (Permutation, error) {
	var p Permutation
	if len(s) != int(numCols) {
		return p, fmt.Errorf("store: index key %q must use each of S,P,C,G,M exactly once", s)
	}
	var seen [numCols]bool
	for i := 0; i < len(s); i++ {
		idx := strings.IndexByte("SPCGM", s[i])
		if idx < 0 || seen[idx] {
			return p, fmt.Errorf("store: index key %q must use each of S,P,C,G,M exactly once", s)
		}
		seen[idx] = true
		p[i] = Col(idx)
	}
	return p, nil
}

// String renders the permutation as its key spec.
func (p Permutation) String() string {
	b := make([]byte, numCols)
	for i, c := range p {
		b[i] = "SPCGM"[c]
	}
	return string(b)
}

// Index is a semantic-network index: the full quads table sorted by a key
// permutation, scanned with binary search on the bound key prefix.
type Index struct {
	perm Permutation
	rows []IDQuad

	// Usage statistics, exposed for plan verification (Table 5).
	// Updated atomically: scans run under the store's read lock, so
	// many readers may bump them concurrently.
	rangeScans atomic.Int64
	fullScans  atomic.Int64
}

// NewIndex creates an empty index with the given key permutation.
func NewIndex(perm Permutation) *Index {
	return &Index{perm: perm}
}

// Perm returns the index key permutation.
func (ix *Index) Perm() Permutation { return ix.perm }

// Len returns the number of rows in the index.
func (ix *Index) Len() int { return len(ix.rows) }

func (ix *Index) less(a, b IDQuad) bool {
	for _, c := range ix.perm {
		av, bv := a.Get(c), b.Get(c)
		if av != bv {
			return av < bv
		}
	}
	return false
}

// Build replaces the index contents with rows, sorting by the key. The
// slice is not retained by the caller afterwards.
func (ix *Index) Build(rows []IDQuad) {
	ix.build(rows, 1)
}

// build is Build with a worker budget for the sort (see sortQuads).
func (ix *Index) build(rows []IDQuad, workers int) {
	ix.rows = rows
	sortQuads(ix.rows, ix.less, workers)
}

// prefixLen returns how many leading key columns of the pattern are bound.
func (ix *Index) prefixLen(p Pattern) int {
	n := 0
	for _, c := range ix.perm {
		if p.Get(c) == Any {
			break
		}
		n++
	}
	return n
}

// rangeOf returns the half-open row range whose first n key columns equal
// the pattern's values.
func (ix *Index) rangeOf(p Pattern, n int) (lo, hi int) {
	lo = sort.Search(len(ix.rows), func(i int) bool {
		return !ix.lessPrefix(ix.rows[i], p, n)
	})
	hi = sort.Search(len(ix.rows), func(i int) bool {
		return ix.greaterPrefix(ix.rows[i], p, n)
	})
	return lo, hi
}

func (ix *Index) lessPrefix(q IDQuad, p Pattern, n int) bool {
	for i := 0; i < n; i++ {
		c := ix.perm[i]
		qv, pv := q.Get(c), p.Get(c)
		if qv != pv {
			return qv < pv
		}
	}
	return false
}

func (ix *Index) greaterPrefix(q IDQuad, p Pattern, n int) bool {
	for i := 0; i < n; i++ {
		c := ix.perm[i]
		qv, pv := q.Get(c), p.Get(c)
		if qv != pv {
			return qv > pv
		}
	}
	return false
}

// Scan calls fn for every quad matching the pattern, in key order. It
// uses an index range scan when a key prefix is bound and a full index
// scan otherwise (the two access paths of §3.2). Iteration stops early if
// fn returns false.
func (ix *Index) Scan(p Pattern, fn func(IDQuad) bool) {
	n := ix.prefixLen(p)
	lo, hi := 0, len(ix.rows)
	if n > 0 {
		lo, hi = ix.rangeOf(p, n)
		ix.rangeScans.Add(1)
	} else {
		ix.fullScans.Add(1)
	}
	for i := lo; i < hi; i++ {
		if p.Matches(ix.rows[i]) && !fn(ix.rows[i]) {
			return
		}
	}
}

// EstimateCount returns the number of rows in the range addressed by the
// bound key prefix of p — an upper bound on the matching rows, computed
// in O(log n). Used by the query optimizer for selectivity estimates.
func (ix *Index) EstimateCount(p Pattern) int {
	n := ix.prefixLen(p)
	if n == 0 {
		return len(ix.rows)
	}
	lo, hi := ix.rangeOf(p, n)
	return hi - lo
}

// Contains reports whether the exact quad is present. It does not count
// as a scan in the usage statistics (it is the store's internal
// uniqueness check, not a query access path).
func (ix *Index) Contains(q IDQuad) bool {
	p := Pattern{S: q.S, P: q.P, C: q.C, G: q.G, M: q.M}
	lo, hi := ix.rangeOf(p, int(numCols))
	return hi > lo
}

// insertSorted inserts qs preserving order (used by compaction).
func (ix *Index) insertSorted(qs []IDQuad) {
	ix.insertSortedN(qs, 1)
}

// insertSortedN is insertSorted with a worker budget for sorting the
// incoming batch — the bulk-load path hands each index a slice of the
// store's parallelism so index merges and batch sorts overlap.
func (ix *Index) insertSortedN(qs []IDQuad, workers int) {
	if len(qs) == 0 {
		return
	}
	sortQuads(qs, ix.less, workers)
	merged := make([]IDQuad, 0, len(ix.rows)+len(qs))
	i, j := 0, 0
	for i < len(ix.rows) && j < len(qs) {
		if ix.less(qs[j], ix.rows[i]) {
			merged = append(merged, qs[j])
			j++
		} else {
			merged = append(merged, ix.rows[i])
			i++
		}
	}
	merged = append(merged, ix.rows[i:]...)
	merged = append(merged, qs[j:]...)
	ix.rows = merged
}

// remove deletes all quads in the set from the index.
func (ix *Index) remove(del map[IDQuad]struct{}) {
	if len(del) == 0 {
		return
	}
	out := ix.rows[:0]
	for _, q := range ix.rows {
		if _, gone := del[q]; !gone {
			out = append(out, q)
		}
	}
	ix.rows = out
}

// keyCompressedCells estimates the number of stored key cells under
// prefix compression: consecutive rows share the cells of their common
// key prefix, modeling Oracle's index key compression. Used for Table 9
// storage accounting (it is why, e.g., GPSCM on NG data compresses worse
// than PCSGM: G is nearly unique per row).
func (ix *Index) keyCompressedCells() int64 {
	var cells int64
	var prev IDQuad
	for i, q := range ix.rows {
		if i == 0 {
			cells += int64(numCols)
			prev = q
			continue
		}
		shared := 0
		for _, c := range ix.perm {
			if q.Get(c) == prev.Get(c) {
				shared++
			} else {
				break
			}
		}
		cells += int64(int(numCols) - shared)
		prev = q
	}
	return cells
}
