package store_test

// Binary snapshot test suite (ISSUE 9): the binary-vs-text restore
// differential across every index config × conversion scheme, a
// corruption matrix over every byte and every truncation point
// (mirroring the torn-WAL corpus approach), and the satellite
// regressions — snapshot atomicity under concurrent writers, >16 MiB
// literals through Restore, and adversarial directive names.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/twitter"
)

func binarySnapshotOf(t *testing.T, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.SnapshotBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinarySnapshotDifferential is the binary-vs-text differential:
// for every index config × RF/NG/SP scheme, restoring the binary
// snapshot must re-produce the text snapshot byte for byte (the crash
// differential's oracle), and re-encoding must be a binary fixed point.
func TestBinarySnapshotDifferential(t *testing.T) {
	g := twitter.Generate(twitter.PaperConfig().Scale(0.002))
	for _, scheme := range pgrdf.Schemes {
		conv := pgrdf.NewConverter(scheme)
		ds := conv.Convert(g)
		for _, idx := range indexConfigs {
			t.Run(fmt.Sprintf("%s/%v", scheme, idx), func(t *testing.T) {
				st, err := store.NewWithIndexes(idx)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := pgrdf.LoadPartitioned(st, ds, "pg"); err != nil {
					t.Fatal(err)
				}
				if _, err := st.Load("tricky", trickyQuads()); err != nil {
					t.Fatal(err)
				}
				st.Model("empty")
				// Churn so the dump covers the delta buffer and
				// tombstones, not just compacted base rows.
				extra := rdf.Quad{S: rdf.NewIRI("http://pg/vX"), P: rdf.NewIRI("http://pg/k/tmp"), O: rdf.NewLiteral("gone")}
				if _, err := st.Insert("tricky", extra); err != nil {
					t.Fatal(err)
				}
				if _, err := st.Delete("tricky", extra); err != nil {
					t.Fatal(err)
				}
				keep := rdf.Quad{S: rdf.NewIRI("http://pg/vX"), P: rdf.NewIRI("http://pg/k/keep"), O: rdf.NewLiteral("stays")}
				if _, err := st.Insert("tricky", keep); err != nil {
					t.Fatal(err)
				}

				text := snapshotOf(t, st)
				bin := binarySnapshotOf(t, st)
				if !store.IsBinarySnapshot(bin) {
					t.Fatal("binary snapshot does not carry the magic")
				}
				r, err := store.RestoreBinary(bin)
				if err != nil {
					t.Fatal(err)
				}
				if got := snapshotOf(t, r); !bytes.Equal(got, text) {
					t.Fatalf("text snapshot after binary round trip diverges (%d vs %d bytes)", len(got), len(text))
				}
				if got := binarySnapshotOf(t, r); !bytes.Equal(got, bin) {
					t.Fatalf("binary snapshot not a fixed point (%d vs %d bytes)", len(got), len(bin))
				}
				if !reflect.DeepEqual(r.Indexes(), st.Indexes()) {
					t.Fatalf("indexes: %v vs %v", r.Indexes(), st.Indexes())
				}
				if r.Len() != st.Len() {
					t.Fatalf("restored %d of %d quads", r.Len(), st.Len())
				}
				for _, vm := range []string{"pg", "pg_topo_nodekv", "pg_topo_edgekv"} {
					want, err1 := st.ResolveDataset(vm)
					got, err2 := r.ResolveDataset(vm)
					if err1 != nil || err2 != nil || !reflect.DeepEqual(want, got) {
						t.Fatalf("virtual model %s: %v/%v, %v/%v", vm, want, got, err1, err2)
					}
				}
				// RestoreAny must sniff both formats.
				ra, err := store.RestoreAny(bytes.NewReader(bin))
				if err != nil || ra.Len() != st.Len() {
					t.Fatalf("RestoreAny(binary): %v, %d quads", err, ra.Len())
				}
				rt, err := store.RestoreAny(bytes.NewReader(text))
				if err != nil || rt.Len() != st.Len() {
					t.Fatalf("RestoreAny(text): %v", err)
				}
			})
		}
	}
}

// TestBinarySnapshotCorruptionEveryByte proves the CRC framing leaves
// no silent hole: flipping any single byte, or truncating at any
// length, must fail with a typed error — never restore quietly wrong.
func TestBinarySnapshotCorruptionEveryByte(t *testing.T) {
	st, err := store.NewWithIndexes([]string{"PCSGM", "GSPCM"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("m1", trickyQuads()); err != nil {
		t.Fatal(err)
	}
	st.Model("m2")
	if err := st.CreateVirtualModel("both", "m1", "m2"); err != nil {
		t.Fatal(err)
	}
	bin := binarySnapshotOf(t, st)

	typed := func(err error) bool {
		return errors.Is(err, store.ErrBinarySnapshotCorrupt) || errors.Is(err, store.ErrNotBinarySnapshot)
	}
	for i := range bin {
		mut := append([]byte(nil), bin...)
		mut[i] ^= 0x01
		if _, err := store.RestoreBinary(mut); !typed(err) {
			t.Fatalf("flip at byte %d: err = %v, want a typed corruption error", i, err)
		}
	}
	for n := 0; n < len(bin); n++ {
		if _, err := store.RestoreBinary(bin[:n]); !typed(err) {
			t.Fatalf("truncation to %d bytes: err = %v, want a typed corruption error", n, err)
		}
	}
	if _, err := store.RestoreBinary(append(append([]byte(nil), bin...), 0x00)); !errors.Is(err, store.ErrBinarySnapshotCorrupt) {
		t.Fatalf("trailing garbage: err = %v, want ErrBinarySnapshotCorrupt", err)
	}
	if _, err := store.RestoreBinary([]byte("# pgrdf-snapshot v1\n")); !errors.Is(err, store.ErrNotBinarySnapshot) {
		t.Fatalf("text input: err = %v, want ErrNotBinarySnapshot", err)
	}
}

// TestSnapshotAtomicUnderConcurrentWriter is the ISSUE 9 atomicity
// regression (run under -race): while a writer streams globally
// sequenced inserts across two models, every Snapshot must capture a
// contiguous global prefix — the old multi-lock dump could interleave
// models from different moments — and must restore cleanly.
func TestSnapshotAtomicUnderConcurrentWriter(t *testing.T) {
	st := store.New()
	st.Model("A")
	st.Model("B")
	if err := st.CreateVirtualModel("V", "A", "B"); err != nil {
		t.Fatal(err)
	}
	// The writer is capped: unbounded growth makes each snapshot (taken
	// under the store lock) slower, which under -race compounds into a
	// package timeout. 25k inserts keep the writer live across many
	// snapshot iterations while bounding the dump cost.
	const maxWriterInserts = 25_000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := rdf.NewIRI("http://pg/k/seq")
		for i := 0; i < maxWriterInserts; i++ {
			select {
			case <-stop:
				return
			default:
			}
			model := "A"
			if i%2 == 1 {
				model = "B"
			}
			q := rdf.Quad{S: rdf.NewIRI("http://pg/v"), P: p, O: rdf.NewLiteral(strconv.Itoa(i))}
			if _, err := st.Insert(model, q); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()

	dumps := []struct {
		name string
		dump func() (*store.Store, error)
	}{
		{"text", func() (*store.Store, error) {
			var buf bytes.Buffer
			if err := st.Snapshot(&buf); err != nil {
				return nil, err
			}
			return store.Restore(&buf)
		}},
		{"binary", func() (*store.Store, error) {
			var buf bytes.Buffer
			if err := st.SnapshotBinary(&buf); err != nil {
				return nil, err
			}
			return store.RestoreBinary(buf.Bytes())
		}},
	}
	// Formats interleave inside one loop so both race against the live
	// writer rather than one format getting a drained store.
	for iter := 0; iter < 20; iter++ {
		for _, d := range dumps {
			fmtName, dump := d.name, d.dump
			r, err := dump()
			if err != nil {
				t.Fatalf("%s iter %d: %v", fmtName, iter, err)
			}
			var seen []int
			for _, m := range []string{"A", "B"} {
				quads, err := r.Export(m)
				if err != nil {
					t.Fatalf("%s iter %d: export %s: %v", fmtName, iter, m, err)
				}
				for _, q := range quads {
					n, err := strconv.Atoi(q.O.Value)
					if err != nil {
						t.Fatalf("%s iter %d: bad literal %q", fmtName, iter, q.O.Value)
					}
					seen = append(seen, n)
				}
			}
			sort.Ints(seen)
			for i, n := range seen {
				if n != i {
					t.Fatalf("%s iter %d: snapshot is not a contiguous prefix: %d inserts but gap at %d (writer states from different times)", fmtName, iter, len(seen), i)
				}
			}
			if ids, err := r.ResolveDataset("V"); err != nil || len(ids) != 2 {
				t.Fatalf("%s iter %d: virtual model: %v %v", fmtName, iter, ids, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRestoreHugeLiteral is the bufio.ErrTooLong regression: Snapshot
// happily writes a 17 MiB literal on one line, and Restore must read
// it back (the old Scanner capped lines at 16 MiB).
func TestRestoreHugeLiteral(t *testing.T) {
	huge := strings.Repeat("x", 17<<20)
	st := store.New()
	q := rdf.Quad{S: rdf.NewIRI("http://pg/v1"), P: rdf.NewIRI("http://pg/k/blob"), O: rdf.NewLiteral(huge)}
	if _, err := st.Insert("m", q); err != nil {
		t.Fatal(err)
	}
	first := snapshotOf(t, st)
	r, err := store.Restore(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("Restore with a >16MiB line: %v", err)
	}
	quads, err := r.Export("m")
	if err != nil || len(quads) != 1 || quads[0].O.Value != huge {
		t.Fatalf("huge literal did not round-trip (%d quads, err %v)", len(quads), err)
	}
	if second := snapshotOf(t, r); !bytes.Equal(first, second) {
		t.Fatal("snapshot not a fixed point with a huge literal")
	}
	// The binary path has no line structure at all; verify anyway.
	rb, err := store.RestoreBinary(binarySnapshotOf(t, st))
	if err != nil {
		t.Fatal(err)
	}
	if quads, _ := rb.Export("m"); len(quads) != 1 || quads[0].O.Value != huge {
		t.Fatal("huge literal did not survive the binary round trip")
	}
}

// adversarialNames are model/virtual names that collide with the text
// snapshot's directive grammar: separators, comment lead-ins, escapes,
// whitespace (which Restore trims) and raw newlines.
var adversarialNames = []string{
	"plain",
	"with,comma",
	"a = b",
	"#leading-hash",
	"# model evil",
	"new\nline",
	"tab\tname",
	" leading-space",
	"trailing-space ",
	"",
	"percent%20literal",
	"%2C",
	"unicode-née",
	" nbsp",
	"comma,and = equals,#hash",
}

// TestSnapshotAdversarialNames is the directive-escaping regression: a
// model or virtual name containing the grammar's metacharacters must
// round-trip exactly instead of silently mis-restoring.
func TestSnapshotAdversarialNames(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://pg/k/name")
	for i, name := range adversarialNames {
		q := rdf.Quad{S: rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)), P: p, O: rdf.NewLiteral(name)}
		if _, err := st.Insert(name, q); err != nil {
			t.Fatalf("insert into %q: %v", name, err)
		}
	}
	for i, name := range adversarialNames {
		vname := "virt:" + name
		if err := st.CreateVirtualModel(vname, name, adversarialNames[(i+1)%len(adversarialNames)]); err != nil {
			t.Fatalf("virtual %q: %v", vname, err)
		}
	}

	for fmtName, trip := range map[string]func() (*store.Store, error){
		"text": func() (*store.Store, error) {
			var buf bytes.Buffer
			if err := st.Snapshot(&buf); err != nil {
				return nil, err
			}
			return store.Restore(&buf)
		},
		"binary": func() (*store.Store, error) {
			var buf bytes.Buffer
			if err := st.SnapshotBinary(&buf); err != nil {
				return nil, err
			}
			return store.RestoreBinary(buf.Bytes())
		},
	} {
		r, err := trip()
		if err != nil {
			t.Fatalf("%s: %v", fmtName, err)
		}
		if !reflect.DeepEqual(r.Models(), st.Models()) {
			t.Fatalf("%s: models %q != %q", fmtName, r.Models(), st.Models())
		}
		for i, name := range adversarialNames {
			quads, err := r.Export(name)
			if err != nil || len(quads) != 1 || quads[0].O.Value != name {
				t.Fatalf("%s: model %q did not round-trip: %v %v", fmtName, name, quads, err)
			}
			want, err1 := st.ResolveDataset("virt:" + name)
			got, err2 := r.ResolveDataset("virt:" + name)
			if err1 != nil || err2 != nil || !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: virtual %q: %v/%v %v/%v", fmtName, "virt:"+adversarialNames[i], want, got, err1, err2)
			}
		}
		first := snapshotOf(t, st)
		if second := snapshotOf(t, r); !bytes.Equal(first, second) {
			t.Fatalf("%s: text snapshot not a fixed point over adversarial names", fmtName)
		}
	}
}
