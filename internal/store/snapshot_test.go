package store

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func snapshotFixture(t *testing.T) *Store {
	t.Helper()
	s, err := NewWithIndexes([]string{"PCSGM", "PSCGM", "GSPCM"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("topo", []rdf.Quad{
		quad("v1", "follows", "v2", "e3"),
		quad("v2", "follows", "v3", "e4"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("kv", []rdf.Quad{
		{S: iri("v1"), P: iri("name"), O: rdf.NewLiteral("Amy")},
		{S: iri("v1"), P: iri("age"), O: rdf.NewInt(23)},
	}); err != nil {
		t.Fatal(err)
	}
	s.Model("emptymodel")
	if err := s.CreateVirtualModel("all", "topo", "kv"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := snapshotFixture(t)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# pgrdf-snapshot v1\n") {
		t.Errorf("missing header:\n%s", buf.String()[:60])
	}

	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Indexes(), s.Indexes()) {
		t.Errorf("indexes: %v vs %v", r.Indexes(), s.Indexes())
	}
	if !reflect.DeepEqual(r.Models(), s.Models()) {
		t.Errorf("models: %v vs %v", r.Models(), s.Models())
	}
	for _, m := range s.Models() {
		want, _ := s.Export(m)
		got, err := r.Export(m)
		if err != nil {
			t.Fatalf("export %s: %v", m, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("model %s differs: %v vs %v", m, got, want)
		}
	}
	// Virtual model survives.
	ids, err := r.ResolveDataset("all")
	if err != nil || len(ids) != 2 {
		t.Errorf("virtual model: %v, %v", ids, err)
	}
}

func TestRestorePlainNQuads(t *testing.T) {
	input := `<http://x/a> <http://x/p> <http://x/b> .
<http://x/a> <http://x/p> "lit" <http://x/g> .`
	st, err := Restore(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("quads = %d", st.Len())
	}
	if st.LookupModel("data") == NoID {
		t.Error("plain N-Quads should restore into model \"data\"")
	}
	if !reflect.DeepEqual(st.Indexes(), DefaultIndexes) {
		t.Errorf("indexes = %v", st.Indexes())
	}
}

func TestRestoreErrors(t *testing.T) {
	cases := []string{
		"# model m\nbogus line\n",
		"# virtual broken\n", // malformed directive
		"# model m\n<http://a> <http://p> <http://o> .\n# indexes PCSGM\n", // late indexes
		"# virtual v = missing\n# model m\n<http://a> <http://p> <http://o> .\n",
	}
	for _, src := range cases {
		if _, err := Restore(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid snapshot: %q", src)
		}
	}
}

func TestSnapshotLargeRoundTrip(t *testing.T) {
	s := New()
	var quads []rdf.Quad
	for i := 0; i < 3000; i++ {
		quads = append(quads, quad(fmt.Sprintf("s%d", i%100), fmt.Sprintf("p%d", i%7), fmt.Sprintf("o%d", i), fmt.Sprintf("g%d", i%11)))
	}
	s.Load("big", quads)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != s.Len() {
		t.Fatalf("restored %d of %d quads", r.Len(), s.Len())
	}
}
