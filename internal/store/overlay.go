package store

import (
	"sync"

	"repro/internal/rdf"
)

// scratchBase is the first ID of the range reserved for per-query
// scratch terms. The dictionary assigns dense IDs from 1 upward and
// would need to intern ~4.6e18 terms to collide; Any (^ID(0)) stays
// clear of the range's top because scratch tables are bounded by the
// per-query binding budget long before that.
const scratchBase ID = 1 << 62

// TermOverlay is a read-through term table layered over a Dict: Intern
// resolves against the shared dictionary first (so terms that already
// exist keep their real, joinable IDs) and assigns IDs from a private
// scratch range to terms the dictionary has never seen. Computed values
// produced while answering a read-only query (extended projection,
// BIND, VALUES, aggregate results) go through an overlay so they never
// grow the store's dictionary — scratch IDs live exactly as long as the
// overlay.
//
// Scratch IDs compare equal only to themselves, and no stored quad ever
// carries one, so using them in scan patterns or join keys is safe: a
// scratch-identified term matches nothing in the store, which is the
// correct semantics for a term the store does not contain.
//
// The overlay is safe for concurrent use: one query's parallel workers
// may resolve scratch IDs while the driver interns new ones.
type TermOverlay struct {
	dict *Dict
	mu   sync.RWMutex
	//pgrdf:guardedby mu
	byKey map[string]ID
	//pgrdf:guardedby mu
	terms []rdf.Term
}

// NewTermOverlay returns an empty overlay over d. It allocates nothing
// beyond the struct until the first scratch term is interned.
func NewTermOverlay(d *Dict) *TermOverlay {
	return &TermOverlay{dict: d}
}

// Intern returns the dictionary ID for t when the term is already
// known, or a scratch ID private to this overlay otherwise. The shared
// dictionary is never modified.
func (o *TermOverlay) Intern(t rdf.Term) ID {
	if id := o.dict.Lookup(t); id != NoID {
		return id
	}
	key := t.String()
	o.mu.RLock()
	id, ok := o.byKey[key]
	o.mu.RUnlock()
	if ok {
		return id
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok = o.byKey[key]; ok {
		return id
	}
	if o.byKey == nil {
		o.byKey = make(map[string]ID)
	}
	o.terms = append(o.terms, t)
	id = scratchBase + ID(len(o.terms)-1)
	o.byKey[key] = id
	return id
}

// Term resolves an ID from either range. It panics on an ID never
// issued, matching Dict.Term.
func (o *TermOverlay) Term(id ID) rdf.Term {
	if id < scratchBase {
		return o.dict.Term(id)
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	i := int(id - scratchBase)
	if i >= len(o.terms) {
		panic("store: Term called with invalid scratch ID")
	}
	return o.terms[i]
}

// Len returns the number of scratch terms this overlay holds.
func (o *TermOverlay) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.terms)
}
