package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/ntriples"
)

// Record framing (all integers little-endian):
//
//	frame   := u32 payloadLen | u32 crc32(IEEE, payload) | payload
//	payload := u64 seq | u32 nops | op*
//	op      := u8 kind | u16 len(model) | model | u32 len(line) | line
//
// where line is the quad in N-Quads syntax (one line, no newline). The
// length prefix bounds the read, the CRC detects torn and bit-rotted
// tails, and the N-Quads body keeps records independently decodable by
// the same parser the bulk-load path uses.

const (
	frameHeaderLen = 8
	// maxRecordLen bounds one record so a corrupt length prefix cannot
	// drive a multi-gigabyte allocation during replay.
	maxRecordLen = 64 << 20
)

// errTorn marks the truncation point during replay: the final record is
// incomplete or fails its checksum. It never escapes Open — the tail is
// dropped and recovery succeeds with what was durably framed.
var errTorn = fmt.Errorf("wal: torn or corrupt record")

// encodeBatch serializes a batch under the given sequence number.
func encodeBatch(seq uint64, b Batch) ([]byte, error) {
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(b.Ops)))
	for _, op := range b.Ops {
		if op.Kind != OpInsert && op.Kind != OpDelete {
			return nil, fmt.Errorf("wal: unknown op kind %d", op.Kind)
		}
		if err := op.Quad.Validate(); err != nil {
			return nil, fmt.Errorf("wal: refusing to journal invalid quad: %w", err)
		}
		if len(op.Model) > 0xFFFF {
			return nil, fmt.Errorf("wal: model name longer than 65535 bytes")
		}
		line := op.Quad.String() + " ."
		payload = append(payload, byte(op.Kind))
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(op.Model)))
		payload = append(payload, op.Model...)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(line)))
		payload = append(payload, line...)
	}
	if len(payload) > maxRecordLen {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d byte limit", len(payload), maxRecordLen)
	}
	frame := make([]byte, 0, frameHeaderLen+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	return frame, nil
}

// decodePayload parses one record payload back into its batch.
func decodePayload(payload []byte) (seq uint64, b Batch, err error) {
	if len(payload) < 12 {
		return 0, Batch{}, errTorn
	}
	seq = binary.LittleEndian.Uint64(payload)
	nops := binary.LittleEndian.Uint32(payload[8:])
	rest := payload[12:]
	for i := uint32(0); i < nops; i++ {
		if len(rest) < 3 {
			return 0, Batch{}, errTorn
		}
		kind := OpKind(rest[0])
		if kind != OpInsert && kind != OpDelete {
			return 0, Batch{}, errTorn
		}
		mlen := int(binary.LittleEndian.Uint16(rest[1:]))
		rest = rest[3:]
		if len(rest) < mlen+4 {
			return 0, Batch{}, errTorn
		}
		model := string(rest[:mlen])
		llen := int(binary.LittleEndian.Uint32(rest[mlen:]))
		rest = rest[mlen+4:]
		if len(rest) < llen {
			return 0, Batch{}, errTorn
		}
		line := string(rest[:llen])
		rest = rest[llen:]
		quads, err := ntriples.NewReader(strings.NewReader(line)).ReadAll()
		if err != nil || len(quads) != 1 {
			return 0, Batch{}, errTorn
		}
		b.Ops = append(b.Ops, Op{Kind: kind, Model: model, Quad: quads[0]})
	}
	if len(rest) != 0 {
		return 0, Batch{}, errTorn
	}
	return seq, b, nil
}

// readRecords decodes every complete, checksummed record from r,
// returning the batches, the byte offset just past the last good
// record, and the last sequence number seen. A torn or corrupt tail
// stops decoding without error (the caller truncates there); only real
// read errors are returned.
func readRecords(r io.Reader, yield func(seq uint64, b Batch) error) (good int64, lastSeq uint64, err error) {
	br := &countReader{r: r}
	header := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			return good, lastSeq, nil // clean EOF or torn header: stop
		}
		plen := binary.LittleEndian.Uint32(header)
		crc := binary.LittleEndian.Uint32(header[4:])
		if plen > maxRecordLen {
			return good, lastSeq, nil // corrupt length prefix
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, lastSeq, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return good, lastSeq, nil // bit rot or torn rewrite
		}
		seq, b, err := decodePayload(payload)
		if err != nil {
			return good, lastSeq, nil // framed but undecodable: treat as torn
		}
		if yield != nil {
			if err := yield(seq, b); err != nil {
				return good, lastSeq, err
			}
		}
		good = br.n
		lastSeq = seq
	}
}

// countReader tracks how many bytes have been consumed from r.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
