package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// corpusBatches is the canonical 3-record log behind the pinned
// torn-write corpus in testdata/torn. Changing it invalidates the
// corpus; regenerate with UPDATE_TORN_CORPUS=1 go test ./internal/wal.
func corpusBatches() []Batch {
	v1 := rdf.NewIRI("http://pg/v1")
	v2 := rdf.NewIRI("http://pg/v2")
	e3 := rdf.NewIRI("http://pg/e3")
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	name := rdf.NewIRI(rdf.KeyNS + "name")
	since := rdf.NewIRI(rdf.KeyNS + "since")
	return []Batch{
		{Ops: []Op{
			{Kind: OpInsert, Model: "fig1", Quad: rdf.NewQuad(v1, follows, v2, e3)},
			{Kind: OpInsert, Model: "fig1", Quad: rdf.NewQuad(e3, since, rdf.NewInt(2007), e3)},
		}},
		{Ops: []Op{
			{Kind: OpInsert, Model: "fig1", Quad: rdf.Quad{S: v1, P: name, O: rdf.NewLiteral("Amy")}},
		}},
		{Ops: []Op{
			{Kind: OpDelete, Model: "fig1", Quad: rdf.NewQuad(v1, follows, v2, e3)},
			{Kind: OpInsert, Model: "aux", Quad: rdf.Quad{S: v2, P: name, O: rdf.NewLiteral("Mira \"M\" O'Hara\nline2")}},
		}},
	}
}

func encodeCorpus(t *testing.T) ([]byte, []int) {
	t.Helper()
	var log []byte
	var ends []int
	for i, b := range corpusBatches() {
		frame, err := encodeBatch(uint64(i+1), b)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, frame...)
		ends = append(ends, len(log))
	}
	return log, ends
}

func TestRecordRoundTrip(t *testing.T) {
	for i, b := range corpusBatches() {
		frame, err := encodeBatch(uint64(i+1), b)
		if err != nil {
			t.Fatal(err)
		}
		seq, got, err := decodePayload(frame[frameHeaderLen:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("record %d: seq = %d", i, seq)
		}
		if len(got.Ops) != len(b.Ops) {
			t.Fatalf("record %d: %d ops, want %d", i, len(got.Ops), len(b.Ops))
		}
		for j, op := range got.Ops {
			want := b.Ops[j]
			if op.Kind != want.Kind || op.Model != want.Model || op.Quad != want.Quad {
				t.Fatalf("record %d op %d: got %+v want %+v", i, j, op, want)
			}
		}
	}
}

func TestEncodeBatchRejectsBadOps(t *testing.T) {
	good := rdf.Quad{S: rdf.NewIRI("http://s"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://o")}
	cases := []Batch{
		{Ops: []Op{{Kind: 9, Model: "m", Quad: good}}},                                  // unknown kind
		{Ops: []Op{{Kind: OpInsert, Model: "m", Quad: rdf.Quad{}}}},                     // invalid quad
		{Ops: []Op{{Kind: OpInsert, Model: strings.Repeat("m", 70000), Quad: good}}},    // model too long
		{Ops: []Op{{Kind: OpDelete, Model: "m", Quad: rdf.Quad{S: good.S, P: good.P}}}}, // missing object
	}
	for i, b := range cases {
		if _, err := encodeBatch(1, b); err == nil {
			t.Errorf("case %d: encodeBatch accepted a bad batch", i)
		}
	}
}

// goodRecords runs the reader and returns how many records decoded and
// the byte offset past the last good one.
func goodRecords(t *testing.T, log []byte) (n int, good int64) {
	t.Helper()
	good, _, err := readRecords(bytes.NewReader(log), func(seq uint64, b Batch) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("readRecords: %v", err)
	}
	return n, good
}

// TestReaderToleratesEveryTruncation is the exhaustive torn-tail
// property: cutting the log at ANY byte yields the longest record
// prefix that still fits, never an error.
func TestReaderToleratesEveryTruncation(t *testing.T) {
	log, ends := encodeCorpus(t)
	for c := 0; c <= len(log); c++ {
		wantRecs, wantGood := 0, int64(0)
		for i, end := range ends {
			if c >= end {
				wantRecs, wantGood = i+1, int64(end)
			}
		}
		n, good := goodRecords(t, log[:c])
		if n != wantRecs || good != wantGood {
			t.Fatalf("cut at %d: decoded %d records to offset %d, want %d to %d",
				c, n, good, wantRecs, wantGood)
		}
	}
}

// TestReaderStopsAtAnyCorruptByte flips each byte of the middle record
// and checks the CRC (or frame validation) stops decoding there.
func TestReaderStopsAtAnyCorruptByte(t *testing.T) {
	log, ends := encodeCorpus(t)
	for pos := ends[0]; pos < ends[1]; pos++ {
		mut := append([]byte(nil), log...)
		mut[pos] ^= 0xFF
		n, good := goodRecords(t, mut)
		// Corrupting record 2 must keep record 1 and cannot yield more
		// than 1 record unless the flip faked a longer valid frame —
		// which the CRC makes (astronomically) impossible.
		if n != 1 || good != int64(ends[0]) {
			t.Fatalf("flip at %d: decoded %d records to offset %d", pos, n, good)
		}
	}
}

func TestReaderRejectsHugeLengthPrefix(t *testing.T) {
	log := make([]byte, frameHeaderLen)
	log[0], log[1], log[2], log[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if n, good := goodRecords(t, log); n != 0 || good != 0 {
		t.Fatalf("decoded %d records to offset %d from a corrupt length prefix", n, good)
	}
}

// TestTornCorpusSeeds replays the pinned seed files: each is a
// truncated or corrupted copy of the canonical 3-record log, named
// recN-<case>.bin where N is the number of records that must survive.
func TestTornCorpusSeeds(t *testing.T) {
	if os.Getenv("UPDATE_TORN_CORPUS") != "" {
		writeTornCorpus(t)
	}
	seeds, err := filepath.Glob(filepath.Join("testdata", "torn", "*.bin"))
	if err != nil || len(seeds) == 0 {
		t.Fatalf("no torn corpus seeds (err=%v); regenerate with UPDATE_TORN_CORPUS=1", err)
	}
	canonical, ends := encodeCorpus(t)
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(path)
		var want int
		if _, err := fmt.Sscanf(base, "rec%d-", &want); err != nil {
			t.Fatalf("seed %s: name must start with recN-", base)
		}
		n, good := goodRecords(t, data)
		if n != want {
			t.Errorf("seed %s: decoded %d records, want %d", base, n, want)
		}
		if want > 0 && good != int64(ends[want-1]) {
			t.Errorf("seed %s: good offset %d, want %d", base, good, ends[want-1])
		}
		if want > 0 && !bytes.Equal(data[:good], canonical[:good]) {
			t.Errorf("seed %s: surviving prefix diverges from the canonical log", base)
		}
	}
}

func writeTornCorpus(t *testing.T) {
	t.Helper()
	log, ends := encodeCorpus(t)
	dir := filepath.Join("testdata", "torn")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("rec3-clean.bin", log)
	write("rec0-empty.bin", nil)
	write("rec0-midheader.bin", log[:frameHeaderLen/2])
	write("rec1-midpayload.bin", log[:ends[0]+(ends[1]-ends[0])/2])
	write("rec2-headeronly.bin", log[:ends[1]+frameHeaderLen])
	crcFlip := append([]byte(nil), log...)
	crcFlip[ends[1]+5] ^= 0xA5 // CRC byte of record 3
	write("rec2-badcrc.bin", crcFlip)
	payloadFlip := append([]byte(nil), log...)
	payloadFlip[ends[2]-3] ^= 0x01 // payload byte of record 3
	write("rec2-bitrot.bin", payloadFlip)
	huge := append(append([]byte(nil), log[:ends[0]]...), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0)
	write("rec1-hugelen.bin", huge)
	garbage := append(append([]byte(nil), log...), bytes.Repeat([]byte{0x00}, 16)...)
	write("rec3-zerotail.bin", garbage)
}
