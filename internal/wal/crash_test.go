package wal_test

// The headline durability property (ISSUE 5): a kill -9-style crash at
// ANY byte of the write-ahead log recovers to a store whose Snapshot
// output is byte-identical to the state after the last durably framed
// commit. The harness runs a scripted SPARQL Update workload once,
// recording the log boundary and a reference snapshot after every
// commit; each crash point then materializes checkpoint + log-prefix
// in a fresh directory, reopens it, and compares snapshots.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pgrdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/twitter"
	"repro/internal/wal"
)

// attach wires the engine's commit hook to the log the same way the
// HTTP layer does (httpapi.AttachWAL).
func attach(eng *sparql.Engine, l *wal.Log) {
	eng.CommitHook = func(muts []sparql.Mutation, apply func() error) error {
		ops := make([]wal.Op, len(muts))
		for i, m := range muts {
			kind := wal.OpDelete
			if m.Insert {
				kind = wal.OpInsert
			}
			ops[i] = wal.Op{Kind: kind, Model: m.Model, Quad: m.Quad}
		}
		return l.Commit(wal.Batch{Ops: ops}, apply)
	}
}

func snap(t *testing.T, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type upd struct {
	model string
	req   string
}

type crashRef struct {
	boundary int64 // log size after this commit
	snapshot []byte
}

// crashFormats parametrizes the crash matrix over both checkpoint
// formats: the binary default and the legacy text snapshot.
var crashFormats = map[string]bool{"binary": false, "text": true}

// readCheckpointFiles captures every published checkpoint artifact in
// dir — full checkpoint (either format) and incremental deltas — so a
// crash point can be materialized byte-for-byte in a fresh directory.
func readCheckpointFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint.") || name == "checkpoint.tmp" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[name] = b
	}
	return files
}

// runWorkload executes the scripted updates against a WAL-backed engine
// (optionally seeding + checkpointing first) and returns the checkpoint
// files (empty if none), the final log bytes, and the per-commit
// references. refs[0] is the pre-workload state at boundary 0.
func runWorkload(t *testing.T, opts wal.Options, seed func(st *store.Store), updates []upd) (ckptFiles map[string][]byte, log []byte, refs []crashRef) {
	t.Helper()
	dir := t.TempDir()
	st, l, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if seed != nil {
		seed(st)
		if err := l.Checkpoint(st); err != nil {
			t.Fatal(err)
		}
	}
	eng := sparql.NewEngine(st)
	attach(eng, l)
	refs = append(refs, crashRef{boundary: 0, snapshot: snap(t, st)})
	for i, u := range updates {
		if _, err := eng.Update(u.model, u.req); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		refs = append(refs, crashRef{boundary: l.Stats().WalBytes, snapshot: snap(t, st)})
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	ckptFiles = readCheckpointFiles(t, dir)
	log, err = os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if got := refs[len(refs)-1].boundary; got != int64(len(log)) {
		t.Fatalf("final boundary %d != log size %d", got, len(log))
	}
	return ckptFiles, log, refs
}

// crashAt materializes the on-disk state a crash at byte c would leave
// and verifies recovery lands exactly on the last durably framed commit.
func crashAt(t *testing.T, c int64, ckptFiles map[string][]byte, log []byte, refs []crashRef) {
	t.Helper()
	dir := t.TempDir()
	for name, b := range ckptFiles {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), log[:c], 0o644); err != nil {
		t.Fatal(err)
	}
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatalf("crash at byte %d: recovery failed: %v", c, err)
	}
	defer l.Close()
	want := refs[0]
	for _, r := range refs {
		if r.boundary <= c {
			want = r
		}
	}
	if got := snap(t, st); !bytes.Equal(got, want.snapshot) {
		t.Fatalf("crash at byte %d: recovered snapshot diverges from the commit at boundary %d", c, want.boundary)
	}
	if ws := l.Stats(); ws.TornBytesDropped != c-want.boundary {
		t.Fatalf("crash at byte %d: dropped %d torn bytes, want %d", c, ws.TornBytesDropped, c-want.boundary)
	}
}

// fig1Updates is a Fig. 1 graph built entirely through journaled SPARQL
// updates: vertex KVs, reified edges with edge KVs in named graphs,
// property renames, cross-model deletes and a tombstone resurrection.
func fig1Updates() []upd {
	const (
		v1      = "<http://pg/v1>"
		v2      = "<http://pg/v2>"
		e3      = "<http://pg/e3>"
		e4      = "<http://pg/e4>"
		follows = "<http://pg/r/follows>"
		knows   = "<http://pg/r/knows>"
		name    = "<http://pg/k/name>"
		age     = "<http://pg/k/age>"
		since   = "<http://pg/k/since>"
		metAt   = "<http://pg/k/firstMetAt>"
		label   = "<http://pg/k/label>"
		xsdInt  = "<http://www.w3.org/2001/XMLSchema#int>"
	)
	return []upd{
		// Vertices with their KVs.
		{"fig1", fmt.Sprintf(`INSERT DATA { %s %s "Amy" . %s %s "23"^^%s . %s %s "Mira" . %s %s "22"^^%s }`,
			v1, name, v1, age, xsdInt, v2, name, v2, age, xsdInt)},
		// Reified edges: topology + edge KVs inside the edge's graph.
		{"fig1", fmt.Sprintf(`INSERT DATA { GRAPH %s { %s %s %s . %s %s "2007"^^%s } }`,
			e3, v1, follows, v2, e3, since, xsdInt)},
		{"fig1", fmt.Sprintf(`INSERT DATA { GRAPH %s { %s %s %s . %s %s "MIT" } }`,
			e4, v1, knows, v2, e4, metAt)},
		// A second model so multi-model deletes have something to hit.
		{"aux", fmt.Sprintf(`INSERT DATA { %s %s "Amy the second" . %s %s "99"^^%s }`,
			v1, name, v1, age, xsdInt)},
		// Exact-quad delete.
		{"fig1", fmt.Sprintf(`DELETE DATA { %s %s "22"^^%s }`, v2, age, xsdInt)},
		// DELETE WHERE against the all-models dataset: journaled once per
		// concrete member model.
		{"", fmt.Sprintf(`DELETE WHERE { ?s %s ?v }`, age)},
		// DELETE/INSERT rename (the paper's §2.1 update pattern).
		{"fig1", fmt.Sprintf(`DELETE { ?s %s ?v } INSERT { ?s %s ?v } WHERE { ?s %s ?v }`,
			name, label, name)},
		// Resurrect a tombstoned quad, plus a duplicate no-op insert.
		{"fig1", fmt.Sprintf(`INSERT DATA { %s %s "22"^^%s . %s %s "Mira" }`,
			v2, age, xsdInt, v2, label)},
	}
}

// TestCrashRecoveryEveryByteFig1 checks the differential at every
// single byte of the log for the Fig. 1 workload (no checkpoint: the
// log carries the whole history).
func TestCrashRecoveryEveryByteFig1(t *testing.T) {
	_, log, refs := runWorkload(t, wal.Options{Sync: wal.SyncAlways}, nil, fig1Updates())
	for c := int64(0); c <= int64(len(log)); c++ {
		crashAt(t, c, nil, log, refs)
	}
}

// TestCrashRecoveryCheckpointPlusTailFig1 takes a mid-workload
// checkpoint and crashes through the tail, so recovery exercises
// checkpoint restore + partial replay together — for both checkpoint
// formats.
func TestCrashRecoveryCheckpointPlusTailFig1(t *testing.T) {
	for format, text := range crashFormats {
		t.Run(format, func(t *testing.T) {
			updates := fig1Updates()
			half := len(updates) / 2

			dir := t.TempDir()
			st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, TextCheckpoints: text})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			eng := sparql.NewEngine(st)
			attach(eng, l)
			for i := 0; i < half; i++ {
				if _, err := eng.Update(updates[i].model, updates[i].req); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Checkpoint(st); err != nil {
				t.Fatal(err)
			}
			refs := []crashRef{{boundary: 0, snapshot: snap(t, st)}}
			for i := half; i < len(updates); i++ {
				if _, err := eng.Update(updates[i].model, updates[i].req); err != nil {
					t.Fatal(err)
				}
				refs = append(refs, crashRef{boundary: l.Stats().WalBytes, snapshot: snap(t, st)})
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			ckptFiles := readCheckpointFiles(t, dir)
			wantName := "checkpoint.bin"
			if text {
				wantName = "checkpoint.nq"
			}
			if _, ok := ckptFiles[wantName]; !ok || len(ckptFiles) != 1 {
				t.Fatalf("checkpoint files = %v, want exactly %s", ckptFiles, wantName)
			}
			log, err := os.ReadFile(filepath.Join(dir, "wal.log"))
			if err != nil {
				t.Fatal(err)
			}
			for c := int64(0); c <= int64(len(log)); c++ {
				crashAt(t, c, ckptFiles, log, refs)
			}
		})
	}
}

// TestCrashRecoveryIncrementalChain builds a delta chain mid-workload
// (full checkpoint, then two incremental folds with commits between),
// then crashes at every byte of the remaining log — recovery replays
// base + delta 1 + delta 2 + tail. It also pins the publish-without-
// truncate crash window: a delta plus the very log it folded replays
// idempotently to the same state.
func TestCrashRecoveryIncrementalChain(t *testing.T) {
	updates := fig1Updates()

	dir := t.TempDir()
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	eng := sparql.NewEngine(st)
	attach(eng, l)
	run := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := eng.Update(updates[i].model, updates[i].req); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(0, 2)
	if err := l.Checkpoint(st); err != nil { // the full binary base
		t.Fatal(err)
	}
	run(2, 4)
	if err := l.CheckpointIncremental(st); err != nil { // delta 1
		t.Fatal(err)
	}

	// The publish-without-truncate window: capture the log that delta 2
	// will fold, then the post-fold checkpoint files, and replay both
	// together — the on-disk state of a crash between the delta rename
	// and the log truncation.
	run(4, 6)
	foldedLog, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointIncremental(st); err != nil { // delta 2
		t.Fatal(err)
	}
	wantMid := snap(t, st)
	midFiles := readCheckpointFiles(t, dir)
	if _, ok := midFiles["checkpoint.delta.000002"]; !ok {
		t.Fatalf("no second delta after two incremental checkpoints: %v", midFiles)
	}
	for name, logBytes := range map[string][]byte{"clean": nil, "unfolded log": foldedLog} {
		dir2 := t.TempDir()
		for fname, b := range midFiles {
			if err := os.WriteFile(filepath.Join(dir2, fname), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir2, "wal.log"), logBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, l2, err := wal.Open(dir2, wal.Options{Sync: wal.SyncOff})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", name, err)
		}
		if got := snap(t, st2); !bytes.Equal(got, wantMid) {
			t.Fatalf("%s: recovered snapshot diverges from the post-fold state", name)
		}
		l2.Close()
	}

	// Tail commits after the chain, crashed at every byte.
	refs := []crashRef{{boundary: 0, snapshot: wantMid}}
	for i := 6; i < len(updates); i++ {
		if _, err := eng.Update(updates[i].model, updates[i].req); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, crashRef{boundary: l.Stats().WalBytes, snapshot: snap(t, st)})
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	log, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c <= int64(len(log)); c++ {
		crashAt(t, c, midFiles, log, refs)
	}
	if ws := l.Stats(); ws.IncrementalCheckpoints != 2 || ws.FullCheckpoints != 1 || ws.DeltaChainLen != 2 {
		t.Fatalf("chain stats: %+v", ws)
	}
}

// TestCrashRecoveryTwitterSample seeds a Twitter-sample NG dataset
// (partitioned models + virtual models + the NG index config) through a
// checkpoint, then runs journaled updates over it and crashes around
// every record boundary of the tail.
func TestCrashRecoveryTwitterSample(t *testing.T) {
	if testing.Short() {
		t.Skip("twitter-sample crash matrix is seconds-long; skipped with -short")
	}
	seed := func(st *store.Store) {
		g := twitter.Generate(twitter.TestConfig())
		conv := &pgrdf.Converter{Scheme: pgrdf.NG, Vocab: pgrdf.DefaultVocabulary(), Opts: pgrdf.DefaultOptions()}
		if _, err := pgrdf.LoadPartitioned(st, conv.Convert(g), "pg"); err != nil {
			t.Fatal(err)
		}
	}
	const (
		follows = "<http://pg/r/follows>"
		name    = "<http://pg/k/name>"
	)
	updates := []upd{
		{"pg_topo", fmt.Sprintf(`INSERT DATA { GRAPH <http://pg/e900001> { <http://pg/v1> %s <http://pg/v2> } }`, follows)},
		{"pg_nodekv", fmt.Sprintf(`INSERT DATA { <http://pg/v1> %s "crash test" . <http://pg/v2> %s "dummy" }`, name, name)},
		// Delete through the virtual union model: expanded per member.
		{"pg", fmt.Sprintf(`DELETE WHERE { <http://pg/v1> %s ?v }`, name)},
		{"pg_nodekv", fmt.Sprintf(`DELETE DATA { <http://pg/v2> %s "dummy" }`, name)},
	}
	for format, text := range crashFormats {
		t.Run(format, func(t *testing.T) {
			ckptFiles, log, refs := runWorkload(t, wal.Options{
				Sync:            wal.SyncAlways,
				Indexes:         []string{"PCSGM", "PSCGM", "GSPCM"},
				TextCheckpoints: text,
			}, seed, updates)
			if len(ckptFiles) == 0 {
				t.Fatal("no checkpoint written for the seeded store")
			}
			// Crash points: around every record boundary, plus each midpoint.
			points := map[int64]struct{}{0: {}, int64(len(log)): {}}
			for i := 1; i < len(refs); i++ {
				b := refs[i].boundary
				prev := refs[i-1].boundary
				for _, c := range []int64{b - 1, b, b + 1, prev + (b-prev)/2} {
					if c >= 0 && c <= int64(len(log)) {
						points[c] = struct{}{}
					}
				}
			}
			for c := range points {
				crashAt(t, c, ckptFiles, log, refs)
			}
		})
	}
}

// TestReadOnlyQueriesBypassWAL pins the "WAL sits entirely on the
// update path" property: queries leave the log untouched.
func TestReadOnlyQueriesBypassWAL(t *testing.T) {
	dir := t.TempDir()
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	eng := sparql.NewEngine(st)
	attach(eng, l)
	if _, err := eng.Update("m", `INSERT DATA { <http://a> <http://p> "1" }`); err != nil {
		t.Fatal(err)
	}
	before := l.Stats()
	for i := 0; i < 10; i++ {
		if _, err := eng.Query("m", `SELECT ?s WHERE { ?s ?p ?o }`); err != nil {
			t.Fatal(err)
		}
	}
	after := l.Stats()
	if before.WalBytes != after.WalBytes || before.WalRecords != after.WalRecords || before.Seq != after.Seq {
		t.Fatalf("read-only queries touched the WAL: before %+v after %+v", before, after)
	}
}
