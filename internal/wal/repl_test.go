package wal

// Tests for the leader-side replication surface: identity persistence,
// epoch/sequence durability across checkpoints and restarts, tail
// reads with divergence detection, and the corrupt-checkpoint guard.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestReplIdentityPersists(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	pos := l.Position()
	if pos.ID == "" {
		t.Fatal("fresh log has no replication ID")
	}
	if pos.Epoch != 0 || pos.Offset != 0 || pos.NextSeq != 1 || pos.EpochStartSeq != 1 {
		t.Fatalf("fresh position: %+v", pos)
	}
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	l.Close()

	_, l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	pos2 := l2.Position()
	if pos2.ID != pos.ID {
		t.Fatalf("replication ID changed across restart: %q -> %q", pos.ID, pos2.ID)
	}
	if pos2.Epoch != 0 || pos2.NextSeq != 2 || pos2.EpochStartSeq != 1 {
		t.Fatalf("position after reopen: %+v", pos2)
	}
}

func TestCheckpointAdvancesEpochAndSeqSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	commit(t, l, st, insertOp("m", "http://b", "http://p", "2"))
	if err := l.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	pos := l.Position()
	if pos.Epoch != 1 || pos.Offset != 0 || pos.NextSeq != 3 || pos.EpochStartSeq != 3 {
		t.Fatalf("position after checkpoint: %+v", pos)
	}
	l.Close()

	// The log is empty (just truncated); sequence numbers must not
	// restart from 1 — repl.meta carries them across.
	st2, l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	pos2 := l2.Position()
	if pos2.Epoch != 1 || pos2.NextSeq != 3 || pos2.EpochStartSeq != 3 {
		t.Fatalf("position after restart-from-checkpoint: %+v", pos2)
	}
	commit(t, l2, st2, insertOp("m", "http://c", "http://p", "3"))
	if got := l2.Position().NextSeq; got != 4 {
		t.Fatalf("next seq after post-restart commit = %d, want 4", got)
	}
}

func TestReadLogAtRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	commit(t, l, st,
		insertOp("m", "http://b", "http://p", "2"),
		insertOp("m", "http://c", "http://p", "3"))

	data, pos, err := l.ReadLogAt(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != pos.Offset {
		t.Fatalf("read %d bytes, position offset %d", len(data), pos.Offset)
	}
	var seqs []uint64
	var ops int
	consumed, last, err := DecodeFrames(data, func(seq uint64, b Batch) error {
		seqs = append(seqs, seq)
		ops += len(b.Ops)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if consumed != int64(len(data)) || last != 2 || ops != 3 {
		t.Fatalf("decoded consumed=%d last=%d ops=%d from %d bytes", consumed, last, ops, len(data))
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("frame seqs: %v", seqs)
	}

	// A max cap that lands mid-frame returns a decodable prefix plus a
	// partial tail; DecodeFrames consumes only the whole frames.
	capped, _, err := l.ReadLogAt(0, 0, int(consumed)-3)
	if err != nil {
		t.Fatal(err)
	}
	c2, last2, err := DecodeFrames(capped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if last2 != 1 || c2 >= int64(len(capped)) {
		t.Fatalf("capped decode: consumed=%d last=%d of %d bytes", c2, last2, len(capped))
	}

	// Resuming from the first frame boundary yields exactly the rest.
	rest, _, err := l.ReadLogAt(0, c2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, data[c2:]) {
		t.Fatal("resumed read differs from the original tail")
	}
}

func TestReadLogAtDivergence(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))

	if _, _, err := l.ReadLogAt(7, 0, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("wrong epoch: err = %v, want ErrDiverged", err)
	}
	end := l.Position().Offset
	if _, _, err := l.ReadLogAt(0, end+1, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("offset beyond log end: err = %v, want ErrDiverged", err)
	}
	// Exactly at the end: no data, no error — the long-poll idle case.
	data, pos, err := l.ReadLogAt(0, end, 0)
	if err != nil || len(data) != 0 {
		t.Fatalf("read at end: data=%d err=%v", len(data), err)
	}
	if pos.Offset != end {
		t.Fatalf("position offset %d, want %d", pos.Offset, end)
	}
	// After a checkpoint the old epoch is gone.
	if err := l.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadLogAt(0, 0, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("stale epoch after checkpoint: err = %v, want ErrDiverged", err)
	}
}

func TestWakeChanSignalsAppendAndTruncate(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})

	wake := l.WakeChan()
	select {
	case <-wake:
		t.Fatal("wake channel closed before any append")
	default:
	}
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	select {
	case <-wake:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not wake tailers")
	}

	wake = l.WakeChan()
	if err := l.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wake:
	case <-time.After(2 * time.Second):
		t.Fatal("checkpoint truncation did not wake tailers")
	}
}

func TestBeginSnapshotBlocksCommits(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))

	pos, release := l.BeginSnapshot()
	if pos.NextSeq != 2 {
		t.Fatalf("snapshot position: %+v", pos)
	}
	done := make(chan struct{})
	go func() {
		commit(t, l, st, insertOp("m", "http://b", "http://p", "2"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("commit proceeded while the snapshot lock was held")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("commit still blocked after release")
	}
}

// TestOpenCorruptCheckpoint is the loud-failure guard: a checkpoint
// that exists but cannot be parsed must fail Open with a typed error —
// never recover into an empty store over data the operator believes is
// durable.
func TestOpenCorruptCheckpoint(t *testing.T) {
	type corruption struct {
		text    bool
		file    string
		corrupt func(data []byte) []byte
	}
	corruptions := map[string]corruption{
		// Text format: a quad line damaged mid-file (parse failure).
		"text garbled line": {text: true, file: checkpointFile, corrupt: func(data []byte) []byte {
			i := bytes.Index(data, []byte("\n<"))
			if i < 0 {
				panic("no quad line found in checkpoint")
			}
			out := append([]byte(nil), data...)
			copy(out[i+1:], "<<not an n-quad>>")
			return out
		}},
		// Text format: truncation mid-line (final partial line fails to
		// parse).
		"text truncated mid-line": {text: true, file: checkpointFile, corrupt: func(data []byte) []byte {
			return data[:len(data)-len("/p> \"x\" .\n")]
		}},
		// Binary format: a flipped payload byte fails its section CRC.
		"binary bit flip": {file: checkpointBinFile, corrupt: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(out)/2] ^= 0x40
			return out
		}},
		// Binary format: a torn tail loses the trailer.
		"binary truncated": {file: checkpointBinFile, corrupt: func(data []byte) []byte {
			return data[:len(data)-7]
		}},
		// Binary format: corrupt incremental delta header.
		"delta header damage": {file: "checkpoint.delta.000001", corrupt: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			out[10] ^= 0x01
			return out
		}},
		// Binary format: torn frame inside a published delta. Deltas are
		// published atomically, so a short frame is damage, not a crash
		// artifact.
		"delta torn frame": {file: "checkpoint.delta.000001", corrupt: func(data []byte) []byte {
			return data[:len(data)-3]
		}},
	}
	for name, c := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, l := mustOpen(t, dir, Options{Sync: SyncAlways, TextCheckpoints: c.text})
			commit(t, l, st,
				insertOp("m", "http://a", "http://p", "x"),
				insertOp("m", "http://b", "http://p", "x"))
			if err := l.Checkpoint(st); err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(c.file, "checkpoint.delta.") {
				commit(t, l, st, insertOp("m", "http://c", "http://p", "x"))
				if err := l.CheckpointIncremental(st); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			path := filepath.Join(dir, c.file)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			st2, l2, err := Open(dir, Options{Sync: SyncAlways})
			if err == nil {
				l2.Close()
				t.Fatalf("Open succeeded over a corrupt checkpoint (%d quads)", st2.Len())
			}
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
			}
		})
	}
}

func TestOpenCorruptReplMeta(t *testing.T) {
	dir := t.TempDir()
	_, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, replMetaFile), []byte("{half a json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Sync: SyncAlways}); err == nil {
		t.Fatal("Open succeeded over a corrupt repl.meta; regenerating the identity would orphan followers")
	}
}
