package wal

// Replication surface (DESIGN.md §13). The write-ahead log doubles as
// a physical replication stream: a follower bootstraps from a store
// snapshot taken at a known log position, then tails the log bytes and
// applies each CRC-framed record through the same path crash recovery
// uses. Everything here is leader-side plumbing; the follower lives in
// internal/repl.
//
// The replication identity of a log is the pair (ID, Epoch):
//
//   - ID is a random token minted when the durability directory first
//     opens and persisted in repl.meta. Two directories with different
//     IDs share no history: a follower must never apply records across
//     an ID change.
//   - Epoch counts log truncations. Every checkpoint folds the log into
//     the snapshot and truncates it, so byte offsets restart from zero;
//     the epoch disambiguates "offset 4096 before the checkpoint" from
//     "offset 4096 after". A follower holding an older epoch cannot
//     tail the current log (the bytes it needs are gone) — unless it
//     had applied everything up to the truncation point, in which case
//     it may adopt the new epoch at offset zero (EpochStartSeq tells it
//     whether it qualifies).
//
// Record sequence numbers are made durable through repl.meta (NextSeq,
// written at each checkpoint) so they stay monotonic across restarts;
// a follower that observes a sequence regression is reading a
// different history and must re-bootstrap.

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
)

const replMetaFile = "repl.meta"

// ErrDiverged reports that a replication position does not belong to
// this log's current history: the epoch is not the live one, or the
// offset lies beyond the durable end of the log. The only safe
// response is to re-bootstrap from a fresh snapshot (or, for an epoch
// bump the caller is provably caught up with, to adopt the new epoch).
var ErrDiverged = errors.New("wal: replication position diverged from this log's history")

// ErrCheckpointCorrupt reports that the checkpoint file exists but
// cannot be restored — a parse or framing failure mid-file, not a
// missing file. Open fails loudly with it instead of quietly starting
// an empty store over unreadable data.
var ErrCheckpointCorrupt = errors.New("wal: corrupt checkpoint")

// Position identifies a point in the replication stream.
type Position struct {
	// ID is the log's replication identity token.
	ID string `json:"id"`
	// Epoch counts log truncations; byte offsets are only meaningful
	// within one epoch.
	Epoch uint64 `json:"epoch"`
	// Offset is a byte offset into the current log: the end of the
	// last fully framed record at or before this position.
	Offset int64 `json:"offset"`
	// NextSeq is the sequence number of the next record to appear at
	// Offset.
	NextSeq uint64 `json:"nextSeq"`
	// EpochStartSeq is the sequence number of the first record of the
	// current epoch (the first append after the last truncation). A
	// follower whose next expected sequence equals it may adopt the
	// current epoch at offset zero without re-bootstrapping.
	EpochStartSeq uint64 `json:"epochStartSeq"`
}

// replMeta is the durable half of the replication identity, stored as
// JSON in repl.meta next to the checkpoint and the log.
type replMeta struct {
	ID string `json:"id"`
	// Epoch is incremented (and persisted) on every log truncation.
	Epoch uint64 `json:"epoch"`
	// NextSeq is the sequence number the first post-truncation append
	// will carry; on recovery it floors the writer's sequence counter
	// so sequences stay monotonic even when the log is empty.
	NextSeq uint64 `json:"nextSeq"`
}

// loadOrCreateReplMeta reads repl.meta, minting a fresh identity for a
// directory that has none yet (a new deployment, or one created before
// replication existed).
func loadOrCreateReplMeta(dir string) (replMeta, error) {
	path := filepath.Join(dir, replMetaFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		var idb [16]byte
		if _, err := rand.Read(idb[:]); err != nil {
			return replMeta{}, fmt.Errorf("wal: mint replication id: %w", err)
		}
		m := replMeta{ID: hex.EncodeToString(idb[:]), Epoch: 0, NextSeq: 1}
		if err := writeReplMeta(dir, m); err != nil {
			return replMeta{}, err
		}
		return m, nil
	}
	if err != nil {
		return replMeta{}, fmt.Errorf("wal: read replication meta: %w", err)
	}
	var m replMeta
	if err := json.Unmarshal(data, &m); err != nil || m.ID == "" {
		// The file is written atomically, so a bad parse is disk
		// corruption, not a torn write; regenerating the identity here
		// would silently orphan every follower.
		return replMeta{}, fmt.Errorf("wal: replication meta %s is corrupt: %v", path, err)
	}
	return m, nil
}

// writeReplMeta persists the replication identity atomically
// (tmp + rename, like the checkpoint itself).
func writeReplMeta(dir string, m replMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wal: encode replication meta: %w", err)
	}
	tmp := filepath.Join(dir, replMetaFile+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("wal: write replication meta: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, replMetaFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publish replication meta: %w", err)
	}
	syncDir(dir)
	return nil
}

// positionLocked builds the current position; the caller holds l.mu.
//
//pgrdf:locks mu
func (l *Log) positionLocked() Position {
	return Position{
		ID:            l.replID,
		Epoch:         l.epoch,
		Offset:        l.w.Bytes(),
		NextSeq:       l.w.Seq(),
		EpochStartSeq: l.epochStartSeq,
	}
}

// Position returns the log's current replication position: the durable
// end of the log and the identity a follower must present to tail it.
func (l *Log) Position() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.positionLocked()
}

// BeginSnapshot acquires the commit lock and returns the position the
// store is at: no commit can land until release is called, so a store
// snapshot streamed in between corresponds exactly to the returned
// position. Callers MUST call release (commits and checkpoints block
// until they do).
func (l *Log) BeginSnapshot() (pos Position, release func()) {
	l.mu.Lock()
	return l.positionLocked(), func() { l.mu.Unlock() }
}

// ReadLogAt returns up to max bytes of fully framed records starting
// at byte offset from of the given epoch, plus the current position.
// It returns ErrDiverged when the epoch is not the live one or the
// offset lies beyond the durable end of the log — the caller's view of
// history does not match this log, and tailing cannot continue. The
// returned slice may end mid-frame when max truncates it; the consumer
// decodes complete frames and re-requests the remainder.
func (l *Log) ReadLogAt(epoch uint64, from int64, max int) ([]byte, Position, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pos := l.positionLocked()
	if epoch != l.epoch || from < 0 || from > pos.Offset {
		return nil, pos, fmt.Errorf("%w: requested epoch %d offset %d, log is at epoch %d offset %d",
			ErrDiverged, epoch, from, pos.Epoch, pos.Offset)
	}
	n := pos.Offset - from
	if n <= 0 {
		return nil, pos, nil
	}
	if max > 0 && n > int64(max) {
		n = int64(max)
	}
	buf := make([]byte, n)
	if _, err := l.w.readAt(buf, from); err != nil {
		return nil, pos, fmt.Errorf("wal: read log at offset %d: %w", from, err)
	}
	return buf, pos, nil
}

// WakeChan returns a channel that is closed the next time the log
// grows or is truncated. Long-poll tailers grab the channel, re-check
// the position, and block on it; the grab-before-check order means a
// record landing in between is never missed.
func (l *Log) WakeChan() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wake == nil {
		l.wake = make(chan struct{})
	}
	return l.wake
}

// wakeLocked releases every WakeChan waiter; the caller holds l.mu.
//
//pgrdf:locks mu
func (l *Log) wakeLocked() {
	if l.wake != nil {
		close(l.wake)
		l.wake = nil
	}
}

// ApplyBatch applies one journaled batch to the store — the shared
// apply path of crash recovery and follower replication. Application
// is idempotent (duplicate inserts and absent deletes are no-ops) and
// tolerant of deletes against models the store never materialized. An
// error means the store may hold a prefix of the batch; the caller
// must treat its copy as suspect and re-bootstrap rather than continue.
func ApplyBatch(st *store.Store, b Batch) error {
	for _, op := range b.Ops {
		switch op.Kind {
		case OpInsert:
			if _, err := st.Insert(op.Model, op.Quad); err != nil {
				return err
			}
		case OpDelete:
			if st.LookupModel(op.Model) == store.NoID {
				continue
			}
			if _, err := st.Delete(op.Model, op.Quad); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeFrames decodes every complete, CRC-verified record frame at
// the start of data, calling yield for each in order. It returns the
// number of bytes consumed by fully decoded frames and the last
// sequence number yielded; a trailing partial or corrupt frame stops
// decoding without error (the transport re-requests from consumed). A
// yield error aborts decoding and is returned with consumed covering
// only the frames yield accepted.
func DecodeFrames(data []byte, yield func(seq uint64, b Batch) error) (consumed int64, lastSeq uint64, err error) {
	return readRecords(bytes.NewReader(data), yield)
}

