package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// ErrInjectedCrash is returned by Writer.Append when the installed
// FaultInjector cuts a write short — the in-process stand-in for a
// kill -9 mid-write. The write that failed may have landed partially
// (a torn record); recovery must drop it.
var ErrInjectedCrash = errors.New("wal: injected crash")

// FaultInjector deterministically truncates log writes so crash
// recovery is testable at every byte boundary without real crashes.
// Mirrors the store.FaultInjector pattern: all configuration is atomic
// and a writer without an injector pays one atomic pointer load per
// append.
type FaultInjector struct {
	written   atomic.Int64 // bytes the injector has let through
	failAfter atomic.Int64 // cut writes once written exceeds this; <0 = off
}

// NewFaultInjector returns an injector with faults disabled.
func NewFaultInjector() *FaultInjector {
	f := &FaultInjector{}
	f.failAfter.Store(-1)
	return f
}

// FailAfterBytes makes the injector cut the write that would carry the
// cumulative written-byte count past n more bytes (n < 0 disables).
// The failing write lands partially — exactly the torn-record shape a
// power cut produces.
func (f *FaultInjector) FailAfterBytes(n int64) {
	if n >= 0 {
		n += f.written.Load()
	}
	f.failAfter.Store(n)
}

// Written reports how many bytes the injector has observed.
func (f *FaultInjector) Written() int64 { return f.written.Load() }

// cut returns how many of the next len(p) bytes may be written, and
// whether the write must fail after them.
func (f *FaultInjector) cut(n int) (allowed int, crash bool) {
	fa := f.failAfter.Load()
	if fa < 0 {
		f.written.Add(int64(n))
		return n, false
	}
	remain := fa - f.written.Load()
	if remain >= int64(n) {
		f.written.Add(int64(n))
		return n, false
	}
	if remain < 0 {
		remain = 0
	}
	f.written.Add(remain)
	return int(remain), true
}

// Writer is the low-level append-only record writer: it frames batches
// (length prefix + CRC32), writes them with a single unbuffered write,
// and fsyncs per the policy. A write failure — injected or real — is
// sticky: the file may hold a torn record, so continuing to append
// would bury corruption mid-log where recovery treats it as the end.
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	policy SyncPolicy
	// end offset of the last fully framed record
	//pgrdf:guardedby mu
	off int64
	//pgrdf:guardedby mu
	records int64
	// next sequence number
	//pgrdf:guardedby mu
	seq uint64
	// bytes written since the last fsync
	//pgrdf:guardedby mu
	dirty bool
	// sticky failure (the fsync-failure latch)
	//pgrdf:guardedby mu
	broken error
	fault  atomic.Pointer[FaultInjector]
}

// newWriter wraps an open log file positioned at off.
func newWriter(f *os.File, off int64, records int64, seq uint64, policy SyncPolicy) *Writer {
	return &Writer{f: f, off: off, records: records, seq: seq, policy: policy}
}

// SetFaultInjector installs (or, with nil, removes) the writer's fault
// injector. Safe to call concurrently with appends.
func (w *Writer) SetFaultInjector(fi *FaultInjector) { w.fault.Store(fi) }

// Append frames the batch as one record and writes it durably per the
// sync policy. The record is either fully framed on disk (and will
// replay) or torn (and will be dropped by recovery); Append reports
// which via its error.
func (w *Writer) Append(b Batch) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	frame, err := encodeBatch(w.seq, b)
	if err != nil {
		return err // nothing written; the writer stays healthy
	}
	if err := w.write(frame); err != nil {
		w.broken = err
		return err
	}
	w.off += int64(len(frame))
	w.records++
	w.seq++
	w.dirty = true
	if w.policy == SyncAlways {
		if err := w.syncLocked(); err != nil {
			w.broken = err
			return err
		}
	}
	return nil
}

// write sends p through the fault injector (when installed) to the file.
func (w *Writer) write(p []byte) error {
	if fi := w.fault.Load(); fi != nil {
		allowed, crash := fi.cut(len(p))
		if crash {
			if allowed > 0 {
				w.f.Write(p[:allowed]) //nolint — the crash error supersedes
			}
			return fmt.Errorf("%w after %d of %d bytes", ErrInjectedCrash, allowed, len(p))
		}
	}
	_, err := w.f.Write(p)
	return err
}

// Sync flushes appended records to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	return w.syncLocked()
}

//pgrdf:locks mu
func (w *Writer) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages, so retrying cannot make the data durable; breaking the
		// writer is the only safe answer.
		w.broken = err
		return err
	}
	w.dirty = false
	return nil
}

// reset truncates the log after a successful checkpoint. The sequence
// number keeps counting: record seqs stay monotonic across truncations
// for the lifetime of the writer.
func (w *Writer) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off, w.records, w.dirty = 0, 0, false
	return nil
}

// readAt reads len(p) bytes of the log file at offset off. Replication
// tail reads go through it: taking w.mu means the read never overlaps
// an in-flight Append or truncation, so the bytes are always whole,
// fully framed records (the caller bounds off+len(p) by Bytes()).
func (w *Writer) readAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.ReadAt(p, off)
}

// readAll returns a copy of every fully framed record byte in the log
// — the incremental checkpoint's fold input. Like readAt it holds w.mu,
// so the copy never overlaps an in-flight append or truncation.
func (w *Writer) readAll() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf := make([]byte, w.off)
	if w.off == 0 {
		return buf, nil
	}
	if _, err := w.f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Bytes returns the log size in fully framed record bytes.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Records returns the number of records in the live log.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Seq returns the sequence number the next Append will use.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

func (w *Writer) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken == nil && w.dirty && w.policy != SyncOff {
		w.f.Sync() //nolint — best-effort flush; Close error follows
	}
	return w.f.Close()
}
