package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

func snapshotBytes(t *testing.T, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustOpen(t *testing.T, dir string, opts Options) (*store.Store, *Log) {
	t.Helper()
	st, l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return st, l
}

func insertOp(model, s, p, o string) Op {
	return Op{Kind: OpInsert, Model: model, Quad: rdf.Quad{
		S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewLiteral(o)}}
}

// commit mirrors the engine glue: journal, then apply.
func commit(t *testing.T, l *Log, st *store.Store, ops ...Op) {
	t.Helper()
	err := l.Commit(Batch{Ops: ops}, func() error {
		return replayBatch(st, Batch{Ops: ops})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	commit(t, l, st,
		insertOp("m", "http://b", "http://p", "2"),
		Op{Kind: OpDelete, Model: "m", Quad: rdf.Quad{
			S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewLiteral("1")}})
	want := snapshotBytes(t, st)
	ws := l.Stats()
	if ws.WalRecords != 2 || ws.WalBytes == 0 {
		t.Fatalf("stats after 2 commits: %+v", ws)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot diverges:\n got: %s\nwant: %s", got, want)
	}
	rs := l2.Stats()
	if rs.ReplayedRecords != 2 || rs.TornBytesDropped != 0 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	// Sequence numbers continue past the replayed tail.
	if rs.Seq != ws.Seq {
		t.Fatalf("next seq = %d, want %d", rs.Seq, ws.Seq)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	if err := l.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	if ws := l.Stats(); ws.WalBytes != 0 || ws.WalRecords != 0 || ws.Checkpoints != 1 {
		t.Fatalf("stats after checkpoint: %+v", ws)
	}
	// Mutations after the checkpoint land in the fresh log.
	commit(t, l, st, insertOp("m", "http://b", "http://p", "2"))
	want := snapshotBytes(t, st)
	l.Close()

	st2, l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatalf("checkpoint+tail recovery diverges")
	}
	if rs := l2.Stats(); rs.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-checkpoint commit)", rs.ReplayedRecords)
	}
}

func TestOpenRemovesStaleCheckpointTmp(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	want := snapshotBytes(t, st)
	l.Close()
	// A checkpoint that crashed before its rename leaves a tmp file; it
	// must be ignored and removed, not restored.
	if err := os.WriteFile(filepath.Join(dir, checkpointTmp), []byte("# pgrdf-snapshot v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("stale checkpoint tmp changed recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointTmp)); !os.IsNotExist(err) {
		t.Fatalf("stale tmp still present: %v", err)
	}
}

func TestReplaySkipsDeleteOnAbsentModel(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	// Journal a delete against a model that recovery will never have
	// materialized (nothing else touches it).
	q := rdf.Quad{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewLiteral("1")}
	st.Model("ghost")
	commit(t, l, st, Op{Kind: OpDelete, Model: "ghost", Quad: q})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	l.Close()

	st2, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	if st2.Len() != 1 {
		t.Fatalf("recovered %d quads, want 1", st2.Len())
	}
	if st2.LookupModel("ghost") != store.NoID {
		t.Fatal("replay materialized a model from a skipped delete")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	want := snapshotBytes(t, st)
	l.Close()
	logPath := filepath.Join(dir, logFile)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(data, data[:len(data)/2]...) // half a record re-appended
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("torn tail changed recovery")
	}
	rs := l2.Stats()
	if rs.TornBytesDropped != int64(len(data)/2) {
		t.Fatalf("dropped %d torn bytes, want %d", rs.TornBytesDropped, len(data)/2)
	}
	// The file itself must be truncated so the next append cannot bury
	// the torn fragment mid-log.
	if fi, _ := os.Stat(logPath); fi.Size() != int64(len(data)) {
		t.Fatalf("log size %d after open, want %d", fi.Size(), len(data))
	}
	// And appending must still work and replay cleanly.
	commit(t, l2, st2, insertOp("m", "http://b", "http://p", "2"))
	want2 := snapshotBytes(t, st2)
	l2.Close()
	st3, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := snapshotBytes(t, st3); !bytes.Equal(got, want2) {
		t.Fatal("append-after-torn-recovery diverges")
	}
}

func TestInjectedCrashIsStickyAndAbortsCommit(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	fi := NewFaultInjector()
	l.SetFaultInjector(fi)
	fi.FailAfterBytes(3) // the next record tears after 3 bytes

	applied := false
	err := l.Commit(Batch{Ops: []Op{insertOp("m", "http://b", "http://p", "2")}}, func() error {
		applied = true
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	if applied {
		t.Fatal("apply ran after a failed append — the mutation would exist in memory but not on disk")
	}
	// The writer is now broken: further commits must fail, not bury the
	// torn record.
	if err := l.Commit(Batch{Ops: []Op{insertOp("m", "http://c", "http://p", "3")}}, nil); err == nil {
		t.Fatal("append succeeded on a broken writer")
	}
	want := snapshotBytes(t, st)
	l.Close()

	// Recovery drops the 3 torn bytes and lands on the applied state.
	st2, l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("crash recovery diverges from pre-crash state")
	}
	if rs := l2.Stats(); rs.TornBytesDropped != 3 || rs.ReplayedRecords != 1 {
		t.Fatalf("recovery stats: %+v", rs)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, l := mustOpen(t, dir, Options{Sync: policy, SyncEvery: 10 * time.Millisecond})
			commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
			want := snapshotBytes(t, st)
			if err := l.Sync(); err != nil { // explicit flush works under every policy
				t.Fatal(err)
			}
			l.Close()
			st2, _ := mustOpen(t, dir, Options{Sync: policy})
			if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
				t.Fatal("recovery diverges")
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	st, l := mustOpen(t, dir, Options{Sync: SyncAlways})
	commit(t, l, st, insertOp("m", "http://a", "http://p", "1"))
	l.StartCheckpointer(st, 5*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil { // stops the checkpointer
		t.Fatal(err)
	}
	st2, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	if st2.Len() != st.Len() {
		t.Fatalf("recovered %d quads, want %d", st2.Len(), st.Len())
	}
}
