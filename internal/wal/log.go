package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

const (
	checkpointBinFile = "checkpoint.bin"
	checkpointFile    = "checkpoint.nq"
	checkpointTmp     = "checkpoint.tmp"
	logFile           = "wal.log"
)

// Log is the durability unit for one data directory: a checkpoint
// snapshot plus the write-ahead log of commits since it. One Log owns
// its directory for the lifetime of the process.
type Log struct {
	dir  string
	opts Options
	w    *Writer

	// mu serializes commits against checkpoints: while a checkpoint
	// holds it, no record can land between the snapshot read and the
	// log truncation, and every logged record is applied to the store
	// before the snapshot reads it. Replication readers (ReadLogAt,
	// BeginSnapshot) take it too, so a tail read never races a
	// truncation.
	mu sync.Mutex

	// Replication identity (DESIGN.md §13), guarded by mu. replID is
	// fixed for the directory's lifetime; epoch increments on every
	// log truncation; epochStartSeq is the sequence number of the
	// first record of the current epoch; wake is closed (and replaced
	// lazily) whenever the log grows or truncates.

	//pgrdf:guardedby mu
	replID string
	//pgrdf:guardedby mu
	epoch uint64
	//pgrdf:guardedby mu
	epochStartSeq uint64
	//pgrdf:guardedby mu
	wake chan struct{}

	// Delta-chain root (DESIGN.md §16): the CRC of the binary full
	// checkpoint new deltas extend. haveBase is false when the base is
	// missing or text-format — incremental requests then promote to a
	// full checkpoint.

	//pgrdf:guardedby mu
	baseCRC uint32
	//pgrdf:guardedby mu
	haveBase bool

	checkpoints      atomic.Int64
	checkpointErrors atomic.Int64
	fullCkpts        atomic.Int64
	incrCkpts        atomic.Int64
	lastCkptBytes    atomic.Int64
	lastCkptNanos    atomic.Int64
	lastFullBytes    atomic.Int64
	chainLen         atomic.Int64
	chainBytes       atomic.Int64
	replayed         int64 // fixed at Open
	tornDropped      int64 // fixed at Open

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open recovers the store persisted in dir and returns it with a Log
// ready to journal further commits. An empty or missing directory
// yields a fresh store (indexes per opts.Indexes). Recovery restores
// the checkpoint snapshot if present, replays every complete log
// record after it, and truncates a torn or corrupt tail — the on-disk
// shape a crash at any byte boundary leaves behind.
func Open(dir string, opts Options) (*store.Store, *Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	// A stale tmp file is a checkpoint that crashed before its rename;
	// the previous checkpoint (if any) is still the authoritative one.
	if err := os.Remove(filepath.Join(dir, checkpointTmp)); err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: remove stale checkpoint tmp: %w", err)
	}

	st, baseCRC, haveBase, fullBytes, err := openCheckpoint(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	// Replay the incremental delta chain (if any) over the base before
	// the log tail: base → delta 1..N → wal.log is commit order.
	chainLen, chainBytes, err := loadDeltas(dir, baseCRC, haveBase, func(b Batch) error {
		return replayBatch(st, b)
	})
	if err != nil {
		return nil, nil, err
	}
	meta, err := loadOrCreateReplMeta(dir)
	if err != nil {
		return nil, nil, err
	}

	f, err := os.OpenFile(filepath.Join(dir, logFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}
	l := &Log{dir: dir, opts: opts, done: make(chan struct{}),
		replID: meta.ID, epoch: meta.Epoch, baseCRC: baseCRC, haveBase: haveBase}
	l.lastFullBytes.Store(fullBytes)
	l.chainLen.Store(int64(chainLen))
	l.chainBytes.Store(chainBytes)
	records := int64(0)
	firstSeq := uint64(0)
	good, lastSeq, err := readRecords(bufio.NewReaderSize(f, 1<<20), func(seq uint64, b Batch) error {
		if records == 0 {
			firstSeq = seq
		}
		records++
		return replayBatch(st, b)
	})
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: replay record %d: %w", records, err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek log: %w", err)
	}
	if size > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: drop torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync truncated log: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek log end: %w", err)
	}
	l.replayed = records
	l.tornDropped = size - good
	// Sequence numbers must stay monotonic across restarts even when a
	// checkpoint left the log empty: repl.meta carries the next
	// sequence as of the last truncation, and the log tail (appended
	// after that) can only raise it.
	seq := lastSeq + 1
	if meta.NextSeq > seq {
		seq = meta.NextSeq
	}
	if records > 0 {
		l.epochStartSeq = firstSeq
	} else {
		l.epochStartSeq = seq
	}
	l.w = newWriter(f, good, records, seq, opts.Sync)

	if opts.Sync == SyncInterval {
		every := opts.SyncEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		l.wg.Add(1)
		go l.syncLoop(every)
	}
	return st, l, nil
}

// openCheckpoint restores the checkpoint, or builds a fresh store when
// none exists yet. The binary checkpoint is preferred when both formats
// are on disk (a full checkpoint removes the other format's file, so
// both only coexist inside a crash window where the binary one is the
// newer). It also reports the binary file's CRC — the root the delta
// chain is validated against — and its size (the incremental path's
// full-vs-chain cost comparison).
func openCheckpoint(dir string, opts Options) (st *store.Store, baseCRC uint32, haveBase bool, fullBytes int64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointBinFile))
	if err == nil {
		st, rerr := store.RestoreBinary(data)
		if rerr != nil {
			// The checkpoint exists but cannot be decoded. Failing loudly
			// is the only safe answer: opening a fresh store here would
			// serve (and eventually re-checkpoint) an empty dataset over
			// data the operator believes is durable.
			return nil, 0, false, 0, fmt.Errorf("%w: restore %s: %v", ErrCheckpointCorrupt, checkpointBinFile, rerr)
		}
		return st, crc32.ChecksumIEEE(data), true, int64(len(data)), nil
	}
	if !os.IsNotExist(err) {
		return nil, 0, false, 0, fmt.Errorf("wal: open checkpoint: %w", err)
	}

	f, err := os.Open(filepath.Join(dir, checkpointFile))
	if os.IsNotExist(err) {
		if len(opts.Indexes) == 0 {
			return store.New(), 0, false, 0, nil
		}
		st, err := store.NewWithIndexes(opts.Indexes)
		if err != nil {
			return nil, 0, false, 0, fmt.Errorf("wal: index config: %w", err)
		}
		return st, 0, false, 0, nil
	}
	if err != nil {
		return nil, 0, false, 0, fmt.Errorf("wal: open checkpoint: %w", err)
	}
	defer f.Close()
	// RestoreAny sniffs the magic, so a binary snapshot parked under the
	// text name (hand-copied backups) still restores; only a named .bin
	// file can root a delta chain, though.
	st, err = store.RestoreAny(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, 0, false, 0, fmt.Errorf("%w: restore %s: %v", ErrCheckpointCorrupt, checkpointFile, err)
	}
	return st, 0, false, 0, nil
}

// replayBatch applies one journaled batch to the store during
// recovery — the same path follower replication uses (see ApplyBatch).
func replayBatch(st *store.Store, b Batch) error {
	return ApplyBatch(st, b)
}

// Commit journals the batch and, once it is durably framed, runs apply
// (the store mutation) under the same critical section — so a
// checkpoint can never observe a store missing commits it is about to
// truncate out of the log. An append failure aborts the commit: apply
// does not run, and the caller reports the update failed.
func (l *Log) Commit(b Batch, apply func() error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(b.Ops) > 0 {
		if err := l.w.Append(b); err != nil {
			return err
		}
		// The record is durably framed; wake long-poll tailers. Waking
		// before apply is fine — readers of the log see the record
		// bytes, and followers apply them to their own stores.
		l.wakeLocked()
	}
	if apply == nil {
		return nil
	}
	return apply()
}

// Sync flushes the log to stable storage regardless of policy.
func (l *Log) Sync() error { return l.w.Sync() }

// SetFaultInjector installs a fault injector on the underlying writer.
func (l *Log) SetFaultInjector(fi *FaultInjector) { l.w.SetFaultInjector(fi) }

// Checkpoint atomically snapshots st into the checkpoint file (binary
// by default, text under Options.TextCheckpoints) and truncates the
// log. Commits block for the duration; the background checkpointer
// trades that pause for bounded recovery time. On any failure the
// previous checkpoint chain and the full log remain authoritative.
func (l *Log) Checkpoint(st *store.Store) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.runCheckpointLocked(st, false)
}

// CheckpointIncremental folds the live log into one delta file of the
// current checkpoint chain instead of rewriting the full store, and
// truncates the log — the background checkpointer's default. It
// promotes itself to a full Checkpoint when a delta cannot extend the
// chain (text format configured, no binary base yet, chain at its
// length cap, or chain bytes past half the base — recovery replay cost
// has caught up with a rewrite). An empty log is a no-op: the chain
// already covers every commit.
func (l *Log) CheckpointIncremental(st *store.Store) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w.Records() == 0 {
		return nil
	}
	chainOK := l.chainBytes.Load()*2 <= l.lastFullBytes.Load() ||
		l.chainBytes.Load() < minDeltaChainBytes
	incremental := !l.opts.TextCheckpoints && l.haveBase &&
		l.chainLen.Load() < maxDeltaChain && chainOK
	return l.runCheckpointLocked(st, incremental)
}

//pgrdf:locks mu
func (l *Log) runCheckpointLocked(st *store.Store, incremental bool) error {
	start := time.Now()
	var bytes int64
	var err error
	if incremental {
		bytes, err = l.deltaCheckpointLocked()
	} else {
		bytes, err = l.checkpointLocked(st)
	}
	if err != nil {
		l.checkpointErrors.Add(1)
		return err
	}
	l.checkpoints.Add(1)
	if incremental {
		l.incrCkpts.Add(1)
	} else {
		l.fullCkpts.Add(1)
	}
	l.lastCkptBytes.Store(bytes)
	l.lastCkptNanos.Store(time.Since(start).Nanoseconds())
	return nil
}

//pgrdf:locks mu
func (l *Log) checkpointLocked(st *store.Store) (int64, error) {
	tmpPath := filepath.Join(l.dir, checkpointTmp)
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: create checkpoint tmp: %w", err)
	}
	binary := !l.opts.TextCheckpoints
	target := checkpointBinFile
	var crc uint32
	if binary {
		tee := &crcTee{w: f}
		if err := st.SnapshotBinary(tee); err != nil {
			f.Close()
			os.Remove(tmpPath)
			return 0, fmt.Errorf("wal: snapshot: %w", err)
		}
		crc = tee.crc
	} else {
		target = checkpointFile
		bw := bufio.NewWriterSize(f, 1<<20)
		if err := st.Snapshot(bw); err != nil {
			f.Close()
			os.Remove(tmpPath)
			return 0, fmt.Errorf("wal: snapshot: %w", err)
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			os.Remove(tmpPath)
			return 0, fmt.Errorf("wal: flush checkpoint: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		size = 0
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: close checkpoint tmp: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, target)); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	syncDir(l.dir) // make the rename itself durable (best effort)
	// The full file supersedes the other format and every delta. This
	// must precede the truncation: if a removal fails, aborting here
	// leaves the untruncated log, and recovery over the new full file
	// plus the whole log is idempotent (stale deltas are detected by
	// their base CRC and removed on open).
	if err := removeSuperseded(l.dir, binary); err != nil {
		return 0, err
	}
	if err := l.advanceEpochAndTruncateLocked(); err != nil {
		return 0, err
	}
	l.haveBase = binary
	l.baseCRC = crc
	l.lastFullBytes.Store(size)
	l.chainLen.Store(0)
	l.chainBytes.Store(0)
	return size, nil
}

// deltaCheckpointLocked folds the live log into the next delta file of
// the current chain and truncates the log.
//
//pgrdf:locks mu
func (l *Log) deltaCheckpointLocked() (int64, error) {
	raw, err := l.w.readAll()
	if err != nil {
		return 0, fmt.Errorf("wal: read log for fold: %w", err)
	}
	var batches []Batch
	firstSeq := uint64(0)
	good, _, err := readRecords(bytes.NewReader(raw), func(seq uint64, b Batch) error {
		if len(batches) == 0 {
			firstSeq = seq
		}
		batches = append(batches, b)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if good != int64(len(raw)) {
		// The live log only ever holds fully framed records (torn tails
		// exist only after a crash, and Open truncated those).
		return 0, fmt.Errorf("wal: log tail undecodable at offset %d during fold", good)
	}
	index := uint32(l.chainLen.Load()) + 1
	data, err := encodeDelta(l.baseCRC, index, foldOps(batches), firstSeq)
	if err != nil {
		return 0, err
	}
	tmpPath := filepath.Join(l.dir, checkpointTmp)
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: create delta tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: write delta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: sync delta: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: close delta tmp: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, deltaName(index))); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("wal: publish delta: %w", err)
	}
	syncDir(l.dir)
	// Crash window: the delta is published but the log not yet
	// truncated. Recovery then replays both — idempotent, because the
	// fold is last-op-wins per (model, quad) and re-applying the same
	// tail converges to the same state.
	if err := l.advanceEpochAndTruncateLocked(); err != nil {
		return 0, err
	}
	l.chainLen.Add(1)
	l.chainBytes.Add(int64(len(data)))
	return int64(len(data)), nil
}

// advanceEpochAndTruncateLocked is the shared tail of every checkpoint
// flavor: persist the epoch bump, then drop the log.
//
//pgrdf:locks mu
func (l *Log) advanceEpochAndTruncateLocked() error {
	// Advance the replication epoch before truncating: a follower must
	// never read post-truncation bytes under a pre-truncation epoch.
	// If the meta write fails the checkpoint is still valid (replaying
	// the untruncated log over it is idempotent), so the error only
	// aborts the truncation.
	nextSeq := l.w.Seq()
	if err := writeReplMeta(l.dir, replMeta{ID: l.replID, Epoch: l.epoch + 1, NextSeq: nextSeq}); err != nil {
		return err
	}
	l.epoch++
	l.epochStartSeq = nextSeq
	// The checkpoint chain now covers every logged commit; drop the log.
	if err := l.w.reset(); err != nil {
		return fmt.Errorf("wal: truncate log after checkpoint: %w", err)
	}
	// Wake tailers so they observe the epoch change promptly instead of
	// at their next poll timeout.
	l.wakeLocked()
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Some filesystems reject directory fsync; that only widens the crash
// window, so the error is ignored.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint — best effort by design
	d.Close()
}

// StartCheckpointer checkpoints st every interval until Close. Ticks
// take the incremental path, so a mostly-idle store pays a few
// kilobytes of delta per cycle instead of a full rewrite; the chain
// caps promote a tick to a full checkpoint when it grows too long.
func (l *Log) StartCheckpointer(st *store.Store, every time.Duration) {
	if every <= 0 {
		return
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-l.done:
				return
			case <-t.C:
				//pgrdfvet:ignore walerr -- failure is counted in Stats.CheckpointErrors and the next tick retries
				l.CheckpointIncremental(st)
			}
		}
	}()
}

func (l *Log) syncLoop(every time.Duration) {
	defer l.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			//pgrdfvet:ignore walerr -- a failed fsync breaks the writer, so the next Commit surfaces it
			l.w.Sync()
		}
	}
}

// Stats returns a point-in-time view of the log.
func (l *Log) Stats() Stats {
	format := "binary"
	if l.opts.TextCheckpoints {
		format = "text"
	}
	return Stats{
		WalBytes:               l.w.Bytes(),
		WalRecords:             l.w.Records(),
		Seq:                    l.w.Seq(),
		Checkpoints:            l.checkpoints.Load(),
		CheckpointErrors:       l.checkpointErrors.Load(),
		LastCheckpointBytes:    l.lastCkptBytes.Load(),
		LastCheckpointDuration: time.Duration(l.lastCkptNanos.Load()),
		ReplayedRecords:        l.replayed,
		TornBytesDropped:       l.tornDropped,
		CheckpointFormat:       format,
		FullCheckpoints:        l.fullCkpts.Load(),
		IncrementalCheckpoints: l.incrCkpts.Load(),
		DeltaChainLen:          l.chainLen.Load(),
		DeltaChainBytes:        l.chainBytes.Load(),
	}
}

// Close stops the background goroutines, flushes the log (unless the
// policy is SyncOff) and closes the file. Safe to call more than once.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.wg.Wait()
		l.closeErr = l.w.close()
	})
	return l.closeErr
}
