package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Incremental checkpoints (DESIGN.md §16). A full checkpoint rewrites
// the whole store — tens of megabytes per cycle even when only a few
// hundred commits landed since the last one. An incremental checkpoint
// instead folds the live log into one small delta file and truncates
// the log, leaving the full checkpoint untouched:
//
//	checkpoint.bin          — the full binary base
//	checkpoint.delta.000001 — log fold #1 since the base
//	checkpoint.delta.000002 — log fold #2
//	wal.log                 — records since the last fold
//
// Recovery restores the base, replays each delta in chain order, then
// replays the log tail. A delta file is a 20-byte header followed by
// ordinary WAL record frames (same framing, same decoder):
//
//	header := "PGRDFDL1" | u32le baseCRC | u32le chainIndex | u32le crc32(header)
//
// baseCRC is the CRC32 of the full checkpoint file the delta extends;
// chainIndex numbers deltas 1..N against that base. Both are how open
// tells a live chain from a stale one: a crash window can leave deltas
// from a previous base on disk (a full checkpoint publishes its file
// before removing old deltas), and those are detected by baseCRC or
// index mismatch and removed — whereas a published delta whose own
// header or frames fail their CRCs was damaged at rest, which is
// ErrCheckpointCorrupt, never silent removal (deltas are published by
// tmp+fsync+rename, so torn delta files cannot occur).
//
// Folding is last-op-wins per (model, quad): of all journaled ops for
// one quad in one model, only the final one determines recovered state,
// and it is emitted at the position the key first appeared. Model
// creation order must survive the fold too (model IDs — and therefore
// snapshot section order — follow creation order), so the fold is
// preceded by a preamble: for every model the log's inserts created or
// touched, an insert+delete pair of that model's first-inserted quad,
// in first-insert order. The insert pins the model's creation slot;
// the delete immediately retracts the quad, whose true final state is
// settled by its own folded op later in the stream. Replaying a folded
// delta is idempotent, so the crash window between publishing a delta
// and truncating the log (where recovery replays both) converges to
// the same store.

const (
	deltaMagic     = "PGRDFDL1"
	deltaPrefix    = "checkpoint.delta."
	deltaHeaderLen = len(deltaMagic) + 12

	// maxDeltaChain caps the chain length before the next incremental
	// request is promoted to a full checkpoint: recovery replays the
	// whole chain, so an unbounded chain would trade checkpoint cost
	// for unbounded recovery cost.
	maxDeltaChain = 64

	// minDeltaChainBytes keeps a chain under this size incremental even
	// when it exceeds half the full checkpoint (the promotion rule):
	// against a small base the ratio trips immediately, yet replaying a
	// sub-megabyte chain costs nothing at recovery.
	minDeltaChainBytes = 1 << 20

	// deltaChunkBytes bounds one folded record frame, well under the
	// frame decoder's maxRecordLen.
	deltaChunkBytes = 8 << 20
	// deltaChunkOps bounds ops per folded record frame.
	deltaChunkOps = 4096
)

// foldOps collapses the journaled batches to the minimal op sequence
// with the same replay outcome: a model-creation preamble followed by
// the last op per (model, quad) key in first-appearance order.
func foldOps(batches []Batch) []Op {
	final := make(map[string]int)
	var folded []Op
	firstInsert := make(map[string]Op)
	var modelOrder []string
	for _, b := range batches {
		for _, op := range b.Ops {
			if op.Kind == OpInsert {
				if _, seen := firstInsert[op.Model]; !seen {
					firstInsert[op.Model] = op
					modelOrder = append(modelOrder, op.Model)
				}
			}
			key := op.Model + "\x00" + op.Quad.String()
			if at, seen := final[key]; seen {
				folded[at] = op
			} else {
				final[key] = len(folded)
				folded = append(folded, op)
			}
		}
	}
	ops := make([]Op, 0, 2*len(modelOrder)+len(folded))
	for _, m := range modelOrder {
		fi := firstInsert[m]
		ops = append(ops,
			Op{Kind: OpInsert, Model: m, Quad: fi.Quad},
			Op{Kind: OpDelete, Model: m, Quad: fi.Quad})
	}
	return append(ops, folded...)
}

// encodeDelta serializes a delta file: header, then the folded ops
// chunked into standard WAL record frames.
func encodeDelta(baseCRC, index uint32, ops []Op, startSeq uint64) ([]byte, error) {
	out := make([]byte, 0, 4096)
	out = append(out, deltaMagic...)
	out = binary.LittleEndian.AppendUint32(out, baseCRC)
	out = binary.LittleEndian.AppendUint32(out, index)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	seq := startSeq
	var chunk []Op
	est := 0
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		frame, err := encodeBatch(seq, Batch{Ops: chunk})
		if err != nil {
			return err
		}
		out = append(out, frame...)
		seq++
		chunk, est = chunk[:0], 0
		return nil
	}
	for _, op := range ops {
		cost := 64 + len(op.Model) + len(op.Quad.S.Value) + len(op.Quad.P.Value) +
			len(op.Quad.O.Value) + len(op.Quad.O.Datatype) + len(op.Quad.G.Value)
		if len(chunk) > 0 && (est+cost > deltaChunkBytes || len(chunk) >= deltaChunkOps) {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		chunk = append(chunk, op)
		est += cost
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeDeltaHeader validates a delta file header and returns the base
// CRC and chain index it claims.
func decodeDeltaHeader(data []byte) (baseCRC, index uint32, err error) {
	if len(data) < deltaHeaderLen {
		return 0, 0, fmt.Errorf("delta header truncated at %d bytes", len(data))
	}
	if string(data[:len(deltaMagic)]) != deltaMagic {
		return 0, 0, fmt.Errorf("delta magic mismatch")
	}
	hdrEnd := len(deltaMagic) + 8
	want := binary.LittleEndian.Uint32(data[hdrEnd:])
	if crc32.ChecksumIEEE(data[:hdrEnd]) != want {
		return 0, 0, fmt.Errorf("delta header CRC mismatch")
	}
	baseCRC = binary.LittleEndian.Uint32(data[len(deltaMagic):])
	index = binary.LittleEndian.Uint32(data[len(deltaMagic)+4:])
	return baseCRC, index, nil
}

// deltaName returns the file name of chain entry i.
func deltaName(i uint32) string {
	return fmt.Sprintf("%s%06d", deltaPrefix, i)
}

// listDeltas returns the delta file names present in dir, sorted by
// chain index. Files matching the prefix with a non-numeric suffix are
// not ours and are left alone.
func listDeltas(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list deltas: %w", err)
	}
	type numbered struct {
		name string
		n    int
	}
	var found []numbered
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, deltaPrefix) {
			continue
		}
		n, err := strconv.Atoi(name[len(deltaPrefix):])
		if err != nil || n < 0 {
			continue
		}
		found = append(found, numbered{name: name, n: n})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	names := make([]string, len(found))
	for i, f := range found {
		names[i] = f.name
	}
	return names, nil
}

// loadDeltas replays the delta chain rooted at the checkpoint with CRC
// baseCRC through apply, in chain order. Stale deltas — wrong base,
// broken index contiguity, or any delta when the base is not a binary
// checkpoint — are removed (they are leftovers of a crash window
// between a full checkpoint publishing and cleaning up). A delta that
// belongs to the chain but fails its own CRCs is ErrCheckpointCorrupt.
func loadDeltas(dir string, baseCRC uint32, haveBase bool, apply func(Batch) error) (chainLen int, chainBytes int64, err error) {
	names, err := listDeltas(dir)
	if err != nil {
		return 0, 0, err
	}
	live := haveBase
	expect := uint32(1)
	removed := false
	for _, name := range names {
		path := filepath.Join(dir, name)
		if live {
			data, err := os.ReadFile(path)
			if err != nil {
				return 0, 0, fmt.Errorf("wal: read delta: %w", err)
			}
			base, index, derr := decodeDeltaHeader(data)
			if derr != nil {
				return 0, 0, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, name, derr)
			}
			if base == baseCRC && index == expect {
				body := data[deltaHeaderLen:]
				good, _, err := readRecords(bytes.NewReader(body), func(_ uint64, b Batch) error {
					return apply(b)
				})
				if err != nil {
					return 0, 0, fmt.Errorf("wal: replay delta %s: %w", name, err)
				}
				if good != int64(len(body)) {
					// readRecords stops silently at a torn frame; in a
					// log that means crash truncation, but deltas are
					// published atomically, so a short decode is damage.
					return 0, 0, fmt.Errorf("%w: %s: undecodable frame at offset %d", ErrCheckpointCorrupt, name, deltaHeaderLen+int(good))
				}
				chainLen++
				chainBytes += int64(len(data))
				expect++
				continue
			}
			// Wrong base or a gap: this delta and everything after it
			// belong to a superseded chain.
			live = false
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return 0, 0, fmt.Errorf("wal: remove stale delta: %w", err)
		}
		removed = true
	}
	if removed {
		syncDir(dir)
	}
	return chainLen, chainBytes, nil
}

// removeSuperseded deletes the checkpoint artifacts a just-published
// full checkpoint replaces: the other format's file and every delta
// (their contents are folded into the new full file). Called before
// the log truncation — if any removal fails the checkpoint attempt is
// aborted and the untruncated log keeps recovery correct.
func removeSuperseded(dir string, publishedBinary bool) error {
	victims := []string{checkpointFile}
	if !publishedBinary {
		victims[0] = checkpointBinFile
	}
	deltas, err := listDeltas(dir)
	if err != nil {
		return err
	}
	victims = append(victims, deltas...)
	for _, name := range victims {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: remove superseded checkpoint file: %w", err)
		}
	}
	syncDir(dir)
	return nil
}

// crcTee computes the CRC32 of everything written through it — how a
// binary checkpoint learns its own file CRC (the root of the delta
// chain) without re-reading the file.
type crcTee struct {
	w   interface{ Write([]byte) (int, error) }
	crc uint32
}

func (t *crcTee) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	t.crc = crc32.Update(t.crc, crc32.IEEETable, p[:n])
	return n, err
}
