// Package wal gives the in-memory quad store a life beyond the
// process: a write-ahead log that journals every Update mutation,
// background checkpoints in the binary snapshot format, and
// replay-on-open crash recovery (DESIGN.md §12, §16).
//
// The durability directory holds:
//
//	checkpoint.bin      — a full store snapshot (store.SnapshotBinary)
//	checkpoint.delta.N  — incremental log folds since the full snapshot
//	wal.log             — framed mutation records appended since the
//	                      last checkpoint (full or incremental)
//	checkpoint.nq       — the legacy text snapshot (store.Snapshot),
//	                      written under Options.TextCheckpoints and
//	                      auto-detected on open for old directories
//
// Commits are journaled log-first: the SPARQL engine publishes the quad
// delta of each Update operation through its CommitHook, the log
// appends (and, under SyncAlways, fsyncs) one record, and only then is
// the delta applied to the store. Open replays checkpoint + log tail
// and tolerates a torn final record, so a kill -9 at any byte recovers
// the store to exactly the last durably framed commit.
package wal

import (
	"errors"
	"time"

	"repro/internal/rdf"
)

// SyncPolicy controls when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append: a record is durable before
	// the mutation is applied. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker every SyncEvery. A
	// crash loses at most the last interval of commits, but recovery is
	// still torn-record safe.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS decides. Records are
	// still written (unbuffered) per Append, so only an OS/power crash
	// loses data — a process kill does not.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, errors.New(`wal: unknown fsync policy (want "always", "interval" or "off")`)
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy for appended records.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period; 0 means 100ms.
	SyncEvery time.Duration
	// Indexes configures the semantic-network indexes of a store
	// created for an empty directory (no checkpoint yet). Ignored when
	// a checkpoint exists — the snapshot carries the index config.
	// Empty means store.DefaultIndexes.
	Indexes []string
	// TextCheckpoints writes checkpoints in the legacy sectioned-N-Quads
	// text format instead of the binary format. Restores are an order of
	// magnitude slower and incremental checkpoints are disabled (every
	// CheckpointIncremental promotes to a full rewrite); the knob exists
	// for interchange-format deployments and for differential testing.
	TextCheckpoints bool
}

// OpKind tags one journaled mutation.
type OpKind byte

const (
	// OpInsert asserts a quad into a concrete model.
	OpInsert OpKind = 1
	// OpDelete retracts a quad from a concrete model. Deletes issued
	// against a virtual model or the all-models dataset are journaled
	// once per member model, so the record always carries the concrete
	// model the replay must touch.
	OpDelete OpKind = 2
)

// Op is one journaled mutation: a quad asserted into or retracted from
// a concrete semantic model.
type Op struct {
	Kind  OpKind
	Model string
	Quad  rdf.Quad
}

// Batch is the quad delta of one Update operation, journaled and
// applied atomically: either the whole record is durably framed (and
// replays), or none of it does.
type Batch struct {
	Ops []Op
}

// Stats is a point-in-time view of the log, exported by /stats and the
// Prometheus /metrics endpoint.
type Stats struct {
	// WalBytes and WalRecords describe the live log tail (since the
	// last checkpoint truncation).
	WalBytes   int64
	WalRecords int64
	// Seq is the sequence number of the next record to append.
	Seq uint64
	// Checkpoints counts successful checkpoints; CheckpointErrors the
	// failed attempts (the log is never truncated on failure).
	Checkpoints      int64
	CheckpointErrors int64
	// LastCheckpointBytes and LastCheckpointDuration describe the most
	// recent successful checkpoint.
	LastCheckpointBytes    int64
	LastCheckpointDuration time.Duration
	// ReplayedRecords and TornBytesDropped describe the recovery that
	// opened this log: records replayed from the tail, and trailing
	// bytes discarded as a torn or corrupt final record.
	ReplayedRecords  int64
	TornBytesDropped int64
	// CheckpointFormat is the configured full-checkpoint format:
	// "binary" (default) or "text" (Options.TextCheckpoints).
	CheckpointFormat string
	// FullCheckpoints and IncrementalCheckpoints split Checkpoints by
	// flavor: full store rewrites vs delta folds of the log.
	FullCheckpoints        int64
	IncrementalCheckpoints int64
	// DeltaChainLen and DeltaChainBytes describe the live incremental
	// chain: how many delta files extend the full checkpoint, and their
	// total size. Recovery replays the whole chain, so these bound the
	// extra restart cost an incremental checkpoint saves at write time.
	DeltaChainLen   int64
	DeltaChainBytes int64
}
